// Defense demonstrates the countermeasure the paper's §4 sketches: the
// attack localizes identity to a small set of high-leverage connectome
// features, so a data publisher can concentrate noise exactly there
// before release. At a matched total-distortion budget, targeted noise
// buys strictly more privacy (lower re-identification) than spreading
// the same noise uniformly — while task-level analyses of the released
// data survive.
package main

import (
	"context"
	"fmt"
	"log"

	"brainprint"
)

func main() {
	params := brainprint.DefaultHCPParams()
	params.Subjects = 16
	params.Regions = 50
	cohort, err := brainprint.GenerateHCP(params)
	if err != nil {
		log.Fatal(err)
	}

	attacker, err := brainprint.NewAttacker(nil,
		brainprint.WithConfig(brainprint.DefaultAttackConfig()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := attacker.RunExperiment(context.Background(), "defense",
		brainprint.ExperimentInput{
			HCP:                cohort,
			Sigmas:             []float64{0, 0.3, 0.6},
			DefenseTopFeatures: 200,
			Seed:               11,
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	fmt.Println("reading the table:")
	fmt.Println(" - ident-acc is the attacker's success on the protected release;")
	fmt.Println("   the publisher wants it low. At every sigma the targeted rows")
	fmt.Println("   sit at or below the uniform rows despite equal distortion.")
	fmt.Println(" - task-acc and clustering-shift are utility: analyses of the")
	fmt.Println("   released data must still work.")
}
