// ADHD reproduces §3.3.4: the brain-signature attack transfers beyond
// healthy adults to a clinical cohort of children with ADHD, across a
// different atlas (116 regions ⇒ 6670 features), a different acquisition
// protocol, and a case/control mix — and the feature subspace learned on
// training subjects identifies held-out subjects it has never seen.
package main

import (
	"fmt"
	"log"

	"brainprint"
)

func main() {
	params := brainprint.DefaultADHDParams()
	params.Controls = 20
	params.Subtype1 = 10
	params.Subtype2 = 2
	params.Subtype3 = 8
	params.Regions = 116 // AAL-like atlas: 116·115/2 = 6670 edge features
	cohort, err := brainprint.GenerateADHD(params)
	if err != nil {
		log.Fatal(err)
	}

	attack := brainprint.DefaultAttackConfig()

	f7, err := brainprint.RunFigure7(cohort, attack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f7.Render())

	f8, err := brainprint.RunFigure8(cohort, attack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f8.Render())

	f9, err := brainprint.RunFigure9(cohort, attack, 8, 0.7, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f9.Render())
	fmt.Println("the signature generalizes across subjects: features selected on the")
	fmt.Println("training split identify held-out subjects, as in the paper's 97.2%/94.1%.")
}
