// ADHD reproduces §3.3.4: the brain-signature attack transfers beyond
// healthy adults to a clinical cohort of children with ADHD, across a
// different atlas (116 regions ⇒ 6670 features), a different acquisition
// protocol, and a case/control mix — and the feature subspace learned on
// training subjects identifies held-out subjects it has never seen. The
// three experiments run through one Attacker session.
package main

import (
	"context"
	"fmt"
	"log"

	"brainprint"
)

func main() {
	ctx := context.Background()
	params := brainprint.DefaultADHDParams()
	params.Controls = 20
	params.Subtype1 = 10
	params.Subtype2 = 2
	params.Subtype3 = 8
	params.Regions = 116 // AAL-like atlas: 116·115/2 = 6670 edge features
	cohort, err := brainprint.GenerateADHD(params)
	if err != nil {
		log.Fatal(err)
	}

	attacker, err := brainprint.NewAttacker(nil,
		brainprint.WithConfig(brainprint.DefaultAttackConfig()))
	if err != nil {
		log.Fatal(err)
	}
	in := brainprint.ExperimentInput{ADHD: cohort, Trials: 8, TrainFraction: 0.7, Seed: 11}

	for _, name := range []string{"fig7", "fig8", "fig9"} {
		res, err := attacker.RunExperiment(ctx, name, in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Render())
	}
	fmt.Println("the signature generalizes across subjects: features selected on the")
	fmt.Println("training split identify held-out subjects, as in the paper's 97.2%/94.1%.")
}
