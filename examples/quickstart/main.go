// Quickstart: the de-anonymization attack end to end through the
// session API.
//
// An attacker holds a de-anonymized set of resting-state scans (the
// REST1 L-R session) and wants to identify the subjects behind an
// anonymized set (the REST2 R-L session). The attack builds functional
// connectomes, selects the ~100 connectome features with the highest
// leverage scores on the known set, enrolls those fingerprints into a
// gallery, and matches anonymous probes by Pearson correlation in the
// reduced space. The Attacker session owns the enrolled gallery and
// configuration: enroll once, identify any number of releases, under a
// cancellable context.
package main

import (
	"context"
	"fmt"
	"log"

	"brainprint"
)

func main() {
	ctx := context.Background()

	// A small synthetic stand-in for the HCP cohort (see DESIGN.md).
	params := brainprint.DefaultHCPParams()
	params.Subjects = 20
	params.Regions = 60
	cohort, err := brainprint.GenerateHCP(params)
	if err != nil {
		log.Fatal(err)
	}

	// The de-anonymized dataset: REST1, L-R encoding.
	knownScans, err := cohort.ScansFor(brainprint.Rest1, brainprint.LR)
	if err != nil {
		log.Fatal(err)
	}
	known, err := brainprint.GroupMatrixCtx(ctx, knownScans, brainprint.ConnectomeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Enrollment: select the paper's top-100 leverage features on the
	// known group and store the z-scored fingerprints in a gallery.
	cfg := brainprint.DefaultAttackConfig()
	fps, idx, err := brainprint.Fingerprints(known, cfg)
	if err != nil {
		log.Fatal(err)
	}
	gallery := brainprint.NewGalleryIndexed(idx)
	ids := make([]string, params.Subjects)
	for i := range ids {
		ids[i] = fmt.Sprintf("subject-%02d", i)
	}
	if err := gallery.EnrollMatrix(ids, fps); err != nil {
		log.Fatal(err)
	}

	// The session: owns the gallery and the configuration. WithTopK(3)
	// keeps the three best hypotheses per probe.
	attacker, err := brainprint.NewAttacker(gallery,
		brainprint.WithConfig(cfg),
		brainprint.WithTopK(3))
	if err != nil {
		log.Fatal(err)
	}

	// The anonymous dataset: REST2, R-L encoding — a different session
	// on a different day with the opposite phase encoding. Probes stay
	// raw connectome vectors; the gallery projects them through its
	// stored feature index.
	anonScans, err := cohort.ScansFor(brainprint.Rest2, brainprint.RL)
	if err != nil {
		log.Fatal(err)
	}
	anon, err := brainprint.GroupMatrixCtx(ctx, anonScans, brainprint.ConnectomeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// One probe, ranked: Identify serves single queries.
	top, err := attacker.Identify(ctx, anon.Col(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("anonymous subject 0, ranked hypotheses:")
	for r, cand := range top {
		fmt.Printf("  %d) %-12s correlation %.4f\n", r+1, cand.ID, cand.Score)
	}

	// The whole release at once: IdentifyBatch.
	batch, err := attacker.IdentifyBatch(ctx, anon)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for j, ranked := range batch.Ranked {
		if ranked[0].ID == ids[j] {
			correct++
		}
	}
	fmt.Printf("\nidentified %d of %d anonymous subjects (top-1)\n", correct, len(batch.Ranked))
	fmt.Printf("feature space reduced from %d to %d connectome edges\n", known.Rows(), len(idx))
	for j := 0; j < 5; j++ {
		status := "ok"
		if batch.Ranked[j][0].Index != j {
			status = "MISS"
		}
		fmt.Printf("anonymous subject %2d -> %s (%s)\n", j, batch.Ranked[j][0].ID, status)
	}
	fmt.Println("...")
}
