// Quickstart: the de-anonymization attack end to end in ~40 lines.
//
// An attacker holds a de-anonymized set of resting-state scans (the
// REST1 L-R session) and wants to identify the subjects behind an
// anonymized set (the REST2 R-L session). The attack builds functional
// connectomes, selects the ~100 connectome features with the highest
// leverage scores on the known set, and matches subjects by Pearson
// correlation in that reduced space.
package main

import (
	"fmt"
	"log"

	"brainprint"
)

func main() {
	// A small synthetic stand-in for the HCP cohort (see DESIGN.md).
	params := brainprint.DefaultHCPParams()
	params.Subjects = 20
	params.Regions = 60
	cohort, err := brainprint.GenerateHCP(params)
	if err != nil {
		log.Fatal(err)
	}

	// The de-anonymized dataset: REST1, L-R encoding.
	knownScans, err := cohort.ScansFor(brainprint.Rest1, brainprint.LR)
	if err != nil {
		log.Fatal(err)
	}
	known, err := brainprint.GroupMatrix(knownScans, brainprint.ConnectomeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The anonymous dataset: REST2, R-L encoding — a different session
	// on a different day with the opposite phase encoding.
	anonScans, err := cohort.ScansFor(brainprint.Rest2, brainprint.RL)
	if err != nil {
		log.Fatal(err)
	}
	anon, err := brainprint.GroupMatrix(anonScans, brainprint.ConnectomeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Run the attack with the paper's defaults (top-100 leverage
	// features, deterministic selection).
	res, err := brainprint.Deanonymize(known, anon, brainprint.DefaultAttackConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("identified %0.f%% of %d anonymous subjects\n", 100*res.Accuracy, params.Subjects)
	fmt.Printf("feature space reduced from %d to %d connectome edges\n\n",
		known.Rows(), len(res.Features))
	fmt.Println("similarity matrix (rows = known subjects, cols = anonymous):")
	fmt.Println(brainprint.RenderHeatmap(res.Similarity, 40))
	for j, pred := range res.Predictions {
		status := "ok"
		if pred != j {
			status = "MISS"
		}
		if j < 5 {
			fmt.Printf("anonymous subject %2d -> predicted identity %2d (%s)\n", j, pred, status)
		}
	}
	fmt.Println("...")
}
