// Multisite reproduces Table 2: scans of the same subject acquired on
// different MRI machines differ by scanner-specific noise; the paper
// simulates this by adding Gaussian noise (mean = signal mean, variance
// a fraction of signal variance) to the second session and shows the
// attack stays above 90% accuracy at 10% noise and degrades gracefully.
package main

import (
	"context"
	"fmt"
	"log"

	"brainprint"
)

func main() {
	hcpParams := brainprint.DefaultHCPParams()
	hcpParams.Subjects = 16
	hcpParams.Regions = 50
	hcp, err := brainprint.GenerateHCP(hcpParams)
	if err != nil {
		log.Fatal(err)
	}
	adhdParams := brainprint.DefaultADHDParams()
	adhd, err := brainprint.GenerateADHD(adhdParams)
	if err != nil {
		log.Fatal(err)
	}

	attacker, err := brainprint.NewAttacker(nil,
		brainprint.WithConfig(brainprint.DefaultAttackConfig()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := attacker.RunExperiment(context.Background(), "table2",
		brainprint.ExperimentInput{
			HCP:         hcp,
			ADHD:        adhd,
			NoiseLevels: []float64{0.1, 0.2, 0.3, 0.5},
			Trials:      5,
			Seed:        3,
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())
	fmt.Println("accuracy decays with noise but stays far above chance —")
	fmt.Printf("chance level here would be %.1f%% (HCP) / %.1f%% (ADHD).\n",
		100.0/float64(hcpParams.Subjects), 100.0/float64(adhdParams.NumSubjects()))
}
