// Imaging walks the voxel-level half of the library: a digital head
// phantom is scanned with every artifact the paper's Figure 4 pipeline
// is built to remove (head motion, bias field, drift, physiological and
// thermal noise), the pipeline cleans the 4-D image, and the result is
// parcellated into a region×time matrix from which a connectome is
// built — the exact path a real fMRI would take before the attack.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"brainprint"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A 16³ head phantom: ellipsoidal brain inside a bright skull shell.
	grid, err := brainprint.NewGrid(16, 16, 16, 2.0)
	if err != nil {
		log.Fatal(err)
	}
	phantom, err := brainprint.NewPhantom(grid, brainprint.DefaultPhantomParams(), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phantom: %d brain voxels on a %dx%dx%d grid\n",
		phantom.NumBrainVoxels(), grid.NX, grid.NY, grid.NZ)

	// A 10-region symmetric atlas labels the brain voxels.
	atlas := brainprint.SymmetricAtlas("demo", 10)
	labels := atlas.LabelVoxels(phantom)

	// Latent neuronal activity: slow oscillations in the haemodynamic
	// band, one series per region.
	const frames = 96
	activity := make([][]float64, atlas.NumRegions())
	for r := range activity {
		f := 0.01 + 0.08*rng.Float64()
		phase := rng.Float64() * 2 * math.Pi
		s := make([]float64, frames)
		for t := range s {
			s[t] = math.Sin(2*math.Pi*f*float64(t)*0.72 + phase)
		}
		activity[r] = s
	}

	// Scan it: every artifact enabled.
	params := brainprint.DefaultAcquisitionParams()
	params.Frames = frames
	params.MotionMax = 0.8
	raw, motion, err := brainprint.Acquire(phantom,
		&brainprint.RegionActivity{Labels: labels, Series: activity, VoxelJitter: 0.2, Rng: rng},
		params, rng)
	if err != nil {
		log.Fatal(err)
	}
	maxShift := 0.0
	for t := range motion.DX {
		maxShift = math.Max(maxShift, math.Abs(motion.DX[t]))
	}
	fmt.Printf("acquired %d frames at TR=%.2fs; true head motion up to %.2f voxels\n",
		raw.NumFrames(), params.TR, maxShift)

	// Clean it with the Figure-4 pipeline.
	pipeline := brainprint.DefaultPipeline(brainprint.MNIGrid(16))
	clean, ctx, err := pipeline.Run(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npreprocessing provenance:")
	for _, step := range ctx.Log {
		fmt.Printf("  %-26s %s\n", step.Name, step.Detail)
	}

	// Parcellate the registered image and build the connectome.
	var brainVoxels []int
	for i, inBrain := range ctx.BrainMask {
		if inBrain {
			brainVoxels = append(brainVoxels, i)
		}
	}
	regLabels := make([]int, len(brainVoxels))
	tg := clean.Grid
	cx, cy, cz := float64(tg.NX-1)/2, float64(tg.NY-1)/2, float64(tg.NZ-1)/2
	for ord, idx := range brainVoxels {
		x := idx % tg.NX
		y := (idx / tg.NX) % tg.NY
		z := idx / (tg.NX * tg.NY)
		regLabels[ord] = atlas.LabelPoint(
			(float64(x)-cx)/(0.7*cx), (float64(y)-cy)/(0.7*cy*1.1), (float64(z)-cz)/(0.7*cz*0.95))
	}
	regionSeries, err := brainprint.ReduceToRegions(clean, brainVoxels, regLabels, atlas.NumRegions())
	if err != nil {
		log.Fatal(err)
	}
	con, err := brainprint.ConnectomeFromSeries(regionSeries, brainprint.ConnectomeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfunctional connectome (%d regions, %d edge features):\n",
		con.NumRegions(), con.NumEdges())
	fmt.Println(brainprint.RenderHeatmap(con.C, 20))
	fmt.Println("this connectome vector is one column of the attack's group matrix.")
}
