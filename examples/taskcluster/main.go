// Taskcluster reproduces Figure 6 at small scale: t-SNE maps every
// scan's 64k-dimensional connectome vector to 2-D, where scans cluster
// by *task* rather than by subject; an attacker who knows the task
// labels of half the subjects can read off the task of every anonymous
// scan from its nearest labelled neighbour.
package main

import (
	"context"
	"fmt"
	"log"

	"brainprint"
)

func main() {
	params := brainprint.DefaultHCPParams()
	params.Subjects = 12
	params.Regions = 48
	cohort, err := brainprint.GenerateHCP(params)
	if err != nil {
		log.Fatal(err)
	}

	attacker, err := brainprint.NewAttacker(nil,
		brainprint.WithConfig(brainprint.DefaultAttackConfig()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := attacker.RunExperiment(context.Background(), "fig6",
		brainprint.ExperimentInput{
			HCP:           cohort,
			KnownFraction: 0.5,
			TSNE:          &brainprint.TSNEConfig{Perplexity: 12, Iterations: 400, Seed: 7},
			Seed:          7,
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())
	fmt.Println("each digit is one scan; eight compact clusters = eight conditions,")
	fmt.Println("exactly the structure the paper's Figure 6 shows for the real HCP.")
}
