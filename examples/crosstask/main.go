// Crosstask reproduces the paper's central Figure 5 finding at small
// scale: de-anonymizing one dataset compromises subjects in datasets of
// *different* tasks, with identifiability ordered by how strongly each
// task expresses the individual signature (rest ≫ language > social ≫
// motor/working-memory). Experiments run through the Attacker session's
// registry under a cancellable context; the returned interface asserts
// back to the typed result for programmatic inspection.
package main

import (
	"context"
	"fmt"
	"log"

	"brainprint"
)

func main() {
	params := brainprint.DefaultHCPParams()
	params.Subjects = 16
	params.Regions = 50
	cohort, err := brainprint.GenerateHCP(params)
	if err != nil {
		log.Fatal(err)
	}

	attack := brainprint.DefaultAttackConfig()
	attack.Features = 80
	attacker, err := brainprint.NewAttacker(nil, brainprint.WithConfig(attack))
	if err != nil {
		log.Fatal(err)
	}

	out, err := attacker.RunExperiment(context.Background(), "fig5",
		brainprint.ExperimentInput{HCP: cohort})
	if err != nil {
		log.Fatal(err)
	}
	res := out.(*brainprint.CrossTaskResult)
	fmt.Println(res.Render())

	// Read off the paper's two headline observations.
	find := func(t brainprint.Task) int {
		for i, c := range res.Conditions {
			if c == t {
				return i
			}
		}
		return -1
	}
	rest := find(brainprint.Rest1)
	lang := find(brainprint.Language)
	motor := find(brainprint.Motor)
	fmt.Printf("rest→rest identification:     %.0f%%\n", 100*res.Accuracy.At(rest, rest))
	fmt.Printf("rest→language identification: %.0f%%  (a de-anonymized rest dataset leaks task datasets too)\n",
		100*res.Accuracy.At(rest, lang))
	fmt.Printf("motor→motor identification:   %.0f%%  (motor barely expresses the signature, even on-diagonal)\n",
		100*res.Accuracy.At(motor, motor))
}
