package brainprint

// The routing facade: a replica-aware HTTP front tier over a primary +
// N read-replica topology. The router health-polls every upstream,
// sends reads to replicas under a per-request staleness bound (falling
// back to the primary when no replica qualifies), forwards writes and
// the replication surface to the primary, and on primary loss promotes
// the most-caught-up replica, repoints the surviving siblings at it,
// and fences a healed old primary before it can split-brain the
// topology. See internal/router and docs/ROUTER.md for the routing
// policy and failure matrix.

import "brainprint/internal/router"

// Router is the replica-aware front tier. Build one with NewRouter and
// run it with ListenAndServe, or mount Handler on your own server and
// run Watch alongside it.
type Router = router.Router

// RouterConfig tunes a router: the upstream topology, the health-poll
// cadence, the failover threshold, and the default read staleness
// bound.
type RouterConfig = router.Config

// RouterHeaderMaxStaleness is the request header a client sets to
// bound how stale a routed read may be, in (fractional) seconds; it
// overrides the router's configured default for that request.
const RouterHeaderMaxStaleness = router.HeaderMaxStaleness

// RouterHeaderUpstream is the response header the router stamps with
// the base URL of the upstream that served the request.
const RouterHeaderUpstream = router.HeaderUpstream

// NewRouter validates the topology and builds a router. Its routing
// table starts empty; the first health-poll round (immediate on
// Watch/ListenAndServe entry) populates it.
func NewRouter(cfg RouterConfig) (*Router, error) {
	return router.New(cfg)
}
