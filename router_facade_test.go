package brainprint_test

import (
	"testing"

	"brainprint"
)

// TestFacadeRouter exercises the root-package router wrappers the way
// an embedding program would: build from a RouterConfig, reject a bad
// topology, and keep the re-exported header names aligned with the
// wire protocol documented in docs/ROUTER.md.
func TestFacadeRouter(t *testing.T) {
	rt, err := brainprint.NewRouter(brainprint.RouterConfig{
		Primary:  "http://127.0.0.1:7311",
		Replicas: []string{"http://127.0.0.1:7312"},
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	if rt.Handler() == nil {
		t.Fatal("Handler() returned nil")
	}
	if _, err := brainprint.NewRouter(brainprint.RouterConfig{}); err == nil {
		t.Fatal("NewRouter with no primary returned nil error")
	}
	if brainprint.RouterHeaderMaxStaleness != "X-Max-Staleness-Seconds" {
		t.Errorf("RouterHeaderMaxStaleness = %q", brainprint.RouterHeaderMaxStaleness)
	}
	if brainprint.RouterHeaderUpstream != "X-Brainprint-Upstream" {
		t.Errorf("RouterHeaderUpstream = %q", brainprint.RouterHeaderUpstream)
	}
}
