package brainprint

// The context-aware session API: a stateful Attacker owns the enrolled
// fingerprint gallery and the attack configuration, and serves probes,
// batches, streams, and whole experiments under a context.Context. This
// is the primary public API; the stateless free functions in
// brainprint.go remain as thin compatibility wrappers over it.

import (
	"context"
	"time"

	"brainprint/internal/attacker"
	"brainprint/internal/gallery"
	"brainprint/internal/gallery/ivf"
	"brainprint/internal/gallery/shard"
)

// Attacker is a long-lived identification session: it owns an enrolled
// fingerprint gallery plus the attack configuration and serves
// Identify, IdentifyBatch, IdentifyStream, TaskPredict, Deanonymize and
// RunExperiment under a context. Construct with NewAttacker; safe for
// concurrent use.
type Attacker = attacker.Attacker

// AttackerOption configures NewAttacker; options apply in order, later
// options win.
type AttackerOption = attacker.Option

// Probe is one streamed identification request (an opaque ID plus the
// fingerprint vector).
type Probe = attacker.Probe

// StreamResult is one streamed identification outcome.
type StreamResult = attacker.StreamResult

// BatchResult is the outcome of Attacker.IdentifyBatch: per-probe
// ranked candidates, plus the optimal one-to-one assignment when the
// session was built WithAssignment(true).
type BatchResult = attacker.BatchResult

// ExperimentInput carries the cohorts and sweep parameters of one
// Attacker.RunExperiment call; zero values mean the documented
// defaults.
type ExperimentInput = attacker.Input

// ExperimentResult is the structured outcome of an experiment; Render
// prints the paper's artifact as text.
type ExperimentResult = attacker.Result

// ExperimentSpec describes one registered experiment: its CLI name,
// one-line synopsis, and which cohorts it needs. The CLI's usage text
// and dispatch both derive from this registry.
type ExperimentSpec = attacker.Experiment

// ErrNoGallery is returned by identification methods of an Attacker
// built without a gallery.
var ErrNoGallery = attacker.ErrNoGallery

// NewAttacker builds an identification session over an enrolled
// gallery engine — a single-file *Gallery or a sharded *GalleryStore.
// Pass nil for an experiment-only session (RunExperiment and
// TaskPredict work; identification methods return ErrNoGallery).
func NewAttacker(g GalleryEngine, opts ...AttackerOption) (*Attacker, error) {
	return attacker.New(g, opts...)
}

// WithConfig sets the session's attack configuration.
func WithConfig(cfg AttackConfig) AttackerOption { return attacker.WithConfig(cfg) }

// WithParallelism bounds the session's worker count (0 = all cores,
// 1 = serial). Results are identical at any setting.
func WithParallelism(n int) AttackerOption { return attacker.WithParallelism(n) }

// WithTopK sets how many ranked candidates each identification returns
// (default 1).
func WithTopK(k int) AttackerOption { return attacker.WithTopK(k) }

// WithAssignment enables the Hungarian one-to-one assignment on batch
// identifications.
func WithAssignment(on bool) AttackerOption { return attacker.WithAssignment(on) }

// WithMutableGallery enrolls a live, writable gallery (OpenLiveGallery)
// as the session's engine and exposes its write surface through
// (*Attacker).Mutable, enabling the HTTP service's online enrollment
// endpoints. Identification answers reflect every mutation committed
// before the sweep began.
func WithMutableGallery(m GalleryMutable) AttackerOption { return attacker.WithMutableGallery(m) }

// WithTimeout sets a default per-call deadline for every session
// method (0 = none).
func WithTimeout(d time.Duration) AttackerOption { return attacker.WithTimeout(d) }

// WithScanPrecision selects the engine's candidate-scan precision.
// Reduced precisions (ScanFloat32, ScanInt8) accelerate candidate
// selection only — every returned score is the exact float64
// expression, bit-identical to the default scan. Engines without the
// knob (the single-file Gallery) accept only ScanFloat64.
func WithScanPrecision(p ScanPrecision) AttackerOption { return attacker.WithScanPrecision(p) }

// WithANN selects the engine's IVF cell fan-out: queries scan only the
// nprobe index cells nearest each probe instead of every record —
// sub-linear candidate selection at population scale. 0 (the default)
// keeps the exact sweep. The knob trades recall for speed, never score
// fidelity: every returned score stays the exact float64 expression,
// bit-identical to the dense path, and nprobe at or above the index's
// cell count is bit-identical to the exact scan outright. A positive
// nprobe requires an engine whose database carries an index sidecar
// (built by `brainprint gallery index`). See DESIGN.md §9.
func WithANN(nprobe int) AttackerOption { return attacker.WithANN(nprobe) }

// Experiments returns every registered experiment in canonical "all"
// order.
func Experiments() []ExperimentSpec { return attacker.Experiments() }

// ExperimentNames returns the registered experiment names in canonical
// order — the single source of the CLI's experiment list.
func ExperimentNames() []string { return attacker.Names() }

// LookupExperiment returns the experiment registered under name.
func LookupExperiment(name string) (ExperimentSpec, bool) { return attacker.Find(name) }

// ---- Typed gallery errors ----
//
// Re-exported so callers can errors.Is against facade symbols without
// importing internal/gallery.
var (
	// ErrGalleryBadMagic: the file is not a gallery file.
	ErrGalleryBadMagic = gallery.ErrBadMagic
	// ErrGalleryVersion: unsupported gallery format version.
	ErrGalleryVersion = gallery.ErrVersion
	// ErrGalleryTruncated: the file ends mid-header or mid-record.
	ErrGalleryTruncated = gallery.ErrTruncated
	// ErrGalleryChecksum: a header or record failed CRC verification.
	ErrGalleryChecksum = gallery.ErrChecksum
	// ErrGalleryDimMismatch: fingerprint dimensions disagree with the
	// gallery on enrollment, query, or in a corrupt header.
	ErrGalleryDimMismatch = gallery.ErrDimMismatch
	// ErrGalleryDuplicateID: a subject ID is already enrolled.
	ErrGalleryDuplicateID = gallery.ErrDuplicateID
)

// ---- Sharded gallery store ----

// GalleryEngine is the query surface shared by the single-file Gallery
// and the sharded GalleryStore; NewAttacker and the HTTP service accept
// either. All implementations keep scores bit-identical to
// SimilarityMatrix at any parallelism setting.
type GalleryEngine = gallery.Engine

// GalleryStore is a horizontally sharded gallery: N shard files (each a
// standard gallery file) described by a checksummed manifest, queried
// with a deterministic fan-out planner and an optional int8 quantized
// scan that rescores its top candidates exactly. See DESIGN.md §6.
type GalleryStore = shard.Store

// ScanPrecision selects how an engine's candidate scan arithmetic runs:
// exact float64 (the default), float32 with exact rescoring, or int8
// quantized with exact rescoring. Whatever the setting, every returned
// score is the exact float64 expression — reduced precisions steer
// candidate selection only. See DESIGN.md §8.
type ScanPrecision = gallery.ScanPrecision

// Scan precisions accepted by WithScanPrecision and
// (*GalleryStore).SetPrecision.
const (
	// ScanFloat64 is the exact scan — the default.
	ScanFloat64 = gallery.ScanFloat64
	// ScanFloat32 scans in float32 and rescores candidates exactly.
	ScanFloat32 = gallery.ScanFloat32
	// ScanInt8 scans int8-quantized vectors and rescores exactly;
	// requires a store built or opened with quantization parameters.
	ScanInt8 = gallery.ScanInt8
)

// ParseScanPrecision parses a ScanPrecision from its string form —
// "float64"/"f64"/"exact" (or empty), "float32"/"f32", and
// "int8"/"quantized" — as accepted by the CLI's -scan flags.
func ParseScanPrecision(s string) (ScanPrecision, error) { return gallery.ParseScanPrecision(s) }

// PrecisionSetter is the optional engine surface for selecting scan
// precision at runtime; *GalleryStore and the live engine implement it.
type PrecisionSetter = gallery.PrecisionSetter

// GalleryANNSetter is the optional engine surface for the IVF
// approximate-scan knob; *GalleryStore and the live engine implement
// it. See DESIGN.md §9 for the recall/exactness contract.
type GalleryANNSetter = gallery.ANNSetter

// DefaultNProbe is the default cell fan-out the CLI and service use
// when ANN scanning is enabled without an explicit -nprobe.
const DefaultNProbe = ivf.DefaultNProbe

// GalleryANNSidecarPath returns the index sidecar path for a gallery
// database path ("<db>.ivf"), as written by `gallery index` and loaded
// automatically by OpenGalleryStore.
func GalleryANNSidecarPath(dbPath string) string { return ivf.SidecarPath(dbPath) }

// GalleryShardStat is one shard's health report (records, bytes,
// checksum/dims status), as printed by the `gallery info` subcommand.
type GalleryShardStat = shard.Stat

// GalleryShardMeta is one shard's manifest entry.
type GalleryShardMeta = shard.Meta

// GalleryShardFault identifies a shard that failed to load and why.
type GalleryShardFault = shard.Fault

// GalleryPartialError reports that some shards of a store failed to
// load while the rest remain queryable; errors.Is(err,
// ErrGalleryPartial) matches it.
type GalleryPartialError = shard.PartialError

// GalleryManifestVersion is the shard manifest format version this
// build reads and writes.
const GalleryManifestVersion = shard.ManifestVersion

// Typed sharded-store errors, matched with errors.Is. Truncation,
// checksum, and dimension failures inside manifests and shard files
// reuse the ErrGallery* sentinels above.
var (
	// ErrGalleryPartial: some shards are unavailable, the rest serve.
	ErrGalleryPartial = shard.ErrPartial
	// ErrGalleryShardMissing: a shard file named by the manifest does
	// not exist.
	ErrGalleryShardMissing = shard.ErrShardMissing
	// ErrGalleryShardCorrupt: a shard file disagrees with its manifest
	// entry or fails to decode.
	ErrGalleryShardCorrupt = shard.ErrShardCorrupt
	// ErrGalleryManifestMagic: the file is not a shard manifest.
	ErrGalleryManifestMagic = shard.ErrManifestMagic
	// ErrGalleryManifestVersion: unsupported manifest format version.
	ErrGalleryManifestVersion = shard.ErrManifestVersion
	// ErrGalleryNoQuantization: SetQuantized(true) on a store without
	// quantization parameters.
	ErrGalleryNoQuantization = shard.ErrNoQuantization
	// ErrGalleryNoANNIndex: enabling the ANN scan on an engine whose
	// database carries no index sidecar.
	ErrGalleryNoANNIndex = shard.ErrNoANNIndex
	// ErrGalleryANNMagic: the sidecar file is not an IVF index.
	ErrGalleryANNMagic = ivf.ErrMagic
	// ErrGalleryANNVersion: unsupported index sidecar format version.
	ErrGalleryANNVersion = ivf.ErrVersion
	// ErrGalleryANNCorrupt: the index sidecar decoded but violates a
	// structural invariant.
	ErrGalleryANNCorrupt = ivf.ErrCorrupt
)

// NewGalleryStore splits an in-memory gallery into a sharded store,
// routing each subject by the stable RouteGalleryID hash. With quantize
// set, int8 scalar-quantization parameters are derived from the
// enrolled population and the quantized scan path is enabled. Persist
// with (*GalleryStore).WriteFiles; reopen with OpenGalleryStore.
func NewGalleryStore(g *Gallery, shards int, quantize bool) (*GalleryStore, error) {
	return shard.FromGallery(g, shards, quantize)
}

// OpenGalleryStore loads a sharded store from a manifest path — or
// transparently wraps a plain single-file gallery as a one-shard store,
// so callers can pass either format. When some shards fail to load the
// surviving shards are returned together with a *GalleryPartialError;
// the caller chooses between degraded service and refusal.
func OpenGalleryStore(path string) (*GalleryStore, error) { return shard.Open(path) }

// RouteGalleryID returns the shard a subject ID routes to — part of
// the on-disk contract, stable across versions and platforms.
func RouteGalleryID(id string, shards int) int { return shard.RouteID(id, shards) }

// runExperimentCompat backs the deprecated RunFigureX/RunTableX/
// RunDefense wrappers: a throwaway session around the legacy positional
// arguments, run under context.Background().
func runExperimentCompat(name string, cfg AttackConfig, in ExperimentInput) (ExperimentResult, error) {
	a, err := NewAttacker(nil, WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return a.RunExperiment(context.Background(), name, in)
}
