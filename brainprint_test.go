package brainprint_test

// Facade tests: exercise the public API exactly as a downstream user
// would, covering the documented quickstart flow and every exported
// entry point's happy path — including the deprecated compatibility
// wrappers, which must keep delegating correctly.

//lint:file-ignore SA1019 the deprecated wrappers are exercised on purpose

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"brainprint"
)

func facadeCohort(t *testing.T) *brainprint.HCPCohort {
	t.Helper()
	p := brainprint.DefaultHCPParams()
	p.Subjects = 12
	p.Regions = 40
	p.RestFrames = 150
	p.TaskFrames = 110
	c, err := brainprint.GenerateHCP(p)
	if err != nil {
		t.Fatalf("GenerateHCP: %v", err)
	}
	return c
}

func TestQuickstartFlow(t *testing.T) {
	cohort := facadeCohort(t)
	knownScans, err := cohort.ScansFor(brainprint.Rest1, brainprint.LR)
	if err != nil {
		t.Fatalf("ScansFor: %v", err)
	}
	known, err := brainprint.GroupMatrix(knownScans, brainprint.ConnectomeOptions{})
	if err != nil {
		t.Fatalf("GroupMatrix: %v", err)
	}
	anonScans, err := cohort.ScansFor(brainprint.Rest2, brainprint.RL)
	if err != nil {
		t.Fatalf("ScansFor: %v", err)
	}
	anon, err := brainprint.GroupMatrix(anonScans, brainprint.ConnectomeOptions{})
	if err != nil {
		t.Fatalf("GroupMatrix: %v", err)
	}
	res, err := brainprint.Deanonymize(known, anon, brainprint.DefaultAttackConfig())
	if err != nil {
		t.Fatalf("Deanonymize: %v", err)
	}
	if res.Accuracy < 0.9 {
		t.Errorf("quickstart accuracy %.2f want >= 0.9", res.Accuracy)
	}
	if heat := brainprint.RenderHeatmap(res.Similarity, 40); !strings.Contains(heat, "scale:") {
		t.Error("heatmap rendering broken")
	}
}

func TestFacadeExperimentRunners(t *testing.T) {
	cohort := facadeCohort(t)
	cfg := brainprint.DefaultAttackConfig()
	cfg.Features = 60

	f1, err := brainprint.RunFigure1(cohort, cfg)
	if err != nil {
		t.Fatalf("RunFigure1: %v", err)
	}
	if f1.DiagMean <= f1.OffMean {
		t.Error("figure 1 contrast inverted")
	}
	f2, err := brainprint.RunFigure2(cohort, cfg)
	if err != nil {
		t.Fatalf("RunFigure2: %v", err)
	}
	if f2.Accuracy < 0.3 {
		t.Errorf("figure 2 accuracy %.2f suspiciously low", f2.Accuracy)
	}
}

func TestFacadeTaskAndPerformance(t *testing.T) {
	cohort := facadeCohort(t)
	f6, err := brainprint.RunFigure6(cohort, 0.5, brainprint.TSNEConfig{Perplexity: 8, Iterations: 150, Seed: 2}, 2)
	if err != nil {
		t.Fatalf("RunFigure6: %v", err)
	}
	if f6.Accuracy < 0.8 {
		t.Errorf("task prediction %.2f want >= 0.8", f6.Accuracy)
	}
	pcfg := brainprint.DefaultPerformanceConfig()
	pcfg.Trials = 4
	t1, err := brainprint.RunTable1(cohort, pcfg)
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	if len(t1.Rows) != 4 {
		t.Errorf("table 1 rows = %d want 4", len(t1.Rows))
	}
}

func TestFacadeADHDAndNoise(t *testing.T) {
	p := brainprint.DefaultADHDParams()
	p.Controls = 8
	p.Subtype1 = 5
	p.Subtype2 = 0
	p.Subtype3 = 4
	p.Regions = 36
	p.Frames = 120
	adhd, err := brainprint.GenerateADHD(p)
	if err != nil {
		t.Fatalf("GenerateADHD: %v", err)
	}
	cfg := brainprint.DefaultAttackConfig()
	cfg.Features = 60
	f7, err := brainprint.RunFigure7(adhd, cfg)
	if err != nil {
		t.Fatalf("RunFigure7: %v", err)
	}
	if f7.NumSubj != 5 {
		t.Errorf("subtype-1 subjects = %d want 5", f7.NumSubj)
	}
	f9, err := brainprint.RunFigure9(adhd, cfg, 3, 0.7, 4)
	if err != nil {
		t.Fatalf("RunFigure9: %v", err)
	}
	if f9.MixedTransfer.N != 3 {
		t.Errorf("transfer trials = %d want 3", f9.MixedTransfer.N)
	}

	hcp := facadeCohort(t)
	t2, err := brainprint.RunTable2(hcp, adhd, []float64{0.1}, 2, cfg, 5)
	if err != nil {
		t.Fatalf("RunTable2: %v", err)
	}
	if len(t2.HCP) != 1 || len(t2.ADHD) != 1 {
		t.Error("table 2 rows missing")
	}
}

func TestFacadeImagingPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	grid, err := brainprint.NewGrid(12, 12, 12, 2)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	phantom, err := brainprint.NewPhantom(grid, brainprint.DefaultPhantomParams(), rng)
	if err != nil {
		t.Fatalf("NewPhantom: %v", err)
	}
	atlas := brainprint.SymmetricAtlas("t", 6)
	labels := atlas.LabelVoxels(phantom)
	series := make([][]float64, 6)
	for r := range series {
		s := make([]float64, 40)
		for i := range s {
			s[i] = math.Sin(float64(i)/7 + float64(r))
		}
		series[r] = s
	}
	params := brainprint.DefaultAcquisitionParams()
	params.Frames = 40
	params.MotionMax = 0.3
	raw, _, err := brainprint.Acquire(phantom,
		&brainprint.RegionActivity{Labels: labels, Series: series}, params, rng)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	pipe := brainprint.DefaultPipeline(brainprint.MNIGrid(12))
	clean, ctx, err := pipe.Run(raw)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	var brainVoxels []int
	for i, b := range ctx.BrainMask {
		if b {
			brainVoxels = append(brainVoxels, i)
		}
	}
	regLabels := make([]int, len(brainVoxels))
	regionSeries, err := brainprint.ReduceToRegions(clean, brainVoxels, regLabels, 6)
	if err != nil {
		t.Fatalf("ReduceToRegions: %v", err)
	}
	con, err := brainprint.ConnectomeFromSeries(regionSeries, brainprint.ConnectomeOptions{})
	if err != nil {
		t.Fatalf("ConnectomeFromSeries: %v", err)
	}
	if con.NumRegions() != 6 || con.NumEdges() != 15 {
		t.Errorf("connectome %d regions %d edges", con.NumRegions(), con.NumEdges())
	}
}

func TestFacadeNoiseAndLeverage(t *testing.T) {
	cohort := facadeCohort(t)
	scan, err := cohort.Scan(0, brainprint.Rest1, brainprint.LR)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	rng := rand.New(rand.NewSource(6))
	noisy, err := brainprint.AddSeriesNoise(scan.Series, 0.2, rng)
	if err != nil {
		t.Fatalf("AddSeriesNoise: %v", err)
	}
	if noisy.EqualApprox(scan.Series, 1e-9) {
		t.Error("noise had no effect")
	}
	scans, _ := cohort.ScansFor(brainprint.Rest1, brainprint.LR)
	group, _ := brainprint.GroupMatrix(scans, brainprint.ConnectomeOptions{})
	scores, err := brainprint.LeverageScores(group)
	if err != nil {
		t.Fatalf("LeverageScores: %v", err)
	}
	if len(scores) != group.Rows() {
		t.Errorf("scores = %d want %d", len(scores), group.Rows())
	}
}

func TestFacadeRenderHelpers(t *testing.T) {
	m := brainprint.NewMatrix(2, 2)
	m.Set(0, 0, 1)
	if s := brainprint.RenderHeatmap(m, 10); !strings.Contains(s, "scale:") {
		t.Error("RenderHeatmap broken")
	}
	pts := brainprint.NewMatrix(2, 2)
	pts.Set(1, 0, 1)
	pts.Set(1, 1, 1)
	if s := brainprint.RenderScatter(pts, []int{0, 1}, 10, 5); !strings.Contains(s, "1") {
		t.Error("RenderScatter broken")
	}
	if s := brainprint.RenderTable([]string{"h"}, [][]string{{"v"}}); !strings.Contains(s, "v") {
		t.Error("RenderTable broken")
	}
}

// ExampleDeanonymize demonstrates the identification attack on a tiny
// cohort. Generation and the attack are fully deterministic, so the
// output is stable.
func ExampleDeanonymize() {
	params := brainprint.DefaultHCPParams()
	params.Subjects = 8
	params.Regions = 30
	params.RestFrames = 120
	params.TaskFrames = 80
	cohort, err := brainprint.GenerateHCP(params)
	if err != nil {
		panic(err)
	}
	knownScans, _ := cohort.ScansFor(brainprint.Rest1, brainprint.LR)
	anonScans, _ := cohort.ScansFor(brainprint.Rest2, brainprint.RL)
	known, _ := brainprint.GroupMatrix(knownScans, brainprint.ConnectomeOptions{})
	anon, _ := brainprint.GroupMatrix(anonScans, brainprint.ConnectomeOptions{})
	res, err := brainprint.Deanonymize(known, anon, brainprint.DefaultAttackConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("accuracy: %.0f%%, features: %d of %d\n",
		100*res.Accuracy, len(res.Features), known.Rows())
	// Output: accuracy: 100%, features: 100 of 435
}

// ExampleLeverageScores shows the feature-scoring primitive behind the
// principal features subspace method.
func ExampleLeverageScores() {
	m := brainprint.NewMatrix(4, 2)
	// Feature 0 spans a direction no other feature covers.
	m.Set(0, 0, 5)
	m.Set(1, 1, 1)
	m.Set(2, 1, 1)
	m.Set(3, 1, 1)
	scores, err := brainprint.LeverageScores(m)
	if err != nil {
		panic(err)
	}
	fmt.Printf("feature 0 leverage: %.2f\n", scores[0])
	// Output: feature 0 leverage: 1.00
}

// TestFacadeGalleryFlow walks the documented enroll-once, query-many
// flow end to end through the public API: build fingerprints from the
// known session, enroll to disk, reopen, append, and attack the
// anonymous session with ranked top-k queries.
func TestFacadeGalleryFlow(t *testing.T) {
	c := facadeCohort(t)
	knownScans, err := c.ScansFor(brainprint.Rest1, brainprint.LR)
	if err != nil {
		t.Fatalf("ScansFor: %v", err)
	}
	known, err := brainprint.GroupMatrix(knownScans, brainprint.ConnectomeOptions{})
	if err != nil {
		t.Fatalf("GroupMatrix: %v", err)
	}
	cfg := brainprint.DefaultAttackConfig()
	cfg.Features = 60
	fps, idx, err := brainprint.Fingerprints(known, cfg)
	if err != nil {
		t.Fatalf("Fingerprints: %v", err)
	}
	if idx == nil {
		t.Fatal("expected a feature index for a reducing config")
	}

	n := fps.Cols()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("hcp-s%03d", i)
	}
	g := brainprint.NewGalleryIndexed(idx)
	if err := g.EnrollMatrix(ids[:n-2], fps.SelectCols(seqInts(n-2))); err != nil {
		t.Fatalf("EnrollMatrix: %v", err)
	}
	path := t.TempDir() + "/hcp.bpg"
	if err := g.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// Append the last two subjects to the file without rewriting it.
	if _, err := brainprint.EnrollGalleryFile(path, ids[n-2:], fps.SelectCols([]int{n - 2, n - 1})); err != nil {
		t.Fatalf("EnrollGalleryFile: %v", err)
	}
	reopened, err := brainprint.OpenGallery(path)
	if err != nil {
		t.Fatalf("OpenGallery: %v", err)
	}
	if reopened.Len() != n {
		t.Fatalf("reopened gallery has %d subjects want %d", reopened.Len(), n)
	}

	// The anonymous session: raw probes, projected through the stored
	// feature index inside the gallery.
	anonScans, err := c.ScansFor(brainprint.Rest2, brainprint.RL)
	if err != nil {
		t.Fatalf("ScansFor anon: %v", err)
	}
	anon, err := brainprint.GroupMatrix(anonScans, brainprint.ConnectomeOptions{})
	if err != nil {
		t.Fatalf("GroupMatrix anon: %v", err)
	}
	ranked, err := reopened.QueryAll(anon, 3)
	if err != nil {
		t.Fatalf("QueryAll: %v", err)
	}
	correct := 0
	for j, top := range ranked {
		if len(top) != 3 {
			t.Fatalf("probe %d: %d candidates want 3", j, len(top))
		}
		if top[0].ID == ids[j] {
			correct++
		}
	}
	// The dense attack on the same reduced features must agree with the
	// gallery's argmax — and identification should work.
	res, err := brainprint.Deanonymize(known, anon, cfg)
	if err != nil {
		t.Fatalf("Deanonymize: %v", err)
	}
	for j, top := range ranked {
		if top[0].Index != res.Predictions[j] {
			t.Errorf("probe %d: gallery argmax %d, dense attack %d", j, top[0].Index, res.Predictions[j])
		}
	}
	if got := float64(correct) / float64(len(ranked)); got != res.Accuracy {
		t.Errorf("gallery top-1 accuracy %.3f != attack accuracy %.3f", got, res.Accuracy)
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
