package brainprint_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation at a medium cohort scale (fast enough for
// `go test -bench=.`, large enough for stable accuracies) and reports
// the headline metric of each experiment alongside the runtime.
// `cmd/brainprint -scale paper` runs the same experiments at the paper's
// full 100×360 dimensions. Ablation benchmarks cover the design choices
// called out in DESIGN.md.

//lint:file-ignore SA1019 the deprecated wrappers are benchmarked on purpose

import (
	"sync"
	"testing"

	"brainprint"
)

// benchHCPParams is the shared medium-scale configuration: the
// paper-calibrated (thin identification margin) parameterization of
// PaperScaleHCPParams at reduced dimensions, so accuracies and their
// decay under noise behave like the paper's rather than saturating at
// 100%.
func benchHCPParams() brainprint.HCPParams {
	p := brainprint.PaperScaleHCPParams()
	p.Subjects = 40
	p.Regions = 100
	p.RestFrames = 250
	p.TaskFrames = 180
	p.Seed = 7
	return p
}

func benchADHDParams() brainprint.ADHDParams {
	p := brainprint.PaperScaleADHDParams()
	p.Controls = 30
	p.Subtype1 = 12
	p.Subtype2 = 2
	p.Subtype3 = 10
	p.Regions = 116
	p.Frames = 200
	p.Seed = 8
	return p
}

var (
	benchOnce sync.Once
	benchHCP  *brainprint.HCPCohort
	benchADHD *brainprint.ADHDCohort
	benchErr  error
)

// cohorts lazily generates the shared benchmark cohorts exactly once.
func cohorts(b *testing.B) (*brainprint.HCPCohort, *brainprint.ADHDCohort) {
	b.Helper()
	benchOnce.Do(func() {
		benchHCP, benchErr = brainprint.GenerateHCP(benchHCPParams())
		if benchErr != nil {
			return
		}
		benchADHD, benchErr = brainprint.GenerateADHD(benchADHDParams())
	})
	if benchErr != nil {
		b.Fatalf("cohort generation: %v", benchErr)
	}
	return benchHCP, benchADHD
}

// BenchmarkFigure1 regenerates Figure 1: resting-state pairwise
// similarity and identification (paper: accuracy > 94%).
func BenchmarkFigure1(b *testing.B) {
	hcp, _ := cohorts(b)
	cfg := brainprint.DefaultAttackConfig()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := brainprint.RunFigure1(hcp, cfg)
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy
	}
	b.ReportMetric(100*acc, "accuracy%")
}

// BenchmarkFigure2 regenerates Figure 2: language-task similarity
// (diagonal dominant, weaker contrast than rest).
func BenchmarkFigure2(b *testing.B) {
	hcp, _ := cohorts(b)
	cfg := brainprint.DefaultAttackConfig()
	b.ResetTimer()
	var contrast float64
	for i := 0; i < b.N; i++ {
		res, err := brainprint.RunFigure2(hcp, cfg)
		if err != nil {
			b.Fatal(err)
		}
		contrast = res.DiagMean - res.OffMean
	}
	b.ReportMetric(contrast, "diag-contrast")
}

// BenchmarkFigure5 regenerates the 8×8 cross-task identification matrix
// (paper: REST > 94%, LANGUAGE/RELATIONAL > 90%, SOCIAL > 80%, MOTOR and
// WM poor, matrix asymmetric).
func BenchmarkFigure5(b *testing.B) {
	hcp, _ := cohorts(b)
	cfg := brainprint.DefaultAttackConfig()
	b.ResetTimer()
	var restAcc, motorAcc float64
	for i := 0; i < b.N; i++ {
		res, err := brainprint.RunFigure5(hcp, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for j, t := range res.Conditions {
			switch t {
			case brainprint.Rest1:
				restAcc = res.Accuracy.At(j, j)
			case brainprint.Motor:
				motorAcc = res.Accuracy.At(j, j)
			}
		}
	}
	b.ReportMetric(100*restAcc, "rest%")
	b.ReportMetric(100*motorAcc, "motor%")
}

// BenchmarkFigure6 regenerates the t-SNE task clustering and 1-NN task
// prediction (paper: 100% on tasks, 99.01 ± 0.52% on rest).
func BenchmarkFigure6(b *testing.B) {
	hcp, _ := cohorts(b)
	tcfg := brainprint.TSNEConfig{Perplexity: 20, Iterations: 300, Seed: 3}
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := brainprint.RunFigure6(hcp, 0.5, tcfg, 3)
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy
	}
	b.ReportMetric(100*acc, "task-accuracy%")
}

// BenchmarkTable1 regenerates the task-performance regression errors
// (paper: train 0.28–0.57%, test 0.60–2.74% nRMSE).
func BenchmarkTable1(b *testing.B) {
	hcp, _ := cohorts(b)
	cfg := brainprint.DefaultPerformanceConfig()
	cfg.Trials = 10
	cfg.Seed = 4
	b.ResetTimer()
	var testErr float64
	for i := 0; i < b.N; i++ {
		res, err := brainprint.RunTable1(hcp, cfg)
		if err != nil {
			b.Fatal(err)
		}
		testErr = res.Rows[brainprint.Language].TestNRMSE.Mean
	}
	b.ReportMetric(testErr, "language-test-nRMSE%")
}

// BenchmarkFigure7 regenerates the ADHD subtype-1 similarity matrix.
func BenchmarkFigure7(b *testing.B) {
	_, adhd := cohorts(b)
	cfg := brainprint.DefaultAttackConfig()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := brainprint.RunFigure7(adhd, cfg)
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy
	}
	b.ReportMetric(100*acc, "accuracy%")
}

// BenchmarkFigure8 regenerates the ADHD subtype-3 similarity matrix.
func BenchmarkFigure8(b *testing.B) {
	_, adhd := cohorts(b)
	cfg := brainprint.DefaultAttackConfig()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := brainprint.RunFigure8(adhd, cfg)
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy
	}
	b.ReportMetric(100*acc, "accuracy%")
}

// BenchmarkFigure9 regenerates the full ADHD cohort experiment with
// train/test leverage transfer (paper: 97.2 ± 0.9% cases, 94.12 ± 3.4%
// mixed).
func BenchmarkFigure9(b *testing.B) {
	_, adhd := cohorts(b)
	cfg := brainprint.DefaultAttackConfig()
	b.ResetTimer()
	var mixed float64
	for i := 0; i < b.N; i++ {
		res, err := brainprint.RunFigure9(adhd, cfg, 5, 0.7, 5)
		if err != nil {
			b.Fatal(err)
		}
		mixed = res.MixedTransfer.Mean
	}
	b.ReportMetric(mixed, "mixed-transfer%")
}

// BenchmarkTable2 regenerates the multi-site noise sweep (paper: HCP
// 91.1/86.7/79.1%, ADHD 96.3/89.2/84.1% at 10/20/30% noise).
func BenchmarkTable2(b *testing.B) {
	hcp, adhd := cohorts(b)
	cfg := brainprint.DefaultAttackConfig()
	b.ResetTimer()
	var low, high float64
	for i := 0; i < b.N; i++ {
		res, err := brainprint.RunTable2(hcp, adhd, []float64{0.1, 0.2, 0.3}, 2, cfg, 6)
		if err != nil {
			b.Fatal(err)
		}
		low = res.HCP[0].Mean
		high = res.HCP[len(res.HCP)-1].Mean
	}
	b.ReportMetric(low, "hcp-10%-noise%")
	b.ReportMetric(high, "hcp-30%-noise%")
}

// ---- Ablations (design choices called out in DESIGN.md) ----

// BenchmarkAblationSampling compares feature-selection strategies for
// the identification attack: deterministic leverage (the paper), l2-norm
// sampling, uniform sampling, and the full feature space.
func BenchmarkAblationSampling(b *testing.B) {
	hcp, _ := cohorts(b)
	knownScans, err := hcp.ScansFor(brainprint.Rest1, brainprint.LR)
	if err != nil {
		b.Fatal(err)
	}
	anonScans, err := hcp.ScansFor(brainprint.Rest2, brainprint.RL)
	if err != nil {
		b.Fatal(err)
	}
	known, err := brainprint.GroupMatrix(knownScans, brainprint.ConnectomeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	anon, err := brainprint.GroupMatrix(anonScans, brainprint.ConnectomeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  brainprint.AttackConfig
	}{
		{"leverage-top100", brainprint.AttackConfig{Features: 100, Method: brainprint.SamplingLeverage, Deterministic: true}},
		{"l2norm-sample100", brainprint.AttackConfig{Features: 100, Method: brainprint.SamplingL2Norm, Seed: 1}},
		{"uniform-sample100", brainprint.AttackConfig{Features: 100, Method: brainprint.SamplingUniform, Seed: 1}},
		{"full-features", brainprint.AttackConfig{Features: 0}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				res, err := brainprint.Deanonymize(known, anon, tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.Accuracy
			}
			b.ReportMetric(100*acc, "accuracy%")
		})
	}
}

// BenchmarkAblationFeatureCount sweeps the principal-features budget t,
// the paper's "reduce 64620 features to under 100" choice.
func BenchmarkAblationFeatureCount(b *testing.B) {
	hcp, _ := cohorts(b)
	knownScans, _ := hcp.ScansFor(brainprint.Rest1, brainprint.LR)
	anonScans, _ := hcp.ScansFor(brainprint.Rest2, brainprint.RL)
	known, err := brainprint.GroupMatrix(knownScans, brainprint.ConnectomeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	anon, err := brainprint.GroupMatrix(anonScans, brainprint.ConnectomeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range []int{10, 50, 100, 500, 2000} {
		cfg := brainprint.DefaultAttackConfig()
		cfg.Features = t
		b.Run(featName(t), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				res, err := brainprint.Deanonymize(known, anon, cfg)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.Accuracy
			}
			b.ReportMetric(100*acc, "accuracy%")
		})
	}
}

func featName(t int) string {
	switch {
	case t < 100:
		return "t0" + itoa(t)
	default:
		return "t" + itoa(t)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationEmbedding compares t-SNE against a linear truncated
// projection (PCA-style, via the leverage machinery's SVD) for the task
// clustering attack. The paper argues t-SNE's cluster preservation is
// what makes task prediction work.
func BenchmarkAblationEmbedding(b *testing.B) {
	hcp, _ := cohorts(b)
	b.Run("tsne", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			res, err := brainprint.RunFigure6(hcp, 0.5, brainprint.TSNEConfig{Perplexity: 20, Iterations: 300, Seed: 3}, 3)
			if err != nil {
				b.Fatal(err)
			}
			acc = res.Accuracy
		}
		b.ReportMetric(100*acc, "task-accuracy%")
	})
	b.Run("tsne-few-iters", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			res, err := brainprint.RunFigure6(hcp, 0.5, brainprint.TSNEConfig{Perplexity: 20, Iterations: 30, ExaggerationIters: 5, Seed: 3}, 3)
			if err != nil {
				b.Fatal(err)
			}
			acc = res.Accuracy
		}
		b.ReportMetric(100*acc, "task-accuracy%")
	})
}

// BenchmarkDefense evaluates the §4 countermeasure: targeted vs uniform
// noise on the released dataset at matched distortion budget.
func BenchmarkDefense(b *testing.B) {
	hcp, _ := cohorts(b)
	cfg := brainprint.DefaultAttackConfig()
	b.ResetTimer()
	var targeted, uniform float64
	for i := 0; i < b.N; i++ {
		res, err := brainprint.RunDefense(hcp, []float64{0.4}, 200, cfg, 9)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Strategy {
			case brainprint.DefenseTargeted:
				targeted = row.IdentificationAcc
			case brainprint.DefenseUniform:
				uniform = row.IdentificationAcc
			}
		}
	}
	b.ReportMetric(100*targeted, "targeted-ident%")
	b.ReportMetric(100*uniform, "uniform-ident%")
}

// BenchmarkAblationMatching compares the paper's independent argmax
// matching against the optimal one-to-one assignment (Hungarian).
func BenchmarkAblationMatching(b *testing.B) {
	hcp, _ := cohorts(b)
	knownScans, _ := hcp.ScansFor(brainprint.Rest1, brainprint.LR)
	anonScans, _ := hcp.ScansFor(brainprint.Rest2, brainprint.RL)
	known, err := brainprint.GroupMatrix(knownScans, brainprint.ConnectomeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	anon, err := brainprint.GroupMatrix(anonScans, brainprint.ConnectomeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	res, err := brainprint.Deanonymize(known, anon, brainprint.DefaultAttackConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("greedy-argmax", func(b *testing.B) {
		acc := res.Accuracy
		for i := 0; i < b.N; i++ {
			r2, err := brainprint.Deanonymize(known, anon, brainprint.DefaultAttackConfig())
			if err != nil {
				b.Fatal(err)
			}
			acc = r2.Accuracy
		}
		b.ReportMetric(100*acc, "accuracy%")
	})
	b.Run("hungarian", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			a, err := brainprint.OptimalAssignmentAccuracy(res.Similarity, nil)
			if err != nil {
				b.Fatal(err)
			}
			acc = a
		}
		b.ReportMetric(100*acc, "accuracy%")
	})
}
