package brainprint

// The gallery defense facade: composable anonymization transforms
// (k-same microaggregation, feature suppression/generalization,
// calibrated DP noise) applied to enrolled galleries, plus the
// attack-vs-utility sweep that measures what each pipeline buys and
// costs. See internal/defense for the transform engine and DESIGN.md
// §12 for the composition and determinism contract.

import (
	"context"

	"brainprint/internal/defense"
	"brainprint/internal/experiments"
)

// DefenseDescriptor is a validated anonymization pipeline: an ordered
// list of transform steps applied to a gallery's enrolled vectors.
// Build one with ParseDefenseDescriptor (or literally), apply it with
// ApplyDefense or persist it through LiveGalleryOptions.Defense; the
// shard manifest carries it so defended stores are self-describing.
type DefenseDescriptor = defense.Descriptor

// DefenseStep is one transform of a defense pipeline.
type DefenseStep = defense.Step

// DefenseKind discriminates the transform families of a DefenseStep.
type DefenseKind = defense.Kind

// DefenseMechanism selects the noise distribution of a KindNoise step.
type DefenseMechanism = defense.Mechanism

// Defense transform kinds and noise mechanisms.
const (
	// DefenseKSame replaces each record with its k-group centroid
	// (MDAV microaggregation) — every released vector is shared by at
	// least k subjects.
	DefenseKSame = defense.KindKSame
	// DefenseSuppress zeroes (or bucket-generalizes) the most
	// identifying features.
	DefenseSuppress = defense.KindSuppress
	// DefenseNoise adds calibrated Gaussian or Laplace noise per
	// feature, scaled by observed sensitivity and ε.
	DefenseNoise = defense.KindNoise
	// DefenseGaussian is the (ε, δ)-calibrated Gaussian mechanism.
	DefenseGaussian = defense.Gaussian
	// DefenseLaplace is the ε-calibrated Laplace mechanism.
	DefenseLaplace = defense.Laplace
)

// DefaultDefenseDelta is the δ a Gaussian noise step uses when the
// descriptor leaves it zero.
const DefaultDefenseDelta = defense.DefaultDelta

// Typed defense-descriptor errors, matched with errors.Is.
var (
	// ErrDefenseDescriptorVersion: unsupported descriptor codec version.
	ErrDefenseDescriptorVersion = defense.ErrDescriptorVersion
	// ErrDefenseDescriptorCorrupt: the encoded descriptor is
	// structurally broken (truncated, trailing bytes, bounds).
	ErrDefenseDescriptorCorrupt = defense.ErrDescriptorCorrupt
	// ErrDefenseDescriptorInvalid: a step's parameters are out of
	// domain (k < 2, ε ≤ 0, unsorted indices, …).
	ErrDefenseDescriptorInvalid = defense.ErrDescriptorInvalid
	// ErrDefenseDescriptorSyntax: the textual spec failed to parse.
	ErrDefenseDescriptorSyntax = defense.ErrDescriptorSyntax
)

// ParseDefenseDescriptor parses the textual pipeline spec accepted by
// the CLI's -defense flags — steps joined with '+', each
// "kind(key=value,...)":
//
//	ksame(k=5)
//	suppress(top=20,buckets=4) + noise(laplace,eps=0.5,seed=7)
//
// "none" (or the empty string) parses to nil, the undefended pipeline.
// The result is validated; String() round-trips the canonical form.
func ParseDefenseDescriptor(spec string) (*DefenseDescriptor, error) { return defense.Parse(spec) }

// ApplyDefense runs a defense pipeline over an enrolled gallery and
// returns the defended gallery (the input is never mutated; a nil or
// empty descriptor returns it unchanged). The transform is
// deterministic — bit-identical output at any parallelism setting —
// so enroll-time and compaction-time application of the same pipeline
// to the same records agree exactly.
func ApplyDefense(g *Gallery, d *DefenseDescriptor, parallelism int) (*Gallery, error) {
	return defense.Apply(g, d, parallelism)
}

// GalleryDefenseConfig parameterizes RunGalleryDefenseSweep; zero
// values mean the documented defaults (1000 subjects, 96 features,
// k-same k ∈ {2, 5, 10}, gaussian ε ∈ {20, 8, 2}).
type GalleryDefenseConfig = experiments.GalleryDefenseConfig

// GalleryDefenseRow is one cell of the defense sweep: a pipeline with
// its attack accuracy, vulnerable-population fraction, and utility
// metrics.
type GalleryDefenseRow = experiments.GalleryDefenseRow

// GalleryDefenseResult is the full attack-vs-utility grid; Render
// prints it as a table and MonotoneByStrength checks the CI gate
// invariant.
type GalleryDefenseResult = experiments.GalleryDefenseResult

// RunGalleryDefenseSweep runs the gallery anonymization
// attack-vs-utility sweep: a seeded synthetic cohort is enrolled,
// defended under each (kind, strength) pipeline, and re-attacked with
// ranked top-k identification; each cell reports privacy (top-1/top-k
// accuracy, uniquely-vulnerable fraction) next to utility
// (task-prediction accuracy, aggregate-query error). Also registered
// as the "gallery-defense" experiment.
func RunGalleryDefenseSweep(ctx context.Context, cfg GalleryDefenseConfig) (*GalleryDefenseResult, error) {
	return experiments.GalleryDefenseSweep(ctx, cfg)
}
