package brainprint_test

// Serial-vs-parallel throughput of the two dominant kernels: the
// known×anonymous similarity sweep (O(subjects²·features)) and group-
// matrix construction (O(scans·regions²·time)). Run with
// `go test -bench 'SimilarityMatrix|GroupMatrix'`; the serial/parallel
// sub-benchmark ratio is the multicore speedup (≈1 on a single-core
// runner, where the parallel path collapses to the inline serial loop).

import (
	"testing"

	"brainprint"
)

// benchModes pins the two execution modes the benchmarks compare.
// Parallelism 0 resolves to one worker per core.
var benchModes = []struct {
	name        string
	parallelism int
}{
	{"serial", 1},
	{"parallel", 0},
}

func BenchmarkSimilarityMatrix(b *testing.B) {
	hcp, _ := cohorts(b)
	knownScans, err := hcp.ScansFor(brainprint.Rest1, brainprint.LR)
	if err != nil {
		b.Fatal(err)
	}
	anonScans, err := hcp.ScansFor(brainprint.Rest2, brainprint.RL)
	if err != nil {
		b.Fatal(err)
	}
	known, err := brainprint.GroupMatrix(knownScans, brainprint.ConnectomeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	anon, err := brainprint.GroupMatrix(anonScans, brainprint.ConnectomeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	features, subjects := known.Dims()
	for _, mode := range benchModes {
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(int64(subjects) * int64(subjects) * int64(features) * 8)
			for i := 0; i < b.N; i++ {
				if _, err := brainprint.SimilarityMatrix(known, anon, mode.parallelism); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGroupMatrix(b *testing.B) {
	hcp, _ := cohorts(b)
	scans, err := hcp.ScansFor(brainprint.Rest1, brainprint.LR)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range benchModes {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := brainprint.GroupMatrix(scans, brainprint.ConnectomeOptions{Parallelism: mode.parallelism}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
