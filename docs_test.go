package brainprint_test

// The runnable companion to docs/API.md: every snippet in the API
// reference is an Example* function here, so the documentation compiles
// on every CI run (and godoc/pkgsite render the examples next to the
// symbols they document). Keep the two files in sync — a snippet that
// drifts from its Example fails the build, which is the point.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"brainprint"
)

// ExampleNewGallery enrolls three fingerprints and runs one ranked
// query — the enroll-once, query-many core of the attack.
func ExampleNewGallery() {
	g := brainprint.NewGallery(4)
	_ = g.Enroll("alice", []float64{5, 1, 1, 1})
	_ = g.Enroll("bob", []float64{1, 5, 1, 1})
	_ = g.Enroll("carol", []float64{1, 1, 5, 1})

	// A noisy observation of bob re-identifies bob.
	top, err := g.TopK([]float64{1.2, 4.8, 0.9, 1.1}, 2)
	if err != nil {
		panic(err)
	}
	for rank, c := range top {
		fmt.Printf("%d. %s %.2f\n", rank+1, c.ID, c.Score)
	}
	// Output:
	// 1. bob 1.00
	// 2. alice -0.29
}

// ExampleNewAttacker builds an identification session over an enrolled
// gallery and serves a probe under a context.
func ExampleNewAttacker() {
	g := brainprint.NewGallery(4)
	_ = g.Enroll("alice", []float64{5, 1, 1, 1})
	_ = g.Enroll("bob", []float64{1, 5, 1, 1})

	atk, err := brainprint.NewAttacker(g, brainprint.WithTopK(1), brainprint.WithParallelism(1))
	if err != nil {
		panic(err)
	}
	top, err := atk.Identify(context.Background(), []float64{4.7, 1.3, 0.8, 1.2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("identified: %s\n", top[0].ID)
	// Output: identified: alice
}

// ExampleAttacker_IdentifyBatch attacks a whole anonymized release at
// once; the probes are the columns of a features×probes matrix.
func ExampleAttacker_IdentifyBatch() {
	g := brainprint.NewGallery(4)
	_ = g.Enroll("alice", []float64{5, 1, 1, 1})
	_ = g.Enroll("bob", []float64{1, 5, 1, 1})

	atk, _ := brainprint.NewAttacker(g)
	probes := brainprint.NewMatrix(4, 2)
	probes.SetCol(0, []float64{1.1, 5.2, 0.9, 1.0}) // bob-like
	probes.SetCol(1, []float64{4.9, 0.8, 1.1, 1.2}) // alice-like
	batch, err := atk.IdentifyBatch(context.Background(), probes)
	if err != nil {
		panic(err)
	}
	for j, ranked := range batch.Ranked {
		fmt.Printf("probe %d -> %s\n", j, ranked[0].ID)
	}
	// Output:
	// probe 0 -> bob
	// probe 1 -> alice
}

// ExampleOpenGalleryStore shards a gallery across four files with int8
// quantization, persists it, and reopens it for querying. A plain
// single-file gallery path opens through the same call.
func ExampleOpenGalleryStore() {
	g := brainprint.NewGallery(4)
	_ = g.Enroll("alice", []float64{5, 1, 1, 1})
	_ = g.Enroll("bob", []float64{1, 5, 1, 1})
	_ = g.Enroll("carol", []float64{1, 1, 5, 1})
	_ = g.Enroll("dave", []float64{1, 1, 1, 5})

	dir, _ := os.MkdirTemp("", "store")
	defer os.RemoveAll(dir)
	store, err := brainprint.NewGalleryStore(g, 4, true)
	if err != nil {
		panic(err)
	}
	if err := store.WriteFiles(filepath.Join(dir, "cohort.bpm")); err != nil {
		panic(err)
	}

	reopened, err := brainprint.OpenGalleryStore(filepath.Join(dir, "cohort.bpm"))
	if err != nil {
		panic(err)
	}
	top, err := reopened.TopK([]float64{0.9, 1.1, 5.3, 0.8}, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("shards: %d, quantized: %v, identified: %s\n",
		reopened.Shards(), reopened.Quantized(), top[0].ID)
	// Output: shards: 4, quantized: true, identified: carol
}

// ExampleOpenGalleryStore_partial shows the degraded-open contract: a
// missing shard yields a typed partial error while the surviving
// shards keep answering.
func ExampleOpenGalleryStore_partial() {
	g := brainprint.NewGallery(4)
	_ = g.Enroll("alice", []float64{5, 1, 1, 1})
	_ = g.Enroll("bob", []float64{1, 5, 1, 1})
	dir, _ := os.MkdirTemp("", "store")
	defer os.RemoveAll(dir)
	store, _ := brainprint.NewGalleryStore(g, 2, false)
	_ = store.WriteFiles(filepath.Join(dir, "cohort.bpm"))
	// Lose the shard holding bob.
	_ = os.Remove(filepath.Join(dir, fmt.Sprintf("cohort.s%03d.bpg", brainprint.RouteGalleryID("bob", 2))))

	degraded, err := brainprint.OpenGalleryStore(filepath.Join(dir, "cohort.bpm"))
	fmt.Println("partial:", errors.Is(err, brainprint.ErrGalleryPartial))
	top, _ := degraded.TopK([]float64{4.7, 1.3, 0.8, 1.2}, 1)
	fmt.Println("still identified:", top[0].ID)
	// Output:
	// partial: true
	// still identified: alice
}

// ExampleWithScanPrecision runs an identification session over a
// sharded store with the float32 scan: candidates are selected at
// reduced precision and rescored exactly, so the returned scores are
// bit-identical to the default scan.
func ExampleWithScanPrecision() {
	g := brainprint.NewGallery(4)
	_ = g.Enroll("alice", []float64{5, 1, 1, 1})
	_ = g.Enroll("bob", []float64{1, 5, 1, 1})
	store, err := brainprint.NewGalleryStore(g, 2, false)
	if err != nil {
		panic(err)
	}

	atk, err := brainprint.NewAttacker(store,
		brainprint.WithScanPrecision(brainprint.ScanFloat32))
	if err != nil {
		panic(err)
	}
	top, err := atk.Identify(context.Background(), []float64{1.2, 4.8, 0.9, 1.1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("scan %s identified %s\n", store.Precision(), top[0].ID)
	// Output: scan float32 identified bob
}

// ExampleExperiments lists the experiment registry — the single source
// of the CLI's experiment names and dispatch.
func ExampleExperiments() {
	fmt.Println(strings.Join(brainprint.ExperimentNames(), " "))
	spec, _ := brainprint.LookupExperiment("defense")
	fmt.Printf("defense needs HCP: %v\n", spec.NeedsHCP)
	// Output:
	// fig1 fig2 fig5 fig6 table1 fig7 fig8 fig9 table2 defense gallery-defense
	// defense needs HCP: true
}

// ExampleNewAttacker_errNoGallery shows the typed-error contract of an
// experiment-only session.
func ExampleNewAttacker_errNoGallery() {
	atk, _ := brainprint.NewAttacker(nil)
	_, err := atk.Identify(context.Background(), []float64{1, 2, 3})
	fmt.Println(errors.Is(err, brainprint.ErrNoGallery))
	// Output: true
}

// ExampleCreateLiveGallery drives the live mutable gallery end to end:
// create, enroll online, crash-recover by reopening, delete, compact.
func ExampleCreateLiveGallery() {
	dir, _ := os.MkdirTemp("", "live")
	defer os.RemoveAll(dir)

	e, err := brainprint.CreateLiveGallery(filepath.Join(dir, "cohort.live"), 4,
		brainprint.LiveGalleryOptions{})
	if err != nil {
		panic(err)
	}
	_ = e.Enroll("alice", []float64{5, 1, 1, 1})
	_ = e.Enroll("bob", []float64{1, 5, 1, 1})
	_ = e.Close() // or kill -9: every committed mutation is in the log

	reopened, err := brainprint.OpenLiveGallery(filepath.Join(dir, "cohort.live"),
		brainprint.LiveGalleryOptions{})
	if err != nil {
		panic(err)
	}
	defer reopened.Close()
	top, err := reopened.TopK([]float64{1.2, 4.8, 0.9, 1.1}, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("recovered and identified:", top[0].ID)

	_ = reopened.Delete("bob")
	if err := reopened.Compact(); err != nil {
		panic(err)
	}
	st := reopened.Stats()
	fmt.Printf("generation %d: %d base records, %d log records\n",
		st.Generation, st.BaseRecords, st.WALRecords)
	// Output:
	// recovered and identified: bob
	// generation 1: 1 base records, 0 log records
}
