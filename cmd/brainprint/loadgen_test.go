package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"brainprint"
	"brainprint/internal/serve"
)

func TestLoadgenFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := runLoadgen(nil, &out); err == nil || !strings.Contains(err.Error(), "-targets") {
		t.Errorf("missing -targets: %v", err)
	}
	if err := runLoadgen([]string{"-targets", "http://x", "-concurrency", "4,zero"}, &out); err == nil {
		t.Error("bad concurrency level accepted")
	}
	if err := runLoadgen([]string{"-targets", "http://x", "-enroll-fraction", "1.5"}, &out); err == nil {
		t.Error("out-of-range enroll fraction accepted")
	}
	if err := runLoadgen([]string{"-targets", "http://x", "-duration", "0s"}, &out); err == nil {
		t.Error("zero duration accepted")
	}
	if err := runLoadgen([]string{"-help"}, &out); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("runLoadgen(-help) = %v, want flag.ErrHelp", err)
	}
	if err := runLoadgen([]string{"-targets", "http://127.0.0.1:1/nope"}, &out); err == nil {
		t.Error("unreachable target accepted")
	}
}

// TestLoadgenAgainstService drives the full harness against an
// in-process writable service: mixed identify/enroll traffic at two
// concurrency levels, table on stdout, JSON artifact on disk.
func TestLoadgenAgainstService(t *testing.T) {
	const features = 32
	e, err := brainprint.CreateLiveGallery(filepath.Join(t.TempDir(), "live"), features,
		brainprint.LiveGalleryOptions{NoSync: true})
	if err != nil {
		t.Fatalf("CreateLiveGallery: %v", err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(3))
	vec := make([]float64, features)
	for j := 0; j < 8; j++ {
		for i := range vec {
			vec[i] = rng.NormFloat64()
		}
		if err := e.Enroll(fmt.Sprintf("seed-%02d", j), vec); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	atk, err := brainprint.NewAttacker(e, brainprint.WithMutableGallery(e), brainprint.WithTopK(3))
	if err != nil {
		t.Fatalf("NewAttacker: %v", err)
	}
	s, err := serve.New(atk, serve.Config{})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	artifact := filepath.Join(t.TempDir(), "LOAD_test.json")
	var out bytes.Buffer
	args := []string{"-targets", srv.URL, "-concurrency", "1,2",
		"-duration", "250ms", "-enroll-fraction", "0.25", "-json", artifact}
	if err := runLoadgen(args, &out); err != nil {
		t.Fatalf("runLoadgen: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), srv.URL) {
		t.Errorf("table output missing target:\n%s", out.String())
	}

	raw, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatalf("reading artifact: %v", err)
	}
	var report loadgenReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	if len(report.Runs) != 2 {
		t.Fatalf("artifact has %d runs, want 2", len(report.Runs))
	}
	for _, run := range report.Runs {
		if run.Requests == 0 || run.ThroughputRPS <= 0 {
			t.Errorf("empty run: %+v", run)
		}
		if run.Errors > 0 {
			t.Errorf("run against a writable server saw %d errors", run.Errors)
		}
		if run.P50MS <= 0 || run.P99MS < run.P50MS {
			t.Errorf("implausible percentiles: %+v", run)
		}
		if run.Enroll == 0 || run.Identify == 0 {
			t.Errorf("traffic mix not exercised: %+v", run)
		}
	}
}

func TestServeReplicaFlagConflicts(t *testing.T) {
	var out bytes.Buffer
	err := runServe([]string{"-db", t.TempDir(), "-replica-of", "http://127.0.0.1:1", "-writable"}, &out)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("replica+writable: %v", err)
	}
	err = runServe([]string{"-db", filepath.Join(t.TempDir(), "rep"), "-replica-of", "not-a-url"}, &out)
	if err == nil {
		t.Error("relative primary URL accepted")
	}
}

func TestPercentile(t *testing.T) {
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("percentile(nil) = %v", p)
	}
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(sorted, 0.5); p != 5 {
		t.Errorf("p50 = %v, want 5", p)
	}
	if p := percentile(sorted, 0.99); p != 10 {
		t.Errorf("p99 = %v, want 10", p)
	}
}
