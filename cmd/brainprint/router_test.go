package main

import (
	"bytes"
	"errors"
	"flag"
	"net"
	"strings"
	"testing"
)

func TestRouterFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := runRouter(nil, &out); err == nil || !strings.Contains(err.Error(), "-primary") {
		t.Errorf("missing -primary: %v", err)
	}
	if err := runRouter([]string{"-help"}, &out); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("runRouter(-help) = %v, want flag.ErrHelp", err)
	}
	if err := runRouter([]string{"-primary", "http://127.0.0.1:1", "-bogus"}, &out); err == nil {
		t.Error("expected flag parse error")
	}
	if err := runRouter([]string{"-primary", "not-a-url"}, &out); err == nil {
		t.Error("expected error for a relative primary URL")
	}
	if err := runRouter([]string{"-primary", "http://127.0.0.1:1",
		"-replicas", "http://127.0.0.1:2,http://127.0.0.1:2"}, &out); err == nil {
		t.Error("expected error for a duplicate replica URL")
	}
}

// TestRouterBindFailure drives the happy parse path to the server: a
// valid topology on an occupied port prints the banner and surfaces
// the listen error instead of hanging on the signal context.
func TestRouterBindFailure(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("occupying a port: %v", err)
	}
	defer l.Close()

	var out bytes.Buffer
	err = runRouter([]string{
		"-primary", "http://127.0.0.1:1",
		"-replicas", " http://127.0.0.1:2 , http://127.0.0.1:3 ,",
		"-addr", l.Addr().String(),
		"-poll", "10s", // no poll round fires before the bind fails
		"-no-failover",
	}, &out)
	if err == nil {
		t.Fatal("runRouter on an occupied port returned nil")
	}
	banner := out.String()
	if !strings.Contains(banner, "2 replica(s)") || !strings.Contains(banner, "observe-only") {
		t.Errorf("banner = %q", banner)
	}
}
