package main

import (
	"testing"
)

func TestParamsForScale(t *testing.T) {
	for _, scale := range []string{"small", "medium", "paper"} {
		hcp, adhd, err := paramsForScale(scale, 0, 0, 3)
		if err != nil {
			t.Fatalf("%s: %v", scale, err)
		}
		if err := hcp.Validate(); err != nil {
			t.Errorf("%s hcp params invalid: %v", scale, err)
		}
		if err := adhd.Validate(); err != nil {
			t.Errorf("%s adhd params invalid: %v", scale, err)
		}
		if hcp.Seed != 3 || adhd.Seed != 4 {
			t.Errorf("%s: seeds not propagated", scale)
		}
	}
	if _, _, err := paramsForScale("galactic", 0, 0, 1); err == nil {
		t.Error("expected error for unknown scale")
	}
}

func TestParamsForScaleOverrides(t *testing.T) {
	hcp, _, err := paramsForScale("small", 7, 44, 1)
	if err != nil {
		t.Fatalf("paramsForScale: %v", err)
	}
	if hcp.Subjects != 7 || hcp.Regions != 44 {
		t.Errorf("overrides ignored: %d subjects, %d regions", hcp.Subjects, hcp.Regions)
	}
}

func TestPaperScaleKeepsCalibration(t *testing.T) {
	hcp, adhd, err := paramsForScale("paper", 0, 0, 1)
	if err != nil {
		t.Fatalf("paramsForScale: %v", err)
	}
	if hcp.EncodingVariation < 0.2 {
		t.Error("paper scale should use the thin-margin calibration")
	}
	if hcp.Regions != 360 || adhd.Regions != 116 {
		t.Errorf("paper-scale regions %d/%d want 360/116", hcp.Regions, adhd.Regions)
	}
}

// TestRunSingleExperiments smoke-tests the CLI driver end to end on a
// tiny cohort for each experiment that only needs one dataset.
func TestRunSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	for _, exp := range []string{"fig1", "fig7"} {
		if err := run(exp, "small", 8, 30, 60, 2, 5, 0); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", "small", 8, 30, 60, 2, 5, 1); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run("fig1", "nope", 0, 0, 60, 2, 5, 1); err == nil {
		t.Error("expected error for unknown scale")
	}
}
