package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"brainprint"
)

func TestParamsForScale(t *testing.T) {
	for _, scale := range []string{"small", "medium", "paper"} {
		hcp, adhd, err := paramsForScale(scale, 0, 0, 3)
		if err != nil {
			t.Fatalf("%s: %v", scale, err)
		}
		if err := hcp.Validate(); err != nil {
			t.Errorf("%s hcp params invalid: %v", scale, err)
		}
		if err := adhd.Validate(); err != nil {
			t.Errorf("%s adhd params invalid: %v", scale, err)
		}
		if hcp.Seed != 3 || adhd.Seed != 4 {
			t.Errorf("%s: seeds not propagated", scale)
		}
	}
	if _, _, err := paramsForScale("galactic", 0, 0, 1); err == nil {
		t.Error("expected error for unknown scale")
	}
}

func TestParamsForScaleOverrides(t *testing.T) {
	hcp, _, err := paramsForScale("small", 7, 44, 1)
	if err != nil {
		t.Fatalf("paramsForScale: %v", err)
	}
	if hcp.Subjects != 7 || hcp.Regions != 44 {
		t.Errorf("overrides ignored: %d subjects, %d regions", hcp.Subjects, hcp.Regions)
	}
}

func TestPaperScaleKeepsCalibration(t *testing.T) {
	hcp, adhd, err := paramsForScale("paper", 0, 0, 1)
	if err != nil {
		t.Fatalf("paramsForScale: %v", err)
	}
	if hcp.EncodingVariation < 0.2 {
		t.Error("paper scale should use the thin-margin calibration")
	}
	if hcp.Regions != 360 || adhd.Regions != 116 {
		t.Errorf("paper-scale regions %d/%d want 360/116", hcp.Regions, adhd.Regions)
	}
}

// TestRunSingleExperiments smoke-tests the CLI driver end to end on a
// tiny cohort for each experiment that only needs one dataset.
func TestRunSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	for _, exp := range []string{"fig1", "fig7"} {
		if err := run(context.Background(), exp, "small", 8, 30, 60, 2, 5, 0); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), "fig99", "small", 8, 30, 60, 2, 5, 1); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run(context.Background(), "fig1", "nope", 0, 0, 60, 2, 5, 1); err == nil {
		t.Error("expected error for unknown scale")
	}
}

// TestRunCancelled: a cancelled context aborts an experiment run with
// the context error instead of a result.
func TestRunCancelled(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, "fig1", "small", 8, 30, 60, 2, 5, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("run under cancelled ctx: %v", err)
	}
}

// TestUsageFromRegistry pins the satellite fix: the usage block and the
// registry can no longer drift, so every registered experiment —
// defense included — appears in the usage text.
func TestUsageFromRegistry(t *testing.T) {
	for _, name := range brainprint.ExperimentNames() {
		if !strings.Contains(usageText, name) {
			t.Errorf("usage text is missing experiment %q:\n%s", name, usageText)
		}
	}
	for _, want := range []string{"defense", "gallery enroll|shard|live|compact|defend|query|info|probe", "defense sweep", "serve -db", "-writable"} {
		if !strings.Contains(usageText, want) {
			t.Errorf("usage text is missing %q", want)
		}
	}
}

// TestGallerySubcommands drives enroll → info → append → query against
// a temp gallery file on a tiny cohort.
func TestGallerySubcommands(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	db := filepath.Join(t.TempDir(), "hcp.bpg")
	var out bytes.Buffer
	size := []string{"-scale", "small", "-subjects", "6", "-regions", "30"}

	enroll := append([]string{"enroll", "-db", db, "-task", "REST1", "-encoding", "LR", "-features", "40"}, size...)
	if err := runGallery(enroll, &out); err != nil {
		t.Fatalf("enroll: %v", err)
	}
	if !strings.Contains(out.String(), "enrolled 6 subjects") {
		t.Errorf("enroll output: %q", out.String())
	}

	out.Reset()
	if err := runGallery([]string{"info", "-db", db}, &out); err != nil {
		t.Fatalf("info: %v", err)
	}
	for _, want := range []string{"subjects:       6", "features:       40", "hcp-s000"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("info output missing %q:\n%s", want, out.String())
		}
	}

	// Re-enrolling without -append or -force must refuse to clobber.
	if err := runGallery(enroll, &out); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("expected overwrite refusal, got %v", err)
	}

	out.Reset()
	appendArgs := append([]string{"enroll", "-db", db, "-append", "-seed", "9", "-idprefix", "site2", "-task", "REST1", "-encoding", "LR"}, size...)
	if err := runGallery(appendArgs, &out); err != nil {
		t.Fatalf("append: %v", err)
	}
	if !strings.Contains(out.String(), "now 12 subjects") {
		t.Errorf("append output: %q", out.String())
	}

	out.Reset()
	query := append([]string{"query", "-db", db, "-task", "REST2", "-encoding", "RL", "-k", "3"}, size...)
	if err := runGallery(query, &out); err != nil {
		t.Fatalf("query: %v", err)
	}
	if !strings.Contains(out.String(), "12 enrolled subjects (k=3)") || !strings.Contains(out.String(), "top-1:") {
		t.Errorf("query output:\n%s", out.String())
	}
}

// TestGalleryShardSubcommands drives the sharded-store lifecycle from
// the CLI: enroll a single-file gallery, convert it with `gallery
// shard -quantize`, inspect the per-shard stats, and query the store —
// the query accuracy line must match the single-file gallery's, since
// sharded scores are bit-identical.
func TestGalleryShardSubcommands(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	dir := t.TempDir()
	db := filepath.Join(dir, "hcp.bpg")
	manifest := filepath.Join(dir, "hcp.bpm")
	var out bytes.Buffer
	size := []string{"-scale", "small", "-subjects", "6", "-regions", "30"}

	enroll := append([]string{"enroll", "-db", db, "-task", "REST1", "-encoding", "LR", "-features", "40"}, size...)
	if err := runGallery(enroll, &out); err != nil {
		t.Fatalf("enroll: %v", err)
	}

	out.Reset()
	if err := runGallery([]string{"shard", "-db", db, "-out", manifest, "-shards", "3", "-quantize"}, &out); err != nil {
		t.Fatalf("shard: %v", err)
	}
	if !strings.Contains(out.String(), "sharded 6 subjects") || !strings.Contains(out.String(), "3 shards, quantized") {
		t.Errorf("shard output: %q", out.String())
	}
	// Refuses to clobber without -force.
	if err := runGallery([]string{"shard", "-db", db, "-out", manifest, "-shards", "3"}, &out); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("expected overwrite refusal, got %v", err)
	}

	out.Reset()
	if err := runGallery([]string{"info", "-db", manifest}, &out); err != nil {
		t.Fatalf("info: %v", err)
	}
	for _, want := range []string{"layout:         3 shard(s)", "quantized:      int8", "subjects:       6", "checksum ok", "hcp.s000.bpg"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("info output missing %q:\n%s", want, out.String())
		}
	}

	// Query against the manifest and the single file: same accuracy line.
	query := append([]string{"query", "-task", "REST2", "-encoding", "RL", "-k", "3"}, size...)
	out.Reset()
	if err := runGallery(append([]string{query[0], "-db", manifest}, query[1:]...), &out); err != nil {
		t.Fatalf("query (sharded): %v", err)
	}
	sharded := out.String()
	out.Reset()
	if err := runGallery(append([]string{query[0], "-db", db}, query[1:]...), &out); err != nil {
		t.Fatalf("query (single): %v", err)
	}
	single := out.String()
	if !strings.Contains(sharded, "6 enrolled subjects (k=3)") || !strings.Contains(sharded, "top-1:") {
		t.Errorf("sharded query output:\n%s", sharded)
	}
	shardAcc := sharded[strings.Index(sharded, "top-1:"):]
	singleAcc := single[strings.Index(single, "top-1:"):]
	if shardAcc != singleAcc {
		t.Errorf("sharded accuracy %q != single-file %q", shardAcc, singleAcc)
	}

	// Direct sharded enrollment (no intermediate single file).
	direct := filepath.Join(dir, "direct.bpm")
	out.Reset()
	enrollSharded := append([]string{"enroll", "-db", direct, "-task", "REST1", "-encoding", "LR", "-features", "40", "-shards", "2"}, size...)
	if err := runGallery(enrollSharded, &out); err != nil {
		t.Fatalf("enroll -shards: %v", err)
	}
	if !strings.Contains(out.String(), "(2 shards)") {
		t.Errorf("enroll -shards output: %q", out.String())
	}
	// -append conflicts with sharded output.
	if err := runGallery([]string{"enroll", "-db", direct, "-append", "-shards", "2"}, &out); err == nil || !strings.Contains(err.Error(), "-append") {
		t.Errorf("expected -append/-shards conflict, got %v", err)
	}
}

// TestGalleryInfoFlagsMissingShard: deleting one shard file must leave
// info working, flagging the missing shard instead of failing.
func TestGalleryInfoFlagsMissingShard(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	dir := t.TempDir()
	manifest := filepath.Join(dir, "hcp.bpm")
	var out bytes.Buffer
	enroll := []string{"enroll", "-db", manifest, "-task", "REST1", "-encoding", "LR", "-features", "40",
		"-shards", "3", "-scale", "small", "-subjects", "6", "-regions", "30"}
	if err := runGallery(enroll, &out); err != nil {
		t.Fatalf("enroll: %v", err)
	}
	if err := os.Remove(filepath.Join(dir, "hcp.s001.bpg")); err != nil {
		t.Fatalf("remove shard: %v", err)
	}
	out.Reset()
	if err := runGallery([]string{"info", "-db", manifest}, &out); err != nil {
		t.Fatalf("info on degraded store: %v", err)
	}
	for _, want := range []string{"FAULT", "shard file missing", "shard(s) unavailable"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("degraded info output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGallerySubcommandErrors(t *testing.T) {
	var out bytes.Buffer
	if err := runGallery(nil, &out); err == nil {
		t.Error("expected error for missing subcommand")
	}
	if err := runGallery([]string{"frobnicate"}, &out); err == nil {
		t.Error("expected error for unknown subcommand")
	}
	if err := runGallery([]string{"enroll"}, &out); err == nil {
		t.Error("expected error for missing -db")
	}
	if err := runGallery([]string{"query", "-db", ""}, &out); err == nil {
		t.Error("expected error for empty -db")
	}
	if err := runGallery([]string{"info", "-db", filepath.Join(t.TempDir(), "nope.bpg")}, &out); err == nil {
		t.Error("expected error for a missing gallery file")
	}
	if err := runGallery([]string{"enroll", "-db", "x.bpg", "-dataset", "petscan"}, &out); err == nil {
		t.Error("expected error for unknown dataset")
	}
	if err := runGallery([]string{"enroll", "-db", "x.bpg", "-task", "JUGGLING"}, &out); err == nil {
		t.Error("expected error for unknown task")
	}
	if err := runGallery([]string{"enroll", "-db", "x.bpg", "-dataset", "adhd", "-session", "5"}, &out); err == nil {
		t.Error("expected error for out-of-range session")
	}
	if err := runGallery([]string{"query", "-db", "x.bpg", "-bogusflag"}, &out); err == nil {
		t.Error("expected flag parse error to surface as an error, not an exit")
	}
	if err := runGallery([]string{"enroll", "-db", "x.bpg", "-append", "-features", "40"}, &out); err == nil || !strings.Contains(err.Error(), "-append") {
		t.Errorf("expected -features/-append conflict error, got %v", err)
	}
	// -help must return flag.ErrHelp, not terminate the process.
	if err := runGallery([]string{"query", "-help"}, &out); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("runGallery(-help) = %v, want flag.ErrHelp", err)
	}
}

// TestGalleryLiveSubcommands drives the live-gallery lifecycle from the
// CLI: enroll a single-file gallery, convert it with `gallery live`,
// query the live directory (answers must match the source store, since
// live scores are bit-identical), compact it, and inspect it.
func TestGalleryLiveSubcommands(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	dir := t.TempDir()
	db := filepath.Join(dir, "hcp.bpg")
	liveDir := filepath.Join(dir, "hcp.live")
	var out bytes.Buffer
	size := []string{"-scale", "small", "-subjects", "6", "-regions", "30"}

	enroll := append([]string{"enroll", "-db", db, "-task", "REST1", "-encoding", "LR", "-features", "40"}, size...)
	if err := runGallery(enroll, &out); err != nil {
		t.Fatalf("enroll: %v", err)
	}

	out.Reset()
	if err := runGallery([]string{"live", "-from", db, "-db", liveDir, "-shards", "2"}, &out); err != nil {
		t.Fatalf("live: %v", err)
	}
	if !strings.Contains(out.String(), "6 subjects") || !strings.Contains(out.String(), "generation 0") {
		t.Errorf("live output: %q", out.String())
	}

	// Converting again must refuse to clobber the live directory.
	if err := runGallery([]string{"live", "-from", db, "-db", liveDir}, &out); err == nil ||
		!strings.Contains(err.Error(), "already holds a live gallery") {
		t.Errorf("expected live-overwrite refusal, got %v", err)
	}

	out.Reset()
	query := append([]string{"query", "-db", db, "-task", "REST2", "-encoding", "RL", "-k", "3"}, size...)
	if err := runGallery(query, &out); err != nil {
		t.Fatalf("query source: %v", err)
	}
	srcAccuracy := out.String()[strings.Index(out.String(), "top-1:"):]

	out.Reset()
	liveQuery := append([]string{"query", "-db", liveDir, "-task", "REST2", "-encoding", "RL", "-k", "3"}, size...)
	if err := runGallery(liveQuery, &out); err != nil {
		t.Fatalf("query live: %v", err)
	}
	if !strings.Contains(out.String(), srcAccuracy) {
		t.Errorf("live query accuracy diverged from source:\nlive:\n%s\nwant tail: %q", out.String(), srcAccuracy)
	}

	out.Reset()
	if err := runGallery([]string{"compact", "-db", liveDir}, &out); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if !strings.Contains(out.String(), "generation 0 -> 1") {
		t.Errorf("compact output: %q", out.String())
	}

	out.Reset()
	if err := runGallery([]string{"info", "-db", liveDir}, &out); err != nil {
		t.Fatalf("info: %v", err)
	}
	for _, want := range []string{"live directory (generation 1", "subjects:       6 (6 base, 0 overlay", "features:       40"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("live info output missing %q:\n%s", want, out.String())
		}
	}

	// Flag validation: exactly one of -from / -features.
	if err := runGallery([]string{"live", "-db", filepath.Join(dir, "x.live")}, &out); err == nil {
		t.Error("gallery live without -from or -features should fail")
	}
	if err := runGallery([]string{"compact", "-db", db}, &out); err == nil {
		t.Error("gallery compact on a non-live path should fail")
	}
}
