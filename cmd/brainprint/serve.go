// The serve subcommand: expose an enrolled gallery file as the HTTP
// identification service of internal/serve.
//
//	brainprint gallery enroll -db hcp.bpg -task REST1 -encoding LR
//	brainprint serve -db hcp.bpg -addr 127.0.0.1:7311
//	curl -s localhost:7311/healthz
//	brainprint gallery probe -task REST2 -encoding RL -subject 3 |
//	    curl -s -X POST --data @- localhost:7311/v1/identify
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"brainprint"
	"brainprint/internal/serve"
)

// runServe loads a gallery (single-file or sharded manifest), wraps it
// in an attacker session, and runs the HTTP service until
// SIGINT/SIGTERM. A partially loaded sharded store serves in degraded
// mode (surviving shards only) with a startup warning and a "degraded"
// /healthz status.
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint serve", flag.ContinueOnError)
	var (
		db          = fs.String("db", "", "gallery file or shard manifest to serve (required)")
		addr        = fs.String("addr", "127.0.0.1:7311", "listen address (loopback by default; widen deliberately)")
		k           = fs.Int("k", 5, "default candidates per identification (requests may override with \"k\")")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-request identification deadline")
		parallelism = fs.Int("parallelism", 0, "worker count for identification sweeps (0 = all cores)")
		maxInflight = fs.Int("max-inflight", 0, "bound on concurrently served requests (0 = 4x workers)")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("serve: -db is required")
	}
	g, err := openStore(*db, out)
	if err != nil {
		return err
	}
	atk, err := brainprint.NewAttacker(g,
		brainprint.WithParallelism(*parallelism),
		brainprint.WithTopK(*k))
	if err != nil {
		return err
	}
	srv, err := serve.New(atk, serve.Config{
		Addr:           *addr,
		RequestTimeout: *timeout,
		MaxInflight:    *maxInflight,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	layout := "single file"
	if g.Shards() > 1 {
		layout = fmt.Sprintf("%d/%d shards loaded", g.LoadedShards(), g.Shards())
	}
	if g.Quantized() {
		layout += ", quantized scan"
	}
	fmt.Fprintf(out, "serving gallery %s (%d subjects, %d features, %s) on http://%s\n",
		*db, g.Len(), g.Features(), layout, srv.Addr())
	fmt.Fprintf(out, "endpoints: POST /v1/identify, POST /v1/identify/batch, GET /v1/gallery, GET /v1/metrics, GET /healthz\n")
	return srv.ListenAndServe(ctx)
}
