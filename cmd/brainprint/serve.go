// The serve subcommand: expose an enrolled gallery file as the HTTP
// identification service of internal/serve.
//
//	brainprint gallery enroll -db hcp.bpg -task REST1 -encoding LR
//	brainprint serve -db hcp.bpg -addr 127.0.0.1:7311
//	curl -s localhost:7311/healthz
//	brainprint gallery probe -task REST2 -encoding RL -subject 3 |
//	    curl -s -X POST --data @- localhost:7311/v1/identify
//
// Writable mode (online enrollment, crash-safe via the write-ahead log):
//
//	brainprint gallery live -from hcp.bpg -db hcp.live
//	brainprint serve -db hcp.live -writable
//	curl -s -X POST --data '{"id":"new","fingerprint":[...]}' \
//	    localhost:7311/v1/enroll
//
// Replica mode (WAL-shipping read replica of a live primary):
//
//	brainprint serve -db hcp.live -writable -addr 127.0.0.1:7311
//	brainprint serve -db replica.live -replica-of http://127.0.0.1:7311 \
//	    -addr 127.0.0.1:7312
//	curl -s localhost:7312/healthz   # replication lag under "replica"
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"brainprint"
	"brainprint/internal/serve"
)

// runServe loads a gallery (single-file, sharded manifest, or live
// directory), wraps it in an attacker session, and runs the HTTP
// service until SIGINT/SIGTERM. A partially loaded sharded store serves
// in degraded mode (surviving shards only) with a startup warning and a
// "degraded" /healthz status. With -writable (live directories only)
// the service additionally accepts online enrollment and deletion, and
// mutations survive crashes via the write-ahead log.
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint serve", flag.ContinueOnError)
	var (
		db           = fs.String("db", "", "gallery file, shard manifest, or live directory to serve (required)")
		addr         = fs.String("addr", "127.0.0.1:7311", "listen address (loopback by default; widen deliberately)")
		k            = fs.Int("k", 5, "default candidates per identification (requests may override with \"k\")")
		timeout      = fs.Duration("timeout", 30*time.Second, "per-request identification deadline")
		parallelism  = fs.Int("parallelism", 0, "worker count for identification sweeps (0 = all cores)")
		maxInflight  = fs.Int("max-inflight", 0, "bound on concurrently served requests (0 = 4x workers)")
		writable     = fs.Bool("writable", false, "accept online enrollment/deletion (requires a live gallery directory; see gallery live)")
		replicaOf    = fs.String("replica-of", "", "serve as a read replica of the primary at this base URL, keeping replica state in the -db directory")
		drain        = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound: how long in-flight and streaming requests get to finish")
		compactAfter = fs.Int("compact-after", 0, "auto-compact the live gallery once its write-ahead log holds this many records (0 = manual gallery compact only)")
		scan         = fs.String("scan", "", "candidate-scan precision: float64 (default), float32, or int8; reduced precisions rescore exactly, so served scores are identical")
		ann          = fs.Bool("ann", false, "serve through the IVF coarse index at the default fan-out (requires a `gallery index` sidecar)")
		nprobe       = fs.Int("nprobe", 0, "IVF cells to probe per identification (implies -ann; 0 with -ann = the default fan-out)")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("serve: -db is required")
	}
	prec, err := brainprint.ParseScanPrecision(*scan)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if *nprobe < 0 {
		return fmt.Errorf("serve: -nprobe %d must be non-negative", *nprobe)
	}
	np := 0
	if *ann || *nprobe > 0 {
		if np = *nprobe; np == 0 {
			np = brainprint.DefaultNProbe
		}
	}

	sessionOpts := []brainprint.AttackerOption{
		brainprint.WithParallelism(*parallelism),
		brainprint.WithTopK(*k),
	}
	if *scan != "" {
		// Explicit -scan wins even when it names the default: float64
		// on a quantized store switches the scan back to exact.
		sessionOpts = append(sessionOpts, brainprint.WithScanPrecision(prec))
	}
	if np > 0 {
		sessionOpts = append(sessionOpts, brainprint.WithANN(np))
	}
	if *replicaOf != "" {
		if *writable {
			return fmt.Errorf("serve: -replica-of and -writable are mutually exclusive (replicas are read-only)")
		}
		rep, err := brainprint.StartReplica(*replicaOf, *db, brainprint.ReplicaOptions{
			CompactAfter: *compactAfter,
			Logf:         func(format string, args ...any) { fmt.Fprintf(out, format+"\n", args...) },
		})
		if err != nil {
			return err
		}
		defer rep.Close()
		layout := fmt.Sprintf("replica of %s, generation %d", *replicaOf, rep.Stats().Generation)
		return serveEngine(out, *db, rep, layout, false, sessionOpts, serve.Config{
			Addr:           *addr,
			RequestTimeout: *timeout,
			MaxInflight:    *maxInflight,
			DrainTimeout:   *drain,
			Replica:        rep,
		})
	}
	var layout string
	if isLiveDir(*db) {
		e, err := brainprint.OpenLiveGallery(*db, brainprint.LiveGalleryOptions{CompactAfter: *compactAfter})
		if err != nil {
			return err
		}
		defer e.Close()
		st := e.Stats()
		if st.RecoveredTornBytes > 0 {
			fmt.Fprintf(out, "warning: recovered a torn write-ahead log tail (%d bytes truncated)\n", st.RecoveredTornBytes)
		}
		if *writable {
			sessionOpts = append(sessionOpts, brainprint.WithMutableGallery(e))
			layout = fmt.Sprintf("live generation %d, writable", st.Generation)
		} else {
			layout = fmt.Sprintf("live generation %d, read-only", st.Generation)
		}
		return serveEngine(out, *db, e, layout, *writable, sessionOpts, serve.Config{
			Addr:           *addr,
			RequestTimeout: *timeout,
			MaxInflight:    *maxInflight,
			DrainTimeout:   *drain,
			// Any live directory — writable or not — is a replication
			// primary: replicas only need its log, not its write surface.
			Live: e,
		})
	}
	if *writable {
		return fmt.Errorf("serve: -writable requires a live gallery directory (convert with: brainprint gallery live -from %s -db <dir>)", *db)
	}
	g, err := openStore(*db, out)
	if err != nil {
		return err
	}
	layout = "single file"
	if g.Shards() > 1 {
		layout = fmt.Sprintf("%d/%d shards loaded", g.LoadedShards(), g.Shards())
	}
	// An explicit -scan overrides whatever the store opened with, so the
	// banner must reflect the flag, not the pre-session state.
	switch {
	case *scan != "":
		layout += ", " + prec.String() + " scan"
	case g.Quantized():
		layout += ", quantized scan"
	}
	if np > 0 {
		layout += fmt.Sprintf(", ivf nprobe=%d", np)
	}
	return serveEngine(out, *db, g, layout, false, sessionOpts, serve.Config{
		Addr:           *addr,
		RequestTimeout: *timeout,
		MaxInflight:    *maxInflight,
		DrainTimeout:   *drain,
	})
}

// serveEngine builds the session and service over any gallery engine
// and runs it until SIGINT/SIGTERM.
func serveEngine(out io.Writer, db string, g brainprint.GalleryEngine, layout string, writable bool, opts []brainprint.AttackerOption, cfg serve.Config) error {
	atk, err := brainprint.NewAttacker(g, opts...)
	if err != nil {
		return err
	}
	srv, err := serve.New(atk, cfg)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(out, "serving gallery %s (%d subjects, %d features, %s) on http://%s\n",
		db, g.Len(), g.Features(), layout, srv.Addr())
	endpoints := "endpoints: POST /v1/identify, POST /v1/identify/batch, POST /v1/identify/stream, GET /v1/gallery, GET /v1/metrics, GET /healthz"
	if writable {
		endpoints += ", POST /v1/enroll, DELETE /v1/subjects/{id}"
	}
	if cfg.Live != nil {
		endpoints += ", GET /v1/replicate/{state,file,wal}"
	}
	fmt.Fprintln(out, endpoints)
	return srv.ListenAndServe(ctx)
}
