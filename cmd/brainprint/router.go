// The router subcommand: a replica-aware HTTP front tier over a
// primary + N replica serve topology, with health-checked failover.
//
//	brainprint serve -db hcp.live -writable -addr 127.0.0.1:7311
//	brainprint serve -db r1.live -replica-of http://127.0.0.1:7311 -addr 127.0.0.1:7312
//	brainprint serve -db r2.live -replica-of http://127.0.0.1:7311 -addr 127.0.0.1:7313
//	brainprint router -primary http://127.0.0.1:7311 \
//	    -replicas http://127.0.0.1:7312,http://127.0.0.1:7313 \
//	    -addr 127.0.0.1:7310
//	curl -s localhost:7310/healthz          # topology as the router sees it
//	curl -s -H 'X-Max-Staleness-Seconds: 0.5' -X POST \
//	    --data @probe.json localhost:7310/v1/identify
//
// Reads route to replicas within the staleness bound (primary
// fallback), writes to the primary. If the primary stays unreachable
// for -fail-after polls, the router promotes the most-caught-up
// replica, repoints the others at it, and fences the old primary if it
// returns.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"brainprint"
)

// runRouter parses the topology flags and runs the front tier until
// SIGINT/SIGTERM.
func runRouter(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint router", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:7351", "listen address (loopback by default; widen deliberately)")
		primary      = fs.String("primary", "", "base URL of the node currently primary (required)")
		replicas     = fs.String("replicas", "", "comma-separated base URLs of the read replicas")
		poll         = fs.Duration("poll", time.Second, "health-poll interval")
		failAfter    = fs.Int("fail-after", 3, "consecutive failed primary polls before failover")
		maxStaleness = fs.Duration("max-staleness", 5*time.Second, "default read staleness bound (requests may override with the X-Max-Staleness-Seconds header)")
		noFailover   = fs.Bool("no-failover", false, "observe and route only: never promote, demote, or repoint")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *primary == "" {
		return fmt.Errorf("router: -primary is required")
	}
	var reps []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			reps = append(reps, r)
		}
	}
	rt, err := brainprint.NewRouter(brainprint.RouterConfig{
		Addr:         *addr,
		Primary:      *primary,
		Replicas:     reps,
		Poll:         *poll,
		FailAfter:    *failAfter,
		MaxStaleness: *maxStaleness,
		NoFailover:   *noFailover,
		Logf:         func(format string, args ...any) { fmt.Fprintf(out, format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	mode := "failover"
	if *noFailover {
		mode = "observe-only"
	}
	fmt.Fprintf(out, "routing for primary %s + %d replica(s) (%s, poll %s, fail-after %d, max-staleness %s) on http://%s\n",
		*primary, len(reps), mode, *poll, *failAfter, *maxStaleness, rt.Addr())
	fmt.Fprintln(out, "endpoints: every serve endpoint (proxied), GET /v1/metrics, GET /healthz (the router's own)")
	return rt.ListenAndServe(ctx)
}
