package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"net"
	"path/filepath"
	"strings"
	"testing"
)

func TestServeFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := runServe(nil, &out); err == nil || !strings.Contains(err.Error(), "-db") {
		t.Errorf("missing -db: %v", err)
	}
	if err := runServe([]string{"-db", filepath.Join(t.TempDir(), "nope.bpg")}, &out); err == nil {
		t.Error("expected error for a missing gallery file")
	}
	if err := runServe([]string{"-help"}, &out); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("runServe(-help) = %v, want flag.ErrHelp", err)
	}
	if err := runServe([]string{"-db", "x.bpg", "-bogus"}, &out); err == nil {
		t.Error("expected flag parse error")
	}
}

// TestServeBindFailure drives the happy path all the way to the
// socket: a real gallery file on an occupied port prints the serving
// banner and surfaces the listen error instead of hanging on signals.
func TestServeBindFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	db := filepath.Join(t.TempDir(), "hcp.bpg")
	var out bytes.Buffer
	enroll := []string{"enroll", "-db", db, "-task", "REST1", "-encoding", "LR",
		"-scale", "small", "-subjects", "6", "-regions", "30"}
	if err := runGallery(enroll, &out); err != nil {
		t.Fatalf("enroll: %v", err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("occupying a port: %v", err)
	}
	defer l.Close()

	out.Reset()
	err = runServe([]string{"-db", db, "-addr", l.Addr().String(), "-k", "2"}, &out)
	if err == nil {
		t.Fatal("runServe on an occupied port returned nil")
	}
	banner := out.String()
	if !strings.Contains(banner, "serving gallery") || !strings.Contains(banner, "6 subjects") {
		t.Errorf("banner = %q", banner)
	}
	if !strings.Contains(banner, "POST /v1/identify") {
		t.Errorf("endpoint listing missing from banner: %q", banner)
	}
}

// TestGalleryProbeEmit drives the probe emitter end to end: the emitted
// JSON must be a valid identify request for the matching cohort.
func TestGalleryProbeEmit(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test")
	}
	var out bytes.Buffer
	args := []string{"probe", "-scale", "small", "-subjects", "6", "-regions", "30",
		"-task", "REST2", "-encoding", "RL", "-subject", "3", "-k", "2"}
	if err := runGallery(args, &out); err != nil {
		t.Fatalf("gallery probe: %v", err)
	}
	var req struct {
		ID    string    `json:"id"`
		Probe []float64 `json:"probe"`
		K     int       `json:"k"`
	}
	if err := json.Unmarshal(out.Bytes(), &req); err != nil {
		t.Fatalf("probe output is not JSON: %v\n%s", err, out.String())
	}
	if req.ID != "hcp-s003" || req.K != 2 {
		t.Errorf("probe request = id %q k %d", req.ID, req.K)
	}
	if want := 30 * 29 / 2; len(req.Probe) != want {
		t.Errorf("probe vector has %d features, want %d", len(req.Probe), want)
	}
}

func TestGalleryProbeErrors(t *testing.T) {
	var out bytes.Buffer
	if err := runGallery([]string{"probe", "-subject", "-1"}, &out); err == nil {
		t.Error("expected error for a negative subject index")
	}
	if err := runGallery([]string{"probe", "-scale", "small", "-subjects", "4", "-regions", "24", "-subject", "99"}, &out); err == nil {
		t.Error("expected error for an out-of-range subject index")
	}
}
