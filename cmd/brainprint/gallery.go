// The gallery subcommands: enroll synthetic cohorts into a persistent
// fingerprint database on disk (single-file or sharded), inspect it,
// convert between layouts, and attack anonymous probe sessions against
// it with ranked top-k queries.
//
//	brainprint gallery enroll  -db hcp.bpg -task REST1 -encoding LR
//	brainprint gallery shard   -db hcp.bpg -out hcp.bpm -shards 4 -quantize
//	brainprint gallery live    -from hcp.bpg -db hcp.live
//	brainprint gallery compact -db hcp.live
//	brainprint gallery index   -db hcp.bpm
//	brainprint gallery info    -db hcp.bpm
//	brainprint gallery query   -db hcp.bpm -task REST2 -encoding RL -k 5 -ann
//	brainprint gallery probe   -task REST2 -encoding RL -subject 3
//
// query, info, and serve accept a single-file gallery (.bpg), a shard
// manifest (.bpm), or a live writable directory (gallery live) — the
// store layer auto-detects the format.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"brainprint"
)

// runGallery dispatches the gallery subcommands.
func runGallery(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("gallery: missing subcommand (want enroll, shard, live, compact, defend, index, query, info, or probe)")
	}
	switch args[0] {
	case "enroll":
		return galleryEnroll(args[1:], out)
	case "shard":
		return galleryShard(args[1:], out)
	case "live":
		return galleryLive(args[1:], out)
	case "compact":
		return galleryCompact(args[1:], out)
	case "defend":
		return galleryDefend(args[1:], out)
	case "index":
		return galleryIndex(args[1:], out)
	case "query":
		return galleryQuery(args[1:], out)
	case "info":
		return galleryInfo(args[1:], out)
	case "probe":
		return galleryProbe(args[1:], out)
	default:
		return fmt.Errorf("gallery: unknown subcommand %q (want enroll, shard, live, compact, defend, index, query, info, or probe)", args[0])
	}
}

// isLiveDir reports whether path is a live gallery directory (holds a
// CURRENT generation pointer).
func isLiveDir(path string) bool {
	st, err := os.Stat(path)
	if err != nil || !st.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, "CURRENT"))
	return err == nil
}

// galleryLive converts a read-only gallery database (single-file or
// sharded) into a live, writable gallery directory — or, with
// -features, creates an empty one. The live directory accepts online
// enrollment via `serve -writable` and answers queries bit-identically
// to the source it was seeded from.
func galleryLive(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint gallery live", flag.ContinueOnError)
	from := fs.String("from", "", "gallery file or shard manifest to seed from (omit with -features for an empty live gallery)")
	db := fs.String("db", "", "live gallery directory to create (required)")
	features := fs.Int("features", 0, "create an empty live gallery with this dimensionality instead of seeding from -from")
	shards := fs.Int("shards", 0, "shard count compaction writes (0 = inherit from -from, or 1 when empty)")
	spec := fs.String("defense", "", "anonymization pipeline applied at every base build (e.g. 'ksame(k=5)'); persisted in the manifest and inherited at reopen")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("gallery live: -db is required")
	}
	if (*from == "") == (*features == 0) {
		return fmt.Errorf("gallery live: exactly one of -from and -features is required")
	}
	defDesc, err := brainprint.ParseDefenseDescriptor(*spec)
	if err != nil {
		return fmt.Errorf("gallery live: %w", err)
	}
	opts := brainprint.LiveGalleryOptions{Shards: *shards, Defense: defDesc}
	if *from == "" {
		e, err := brainprint.CreateLiveGallery(*db, *features, opts)
		if err != nil {
			return err
		}
		defer e.Close()
		fmt.Fprintf(out, "created empty live gallery %s (%d features)\n", *db, *features)
		return nil
	}
	src, err := openStore(*from, out)
	if err != nil {
		return err
	}
	e, err := brainprint.CreateLiveGalleryFrom(*db, src, opts)
	if err != nil {
		return err
	}
	defer e.Close()
	st := e.Stats()
	fmt.Fprintf(out, "created live gallery %s from %s (%d subjects, %d features, generation %d, sequence %d)\n",
		*db, *from, e.Len(), e.Features(), st.Generation, st.Seq)
	return nil
}

// galleryCompact folds a live gallery's write-ahead log and in-memory
// overlay into a fresh immutable base under a generation switch —
// bounding the next open's replay time and the query overlay size.
func galleryCompact(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint gallery compact", flag.ContinueOnError)
	db := fs.String("db", "", "live gallery directory to compact (required)")
	shards := fs.Int("shards", 0, "shard count for the new base (0 = keep the engine default)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("gallery compact: -db is required")
	}
	e, err := brainprint.OpenLiveGallery(*db, brainprint.LiveGalleryOptions{Shards: *shards})
	if err != nil {
		return err
	}
	defer e.Close()
	before := e.Stats()
	if err := e.Compact(); err != nil {
		return err
	}
	after := e.Stats()
	fmt.Fprintf(out, "compacted %s: generation %d -> %d, folded %d log records (%d overlay, %d tombstones) into %d base records at sequence %d\n",
		*db, before.Generation, after.Generation, before.WALRecords, before.MemRecords, before.Tombstones, after.BaseRecords, after.Seq)
	if before.RecoveredTornBytes > 0 {
		fmt.Fprintf(out, "recovered a torn write-ahead log tail (%d bytes truncated)\n", before.RecoveredTornBytes)
	}
	return nil
}

// galleryDefend applies an anonymization pipeline to an enrolled
// gallery database and writes the defended release as a sharded store
// whose manifest records the pipeline — so `gallery info`, /healthz,
// and /v1/gallery on the release all report how it was anonymized.
// The source database is never modified. The transform is
// deterministic: the same source, spec, and seed produce a
// byte-identical release at any -parallelism.
func galleryDefend(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint gallery defend", flag.ContinueOnError)
	db := fs.String("db", "", "gallery file or shard manifest to defend (required)")
	outPath := fs.String("out", "", "shard manifest of the defended release to write (required)")
	spec := fs.String("defense", "", "pipeline spec, steps joined with '+' (required), e.g. 'ksame(k=5)' or 'suppress(top=20)+noise(laplace,eps=0.5,seed=7)'")
	shards := fs.Int("shards", 0, "shard count of the release (0 = inherit the source layout)")
	quantize := fs.Bool("quantize", false, "derive int8 scalar-quantization parameters for the release")
	par := fs.Int("parallelism", 0, "worker count (0 = all cores, 1 = serial); the release is identical at any setting")
	force := fs.Bool("force", false, "overwrite an existing manifest")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *db == "" || *outPath == "" {
		return fmt.Errorf("gallery defend: -db and -out are required")
	}
	d, err := brainprint.ParseDefenseDescriptor(*spec)
	if err != nil {
		return fmt.Errorf("gallery defend: %w", err)
	}
	if d == nil {
		return fmt.Errorf("gallery defend: -defense is required (spec %q resolves to the undefended pipeline)", *spec)
	}
	if !*force {
		if _, err := os.Stat(*outPath); err == nil {
			return fmt.Errorf("gallery defend: %s already exists (use -force to overwrite)", *outPath)
		}
	}
	src, err := openStore(*db, out)
	if err != nil {
		return err
	}
	var snap *brainprint.Gallery
	if idx := src.FeatureIndex(); idx != nil {
		snap = brainprint.NewGalleryIndexed(idx)
	} else {
		snap = brainprint.NewGallery(src.Features())
	}
	for gi, id := range src.IDs() {
		if err := snap.EnrollNormalized(id, src.Fingerprint(gi)); err != nil {
			return err
		}
	}
	defended, err := brainprint.ApplyDefense(snap, d, *par)
	if err != nil {
		return err
	}
	n := *shards
	if n <= 0 {
		n = src.Shards()
	}
	store, err := brainprint.NewGalleryStore(defended, n, *quantize)
	if err != nil {
		return err
	}
	store.SetDefense(d)
	if err := store.WriteFiles(*outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "defended %d subjects (%d features each) from %s into %s (%d shards%s)\n",
		defended.Len(), defended.Features(), *db, *outPath, n, quantSuffix(*quantize))
	fmt.Fprintf(out, "  defense: %s\n", d)
	return nil
}

// galleryIndex trains an IVF coarse index over a gallery database and
// persists it as the database's ".ivf" sidecar, enabling sub-linear
// -ann/-nprobe queries. The build is deterministic given the seed (at
// any -parallelism), and the index never changes reported scores —
// only which candidates the scan visits (see DESIGN.md §9). For a live
// directory the index covers the current generation's base store and
// is rebuilt automatically at every compaction.
func galleryIndex(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint gallery index", flag.ContinueOnError)
	db := fs.String("db", "", "gallery file, shard manifest, or live directory to index (required)")
	cells := fs.Int("cells", 0, "k-means cell count (0 = square root of the record count, clamped to [4, 512])")
	seed := fs.Int64("seed", 1, "training seed (the index is bit-identical given the seed)")
	par := fs.Int("parallelism", 0, "worker count (0 = all cores, 1 = serial); the index is identical at any setting")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("gallery index: -db is required")
	}
	if isLiveDir(*db) {
		e, err := brainprint.OpenLiveGallery(*db, brainprint.LiveGalleryOptions{})
		if err != nil {
			return err
		}
		defer e.Close()
		if err := e.BuildANN(context.Background(), *cells, *seed, *par); err != nil {
			return err
		}
		st := e.Stats()
		fmt.Fprintf(out, "indexed %d base records of %s (generation %d sidecar; query with -ann or -nprobe)\n",
			st.BaseRecords, *db, st.Generation)
		return nil
	}
	g, err := openStore(*db, out)
	if err != nil {
		return err
	}
	if err := g.BuildANN(context.Background(), *cells, *seed, *par); err != nil {
		return err
	}
	if err := g.SaveANN(*db); err != nil {
		return err
	}
	fmt.Fprintf(out, "indexed %d subjects of %s into %d cells (%s; query with -ann or -nprobe)\n",
		g.Len(), *db, g.ANNIndex().Cells(), brainprint.GalleryANNSidecarPath(*db))
	return nil
}

// openStore opens a gallery database of either layout, downgrading a
// partial shard failure to a warning so degraded stores stay usable
// from the CLI (the typed error still names every faulted shard).
func openStore(path string, out io.Writer) (*brainprint.GalleryStore, error) {
	store, err := brainprint.OpenGalleryStore(path)
	if err != nil {
		if !errors.Is(err, brainprint.ErrGalleryPartial) {
			return nil, err
		}
		fmt.Fprintf(out, "warning: %v\n", err)
	}
	return store, nil
}

// cohortFlags are the flags shared by enroll and query: they select the
// synthetic cohort and the session whose scans become fingerprints.
type cohortFlags struct {
	dataset     string
	scale       string
	subjects    int
	regions     int
	seed        int64
	task        string
	encoding    string
	session     int
	idprefix    string
	parallelism int
}

func (c *cohortFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&c.dataset, "dataset", "hcp", "cohort family: hcp or adhd")
	fs.StringVar(&c.scale, "scale", "small", "cohort scale: small, medium, or paper")
	fs.IntVar(&c.subjects, "subjects", 0, "override subject count (0 = scale default)")
	fs.IntVar(&c.regions, "regions", 0, "override region count (0 = scale default)")
	fs.Int64Var(&c.seed, "seed", 1, "master random seed (enroll and query must agree to target the same cohort)")
	fs.StringVar(&c.task, "task", "REST1", "hcp only: scan condition (REST1, REST2, EMOTION, GAMBLING, LANGUAGE, MOTOR, RELATIONAL, SOCIAL, WM)")
	fs.StringVar(&c.encoding, "encoding", "LR", "hcp only: phase encoding (LR or RL)")
	fs.IntVar(&c.session, "session", 0, "adhd only: resting session (0 or 1)")
	fs.StringVar(&c.idprefix, "idprefix", "", "subject ID prefix (default: the dataset name); distinct prefixes let several cohorts coexist in one gallery")
	fs.IntVar(&c.parallelism, "parallelism", 0, "worker count (0 = all cores, 1 = serial)")
}

// prefix resolves the subject ID prefix.
func (c *cohortFlags) prefix() string {
	if c.idprefix != "" {
		return c.idprefix
	}
	return c.dataset
}

// buildGroup generates the selected cohort deterministically from the
// seed and returns subject IDs plus the raw features×subjects group
// matrix of the selected session.
func (c *cohortFlags) buildGroup() ([]string, *brainprint.Matrix, error) {
	hcpParams, adhdParams, err := paramsForScale(c.scale, c.subjects, c.regions, c.seed)
	if err != nil {
		return nil, nil, err
	}
	opt := brainprint.ConnectomeOptions{Parallelism: c.parallelism}
	switch c.dataset {
	case "hcp":
		task, err := brainprint.ParseTask(c.task)
		if err != nil {
			return nil, nil, err
		}
		enc, err := brainprint.ParseEncoding(c.encoding)
		if err != nil {
			return nil, nil, err
		}
		cohort, err := brainprint.GenerateHCP(hcpParams)
		if err != nil {
			return nil, nil, err
		}
		scans, err := cohort.ScansFor(task, enc)
		if err != nil {
			return nil, nil, err
		}
		group, err := brainprint.GroupMatrix(scans, opt)
		if err != nil {
			return nil, nil, err
		}
		ids := make([]string, len(scans))
		for i, s := range scans {
			ids[i] = fmt.Sprintf("%s-s%03d", c.prefix(), s.Subject)
		}
		return ids, group, nil
	case "adhd":
		if c.session != 0 && c.session != 1 {
			return nil, nil, fmt.Errorf("gallery: -session must be 0 or 1, got %d", c.session)
		}
		cohort, err := brainprint.GenerateADHD(adhdParams)
		if err != nil {
			return nil, nil, err
		}
		all := make([]int, adhdParams.NumSubjects())
		for i := range all {
			all[i] = i
		}
		scans, err := cohort.SessionScans(all, c.session)
		if err != nil {
			return nil, nil, err
		}
		group, err := brainprint.GroupMatrixADHD(scans, opt)
		if err != nil {
			return nil, nil, err
		}
		ids := make([]string, len(scans))
		for i, s := range scans {
			ids[i] = fmt.Sprintf("%s-s%03d", c.prefix(), s.Subject)
		}
		return ids, group, nil
	}
	return nil, nil, fmt.Errorf("gallery: unknown dataset %q (want hcp or adhd)", c.dataset)
}

// galleryEnroll builds fingerprints for one cohort session and writes
// (or, with -append, extends) a gallery file — or, with -shards/
// -quantize, a sharded store (manifest plus shard files).
func galleryEnroll(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint gallery enroll", flag.ContinueOnError)
	var cf cohortFlags
	cf.register(fs)
	db := fs.String("db", "", "gallery file (or shard manifest, with -shards/-quantize) to write (required)")
	features := fs.Int("features", 100, "principal-features subspace size selected on the enrollment group (0 = keep every feature)")
	appendMode := fs.Bool("append", false, "append to an existing gallery file instead of creating one (uses the file's stored feature index)")
	force := fs.Bool("force", false, "overwrite an existing gallery file")
	shards := fs.Int("shards", 1, "write a sharded store with this many shard files (1 = single-file gallery)")
	quantize := fs.Bool("quantize", false, "store int8 scalar-quantization parameters and enable the quantized scan path (implies a sharded store)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("gallery enroll: -db is required")
	}
	if *shards < 1 {
		return fmt.Errorf("gallery enroll: -shards %d must be at least 1", *shards)
	}
	if *appendMode && (*shards > 1 || *quantize) {
		return fmt.Errorf("gallery enroll: -append cannot be combined with -shards/-quantize (append targets a single-file gallery)")
	}
	if *appendMode {
		// Appending reuses the file's stored feature selection; an
		// explicit -features alongside -append would be silently
		// discarded, so reject the combination.
		conflict := false
		fs.Visit(func(f *flag.Flag) { conflict = conflict || f.Name == "features" })
		if conflict {
			return fmt.Errorf("gallery enroll: -features cannot be combined with -append (the file's stored feature index is used)")
		}
	} else if !*force {
		if _, err := os.Stat(*db); err == nil {
			return fmt.Errorf("gallery enroll: %s already exists (use -append to extend it or -force to overwrite)", *db)
		}
	}
	ids, group, err := cf.buildGroup()
	if err != nil {
		return err
	}

	if *appendMode {
		g, err := brainprint.EnrollGalleryFile(*db, ids, group)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "appended %d subjects to %s (now %d subjects, %d features)\n",
			len(ids), *db, g.Len(), g.Features())
		return nil
	}

	cfg := brainprint.DefaultAttackConfig()
	cfg.Features = *features
	cfg.Parallelism = cf.parallelism
	fps, idx, err := brainprint.Fingerprints(group, cfg)
	if err != nil {
		return err
	}
	var g *brainprint.Gallery
	if idx != nil {
		g = brainprint.NewGalleryIndexed(idx)
	} else {
		g = brainprint.NewGallery(fps.Rows())
	}
	if err := g.EnrollMatrix(ids, fps); err != nil {
		return err
	}
	if *shards > 1 || *quantize {
		store, err := brainprint.NewGalleryStore(g, *shards, *quantize)
		if err != nil {
			return err
		}
		if err := store.WriteFiles(*db); err != nil {
			return err
		}
		fmt.Fprintf(out, "enrolled %d subjects (%d features each) into %s (%d shards%s)\n",
			g.Len(), g.Features(), *db, *shards, quantSuffix(*quantize))
		return nil
	}
	if err := g.WriteFile(*db); err != nil {
		return err
	}
	fmt.Fprintf(out, "enrolled %d subjects (%d features each) into %s\n", g.Len(), g.Features(), *db)
	return nil
}

// quantSuffix renders the ", quantized" tail of enroll/shard messages.
func quantSuffix(on bool) string {
	if on {
		return ", quantized"
	}
	return ""
}

// galleryShard converts a single-file gallery into a sharded store:
// subjects are routed by the stable hash, shard files are standard
// gallery files, and the manifest records per-shard checksums and dims.
// With -quantize the store also carries int8 scalar-quantization
// parameters, enabling the approximate-scan-exact-rescore path.
func galleryShard(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint gallery shard", flag.ContinueOnError)
	db := fs.String("db", "", "single-file gallery to convert (required)")
	outPath := fs.String("out", "", "shard manifest to write (required; shard files land beside it)")
	shards := fs.Int("shards", 4, "shard count")
	quantize := fs.Bool("quantize", false, "derive int8 scalar-quantization parameters and enable the quantized scan path")
	force := fs.Bool("force", false, "overwrite an existing manifest")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *db == "" || *outPath == "" {
		return fmt.Errorf("gallery shard: -db and -out are required")
	}
	if !*force {
		if _, err := os.Stat(*outPath); err == nil {
			return fmt.Errorf("gallery shard: %s already exists (use -force to overwrite)", *outPath)
		}
	}
	g, err := brainprint.OpenGallery(*db)
	if err != nil {
		return err
	}
	store, err := brainprint.NewGalleryStore(g, *shards, *quantize)
	if err != nil {
		return err
	}
	if err := store.WriteFiles(*outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "sharded %d subjects (%d features each) from %s into %s (%d shards%s)\n",
		g.Len(), g.Features(), *db, *outPath, *shards, quantSuffix(*quantize))
	return nil
}

// queryEngine is the slice of the gallery surface the query subcommand
// needs — satisfied by the read-only store and the live engine alike.
type queryEngine interface {
	Len() int
	Index(id string) int
	QueryAllP(probes *brainprint.Matrix, k, parallelism int) ([][]brainprint.GalleryCandidate, error)
}

// openQueryEngine opens any gallery database — single file, shard
// manifest, or live directory — for querying.
func openQueryEngine(path string, out io.Writer) (queryEngine, func(), error) {
	if isLiveDir(path) {
		e, err := brainprint.OpenLiveGallery(path, brainprint.LiveGalleryOptions{})
		if err != nil {
			return nil, nil, err
		}
		return e, func() { e.Close() }, nil
	}
	g, err := openStore(path, out)
	if err != nil {
		return nil, nil, err
	}
	return g, func() {}, nil
}

// galleryQuery attacks a probe session against an enrolled gallery,
// sharded store, or live directory.
func galleryQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint gallery query", flag.ContinueOnError)
	var cf cohortFlags
	cf.register(fs)
	db := fs.String("db", "", "gallery file, shard manifest, or live directory to query (required)")
	k := fs.Int("k", 5, "candidates to report per probe")
	scan := fs.String("scan", "", "candidate-scan precision: float64 (default), float32, or int8; reduced precisions rescore exactly, so reported scores are identical")
	ann := fs.Bool("ann", false, "scan through the IVF coarse index at the default fan-out (requires a `gallery index` sidecar)")
	nprobe := fs.Int("nprobe", 0, "IVF cells to probe per query (implies -ann; 0 with -ann = the default fan-out)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("gallery query: -db is required")
	}
	if *nprobe < 0 {
		return fmt.Errorf("gallery query: -nprobe %d must be non-negative", *nprobe)
	}
	prec, err := brainprint.ParseScanPrecision(*scan)
	if err != nil {
		return fmt.Errorf("gallery query: %w", err)
	}
	g, done, err := openQueryEngine(*db, out)
	if err != nil {
		return err
	}
	defer done()
	if *scan != "" {
		ps, ok := g.(brainprint.PrecisionSetter)
		switch {
		case ok:
			if err := ps.SetPrecision(prec); err != nil {
				return fmt.Errorf("gallery query: -scan %s: %w", prec, err)
			}
		case prec != brainprint.ScanFloat64:
			return fmt.Errorf("gallery query: -scan %s: %s is a single-file gallery without the precision knob", prec, *db)
		}
	}
	if *ann || *nprobe > 0 {
		np := *nprobe
		if np == 0 {
			np = brainprint.DefaultNProbe
		}
		as, ok := g.(brainprint.GalleryANNSetter)
		if !ok {
			return fmt.Errorf("gallery query: -ann: %s does not support ANN scans", *db)
		}
		if err := as.SetANNProbe(np); err != nil {
			return fmt.Errorf("gallery query: -ann: %w", err)
		}
	}
	ids, probes, err := cf.buildGroup()
	if err != nil {
		return err
	}
	ranked, err := g.QueryAllP(probes, *k, cf.parallelism)
	if err != nil {
		return err
	}

	enrolled, top1, topk := 0, 0, 0
	for j, top := range ranked {
		var row strings.Builder
		fmt.Fprintf(&row, "probe %-12s", ids[j])
		hit := g.Index(ids[j]) >= 0
		if hit {
			enrolled++
		}
		for r, cand := range top {
			marker := ""
			if cand.ID == ids[j] {
				marker = "*"
				topk++
				if r == 0 {
					top1++
				}
			}
			fmt.Fprintf(&row, "  %d) %s %.4f%s", r+1, cand.ID, cand.Score, marker)
		}
		fmt.Fprintln(out, row.String())
	}
	fmt.Fprintf(out, "\n%d probes against %d enrolled subjects (k=%d)\n", len(ranked), g.Len(), *k)
	if enrolled > 0 {
		fmt.Fprintf(out, "top-1: %d/%d (%.1f%%)   top-%d: %d/%d (%.1f%%)\n",
			top1, enrolled, 100*float64(top1)/float64(enrolled),
			*k, topk, enrolled, 100*float64(topk)/float64(enrolled))
	} else {
		fmt.Fprintln(out, "no probe IDs are enrolled; accuracy not applicable")
	}
	return nil
}

// galleryProbe emits one cohort subject's probe as an identify-request
// JSON document, ready to POST to the serve subcommand's /v1/identify:
//
//	brainprint gallery probe -task REST2 -encoding RL -subject 3 |
//	    curl -s -X POST --data @- localhost:7311/v1/identify
//
// The probe is a raw connectome vector; galleries enrolled with a
// feature index project it server-side, so enroll and probe only need
// to agree on the cohort parameters (-scale/-subjects/-regions/-seed).
func galleryProbe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint gallery probe", flag.ContinueOnError)
	var cf cohortFlags
	cf.register(fs)
	subject := fs.Int("subject", 0, "cohort subject index to emit")
	k := fs.Int("k", 0, "candidate count to request (0 = server default)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *subject < 0 {
		return fmt.Errorf("gallery probe: -subject %d must be non-negative", *subject)
	}
	ids, group, err := cf.buildGroup()
	if err != nil {
		return err
	}
	if *subject >= len(ids) {
		return fmt.Errorf("gallery probe: -subject %d out of range (cohort has %d subjects)", *subject, len(ids))
	}
	req := struct {
		ID    string    `json:"id"`
		Probe []float64 `json:"probe"`
		K     int       `json:"k,omitempty"`
	}{ID: ids[*subject], Probe: group.Col(*subject), K: *k}
	enc := json.NewEncoder(out)
	return enc.Encode(req)
}

// galleryInfo prints the metadata and per-shard health of a gallery
// database. For sharded stores each shard reports its record count,
// size, and checksum status; a faulted shard (missing file, CRC
// failure, manifest↔shard dims mismatch) is flagged with its typed
// diagnosis instead of aborting the whole inspection with a raw decode
// error.
func galleryInfo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint gallery info", flag.ContinueOnError)
	db := fs.String("db", "", "gallery file or shard manifest to inspect (required)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("gallery info: -db is required")
	}
	if isLiveDir(*db) {
		return liveInfo(*db, out)
	}
	g, err := brainprint.OpenGalleryStore(*db)
	if err != nil && !errors.Is(err, brainprint.ErrGalleryPartial) {
		return err
	}
	fmt.Fprintf(out, "gallery %s\n", *db)
	if g.HasManifest() {
		fmt.Fprintf(out, "  layout:         %d shard(s) (manifest version %d, shard format version %d)\n",
			g.Shards(), brainprint.GalleryManifestVersion, brainprint.GalleryFormatVersion)
	} else {
		fmt.Fprintf(out, "  layout:         single file (format version %d)\n", brainprint.GalleryFormatVersion)
	}
	if g.HasQuant() {
		fmt.Fprintf(out, "  quantized:      int8 scalar scan with exact float64 rescore\n")
	}
	if d := g.Defense(); d != nil {
		fmt.Fprintf(out, "  defense:        %s\n", d)
	}
	if g.HasANNIndex() {
		fmt.Fprintf(out, "  ann index:      IVF sidecar, %d cells (queries scan exactly unless -ann/-nprobe)\n",
			g.ANNIndex().Cells())
	}
	stats := g.Stats()
	var bytes int64
	loaded := 0
	for _, st := range stats {
		if st.Loaded {
			bytes += st.Meta.Bytes
			loaded++
		}
	}
	fmt.Fprintf(out, "  data on disk:   %d bytes across %d of %d shard file(s)\n", bytes, loaded, len(stats))
	fmt.Fprintf(out, "  subjects:       %d", g.Len())
	if g.LoadedShards() < g.Shards() {
		fmt.Fprintf(out, " (loaded shards only; %d shard(s) unavailable)", g.Shards()-g.LoadedShards())
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "  features:       %d\n", g.Features())
	if idx := g.FeatureIndex(); idx != nil {
		fmt.Fprintf(out, "  feature index:  %d raw-space rows (probes may be full connectome vectors)\n", len(idx))
	} else {
		fmt.Fprintf(out, "  feature index:  none (probes must be gallery-space vectors)\n")
	}
	if len(stats) > 1 {
		fmt.Fprintf(out, "  shards:\n")
		for i, st := range stats {
			switch {
			case st.Loaded:
				fmt.Fprintf(out, "    [%d] %-16s %5d records  %8d bytes  checksum ok\n",
					i, st.Meta.Name, st.Meta.Records, st.Meta.Bytes)
			default:
				fmt.Fprintf(out, "    [%d] %-16s FAULT: %v\n", i, st.Meta.Name, st.Err)
			}
		}
	}
	if g.Len() > 0 {
		n := min(g.Len(), 5)
		fmt.Fprintf(out, "  first subjects: %s", strings.Join(g.IDs()[:n], ", "))
		if g.Len() > n {
			fmt.Fprintf(out, ", … (%d more)", g.Len()-n)
		}
		fmt.Fprintln(out)
	}
	return nil
}

// liveInfo prints the metadata and mutation/compaction counters of a
// live gallery directory.
func liveInfo(dir string, out io.Writer) error {
	e, err := brainprint.OpenLiveGallery(dir, brainprint.LiveGalleryOptions{})
	if err != nil {
		return err
	}
	defer e.Close()
	st := e.Stats()
	fmt.Fprintf(out, "gallery %s\n", dir)
	fmt.Fprintf(out, "  layout:         live directory (generation %d, WAL version %d)\n",
		st.Generation, brainprint.GalleryWALVersion)
	fmt.Fprintf(out, "  subjects:       %d (%d base, %d overlay, %d tombstones pending)\n",
		e.Len(), st.BaseRecords, st.MemRecords, st.Tombstones)
	fmt.Fprintf(out, "  features:       %d\n", e.Features())
	if d := e.Defense(); d != nil {
		fmt.Fprintf(out, "  defense:        %s (applied at every compaction)\n", d)
	}
	if idx := e.FeatureIndex(); idx != nil {
		fmt.Fprintf(out, "  feature index:  %d raw-space rows (probes may be full connectome vectors)\n", len(idx))
	} else {
		fmt.Fprintf(out, "  feature index:  none (probes must be gallery-space vectors)\n")
	}
	if e.HasANNIndex() {
		fmt.Fprintf(out, "  ann index:      IVF sidecar on the base store (queries scan exactly unless -ann/-nprobe)\n")
	}
	fmt.Fprintf(out, "  write-ahead log: %d records, %d bytes\n", st.WALRecords, st.WALBytes)
	fmt.Fprintf(out, "  sequence:       %d (current generation starts after %d)\n", st.Seq, st.BaseSeq)
	if st.RecoveredTornBytes > 0 {
		fmt.Fprintf(out, "  recovery:       truncated a torn log tail (%d bytes) at open\n", st.RecoveredTornBytes)
	}
	if e.Len() > 0 {
		ids := e.IDs()
		n := min(len(ids), 5)
		fmt.Fprintf(out, "  first subjects: %s", strings.Join(ids[:n], ", "))
		if len(ids) > n {
			fmt.Fprintf(out, ", … (%d more)", len(ids)-n)
		}
		fmt.Fprintln(out)
	}
	return nil
}
