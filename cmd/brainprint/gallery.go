// The gallery subcommands: enroll synthetic cohorts into a persistent
// fingerprint database on disk, inspect it, and attack anonymous probe
// sessions against it with ranked top-k queries.
//
//	brainprint gallery enroll -db hcp.bpg -task REST1 -encoding LR
//	brainprint gallery info   -db hcp.bpg
//	brainprint gallery query  -db hcp.bpg -task REST2 -encoding RL -k 5
//	brainprint gallery probe  -task REST2 -encoding RL -subject 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"brainprint"
)

// runGallery dispatches the gallery subcommands.
func runGallery(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("gallery: missing subcommand (want enroll, query, info, or probe)")
	}
	switch args[0] {
	case "enroll":
		return galleryEnroll(args[1:], out)
	case "query":
		return galleryQuery(args[1:], out)
	case "info":
		return galleryInfo(args[1:], out)
	case "probe":
		return galleryProbe(args[1:], out)
	default:
		return fmt.Errorf("gallery: unknown subcommand %q (want enroll, query, info, or probe)", args[0])
	}
}

// cohortFlags are the flags shared by enroll and query: they select the
// synthetic cohort and the session whose scans become fingerprints.
type cohortFlags struct {
	dataset     string
	scale       string
	subjects    int
	regions     int
	seed        int64
	task        string
	encoding    string
	session     int
	idprefix    string
	parallelism int
}

func (c *cohortFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&c.dataset, "dataset", "hcp", "cohort family: hcp or adhd")
	fs.StringVar(&c.scale, "scale", "small", "cohort scale: small, medium, or paper")
	fs.IntVar(&c.subjects, "subjects", 0, "override subject count (0 = scale default)")
	fs.IntVar(&c.regions, "regions", 0, "override region count (0 = scale default)")
	fs.Int64Var(&c.seed, "seed", 1, "master random seed (enroll and query must agree to target the same cohort)")
	fs.StringVar(&c.task, "task", "REST1", "hcp only: scan condition (REST1, REST2, EMOTION, GAMBLING, LANGUAGE, MOTOR, RELATIONAL, SOCIAL, WM)")
	fs.StringVar(&c.encoding, "encoding", "LR", "hcp only: phase encoding (LR or RL)")
	fs.IntVar(&c.session, "session", 0, "adhd only: resting session (0 or 1)")
	fs.StringVar(&c.idprefix, "idprefix", "", "subject ID prefix (default: the dataset name); distinct prefixes let several cohorts coexist in one gallery")
	fs.IntVar(&c.parallelism, "parallelism", 0, "worker count (0 = all cores, 1 = serial)")
}

// prefix resolves the subject ID prefix.
func (c *cohortFlags) prefix() string {
	if c.idprefix != "" {
		return c.idprefix
	}
	return c.dataset
}

// buildGroup generates the selected cohort deterministically from the
// seed and returns subject IDs plus the raw features×subjects group
// matrix of the selected session.
func (c *cohortFlags) buildGroup() ([]string, *brainprint.Matrix, error) {
	hcpParams, adhdParams, err := paramsForScale(c.scale, c.subjects, c.regions, c.seed)
	if err != nil {
		return nil, nil, err
	}
	opt := brainprint.ConnectomeOptions{Parallelism: c.parallelism}
	switch c.dataset {
	case "hcp":
		task, err := brainprint.ParseTask(c.task)
		if err != nil {
			return nil, nil, err
		}
		enc, err := brainprint.ParseEncoding(c.encoding)
		if err != nil {
			return nil, nil, err
		}
		cohort, err := brainprint.GenerateHCP(hcpParams)
		if err != nil {
			return nil, nil, err
		}
		scans, err := cohort.ScansFor(task, enc)
		if err != nil {
			return nil, nil, err
		}
		group, err := brainprint.GroupMatrix(scans, opt)
		if err != nil {
			return nil, nil, err
		}
		ids := make([]string, len(scans))
		for i, s := range scans {
			ids[i] = fmt.Sprintf("%s-s%03d", c.prefix(), s.Subject)
		}
		return ids, group, nil
	case "adhd":
		if c.session != 0 && c.session != 1 {
			return nil, nil, fmt.Errorf("gallery: -session must be 0 or 1, got %d", c.session)
		}
		cohort, err := brainprint.GenerateADHD(adhdParams)
		if err != nil {
			return nil, nil, err
		}
		all := make([]int, adhdParams.NumSubjects())
		for i := range all {
			all[i] = i
		}
		scans, err := cohort.SessionScans(all, c.session)
		if err != nil {
			return nil, nil, err
		}
		group, err := brainprint.GroupMatrixADHD(scans, opt)
		if err != nil {
			return nil, nil, err
		}
		ids := make([]string, len(scans))
		for i, s := range scans {
			ids[i] = fmt.Sprintf("%s-s%03d", c.prefix(), s.Subject)
		}
		return ids, group, nil
	}
	return nil, nil, fmt.Errorf("gallery: unknown dataset %q (want hcp or adhd)", c.dataset)
}

// galleryEnroll builds fingerprints for one cohort session and writes
// (or, with -append, extends) a gallery file.
func galleryEnroll(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint gallery enroll", flag.ContinueOnError)
	var cf cohortFlags
	cf.register(fs)
	db := fs.String("db", "", "gallery file to write (required)")
	features := fs.Int("features", 100, "principal-features subspace size selected on the enrollment group (0 = keep every feature)")
	appendMode := fs.Bool("append", false, "append to an existing gallery file instead of creating one (uses the file's stored feature index)")
	force := fs.Bool("force", false, "overwrite an existing gallery file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("gallery enroll: -db is required")
	}
	if *appendMode {
		// Appending reuses the file's stored feature selection; an
		// explicit -features alongside -append would be silently
		// discarded, so reject the combination.
		conflict := false
		fs.Visit(func(f *flag.Flag) { conflict = conflict || f.Name == "features" })
		if conflict {
			return fmt.Errorf("gallery enroll: -features cannot be combined with -append (the file's stored feature index is used)")
		}
	} else if !*force {
		if _, err := os.Stat(*db); err == nil {
			return fmt.Errorf("gallery enroll: %s already exists (use -append to extend it or -force to overwrite)", *db)
		}
	}
	ids, group, err := cf.buildGroup()
	if err != nil {
		return err
	}

	if *appendMode {
		g, err := brainprint.EnrollGalleryFile(*db, ids, group)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "appended %d subjects to %s (now %d subjects, %d features)\n",
			len(ids), *db, g.Len(), g.Features())
		return nil
	}

	cfg := brainprint.DefaultAttackConfig()
	cfg.Features = *features
	cfg.Parallelism = cf.parallelism
	fps, idx, err := brainprint.Fingerprints(group, cfg)
	if err != nil {
		return err
	}
	var g *brainprint.Gallery
	if idx != nil {
		g = brainprint.NewGalleryIndexed(idx)
	} else {
		g = brainprint.NewGallery(fps.Rows())
	}
	if err := g.EnrollMatrix(ids, fps); err != nil {
		return err
	}
	if err := g.WriteFile(*db); err != nil {
		return err
	}
	fmt.Fprintf(out, "enrolled %d subjects (%d features each) into %s\n", g.Len(), g.Features(), *db)
	return nil
}

// galleryQuery attacks a probe session against an enrolled gallery.
func galleryQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint gallery query", flag.ContinueOnError)
	var cf cohortFlags
	cf.register(fs)
	db := fs.String("db", "", "gallery file to query (required)")
	k := fs.Int("k", 5, "candidates to report per probe")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("gallery query: -db is required")
	}
	g, err := brainprint.OpenGallery(*db)
	if err != nil {
		return err
	}
	ids, probes, err := cf.buildGroup()
	if err != nil {
		return err
	}
	ranked, err := g.QueryAllP(probes, *k, cf.parallelism)
	if err != nil {
		return err
	}

	enrolled, top1, topk := 0, 0, 0
	for j, top := range ranked {
		var row strings.Builder
		fmt.Fprintf(&row, "probe %-12s", ids[j])
		hit := g.Index(ids[j]) >= 0
		if hit {
			enrolled++
		}
		for r, cand := range top {
			marker := ""
			if cand.ID == ids[j] {
				marker = "*"
				topk++
				if r == 0 {
					top1++
				}
			}
			fmt.Fprintf(&row, "  %d) %s %.4f%s", r+1, cand.ID, cand.Score, marker)
		}
		fmt.Fprintln(out, row.String())
	}
	fmt.Fprintf(out, "\n%d probes against %d enrolled subjects (k=%d)\n", len(ranked), g.Len(), *k)
	if enrolled > 0 {
		fmt.Fprintf(out, "top-1: %d/%d (%.1f%%)   top-%d: %d/%d (%.1f%%)\n",
			top1, enrolled, 100*float64(top1)/float64(enrolled),
			*k, topk, enrolled, 100*float64(topk)/float64(enrolled))
	} else {
		fmt.Fprintln(out, "no probe IDs are enrolled; accuracy not applicable")
	}
	return nil
}

// galleryProbe emits one cohort subject's probe as an identify-request
// JSON document, ready to POST to the serve subcommand's /v1/identify:
//
//	brainprint gallery probe -task REST2 -encoding RL -subject 3 |
//	    curl -s -X POST --data @- localhost:7311/v1/identify
//
// The probe is a raw connectome vector; galleries enrolled with a
// feature index project it server-side, so enroll and probe only need
// to agree on the cohort parameters (-scale/-subjects/-regions/-seed).
func galleryProbe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint gallery probe", flag.ContinueOnError)
	var cf cohortFlags
	cf.register(fs)
	subject := fs.Int("subject", 0, "cohort subject index to emit")
	k := fs.Int("k", 0, "candidate count to request (0 = server default)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *subject < 0 {
		return fmt.Errorf("gallery probe: -subject %d must be non-negative", *subject)
	}
	ids, group, err := cf.buildGroup()
	if err != nil {
		return err
	}
	if *subject >= len(ids) {
		return fmt.Errorf("gallery probe: -subject %d out of range (cohort has %d subjects)", *subject, len(ids))
	}
	req := struct {
		ID    string    `json:"id"`
		Probe []float64 `json:"probe"`
		K     int       `json:"k,omitempty"`
	}{ID: ids[*subject], Probe: group.Col(*subject), K: *k}
	enc := json.NewEncoder(out)
	return enc.Encode(req)
}

// galleryInfo prints the header metadata of a gallery file.
func galleryInfo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint gallery info", flag.ContinueOnError)
	db := fs.String("db", "", "gallery file to inspect (required)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("gallery info: -db is required")
	}
	g, err := brainprint.OpenGallery(*db)
	if err != nil {
		return err
	}
	st, err := os.Stat(*db)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "gallery %s\n", *db)
	fmt.Fprintf(out, "  format version: %d\n", brainprint.GalleryFormatVersion)
	fmt.Fprintf(out, "  size on disk:   %d bytes\n", st.Size())
	fmt.Fprintf(out, "  subjects:       %d\n", g.Len())
	fmt.Fprintf(out, "  features:       %d\n", g.Features())
	if idx := g.FeatureIndex(); idx != nil {
		fmt.Fprintf(out, "  feature index:  %d raw-space rows (probes may be full connectome vectors)\n", len(idx))
	} else {
		fmt.Fprintf(out, "  feature index:  none (probes must be gallery-space vectors)\n")
	}
	if g.Len() > 0 {
		n := min(g.Len(), 5)
		fmt.Fprintf(out, "  first subjects: %s", strings.Join(g.IDs()[:n], ", "))
		if g.Len() > n {
			fmt.Fprintf(out, ", … (%d more)", g.Len()-n)
		}
		fmt.Fprintln(out)
	}
	return nil
}
