// The loadgen subcommand: drive configurable mixed identify/enroll
// traffic against one or more running brainprint servers and report
// latency percentiles and throughput per (target, concurrency level).
//
//	brainprint serve -db hcp.live -writable -addr 127.0.0.1:7311 &
//	brainprint serve -db rep.live -replica-of http://127.0.0.1:7311 \
//	    -addr 127.0.0.1:7312 &
//	brainprint loadgen \
//	    -targets http://127.0.0.1:7311,http://127.0.0.1:7312 \
//	    -concurrency 4,16 -duration 5s -json LOAD_pr8.json
//
// Identify probes are synthetic Gaussian vectors in the target
// gallery's dimensionality (latency does not depend on probe content);
// with -enroll-fraction > 0 a matching share of requests enroll fresh
// synthetic subjects instead, which a writable primary accepts and a
// replica correctly refuses (counted as errors).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// loadgenRun is the result of one (target, concurrency) cell, both
// printed as a table row and persisted to the -json artifact.
type loadgenRun struct {
	Target        string  `json:"target"`
	Concurrency   int     `json:"concurrency"`
	DurationSec   float64 `json:"duration_seconds"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	Identify      int     `json:"identify"`
	Enroll        int     `json:"enroll"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	MaxMS         float64 `json:"max_ms"`
}

// loadgenReport is the LOAD_pr8.json artifact shape.
type loadgenReport struct {
	GeneratedUnix  int64        `json:"generated_unix"`
	K              int          `json:"k"`
	EnrollFraction float64      `json:"enroll_fraction"`
	Runs           []loadgenRun `json:"runs"`
}

// runLoadgen parses flags and sweeps every target × concurrency cell
// sequentially, so cells never contend with each other for client-side
// resources.
func runLoadgen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint loadgen", flag.ContinueOnError)
	var (
		targets  = fs.String("targets", "", "comma-separated base URLs of running brainprint servers (required)")
		levels   = fs.String("concurrency", "4,16", "comma-separated concurrency levels to sweep")
		duration = fs.Duration("duration", 5*time.Second, "wall-clock length of each (target, concurrency) cell")
		enroll   = fs.Float64("enroll-fraction", 0, "fraction of requests that enroll a fresh synthetic subject instead of identifying (0..1; needs a -writable target)")
		k        = fs.Int("k", 1, "candidates requested per identification")
		seed     = fs.Int64("seed", 1, "probe-synthesis random seed")
		jsonPath = fs.String("json", "", "write the report to this JSON artifact (e.g. LOAD_pr8.json) in addition to the table")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *targets == "" {
		return fmt.Errorf("loadgen: -targets is required")
	}
	if *enroll < 0 || *enroll > 1 {
		return fmt.Errorf("loadgen: -enroll-fraction %g must be in [0, 1]", *enroll)
	}
	if *duration <= 0 {
		return fmt.Errorf("loadgen: -duration must be positive")
	}
	var concs []int
	for _, s := range strings.Split(*levels, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			return fmt.Errorf("loadgen: bad concurrency level %q", s)
		}
		concs = append(concs, n)
	}

	report := loadgenReport{GeneratedUnix: time.Now().Unix(), K: *k, EnrollFraction: *enroll}
	fmt.Fprintf(out, "%-28s %6s %9s %7s %9s %8s %8s %8s\n",
		"target", "conc", "requests", "errors", "req/s", "p50 ms", "p95 ms", "p99 ms")
	for _, target := range strings.Split(*targets, ",") {
		target = strings.TrimRight(strings.TrimSpace(target), "/")
		features, err := targetFeatures(target)
		if err != nil {
			return fmt.Errorf("loadgen: probing %s: %w", target, err)
		}
		for _, conc := range concs {
			run := loadgenCell(target, features, conc, *duration, *enroll, *k, *seed)
			report.Runs = append(report.Runs, run)
			fmt.Fprintf(out, "%-28s %6d %9d %7d %9.1f %8.2f %8.2f %8.2f\n",
				target, conc, run.Requests, run.Errors, run.ThroughputRPS, run.P50MS, run.P95MS, run.P99MS)
		}
	}
	if *jsonPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("loadgen: writing report: %w", err)
		}
		fmt.Fprintf(out, "wrote %s (%d runs)\n", *jsonPath, len(report.Runs))
	}
	return nil
}

// targetFeatures asks the target's gallery endpoint for the probe
// dimensionality the cell's synthetic vectors must carry.
func targetFeatures(target string) (int, error) {
	resp, err := http.Get(target + "/v1/gallery")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /v1/gallery answered %d", resp.StatusCode)
	}
	var meta struct {
		Features int `json:"features"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return 0, err
	}
	if meta.Features <= 0 {
		return 0, fmt.Errorf("target reports %d features", meta.Features)
	}
	return meta.Features, nil
}

// loadgenCell hammers one target at one concurrency level for the
// given duration and aggregates the workers' latency samples.
func loadgenCell(target string, features, conc int, duration time.Duration, enrollFrac float64, k int, seed int64) loadgenRun {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: conc, // keep-alive per worker: measure the server, not TCP setup
	}}
	defer client.CloseIdleConnections()

	var stop atomic.Bool
	// Enrolled IDs must be unique across cells and across repeated
	// loadgen invocations against a persistent server: a wall-clock
	// nonce per cell plus a serial per request.
	nonce := time.Now().UnixNano()
	var enrollSerial atomic.Int64
	type workerOut struct {
		latencies []float64 // milliseconds, successes only
		errors    int
		identify  int
		enroll    int
	}
	outs := make([]workerOut, conc)
	var wg sync.WaitGroup
	start := time.Now()
	time.AfterFunc(duration, func() { stop.Store(true) })
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			probe := make([]float64, features)
			o := &outs[w]
			for !stop.Load() {
				for i := range probe {
					probe[i] = rng.NormFloat64()
				}
				var (
					path string
					body any
				)
				if rng.Float64() < enrollFrac {
					o.enroll++
					path = "/v1/enroll"
					body = map[string]any{
						"id":          fmt.Sprintf("loadgen-%x-%d", nonce, enrollSerial.Add(1)),
						"fingerprint": probe,
					}
				} else {
					o.identify++
					path = "/v1/identify"
					body = map[string]any{"probe": probe, "k": k}
				}
				t0 := time.Now()
				ok := loadgenPost(client, target+path, body)
				if ok {
					o.latencies = append(o.latencies, float64(time.Since(t0).Microseconds())/1000)
				} else {
					o.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	run := loadgenRun{
		Target:      target,
		Concurrency: conc,
		DurationSec: elapsed.Seconds(),
	}
	var all []float64
	for i := range outs {
		all = append(all, outs[i].latencies...)
		run.Errors += outs[i].errors
		run.Identify += outs[i].identify
		run.Enroll += outs[i].enroll
	}
	run.Requests = len(all) + run.Errors
	run.ThroughputRPS = float64(len(all)) / elapsed.Seconds()
	sort.Float64s(all)
	run.P50MS = percentile(all, 0.50)
	run.P95MS = percentile(all, 0.95)
	run.P99MS = percentile(all, 0.99)
	if n := len(all); n > 0 {
		run.MaxMS = all[n-1]
	}
	return run
}

// loadgenPost sends one JSON request and reports whether it succeeded
// (any 2xx). The body is drained so the connection is reused.
func loadgenPost(client *http.Client, url string, body any) bool {
	raw, err := json.Marshal(body)
	if err != nil {
		return false
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// percentile reads the q-quantile from latencies sorted ascending
// (nearest-rank; 0 when empty).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
