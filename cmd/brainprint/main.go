// Command brainprint regenerates the paper's figures and tables on
// synthetic cohorts and manages persistent fingerprint galleries. Each
// experiment prints a textual rendering of the corresponding artifact
// (ASCII heatmaps for matrix figures, aligned tables for the result
// tables); the gallery subcommands enroll synthetic cohorts to disk and
// attack them incrementally with ranked top-k queries.
//
// Usage:
//
//	brainprint -experiment fig1|fig2|fig5|fig6|fig7|fig8|fig9|table1|table2|all [flags]
//	brainprint gallery enroll|query|info [flags]
//
// The -scale flag selects cohort dimensions: "small" is fast and good
// for smoke runs, "medium" is a compromise, and "paper" matches the
// paper's 100 subjects × 360 regions (slow; minutes).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"brainprint"
)

// usageText is the short usage block fail appends to every CLI error.
const usageText = `usage:
  brainprint [-experiment fig1|fig2|fig5|fig6|fig7|fig8|fig9|table1|table2|defense|all] [flags]
  brainprint gallery enroll|query|info [flags]

run 'brainprint -help' or 'brainprint gallery <subcommand> -help' for the
flags of each form`

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "gallery" {
		if err := runGallery(args[1:], os.Stdout); err != nil && !errors.Is(err, flag.ErrHelp) {
			fail(err)
		}
		return
	}
	fs := flag.NewFlagSet("brainprint", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "which experiment to run: fig1, fig2, fig5, fig6, fig7, fig8, fig9, table1, table2, defense, or all")
		scale      = fs.String("scale", "small", "cohort scale: small, medium, or paper")
		subjects   = fs.Int("subjects", 0, "override subject count (0 = scale default)")
		regions    = fs.Int("regions", 0, "override region count (0 = scale default)")
		features   = fs.Int("features", 100, "size of the principal features subspace")
		trials     = fs.Int("trials", 5, "repeated trials for resampled experiments")
		seed       = fs.Int64("seed", 1, "master random seed")
		workers    = fs.Int("parallelism", 0, "worker count for the parallel execution engine (0 = all cores, 1 = serial); results are identical at any setting")
	)
	if err := parseFlags(fs, args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fail(err)
	}
	if err := run(*experiment, *scale, *subjects, *regions, *features, *trials, *seed, *workers); err != nil {
		fail(err)
	}
}

// fail is the single exit path for CLI errors: every flag, experiment
// and gallery subcommand error is routed here, printing the error plus
// the usage text on stderr and exiting non-zero.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "brainprint:", err)
	fmt.Fprintln(os.Stderr)
	fmt.Fprintln(os.Stderr, usageText)
	os.Exit(1)
}

// parseFlags parses with the flag package's own chatter silenced so
// parse errors flow through fail like every other error. -help prints
// the flag set's defaults and returns flag.ErrHelp, which main treats
// as a clean exit — parseFlags itself never terminates the process, so
// the subcommand funcs stay callable in-process (tests included).
func parseFlags(fs *flag.FlagSet, args []string) error {
	fs.SetOutput(io.Discard)
	err := fs.Parse(args)
	if errors.Is(err, flag.ErrHelp) {
		fs.SetOutput(os.Stderr)
		fs.Usage()
	}
	return err
}

func run(experiment, scale string, subjects, regions, features, trials int, seed int64, workers int) error {
	hcpParams, adhdParams, err := paramsForScale(scale, subjects, regions, seed)
	if err != nil {
		return err
	}
	brainprint.SetParallelism(workers)
	attack := brainprint.DefaultAttackConfig()
	attack.Features = features
	attack.Parallelism = workers

	var (
		hcp  *brainprint.HCPCohort
		adhd *brainprint.ADHDCohort
	)
	needHCP := func() (*brainprint.HCPCohort, error) {
		if hcp != nil {
			return hcp, nil
		}
		start := time.Now()
		c, err := brainprint.GenerateHCP(hcpParams)
		if err != nil {
			return nil, err
		}
		fmt.Printf("generated HCP-like cohort: %d subjects, %d regions (%.1fs)\n\n",
			hcpParams.Subjects, hcpParams.Regions, time.Since(start).Seconds())
		hcp = c
		return hcp, nil
	}
	needADHD := func() (*brainprint.ADHDCohort, error) {
		if adhd != nil {
			return adhd, nil
		}
		start := time.Now()
		c, err := brainprint.GenerateADHD(adhdParams)
		if err != nil {
			return nil, err
		}
		fmt.Printf("generated ADHD-like cohort: %d subjects, %d regions (%.1fs)\n\n",
			adhdParams.NumSubjects(), adhdParams.Regions, time.Since(start).Seconds())
		adhd = c
		return adhd, nil
	}

	experiments := []string{experiment}
	if experiment == "all" {
		experiments = []string{"fig1", "fig2", "fig5", "fig6", "table1", "fig7", "fig8", "fig9", "table2", "defense"}
	}
	for _, exp := range experiments {
		start := time.Now()
		var rendered string
		switch exp {
		case "fig1":
			c, err := needHCP()
			if err != nil {
				return err
			}
			res, err := brainprint.RunFigure1(c, attack)
			if err != nil {
				return err
			}
			rendered = res.Render()
		case "fig2":
			c, err := needHCP()
			if err != nil {
				return err
			}
			res, err := brainprint.RunFigure2(c, attack)
			if err != nil {
				return err
			}
			rendered = res.Render()
		case "fig5":
			c, err := needHCP()
			if err != nil {
				return err
			}
			res, err := brainprint.RunFigure5(c, attack)
			if err != nil {
				return err
			}
			rendered = res.Render()
		case "fig6":
			c, err := needHCP()
			if err != nil {
				return err
			}
			res, err := brainprint.RunFigure6(c, 0.5, brainprint.TSNEConfig{Perplexity: 20, Iterations: 400, Seed: seed}, seed)
			if err != nil {
				return err
			}
			rendered = res.Render()
		case "table1":
			c, err := needHCP()
			if err != nil {
				return err
			}
			cfg := brainprint.DefaultPerformanceConfig()
			cfg.Features = features
			cfg.Trials = trials * 4
			cfg.Seed = seed
			res, err := brainprint.RunTable1(c, cfg)
			if err != nil {
				return err
			}
			rendered = res.Render()
		case "fig7":
			c, err := needADHD()
			if err != nil {
				return err
			}
			res, err := brainprint.RunFigure7(c, attack)
			if err != nil {
				return err
			}
			rendered = res.Render()
		case "fig8":
			c, err := needADHD()
			if err != nil {
				return err
			}
			res, err := brainprint.RunFigure8(c, attack)
			if err != nil {
				return err
			}
			rendered = res.Render()
		case "fig9":
			c, err := needADHD()
			if err != nil {
				return err
			}
			res, err := brainprint.RunFigure9(c, attack, trials, 0.7, seed)
			if err != nil {
				return err
			}
			rendered = res.Render()
		case "table2":
			h, err := needHCP()
			if err != nil {
				return err
			}
			a, err := needADHD()
			if err != nil {
				return err
			}
			res, err := brainprint.RunTable2(h, a, []float64{0.1, 0.2, 0.3}, trials, attack, seed)
			if err != nil {
				return err
			}
			rendered = res.Render()
		case "defense":
			c, err := needHCP()
			if err != nil {
				return err
			}
			res, err := brainprint.RunDefense(c, []float64{0, 0.2, 0.4, 0.8}, 2*features, attack, seed)
			if err != nil {
				return err
			}
			rendered = res.Render()
		default:
			return fmt.Errorf("unknown experiment %q", exp)
		}
		fmt.Println(rendered)
		fmt.Printf("[%s completed in %.1fs]\n\n", exp, time.Since(start).Seconds())
	}
	return nil
}

// paramsForScale maps the scale presets to cohort parameters.
func paramsForScale(scale string, subjects, regions int, seed int64) (brainprint.HCPParams, brainprint.ADHDParams, error) {
	var hcp brainprint.HCPParams
	var adhd brainprint.ADHDParams
	switch scale {
	case "small":
		hcp = brainprint.DefaultHCPParams()
		hcp.Subjects = 20
		hcp.Regions = 60
		adhd = brainprint.DefaultADHDParams()
	case "medium":
		hcp = brainprint.DefaultHCPParams()
		hcp.Subjects = 50
		hcp.Regions = 120
		adhd = brainprint.DefaultADHDParams()
		adhd.Controls = 60
		adhd.Subtype1 = 24
		adhd.Subtype2 = 4
		adhd.Subtype3 = 18
		adhd.Regions = 116
	case "paper":
		hcp = brainprint.PaperScaleHCPParams()
		adhd = brainprint.PaperScaleADHDParams()
	default:
		return hcp, adhd, fmt.Errorf("unknown scale %q (want small, medium, or paper)", scale)
	}
	if subjects > 0 {
		hcp.Subjects = subjects
	}
	if regions > 0 {
		hcp.Regions = regions
	}
	hcp.Seed = seed
	adhd.Seed = seed + 1
	return hcp, adhd, nil
}
