// Command brainprint regenerates the paper's figures and tables on
// synthetic cohorts, manages persistent fingerprint galleries, and
// serves a loaded gallery as an HTTP identification service. Each
// experiment prints a textual rendering of the corresponding artifact
// (ASCII heatmaps for matrix figures, aligned tables for the result
// tables); the gallery subcommands enroll synthetic cohorts to disk and
// attack them incrementally with ranked top-k queries; serve exposes
// the same query engine over HTTP/JSON.
//
// Usage:
//
//	brainprint [-experiment <name>|all] [flags]
//	brainprint gallery enroll|shard|live|compact|defend|query|info|probe [flags]
//	brainprint defense sweep [flags]
//	brainprint serve -db gallery.bpg|store.bpm|live-dir [-writable] [flags]
//	brainprint router -primary url [-replicas url,url...] [flags]
//
// The experiment list (fig1 … defense) is generated from the library's
// experiment registry — run 'brainprint -help' for the current set.
// The -scale flag selects cohort dimensions: "small" is fast and good
// for smoke runs, "medium" is a compromise, and "paper" matches the
// paper's 100 subjects × 360 regions (slow; minutes). Experiments run
// under a signal-aware context: Ctrl-C aborts the sweep promptly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"brainprint"
)

// usageText is the short usage block fail appends to every CLI error.
// The experiment list comes from the registry, so usage can never drift
// from what run dispatches.
var usageText = fmt.Sprintf(`usage:
  brainprint [-experiment %s|all] [flags]
  brainprint gallery enroll|shard|live|compact|defend|query|info|probe [flags]
  brainprint defense sweep [flags]
  brainprint serve -db gallery.bpg|store.bpm|live-dir [-writable] [-replica-of url] [flags]
  brainprint router -primary url [-replicas url,url...] [flags]
  brainprint loadgen -targets url[,url...] [flags]

run 'brainprint -help', 'brainprint gallery <subcommand> -help',
'brainprint defense sweep -help', 'brainprint serve -help',
'brainprint router -help' or 'brainprint loadgen -help' for the flags
of each form`,
	strings.Join(brainprint.ExperimentNames(), "|"))

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "gallery" {
		if err := runGallery(args[1:], os.Stdout); err != nil && !errors.Is(err, flag.ErrHelp) {
			fail(err)
		}
		return
	}
	if len(args) > 0 && args[0] == "defense" {
		if err := runDefense(args[1:], os.Stdout); err != nil && !errors.Is(err, flag.ErrHelp) {
			fail(err)
		}
		return
	}
	if len(args) > 0 && args[0] == "serve" {
		if err := runServe(args[1:], os.Stdout); err != nil && !errors.Is(err, flag.ErrHelp) {
			fail(err)
		}
		return
	}
	if len(args) > 0 && args[0] == "router" {
		if err := runRouter(args[1:], os.Stdout); err != nil && !errors.Is(err, flag.ErrHelp) {
			fail(err)
		}
		return
	}
	if len(args) > 0 && args[0] == "loadgen" {
		if err := runLoadgen(args[1:], os.Stdout); err != nil && !errors.Is(err, flag.ErrHelp) {
			fail(err)
		}
		return
	}
	fs := flag.NewFlagSet("brainprint", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all",
			fmt.Sprintf("which experiment to run: %s, or all", strings.Join(brainprint.ExperimentNames(), ", ")))
		scale    = fs.String("scale", "small", "cohort scale: small, medium, or paper")
		subjects = fs.Int("subjects", 0, "override subject count (0 = scale default)")
		regions  = fs.Int("regions", 0, "override region count (0 = scale default)")
		features = fs.Int("features", 100, "size of the principal features subspace")
		trials   = fs.Int("trials", 5, "repeated trials for resampled experiments")
		seed     = fs.Int64("seed", 1, "master random seed")
		workers  = fs.Int("parallelism", 0, "worker count for the parallel execution engine (0 = all cores, 1 = serial); results are identical at any setting")
	)
	if err := parseFlags(fs, args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fail(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *experiment, *scale, *subjects, *regions, *features, *trials, *seed, *workers); err != nil {
		fail(err)
	}
}

// fail is the single exit path for CLI errors: every flag, experiment
// and gallery subcommand error is routed here, printing the error plus
// the usage text on stderr and exiting non-zero.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "brainprint:", err)
	fmt.Fprintln(os.Stderr)
	fmt.Fprintln(os.Stderr, usageText)
	os.Exit(1)
}

// parseFlags parses with the flag package's own chatter silenced so
// parse errors flow through fail like every other error. -help prints
// the flag set's defaults and returns flag.ErrHelp, which main treats
// as a clean exit — parseFlags itself never terminates the process, so
// the subcommand funcs stay callable in-process (tests included).
func parseFlags(fs *flag.FlagSet, args []string) error {
	fs.SetOutput(io.Discard)
	err := fs.Parse(args)
	if errors.Is(err, flag.ErrHelp) {
		fs.SetOutput(os.Stderr)
		fs.Usage()
	}
	return err
}

// run executes the selected experiments through the session API: one
// Attacker owns the attack configuration, cohorts generate lazily based
// on what each registry entry declares it needs, and every experiment
// runs under ctx so cancellation aborts mid-sweep.
func run(ctx context.Context, experiment, scale string, subjects, regions, features, trials int, seed int64, workers int) error {
	hcpParams, adhdParams, err := paramsForScale(scale, subjects, regions, seed)
	if err != nil {
		return err
	}
	brainprint.SetParallelism(workers)
	attack := brainprint.DefaultAttackConfig()
	attack.Features = features
	attack.Parallelism = workers
	atk, err := brainprint.NewAttacker(nil, brainprint.WithConfig(attack))
	if err != nil {
		return err
	}

	var (
		hcp  *brainprint.HCPCohort
		adhd *brainprint.ADHDCohort
	)
	needHCP := func() (*brainprint.HCPCohort, error) {
		if hcp != nil {
			return hcp, nil
		}
		start := time.Now()
		c, err := brainprint.GenerateHCP(hcpParams)
		if err != nil {
			return nil, err
		}
		fmt.Printf("generated HCP-like cohort: %d subjects, %d regions (%.1fs)\n\n",
			hcpParams.Subjects, hcpParams.Regions, time.Since(start).Seconds())
		hcp = c
		return hcp, nil
	}
	needADHD := func() (*brainprint.ADHDCohort, error) {
		if adhd != nil {
			return adhd, nil
		}
		start := time.Now()
		c, err := brainprint.GenerateADHD(adhdParams)
		if err != nil {
			return nil, err
		}
		fmt.Printf("generated ADHD-like cohort: %d subjects, %d regions (%.1fs)\n\n",
			adhdParams.NumSubjects(), adhdParams.Regions, time.Since(start).Seconds())
		adhd = c
		return adhd, nil
	}

	experiments := []string{experiment}
	if experiment == "all" {
		experiments = brainprint.ExperimentNames()
	}
	for _, exp := range experiments {
		spec, ok := brainprint.LookupExperiment(exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (want %s, or all)",
				exp, strings.Join(brainprint.ExperimentNames(), ", "))
		}
		in := brainprint.ExperimentInput{Seed: seed, Trials: trials}
		if spec.NeedsHCP {
			if in.HCP, err = needHCP(); err != nil {
				return err
			}
		}
		if spec.NeedsADHD {
			if in.ADHD, err = needADHD(); err != nil {
				return err
			}
		}
		start := time.Now()
		res, err := atk.RunExperiment(ctx, exp, in)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %.1fs]\n\n", exp, time.Since(start).Seconds())
	}
	return nil
}

// paramsForScale maps the scale presets to cohort parameters.
func paramsForScale(scale string, subjects, regions int, seed int64) (brainprint.HCPParams, brainprint.ADHDParams, error) {
	var hcp brainprint.HCPParams
	var adhd brainprint.ADHDParams
	switch scale {
	case "small":
		hcp = brainprint.DefaultHCPParams()
		hcp.Subjects = 20
		hcp.Regions = 60
		adhd = brainprint.DefaultADHDParams()
	case "medium":
		hcp = brainprint.DefaultHCPParams()
		hcp.Subjects = 50
		hcp.Regions = 120
		adhd = brainprint.DefaultADHDParams()
		adhd.Controls = 60
		adhd.Subtype1 = 24
		adhd.Subtype2 = 4
		adhd.Subtype3 = 18
		adhd.Regions = 116
	case "paper":
		hcp = brainprint.PaperScaleHCPParams()
		adhd = brainprint.PaperScaleADHDParams()
	default:
		return hcp, adhd, fmt.Errorf("unknown scale %q (want small, medium, or paper)", scale)
	}
	if subjects > 0 {
		hcp.Subjects = subjects
	}
	if regions > 0 {
		hcp.Regions = regions
	}
	hcp.Seed = seed
	adhd.Seed = seed + 1
	return hcp, adhd, nil
}
