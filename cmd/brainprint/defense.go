// The defense subcommands: measure what a gallery anonymization
// pipeline buys (attack accuracy driven down) and costs (task accuracy
// and aggregate-query fidelity given up) before deploying it with
// `gallery defend` or a live gallery's -defense option.
//
//	brainprint defense sweep
//	brainprint defense sweep -subjects 2000 -ksame 2,5,10,20 -eps 20,8,2
//	brainprint defense sweep -json > grid.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"brainprint"
)

// runDefense dispatches the defense subcommands.
func runDefense(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("defense: missing subcommand (want sweep)")
	}
	switch args[0] {
	case "sweep":
		return defenseSweep(args[1:], out)
	default:
		return fmt.Errorf("defense: unknown subcommand %q (want sweep)", args[0])
	}
}

// defenseSweep runs the gallery anonymization attack-vs-utility sweep
// on a seeded synthetic cohort: the undefended baseline plus k-same
// microaggregation at each -ksame strength and gaussian DP noise at
// each -eps, each cell reporting attack top-1/top-k accuracy, the
// uniquely-vulnerable population fraction, task-prediction accuracy,
// and aggregate-query error.
func defenseSweep(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("brainprint defense sweep", flag.ContinueOnError)
	subjects := fs.Int("subjects", 0, "cohort size (0 = 1000)")
	features := fs.Int("features", 0, "fingerprint dimensionality (0 = 96)")
	clusters := fs.Int("clusters", 0, "latent task-cluster count (0 = 8)")
	topk := fs.Int("topk", 0, "ranked-list depth of the top-k column (0 = 5)")
	ksame := fs.String("ksame", "", "comma-separated k-same strengths (empty = 2,5,10)")
	eps := fs.String("eps", "", "comma-separated gaussian-noise ε values, strongest last (empty = 20,8,2)")
	seed := fs.Int64("seed", 1, "cohort and noise seed (the grid is bit-identical given the seed)")
	par := fs.Int("parallelism", 0, "worker count (0 = all cores, 1 = serial); results are identical at any setting")
	asJSON := fs.Bool("json", false, "emit the grid as JSON instead of the table")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	cfg := brainprint.GalleryDefenseConfig{
		Subjects: *subjects, Features: *features, Clusters: *clusters,
		TopK: *topk, Parallelism: *par, Seed: *seed,
	}
	var err error
	if cfg.KSameKs, err = parseIntList(*ksame); err != nil {
		return fmt.Errorf("defense sweep: -ksame: %w", err)
	}
	if cfg.Epsilons, err = parseFloatList(*eps); err != nil {
		return fmt.Errorf("defense sweep: -eps: %w", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := brainprint.RunGalleryDefenseSweep(ctx, cfg)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprintln(out, res.Render())
	return nil
}

// parseIntList parses a comma-separated integer list ("" = nil).
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	vals := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// parseFloatList parses a comma-separated float list ("" = nil).
func parseFloatList(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	vals := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", p)
		}
		vals = append(vals, v)
	}
	return vals, nil
}
