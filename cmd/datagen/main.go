// Command datagen generates synthetic cohorts and serializes them to
// disk: a gob archive for round-tripping through the library, plus
// optional CSV exports of individual scans and the task-performance
// table.
//
// Usage:
//
//	datagen -dataset hcp -out cohort.gob [-csv dir] [-subjects N] [-regions N] [-seed S]
//	datagen -dataset adhd -out cohort.gob [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"brainprint/internal/synth"
)

func main() {
	var (
		dataset  = flag.String("dataset", "hcp", "which cohort to generate: hcp or adhd")
		out      = flag.String("out", "", "output gob file (required)")
		csvDir   = flag.String("csv", "", "optional directory for CSV exports (HCP only)")
		subjects = flag.Int("subjects", 0, "override subject count")
		regions  = flag.Int("regions", 0, "override region count")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dataset, *out, *csvDir, *subjects, *regions, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dataset, out, csvDir string, subjects, regions int, seed int64) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()

	switch dataset {
	case "hcp":
		p := synth.DefaultHCPParams()
		if subjects > 0 {
			p.Subjects = subjects
		}
		if regions > 0 {
			p.Regions = regions
		}
		p.Seed = seed
		cohort, err := synth.GenerateHCP(p)
		if err != nil {
			return err
		}
		if err := synth.SaveHCP(f, cohort); err != nil {
			return err
		}
		fmt.Printf("wrote %d scans (%d subjects × %d conditions × 2 encodings) to %s\n",
			len(cohort.Scans), p.Subjects, len(synth.AllTasks), out)
		if csvDir != "" {
			if err := exportCSV(csvDir, cohort); err != nil {
				return err
			}
		}
	case "adhd":
		p := synth.DefaultADHDParams()
		if regions > 0 {
			p.Regions = regions
		}
		p.Seed = seed
		cohort, err := synth.GenerateADHD(p)
		if err != nil {
			return err
		}
		if err := synth.SaveADHD(f, cohort); err != nil {
			return err
		}
		fmt.Printf("wrote %d scans (%d subjects × 2 sessions) to %s\n",
			len(cohort.Scans), p.NumSubjects(), out)
	default:
		return fmt.Errorf("unknown dataset %q (want hcp or adhd)", dataset)
	}
	return f.Sync()
}

// exportCSV writes one series CSV per resting scan plus the performance
// table.
func exportCSV(dir string, cohort *synth.HCPCohort) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for s := 0; s < cohort.Params.Subjects; s++ {
		scan, err := cohort.Scan(s, synth.Rest1, synth.LR)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("subject%03d_rest1_lr.csv", s))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := synth.WriteSeriesCSV(f, scan); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	perf, err := os.Create(filepath.Join(dir, "performance.csv"))
	if err != nil {
		return err
	}
	defer perf.Close()
	if err := synth.WritePerformanceCSV(perf, cohort); err != nil {
		return err
	}
	fmt.Printf("wrote CSV exports to %s\n", dir)
	return nil
}
