package main

import (
	"os"
	"path/filepath"
	"testing"

	"brainprint/internal/synth"
)

func TestRunHCPRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "hcp.gob")
	csvDir := filepath.Join(dir, "csv")
	if err := run("hcp", out, csvDir, 3, 16, 2); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	cohort, err := synth.LoadHCP(f)
	if err != nil {
		t.Fatalf("LoadHCP: %v", err)
	}
	if cohort.Params.Subjects != 3 || cohort.Params.Regions != 16 {
		t.Errorf("params lost: %+v", cohort.Params)
	}
	if _, err := cohort.Scan(2, synth.Language, synth.RL); err != nil {
		t.Errorf("scan index broken after load: %v", err)
	}
	// CSV exports present.
	if _, err := os.Stat(filepath.Join(csvDir, "subject000_rest1_lr.csv")); err != nil {
		t.Errorf("missing series CSV: %v", err)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "performance.csv")); err != nil {
		t.Errorf("missing performance CSV: %v", err)
	}
}

func TestRunADHDRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "adhd.gob")
	if err := run("adhd", out, "", 0, 20, 3); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	cohort, err := synth.LoadADHD(f)
	if err != nil {
		t.Fatalf("LoadADHD: %v", err)
	}
	if cohort.Params.Regions != 20 {
		t.Errorf("regions = %d want 20", cohort.Params.Regions)
	}
	if len(cohort.Scans) != 2*cohort.Params.NumSubjects() {
		t.Error("scan count wrong after load")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	dir := t.TempDir()
	if err := run("meg", filepath.Join(dir, "x.gob"), "", 0, 0, 1); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestRunBadOutputPath(t *testing.T) {
	if err := run("hcp", "/nonexistent-dir/x.gob", "", 2, 8, 1); err == nil {
		t.Error("expected error for unwritable output")
	}
}
