package brainprint_test

// Throughput of the Attacker session's batch identification — the
// serving hot path of `brainprint serve`. A synthetic gallery avoids
// cohort-generation cost so the benchmark isolates the query engine:
// enroll once, identify a whole release per iteration, serial vs
// parallel.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"brainprint"
)

// benchAttacker enrolls a synthetic 1000-subject gallery (100
// gallery-space features, matching the paper's reduced subspace) and
// returns the session plus a 200-probe batch. Fingerprints are random:
// the benchmark isolates the serving sweep, not feature selection.
func benchAttacker(b *testing.B, parallelism int) (*brainprint.Attacker, *brainprint.Matrix) {
	b.Helper()
	const features, subjects, probes = 100, 1000, 200
	rng := rand.New(rand.NewSource(42))
	known := brainprint.NewMatrix(features, subjects)
	raw := known.RawData()
	for i := range raw {
		raw[i] = rng.NormFloat64()
	}
	g := brainprint.NewGallery(features)
	ids := make([]string, subjects)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%04d", i)
	}
	if err := g.EnrollMatrix(ids, known); err != nil {
		b.Fatal(err)
	}
	probe := brainprint.NewMatrix(features, probes)
	for j := 0; j < probes; j++ {
		col := known.Col(j)
		for i := range col {
			col[i] += 0.3 * rng.NormFloat64()
		}
		probe.SetCol(j, col)
	}
	atk, err := brainprint.NewAttacker(g,
		brainprint.WithTopK(5),
		brainprint.WithParallelism(parallelism))
	if err != nil {
		b.Fatal(err)
	}
	return atk, probe
}

func BenchmarkAttackerIdentifyBatch(b *testing.B) {
	for _, mode := range benchModes {
		b.Run(mode.name, func(b *testing.B) {
			atk, probes := benchAttacker(b, mode.parallelism)
			ctx := context.Background()
			b.ResetTimer()
			var top1 int
			for i := 0; i < b.N; i++ {
				res, err := atk.IdentifyBatch(ctx, probes)
				if err != nil {
					b.Fatal(err)
				}
				top1 = 0
				for j, ranked := range res.Ranked {
					if ranked[0].ID == fmt.Sprintf("s%04d", j) {
						top1++
					}
				}
			}
			_, n := probes.Dims()
			b.ReportMetric(100*float64(top1)/float64(n), "top1%")
		})
	}
}
