package brainprint

import (
	"math/rand"

	"brainprint/internal/atlas"
	"brainprint/internal/fmri"
	"brainprint/internal/preprocess"
	"brainprint/internal/report"
	"brainprint/internal/synth"
)

// This file exposes the voxel-level half of the library: the digital
// head phantom, the scanner simulator with its artifact models, the
// Figure-4 preprocessing pipeline, and brain atlases. Together with the
// region-level cohort generators these cover the full path
// raw 4-D image → preprocessed image → region series → connectome.

// Grid describes the spatial sampling of a volume.
type Grid = fmri.Grid

// Volume is a single 3-D image.
type Volume = fmri.Volume

// Series is a 4-D fMRI acquisition.
type Series = fmri.Series

// Phantom is the digital head phantom used by the scanner simulator.
type Phantom = fmri.Phantom

// PhantomParams controls phantom construction.
type PhantomParams = fmri.PhantomParams

// AcquisitionParams configures the scanner simulation.
type AcquisitionParams = fmri.AcquisitionParams

// MotionTrace records simulated (or estimated) head translations.
type MotionTrace = fmri.MotionTrace

// RegionActivity adapts region-level time series to voxel activity.
type RegionActivity = fmri.RegionActivity

// NewGrid returns a grid after validating the dimensions.
func NewGrid(nx, ny, nz int, voxelMM float64) (Grid, error) { return fmri.NewGrid(nx, ny, nz, voxelMM) }

// MNIGrid returns the standard registration target grid.
func MNIGrid(n int) Grid { return fmri.MNIGrid(n) }

// DefaultPhantomParams returns raw-EPI-like phantom contrast settings.
func DefaultPhantomParams() PhantomParams { return fmri.DefaultPhantomParams() }

// NewPhantom builds a head phantom.
func NewPhantom(g Grid, p PhantomParams, rng *rand.Rand) (*Phantom, error) {
	return fmri.NewPhantom(g, p, rng)
}

// DefaultAcquisitionParams returns HCP-like scan parameters with mild
// artifact levels.
func DefaultAcquisitionParams() AcquisitionParams { return fmri.DefaultAcquisitionParams() }

// Acquire simulates a full scan of the phantom, returning the raw series
// and the ground-truth motion trace.
func Acquire(ph *Phantom, activity fmri.ActivitySource, p AcquisitionParams, rng *rand.Rand) (*Series, *MotionTrace, error) {
	return fmri.Acquire(ph, activity, p, rng)
}

// Pipeline is the composable preprocessing pipeline of Figure 4.
type Pipeline = preprocess.Pipeline

// PipelineContext carries the evolving brain mask and provenance log.
type PipelineContext = preprocess.Context

// DefaultPipeline returns the standard pipeline: motion correction,
// skull stripping, bias correction, registration, temporal bandpass,
// global signal regression and z-scoring.
func DefaultPipeline(target Grid) *Pipeline { return preprocess.Default(target) }

// Atlas is a parcellation of the brain into regions.
type Atlas = atlas.Atlas

// GlasserAtlas returns the 360-region HCP-style atlas (64620 features).
func GlasserAtlas() *Atlas { return atlas.GlasserLike() }

// AALAtlas returns the 116-region ADHD-200-style atlas (6670 features).
func AALAtlas() *Atlas { return atlas.AALLike() }

// SymmetricAtlas builds a hemisphere-symmetric atlas with n regions
// (n must be even).
func SymmetricAtlas(name string, n int) *Atlas { return atlas.SymmetricAtlas(name, n) }

// ReduceToRegions collapses a preprocessed voxel series into a
// regions×time matrix by averaging within atlas regions.
func ReduceToRegions(s *Series, brainVoxels []int, labels []int, numRegions int) (*Matrix, error) {
	return atlas.ReduceSeries(s, brainVoxels, labels, numRegions)
}

// ---- Rendering helpers ----

// RenderHeatmap renders a matrix as an ASCII intensity map.
func RenderHeatmap(m *Matrix, maxCells int) string { return report.Heatmap(m, nil, nil, maxCells) }

// RenderScatter renders labelled 2-D points as an ASCII scatter plot.
func RenderScatter(points *Matrix, labels []int, width, height int) string {
	return report.Scatter(points, labels, width, height)
}

// RenderTable renders rows under headers with aligned columns.
func RenderTable(headers []string, rows [][]string) string { return report.Table(headers, rows) }

// ---- Noise injection (§3.3.5) ----

// AddSeriesNoise implements the paper's multi-site simulation: Gaussian
// noise with mean equal to the signal mean and variance a fraction of
// the signal variance, per region time series.
func AddSeriesNoise(series *Matrix, fraction float64, rng *rand.Rand) (*Matrix, error) {
	return synth.AddSeriesNoise(series, fraction, rng)
}
