module brainprint

go 1.24
