package atlas

import (
	"math"
	"math/rand"
	"testing"

	"brainprint/internal/fmri"
)

func TestGlasserLikeShape(t *testing.T) {
	a := GlasserLike()
	if a.NumRegions() != 360 {
		t.Fatalf("regions = %d want 360", a.NumRegions())
	}
	if a.NumEdges() != 64620 {
		t.Fatalf("edges = %d want 64620 (the paper's feature count)", a.NumEdges())
	}
	// Hemisphere symmetry: equal left/right counts, mirrored centres.
	var left, right int
	for _, r := range a.Regions {
		switch r.Hemisphere {
		case Left:
			left++
		case Right:
			right++
		}
	}
	if left != 180 || right != 180 {
		t.Errorf("hemisphere counts L=%d R=%d want 180/180", left, right)
	}
	for i := 0; i < len(a.Regions); i += 2 {
		r, l := a.Regions[i], a.Regions[i+1]
		if r.Center[0] != -l.Center[0] || r.Center[1] != l.Center[1] || r.Center[2] != l.Center[2] {
			t.Fatalf("regions %d/%d not mirrored", i, i+1)
		}
	}
}

func TestAALLikeShape(t *testing.T) {
	a := AALLike()
	if a.NumRegions() != 116 {
		t.Fatalf("regions = %d want 116", a.NumRegions())
	}
	if a.NumEdges() != 6670 {
		t.Fatalf("edges = %d want 6670 (matches §3.3.4)", a.NumEdges())
	}
}

func TestSymmetricAtlasDeterministic(t *testing.T) {
	a := SymmetricAtlas("x", 40)
	b := SymmetricAtlas("x", 40)
	for i := range a.Regions {
		if a.Regions[i].Center != b.Regions[i].Center {
			t.Fatal("SymmetricAtlas not deterministic")
		}
	}
}

func TestSymmetricAtlasPanicsOnOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for odd region count")
		}
	}()
	SymmetricAtlas("bad", 7)
}

func TestCentersInsideUnitBall(t *testing.T) {
	for _, a := range []*Atlas{GlasserLike(), AALLike()} {
		for _, r := range a.Regions {
			d := math.Sqrt(r.Center[0]*r.Center[0] + r.Center[1]*r.Center[1] + r.Center[2]*r.Center[2])
			if d > 1 {
				t.Fatalf("%s region %d centre outside unit ball (%.3f)", a.Name, r.ID, d)
			}
		}
	}
}

func TestLabelPointNearest(t *testing.T) {
	a := &Atlas{Name: "two", Regions: []Region{
		{ID: 0, Center: [3]float64{-0.5, 0, 0}},
		{ID: 1, Center: [3]float64{0.5, 0, 0}},
	}}
	if got := a.LabelPoint(-0.4, 0, 0); got != 0 {
		t.Errorf("LabelPoint left = %d want 0", got)
	}
	if got := a.LabelPoint(0.6, 0.1, 0); got != 1 {
		t.Errorf("LabelPoint right = %d want 1", got)
	}
}

func TestRandomAtlas(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, err := RandomAtlas("rand", 50, rng)
	if err != nil {
		t.Fatalf("RandomAtlas: %v", err)
	}
	if a.NumRegions() != 50 {
		t.Errorf("regions = %d", a.NumRegions())
	}
	if _, err := RandomAtlas("bad", 0, rng); err == nil {
		t.Error("expected error for 0 regions")
	}
}

func TestLabelVoxelsCoversAllRegionsOnDecentGrid(t *testing.T) {
	g, _ := fmri.NewGrid(20, 20, 20, 2)
	rng := rand.New(rand.NewSource(6))
	ph, err := fmri.NewPhantom(g, fmri.DefaultPhantomParams(), rng)
	if err != nil {
		t.Fatalf("NewPhantom: %v", err)
	}
	a := SymmetricAtlas("t", 20)
	labels := a.LabelVoxels(ph)
	if len(labels) != ph.NumBrainVoxels() {
		t.Fatalf("labels = %d, brain voxels = %d", len(labels), ph.NumBrainVoxels())
	}
	sizes := RegionSizes(labels, a.NumRegions())
	empty := 0
	for _, s := range sizes {
		if s == 0 {
			empty++
		}
	}
	// With 20 regions and ~2900 brain voxels every region should be hit.
	if empty > 0 {
		t.Errorf("%d empty regions on a 20-region atlas", empty)
	}
}

func TestReduceSeriesAverages(t *testing.T) {
	g, _ := fmri.NewGrid(4, 1, 1, 2)
	s, _ := fmri.NewSeries(g, 1, 3)
	// Voxels 0,1 belong to region 0; voxels 2,3 to region 1.
	brainVoxels := []int{0, 1, 2, 3}
	labels := []int{0, 0, 1, 1}
	s.SetVoxelSeries(0, []float64{1, 2, 3})
	s.SetVoxelSeries(1, []float64{3, 4, 5})
	s.SetVoxelSeries(2, []float64{10, 10, 10})
	s.SetVoxelSeries(3, []float64{20, 20, 20})
	m, err := ReduceSeries(s, brainVoxels, labels, 2)
	if err != nil {
		t.Fatalf("ReduceSeries: %v", err)
	}
	if m.At(0, 0) != 2 || m.At(0, 2) != 4 {
		t.Errorf("region 0 series wrong: %v", m.Row(0))
	}
	if m.At(1, 0) != 15 {
		t.Errorf("region 1 series wrong: %v", m.Row(1))
	}
}

func TestReduceSeriesErrors(t *testing.T) {
	g, _ := fmri.NewGrid(2, 1, 1, 2)
	s, _ := fmri.NewSeries(g, 1, 2)
	if _, err := ReduceSeries(s, []int{0, 1}, []int{0}, 1); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := ReduceSeries(s, []int{0}, []int{5}, 2); err == nil {
		t.Error("expected out-of-range label error")
	}
}

func TestReduceSeriesEmptyRegionIsZero(t *testing.T) {
	g, _ := fmri.NewGrid(2, 1, 1, 2)
	s, _ := fmri.NewSeries(g, 1, 2)
	s.SetVoxelSeries(0, []float64{5, 5})
	m, err := ReduceSeries(s, []int{0}, []int{0}, 3)
	if err != nil {
		t.Fatalf("ReduceSeries: %v", err)
	}
	if m.At(1, 0) != 0 || m.At(2, 1) != 0 {
		t.Error("empty regions should produce zero rows")
	}
}

func TestHemisphereString(t *testing.T) {
	if Left.String() != "L" || Right.String() != "R" || Midline.String() != "M" {
		t.Error("Hemisphere String wrong")
	}
}

func TestVoronoiPartitionIsTotal(t *testing.T) {
	// Every point in the ball gets exactly one label in range.
	a := AALLike()
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 200; k++ {
		p := randomBallPoint(rng)
		l := a.LabelPoint(p[0], p[1], p[2])
		if l < 0 || l >= a.NumRegions() {
			t.Fatalf("label %d out of range", l)
		}
	}
}
