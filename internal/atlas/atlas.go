// Package atlas models brain parcellations: annotated standard-brain
// label maps that group voxels into regions ("parcels"). The attack
// never works on raw voxels; every connectome is computed on
// region-averaged time series, so the atlas determines the feature
// dimensionality (n regions ⇒ n(n−1)/2 connectome features).
//
// Two synthetic atlases mirror the ones the paper uses: a 360-region
// hemisphere-symmetric atlas standing in for the Glasser multi-modal
// parcellation (HCP experiments) and a 116-region atlas standing in for
// AAL (ADHD-200 experiments, 116·115/2 = 6670 features as in §3.3.4).
// A random region-growing generator covers the "automatically generated
// atlas" case discussed in §3.2.2.
package atlas

import (
	"fmt"
	"math"
	"math/rand"

	"brainprint/internal/fmri"
	"brainprint/internal/linalg"
)

// Hemisphere identifies the brain hemisphere a region belongs to.
type Hemisphere int

// Hemisphere values.
const (
	Left Hemisphere = iota
	Right
	Midline
)

// String implements fmt.Stringer.
func (h Hemisphere) String() string {
	switch h {
	case Left:
		return "L"
	case Right:
		return "R"
	default:
		return "M"
	}
}

// Region is one parcel of the atlas. Center is in normalized brain
// coordinates (the unit ball used by fmri.Phantom.NormalizedCoords).
type Region struct {
	ID         int
	Name       string
	Hemisphere Hemisphere
	Center     [3]float64
}

// Atlas is a parcellation of the normalized brain into disjoint regions.
// Voxels are assigned to the nearest region centre (a Voronoi
// parcellation), which guarantees the non-overlap property §3.2.2 calls
// desirable.
type Atlas struct {
	Name    string
	Regions []Region
}

// NumRegions returns the region count.
func (a *Atlas) NumRegions() int { return len(a.Regions) }

// NumEdges returns the number of distinct region pairs, i.e. the length
// of a vectorized connectome built on this atlas.
func (a *Atlas) NumEdges() int {
	n := len(a.Regions)
	return n * (n - 1) / 2
}

// LabelPoint returns the region id whose centre is nearest to the
// normalized coordinate (x, y, z).
func (a *Atlas) LabelPoint(x, y, z float64) int {
	best, bestD := 0, math.Inf(1)
	for i, r := range a.Regions {
		dx := x - r.Center[0]
		dy := y - r.Center[1]
		dz := z - r.Center[2]
		d := dx*dx + dy*dy + dz*dz
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// LabelVoxels assigns every brain voxel of the phantom to a region,
// returning one label per entry of ph.BrainVoxel.
func (a *Atlas) LabelVoxels(ph *fmri.Phantom) []int {
	labels := make([]int, ph.NumBrainVoxels())
	for ord, idx := range ph.BrainVoxel {
		x, y, z := ph.NormalizedCoords(idx)
		labels[ord] = a.LabelPoint(x, y, z)
	}
	return labels
}

// GlasserLike returns a 360-region hemisphere-symmetric atlas standing
// in for the Glasser et al. multi-modal parcellation used in the HCP
// experiments. Construction is deterministic.
func GlasserLike() *Atlas { return SymmetricAtlas("glasser360", 360) }

// AALLike returns a 116-region atlas standing in for the AAL
// parcellation used in the ADHD-200 experiments (6670 edge features).
func AALLike() *Atlas { return SymmetricAtlas("aal116", 116) }

// SymmetricAtlas builds an atlas with regions symmetric across the left
// and right hemispheres, as both real atlases are. n must be even and
// positive; it panics otherwise (atlas construction is programmer
// configuration, not runtime input).
func SymmetricAtlas(name string, n int) *Atlas {
	if n <= 0 || n%2 != 0 {
		panic(fmt.Sprintf("atlas: SymmetricAtlas needs a positive even region count, got %d", n))
	}
	half := n / 2
	centers := haltonBallPoints(half, true)
	regions := make([]Region, 0, n)
	for i, c := range centers {
		right := c
		left := [3]float64{-c[0], c[1], c[2]}
		regions = append(regions,
			Region{ID: 2 * i, Name: fmt.Sprintf("R_%s_%d", name, i+1), Hemisphere: Right, Center: right},
			Region{ID: 2*i + 1, Name: fmt.Sprintf("L_%s_%d", name, i+1), Hemisphere: Left, Center: left},
		)
	}
	return &Atlas{Name: name, Regions: regions}
}

// RandomAtlas builds an atlas of n regions by sampling region centres
// uniformly in the unit ball, modelling the automated atlas generation
// scheme of §3.2.2 ("sample voxels from a uniform distribution, then
// grow regions"). The Voronoi assignment performs the growth implicitly.
func RandomAtlas(name string, n int, rng *rand.Rand) (*Atlas, error) {
	if n <= 0 {
		return nil, fmt.Errorf("atlas: nonpositive region count %d", n)
	}
	regions := make([]Region, n)
	for i := 0; i < n; i++ {
		c := randomBallPoint(rng)
		hemi := Right
		if c[0] < 0 {
			hemi = Left
		}
		regions[i] = Region{ID: i, Name: fmt.Sprintf("%s_%d", name, i+1), Hemisphere: hemi, Center: c}
	}
	return &Atlas{Name: name, Regions: regions}, nil
}

// ReduceSeries collapses a voxel-level series into a regions×time matrix
// by averaging the voxel time series within each region, exactly as
// §3.2.2 prescribes. brainVoxels holds the flat voxel indices of the
// brain (fmri.Phantom.BrainVoxel) and labels the region of each, in the
// same order. Regions with no voxels yield zero rows.
func ReduceSeries(s *fmri.Series, brainVoxels []int, labels []int, numRegions int) (*linalg.Matrix, error) {
	if len(brainVoxels) != len(labels) {
		return nil, fmt.Errorf("atlas: %d brain voxels but %d labels", len(brainVoxels), len(labels))
	}
	frames := s.NumFrames()
	out := linalg.NewMatrix(numRegions, frames)
	counts := make([]int, numRegions)
	for ord, idx := range brainVoxels {
		r := labels[ord]
		if r < 0 || r >= numRegions {
			return nil, fmt.Errorf("atlas: label %d out of range %d", r, numRegions)
		}
		counts[r]++
		row := out.RowView(r)
		for t, f := range s.Frames {
			row[t] += f.Data[idx]
		}
	}
	for r, c := range counts {
		if c == 0 {
			continue
		}
		row := out.RowView(r)
		inv := 1 / float64(c)
		for t := range row {
			row[t] *= inv
		}
	}
	return out, nil
}

// RegionSizes returns how many of the given labels fall in each region.
func RegionSizes(labels []int, numRegions int) []int {
	counts := make([]int, numRegions)
	for _, l := range labels {
		if l >= 0 && l < numRegions {
			counts[l]++
		}
	}
	return counts
}

// haltonBallPoints generates n quasi-random points inside the unit ball
// using the Halton low-discrepancy sequence (bases 2, 3, 5), optionally
// restricted to the x>0 half-ball for hemisphere mirroring. The sequence
// is deterministic, so atlases are reproducible across runs.
func haltonBallPoints(n int, positiveX bool) [][3]float64 {
	pts := make([][3]float64, 0, n)
	for i := 1; len(pts) < n; i++ {
		x := 2*halton(i, 2) - 1
		y := 2*halton(i, 3) - 1
		z := 2*halton(i, 5) - 1
		if positiveX {
			x = math.Abs(x)
			if x < 0.02 {
				continue // keep centres clearly lateralized
			}
		}
		if x*x+y*y+z*z <= 1 {
			pts = append(pts, [3]float64{x, y, z})
		}
	}
	return pts
}

// halton returns the i-th element of the Halton sequence in the given
// base.
func halton(i, base int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}

// randomBallPoint samples a point uniformly from the unit ball.
func randomBallPoint(rng *rand.Rand) [3]float64 {
	for {
		x := 2*rng.Float64() - 1
		y := 2*rng.Float64() - 1
		z := 2*rng.Float64() - 1
		if x*x+y*y+z*z <= 1 {
			return [3]float64{x, y, z}
		}
	}
}
