package match

import (
	"fmt"
	"math"

	"brainprint/internal/linalg"
)

// AssignmentMatch solves the optimal one-to-one assignment between
// known and anonymous subjects: it returns, for every anonymous subject
// (column of the similarity matrix), the known subject (row) assigned to
// it by the maximum-total-similarity perfect matching.
//
// The paper's attack predicts each anonymous subject independently by
// maximum correlation (Predict), which can assign the same known
// identity to several anonymous subjects. Enforcing a bijection via the
// Hungarian algorithm is a natural strengthening when the attacker
// knows the two datasets cover the same population — the ablation
// benchmarks quantify the gain.
//
// The similarity matrix must be square. Runtime is O(n³).
func AssignmentMatch(sim *linalg.Matrix) ([]int, error) {
	n, c := sim.Dims()
	if n != c {
		return nil, fmt.Errorf("match: assignment needs a square matrix, got %dx%d", n, c)
	}
	if n == 0 {
		return nil, fmt.Errorf("match: empty similarity matrix")
	}
	// Hungarian algorithm (Kuhn-Munkres with potentials), minimizing
	// cost = −similarity. 1-based arrays per the classic formulation.
	const inf = math.MaxFloat64
	cost := func(i, j int) float64 { return -sim.At(i, j) }

	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j (1-based)
	way := make([]int, n+1) // way[j] = previous column on the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	out := make([]int, n)
	for j := 1; j <= n; j++ {
		out[j-1] = p[j] - 1
	}
	return out, nil
}

// AssignmentAccuracy returns the identification accuracy of the optimal
// assignment against the ground truth (nil = aligned).
func AssignmentAccuracy(sim *linalg.Matrix, truth []int) (float64, error) {
	pred, err := AssignmentMatch(sim)
	if err != nil {
		return 0, err
	}
	if truth != nil && len(truth) != len(pred) {
		return 0, fmt.Errorf("match: truth length %d != %d subjects", len(truth), len(pred))
	}
	correct := 0
	for j, p := range pred {
		want := j
		if truth != nil {
			want = truth[j]
		}
		if p == want {
			correct++
		}
	}
	return float64(correct) / float64(len(pred)), nil
}
