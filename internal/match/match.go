// Package match performs cross-dataset subject identification: it
// compares every subject of a de-anonymized group against every subject
// of an anonymous group by Pearson correlation in (reduced) feature
// space and predicts matches by maximum correlation, as in §3.1 ("pairs
// of subjects with high correlation correspond to predicted matches").
package match

import (
	"context"
	"fmt"

	"brainprint/internal/linalg"
	"brainprint/internal/parallel"
	"brainprint/internal/stats"
)

// SimilarityMatrix computes the pairwise Pearson correlation between the
// columns (subjects) of two feature×subject matrices: entry (i, j) is
// the correlation between known subject i and anonymous subject j. The
// two matrices must have the same number of feature rows. It uses every
// core; SimilarityMatrixP exposes the worker knob.
func SimilarityMatrix(known, anon *linalg.Matrix) (*linalg.Matrix, error) {
	return SimilarityMatrixP(known, anon, 0)
}

// SimilarityMatrixP is SimilarityMatrix with an explicit parallelism
// knob (0 = all cores, 1 = serial, n = n workers). The known×anonymous
// similarity sweep — the O(subjects²·features) kernel at the heart of
// the attack — fans out over known-subject rows; each output row is
// written by exactly one worker, so every knob setting produces the
// same matrix.
func SimilarityMatrixP(known, anon *linalg.Matrix, parallelism int) (*linalg.Matrix, error) {
	return SimilarityMatrixCtx(context.Background(), known, anon, parallelism)
}

// SimilarityMatrixCtx is SimilarityMatrixP under a context: the row
// sweep aborts between chunks once ctx is cancelled and returns
// ctx.Err(). On success the matrix is bit-identical to every other
// entry point at any parallelism setting.
func SimilarityMatrixCtx(ctx context.Context, known, anon *linalg.Matrix, parallelism int) (*linalg.Matrix, error) {
	kf, kn := known.Dims()
	af, an := anon.Dims()
	if kf != af {
		return nil, fmt.Errorf("match: feature dimension mismatch %d vs %d", kf, af)
	}
	if kf == 0 || kn == 0 || an == 0 {
		return nil, fmt.Errorf("match: empty inputs %dx%d vs %dx%d", kf, kn, af, an)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Z-score columns once so each correlation is a single dot product.
	// The normalization prep is itself cancellable (between columns) so
	// even the pre-sweep phase of a paper-scale matrix aborts promptly.
	zk, err := zScoreColumnsCtx(ctx, known, parallelism)
	if err != nil {
		return nil, err
	}
	za, err := zScoreColumnsCtx(ctx, anon, parallelism)
	if err != nil {
		return nil, err
	}
	// Work column-major: extract columns once.
	kcols := make([][]float64, kn)
	err = parallel.ForCtx(ctx, parallelism, kn, 1+1024/kf, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			kcols[i] = zk.Col(i)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	acols := make([][]float64, an)
	err = parallel.ForCtx(ctx, parallelism, an, 1+1024/kf, func(lo, hi int) error {
		for j := lo; j < hi; j++ {
			acols[j] = za.Col(j)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := linalg.NewMatrix(kn, an)
	inv := 1 / float64(kf)
	err = parallel.ForCtx(ctx, parallelism, kn, 1+4096/(kf*an+1), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			ki := kcols[i]
			orow := out.RowView(i)
			for j := 0; j < an; j++ {
				orow[j] = linalg.Dot(ki, acols[j]) * inv
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SimilarityMatrixRank is the Spearman variant of SimilarityMatrix:
// every subject's feature vector is replaced by its within-subject
// ranks before correlation. Rank matching is invariant to any monotone
// per-subject distortion of the features (scanner transfer curves,
// Fisher-z vs raw correlations, clipping), which makes it a natural
// robustness extension of the attack for heterogeneous releases.
func SimilarityMatrixRank(known, anon *linalg.Matrix) (*linalg.Matrix, error) {
	return SimilarityMatrixRankP(known, anon, 0)
}

// SimilarityMatrixRankP is SimilarityMatrixRank with an explicit
// parallelism knob.
func SimilarityMatrixRankP(known, anon *linalg.Matrix, parallelism int) (*linalg.Matrix, error) {
	return SimilarityMatrixP(rankColumns(known, parallelism), rankColumns(anon, parallelism), parallelism)
}

// rankColumns replaces each column with its midranks.
func rankColumns(m *linalg.Matrix, parallelism int) *linalg.Matrix {
	rows, cols := m.Dims()
	out := linalg.NewMatrix(rows, cols)
	parallel.ForWith(parallelism, cols, 1, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			out.SetCol(j, stats.Ranks(m.Col(j)))
		}
	})
	return out
}

// ZScoreColumns returns a copy of m with each column standardized to
// zero mean and unit population standard deviation (constant columns
// become zero). It is exported because the persistent fingerprint
// gallery normalizes probes through this exact code path: sharing it is
// what makes gallery top-k scores bit-identical to SimilarityMatrix.
func ZScoreColumns(m *linalg.Matrix, parallelism int) *linalg.Matrix {
	out, _ := zScoreColumnsCtx(context.Background(), m, parallelism)
	return out
}

// zScoreColumnsCtx is ZScoreColumns with cancellation between column
// chunks; it returns (nil, ctx.Err()) on abort.
func zScoreColumnsCtx(ctx context.Context, m *linalg.Matrix, parallelism int) (*linalg.Matrix, error) {
	rows, cols := m.Dims()
	out := linalg.NewMatrix(rows, cols)
	err := parallel.ForCtx(ctx, parallelism, cols, 1+2048/(rows+1), func(lo, hi int) error {
		for j := lo; j < hi; j++ {
			col := m.Col(j)
			stats.ZScore(col)
			out.SetCol(j, col)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Predict returns, for every anonymous subject (column of the similarity
// matrix), the index of the known subject with the highest correlation.
func Predict(sim *linalg.Matrix) []int {
	rows, cols := sim.Dims()
	out := make([]int, cols)
	for j := 0; j < cols; j++ {
		best := 0
		for i := 1; i < rows; i++ {
			if sim.At(i, j) > sim.At(best, j) {
				best = i
			}
		}
		out[j] = best
	}
	return out
}

// Accuracy returns the fraction of anonymous subjects whose predicted
// identity matches the ground truth. truth[j] is the known-group index
// of anonymous subject j; pass nil when the groups are aligned
// (truth[j] = j).
func Accuracy(sim *linalg.Matrix, truth []int) (float64, error) {
	_, cols := sim.Dims()
	if truth != nil && len(truth) != cols {
		return 0, fmt.Errorf("match: truth length %d != %d subjects", len(truth), cols)
	}
	if cols == 0 {
		return 0, fmt.Errorf("match: empty similarity matrix")
	}
	pred := Predict(sim)
	correct := 0
	for j, p := range pred {
		want := j
		if truth != nil {
			want = truth[j]
		}
		if p == want {
			correct++
		}
	}
	return float64(correct) / float64(cols), nil
}

// DiagonalContrast summarizes a square similarity matrix the way the
// paper's Figures 1, 2 and 7–9 read: the mean of the diagonal
// (intra-subject similarity) and the mean of the off-diagonal entries
// (inter-subject similarity).
func DiagonalContrast(sim *linalg.Matrix) (diagMean, offMean float64, err error) {
	rows, cols := sim.Dims()
	if rows != cols || rows == 0 {
		return 0, 0, fmt.Errorf("match: diagonal contrast needs a nonempty square matrix, got %dx%d", rows, cols)
	}
	var dsum, osum float64
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if i == j {
				dsum += sim.At(i, j)
			} else {
				osum += sim.At(i, j)
			}
		}
	}
	diagMean = dsum / float64(rows)
	if rows > 1 {
		offMean = osum / float64(rows*(rows-1))
	}
	return diagMean, offMean, nil
}

// TopKAccuracy returns the fraction of anonymous subjects whose true
// identity is within the k highest-correlation candidates — a standard
// relaxation that quantifies how close near-miss identifications are.
func TopKAccuracy(sim *linalg.Matrix, truth []int, k int) (float64, error) {
	rows, cols := sim.Dims()
	if k <= 0 || k > rows {
		return 0, fmt.Errorf("match: k=%d out of range (1..%d)", k, rows)
	}
	if truth != nil && len(truth) != cols {
		return 0, fmt.Errorf("match: truth length %d != %d subjects", len(truth), cols)
	}
	if cols == 0 {
		return 0, fmt.Errorf("match: empty similarity matrix")
	}
	correct := 0
	col := make([]float64, rows)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			col[i] = sim.At(i, j)
		}
		want := j
		if truth != nil {
			want = truth[j]
		}
		// Count how many candidates strictly beat the true identity.
		beat := 0
		for i := 0; i < rows; i++ {
			if col[i] > col[want] {
				beat++
			}
		}
		if beat < k {
			correct++
		}
	}
	return float64(correct) / float64(cols), nil
}
