package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"brainprint/internal/linalg"
)

func TestAssignmentMatchIdentity(t *testing.T) {
	sim, _ := linalg.NewMatrixFromRows([][]float64{
		{0.9, 0.1, 0.2},
		{0.1, 0.8, 0.3},
		{0.2, 0.1, 0.7},
	})
	got, err := AssignmentMatch(sim)
	if err != nil {
		t.Fatalf("AssignmentMatch: %v", err)
	}
	for j, p := range got {
		if p != j {
			t.Errorf("column %d assigned row %d want %d", j, p, j)
		}
	}
}

func TestAssignmentMatchResolvesConflict(t *testing.T) {
	// Greedy argmax assigns row 0 to both columns; the optimal
	// assignment must give each column a distinct row and maximize the
	// total: 0.9 + 0.5 = 1.4 beats 0.8 + 0.6 = 1.4? Use values where the
	// optimum is unambiguous: rows 0/1, cols 0/1 with
	//   sim = [0.9 0.8; 0.6 0.1]
	// greedy: col0→row0 (0.9), col1→row0 (0.8, conflict).
	// optimal: col0→row1? totals: {0→0,1→1} = 1.0; {0→1,1→0} = 1.4. So
	// col0→row1 is wrong... optimal is col0→row1 (0.6) + col1→row0 (0.8)
	// = 1.4 > 1.0.
	sim, _ := linalg.NewMatrixFromRows([][]float64{
		{0.9, 0.8},
		{0.6, 0.1},
	})
	got, err := AssignmentMatch(sim)
	if err != nil {
		t.Fatalf("AssignmentMatch: %v", err)
	}
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("assignment = %v want [1 0]", got)
	}
	// Greedy, by contrast, duplicates row 0.
	greedy := Predict(sim)
	if greedy[0] != 0 || greedy[1] != 0 {
		t.Fatalf("test premise broken: greedy = %v", greedy)
	}
}

func TestAssignmentMatchIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(12)
		sim := linalg.NewMatrix(n, n)
		for i := range sim.RawData() {
			sim.RawData()[i] = rng.Float64()
		}
		got, err := AssignmentMatch(sim)
		if err != nil {
			t.Fatalf("AssignmentMatch: %v", err)
		}
		seen := make([]bool, n)
		for _, p := range got {
			if p < 0 || p >= n || seen[p] {
				t.Fatalf("not a permutation: %v", got)
			}
			seen[p] = true
		}
	}
}

func TestAssignmentMatchErrors(t *testing.T) {
	if _, err := AssignmentMatch(linalg.NewMatrix(2, 3)); err == nil {
		t.Error("expected error for non-square")
	}
	if _, err := AssignmentMatch(linalg.NewMatrix(0, 0)); err == nil {
		t.Error("expected error for empty")
	}
}

func TestAssignmentAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	known, anon := alignedGroups(rng, 60, 10, 0.3)
	sim, _ := SimilarityMatrix(known, anon)
	acc, err := AssignmentAccuracy(sim, nil)
	if err != nil || acc != 1 {
		t.Errorf("accuracy = %v, %v want 1", acc, err)
	}
	if _, err := AssignmentAccuracy(sim, []int{0}); err == nil {
		t.Error("expected truth length error")
	}
}

// Property: the optimal assignment's total similarity is at least the
// greedy assignment's total whenever greedy happens to be a permutation,
// and is always at least the identity assignment's total.
func TestQuickAssignmentOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		sim := linalg.NewMatrix(n, n)
		for i := range sim.RawData() {
			sim.RawData()[i] = rng.NormFloat64()
		}
		opt, err := AssignmentMatch(sim)
		if err != nil {
			return false
		}
		total := func(assign []int) float64 {
			var s float64
			for j, i := range assign {
				s += sim.At(i, j)
			}
			return s
		}
		identity := make([]int, n)
		for i := range identity {
			identity[i] = i
		}
		if total(opt) < total(identity)-1e-9 {
			return false
		}
		// Compare against a few random permutations.
		for k := 0; k < 5; k++ {
			perm := rng.Perm(n)
			if total(opt) < total(perm)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// On aligned noisy groups the optimal assignment should beat greedy on
// average: enforcing the bijection fixes duplicate assignments more
// often than it propagates a confusion into a swap. Individual
// instances can go either way (a single forced swap costs two flips),
// so the comparison is aggregated over many fixed seeds.
func TestAssignmentVsGreedyAggregate(t *testing.T) {
	var greedyTotal, optimalTotal float64
	const trials = 60
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		known, anon := alignedGroups(rng, 40, 8, 1.2)
		sim, err := SimilarityMatrix(known, anon)
		if err != nil {
			t.Fatalf("SimilarityMatrix: %v", err)
		}
		greedy, err := Accuracy(sim, nil)
		if err != nil {
			t.Fatalf("Accuracy: %v", err)
		}
		optimal, err := AssignmentAccuracy(sim, nil)
		if err != nil {
			t.Fatalf("AssignmentAccuracy: %v", err)
		}
		greedyTotal += greedy
		optimalTotal += optimal
	}
	gm, om := greedyTotal/trials, optimalTotal/trials
	t.Logf("mean greedy=%.3f optimal=%.3f", gm, om)
	if om < gm-0.02 {
		t.Errorf("optimal assignment (%.3f) should not lose to greedy (%.3f) on average", om, gm)
	}
}
