package match

import (
	"math"
	"math/rand"
	"testing"

	"brainprint/internal/linalg"
	"brainprint/internal/stats"
)

// alignedGroups builds two feature×subject matrices where each subject's
// columns are noisy copies of a shared prototype, so the correct match
// is the aligned index.
func alignedGroups(rng *rand.Rand, features, subjects int, noise float64) (*linalg.Matrix, *linalg.Matrix) {
	known := linalg.NewMatrix(features, subjects)
	anon := linalg.NewMatrix(features, subjects)
	for s := 0; s < subjects; s++ {
		proto := make([]float64, features)
		for f := range proto {
			proto[f] = rng.NormFloat64()
		}
		k := make([]float64, features)
		a := make([]float64, features)
		for f := range proto {
			k[f] = proto[f] + noise*rng.NormFloat64()
			a[f] = proto[f] + noise*rng.NormFloat64()
		}
		known.SetCol(s, k)
		anon.SetCol(s, a)
	}
	return known, anon
}

func TestSimilarityMatrixShapeAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	known, anon := alignedGroups(rng, 50, 8, 0.5)
	sim, err := SimilarityMatrix(known, anon)
	if err != nil {
		t.Fatalf("SimilarityMatrix: %v", err)
	}
	if r, c := sim.Dims(); r != 8 || c != 8 {
		t.Fatalf("dims %dx%d", r, c)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			v := sim.At(i, j)
			if v < -1-1e-9 || v > 1+1e-9 {
				t.Fatalf("correlation out of range: %v", v)
			}
		}
	}
}

func TestSimilarityMatrixMatchesPearson(t *testing.T) {
	known, _ := linalg.NewMatrixFromRows([][]float64{{1, 5}, {2, 6}, {3, 9}})
	anon, _ := linalg.NewMatrixFromRows([][]float64{{2}, {4}, {6}})
	sim, err := SimilarityMatrix(known, anon)
	if err != nil {
		t.Fatalf("SimilarityMatrix: %v", err)
	}
	// Column 0 of known is perfectly correlated with the anon column.
	if math.Abs(sim.At(0, 0)-1) > 1e-9 {
		t.Errorf("sim(0,0) = %v want 1", sim.At(0, 0))
	}
}

func TestSimilarityMatrixErrors(t *testing.T) {
	if _, err := SimilarityMatrix(linalg.NewMatrix(3, 2), linalg.NewMatrix(4, 2)); err == nil {
		t.Error("expected feature mismatch error")
	}
	if _, err := SimilarityMatrix(linalg.NewMatrix(0, 0), linalg.NewMatrix(0, 0)); err == nil {
		t.Error("expected empty error")
	}
}

func TestPredictAndAccuracyPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	known, anon := alignedGroups(rng, 80, 10, 0.3)
	sim, _ := SimilarityMatrix(known, anon)
	pred := Predict(sim)
	for j, p := range pred {
		if p != j {
			t.Errorf("subject %d predicted as %d", j, p)
		}
	}
	acc, err := Accuracy(sim, nil)
	if err != nil || acc != 1 {
		t.Errorf("accuracy = %v, %v", acc, err)
	}
}

func TestAccuracyWithPermutedTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	known, anon := alignedGroups(rng, 60, 6, 0.2)
	// Shuffle the anonymous columns: truth maps shuffled position → known
	// index.
	perm := []int{3, 1, 4, 0, 5, 2}
	shuffled := linalg.NewMatrix(60, 6)
	for newPos, orig := range perm {
		shuffled.SetCol(newPos, anon.Col(orig))
	}
	sim, _ := SimilarityMatrix(known, shuffled)
	acc, err := Accuracy(sim, perm)
	if err != nil || acc != 1 {
		t.Errorf("permuted accuracy = %v, %v want 1", acc, err)
	}
	if _, err := Accuracy(sim, []int{0}); err == nil {
		t.Error("expected truth length error")
	}
}

func TestAccuracyChanceLevelForNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	known := linalg.NewMatrix(40, 12)
	anon := linalg.NewMatrix(40, 12)
	for s := 0; s < 12; s++ {
		for f := 0; f < 40; f++ {
			known.Set(f, s, rng.NormFloat64())
			anon.Set(f, s, rng.NormFloat64())
		}
	}
	sim, _ := SimilarityMatrix(known, anon)
	acc, _ := Accuracy(sim, nil)
	if acc > 0.5 {
		t.Errorf("unrelated groups should match near chance, got %v", acc)
	}
}

func TestDiagonalContrast(t *testing.T) {
	sim, _ := linalg.NewMatrixFromRows([][]float64{
		{0.9, 0.1},
		{0.2, 0.8},
	})
	d, o, err := DiagonalContrast(sim)
	if err != nil {
		t.Fatalf("DiagonalContrast: %v", err)
	}
	if math.Abs(d-0.85) > 1e-12 || math.Abs(o-0.15) > 1e-12 {
		t.Errorf("contrast = %v, %v", d, o)
	}
	if _, _, err := DiagonalContrast(linalg.NewMatrix(2, 3)); err == nil {
		t.Error("expected error for non-square")
	}
}

func TestDiagonalContrastSingleSubject(t *testing.T) {
	sim, _ := linalg.NewMatrixFromRows([][]float64{{0.7}})
	d, o, err := DiagonalContrast(sim)
	if err != nil || d != 0.7 || o != 0 {
		t.Errorf("single subject contrast = %v, %v, %v", d, o, err)
	}
}

func TestTopKAccuracy(t *testing.T) {
	// Subject 0 is ranked 2nd for itself, subject 1 is ranked 1st.
	sim, _ := linalg.NewMatrixFromRows([][]float64{
		{0.5, 0.1},
		{0.9, 0.8},
	})
	top1, err := TopKAccuracy(sim, nil, 1)
	if err != nil || top1 != 0.5 {
		t.Errorf("top-1 = %v, %v want 0.5", top1, err)
	}
	top2, err := TopKAccuracy(sim, nil, 2)
	if err != nil || top2 != 1 {
		t.Errorf("top-2 = %v, %v want 1", top2, err)
	}
	if _, err := TopKAccuracy(sim, nil, 0); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := TopKAccuracy(sim, nil, 3); err == nil {
		t.Error("expected error for k>rows")
	}
}

func TestAccuracyDegradesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cleanKnown, cleanAnon := alignedGroups(rng, 60, 15, 0.2)
	noisyKnown, noisyAnon := alignedGroups(rng, 60, 15, 3.0)
	simClean, _ := SimilarityMatrix(cleanKnown, cleanAnon)
	simNoisy, _ := SimilarityMatrix(noisyKnown, noisyAnon)
	accClean, _ := Accuracy(simClean, nil)
	accNoisy, _ := Accuracy(simNoisy, nil)
	if accClean <= accNoisy {
		t.Errorf("accuracy should degrade with noise: clean=%v noisy=%v", accClean, accNoisy)
	}
}

func TestSimilarityMatrixRankMonotoneInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	known, anon := alignedGroups(rng, 80, 9, 0.3)
	// Distort the anonymous group with a per-subject monotone transform
	// (cubic + offset): Pearson matching shifts, rank matching must not.
	warped := anon.Clone()
	for s := 0; s < 9; s++ {
		col := warped.Col(s)
		for f := range col {
			col[f] = col[f]*col[f]*col[f] + float64(s)
		}
		warped.SetCol(s, col)
	}
	simRank, err := SimilarityMatrixRank(known, anon)
	if err != nil {
		t.Fatalf("SimilarityMatrixRank: %v", err)
	}
	simRankWarped, err := SimilarityMatrixRank(known, warped)
	if err != nil {
		t.Fatalf("SimilarityMatrixRank warped: %v", err)
	}
	if !simRankWarped.EqualApprox(simRank, 1e-9) {
		t.Error("rank similarity should be invariant to monotone warping")
	}
	accRank, _ := Accuracy(simRankWarped, nil)
	if accRank != 1 {
		t.Errorf("rank matching accuracy on warped data = %v want 1", accRank)
	}
}

func TestSimilarityMatrixRankMatchesSpearman(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	known, anon := alignedGroups(rng, 40, 4, 0.5)
	sim, err := SimilarityMatrixRank(known, anon)
	if err != nil {
		t.Fatalf("SimilarityMatrixRank: %v", err)
	}
	// Spot-check one entry against stats.Spearman.
	want, err := stats.Spearman(known.Col(1), anon.Col(2))
	if err != nil {
		t.Fatalf("Spearman: %v", err)
	}
	if math.Abs(sim.At(1, 2)-want) > 1e-9 {
		t.Errorf("rank sim (1,2) = %v want %v", sim.At(1, 2), want)
	}
}
