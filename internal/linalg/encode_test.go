package linalg

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

func TestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := randomMatrix(rng, 7, 3)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back Matrix
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !back.EqualApprox(orig, 0) {
		t.Error("round trip changed the matrix")
	}
}

func TestGobEmptyMatrix(t *testing.T) {
	orig := NewMatrix(0, 0)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back Matrix
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if r, c := back.Dims(); r != 0 || c != 0 {
		t.Errorf("dims = %dx%d", r, c)
	}
}

func TestFloat64sRoundTripIsBitExact(t *testing.T) {
	vals := []float64{0, 1, -1, 1e-308, -1e308, 3.141592653589793, 0.1}
	raw := AppendFloat64s([]byte{0xAA}, vals) // non-empty dst exercises append
	if len(raw) != 1+8*len(vals) {
		t.Fatalf("encoded length %d want %d", len(raw), 1+8*len(vals))
	}
	back := make([]float64, len(vals))
	n, err := DecodeFloat64s(raw[1:], back)
	if err != nil {
		t.Fatalf("DecodeFloat64s: %v", err)
	}
	if n != 8*len(vals) {
		t.Errorf("consumed %d bytes want %d", n, 8*len(vals))
	}
	for i, v := range vals {
		if back[i] != v {
			t.Errorf("value %d: %g != %g", i, back[i], v)
		}
	}
	if _, err := DecodeFloat64s(raw[1:9], back); err == nil {
		t.Error("expected truncation error on a short payload")
	}
}

func TestGobDecodeRejectsBadVersion(t *testing.T) {
	m := NewMatrix(2, 2)
	raw, err := m.GobEncode()
	if err != nil {
		t.Fatalf("GobEncode: %v", err)
	}
	raw[0] = 99 // clobber the version byte
	var back Matrix
	if err := back.GobDecode(raw); err == nil {
		t.Error("expected version error")
	}
}

func TestGobDecodeRejectsTruncated(t *testing.T) {
	m := NewMatrix(3, 3)
	raw, err := m.GobEncode()
	if err != nil {
		t.Fatalf("GobEncode: %v", err)
	}
	var back Matrix
	if err := back.GobDecode(raw[:len(raw)-8]); err == nil {
		t.Error("expected truncation error")
	}
	if err := back.GobDecode(raw[:4]); err == nil {
		t.Error("expected header error")
	}
}

func TestGobDecodeRejectsNegativeDims(t *testing.T) {
	m := NewMatrix(1, 1)
	raw, _ := m.GobEncode()
	// Header layout: version, rows, cols as int64 little-endian.
	for i := 8; i < 16; i++ {
		raw[i] = 0xFF // rows = -1
	}
	var back Matrix
	if err := back.GobDecode(raw); err == nil {
		t.Error("expected corrupt-header error")
	}
}
