package linalg

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

func TestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := randomMatrix(rng, 7, 3)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back Matrix
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !back.EqualApprox(orig, 0) {
		t.Error("round trip changed the matrix")
	}
}

func TestGobEmptyMatrix(t *testing.T) {
	orig := NewMatrix(0, 0)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back Matrix
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if r, c := back.Dims(); r != 0 || c != 0 {
		t.Errorf("dims = %dx%d", r, c)
	}
}

func TestGobDecodeRejectsBadVersion(t *testing.T) {
	m := NewMatrix(2, 2)
	raw, err := m.GobEncode()
	if err != nil {
		t.Fatalf("GobEncode: %v", err)
	}
	raw[0] = 99 // clobber the version byte
	var back Matrix
	if err := back.GobDecode(raw); err == nil {
		t.Error("expected version error")
	}
}

func TestGobDecodeRejectsTruncated(t *testing.T) {
	m := NewMatrix(3, 3)
	raw, err := m.GobEncode()
	if err != nil {
		t.Fatalf("GobEncode: %v", err)
	}
	var back Matrix
	if err := back.GobDecode(raw[:len(raw)-8]); err == nil {
		t.Error("expected truncation error")
	}
	if err := back.GobDecode(raw[:4]); err == nil {
		t.Error("expected header error")
	}
}

func TestGobDecodeRejectsNegativeDims(t *testing.T) {
	m := NewMatrix(1, 1)
	raw, _ := m.GobEncode()
	// Header layout: version, rows, cols as int64 little-endian.
	for i := 8; i < 16; i++ {
		raw[i] = 0xFF // rows = -1
	}
	var back Matrix
	if err := back.GobDecode(raw); err == nil {
		t.Error("expected corrupt-header error")
	}
}
