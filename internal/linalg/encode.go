package linalg

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// matrixWireVersion tags the binary encoding so future layout changes
// remain detectable.
const matrixWireVersion = 1

// AppendFloat64s appends the little-endian IEEE-754 encoding of vals to
// dst and returns the extended slice. It is the hand-rolled fast path
// shared by the Matrix gob codec and the gallery fingerprint codec:
// unlike binary.Write it performs no reflection and at most one
// allocation (growing dst).
func AppendFloat64s(dst []byte, vals []float64) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, 8*len(vals))...)
	for _, v := range vals {
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
		off += 8
	}
	return dst
}

// DecodeFloat64s decodes len(out) little-endian float64 values from the
// front of src into out and returns the number of bytes consumed. It
// returns an error if src is too short.
func DecodeFloat64s(src []byte, out []float64) (int, error) {
	need := 8 * len(out)
	if len(src) < need {
		return 0, fmt.Errorf("linalg: float64 payload truncated: have %d bytes, need %d", len(src), need)
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return need, nil
}

// GobEncode implements gob.GobEncoder with a compact little-endian
// layout: version, rows, cols, then the row-major float64 data.
func (m *Matrix) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	header := []int64{matrixWireVersion, int64(m.rows), int64(m.cols)}
	if err := binary.Write(&buf, binary.LittleEndian, header); err != nil {
		return nil, err
	}
	buf.Write(AppendFloat64s(nil, m.data))
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Matrix) GobDecode(b []byte) error {
	buf := bytes.NewReader(b)
	header := make([]int64, 3)
	if err := binary.Read(buf, binary.LittleEndian, header); err != nil {
		return err
	}
	if header[0] != matrixWireVersion {
		return fmt.Errorf("linalg: unsupported matrix encoding version %d", header[0])
	}
	rows, cols := int(header[1]), int(header[2])
	if rows < 0 || cols < 0 {
		return fmt.Errorf("linalg: corrupt matrix header %dx%d", rows, cols)
	}
	data := make([]float64, rows*cols)
	if _, err := DecodeFloat64s(b[len(b)-buf.Len():], data); err != nil {
		return err
	}
	m.rows, m.cols, m.data = rows, cols, data
	return nil
}
