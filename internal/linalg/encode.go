package linalg

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// matrixWireVersion tags the binary encoding so future layout changes
// remain detectable.
const matrixWireVersion = 1

// GobEncode implements gob.GobEncoder with a compact little-endian
// layout: version, rows, cols, then the row-major float64 data.
func (m *Matrix) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	header := []int64{matrixWireVersion, int64(m.rows), int64(m.cols)}
	if err := binary.Write(&buf, binary.LittleEndian, header); err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, binary.LittleEndian, m.data); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Matrix) GobDecode(b []byte) error {
	buf := bytes.NewReader(b)
	header := make([]int64, 3)
	if err := binary.Read(buf, binary.LittleEndian, header); err != nil {
		return err
	}
	if header[0] != matrixWireVersion {
		return fmt.Errorf("linalg: unsupported matrix encoding version %d", header[0])
	}
	rows, cols := int(header[1]), int(header[2])
	if rows < 0 || cols < 0 {
		return fmt.Errorf("linalg: corrupt matrix header %dx%d", rows, cols)
	}
	data := make([]float64, rows*cols)
	if err := binary.Read(buf, binary.LittleEndian, data); err != nil {
		return err
	}
	m.rows, m.cols, m.data = rows, cols, data
	return nil
}
