package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SVDFactors holds a thin singular value decomposition A = U·diag(S)·Vᵀ
// where A is m×n (m ≥ n), U is m×n with orthonormal columns, S holds the
// singular values in descending order, and V is n×n orthogonal.
type SVDFactors struct {
	U *Matrix
	S []float64
	V *Matrix
}

// SVD computes a thin singular value decomposition of a using the
// one-sided Jacobi method (Hestenes): pairs of columns are repeatedly
// orthogonalized by plane rotations until the column set is orthogonal;
// the column norms are then the singular values.
//
// One-sided Jacobi is slower than bidiagonalization-based methods but is
// simple, numerically robust, and accurate for the tall-thin matrices
// used by the attack. For very tall matrices where speed matters and a
// modest accuracy loss is acceptable, see ThinSVDGram.
func SVD(a *Matrix) (*SVDFactors, error) {
	m, n := a.Dims()
	if m < n {
		// Factor the transpose and swap the roles of U and V.
		f, err := SVD(a.T())
		if err != nil {
			return nil, err
		}
		return &SVDFactors{U: f.V, S: f.S, V: f.U}, nil
	}
	if n == 0 {
		return &SVDFactors{U: NewMatrix(m, 0), S: nil, V: NewMatrix(0, 0)}, nil
	}

	// Work column-major for cache-friendly column rotations.
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		cols[j] = a.Col(j)
	}
	v := Identity(n)

	const tol = 1e-14
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha := Dot(cols[p], cols[p])
				beta := Dot(cols[q], cols[q])
				gamma := Dot(cols[p], cols[q])
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				rotated = true
				// Compute the rotation that zeroes the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				cp, cq := cols[p], cols[q]
				for i := range cp {
					xp, xq := cp[i], cq[i]
					cp[i] = c*xp - s*xq
					cq[i] = s*xp + c*xq
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if !rotated {
			break
		}
	}

	// Singular values are the column norms; U columns are the normalized
	// rotated columns.
	type pair struct {
		sigma float64
		idx   int
	}
	pairs := make([]pair, n)
	for j := 0; j < n; j++ {
		pairs[j] = pair{sigma: Norm2(cols[j]), idx: j}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].sigma > pairs[j].sigma })

	u := NewMatrix(m, n)
	s := make([]float64, n)
	vout := NewMatrix(n, n)
	for k, p := range pairs {
		s[k] = p.sigma
		col := cols[p.idx]
		if p.sigma > 0 {
			inv := 1 / p.sigma
			for i := 0; i < m; i++ {
				u.Set(i, k, col[i]*inv)
			}
		}
		for i := 0; i < n; i++ {
			vout.Set(i, k, v.At(i, p.idx))
		}
	}
	return &SVDFactors{U: u, S: s, V: vout}, nil
}

// ThinSVDGram computes a thin SVD of a tall matrix a (m ≥ n) through the
// n×n Gram matrix: AᵀA = V·Λ·Vᵀ, S = √Λ, U = A·V·Σ⁻¹.
//
// This costs one pass over a plus an n×n eigendecomposition, which is
// dramatically cheaper than a direct SVD when m ≫ n (the attack's group
// matrices are 64620×100). The price is squared conditioning: singular
// values below about √ε‖A‖ lose accuracy. Leverage scores only need the
// dominant subspace, so this trade is appropriate there.
func ThinSVDGram(a *Matrix) (*SVDFactors, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("linalg: ThinSVDGram requires rows >= cols, got %dx%d", m, n)
	}
	g := a.Gram()
	eig, err := SymEigen(g)
	if err != nil {
		return nil, err
	}
	s := make([]float64, n)
	for i, lam := range eig.Values {
		if lam > 0 {
			s[i] = math.Sqrt(lam)
		}
	}
	// U = A·V·Σ⁻¹ for the nonzero singular values; zero columns otherwise.
	av := a.Mul(eig.Vectors)
	u := NewMatrix(m, n)
	for k := 0; k < n; k++ {
		if s[k] <= 1e-12*s[0] {
			continue
		}
		inv := 1 / s[k]
		for i := 0; i < m; i++ {
			u.Set(i, k, av.At(i, k)*inv)
		}
	}
	return &SVDFactors{U: u, S: s, V: eig.Vectors}, nil
}

// Rank returns the numerical rank implied by the singular values: the
// number of values above rcond times the largest.
func (f *SVDFactors) Rank(rcond float64) int {
	if len(f.S) == 0 || f.S[0] == 0 {
		return 0
	}
	thresh := rcond * f.S[0]
	r := 0
	for _, s := range f.S {
		if s > thresh {
			r++
		}
	}
	return r
}

// PseudoInverse returns the Moore-Penrose pseudo-inverse A⁺ = V·Σ⁺·Uᵀ
// computed from the factorization, treating singular values below
// rcond·S[0] as zero.
func (f *SVDFactors) PseudoInverse(rcond float64) *Matrix {
	n := len(f.S)
	m := f.U.Rows()
	out := NewMatrix(f.V.Rows(), m)
	if n == 0 {
		return out
	}
	thresh := rcond * f.S[0]
	// out = Σ over k of (1/σ_k) v_k u_kᵀ
	for k := 0; k < n; k++ {
		if f.S[k] <= thresh {
			continue
		}
		inv := 1 / f.S[k]
		for i := 0; i < f.V.Rows(); i++ {
			vik := f.V.At(i, k) * inv
			if vik == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				out.Set(i, j, out.At(i, j)+vik*f.U.At(j, k))
			}
		}
	}
	return out
}

// Reconstruct returns U·diag(S)·Vᵀ, optionally truncated to the leading
// k components (k ≤ len(S); pass k = len(S) for the full product).
func (f *SVDFactors) Reconstruct(k int) *Matrix {
	if k < 0 || k > len(f.S) {
		panic(fmt.Sprintf("linalg: Reconstruct rank %d out of range %d", k, len(f.S)))
	}
	m := f.U.Rows()
	n := f.V.Rows()
	out := NewMatrix(m, n)
	for c := 0; c < k; c++ {
		sc := f.S[c]
		if sc == 0 {
			continue
		}
		for i := 0; i < m; i++ {
			uic := f.U.At(i, c) * sc
			if uic == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Set(i, j, out.At(i, j)+uic*f.V.At(j, c))
			}
		}
	}
	return out
}
