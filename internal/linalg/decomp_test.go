package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDotAxpyNorm(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Errorf("Dot = %v want 32", got)
	}
	z := []float64{1, 1, 1}
	Axpy(2, x, z)
	if z[2] != 7 {
		t.Errorf("Axpy wrong: %v", z)
	}
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v want 5", got)
	}
	v := []float64{0, 3, 4}
	n := Normalize(v)
	if math.Abs(n-5) > 1e-12 || math.Abs(Norm2(v)-1) > 1e-12 {
		t.Errorf("Normalize: norm=%v v=%v", n, v)
	}
	zero := []float64{0, 0}
	if Normalize(zero) != 0 {
		t.Error("Normalize of zero vector should return 0")
	}
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dims := range [][2]int{{5, 5}, {8, 3}, {12, 7}, {3, 1}} {
		a := randomMatrix(rng, dims[0], dims[1])
		f, err := QR(a)
		if err != nil {
			t.Fatalf("QR(%v): %v", dims, err)
		}
		if !f.Q.Mul(f.R).EqualApprox(a, 1e-9) {
			t.Errorf("QR %v: Q·R != A", dims)
		}
		// Q has orthonormal columns: QᵀQ = I.
		qtq := f.Q.T().Mul(f.Q)
		if !qtq.EqualApprox(Identity(dims[1]), 1e-9) {
			t.Errorf("QR %v: QᵀQ != I", dims)
		}
		// R is upper triangular.
		for i := 1; i < dims[1]; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(f.R.At(i, j)) > 1e-10 {
					t.Errorf("QR %v: R(%d,%d) = %v not zero", dims, i, j, f.R.At(i, j))
				}
			}
		}
	}
}

func TestQRWideRejected(t *testing.T) {
	if _, err := QR(NewMatrix(2, 5)); err == nil {
		t.Fatal("expected error for wide matrix")
	}
}

func TestSolveUpperTriangular(t *testing.T) {
	r, _ := NewMatrixFromRows([][]float64{{2, 1}, {0, 4}})
	x, err := SolveUpperTriangular(r, []float64{5, 8})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if math.Abs(x[1]-2) > 1e-12 || math.Abs(x[0]-1.5) > 1e-12 {
		t.Errorf("x = %v want [1.5 2]", x)
	}
	sing, _ := NewMatrixFromRows([][]float64{{1, 1}, {0, 0}})
	if _, err := SolveUpperTriangular(sing, []float64{1, 1}); err == nil {
		t.Error("expected singular error")
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Square nonsingular system: solution should be exact.
	a, _ := NewMatrixFromRows([][]float64{{2, 0}, {0, 3}})
	x, err := SolveLeastSquares(a, []float64{4, 9})
	if err != nil {
		t.Fatalf("lsq: %v", err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Errorf("x = %v want [2 3]", x)
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2t + 1 through noisy-free samples; residual should be ~0
	// and coefficients recovered.
	rows := [][]float64{}
	var b []float64
	for tme := 0; tme < 10; tme++ {
		rows = append(rows, []float64{float64(tme), 1})
		b = append(b, 2*float64(tme)+1)
	}
	a, _ := NewMatrixFromRows(rows)
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatalf("lsq: %v", err)
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Errorf("coef = %v want [2 1]", x)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	d, _ := NewMatrixFromRows([][]float64{{3, 0}, {0, 1}})
	eig, err := SymEigen(d)
	if err != nil {
		t.Fatalf("SymEigen: %v", err)
	}
	if math.Abs(eig.Values[0]-3) > 1e-12 || math.Abs(eig.Values[1]-1) > 1e-12 {
		t.Errorf("values = %v want [3 1]", eig.Values)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 12} {
		b := randomMatrix(rng, n, n)
		a := b.Add(b.T()) // symmetric
		eig, err := SymEigen(a)
		if err != nil {
			t.Fatalf("SymEigen n=%d: %v", n, err)
		}
		// V·diag(λ)·Vᵀ == A
		lam := NewMatrix(n, n)
		for i, v := range eig.Values {
			lam.Set(i, i, v)
		}
		rec := eig.Vectors.Mul(lam).Mul(eig.Vectors.T())
		if !rec.EqualApprox(a, 1e-8*(1+a.MaxAbs())) {
			t.Errorf("n=%d: VΛVᵀ != A", n)
		}
		// Orthonormal eigenvectors.
		if !eig.Vectors.T().Mul(eig.Vectors).EqualApprox(Identity(n), 1e-9) {
			t.Errorf("n=%d: VᵀV != I", n)
		}
		// Sorted descending.
		for i := 1; i < n; i++ {
			if eig.Values[i] > eig.Values[i-1]+1e-12 {
				t.Errorf("n=%d: eigenvalues not sorted: %v", n, eig.Values)
			}
		}
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 5}, {0, 1}})
	if _, err := SymEigen(a); err == nil {
		t.Fatal("expected error for asymmetric input")
	}
	if _, err := SymEigen(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dims := range [][2]int{{6, 6}, {10, 4}, {4, 10}, {1, 1}, {7, 2}} {
		a := randomMatrix(rng, dims[0], dims[1])
		f, err := SVD(a)
		if err != nil {
			t.Fatalf("SVD %v: %v", dims, err)
		}
		k := len(f.S)
		rec := f.Reconstruct(k)
		if !rec.EqualApprox(a, 1e-8*(1+a.MaxAbs())) {
			t.Errorf("SVD %v: UΣVᵀ != A", dims)
		}
		// Singular values nonnegative and sorted descending.
		for i := range f.S {
			if f.S[i] < 0 {
				t.Errorf("SVD %v: negative singular value %v", dims, f.S[i])
			}
			if i > 0 && f.S[i] > f.S[i-1]+1e-12 {
				t.Errorf("SVD %v: unsorted singular values %v", dims, f.S)
			}
		}
		// U and V have orthonormal columns.
		if !f.U.T().Mul(f.U).EqualApprox(Identity(f.U.Cols()), 1e-8) {
			t.Errorf("SVD %v: UᵀU != I", dims)
		}
		if !f.V.T().Mul(f.V).EqualApprox(Identity(f.V.Cols()), 1e-8) {
			t.Errorf("SVD %v: VᵀV != I", dims)
		}
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2) embedded in a rectangular matrix has singular values 3, 2.
	a, _ := NewMatrixFromRows([][]float64{{3, 0}, {0, 2}, {0, 0}})
	f, err := SVD(a)
	if err != nil {
		t.Fatalf("SVD: %v", err)
	}
	if math.Abs(f.S[0]-3) > 1e-10 || math.Abs(f.S[1]-2) > 1e-10 {
		t.Errorf("S = %v want [3 2]", f.S)
	}
}

func TestThinSVDGramMatchesSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomMatrix(rng, 40, 6)
	full, err := SVD(a)
	if err != nil {
		t.Fatalf("SVD: %v", err)
	}
	gram, err := ThinSVDGram(a)
	if err != nil {
		t.Fatalf("ThinSVDGram: %v", err)
	}
	for i := range full.S {
		if math.Abs(full.S[i]-gram.S[i]) > 1e-6*(1+full.S[0]) {
			t.Errorf("singular value %d: jacobi=%v gram=%v", i, full.S[i], gram.S[i])
		}
	}
	// Leverage scores (row norms of U) must agree regardless of the sign/
	// rotation ambiguity of individual singular vectors.
	lf := full.U.RowNormsSquared()
	lg := gram.U.RowNormsSquared()
	for i := range lf {
		if math.Abs(lf[i]-lg[i]) > 1e-6 {
			t.Errorf("leverage %d: jacobi=%v gram=%v", i, lf[i], lg[i])
		}
	}
}

func TestThinSVDGramWideRejected(t *testing.T) {
	if _, err := ThinSVDGram(NewMatrix(2, 5)); err == nil {
		t.Fatal("expected error for wide matrix")
	}
}

func TestSVDRankAndPseudoInverse(t *testing.T) {
	// Rank-1 matrix.
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	f, err := SVD(a)
	if err != nil {
		t.Fatalf("SVD: %v", err)
	}
	if r := f.Rank(1e-10); r != 1 {
		t.Errorf("Rank = %d want 1", r)
	}
	// A·A⁺·A == A (Moore-Penrose identity).
	pinv := f.PseudoInverse(1e-12)
	if !a.Mul(pinv).Mul(a).EqualApprox(a, 1e-8) {
		t.Error("A·A⁺·A != A")
	}
}

func TestReconstructTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randomMatrix(rng, 8, 5)
	f, _ := SVD(a)
	// Truncating to rank k must be a better approximation as k grows.
	prev := math.Inf(1)
	for k := 1; k <= 5; k++ {
		err := f.Reconstruct(k).Sub(a).FrobeniusNorm()
		if err > prev+1e-12 {
			t.Errorf("rank-%d error %v worse than rank-%d %v", k, err, k-1, prev)
		}
		prev = err
	}
}

// Property: SVD singular values match the square roots of the
// eigenvalues of AᵀA.
func TestQuickSVDEigenConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(8)
		n := 1 + rng.Intn(m)
		a := randomMatrix(rng, m, n)
		sf, err := SVD(a)
		if err != nil {
			return false
		}
		eig, err := SymEigen(a.Gram())
		if err != nil {
			return false
		}
		for i := range sf.S {
			lam := eig.Values[i]
			if lam < 0 {
				lam = 0
			}
			if math.Abs(sf.S[i]-math.Sqrt(lam)) > 1e-7*(1+sf.S[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the Frobenius norm equals the l2 norm of the singular values.
func TestQuickSVDNormIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(9)
		n := 1 + rng.Intn(9)
		a := randomMatrix(rng, m, n)
		sf, err := SVD(a)
		if err != nil {
			return false
		}
		return math.Abs(a.FrobeniusNorm()-Norm2(sf.S)) < 1e-8*(1+a.FrobeniusNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDot4BitIdenticalToDot pins the gather kernel's exactness
// contract: each of Dot4's four results must equal the corresponding
// lone Dot bit for bit (==, not a tolerance), across dimensions that
// exercise awkward accumulation lengths. The IVF posting-list scan
// leans on this to batch scattered candidates without perturbing the
// score of any returned record.
func TestDot4BitIdenticalToDot(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, dim := range []int{1, 2, 3, 7, 100, 513} {
		vecs := make([][]float64, 5)
		for i := range vecs {
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			vecs[i] = v
		}
		a, b, c, d, y := vecs[0], vecs[1], vecs[2], vecs[3], vecs[4]
		s0, s1, s2, s3 := Dot4(a, b, c, d, y)
		for i, got := range []float64{s0, s1, s2, s3} {
			if want := Dot(vecs[i], y); got != want {
				t.Errorf("dim %d lane %d: Dot4 %v != Dot %v", dim, i, got, want)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Dot4 with mismatched lengths did not panic")
		}
	}()
	Dot4(make([]float64, 3), make([]float64, 3), make([]float64, 3), make([]float64, 2), make([]float64, 3))
}

// TestDot8BitIdenticalToDot extends the gather-kernel exactness pin to
// the eight-wide variant the IVF scan actually uses.
func TestDot8BitIdenticalToDot(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for _, dim := range []int{1, 5, 100, 513} {
		vecs := make([][]float64, 9)
		for i := range vecs {
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			vecs[i] = v
		}
		y := vecs[8]
		s0, s1, s2, s3, s4, s5, s6, s7 := Dot8(
			vecs[0], vecs[1], vecs[2], vecs[3], vecs[4], vecs[5], vecs[6], vecs[7], y)
		for i, got := range []float64{s0, s1, s2, s3, s4, s5, s6, s7} {
			if want := Dot(vecs[i], y); got != want {
				t.Errorf("dim %d lane %d: Dot8 %v != Dot %v", dim, i, got, want)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Dot8 with mismatched lengths did not panic")
		}
	}()
	v3 := make([]float64, 3)
	Dot8(v3, v3, v3, v3, v3, v3, make([]float64, 4), v3, v3)
}
