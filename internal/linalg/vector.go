package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y.
// It panics if the lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, guarded against overflow.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			ssq = 1 + ssq*(scale/av)*(scale/av)
			scale = av
		} else {
			ssq += (av / scale) * (av / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y ← a·x + y in place.
// It panics if the lengths differ.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if a == 0 {
		return
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec computes x ← a·x in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm. A zero vector is left unchanged and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	ScaleVec(1/n, x)
	return n
}
