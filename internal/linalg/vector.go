package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y.
// It panics if the lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Dot4 returns the inner products of y with each of a, b, c, and d in
// one pass. Each accumulator sums its record's terms strictly in
// ascending feature order — exactly Dot's reduction — so every result
// is bit-identical to the corresponding Dot call; the four chains are
// merely independent, letting their FP latencies and cache misses
// overlap. This is the gather kernel for scans that visit a scattered
// subset of records (the IVF posting-list scan), where the
// record-striped blocked layout would waste most of every cache line.
// It panics if any length differs.
func Dot4(a, b, c, d, y []float64) (s0, s1, s2, s3 float64) {
	if len(a) != len(y) || len(b) != len(y) || len(c) != len(y) || len(d) != len(y) {
		panic(fmt.Sprintf("linalg: Dot4 length mismatch %d/%d/%d/%d vs %d",
			len(a), len(b), len(c), len(d), len(y)))
	}
	a, b, c, d = a[:len(y)], b[:len(y)], c[:len(y)], d[:len(y)]
	for i, v := range y {
		s0 += a[i] * v
		s1 += b[i] * v
		s2 += c[i] * v
		s3 += d[i] * v
	}
	return
}

// Dot8 is Dot4 twice as wide: the inner products of y with each of
// eight gathered records, eight independent accumulator chains, each
// bit-identical to the corresponding lone Dot. Wider than the
// latency-hiding sweet spot for L1-resident data, but the IVF scan's
// candidates are cache-cold gathers, where eight in-flight miss
// streams beat four. It panics if any length differs.
func Dot8(a, b, c, d, e, f, g, h, y []float64) (s0, s1, s2, s3, s4, s5, s6, s7 float64) {
	n := len(y)
	if len(a) != n || len(b) != n || len(c) != n || len(d) != n ||
		len(e) != n || len(f) != n || len(g) != n || len(h) != n {
		panic(fmt.Sprintf("linalg: Dot8 length mismatch %d/%d/%d/%d/%d/%d/%d/%d vs %d",
			len(a), len(b), len(c), len(d), len(e), len(f), len(g), len(h), n))
	}
	a, b, c, d = a[:n], b[:n], c[:n], d[:n]
	e, f, g, h = e[:n], f[:n], g[:n], h[:n]
	for i, v := range y {
		s0 += a[i] * v
		s1 += b[i] * v
		s2 += c[i] * v
		s3 += d[i] * v
		s4 += e[i] * v
		s5 += f[i] * v
		s6 += g[i] * v
		s7 += h[i] * v
	}
	return
}

// Norm2 returns the Euclidean norm of x, guarded against overflow.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			ssq = 1 + ssq*(scale/av)*(scale/av)
			scale = av
		} else {
			ssq += (av / scale) * (av / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y ← a·x + y in place.
// It panics if the lengths differ.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if a == 0 {
		return
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec computes x ← a·x in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm. A zero vector is left unchanged and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	ScaleVec(1/n, x)
	return n
}
