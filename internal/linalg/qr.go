package linalg

import (
	"fmt"
	"math"
)

// QRFactors holds a thin QR factorization A = Q·R where A is m×n with
// m ≥ n, Q is m×n with orthonormal columns, and R is n×n upper
// triangular.
type QRFactors struct {
	Q *Matrix
	R *Matrix
}

// QR computes the thin QR factorization of a using Householder
// reflections. It returns an error if a has more columns than rows.
func QR(a *Matrix) (*QRFactors, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	r := a.Clone()
	// Store the Householder vectors; apply them to the identity later to
	// recover the thin Q.
	vs := make([][]float64, 0, n)
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below the diagonal.
		v := make([]float64, m-k)
		for i := k; i < m; i++ {
			v[i-k] = r.At(i, k)
		}
		alpha := Norm2(v)
		if alpha == 0 {
			vs = append(vs, nil)
			continue
		}
		if v[0] > 0 {
			alpha = -alpha
		}
		v[0] -= alpha
		vnorm := Norm2(v)
		if vnorm == 0 {
			vs = append(vs, nil)
			continue
		}
		ScaleVec(1/vnorm, v)
		vs = append(vs, v)
		// Apply H = I − 2vvᵀ to the trailing submatrix of R.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			dot *= 2
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-dot*v[i-k])
			}
		}
	}
	// Accumulate the thin Q = H_0 H_1 ... H_{n-1} · I_{m×n} by applying
	// the reflections in reverse to the leading identity block.
	q := NewMatrix(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		if v == nil {
			continue
		}
		for j := 0; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * q.At(i, j)
			}
			dot *= 2
			for i := k; i < m; i++ {
				q.Set(i, j, q.At(i, j)-dot*v[i-k])
			}
		}
	}
	// Zero out the strictly lower triangle of R and truncate to n×n.
	rn := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rn.Set(i, j, r.At(i, j))
		}
	}
	return &QRFactors{Q: q, R: rn}, nil
}

// SolveUpperTriangular solves R·x = b for upper triangular R by back
// substitution. It returns an error if R is singular to working
// precision.
func SolveUpperTriangular(r *Matrix, b []float64) ([]float64, error) {
	n, c := r.Dims()
	if n != c {
		return nil, fmt.Errorf("linalg: triangular solve needs square matrix, got %dx%d", n, c)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d != %d", len(b), n)
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-300 {
			return nil, fmt.Errorf("linalg: singular triangular matrix at pivot %d", i)
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveLeastSquares returns the minimum-norm least-squares solution of
// A·x ≈ b via thin QR. A must have at least as many rows as columns and
// full column rank.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	m, _ := a.Dims()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: rhs length %d != rows %d", len(b), m)
	}
	f, err := QR(a)
	if err != nil {
		return nil, err
	}
	// x = R⁻¹ Qᵀ b
	qtb := f.Q.T().MulVec(b)
	return SolveUpperTriangular(f.R, qtb)
}
