package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym holds the eigendecomposition of a symmetric matrix
// A = V·diag(Values)·Vᵀ with eigenvalues sorted in descending order and
// eigenvectors in the corresponding columns of V.
type EigenSym struct {
	Values  []float64
	Vectors *Matrix // n×n, column k is the eigenvector for Values[k]
}

// maxJacobiSweeps bounds the cyclic Jacobi iteration. Convergence is
// quadratic; 64 sweeps is far beyond what any well-conditioned problem
// needs and exists only to guarantee termination.
const maxJacobiSweeps = 64

// SymEigen computes the eigendecomposition of the symmetric matrix a
// using the cyclic Jacobi rotation method. It returns an error if a is
// not square or not symmetric within a loose tolerance scaled to its
// magnitude.
func SymEigen(a *Matrix) (*EigenSym, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("linalg: SymEigen requires a square matrix, got %dx%d", n, c)
	}
	if tol := 1e-8 * (1 + a.MaxAbs()); !a.IsSymmetric(tol) {
		return nil, fmt.Errorf("linalg: SymEigen requires a symmetric matrix")
	}
	if n == 0 {
		return &EigenSym{Values: nil, Vectors: NewMatrix(0, 0)}, nil
	}

	w := a.Clone()
	v := Identity(n)
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*(1+w.MaxAbs())*float64(n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Classic stable rotation computation (Golub & Van Loan).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				cth := 1 / math.Sqrt(1+t*t)
				sth := t * cth
				applyJacobiRotation(w, v, p, q, cth, sth)
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return vals[order[i]] > vals[order[j]] })
	sorted := make([]float64, n)
	vecs := NewMatrix(n, n)
	for k, idx := range order {
		sorted[k] = vals[idx]
		for i := 0; i < n; i++ {
			vecs.Set(i, k, v.At(i, idx))
		}
	}
	return &EigenSym{Values: sorted, Vectors: vecs}, nil
}

// applyJacobiRotation applies the rotation J(p,q,θ) from both sides of w
// (keeping it symmetric) and accumulates it into the eigenvector matrix
// v. It works on the raw backing slices: this kernel dominates the
// eigendecomposition of the large Gram matrices that appear when a
// cohort has many hundreds of subjects, and the bounds-checked accessor
// path costs a small integer factor there.
func applyJacobiRotation(w, v *Matrix, p, q int, c, s float64) {
	n := w.rows
	wd := w.data
	// Column rotation: elements (i,p) and (i,q) for all i.
	for i := 0; i < n; i++ {
		base := i * n
		wip, wiq := wd[base+p], wd[base+q]
		wd[base+p] = c*wip - s*wiq
		wd[base+q] = s*wip + c*wiq
	}
	// Row rotation: rows p and q are contiguous.
	rp := wd[p*n : (p+1)*n]
	rq := wd[q*n : (q+1)*n]
	for j := 0; j < n; j++ {
		wpj, wqj := rp[j], rq[j]
		rp[j] = c*wpj - s*wqj
		rq[j] = s*wpj + c*wqj
	}
	vd := v.data
	for i := 0; i < n; i++ {
		base := i * n
		vip, viq := vd[base+p], vd[base+q]
		vd[base+p] = c*vip - s*viq
		vd[base+q] = s*vip + c*viq
	}
}

// offDiagNorm returns the Frobenius norm of the off-diagonal part of w.
func offDiagNorm(w *Matrix) float64 {
	n := w.Rows()
	var s float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := w.At(i, j)
			s += v * v
		}
	}
	return math.Sqrt(s)
}
