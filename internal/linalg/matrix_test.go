package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("NewMatrixFromRows: %v", err)
	}
	if r, c := m.Dims(); r != 3 || c != 2 {
		t.Fatalf("Dims = %d,%d want 3,2", r, c)
	}
	if got := m.At(2, 1); got != 6 {
		t.Errorf("At(2,1) = %v want 6", got)
	}
}

func TestNewMatrixFromRowsRagged(t *testing.T) {
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestNewMatrixFromRowsEmpty(t *testing.T) {
	m, err := NewMatrixFromRows(nil)
	if err != nil {
		t.Fatalf("empty: %v", err)
	}
	if r, c := m.Dims(); r != 0 || c != 0 {
		t.Errorf("Dims = %d,%d want 0,0", r, c)
	}
}

func TestNewMatrixFromData(t *testing.T) {
	if _, err := NewMatrixFromData(2, 2, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	m, err := NewMatrixFromData(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("NewMatrixFromData: %v", err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v want 3", m.At(1, 0))
	}
}

func TestAtSetPanics(t *testing.T) {
	m := NewMatrix(2, 3)
	for _, tc := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", tc[0], tc[1])
				}
			}()
			m.At(tc[0], tc[1])
		}()
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(4)[%d,%d] = %v want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if r, c := mt.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d want 3,2", r, c)
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Errorf("transpose content wrong: %v", mt)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 7, 5)
	if !m.T().T().EqualApprox(m, 0) {
		t.Error("T(T(m)) != m")
	}
}

func TestMul(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want, _ := NewMatrixFromRows([][]float64{{19, 22}, {43, 50}})
	if !got.EqualApprox(want, 1e-12) {
		t.Errorf("Mul = %v want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 4, 6)
	if !Identity(4).Mul(m).EqualApprox(m, 1e-12) {
		t.Error("I·m != m")
	}
	if !m.Mul(Identity(6)).EqualApprox(m, 1e-12) {
		t.Error("m·I != m")
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestMulVec(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v want [3 7]", got)
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 20, 6)
	g := a.Gram()
	want := a.T().Mul(a)
	if !g.EqualApprox(want, 1e-10) {
		t.Error("Gram != AᵀA")
	}
	if !g.IsSymmetric(0) {
		t.Error("Gram not exactly symmetric")
	}
}

func TestAddSubScale(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 5, 5)
	b := randomMatrix(rng, 5, 5)
	if !a.Add(b).Sub(b).EqualApprox(a, 1e-12) {
		t.Error("a+b-b != a")
	}
	if !a.Scale(2).Sub(a).EqualApprox(a, 1e-12) {
		t.Error("2a-a != a")
	}
}

func TestRowColAccess(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	row := m.Row(1)
	row[0] = 99 // copy: must not affect m
	if m.At(1, 0) != 4 {
		t.Error("Row returned aliasing slice")
	}
	rv := m.RowView(1)
	rv[0] = 99 // view: must affect m
	if m.At(1, 0) != 99 {
		t.Error("RowView did not alias")
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Errorf("Col = %v", col)
	}
}

func TestSetRowSetCol(t *testing.T) {
	m := NewMatrix(2, 3)
	m.SetRow(0, []float64{1, 2, 3})
	m.SetCol(2, []float64{9, 8})
	if m.At(0, 2) != 9 || m.At(1, 2) != 8 || m.At(0, 0) != 1 {
		t.Errorf("SetRow/SetCol wrong: %v", m)
	}
}

func TestSelectRows(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	s := m.SelectRows([]int{2, 0, 2})
	if s.Rows() != 3 || s.At(0, 0) != 3 || s.At(1, 0) != 1 || s.At(2, 1) != 3 {
		t.Errorf("SelectRows wrong: %v", s)
	}
}

func TestSelectCols(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	s := m.SelectCols([]int{2, 0})
	if s.Cols() != 2 || s.At(0, 0) != 3 || s.At(1, 1) != 4 {
		t.Errorf("SelectCols wrong: %v", s)
	}
}

func TestStacking(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}})
	b, _ := NewMatrixFromRows([][]float64{{3, 4}})
	h := a.HStack(b)
	if h.Cols() != 4 || h.At(0, 3) != 4 {
		t.Errorf("HStack wrong: %v", h)
	}
	v := a.VStack(b)
	if v.Rows() != 2 || v.At(1, 0) != 3 {
		t.Errorf("VStack wrong: %v", v)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{3, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %v want 5", got)
	}
	if NewMatrix(0, 0).FrobeniusNorm() != 0 {
		t.Error("empty norm != 0")
	}
}

func TestRowNormsSquared(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{3, 4}, {0, 0}, {1, 0}})
	got := m.RowNormsSquared()
	want := []float64{25, 0, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("RowNormsSquared[%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	s, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 1}})
	if !s.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 1}})
	if a.IsSymmetric(1e-9) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(1) {
		t.Error("non-square reported symmetric")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random shapes.
func TestQuickMulTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		a := randomMatrix(rng, r, k)
		b := randomMatrix(rng, k, c)
		return a.Mul(b).T().EqualApprox(b.T().Mul(a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Frobenius norm is invariant under transpose.
func TestQuickNormTransposeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 1+rng.Intn(10), 1+rng.Intn(10))
		return math.Abs(a.FrobeniusNorm()-a.T().FrobeniusNorm()) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestQuickMulDistributes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		k := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := randomMatrix(rng, r, k)
		b := randomMatrix(rng, k, c)
		d := randomMatrix(rng, k, c)
		left := a.Mul(b.Add(d))
		right := a.Mul(b).Add(a.Mul(d))
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small, _ := NewMatrixFromRows([][]float64{{1, 2}})
	if small.String() == "" {
		t.Error("small String empty")
	}
	large := NewMatrix(20, 20)
	if large.String() != "Matrix(20x20)" {
		t.Errorf("large String = %q", large.String())
	}
}
