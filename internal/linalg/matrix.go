// Package linalg provides the dense linear-algebra substrate used by the
// de-anonymization attack: a row-major matrix type, factorizations
// (QR, symmetric eigendecomposition, SVD) and the solvers built on them.
//
// The package is self-contained (standard library only). It favours
// clarity and numerical robustness: the matrices that appear in the
// attack are tall and thin (up to ~65k rows but at most a few hundred
// columns), so all factorizations funnel through small n×n symmetric
// problems. The O(rows·cols²) kernels feeding them (Mul, Gram, T) are
// block-parallel over row bands via internal/parallel, with chunk sizes
// chosen so results stay bit-identical to the serial sweep; pin the
// worker count process-wide with parallel.SetDefault.
package linalg

import (
	"fmt"
	"math"

	"brainprint/internal/parallel"
)

// minKernelWork is the amount of per-chunk scalar work below which the
// O(n³)-ish kernels stay serial: smaller matrices lose more to goroutine
// scheduling than they gain from extra cores.
const minKernelWork = 1 << 16

// kernelGrain returns a For-loop grain such that each chunk carries at
// least minKernelWork scalar operations when every loop iteration costs
// perRow of them.
func kernelGrain(perRow int) int {
	if perRow <= 0 {
		return 1 << 30
	}
	g := minKernelWork / perRow
	if g < 1 {
		g = 1
	}
	return g
}

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty (0×0) matrix. Use NewMatrix or the other
// constructors to create sized matrices. Element accessors panic on
// out-of-range indices, mirroring slice semantics.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewMatrix returns a zero-initialized r×c matrix.
// It panics if r or c is negative.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewMatrixFromRows builds a matrix from a slice of equal-length rows.
// The data is copied. It returns an error if the rows are ragged.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("linalg: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(row))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// NewMatrixFromData wraps an existing row-major backing slice without
// copying. It returns an error if len(data) != r*c.
func NewMatrixFromData(r, c int, data []float64) (*Matrix, error) {
	if len(data) != r*c {
		return nil, fmt.Errorf("linalg: data length %d does not match %dx%d", len(data), r, c)
	}
	return &Matrix{rows: r, cols: c, data: data}, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Matrix) Dims() (int, int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// RawData returns the underlying row-major backing slice. Mutating it
// mutates the matrix. Useful for bulk kernels; use with care.
func (m *Matrix) RawData() []float64 { return m.data }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns row i as a slice aliasing the matrix storage.
func (m *Matrix) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i. It panics if len(v) != Cols().
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("linalg: SetRow length %d != cols %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// SetCol copies v into column j. It panics if len(v) != Rows().
func (m *Matrix) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("linalg: SetCol length %d != rows %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix. Row bands of the input
// are scattered concurrently; each band owns a distinct output column
// range, so the result is identical at any worker count.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	parallel.For(m.rows, kernelGrain(m.cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.data[i*m.cols : (i+1)*m.cols]
			for j, v := range row {
				out.data[j*m.rows+i] = v
			}
		}
	})
	return out
}

// Mul returns the matrix product m·b.
// It panics if the inner dimensions disagree.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMatrix(m.rows, b.cols)
	// Block-parallel over row bands of the output: every output row is
	// produced by exactly one worker with the serial ikj loop order
	// (contiguous inner loops in both b and out), so the product is
	// bit-identical at any worker count.
	parallel.For(m.rows, kernelGrain(m.cols*b.cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := m.data[i*m.cols : (i+1)*m.cols]
			orow := out.data[i*b.cols : (i+1)*b.cols]
			for k, aik := range arow {
				if aik == 0 {
					continue
				}
				brow := b.data[k*b.cols : (k+1)*b.cols]
				for j, bkj := range brow {
					orow[j] += aik * bkj
				}
			}
		}
	})
	return out
}

// MulVec returns the matrix-vector product m·x.
// It panics if len(x) != Cols().
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec length %d != cols %d", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Dot(m.data[i*m.cols:(i+1)*m.cols], x)
	}
	return out
}

// Gram returns mᵀ·m, the n×n Gram matrix of the columns of m, computed
// directly (without materializing the transpose). The result is
// symmetric by construction.
func (m *Matrix) Gram() *Matrix {
	n := m.cols
	out := NewMatrix(n, n)
	// Block-parallel over bands of output rows: each worker owns rows
	// [lo, hi) of the Gram matrix and sweeps every input row once. For a
	// fixed output element (a, b) the accumulation still runs over input
	// rows in ascending order, so the result is bit-identical to the
	// serial sweep regardless of worker count.
	parallel.For(n, kernelGrain(m.rows*(n+1)/2), func(lo, hi int) {
		for i := 0; i < m.rows; i++ {
			row := m.data[i*m.cols : (i+1)*m.cols]
			for a := lo; a < hi; a++ {
				va := row[a]
				if va == 0 {
					continue
				}
				orow := out.data[a*n : (a+1)*n]
				for b := a; b < n; b++ {
					orow[b] += va * row[b]
				}
			}
		}
	})
	// Mirror the upper triangle.
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			out.data[b*n+a] = out.data[a*n+b]
		}
	}
	return out
}

// Add returns m + b elementwise. It panics on dimension mismatch.
func (m *Matrix) Add(b *Matrix) *Matrix {
	return m.zipWith(b, func(x, y float64) float64 { return x + y })
}

// Sub returns m − b elementwise. It panics on dimension mismatch.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	return m.zipWith(b, func(x, y float64) float64 { return x - y })
}

func (m *Matrix) zipWith(b *Matrix, f func(x, y float64) float64) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("linalg: elementwise dimension mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMatrix(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = f(v, b.data[i])
	}
	return out
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := NewMatrix(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = s * v
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	// Scaled accumulation guards against overflow for large entries.
	var scale, ssq float64 = 0, 1
	for _, v := range m.data {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			ssq = 1 + ssq*(scale/av)*(scale/av)
			scale = av
		} else {
			ssq += (av / scale) * (av / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns the largest absolute entry of m (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// RowNormsSquared returns the squared Euclidean norm of every row.
func (m *Matrix) RowNormsSquared() []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for _, v := range row {
			s += v * v
		}
		out[i] = s
	}
	return out
}

// SelectRows returns a new matrix consisting of the given rows of m, in
// the given order. Indices may repeat. It panics on out-of-range indices.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := NewMatrix(len(idx), m.cols)
	for k, i := range idx {
		if i < 0 || i >= m.rows {
			panic(fmt.Sprintf("linalg: SelectRows index %d out of range %d", i, m.rows))
		}
		copy(out.data[k*m.cols:(k+1)*m.cols], m.data[i*m.cols:(i+1)*m.cols])
	}
	return out
}

// SelectCols returns a new matrix consisting of the given columns of m.
func (m *Matrix) SelectCols(idx []int) *Matrix {
	out := NewMatrix(m.rows, len(idx))
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*len(idx) : (i+1)*len(idx)]
		for k, j := range idx {
			if j < 0 || j >= m.cols {
				panic(fmt.Sprintf("linalg: SelectCols index %d out of range %d", j, m.cols))
			}
			orow[k] = row[j]
		}
	}
	return out
}

// HStack returns [m | b], the column-wise concatenation.
// It panics if the row counts differ.
func (m *Matrix) HStack(b *Matrix) *Matrix {
	if m.rows != b.rows {
		panic(fmt.Sprintf("linalg: HStack row mismatch %d vs %d", m.rows, b.rows))
	}
	out := NewMatrix(m.rows, m.cols+b.cols)
	for i := 0; i < m.rows; i++ {
		copy(out.data[i*out.cols:], m.data[i*m.cols:(i+1)*m.cols])
		copy(out.data[i*out.cols+m.cols:], b.data[i*b.cols:(i+1)*b.cols])
	}
	return out
}

// VStack returns the row-wise concatenation of m on top of b.
// It panics if the column counts differ.
func (m *Matrix) VStack(b *Matrix) *Matrix {
	if m.cols != b.cols {
		panic(fmt.Sprintf("linalg: VStack col mismatch %d vs %d", m.cols, b.cols))
	}
	out := NewMatrix(m.rows+b.rows, m.cols)
	copy(out.data, m.data)
	copy(out.data[m.rows*m.cols:], b.data)
	return out
}

// EqualApprox reports whether m and b have the same shape and every
// entry differs by at most tol.
func (m *Matrix) EqualApprox(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.data[i*m.cols+j]-m.data[j*m.cols+i]) > tol {
				return false
			}
		}
	}
	return true
}

// String renders small matrices for debugging; large matrices are
// summarized by shape.
func (m *Matrix) String() string {
	if m.rows*m.cols > 100 {
		return fmt.Sprintf("Matrix(%dx%d)", m.rows, m.cols)
	}
	s := ""
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			s += fmt.Sprintf("% .4g ", m.data[i*m.cols+j])
		}
		s += "\n"
	}
	return s
}
