// Package connectome builds functional connectomes: region×region
// correlation matrices computed from region-averaged time series, their
// vectorized (upper-triangle) feature form, and the group matrices the
// attack operates on (features × subjects).
//
// A connectome can equivalently be read as a weighted complete graph
// whose nodes are regions and whose edge weights are co-activation
// correlations (§1); the graph accessors expose that view.
package connectome

import (
	"fmt"
	"math"
	"sort"

	"brainprint/internal/linalg"
	"brainprint/internal/parallel"
	"brainprint/internal/stats"
)

// Connectome is the functional connectome of one scan: a symmetric
// regions×regions Pearson correlation matrix with unit diagonal.
type Connectome struct {
	C *linalg.Matrix
}

// Options configures connectome construction.
type Options struct {
	// FisherZ applies the Fisher z-transform atanh(r) to every
	// correlation, a common variance-stabilization step.
	FisherZ bool
	// Parallelism bounds the workers of the O(regions²·time) correlation
	// sweep: 0 uses every core, 1 runs serially, n pins n workers. The
	// connectome is identical at any setting.
	Parallelism int
}

// FromRegionSeries computes the connectome of a regions×time matrix:
// every row is z-scored and pairwise Pearson correlations are assembled
// into the co-firing matrix of §3.1.1. Constant rows (e.g. empty atlas
// regions) correlate 0 with everything.
func FromRegionSeries(series *linalg.Matrix, opt Options) (*Connectome, error) {
	n, t := series.Dims()
	if n == 0 || t < 2 {
		return nil, fmt.Errorf("connectome: need at least 1 region and 2 time points, got %dx%d", n, t)
	}
	// Z-score rows; after normalization, Pearson correlation reduces to a
	// scaled dot product, which keeps the O(n²t) loop tight. Rows are
	// independent, so they normalize concurrently.
	z := linalg.NewMatrix(n, t)
	valid := make([]bool, n)
	parallel.ForWith(opt.Parallelism, n, 1+4096/t, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := series.Row(i)
			valid[i] = stats.ZScore(row)
			z.SetRow(i, row)
		}
	})
	// The pair sweep is parallel over the outer region index. Row i of
	// the sweep writes c[i][j] and c[j][i] for j > i only — every matrix
	// element has exactly one writing iteration, so bands race nowhere
	// and the result matches the serial sweep exactly. Work per i shrinks
	// as i grows (triangular loop); grain 1 lets the dynamic scheduler
	// balance the load.
	c := linalg.NewMatrix(n, n)
	raw := c.RawData()
	inv := 1 / float64(t)
	parallel.ForWith(opt.Parallelism, n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			raw[i*n+i] = 1
			if !valid[i] {
				continue
			}
			zi := z.RowView(i)
			for j := i + 1; j < n; j++ {
				if !valid[j] {
					continue
				}
				r := linalg.Dot(zi, z.RowView(j)) * inv
				// Clamp tiny numerical excursions outside [−1, 1].
				if r > 1 {
					r = 1
				} else if r < -1 {
					r = -1
				}
				if opt.FisherZ {
					r = stats.FisherZ(r)
				}
				raw[i*n+j] = r
				raw[j*n+i] = r
			}
		}
	})
	return &Connectome{C: c}, nil
}

// NumRegions returns the number of regions.
func (c *Connectome) NumRegions() int { return c.C.Rows() }

// NumEdges returns the number of distinct region pairs.
func (c *Connectome) NumEdges() int {
	n := c.C.Rows()
	return n * (n - 1) / 2
}

// Vectorize flattens the strict upper triangle of the connectome into a
// feature vector of length n(n−1)/2, ordered row-major: (0,1), (0,2),
// …, (0,n−1), (1,2), …. The paper exploits the symmetry of the matrix in
// exactly this way (§3.1.1).
func (c *Connectome) Vectorize() []float64 {
	n := c.C.Rows()
	out := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, c.C.At(i, j))
		}
	}
	return out
}

// FromVector rebuilds a connectome from its vectorized upper triangle
// (the inverse of Vectorize): the diagonal is set to 1 and both
// triangles are filled symmetrically. n is the region count; the vector
// must have exactly n(n−1)/2 entries.
func FromVector(vec []float64, n int) (*Connectome, error) {
	want := n * (n - 1) / 2
	if len(vec) != want {
		return nil, fmt.Errorf("connectome: vector length %d != %d for %d regions", len(vec), want, n)
	}
	c := linalg.NewMatrix(n, n)
	k := 0
	for i := 0; i < n; i++ {
		c.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			c.Set(i, j, vec[k])
			c.Set(j, i, vec[k])
			k++
		}
	}
	return &Connectome{C: c}, nil
}

// EdgeIndex returns the position of edge (i, j), i ≠ j, in the
// vectorized form. Order of i and j does not matter.
func EdgeIndex(n, i, j int) (int, error) {
	if i == j || i < 0 || j < 0 || i >= n || j >= n {
		return 0, fmt.Errorf("connectome: invalid edge (%d,%d) for %d regions", i, j, n)
	}
	if i > j {
		i, j = j, i
	}
	// Offset of row i in the packed triangle plus the column offset.
	return i*n - i*(i+1)/2 + (j - i - 1), nil
}

// EdgeFromIndex inverts EdgeIndex: it returns the region pair (i, j),
// i < j, at the given vector position.
func EdgeFromIndex(n, idx int) (int, int, error) {
	if idx < 0 || idx >= n*(n-1)/2 {
		return 0, 0, fmt.Errorf("connectome: edge index %d out of range for %d regions", idx, n)
	}
	// Walk rows; each row i contributes n−1−i edges.
	i := 0
	for {
		rowLen := n - 1 - i
		if idx < rowLen {
			return i, i + 1 + idx, nil
		}
		idx -= rowLen
		i++
	}
}

// Edge is one weighted edge of the connectome graph view.
type Edge struct {
	I, J   int
	Weight float64
}

// Edges returns all edges with |weight| ≥ minAbs, sorted by descending
// absolute weight.
func (c *Connectome) Edges(minAbs float64) []Edge {
	n := c.C.Rows()
	var out []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := c.C.At(i, j)
			if math.Abs(w) >= minAbs {
				out = append(out, Edge{I: i, J: j, Weight: w})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return math.Abs(out[a].Weight) > math.Abs(out[b].Weight) })
	return out
}

// NodeStrength returns the sum of absolute edge weights incident to each
// region, the standard weighted-graph notion of node strength.
func (c *Connectome) NodeStrength() []float64 {
	n := c.C.Rows()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			out[i] += math.Abs(c.C.At(i, j))
		}
	}
	return out
}

// GroupMatrix stacks vectorized connectomes into the group matrix of
// §3.1.2: one column per subject (scan), one row per connectome feature.
// All connectomes must share the same region count.
func GroupMatrix(cons []*Connectome) (*linalg.Matrix, error) {
	if len(cons) == 0 {
		return nil, fmt.Errorf("connectome: empty group")
	}
	n := cons[0].NumRegions()
	m := cons[0].NumEdges()
	out := linalg.NewMatrix(m, len(cons))
	for s, c := range cons {
		if c.NumRegions() != n {
			return nil, fmt.Errorf("connectome: subject %d has %d regions, want %d", s, c.NumRegions(), n)
		}
		out.SetCol(s, c.Vectorize())
	}
	return out, nil
}

// GroupMatrixFromVectors stacks precomputed feature vectors (one per
// subject) into a features×subjects group matrix.
func GroupMatrixFromVectors(vecs [][]float64) (*linalg.Matrix, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("connectome: empty group")
	}
	m := len(vecs[0])
	out := linalg.NewMatrix(m, len(vecs))
	for s, v := range vecs {
		if len(v) != m {
			return nil, fmt.Errorf("connectome: subject %d has %d features, want %d", s, len(v), m)
		}
		out.SetCol(s, v)
	}
	return out, nil
}
