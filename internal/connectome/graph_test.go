package connectome

import (
	"math"
	"testing"

	"brainprint/internal/linalg"
)

// triangleConnectome builds a 4-region connectome where regions 0, 1, 2
// form a strong triangle and region 3 is weakly attached.
func triangleConnectome() *Connectome {
	c := &Connectome{C: linalg.NewMatrix(4, 4)}
	set := func(i, j int, w float64) {
		c.C.Set(i, j, w)
		c.C.Set(j, i, w)
	}
	for i := 0; i < 4; i++ {
		c.C.Set(i, i, 1)
	}
	set(0, 1, 0.9)
	set(0, 2, 0.8)
	set(1, 2, 0.85)
	set(0, 3, 0.1)
	set(1, 3, 0.05)
	set(2, 3, 0.02)
	return c
}

func TestDegree(t *testing.T) {
	c := triangleConnectome()
	deg := c.Degree(0.5)
	want := []int{2, 2, 2, 0}
	for i := range want {
		if deg[i] != want[i] {
			t.Errorf("degree[%d] = %d want %d", i, deg[i], want[i])
		}
	}
	// Threshold 0 counts everything.
	degAll := c.Degree(0)
	for i, d := range degAll {
		if d != 3 {
			t.Errorf("degree[%d] at 0 = %d want 3", i, d)
		}
	}
}

func TestDensity(t *testing.T) {
	c := triangleConnectome()
	if got := c.Density(0.5); math.Abs(got-0.5) > 1e-12 { // 3 of 6 pairs
		t.Errorf("density = %v want 0.5", got)
	}
	if got := c.Density(0); got != 1 {
		t.Errorf("density at 0 = %v want 1", got)
	}
	single := &Connectome{C: linalg.NewMatrix(1, 1)}
	if single.Density(0) != 0 {
		t.Error("single-region density should be 0")
	}
}

func TestClusteringCoefficients(t *testing.T) {
	c := triangleConnectome()
	cc := c.ClusteringCoefficients()
	// Triangle members cluster more than the peripheral region.
	if cc[0] <= cc[3] || cc[1] <= cc[3] || cc[2] <= cc[3] {
		t.Errorf("triangle nodes should cluster more: %v", cc)
	}
	for i, v := range cc {
		if v < 0 || v > 1+1e-12 {
			t.Errorf("clustering[%d] = %v out of [0,1]", i, v)
		}
	}
	// Zero matrix yields zeros.
	zero := &Connectome{C: linalg.NewMatrix(3, 3)}
	for _, v := range zero.ClusteringCoefficients() {
		if v != 0 {
			t.Error("zero connectome should have zero clustering")
		}
	}
}

func TestClusteringPerfectGraph(t *testing.T) {
	// All edges equal: every coefficient is exactly 1 after weight
	// normalization.
	c := &Connectome{C: linalg.NewMatrix(5, 5)}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				c.C.Set(i, j, 0.7)
			} else {
				c.C.Set(i, i, 1)
			}
		}
	}
	for i, v := range c.ClusteringCoefficients() {
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("uniform graph clustering[%d] = %v want 1", i, v)
		}
	}
}

func TestGlobalEfficiency(t *testing.T) {
	c := triangleConnectome()
	// At threshold 0.5 the triangle is connected, region 3 isolated.
	eff := c.GlobalEfficiency(0.5)
	// Within the triangle every pair is at distance 1: 6 ordered pairs
	// contribute 1 each; pairs involving node 3 contribute 0. Total
	// = 6 / 12 = 0.5.
	if math.Abs(eff-0.5) > 1e-12 {
		t.Errorf("efficiency = %v want 0.5", eff)
	}
	// Fully connected graph at threshold 0: efficiency 1.
	if got := c.GlobalEfficiency(0.01); math.Abs(got-1) > 1e-12 {
		t.Errorf("efficiency at 0.01 = %v want 1", got)
	}
	single := &Connectome{C: linalg.NewMatrix(1, 1)}
	if single.GlobalEfficiency(0) != 0 {
		t.Error("single region efficiency should be 0")
	}
}

func TestGlobalEfficiencyPathGraph(t *testing.T) {
	// Chain 0-1-2: distances 1,1,2 → efficiency = (1+1+0.5)*2/6 = 5/6.
	c := &Connectome{C: linalg.NewMatrix(3, 3)}
	c.C.Set(0, 1, 0.9)
	c.C.Set(1, 0, 0.9)
	c.C.Set(1, 2, 0.9)
	c.C.Set(2, 1, 0.9)
	eff := c.GlobalEfficiency(0.5)
	if math.Abs(eff-5.0/6) > 1e-12 {
		t.Errorf("path efficiency = %v want 5/6", eff)
	}
}

func TestGraphSummary(t *testing.T) {
	c := triangleConnectome()
	s := c.Summarize()
	if s.MeanAbsWeight <= 0 || s.Density <= 0 || s.MeanClustering <= 0 {
		t.Errorf("summary has zero fields: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}
