package connectome

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"brainprint/internal/linalg"
)

func randomSeries(rng *rand.Rand, regions, frames int) *linalg.Matrix {
	m := linalg.NewMatrix(regions, frames)
	for i := 0; i < regions; i++ {
		for t := 0; t < frames; t++ {
			m.Set(i, t, rng.NormFloat64())
		}
	}
	return m
}

func TestFromRegionSeriesBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	series := randomSeries(rng, 8, 100)
	c, err := FromRegionSeries(series, Options{})
	if err != nil {
		t.Fatalf("FromRegionSeries: %v", err)
	}
	if c.NumRegions() != 8 {
		t.Fatalf("regions = %d", c.NumRegions())
	}
	// Unit diagonal, symmetric, entries in [−1, 1].
	for i := 0; i < 8; i++ {
		if c.C.At(i, i) != 1 {
			t.Errorf("diagonal (%d,%d) = %v", i, i, c.C.At(i, i))
		}
		for j := 0; j < 8; j++ {
			v := c.C.At(i, j)
			if v < -1 || v > 1 {
				t.Errorf("correlation out of range: %v", v)
			}
			if c.C.At(j, i) != v {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestFromRegionSeriesPerfectCorrelation(t *testing.T) {
	series := linalg.NewMatrix(2, 4)
	series.SetRow(0, []float64{1, 2, 3, 4})
	series.SetRow(1, []float64{2, 4, 6, 8}) // perfectly correlated
	c, err := FromRegionSeries(series, Options{})
	if err != nil {
		t.Fatalf("FromRegionSeries: %v", err)
	}
	if math.Abs(c.C.At(0, 1)-1) > 1e-12 {
		t.Errorf("correlation = %v want 1", c.C.At(0, 1))
	}
}

func TestFromRegionSeriesAntiCorrelation(t *testing.T) {
	series := linalg.NewMatrix(2, 4)
	series.SetRow(0, []float64{1, 2, 3, 4})
	series.SetRow(1, []float64{4, 3, 2, 1})
	c, _ := FromRegionSeries(series, Options{})
	if math.Abs(c.C.At(0, 1)+1) > 1e-12 {
		t.Errorf("correlation = %v want -1", c.C.At(0, 1))
	}
}

func TestFromRegionSeriesConstantRow(t *testing.T) {
	series := linalg.NewMatrix(2, 4)
	series.SetRow(0, []float64{5, 5, 5, 5}) // empty-region stand-in
	series.SetRow(1, []float64{1, 2, 3, 4})
	c, err := FromRegionSeries(series, Options{})
	if err != nil {
		t.Fatalf("FromRegionSeries: %v", err)
	}
	if c.C.At(0, 1) != 0 {
		t.Errorf("constant row should correlate 0, got %v", c.C.At(0, 1))
	}
	if c.C.At(0, 0) != 1 {
		t.Error("diagonal should stay 1")
	}
}

func TestFromRegionSeriesErrors(t *testing.T) {
	if _, err := FromRegionSeries(linalg.NewMatrix(0, 5), Options{}); err == nil {
		t.Error("expected error for 0 regions")
	}
	if _, err := FromRegionSeries(linalg.NewMatrix(3, 1), Options{}); err == nil {
		t.Error("expected error for 1 time point")
	}
}

func TestFisherZOption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	series := randomSeries(rng, 4, 50)
	plain, _ := FromRegionSeries(series, Options{})
	fz, _ := FromRegionSeries(series, Options{FisherZ: true})
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			want := math.Atanh(plain.C.At(i, j))
			if math.Abs(fz.C.At(i, j)-want) > 1e-9 {
				t.Errorf("FisherZ (%d,%d) = %v want %v", i, j, fz.C.At(i, j), want)
			}
		}
	}
}

func TestVectorizeOrderAndLength(t *testing.T) {
	c := &Connectome{C: linalg.NewMatrix(3, 3)}
	c.C.Set(0, 1, 12)
	c.C.Set(1, 0, 12)
	c.C.Set(0, 2, 13)
	c.C.Set(2, 0, 13)
	c.C.Set(1, 2, 23)
	c.C.Set(2, 1, 23)
	v := c.Vectorize()
	if len(v) != 3 {
		t.Fatalf("len = %d want 3", len(v))
	}
	if v[0] != 12 || v[1] != 13 || v[2] != 23 {
		t.Errorf("vectorize order wrong: %v", v)
	}
}

func TestEdgeIndexRoundTrip(t *testing.T) {
	n := 10
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			idx, err := EdgeIndex(n, i, j)
			if err != nil {
				t.Fatalf("EdgeIndex(%d,%d): %v", i, j, err)
			}
			if seen[idx] {
				t.Fatalf("duplicate index %d", idx)
			}
			seen[idx] = true
			gi, gj, err := EdgeFromIndex(n, idx)
			if err != nil || gi != i || gj != j {
				t.Fatalf("EdgeFromIndex(%d) = (%d,%d,%v) want (%d,%d)", idx, gi, gj, err, i, j)
			}
		}
	}
	if len(seen) != n*(n-1)/2 {
		t.Fatalf("covered %d indices want %d", len(seen), n*(n-1)/2)
	}
}

func TestEdgeIndexSymmetricArgs(t *testing.T) {
	a, _ := EdgeIndex(5, 1, 3)
	b, _ := EdgeIndex(5, 3, 1)
	if a != b {
		t.Error("EdgeIndex should ignore argument order")
	}
}

func TestEdgeIndexErrors(t *testing.T) {
	if _, err := EdgeIndex(5, 2, 2); err == nil {
		t.Error("expected error for diagonal edge")
	}
	if _, err := EdgeIndex(5, -1, 2); err == nil {
		t.Error("expected error for negative region")
	}
	if _, _, err := EdgeFromIndex(5, 10); err == nil {
		t.Error("expected error for out-of-range index")
	}
}

func TestEdgesThresholdAndOrder(t *testing.T) {
	c := &Connectome{C: linalg.NewMatrix(3, 3)}
	c.C.Set(0, 1, 0.9)
	c.C.Set(1, 0, 0.9)
	c.C.Set(0, 2, -0.95)
	c.C.Set(2, 0, -0.95)
	c.C.Set(1, 2, 0.1)
	c.C.Set(2, 1, 0.1)
	edges := c.Edges(0.5)
	if len(edges) != 2 {
		t.Fatalf("edges = %d want 2", len(edges))
	}
	if edges[0].Weight != -0.95 {
		t.Errorf("edges not sorted by |weight|: %+v", edges)
	}
}

func TestNodeStrength(t *testing.T) {
	c := &Connectome{C: linalg.NewMatrix(3, 3)}
	c.C.Set(0, 1, 0.5)
	c.C.Set(1, 0, 0.5)
	c.C.Set(0, 2, -0.5)
	c.C.Set(2, 0, -0.5)
	s := c.NodeStrength()
	if s[0] != 1 || s[1] != 0.5 || s[2] != 0.5 {
		t.Errorf("NodeStrength = %v", s)
	}
}

func TestGroupMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var cons []*Connectome
	for s := 0; s < 5; s++ {
		c, err := FromRegionSeries(randomSeries(rng, 6, 40), Options{})
		if err != nil {
			t.Fatalf("FromRegionSeries: %v", err)
		}
		cons = append(cons, c)
	}
	g, err := GroupMatrix(cons)
	if err != nil {
		t.Fatalf("GroupMatrix: %v", err)
	}
	if r, c := g.Dims(); r != 15 || c != 5 {
		t.Fatalf("dims = %dx%d want 15x5", r, c)
	}
	// Column s must equal subject s's vectorized connectome.
	v := cons[2].Vectorize()
	for i, want := range v {
		if g.At(i, 2) != want {
			t.Fatalf("column mismatch at feature %d", i)
		}
	}
}

func TestGroupMatrixErrors(t *testing.T) {
	if _, err := GroupMatrix(nil); err == nil {
		t.Error("expected error for empty group")
	}
	rng := rand.New(rand.NewSource(4))
	a, _ := FromRegionSeries(randomSeries(rng, 4, 30), Options{})
	b, _ := FromRegionSeries(randomSeries(rng, 5, 30), Options{})
	if _, err := GroupMatrix([]*Connectome{a, b}); err == nil {
		t.Error("expected error for mismatched region counts")
	}
}

func TestGroupMatrixFromVectors(t *testing.T) {
	g, err := GroupMatrixFromVectors([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("GroupMatrixFromVectors: %v", err)
	}
	if g.At(0, 1) != 3 || g.At(1, 0) != 2 {
		t.Errorf("layout wrong: %v", g)
	}
	if _, err := GroupMatrixFromVectors(nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := GroupMatrixFromVectors([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("expected error for ragged input")
	}
}

// Property: vectorization length always equals n(n−1)/2 and the edge
// index mapping is a bijection onto it.
func TestQuickEdgeIndexBijection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		total := n * (n - 1) / 2
		idx := rng.Intn(total)
		i, j, err := EdgeFromIndex(n, idx)
		if err != nil || i >= j {
			return false
		}
		back, err := EdgeIndex(n, i, j)
		return err == nil && back == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: connectome of any series is symmetric with entries in
// [−1, 1] (or the Fisher-z image of that interval).
func TestQuickConnectomeWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		regions := 2 + rng.Intn(8)
		frames := 3 + rng.Intn(40)
		c, err := FromRegionSeries(randomSeries(rng, regions, frames), Options{})
		if err != nil {
			return false
		}
		for i := 0; i < regions; i++ {
			for j := 0; j < regions; j++ {
				v := c.C.At(i, j)
				if v < -1-1e-9 || v > 1+1e-9 {
					return false
				}
				if math.Abs(v-c.C.At(j, i)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFromVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c, err := FromRegionSeries(randomSeries(rng, 7, 60), Options{})
	if err != nil {
		t.Fatalf("FromRegionSeries: %v", err)
	}
	back, err := FromVector(c.Vectorize(), 7)
	if err != nil {
		t.Fatalf("FromVector: %v", err)
	}
	if !back.C.EqualApprox(c.C, 1e-12) {
		t.Error("vectorize/FromVector round trip changed the connectome")
	}
}

func TestFromVectorValidation(t *testing.T) {
	if _, err := FromVector([]float64{1, 2}, 3); err == nil {
		t.Error("expected length error")
	}
	c, err := FromVector([]float64{0.5}, 2)
	if err != nil {
		t.Fatalf("FromVector: %v", err)
	}
	if c.C.At(0, 1) != 0.5 || c.C.At(1, 0) != 0.5 || c.C.At(0, 0) != 1 {
		t.Errorf("content wrong: %v", c.C)
	}
}
