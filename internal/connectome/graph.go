package connectome

import (
	"fmt"
	"math"
)

// This file provides the weighted-graph view of a connectome (§1 reads
// the co-firing matrix as "a weighted complete graph, where nodes
// correspond to regions and edge weights correspond to correlation in
// neuronal activity"). The metrics are the standard descriptive tools
// of connectomics; downstream analyses of a released dataset would
// compute statistics like these, which is why the defense experiment
// must preserve them.

// Degree returns, for every region, the number of incident edges whose
// absolute weight is at least threshold.
func (c *Connectome) Degree(threshold float64) []int {
	n := c.C.Rows()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if math.Abs(c.C.At(i, j)) >= threshold {
				out[i]++
			}
		}
	}
	return out
}

// Density returns the fraction of region pairs whose absolute
// correlation is at least threshold.
func (c *Connectome) Density(threshold float64) float64 {
	n := c.C.Rows()
	if n < 2 {
		return 0
	}
	count := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(c.C.At(i, j)) >= threshold {
				count++
			}
		}
	}
	return float64(count) / float64(n*(n-1)/2)
}

// ClusteringCoefficients returns the Onnela weighted clustering
// coefficient of every region: the geometric mean of triangle edge
// weights around the node, normalized by degree. Negative correlations
// contribute their absolute value (the standard convention for
// correlation networks). Regions with degree < 2 get coefficient 0.
func (c *Connectome) ClusteringCoefficients() []float64 {
	n := c.C.Rows()
	// Normalize weights to [0, 1] by the maximum absolute off-diagonal
	// weight, per Onnela et al.
	var wmax float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := math.Abs(c.C.At(i, j)); w > wmax {
				wmax = w
			}
		}
	}
	out := make([]float64, n)
	if wmax == 0 {
		return out
	}
	w := func(i, j int) float64 { return math.Abs(c.C.At(i, j)) / wmax }
	for i := 0; i < n; i++ {
		var sum float64
		deg := n - 1 // complete weighted graph
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			for k := j + 1; k < n; k++ {
				if k == i {
					continue
				}
				sum += math.Cbrt(w(i, j) * w(j, k) * w(i, k))
			}
		}
		out[i] = 2 * sum / float64(deg*(deg-1))
	}
	return out
}

// GlobalEfficiency returns the average inverse shortest-path length of
// the thresholded binary graph (edges where |w| ≥ threshold), the
// standard integration measure of connectomics. Disconnected pairs
// contribute 0. Runtime is O(n³) via BFS from every node.
func (c *Connectome) GlobalEfficiency(threshold float64) float64 {
	n := c.C.Rows()
	if n < 2 {
		return 0
	}
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && math.Abs(c.C.At(i, j)) >= threshold {
				adj[i] = append(adj[i], j)
			}
		}
	}
	var total float64
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], src)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if dist[nb] < 0 {
					dist[nb] = dist[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		for dst := 0; dst < n; dst++ {
			if dst != src && dist[dst] > 0 {
				total += 1 / float64(dist[dst])
			}
		}
	}
	return total / float64(n*(n-1))
}

// Summary holds headline graph statistics of a connectome, used by the
// defense experiment as a utility check: protection must not distort
// these beyond analysis tolerance.
type GraphSummary struct {
	MeanAbsWeight    float64
	Density          float64 // at |w| >= 0.3
	MeanClustering   float64
	GlobalEfficiency float64 // at |w| >= 0.3
}

// Summarize computes the graph summary.
func (c *Connectome) Summarize() GraphSummary {
	n := c.C.Rows()
	var sum float64
	count := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += math.Abs(c.C.At(i, j))
			count++
		}
	}
	mean := 0.0
	if count > 0 {
		mean = sum / float64(count)
	}
	cc := c.ClusteringCoefficients()
	var ccMean float64
	for _, v := range cc {
		ccMean += v
	}
	if n > 0 {
		ccMean /= float64(n)
	}
	return GraphSummary{
		MeanAbsWeight:    mean,
		Density:          c.Density(0.3),
		MeanClustering:   ccMean,
		GlobalEfficiency: c.GlobalEfficiency(0.3),
	}
}

// String renders the summary compactly.
func (g GraphSummary) String() string {
	return fmt.Sprintf("mean|w|=%.3f density@0.3=%.3f clustering=%.3f efficiency@0.3=%.3f",
		g.MeanAbsWeight, g.Density, g.MeanClustering, g.GlobalEfficiency)
}
