package svr

import (
	"math"
	"math/rand"
	"testing"

	"brainprint/internal/linalg"
	"brainprint/internal/stats"
)

// linearProblem builds y = w·x + b + noise.
func linearProblem(rng *rand.Rand, samples, features int, noise float64) (*linalg.Matrix, []float64, []float64) {
	w := make([]float64, features)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	x := linalg.NewMatrix(samples, features)
	y := make([]float64, samples)
	for i := 0; i < samples; i++ {
		var s float64
		for j := 0; j < features; j++ {
			v := rng.NormFloat64()
			x.Set(i, j, v)
			s += w[j] * v
		}
		y[i] = s + 3 + noise*rng.NormFloat64()
	}
	return x, y, w
}

func TestTrainValidation(t *testing.T) {
	x := linalg.NewMatrix(5, 3)
	if _, err := Train(x, []float64{1, 2}, Config{}); err == nil {
		t.Error("expected sample/target mismatch error")
	}
	if _, err := Train(linalg.NewMatrix(1, 3), []float64{1}, Config{}); err == nil {
		t.Error("expected too-few-samples error")
	}
	if _, err := Train(linalg.NewMatrix(5, 0), make([]float64, 5), Config{}); err == nil {
		t.Error("expected no-features error")
	}
}

func TestTrainRecoversLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y, _ := linearProblem(rng, 120, 8, 0.05)
	model, err := Train(x, y, Config{Epochs: 300, Seed: 2})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	pred, err := model.PredictBatch(x)
	if err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	rmse, _ := stats.RMSE(pred, y)
	ySd := stats.StdDev(y)
	if rmse > 0.15*ySd {
		t.Errorf("train RMSE %.4f too high relative to target sd %.4f", rmse, ySd)
	}
}

func TestTrainGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xTrain, yTrain, w := linearProblem(rng, 150, 5, 0.05)
	model, err := Train(xTrain, yTrain, Config{Epochs: 300, Seed: 4})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Fresh test data from the same generating function.
	xTest := linalg.NewMatrix(50, 5)
	yTest := make([]float64, 50)
	for i := 0; i < 50; i++ {
		var s float64
		for j := 0; j < 5; j++ {
			v := rng.NormFloat64()
			xTest.Set(i, j, v)
			s += w[j] * v
		}
		yTest[i] = s + 3
	}
	pred, _ := model.PredictBatch(xTest)
	rmse, _ := stats.RMSE(pred, yTest)
	if rmse > 0.2*stats.StdDev(yTest) {
		t.Errorf("test RMSE %.4f too high", rmse)
	}
}

func TestPredictDimensionCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y, _ := linearProblem(rng, 20, 4, 0.1)
	model, _ := Train(x, y, Config{Epochs: 50})
	if _, err := model.Predict([]float64{1, 2}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestEpsilonInsensitivity(t *testing.T) {
	// With a huge epsilon tube, everything is inside the tube and the
	// model should stay near the mean predictor.
	rng := rand.New(rand.NewSource(6))
	x, y, _ := linearProblem(rng, 80, 4, 0.05)
	model, err := Train(x, y, Config{Epsilon: 100, Epochs: 100, Seed: 7})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	pred, _ := model.PredictBatch(x)
	// Predictions should be roughly constant at the target mean.
	if sd := stats.StdDev(pred); sd > 0.2*stats.StdDev(y) {
		t.Errorf("huge-epsilon model should be near-constant, pred sd=%v", sd)
	}
	if math.Abs(stats.Mean(pred)-stats.Mean(y)) > 0.2*stats.StdDev(y) {
		t.Errorf("huge-epsilon model should predict the mean")
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	// A constant column must not produce NaNs (guarded standardization).
	rng := rand.New(rand.NewSource(8))
	x := linalg.NewMatrix(30, 3)
	y := make([]float64, 30)
	for i := 0; i < 30; i++ {
		x.Set(i, 0, 5) // constant
		x.Set(i, 1, rng.NormFloat64())
		x.Set(i, 2, rng.NormFloat64())
		y[i] = 2*x.At(i, 1) + rng.NormFloat64()*0.1
	}
	model, err := Train(x, y, Config{Epochs: 100, Seed: 9})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	pred, _ := model.PredictBatch(x)
	for _, v := range pred {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("NaN/Inf prediction from constant feature")
		}
	}
}

func TestRidgeRecoversLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x, y, _ := linearProblem(rng, 100, 6, 0.05)
	model, err := Ridge(x, y, 1e-4)
	if err != nil {
		t.Fatalf("Ridge: %v", err)
	}
	pred, _ := model.PredictBatch(x)
	rmse, _ := stats.RMSE(pred, y)
	if rmse > 0.1*stats.StdDev(y) {
		t.Errorf("ridge RMSE %.4f too high", rmse)
	}
}

func TestRidgeValidation(t *testing.T) {
	if _, err := Ridge(linalg.NewMatrix(3, 2), []float64{1, 2}, 1); err == nil {
		t.Error("expected mismatch error")
	}
	if _, err := Ridge(linalg.NewMatrix(1, 2), []float64{1}, 1); err == nil {
		t.Error("expected degenerate error")
	}
}

func TestRidgeShrinksWithLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y, _ := linearProblem(rng, 60, 4, 0.3)
	small, err := Ridge(x, y, 1e-6)
	if err != nil {
		t.Fatalf("Ridge: %v", err)
	}
	big, err := Ridge(x, y, 1e3)
	if err != nil {
		t.Fatalf("Ridge: %v", err)
	}
	ns := linalg.Norm2(small.weights)
	nb := linalg.Norm2(big.weights)
	if nb >= ns {
		t.Errorf("large lambda should shrink weights: %v vs %v", nb, ns)
	}
}

func TestConstantTargetsHandled(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := linalg.NewMatrix(20, 3)
	for i := 0; i < 20; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
	}
	y := make([]float64, 20)
	for i := range y {
		y[i] = 7
	}
	model, err := Train(x, y, Config{Epochs: 50, Seed: 13})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	v, _ := model.Predict(x.RowView(0))
	if math.Abs(v-7) > 0.5 {
		t.Errorf("constant targets should predict ≈7, got %v", v)
	}
}
