// Package svr implements linear ε-insensitive support vector regression,
// the model §3.3.3 trains on leverage-selected connectome features to
// predict task performance, plus a ridge-regression baseline used by the
// ablation benchmarks.
//
// Training uses dual coordinate descent (Ho & Lin 2012, the LIBLINEAR
// L1-loss SVR algorithm): with Q = XXᵀ the dual is
//
//	min_β  ½·βᵀQβ − yᵀβ + ε·‖β‖₁   subject to |βᵢ| ≤ C,
//
// where w = Σ βᵢ·xᵢ. Each coordinate update is a closed-form
// soft-threshold followed by box clipping, so the objective decreases
// monotonically and converges quickly on the paper's problem sizes
// (tens of samples × ≤ a few hundred features). Features and targets
// are standardized internally and restored at prediction time.
package svr

import (
	"fmt"
	"math"
	"math/rand"

	"brainprint/internal/linalg"
	"brainprint/internal/stats"
)

// Config holds SVR hyperparameters. Zero fields take defaults.
type Config struct {
	// Epsilon is the insensitive-tube half-width in standardized target
	// units; default 0.05.
	Epsilon float64
	// C is the per-sample loss weight (larger = harder fit); default 10.
	C float64
	// Epochs bounds the number of full coordinate passes; default 200.
	Epochs int
	// Tol stops training when the largest dual-variable change in a pass
	// falls below it; default 1e-6.
	Tol float64
	// Seed drives the coordinate-order shuffling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Epsilon <= 0 {
		c.Epsilon = 0.05
	}
	if c.C <= 0 {
		c.C = 10
	}
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	return c
}

// Model is a trained regressor in original feature/target units.
type Model struct {
	weights   []float64 // in standardized feature space
	bias      float64   // in standardized target space
	featMean  []float64
	featScale []float64
	yMean     float64
	yScale    float64
}

// Train fits a linear ε-SVR on x (samples × features) and targets y.
func Train(x *linalg.Matrix, y []float64, cfg Config) (*Model, error) {
	m, d := x.Dims()
	if m != len(y) {
		return nil, fmt.Errorf("svr: %d samples but %d targets", m, len(y))
	}
	if m < 2 {
		return nil, fmt.Errorf("svr: need at least 2 samples, got %d", m)
	}
	if d == 0 {
		return nil, fmt.Errorf("svr: no features")
	}
	cfg = cfg.withDefaults()

	model := &Model{
		weights:   make([]float64, d),
		featMean:  make([]float64, d),
		featScale: make([]float64, d),
	}
	xs := standardizeFeatures(x, model)
	model.yMean = stats.Mean(y)
	model.yScale = stats.StdDev(y)
	if model.yScale == 0 {
		model.yScale = 1
	}
	ys := make([]float64, m)
	for i, v := range y {
		ys[i] = (v - model.yMean) / model.yScale
	}

	// Dual coordinate descent. Because both features and targets are
	// centred, the optimal bias is ~0 and is omitted (absorbed by the
	// de-standardization at prediction time).
	w := make([]float64, d)
	beta := make([]float64, m)
	qdiag := make([]float64, m)
	for i := 0; i < m; i++ {
		xi := xs.RowView(i)
		qdiag[i] = linalg.Dot(xi, xi)
		if qdiag[i] == 0 {
			qdiag[i] = 1e-12
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(m)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		maxChange := 0.0
		for _, i := range order {
			xi := xs.RowView(i)
			g := linalg.Dot(w, xi) - ys[i]
			// Minimize ½·Qii·z² + (g − Qii·βᵢ)·z + ε|z| over z ∈ [−C, C].
			b := g - qdiag[i]*beta[i]
			z := softThreshold(-b, cfg.Epsilon) / qdiag[i]
			if z > cfg.C {
				z = cfg.C
			} else if z < -cfg.C {
				z = -cfg.C
			}
			delta := z - beta[i]
			if delta != 0 {
				linalg.Axpy(delta, xi, w)
				beta[i] = z
			}
			if a := math.Abs(delta); a > maxChange {
				maxChange = a
			}
		}
		if maxChange < cfg.Tol {
			break
		}
	}
	copy(model.weights, w)
	return model, nil
}

// softThreshold is the proximal operator of ε|·|.
func softThreshold(u, eps float64) float64 {
	switch {
	case u > eps:
		return u - eps
	case u < -eps:
		return u + eps
	default:
		return 0
	}
}

// standardizeFeatures fills the model's feature statistics and returns
// the standardized copy of x.
func standardizeFeatures(x *linalg.Matrix, model *Model) *linalg.Matrix {
	m, d := x.Dims()
	xs := linalg.NewMatrix(m, d)
	for j := 0; j < d; j++ {
		col := x.Col(j)
		model.featMean[j] = stats.Mean(col)
		sd := stats.StdDev(col)
		if sd == 0 {
			sd = 1
		}
		model.featScale[j] = sd
		for i := 0; i < m; i++ {
			xs.Set(i, j, (col[i]-model.featMean[j])/sd)
		}
	}
	return xs
}

// Predict evaluates the model on one sample in original units.
func (m *Model) Predict(x []float64) (float64, error) {
	if len(x) != len(m.weights) {
		return 0, fmt.Errorf("svr: sample has %d features, model expects %d", len(x), len(m.weights))
	}
	var s float64
	for j, v := range x {
		s += m.weights[j] * (v - m.featMean[j]) / m.featScale[j]
	}
	return (s+m.bias)*m.yScale + m.yMean, nil
}

// PredictBatch evaluates the model on every row of x.
func (m *Model) PredictBatch(x *linalg.Matrix) ([]float64, error) {
	rows, _ := x.Dims()
	out := make([]float64, rows)
	for i := 0; i < rows; i++ {
		v, err := m.Predict(x.RowView(i))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Ridge fits closed-form L2-regularized least squares (the ablation
// baseline): w = (XᵀX + λmI)⁻¹Xᵀy on standardized data.
func Ridge(x *linalg.Matrix, y []float64, lambda float64) (*Model, error) {
	m, d := x.Dims()
	if m != len(y) {
		return nil, fmt.Errorf("svr: %d samples but %d targets", m, len(y))
	}
	if m < 2 || d == 0 {
		return nil, fmt.Errorf("svr: degenerate problem %dx%d", m, d)
	}
	if lambda <= 0 {
		lambda = 1e-6
	}
	model := &Model{
		weights:   make([]float64, d),
		featMean:  make([]float64, d),
		featScale: make([]float64, d),
		yScale:    1,
	}
	xs := standardizeFeatures(x, model)
	model.yMean = stats.Mean(y)
	yc := make([]float64, m)
	for i, v := range y {
		yc[i] = v - model.yMean
	}
	// Normal equations with Tikhonov damping.
	gram := xs.Gram()
	for i := 0; i < d; i++ {
		gram.Set(i, i, gram.At(i, i)+lambda*float64(m))
	}
	rhs := xs.T().MulVec(yc)
	// Solve via eigendecomposition (gram is symmetric PSD + λI ≻ 0).
	eig, err := linalg.SymEigen(gram)
	if err != nil {
		return nil, err
	}
	// w = V Λ⁻¹ Vᵀ rhs
	vtr := eig.Vectors.T().MulVec(rhs)
	for k := range vtr {
		if eig.Values[k] > 0 {
			vtr[k] /= eig.Values[k]
		} else {
			vtr[k] = 0
		}
	}
	model.weights = eig.Vectors.MulVec(vtr)
	if math.IsNaN(model.weights[0]) {
		return nil, fmt.Errorf("svr: ridge solve failed")
	}
	return model, nil
}
