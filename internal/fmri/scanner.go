package fmri

import (
	"fmt"
	"math"
	"math/rand"
)

// ActivitySource supplies the neuronal activity that drives the BOLD
// signal: Value returns the fractional signal modulation for the i-th
// brain voxel (in Phantom.BrainVoxel order) at the given frame.
type ActivitySource interface {
	Value(brainVoxel, frame int) float64
}

// RegionActivity adapts region-level time series to voxel-level
// activity: every voxel of a region follows the region's series, plus
// optional per-voxel independent jitter.
type RegionActivity struct {
	// Labels maps each brain voxel ordinal to a region id in
	// [0, len(Series)).
	Labels []int
	// Series holds one time series per region.
	Series [][]float64
	// VoxelJitter adds iid Gaussian noise of this standard deviation to
	// each voxel sample, modelling within-region heterogeneity.
	VoxelJitter float64
	// Rng drives the jitter; required when VoxelJitter > 0.
	Rng *rand.Rand
}

// Value implements ActivitySource.
func (r *RegionActivity) Value(brainVoxel, frame int) float64 {
	region := r.Labels[brainVoxel]
	v := r.Series[region][frame]
	if r.VoxelJitter > 0 {
		v += r.VoxelJitter * r.Rng.NormFloat64()
	}
	return v
}

// MotionTrace records the simulated rigid translation of the head at
// each frame, in voxels. It is the ground truth against which motion
// correction can be validated.
type MotionTrace struct {
	DX, DY, DZ []float64
}

// AcquisitionParams configures the scanner simulation.
type AcquisitionParams struct {
	TR             float64 // repetition time, seconds
	Frames         int     // number of time points
	BOLDAmplitude  float64 // fractional signal change per unit activity (≈0.02)
	MotionMax      float64 // maximum head translation, voxels
	BiasStrength   float64 // multiplicative bias-field amplitude (fraction)
	DriftAmplitude float64 // scanner drift over the full scan (fraction)
	PhysioAmp      float64 // cardiac/respiratory oscillation amplitude (fraction)
	ThermalNoise   float64 // iid noise std as a fraction of brain intensity
	SiteGain       float64 // site-specific global gain (1 = reference site)
}

// DefaultAcquisitionParams returns a parameterization loosely matching
// the HCP protocol (TR = 0.72 s) with mild, realistic artifact levels.
func DefaultAcquisitionParams() AcquisitionParams {
	return AcquisitionParams{
		TR:             0.72,
		Frames:         200,
		BOLDAmplitude:  0.02,
		MotionMax:      1.0,
		BiasStrength:   0.15,
		DriftAmplitude: 0.03,
		PhysioAmp:      0.005,
		ThermalNoise:   0.01,
		SiteGain:       1,
	}
}

// Acquire simulates a full fMRI scan of the phantom driven by the
// activity source and returns the raw series together with the ground
// truth motion trace. The raw series contains every artifact the
// preprocessing pipeline must remove.
func Acquire(ph *Phantom, activity ActivitySource, p AcquisitionParams, rng *rand.Rand) (*Series, *MotionTrace, error) {
	if p.Frames <= 0 {
		return nil, nil, fmt.Errorf("fmri: nonpositive frame count %d", p.Frames)
	}
	if p.TR <= 0 {
		return nil, nil, fmt.Errorf("fmri: nonpositive TR %v", p.TR)
	}
	if p.SiteGain == 0 {
		p.SiteGain = 1
	}
	g := ph.Grid
	series, err := NewSeries(g, p.TR, p.Frames)
	if err != nil {
		return nil, nil, err
	}

	bias := biasField(g, p.BiasStrength, rng)
	motion := randomWalkMotion(p.Frames, p.MotionMax, rng)

	// Physiological oscillations: cardiac (~1.1 Hz) and respiratory
	// (~0.3 Hz), sampled (and aliased) at the TR, with random phases.
	cardiacPhase := rng.Float64() * 2 * math.Pi
	respPhase := rng.Float64() * 2 * math.Pi

	baseMean := 0.0
	for _, idx := range ph.BrainVoxel {
		baseMean += ph.Baseline.Data[idx]
	}
	baseMean /= float64(len(ph.BrainVoxel))
	noiseStd := p.ThermalNoise * baseMean

	for t := 0; t < p.Frames; t++ {
		tt := float64(t) * p.TR
		drift := p.DriftAmplitude * float64(t) / float64(p.Frames)
		physio := p.PhysioAmp * (math.Sin(2*math.Pi*1.1*tt+cardiacPhase) + math.Sin(2*math.Pi*0.3*tt+respPhase))

		frame := NewVolume(g)
		// Static tissue with bias field and site gain.
		for i, v := range ph.Baseline.Data {
			frame.Data[i] = v * bias.Data[i] * p.SiteGain * (1 + drift)
		}
		// BOLD modulation of brain voxels.
		for ord, idx := range ph.BrainVoxel {
			act := activity.Value(ord, t)
			frame.Data[idx] *= 1 + p.BOLDAmplitude*act + physio
		}
		// Thermal noise everywhere.
		if noiseStd > 0 {
			for i := range frame.Data {
				frame.Data[i] += noiseStd * rng.NormFloat64()
			}
		}
		// Head motion: rigid translation of the whole head.
		if motion.DX[t] != 0 || motion.DY[t] != 0 || motion.DZ[t] != 0 {
			frame = frame.Shifted(motion.DX[t], motion.DY[t], motion.DZ[t])
		}
		series.Frames[t] = frame
	}
	return series, motion, nil
}

// biasField generates a smooth multiplicative field 1 + strength·f where
// f is a random low-order combination of cosines normalized to ≈[−1, 1].
func biasField(g Grid, strength float64, rng *rand.Rand) *Volume {
	out := NewVolume(g)
	if strength == 0 {
		for i := range out.Data {
			out.Data[i] = 1
		}
		return out
	}
	// Random low-frequency coefficients.
	type mode struct {
		kx, ky, kz float64
		amp, phase float64
	}
	modes := make([]mode, 3)
	var totalAmp float64
	for i := range modes {
		modes[i] = mode{
			kx:    float64(rng.Intn(2) + 1),
			ky:    float64(rng.Intn(2) + 1),
			kz:    float64(rng.Intn(2) + 1),
			amp:   0.5 + rng.Float64(),
			phase: rng.Float64() * 2 * math.Pi,
		}
		totalAmp += modes[i].amp
	}
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				var f float64
				for _, m := range modes {
					f += m.amp * math.Cos(math.Pi*(m.kx*float64(x)/float64(g.NX)+
						m.ky*float64(y)/float64(g.NY)+
						m.kz*float64(z)/float64(g.NZ))+m.phase)
				}
				out.Data[g.Index(x, y, z)] = 1 + strength*f/totalAmp
			}
		}
	}
	return out
}

// randomWalkMotion generates a bounded random-walk translation trace.
func randomWalkMotion(frames int, maxShift float64, rng *rand.Rand) *MotionTrace {
	m := &MotionTrace{
		DX: make([]float64, frames),
		DY: make([]float64, frames),
		DZ: make([]float64, frames),
	}
	if maxShift == 0 {
		return m
	}
	step := maxShift / 20
	walk := func(out []float64) {
		var v float64
		for t := range out {
			v += step * rng.NormFloat64()
			if v > maxShift {
				v = maxShift
			} else if v < -maxShift {
				v = -maxShift
			}
			out[t] = v
		}
	}
	walk(m.DX)
	walk(m.DY)
	walk(m.DZ)
	return m
}
