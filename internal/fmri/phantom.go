package fmri

import (
	"fmt"
	"math"
	"math/rand"
)

// Phantom is a digital head phantom: an ellipsoidal "brain" of gray
// matter surrounded by a bright "skull" shell, used as the anatomical
// substrate for simulated acquisitions. Skull voxels are what the
// skull-stripping preprocessing step must remove.
type Phantom struct {
	Grid       Grid
	BrainMask  []bool  // true for brain voxels
	SkullMask  []bool  // true for skull voxels
	Baseline   *Volume // baseline intensity image (brain + skull + air)
	BrainVoxel []int   // flat indices of brain voxels, in scan order
	radii      [3]float64
}

// PhantomParams controls phantom construction.
type PhantomParams struct {
	BrainScale     float64 // brain radius as a fraction of the half-grid (default 0.7)
	SkullThickness float64 // skull shell thickness in voxels (default 2)
	BrainIntensity float64 // mean brain baseline (default 1000)
	SkullIntensity float64 // mean skull baseline (default 2500): skull is bright in raw images
	IntensityNoise float64 // per-voxel baseline variability fraction (default 0.05)
}

// DefaultPhantomParams returns parameters loosely calibrated to the
// contrast of a raw EPI image.
func DefaultPhantomParams() PhantomParams {
	return PhantomParams{
		BrainScale:     0.7,
		SkullThickness: 2,
		BrainIntensity: 1000,
		SkullIntensity: 2500,
		IntensityNoise: 0.05,
	}
}

// NewPhantom builds a head phantom on g. BrainScale may vary per subject
// to model differing head sizes (the registration step normalizes this
// away). rng drives the per-voxel baseline variability.
func NewPhantom(g Grid, p PhantomParams, rng *rand.Rand) (*Phantom, error) {
	if p.BrainScale <= 0 || p.BrainScale > 0.95 {
		return nil, fmt.Errorf("fmri: brain scale %v out of (0, 0.95]", p.BrainScale)
	}
	if p.SkullThickness < 0 {
		return nil, fmt.Errorf("fmri: negative skull thickness %v", p.SkullThickness)
	}
	ph := &Phantom{
		Grid:      g,
		BrainMask: make([]bool, g.NumVoxels()),
		SkullMask: make([]bool, g.NumVoxels()),
		Baseline:  NewVolume(g),
	}
	cx := float64(g.NX-1) / 2
	cy := float64(g.NY-1) / 2
	cz := float64(g.NZ-1) / 2
	// Slightly anisotropic ellipsoid, like a head.
	rx := p.BrainScale * cx
	ry := p.BrainScale * cy * 1.1
	rz := p.BrainScale * cz * 0.95
	ph.radii = [3]float64{rx, ry, rz}
	skullR := 1 + p.SkullThickness/math.Min(rx, math.Min(ry, rz))
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				dx := (float64(x) - cx) / rx
				dy := (float64(y) - cy) / ry
				dz := (float64(z) - cz) / rz
				r := math.Sqrt(dx*dx + dy*dy + dz*dz)
				idx := g.Index(x, y, z)
				switch {
				case r <= 1:
					ph.BrainMask[idx] = true
					ph.BrainVoxel = append(ph.BrainVoxel, idx)
					ph.Baseline.Data[idx] = p.BrainIntensity * (1 + p.IntensityNoise*rng.NormFloat64())
				case r <= skullR:
					ph.SkullMask[idx] = true
					ph.Baseline.Data[idx] = p.SkullIntensity * (1 + p.IntensityNoise*rng.NormFloat64())
				default:
					// Air: low-intensity background noise floor.
					ph.Baseline.Data[idx] = math.Abs(20 * rng.NormFloat64())
				}
			}
		}
	}
	if len(ph.BrainVoxel) == 0 {
		return nil, fmt.Errorf("fmri: phantom has no brain voxels (grid too small?)")
	}
	return ph, nil
}

// NumBrainVoxels returns the brain voxel count.
func (p *Phantom) NumBrainVoxels() int { return len(p.BrainVoxel) }

// NormalizedCoords returns the position of a brain voxel in the unit
// ball of the brain ellipsoid: each component in [−1, 1]. Atlases are
// defined on these normalized coordinates so the same parcellation
// applies to phantoms of different sizes.
func (p *Phantom) NormalizedCoords(idx int) (nx, ny, nz float64) {
	x, y, z := p.Grid.Coords(idx)
	cx := float64(p.Grid.NX-1) / 2
	cy := float64(p.Grid.NY-1) / 2
	cz := float64(p.Grid.NZ-1) / 2
	return (float64(x) - cx) / p.radii[0], (float64(y) - cy) / p.radii[1], (float64(z) - cz) / p.radii[2]
}
