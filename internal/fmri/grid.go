// Package fmri models functional MRI data and its acquisition: 3-D
// volumes, 4-D time series, a digital brain phantom, and a scanner
// simulator that injects the spatial and temporal artifacts the
// preprocessing pipeline of the paper (Figure 4) is designed to remove —
// head motion, magnetic-field bias, low-frequency drift, physiological
// oscillations and thermal noise.
//
// The paper evaluates on Human Connectome Project acquisitions that we
// cannot redistribute; this package provides the synthetic stand-in that
// exercises the same code paths (see DESIGN.md, "Data substitution").
package fmri

import "fmt"

// Grid describes the spatial sampling of a volume: dimensions in voxels
// and isotropic voxel size in millimetres.
type Grid struct {
	NX, NY, NZ int
	VoxelMM    float64
}

// NewGrid returns a grid after validating the dimensions.
func NewGrid(nx, ny, nz int, voxelMM float64) (Grid, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return Grid{}, fmt.Errorf("fmri: nonpositive grid dimensions %dx%dx%d", nx, ny, nz)
	}
	if voxelMM <= 0 {
		return Grid{}, fmt.Errorf("fmri: nonpositive voxel size %v", voxelMM)
	}
	return Grid{NX: nx, NY: ny, NZ: nz, VoxelMM: voxelMM}, nil
}

// NumVoxels returns the total voxel count.
func (g Grid) NumVoxels() int { return g.NX * g.NY * g.NZ }

// Index converts (x, y, z) coordinates to a flat voxel index.
// It panics when the coordinates are out of range.
func (g Grid) Index(x, y, z int) int {
	if !g.InBounds(x, y, z) {
		panic(fmt.Sprintf("fmri: voxel (%d,%d,%d) out of grid %dx%dx%d", x, y, z, g.NX, g.NY, g.NZ))
	}
	return (z*g.NY+y)*g.NX + x
}

// Coords converts a flat voxel index back to (x, y, z).
func (g Grid) Coords(idx int) (x, y, z int) {
	if idx < 0 || idx >= g.NumVoxels() {
		panic(fmt.Sprintf("fmri: index %d out of grid with %d voxels", idx, g.NumVoxels()))
	}
	x = idx % g.NX
	y = (idx / g.NX) % g.NY
	z = idx / (g.NX * g.NY)
	return x, y, z
}

// InBounds reports whether (x, y, z) lies inside the grid.
func (g Grid) InBounds(x, y, z int) bool {
	return x >= 0 && x < g.NX && y >= 0 && y < g.NY && z >= 0 && z < g.NZ
}

// Equal reports whether two grids have identical shape and voxel size.
func (g Grid) Equal(o Grid) bool { return g == o }

// MNIGrid returns the "standard space" grid all subjects are registered
// to, loosely modelled on a downsampled MNI template. Tests and the
// synthetic experiments use small grids for speed; this helper fixes a
// common default.
func MNIGrid(n int) Grid {
	return Grid{NX: n, NY: n, NZ: n, VoxelMM: 2}
}
