package fmri

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testGrid(t *testing.T, n int) Grid {
	t.Helper()
	g, err := NewGrid(n, n, n, 2)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 1, 1, 2); err == nil {
		t.Error("expected error for zero dimension")
	}
	if _, err := NewGrid(2, 2, 2, 0); err == nil {
		t.Error("expected error for zero voxel size")
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := testGrid(t, 5)
	for z := 0; z < 5; z++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 5; x++ {
				idx := g.Index(x, y, z)
				gx, gy, gz := g.Coords(idx)
				if gx != x || gy != y || gz != z {
					t.Fatalf("round trip (%d,%d,%d) -> %d -> (%d,%d,%d)", x, y, z, idx, gx, gy, gz)
				}
			}
		}
	}
}

func TestGridIndexPanics(t *testing.T) {
	g := testGrid(t, 3)
	defer func() {
		if recover() == nil {
			t.Error("Index out of range should panic")
		}
	}()
	g.Index(3, 0, 0)
}

func TestVolumeAtSetClone(t *testing.T) {
	g := testGrid(t, 4)
	v := NewVolume(g)
	v.Set(1, 2, 3, 42)
	if v.At(1, 2, 3) != 42 {
		t.Error("At/Set mismatch")
	}
	c := v.Clone()
	c.Set(1, 2, 3, 0)
	if v.At(1, 2, 3) != 42 {
		t.Error("Clone aliases original")
	}
}

func TestVolumeMean(t *testing.T) {
	g := testGrid(t, 2)
	v := NewVolume(g)
	for i := range v.Data {
		v.Data[i] = 3
	}
	if v.Mean() != 3 {
		t.Errorf("Mean = %v want 3", v.Mean())
	}
}

func TestInterpolateExactAtGridPoints(t *testing.T) {
	g := testGrid(t, 4)
	v := NewVolume(g)
	rng := rand.New(rand.NewSource(1))
	for i := range v.Data {
		v.Data[i] = rng.Float64()
	}
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				got := v.Interpolate(float64(x), float64(y), float64(z))
				want := v.At(x, y, z)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("Interpolate(%d,%d,%d) = %v want %v", x, y, z, got, want)
				}
			}
		}
	}
}

func TestInterpolateMidpoint(t *testing.T) {
	g := testGrid(t, 2)
	v := NewVolume(g)
	v.Set(0, 0, 0, 0)
	v.Set(1, 0, 0, 10)
	got := v.Interpolate(0.5, 0, 0)
	if math.Abs(got-5) > 1e-12 {
		t.Errorf("midpoint = %v want 5", got)
	}
}

func TestShiftedInverseRecovers(t *testing.T) {
	g := testGrid(t, 8)
	v := NewVolume(g)
	// Smooth content so interpolation round trip is accurate.
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				v.Set(x, y, z, math.Sin(float64(x))+math.Cos(float64(y))+0.5*float64(z))
			}
		}
	}
	shifted := v.Shifted(1, 0, 0)
	back := shifted.Shifted(-1, 0, 0)
	// Compare interior voxels only (edges replicate).
	for z := 2; z < 6; z++ {
		for y := 2; y < 6; y++ {
			for x := 2; x < 6; x++ {
				if math.Abs(back.At(x, y, z)-v.At(x, y, z)) > 1e-9 {
					t.Fatalf("shift round trip failed at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestNewSeriesValidation(t *testing.T) {
	g := testGrid(t, 2)
	if _, err := NewSeries(g, 0, 5); err == nil {
		t.Error("expected error for TR=0")
	}
	if _, err := NewSeries(g, 1, 0); err == nil {
		t.Error("expected error for 0 frames")
	}
}

func TestVoxelSeriesRoundTrip(t *testing.T) {
	g := testGrid(t, 2)
	s, err := NewSeries(g, 0.72, 10)
	if err != nil {
		t.Fatalf("NewSeries: %v", err)
	}
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = float64(i)
	}
	s.SetVoxelSeries(3, vals)
	got := s.VoxelSeries(3)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("VoxelSeries mismatch at %d", i)
		}
	}
}

func TestMeanVolumeAndGlobalSignal(t *testing.T) {
	g := testGrid(t, 2)
	s, _ := NewSeries(g, 1, 2)
	for i := range s.Frames[0].Data {
		s.Frames[0].Data[i] = 2
		s.Frames[1].Data[i] = 4
	}
	mv := s.MeanVolume()
	if mv.Data[0] != 3 {
		t.Errorf("MeanVolume = %v want 3", mv.Data[0])
	}
	gs := s.GlobalSignal(nil)
	if gs[0] != 2 || gs[1] != 4 {
		t.Errorf("GlobalSignal = %v", gs)
	}
	mask := make([]bool, g.NumVoxels())
	mask[0] = true
	s.Frames[0].Data[0] = 100
	gs = s.GlobalSignal(mask)
	if gs[0] != 100 {
		t.Errorf("masked GlobalSignal = %v want 100", gs[0])
	}
}

func TestPhantomConstruction(t *testing.T) {
	g := testGrid(t, 16)
	rng := rand.New(rand.NewSource(7))
	ph, err := NewPhantom(g, DefaultPhantomParams(), rng)
	if err != nil {
		t.Fatalf("NewPhantom: %v", err)
	}
	if ph.NumBrainVoxels() == 0 {
		t.Fatal("no brain voxels")
	}
	// Brain and skull masks are disjoint.
	for i := range ph.BrainMask {
		if ph.BrainMask[i] && ph.SkullMask[i] {
			t.Fatal("brain and skull masks overlap")
		}
	}
	// Skull is brighter than brain on average.
	var brainSum, skullSum float64
	var brainN, skullN int
	for i, v := range ph.Baseline.Data {
		if ph.BrainMask[i] {
			brainSum += v
			brainN++
		} else if ph.SkullMask[i] {
			skullSum += v
			skullN++
		}
	}
	if skullN == 0 {
		t.Fatal("no skull voxels")
	}
	if skullSum/float64(skullN) <= brainSum/float64(brainN) {
		t.Error("skull should be brighter than brain")
	}
	// Center voxel is brain.
	center := g.Index(8, 8, 8)
	if !ph.BrainMask[center] {
		t.Error("grid centre should be brain")
	}
}

func TestPhantomValidation(t *testing.T) {
	g := testGrid(t, 8)
	rng := rand.New(rand.NewSource(1))
	p := DefaultPhantomParams()
	p.BrainScale = 0
	if _, err := NewPhantom(g, p, rng); err == nil {
		t.Error("expected error for zero brain scale")
	}
	p = DefaultPhantomParams()
	p.SkullThickness = -1
	if _, err := NewPhantom(g, p, rng); err == nil {
		t.Error("expected error for negative skull thickness")
	}
}

func TestNormalizedCoordsInUnitBall(t *testing.T) {
	g := testGrid(t, 12)
	rng := rand.New(rand.NewSource(8))
	ph, err := NewPhantom(g, DefaultPhantomParams(), rng)
	if err != nil {
		t.Fatalf("NewPhantom: %v", err)
	}
	for _, idx := range ph.BrainVoxel {
		nx, ny, nz := ph.NormalizedCoords(idx)
		if r := math.Sqrt(nx*nx + ny*ny + nz*nz); r > 1+1e-9 {
			t.Fatalf("brain voxel %d outside unit ball: r=%v", idx, r)
		}
	}
}

func constantActivity(val float64, frames int) *RegionActivity {
	series := make([]float64, frames)
	for i := range series {
		series[i] = val
	}
	return &RegionActivity{Labels: nil, Series: [][]float64{series}}
}

func TestAcquireBasics(t *testing.T) {
	g := testGrid(t, 12)
	rng := rand.New(rand.NewSource(9))
	ph, err := NewPhantom(g, DefaultPhantomParams(), rng)
	if err != nil {
		t.Fatalf("NewPhantom: %v", err)
	}
	labels := make([]int, ph.NumBrainVoxels())
	act := &RegionActivity{Labels: labels, Series: [][]float64{make([]float64, 20)}}
	p := DefaultAcquisitionParams()
	p.Frames = 20
	s, motion, err := Acquire(ph, act, p, rng)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if s.NumFrames() != 20 {
		t.Errorf("frames = %d want 20", s.NumFrames())
	}
	if len(motion.DX) != 20 {
		t.Errorf("motion trace length = %d", len(motion.DX))
	}
	// Motion bounded.
	for t2 := range motion.DX {
		if math.Abs(motion.DX[t2]) > p.MotionMax+1e-9 {
			t.Errorf("motion exceeds bound: %v", motion.DX[t2])
		}
	}
}

func TestAcquireValidation(t *testing.T) {
	g := testGrid(t, 8)
	rng := rand.New(rand.NewSource(10))
	ph, _ := NewPhantom(g, DefaultPhantomParams(), rng)
	labels := make([]int, ph.NumBrainVoxels())
	act := &RegionActivity{Labels: labels, Series: [][]float64{make([]float64, 5)}}
	p := DefaultAcquisitionParams()
	p.Frames = 0
	if _, _, err := Acquire(ph, act, p, rng); err == nil {
		t.Error("expected error for 0 frames")
	}
	p = DefaultAcquisitionParams()
	p.TR = 0
	if _, _, err := Acquire(ph, act, p, rng); err == nil {
		t.Error("expected error for TR=0")
	}
}

func TestAcquireBOLDModulation(t *testing.T) {
	// With all artifacts off, brain voxels should carry exactly the
	// activity modulation.
	g := testGrid(t, 10)
	rng := rand.New(rand.NewSource(11))
	pp := DefaultPhantomParams()
	pp.IntensityNoise = 0
	ph, err := NewPhantom(g, pp, rng)
	if err != nil {
		t.Fatalf("NewPhantom: %v", err)
	}
	frames := 16
	series := make([]float64, frames)
	for i := range series {
		series[i] = math.Sin(float64(i)) // known activity
	}
	labels := make([]int, ph.NumBrainVoxels())
	act := &RegionActivity{Labels: labels, Series: [][]float64{series}}
	p := AcquisitionParams{TR: 1, Frames: frames, BOLDAmplitude: 0.05}
	s, _, err := Acquire(ph, act, p, rng)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	idx := ph.BrainVoxel[0]
	base := ph.Baseline.Data[idx]
	got := s.VoxelSeries(idx)
	for t2 := 0; t2 < frames; t2++ {
		want := base * (1 + 0.05*series[t2])
		if math.Abs(got[t2]-want) > 1e-9*base {
			t.Fatalf("frame %d: got %v want %v", t2, got[t2], want)
		}
	}
}

func TestAcquireSiteGain(t *testing.T) {
	g := testGrid(t, 8)
	rng := rand.New(rand.NewSource(12))
	pp := DefaultPhantomParams()
	pp.IntensityNoise = 0
	ph, _ := NewPhantom(g, pp, rng)
	labels := make([]int, ph.NumBrainVoxels())
	act := &RegionActivity{Labels: labels, Series: [][]float64{make([]float64, 4)}}
	clean := AcquisitionParams{TR: 1, Frames: 4, SiteGain: 1}
	boosted := AcquisitionParams{TR: 1, Frames: 4, SiteGain: 2}
	s1, _, _ := Acquire(ph, act, clean, rand.New(rand.NewSource(1)))
	s2, _, _ := Acquire(ph, act, boosted, rand.New(rand.NewSource(1)))
	idx := ph.BrainVoxel[0]
	if math.Abs(s2.Frames[0].Data[idx]-2*s1.Frames[0].Data[idx]) > 1e-9 {
		t.Error("site gain not applied multiplicatively")
	}
}

// Property: interpolation never exceeds the data range (trilinear is a
// convex combination).
func TestQuickInterpolateBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, _ := NewGrid(4, 4, 4, 1)
		v := NewVolume(g)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range v.Data {
			v.Data[i] = rng.NormFloat64()
			if v.Data[i] < lo {
				lo = v.Data[i]
			}
			if v.Data[i] > hi {
				hi = v.Data[i]
			}
		}
		for k := 0; k < 20; k++ {
			x := rng.Float64() * 3
			y := rng.Float64() * 3
			z := rng.Float64() * 3
			got := v.Interpolate(x, y, z)
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
