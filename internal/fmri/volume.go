package fmri

import (
	"fmt"
	"math"
)

// Volume is a single 3-D image on a grid.
type Volume struct {
	Grid Grid
	Data []float64 // flat, indexed by Grid.Index
}

// NewVolume allocates a zero volume on g.
func NewVolume(g Grid) *Volume {
	return &Volume{Grid: g, Data: make([]float64, g.NumVoxels())}
}

// At returns the voxel value at (x, y, z).
func (v *Volume) At(x, y, z int) float64 { return v.Data[v.Grid.Index(x, y, z)] }

// Set assigns the voxel value at (x, y, z).
func (v *Volume) Set(x, y, z int, val float64) { v.Data[v.Grid.Index(x, y, z)] = val }

// Clone returns a deep copy.
func (v *Volume) Clone() *Volume {
	out := NewVolume(v.Grid)
	copy(out.Data, v.Data)
	return out
}

// Mean returns the mean voxel intensity.
func (v *Volume) Mean() float64 {
	if len(v.Data) == 0 {
		return 0
	}
	var s float64
	for _, x := range v.Data {
		s += x
	}
	return s / float64(len(v.Data))
}

// Interpolate samples the volume at a fractional voxel coordinate using
// trilinear interpolation, clamping to the volume boundary.
func (v *Volume) Interpolate(fx, fy, fz float64) float64 {
	g := v.Grid
	clamp := func(f float64, n int) (int, int, float64) {
		if f < 0 {
			f = 0
		}
		if f > float64(n-1) {
			f = float64(n - 1)
		}
		lo := int(math.Floor(f))
		hi := lo + 1
		if hi > n-1 {
			hi = n - 1
		}
		return lo, hi, f - float64(lo)
	}
	x0, x1, tx := clamp(fx, g.NX)
	y0, y1, ty := clamp(fy, g.NY)
	z0, z1, tz := clamp(fz, g.NZ)
	c := func(x, y, z int) float64 { return v.Data[g.Index(x, y, z)] }
	// Interpolate along x, then y, then z.
	c00 := c(x0, y0, z0)*(1-tx) + c(x1, y0, z0)*tx
	c10 := c(x0, y1, z0)*(1-tx) + c(x1, y1, z0)*tx
	c01 := c(x0, y0, z1)*(1-tx) + c(x1, y0, z1)*tx
	c11 := c(x0, y1, z1)*(1-tx) + c(x1, y1, z1)*tx
	c0 := c00*(1-ty) + c10*ty
	c1 := c01*(1-ty) + c11*ty
	return c0*(1-tz) + c1*tz
}

// Shifted returns the volume translated by (dx, dy, dz) voxels
// (fractional shifts allowed), sampled with trilinear interpolation.
// Content shifted in from outside the volume replicates the boundary.
func (v *Volume) Shifted(dx, dy, dz float64) *Volume {
	g := v.Grid
	out := NewVolume(g)
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				out.Data[g.Index(x, y, z)] = v.Interpolate(float64(x)-dx, float64(y)-dy, float64(z)-dz)
			}
		}
	}
	return out
}

// Series is a 4-D fMRI acquisition: a sequence of volumes on a common
// grid sampled every TR seconds.
type Series struct {
	Grid   Grid
	TR     float64 // repetition time in seconds
	Frames []*Volume
}

// NewSeries allocates a series of frameCount zero volumes.
func NewSeries(g Grid, tr float64, frameCount int) (*Series, error) {
	if tr <= 0 {
		return nil, fmt.Errorf("fmri: nonpositive TR %v", tr)
	}
	if frameCount <= 0 {
		return nil, fmt.Errorf("fmri: nonpositive frame count %d", frameCount)
	}
	s := &Series{Grid: g, TR: tr, Frames: make([]*Volume, frameCount)}
	for i := range s.Frames {
		s.Frames[i] = NewVolume(g)
	}
	return s, nil
}

// NumFrames returns the number of time points.
func (s *Series) NumFrames() int { return len(s.Frames) }

// VoxelSeries extracts the time series of a single voxel.
func (s *Series) VoxelSeries(idx int) []float64 {
	out := make([]float64, len(s.Frames))
	for t, f := range s.Frames {
		out[t] = f.Data[idx]
	}
	return out
}

// SetVoxelSeries writes a time series into a single voxel position.
// It panics if the series length differs from the frame count.
func (s *Series) SetVoxelSeries(idx int, values []float64) {
	if len(values) != len(s.Frames) {
		panic(fmt.Sprintf("fmri: series length %d != frames %d", len(values), len(s.Frames)))
	}
	for t, f := range s.Frames {
		f.Data[idx] = values[t]
	}
}

// MeanVolume returns the voxelwise temporal mean of the series.
func (s *Series) MeanVolume() *Volume {
	out := NewVolume(s.Grid)
	if len(s.Frames) == 0 {
		return out
	}
	for _, f := range s.Frames {
		for i, v := range f.Data {
			out.Data[i] += v
		}
	}
	inv := 1 / float64(len(s.Frames))
	for i := range out.Data {
		out.Data[i] *= inv
	}
	return out
}

// GlobalSignal returns the spatial-mean time series over the given mask
// (or all voxels when mask is nil).
func (s *Series) GlobalSignal(mask []bool) []float64 {
	out := make([]float64, len(s.Frames))
	for t, f := range s.Frames {
		var sum float64
		var n int
		for i, v := range f.Data {
			if mask != nil && !mask[i] {
				continue
			}
			sum += v
			n++
		}
		if n > 0 {
			out[t] = sum / float64(n)
		}
	}
	return out
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	out := &Series{Grid: s.Grid, TR: s.TR, Frames: make([]*Volume, len(s.Frames))}
	for i, f := range s.Frames {
		out.Frames[i] = f.Clone()
	}
	return out
}
