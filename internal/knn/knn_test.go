package knn

import (
	"math/rand"
	"testing"
)

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Error("expected error for empty reference")
	}
	if _, err := Fit([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Error("expected error for label mismatch")
	}
	if _, err := Fit([][]float64{{}}, []int{0}); err == nil {
		t.Error("expected error for zero dims")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, []int{0, 1}); err == nil {
		t.Error("expected error for ragged points")
	}
}

func TestPredictNearest(t *testing.T) {
	clf, err := Fit([][]float64{{0, 0}, {10, 10}}, []int{0, 1})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	got, err := clf.Predict([]float64{1, 1}, 1)
	if err != nil || got != 0 {
		t.Errorf("Predict = %d, %v want 0", got, err)
	}
	got, _ = clf.Predict([]float64{9, 9}, 1)
	if got != 1 {
		t.Errorf("Predict = %d want 1", got)
	}
}

func TestPredictValidation(t *testing.T) {
	clf, _ := Fit([][]float64{{0, 0}}, []int{0})
	if _, err := clf.Predict([]float64{1}, 1); err == nil {
		t.Error("expected dims error")
	}
	if _, err := clf.Predict([]float64{1, 1}, 0); err == nil {
		t.Error("expected k error")
	}
}

func TestPredictMajorityVote(t *testing.T) {
	// Two class-0 points and one class-1 point near the query: k=3
	// majority should say 0 even though the single nearest is class 1.
	points := [][]float64{{1, 0}, {2, 0}, {0.5, 0}}
	labels := []int{0, 0, 1}
	clf, _ := Fit(points, labels)
	got, err := clf.Predict([]float64{0, 0}, 3)
	if err != nil || got != 0 {
		t.Errorf("majority vote = %d, %v want 0", got, err)
	}
	// k=1 picks the nearest (class 1).
	got, _ = clf.Predict([]float64{0, 0}, 1)
	if got != 1 {
		t.Errorf("nearest = %d want 1", got)
	}
}

func TestPredictKClamped(t *testing.T) {
	clf, _ := Fit([][]float64{{0}, {1}}, []int{0, 1})
	if _, err := clf.Predict([]float64{0.2}, 10); err != nil {
		t.Errorf("oversized k should clamp, got error %v", err)
	}
}

func TestPredictBatchAndImmutability(t *testing.T) {
	pts := [][]float64{{0, 0}, {5, 5}}
	clf, _ := Fit(pts, []int{0, 1})
	// Mutating caller data after Fit must not affect the classifier.
	pts[0][0] = 100
	got, err := clf.PredictBatch([][]float64{{0.1, 0}, {4.9, 5}}, 1)
	if err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("PredictBatch = %v", got)
	}
	if clf.NumReference() != 2 {
		t.Errorf("NumReference = %d", clf.NumReference())
	}
}

func TestHighAccuracyOnSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts [][]float64
	var labels []int
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for c, center := range centers {
		for i := 0; i < 20; i++ {
			pts = append(pts, []float64{center[0] + rng.NormFloat64(), center[1] + rng.NormFloat64()})
			labels = append(labels, c)
		}
	}
	clf, _ := Fit(pts, labels)
	correct := 0
	total := 60
	for c, center := range centers {
		for i := 0; i < 20; i++ {
			q := []float64{center[0] + rng.NormFloat64(), center[1] + rng.NormFloat64()}
			if got, _ := clf.Predict(q, 3); got == c {
				correct++
			}
		}
	}
	if float64(correct)/float64(total) < 0.95 {
		t.Errorf("accuracy %d/%d too low for separated clusters", correct, total)
	}
}
