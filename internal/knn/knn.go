// Package knn implements the k-nearest-neighbour classifier used to
// assign task labels in the t-SNE embedding space (§3.3.2: "we assign
// the task labels of the unknown data-points on the basis of their
// nearest neighbor with known task label").
package knn

import (
	"fmt"
	"sort"
)

// Classifier is a fitted k-NN model over Euclidean space.
type Classifier struct {
	points [][]float64
	labels []int
	dims   int
}

// Fit stores the labelled reference points. All points must share one
// dimensionality and at least one point is required.
func Fit(points [][]float64, labels []int) (*Classifier, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("knn: no reference points")
	}
	if len(points) != len(labels) {
		return nil, fmt.Errorf("knn: %d points but %d labels", len(points), len(labels))
	}
	d := len(points[0])
	if d == 0 {
		return nil, fmt.Errorf("knn: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("knn: point %d has %d dims, want %d", i, len(p), d)
		}
	}
	cp := make([][]float64, len(points))
	for i, p := range points {
		cp[i] = append([]float64(nil), p...)
	}
	return &Classifier{points: cp, labels: append([]int(nil), labels...), dims: d}, nil
}

// Predict returns the majority label among the k nearest reference
// points (ties broken by the nearer neighbourhood). k is clamped to the
// reference size.
func (c *Classifier) Predict(x []float64, k int) (int, error) {
	if len(x) != c.dims {
		return 0, fmt.Errorf("knn: query has %d dims, want %d", len(x), c.dims)
	}
	if k <= 0 {
		return 0, fmt.Errorf("knn: nonpositive k %d", k)
	}
	if k > len(c.points) {
		k = len(c.points)
	}
	type cand struct {
		d2    float64
		label int
	}
	cands := make([]cand, len(c.points))
	for i, p := range c.points {
		var d2 float64
		for j := range p {
			diff := p[j] - x[j]
			d2 += diff * diff
		}
		cands[i] = cand{d2: d2, label: c.labels[i]}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d2 < cands[b].d2 })
	votes := make(map[int]int)
	best, bestVotes := cands[0].label, 0
	for i := 0; i < k; i++ {
		votes[cands[i].label]++
		// Nearer labels win ties because they reach each count first.
		if votes[cands[i].label] > bestVotes {
			best, bestVotes = cands[i].label, votes[cands[i].label]
		}
	}
	return best, nil
}

// PredictBatch classifies many queries.
func (c *Classifier) PredictBatch(xs [][]float64, k int) ([]int, error) {
	out := make([]int, len(xs))
	for i, x := range xs {
		l, err := c.Predict(x, k)
		if err != nil {
			return nil, err
		}
		out[i] = l
	}
	return out, nil
}

// NumReference returns the number of stored reference points.
func (c *Classifier) NumReference() int { return len(c.points) }
