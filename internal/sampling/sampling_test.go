package sampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"brainprint/internal/linalg"
)

func randomMatrix(rng *rand.Rand, r, c int) *linalg.Matrix {
	m := linalg.NewMatrix(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestMethodString(t *testing.T) {
	if Uniform.String() != "uniform" || L2Norm.String() != "l2-norm" || Leverage.String() != "leverage" {
		t.Error("method names wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown method should render")
	}
}

func TestLeverageScoresProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 50, 8)
	scores, err := LeverageScores(a)
	if err != nil {
		t.Fatalf("LeverageScores: %v", err)
	}
	if len(scores) != 50 {
		t.Fatalf("len = %d", len(scores))
	}
	// Scores lie in [0, 1] and sum to the rank (= 8 for a random tall
	// matrix).
	var sum float64
	for i, s := range scores {
		if s < -1e-9 || s > 1+1e-9 {
			t.Errorf("score %d = %v out of [0,1]", i, s)
		}
		sum += s
	}
	if math.Abs(sum-8) > 1e-6 {
		t.Errorf("scores sum = %v want 8 (the rank)", sum)
	}
}

func TestLeverageScoresWideRejected(t *testing.T) {
	if _, err := LeverageScores(linalg.NewMatrix(3, 5)); err == nil {
		t.Error("expected error for wide matrix")
	}
}

func TestLeverageScoresIdentifyHeavyRow(t *testing.T) {
	// A matrix that is mostly noise plus one row aligned with a unique
	// direction: that row must receive the top leverage score.
	rng := rand.New(rand.NewSource(2))
	a := linalg.NewMatrix(40, 3)
	for i := 0; i < 40; i++ {
		// All rows live in the span of (1,0,0) and (0,1,0)...
		a.Set(i, 0, rng.NormFloat64())
		a.Set(i, 1, rng.NormFloat64())
	}
	// ...except row 7, which alone carries the third direction.
	a.Set(7, 2, 5)
	scores, err := LeverageScores(a)
	if err != nil {
		t.Fatalf("LeverageScores: %v", err)
	}
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	if best != 7 {
		t.Errorf("top leverage row = %d want 7 (scores[7]=%v max=%v)", best, scores[7], scores[best])
	}
}

func TestTopK(t *testing.T) {
	vals := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	idx, err := TopK(vals, 3)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if idx[0] != 1 || idx[1] != 3 || idx[2] != 2 {
		t.Errorf("TopK = %v want [1 3 2] (ties by index)", idx)
	}
	if _, err := TopK(vals, 0); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := TopK(vals, 6); err == nil {
		t.Error("expected error for k>len")
	}
}

func TestPrincipalFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 60, 5)
	idx, scores, err := PrincipalFeatures(a, 10)
	if err != nil {
		t.Fatalf("PrincipalFeatures: %v", err)
	}
	if len(idx) != 10 || len(scores) != 60 {
		t.Fatalf("sizes: idx=%d scores=%d", len(idx), len(scores))
	}
	// Selected features must dominate every unselected feature.
	sel := make(map[int]bool)
	minSel := math.Inf(1)
	for _, i := range idx {
		sel[i] = true
		if scores[i] < minSel {
			minSel = scores[i]
		}
	}
	for i, s := range scores {
		if !sel[i] && s > minSel+1e-12 {
			t.Errorf("unselected feature %d has score %v > min selected %v", i, s, minSel)
		}
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 30, 4)
	for _, m := range []Method{Uniform, L2Norm, Leverage} {
		p, err := Probabilities(a, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		var sum float64
		for _, v := range p {
			if v < 0 {
				t.Errorf("%v: negative probability %v", m, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v: probabilities sum to %v", m, sum)
		}
	}
	if _, err := Probabilities(a, Method(9)); err == nil {
		t.Error("expected error for unknown method")
	}
	if _, err := Probabilities(linalg.NewMatrix(5, 3), L2Norm); err == nil {
		t.Error("expected error for zero matrix")
	}
}

func TestL2ProbabilitiesProportionalToNorms(t *testing.T) {
	a, _ := linalg.NewMatrixFromRows([][]float64{{3, 4}, {0, 0}, {1, 0}})
	p, err := Probabilities(a, L2Norm)
	if err != nil {
		t.Fatalf("Probabilities: %v", err)
	}
	// Norms squared: 25, 0, 1 → probabilities 25/26, 0, 1/26.
	if math.Abs(p[0]-25.0/26) > 1e-12 || p[1] != 0 || math.Abs(p[2]-1.0/26) > 1e-12 {
		t.Errorf("p = %v", p)
	}
}

func TestRowSampleUnbiasedness(t *testing.T) {
	// E[ÃᵀÃ] = AᵀA: averaging many sketches should converge.
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 25, 3)
	want := a.Gram()
	sum := linalg.NewMatrix(3, 3)
	const reps = 3000
	for r := 0; r < reps; r++ {
		sketch, _, err := RowSample(a, 6, L2Norm, rng)
		if err != nil {
			t.Fatalf("RowSample: %v", err)
		}
		sum = sum.Add(sketch.Gram())
	}
	avg := sum.Scale(1.0 / reps)
	// Monte-Carlo tolerance.
	if !avg.EqualApprox(want, 0.35*want.MaxAbs()) {
		t.Errorf("sketch Gram not unbiased:\navg=%v\nwant=%v", avg, want)
	}
}

func TestRowSampleShapeAndIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 20, 4)
	sketch, idx, err := RowSample(a, 7, Uniform, rng)
	if err != nil {
		t.Fatalf("RowSample: %v", err)
	}
	if r, c := sketch.Dims(); r != 7 || c != 4 {
		t.Fatalf("sketch dims %dx%d", r, c)
	}
	if len(idx) != 7 {
		t.Fatalf("indices = %d", len(idx))
	}
	for _, i := range idx {
		if i < 0 || i >= 20 {
			t.Fatalf("index %d out of range", i)
		}
	}
	if _, _, err := RowSample(a, 0, Uniform, rng); err == nil {
		t.Error("expected error for s=0")
	}
}

// TestSamplingQualityOrdering verifies the paper's §3.1.2 claim on
// average: leverage and l2 sampling produce better sketches than
// uniform sampling for matrices with non-uniform row importance.
func TestSamplingQualityOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Matrix with a few heavy rows and many near-zero rows.
	a := linalg.NewMatrix(120, 5)
	for i := 0; i < 120; i++ {
		scale := 0.05
		if i%17 == 0 {
			scale = 3
		}
		for j := 0; j < 5; j++ {
			a.Set(i, j, scale*rng.NormFloat64())
		}
	}
	avgErr := func(m Method) float64 {
		var total float64
		const reps = 60
		for r := 0; r < reps; r++ {
			sketch, _, err := RowSample(a, 15, m, rng)
			if err != nil {
				t.Fatalf("RowSample(%v): %v", m, err)
			}
			total += SketchError(a, sketch)
		}
		return total / reps
	}
	uniform := avgErr(Uniform)
	l2 := avgErr(L2Norm)
	if l2 >= uniform {
		t.Errorf("l2 sampling (%.3f) should beat uniform (%.3f) on skewed matrices", l2, uniform)
	}
}

func TestSelectWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := []float64{0.7, 0.1, 0.1, 0.1, 0}
	idx, err := SelectWithoutReplacement(p, 3, rng)
	if err != nil {
		t.Fatalf("SelectWithoutReplacement: %v", err)
	}
	seen := make(map[int]bool)
	for _, i := range idx {
		if seen[i] {
			t.Fatal("duplicate index")
		}
		seen[i] = true
	}
	if _, err := SelectWithoutReplacement(p, 0, rng); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := SelectWithoutReplacement(p, 6, rng); err == nil {
		t.Error("expected error for k>len")
	}
	// High-weight item should almost always be selected when k=1.
	hits := 0
	for r := 0; r < 200; r++ {
		one, _ := SelectWithoutReplacement(p, 1, rng)
		if one[0] == 0 {
			hits++
		}
	}
	if hits < 100 {
		t.Errorf("heavy item selected only %d/200 times", hits)
	}
}

// Property: leverage scores are invariant to right-multiplication by a
// nonsingular matrix (they depend only on the column space).
func TestQuickLeverageColumnSpaceInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := n + 4 + rng.Intn(20)
		a := randomMatrix(rng, m, n)
		// Random well-conditioned transform: diag + small noise.
		tr := linalg.Identity(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				tr.Set(i, j, tr.At(i, j)+0.2*rng.NormFloat64())
			}
		}
		s1, err := LeverageScores(a)
		if err != nil {
			return false
		}
		s2, err := LeverageScores(a.Mul(tr))
		if err != nil {
			return false
		}
		for i := range s1 {
			if math.Abs(s1[i]-s2[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
