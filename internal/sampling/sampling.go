// Package sampling implements the row-sampling machinery of §3.1.2: the
// randomized row-sampling meta-algorithm (Algorithm 1) with uniform,
// l2-norm (Drineas et al. 2006) and leverage-score distributions, and
// the deterministic top-t leverage-score selection ("Principal Features
// Subspace Method", Ravindra et al. 2018) that the attack uses to find
// the small set of connectome features carrying the individual
// signature.
package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"brainprint/internal/linalg"
)

// Method selects the sampling probability distribution of Algorithm 1.
type Method int

// Sampling distributions.
const (
	// Uniform samples rows uniformly at random — the paper's strawman
	// that "performs poorly in practice".
	Uniform Method = iota
	// L2Norm samples rows proportionally to their squared Euclidean
	// norm, giving the additive error bound of Eq. 2.
	L2Norm
	// Leverage samples rows proportionally to their leverage scores,
	// giving the relative error bound of Eq. 4.
	Leverage
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Uniform:
		return "uniform"
	case L2Norm:
		return "l2-norm"
	case Leverage:
		return "leverage"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// LeverageScores returns the leverage score of every row of a: the
// squared row norms of an orthonormal basis U of the column space
// (Eq. 5). For the attack's tall matrices the basis is computed with the
// Gram-matrix thin SVD, which costs one pass over a plus an n×n
// eigenproblem.
func LeverageScores(a *linalg.Matrix) ([]float64, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("sampling: leverage scores need rows >= cols, got %dx%d", m, n)
	}
	f, err := linalg.ThinSVDGram(a)
	if err != nil {
		return nil, err
	}
	// Columns of U with (numerically) zero singular value are excluded:
	// they are arbitrary completions, not column-space directions.
	rank := f.Rank(1e-10)
	u := f.U
	scores := make([]float64, m)
	for i := 0; i < m; i++ {
		row := u.RowView(i)
		var s float64
		for k := 0; k < rank; k++ {
			s += row[k] * row[k]
		}
		scores[i] = s
	}
	return scores, nil
}

// TopK returns the indices of the k largest values, in descending value
// order. Ties are broken by index for determinism.
func TopK(values []float64, k int) ([]int, error) {
	if k <= 0 || k > len(values) {
		return nil, fmt.Errorf("sampling: k=%d out of range (1..%d)", k, len(values))
	}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if values[idx[a]] != values[idx[b]] {
			return values[idx[a]] > values[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k], nil
}

// PrincipalFeatures deterministically selects the t rows of a with the
// highest leverage scores — the principal features subspace of the
// paper. It returns the selected row indices (descending score) and the
// full score vector.
func PrincipalFeatures(a *linalg.Matrix, t int) ([]int, []float64, error) {
	scores, err := LeverageScores(a)
	if err != nil {
		return nil, nil, err
	}
	idx, err := TopK(scores, t)
	if err != nil {
		return nil, nil, err
	}
	return idx, scores, nil
}

// Probabilities returns the sampling distribution of the given method
// for the rows of a. The result sums to 1.
func Probabilities(a *linalg.Matrix, m Method) ([]float64, error) {
	rows, _ := a.Dims()
	if rows == 0 {
		return nil, fmt.Errorf("sampling: empty matrix")
	}
	p := make([]float64, rows)
	switch m {
	case Uniform:
		for i := range p {
			p[i] = 1 / float64(rows)
		}
	case L2Norm:
		norms := a.RowNormsSquared()
		var total float64
		for _, v := range norms {
			total += v
		}
		if total == 0 {
			return nil, fmt.Errorf("sampling: zero matrix has no l2 distribution")
		}
		for i, v := range norms {
			p[i] = v / total
		}
	case Leverage:
		scores, err := LeverageScores(a)
		if err != nil {
			return nil, err
		}
		var total float64
		for _, v := range scores {
			total += v
		}
		if total == 0 {
			return nil, fmt.Errorf("sampling: zero leverage mass")
		}
		for i, v := range scores {
			p[i] = v / total
		}
	default:
		return nil, fmt.Errorf("sampling: unknown method %v", m)
	}
	return p, nil
}

// RowSample implements the meta-algorithm of Algorithm 1: draw s rows
// iid from the distribution of the method and rescale each sampled row
// by 1/√(s·p_i) so that ÃᵀÃ is an unbiased estimator of AᵀA. It returns
// the sketch and the sampled row indices.
func RowSample(a *linalg.Matrix, s int, m Method, rng *rand.Rand) (*linalg.Matrix, []int, error) {
	if s <= 0 {
		return nil, nil, fmt.Errorf("sampling: nonpositive sample count %d", s)
	}
	p, err := Probabilities(a, m)
	if err != nil {
		return nil, nil, err
	}
	// Cumulative distribution for O(log m) sampling.
	cdf := make([]float64, len(p))
	acc := 0.0
	for i, v := range p {
		acc += v
		cdf[i] = acc
	}
	_, cols := a.Dims()
	sketch := linalg.NewMatrix(s, cols)
	picked := make([]int, s)
	for t := 0; t < s; t++ {
		u := rng.Float64() * acc
		i := sort.SearchFloat64s(cdf, u)
		if i >= len(p) {
			i = len(p) - 1
		}
		picked[t] = i
		scale := 1 / math.Sqrt(float64(s)*p[i])
		src := a.RowView(i)
		dst := sketch.RowView(t)
		for j, v := range src {
			dst[j] = scale * v
		}
	}
	return sketch, picked, nil
}

// SketchError returns ‖AᵀA − ÃᵀÃ‖F, the approximation error measure of
// §3.1.2 under which the sampling guarantees are stated.
func SketchError(a, sketch *linalg.Matrix) float64 {
	return a.Gram().Sub(sketch.Gram()).FrobeniusNorm()
}

// SelectWithoutReplacement draws k distinct indices from the given
// probability distribution (Efraimidis-Spirakis weighted reservoir
// selection via exponential keys). Zero-probability items are only
// drawn when the positive mass is exhausted.
func SelectWithoutReplacement(p []float64, k int, rng *rand.Rand) ([]int, error) {
	if k <= 0 || k > len(p) {
		return nil, fmt.Errorf("sampling: k=%d out of range (1..%d)", k, len(p))
	}
	type keyed struct {
		key float64
		idx int
	}
	keys := make([]keyed, len(p))
	for i, w := range p {
		switch {
		case w > 0:
			// Key = uniform^(1/w); larger keys win. Use logs for stability.
			keys[i] = keyed{key: math.Log(rng.Float64()) / w, idx: i}
		default:
			keys[i] = keyed{key: math.Inf(-1), idx: i}
		}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].key > keys[b].key })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = keys[i].idx
	}
	return out, nil
}
