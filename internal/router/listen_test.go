package router

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"
)

// freePort reserves an ephemeral port and releases it for the router
// to bind: racy in principle, fine for a test that retries nothing.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserving a port: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestListenAndServe runs the real server front: bind, answer the
// router's own healthz over TCP, shut down cleanly on ctx cancel.
func TestListenAndServe(t *testing.T) {
	n := newFakeNode(t, fakePrimaryHealth(3))

	addr := freePort(t)
	rt, err := New(Config{Addr: addr, Primary: n.url(), Poll: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if rt.Addr() != addr {
		t.Fatalf("Addr() = %q, want %q", rt.Addr(), addr)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rt.ListenAndServe(ctx) }()

	base := "http://" + addr
	waitUntil(t, 5*time.Second, "router answering over TCP", func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	waitUntil(t, 5*time.Second, "primary adopted", func() bool {
		return routerHealth(t, base)["primary"] == n.url()
	})

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ListenAndServe after cancel: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("ListenAndServe did not return after ctx cancel")
	}
}

// TestListenAndServeBindFailure surfaces the listen error instead of
// hanging when the address is already taken.
func TestListenAndServeBindFailure(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("occupying a port: %v", err)
	}
	defer l.Close()

	rt, err := New(Config{Addr: l.Addr().String(), Primary: "http://127.0.0.1:1"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.ListenAndServe(ctx); err == nil {
		t.Fatal("ListenAndServe on an occupied port returned nil")
	}
}
