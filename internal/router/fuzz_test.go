package router

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzDecodeUpstreamHealth pins the reject-or-roundtrip property of
// the health decoder: arbitrary bytes either fail to decode, or decode
// to a document that re-encodes and re-decodes to the same value with
// internally consistent derived views. The decoder fronts failover
// decisions with network input, so "accepted but half-trusted" states
// must not exist.
func FuzzDecodeUpstreamHealth(f *testing.F) {
	f.Add([]byte(`{"status":"ok","writable":true,"subjects":3,"live":{"generation":1,"seq":9}}`))
	f.Add([]byte(`{"status":"ok","role":"replica","replica":{"primary":"http://p:1","connected":true,"seq":7,"primary_seq":9,"seq_lag":2,"staleness_seconds":0.25}}`))
	f.Add([]byte(`{"status":"degraded","role":"fenced","promotions":2}`))
	f.Add([]byte(`{"status":"ok","unknown_future_field":{"nested":[1,2,3]}}`))
	f.Add([]byte(`{"status":"nope"}`))
	f.Add([]byte(`{"status":"ok"}{"status":"ok"}`))
	f.Add([]byte(`{"status":"ok","replica":{"staleness_seconds":-1}}`))
	f.Add([]byte(`{"status":"ok","replica":{"staleness_seconds":1e999}}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeUpstreamHealth(data)
		if err != nil {
			if h != (UpstreamHealth{}) {
				t.Fatalf("rejected input returned a non-zero document: %+v", h)
			}
			return
		}
		// Accepted: every derived view must be internally consistent.
		switch h.DerivedRole() {
		case "primary", "replica", "fenced", "static":
		default:
			t.Fatalf("derived role %q out of vocabulary", h.DerivedRole())
		}
		if h.Seq() < 0 {
			t.Fatalf("accepted document with negative seq %d", h.Seq())
		}
		if h.Staleness() < 0 {
			t.Fatalf("accepted document with negative staleness %v", h.Staleness())
		}
		// Roundtrip: re-encode and re-decode must reproduce the document
		// exactly (unknown fields are dropped by design, so the SECOND
		// decode sees only what the router keeps).
		enc, err := json.Marshal(h)
		if err != nil {
			t.Fatalf("accepted document failed to re-encode: %v", err)
		}
		h2, err := DecodeUpstreamHealth(enc)
		if err != nil {
			t.Fatalf("re-encoded document rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(h, h2) {
			t.Fatalf("roundtrip drift:\n first %+v\nsecond %+v", h, h2)
		}
	})
}
