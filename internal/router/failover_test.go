package router

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
	"time"
)

// directHealth fetches one upstream's health document straight from
// the node, bypassing the router.
func directHealth(t *testing.T, nodeURL string) UpstreamHealth {
	t.Helper()
	resp, err := http.Get(nodeURL + "/healthz")
	if err != nil {
		t.Fatalf("healthz %s: %v", nodeURL, err)
	}
	defer resp.Body.Close()
	var h UpstreamHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz %s body: %v", nodeURL, err)
	}
	return h
}

// TestFailoverPromotesAndDemotes is the full failover story over a
// real stack, with the primary partitioned by the flaky proxy: the
// router promotes a replica, repoints the surviving sibling at it, a
// post-failover write lands on the new primary and replicates to the
// sibling — and when the old primary heals, it is fenced, not allowed
// to split-brain the topology.
func TestFailoverPromotesAndDemotes(t *testing.T) {
	p := startPrimary(t, 5)
	flaky := newFlaky(t, p.url, 7)
	// Both replicas tail the primary THROUGH the partitionable link, so
	// severing it isolates the primary from the whole topology at once.
	r1 := startReplicaNode(t, flaky.URL())
	r2 := startReplicaNode(t, flaky.URL())
	rt, rsrv := startRouter(t, fastRouter(flaky.URL(), r1.url, r2.url))

	waitUntil(t, 10*time.Second, "pre-failover convergence", func() bool {
		doc := routerHealth(t, rsrv.URL)
		return doc["primary"] == flaky.URL() && doc["replicas"].(float64) == 2
	})
	waitUntil(t, 10*time.Second, "replica catch-up", func() bool {
		head := p.eng.Stats().Seq
		return r1.rep.Stats().Seq >= head && r2.rep.Stats().Seq >= head
	})

	rng := rand.New(rand.NewSource(61))
	if code, _, body := enrollVia(t, rsrv.URL, "pre-failover", randVec(rng)); code != http.StatusCreated {
		t.Fatalf("pre-failover write: %d %s", code, body)
	}

	// Partition the primary. The router must promote one replica —
	// exactly one — and route writes to it.
	flaky.sever(true)
	var newPrimary string
	waitUntil(t, 15*time.Second, "failover", func() bool {
		pr, _ := routerHealth(t, rsrv.URL)["primary"].(string)
		newPrimary = pr
		return pr == r1.url || pr == r2.url
	})
	if got := rt.failovers.Load(); got != 1 {
		t.Fatalf("failovers = %d, want exactly 1", got)
	}
	winner, sibling := r1, r2
	if newPrimary == r2.url {
		winner, sibling = r2, r1
	}
	if !winner.serve.Writable() || winner.serve.Role() != "primary" {
		t.Fatalf("promoted node role=%s writable=%v", winner.serve.Role(), winner.serve.Writable())
	}
	if sibling.serve.Writable() {
		t.Fatal("both replicas writable after failover: split brain")
	}

	// A post-failover write lands on the new primary, and the repointed
	// sibling replicates it from there.
	vec := randVec(rng)
	code, upstream, body := enrollVia(t, rsrv.URL, "post-failover", vec)
	if code != http.StatusCreated || upstream != newPrimary {
		t.Fatalf("post-failover write: %d via %q (%s), want 201 via %q", code, upstream, body, newPrimary)
	}
	waitUntil(t, 15*time.Second, "sibling repointed and caught up", func() bool {
		return sibling.rep.Index("post-failover") >= 0
	})
	if got := sibling.rep.Stats().Primary; got != newPrimary {
		t.Fatalf("sibling tails %q, want the new primary %q", got, newPrimary)
	}
	// The write is readable through the router.
	waitUntil(t, 10*time.Second, "post-failover read", func() bool {
		rcode, _, rbody := identifyVia(t, rsrv.URL, vec, "")
		return rcode == http.StatusOK && len(rbody) > 0
	})

	// The partition heals; the old primary is still writable, which is
	// one primary too many — the router fences it.
	flaky.sever(false)
	waitUntil(t, 15*time.Second, "healed old primary fenced", func() bool {
		return directHealth(t, p.url).Role == "fenced"
	})
	if pr := routerHealth(t, rsrv.URL)["primary"]; pr != newPrimary {
		t.Fatalf("primary churned after the fence: %v, want %q", pr, newPrimary)
	}
	if got := rt.failovers.Load(); got != 1 {
		t.Fatalf("failovers after heal = %d, want still 1", got)
	}
	// The old primary's own write path is fenced off for good.
	if h := directHealth(t, p.url); h.Writable {
		t.Fatal("fenced old primary still reports writable")
	}
}

// TestPromotionExactlyOnceUnderLostResponse pins the nastiest failover
// race with a scripted fault: the promote POST reaches the target but
// its response dies on the wire. The router must NOT promote a second
// node — the target's next health poll shows it writable, and the
// router adopts it. Exactly one role flip happens topology-wide.
func TestPromotionExactlyOnceUnderLostResponse(t *testing.T) {
	p := newFakeNode(t, fakePrimaryHealth(10))
	r1 := newFakeNode(t, fakeReplicaHealth(p.url(), 10, 0.05))
	flaky := newFlaky(t, r1.srv.URL, 99)
	r2 := newFakeNode(t, fakeReplicaHealth(p.url(), 5, 0.05)) // behind r1: must lose the promotion
	_, rsrv := startRouter(t, Config{
		Primary:  p.url(),
		Replicas: []string{flaky.URL(), r2.url()},
		Poll:     50 * time.Millisecond, FailAfter: 2,
	})
	waitUntil(t, 10*time.Second, "pre-failover convergence", func() bool {
		return routerHealth(t, rsrv.URL)["primary"] == p.url()
	})

	// Script the fault, then kill the primary.
	flaky.dropResponseNext("/v1/promote", 1)
	p.setDown(true)

	waitUntil(t, 15*time.Second, "adoption of the half-promoted node", func() bool {
		return routerHealth(t, rsrv.URL)["primary"] == flaky.URL()
	})
	f1, pc1, _, _ := r1.snapshot()
	f2, pc2, dc2, _ := r2.snapshot()
	if f1 != 1 || pc1 != 1 {
		t.Fatalf("r1 flips=%d promoteCalls=%d, want exactly one of each", f1, pc1)
	}
	if f2 != 0 || pc2 != 0 {
		t.Fatalf("r2 was promoted too (flips=%d calls=%d): two primaries from one lost response", f2, pc2)
	}
	if dc2 != 0 {
		t.Fatalf("r2 was demoted (%d) though it never left replica role", dc2)
	}
}

// TestIndeterminatePromoteHoldsSecondCandidate pins the pendingPromote
// guard end to end: the promote response is lost AND the target goes
// dark, so the router cannot learn the outcome. It must hold — not
// promote the runner-up — until the target has been dead FailAfter
// polls; only then is it written off and the runner-up promoted. When
// the half-promoted node finally heals as a second writable, the
// router fences it.
func TestIndeterminatePromoteHoldsSecondCandidate(t *testing.T) {
	const poll = 100 * time.Millisecond
	const failAfter = 4
	p := newFakeNode(t, fakePrimaryHealth(10))
	r1 := newFakeNode(t, fakeReplicaHealth(p.url(), 10, 0.05))
	r1.mu.Lock()
	r1.downAfterFlip = true // the node applies the promote, then goes dark
	r1.mu.Unlock()
	flaky := newFlaky(t, r1.srv.URL, 17)
	r2 := newFakeNode(t, fakeReplicaHealth(p.url(), 5, 0.05))
	rt, rsrv := startRouter(t, Config{
		Primary:  p.url(),
		Replicas: []string{flaky.URL(), r2.url()},
		Poll:     poll, FailAfter: failAfter,
	})
	waitUntil(t, 10*time.Second, "pre-failover convergence", func() bool {
		return routerHealth(t, rsrv.URL)["primary"] == p.url()
	})

	flaky.dropResponseNext("/v1/promote", 1)
	p.setDown(true)

	// The promote lands on r1 (observable: its flip counter), but the
	// router heard nothing and now cannot reach r1 at all.
	waitUntil(t, 15*time.Second, "the half-promotion to land", func() bool {
		f, _, _, _ := r1.snapshot()
		return f == 1
	})
	// Hold window: with the outcome unknown, the runner-up must not be
	// promoted. Sample mid-window (the write-off takes FailAfter polls).
	time.Sleep(failAfter / 2 * poll)
	if f2, _, _, _ := r2.snapshot(); f2 != 0 {
		t.Fatal("runner-up promoted while the first promote's outcome was unknown")
	}

	// After FailAfter dead polls the half-promoted node is written off
	// like any dead primary, and the runner-up takes over.
	waitUntil(t, 15*time.Second, "write-off and second promotion", func() bool {
		return routerHealth(t, rsrv.URL)["primary"] == r2.url()
	})
	if f2, _, _, _ := r2.snapshot(); f2 != 1 {
		t.Fatalf("runner-up flips = %d, want 1", f2)
	}

	// The dark half-promoted node heals as a second writable primary —
	// the fence rule must demote it, converging back to one writer.
	r1.setDown(false)
	waitUntil(t, 15*time.Second, "healed half-primary fenced", func() bool {
		_, _, dc, _ := r1.snapshot()
		return dc >= 1
	})
	if pr := routerHealth(t, rsrv.URL)["primary"]; pr != r2.url() {
		t.Fatalf("primary churned on heal: %v, want %q", pr, r2.url())
	}
	if rt.demotions.Load() == 0 {
		t.Fatal("router demotions counter did not move")
	}
}

// TestNoReadBeyondStalenessBound pins the read guarantee under a
// partitioned replica: once the replica's effective staleness exceeds
// a request's bound, the router stops routing reads to it — every
// replica-served read observably fits its bound, the rest fall back to
// the primary, and nothing is dropped while a primary is up.
func TestNoReadBeyondStalenessBound(t *testing.T) {
	const bound = time.Second
	p := startPrimary(t, 4)
	flaky := newFlaky(t, p.url, 23)
	r := startReplicaNode(t, flaky.URL()) // the replica tails through the severable link
	rt, rsrv := startRouter(t, Config{
		Primary:  p.url,
		Replicas: []string{r.url},
		Poll:     50 * time.Millisecond, FailAfter: 3,
		MaxStaleness: bound,
		NoFailover:   true, // keep the router from repointing the replica around the proxy
	})
	waitUntil(t, 10*time.Second, "convergence", func() bool {
		doc := routerHealth(t, rsrv.URL)
		return doc["primary"] == p.url && doc["replicas"].(float64) == 1
	})
	waitUntil(t, 10*time.Second, "replica catch-up", func() bool {
		return r.rep.Stats().Seq >= p.eng.Stats().Seq
	})

	rng := rand.New(rand.NewSource(71))
	probe := randVec(rng)
	// Fresh replica: it serves the bounded read.
	waitUntil(t, 10*time.Second, "a replica-served bounded read", func() bool {
		code, upstream, _ := identifyVia(t, rsrv.URL, probe, "1")
		return code == http.StatusOK && upstream == r.url
	})

	// Partition the replica from the primary and keep reading. The
	// router's effective-staleness estimate (reported + time since poll)
	// is, by construction, at least the true time since last primary
	// contact — so any read it still routes to the replica happened
	// within the bound of the sever instant, modulo one poll of slack.
	severedAt := time.Now()
	flaky.sever(true)
	slack := 300 * time.Millisecond // poll interval + pre-sever heartbeat age
	sawPrimaryFallback := false
	for time.Since(severedAt) < 3*bound {
		code, upstream, body := identifyVia(t, rsrv.URL, probe, "1")
		if code != http.StatusOK {
			t.Fatalf("bounded read during partition: %d %s", code, body)
		}
		if upstream == r.url {
			if since := time.Since(severedAt); since > bound+slack {
				t.Fatalf("replica served a read %v after the sever with a %v bound", since, bound)
			}
		} else {
			sawPrimaryFallback = true
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !sawPrimaryFallback {
		t.Fatal("reads never fell back to the primary while the replica went stale")
	}
	// Fallback reads are fresh: a subject enrolled after the sever is
	// immediately identifiable through the router.
	vec := randVec(rng)
	if err := p.eng.Enroll("only-after-sever", vec); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	code, upstream, body := identifyVia(t, rsrv.URL, vec, "1")
	if code != http.StatusOK || upstream != p.url {
		t.Fatalf("post-sever read: %d via %q (%s)", code, upstream, body)
	}
	if rt.readsDropped.Load() != 0 {
		t.Fatalf("%d reads dropped with a live primary available", rt.readsDropped.Load())
	}

	// Heal the link: the replica catches up, its staleness recovers,
	// and bounded reads return to it.
	flaky.sever(false)
	waitUntil(t, 15*time.Second, "bounded reads to return to the replica", func() bool {
		code, upstream, _ := identifyVia(t, rsrv.URL, probe, "1")
		return code == http.StatusOK && upstream == r.url
	})
	waitUntil(t, 15*time.Second, "replica to see the post-sever write", func() bool {
		return r.rep.Index("only-after-sever") >= 0
	})
}

// TestFlakyPollsDoNotChurnTopology pins the grace period: a primary
// whose health polls drop probabilistically (but never FailAfter in a
// row, with drop rate well under certainty) keeps its role; the
// topology does not flap.
func TestFlakyPollsDoNotChurnTopology(t *testing.T) {
	p := startPrimary(t, 3)
	flaky := newFlaky(t, p.url, 13)
	r := startReplicaNode(t, p.url)
	rt, rsrv := startRouter(t, Config{
		Primary:   flaky.URL(),
		Replicas:  []string{r.url},
		Poll:      50 * time.Millisecond,
		FailAfter: 5, // 30% drop rate: P(5 consecutive drops) ≈ 0.2%
	})
	waitUntil(t, 10*time.Second, "convergence", func() bool {
		return routerHealth(t, rsrv.URL)["primary"] == flaky.URL()
	})
	flaky.setDrop(0.30)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if got := rt.failovers.Load(); got != 0 {
			t.Fatalf("flaky (not dead) primary triggered %d failovers", got)
		}
		time.Sleep(50 * time.Millisecond)
	}
	flaky.setDrop(0)
	waitUntil(t, 10*time.Second, "primary still in place", func() bool {
		return routerHealth(t, rsrv.URL)["primary"] == flaky.URL()
	})
	if r.serve.Writable() {
		t.Fatal("replica got promoted under a merely flaky primary")
	}
}
