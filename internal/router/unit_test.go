package router

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestTimeoutClamps pins the poll/control timeout derivations: polls
// are floored at 250ms so sub-100ms test intervals don't flake, and
// control calls get 4× the poll interval clamped into [2s, 10s].
func TestTimeoutClamps(t *testing.T) {
	mk := func(poll time.Duration) *Router {
		rt, err := New(Config{Primary: "http://127.0.0.1:1", Poll: poll})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return rt
	}
	if got := mk(20 * time.Millisecond).pollTimeout(); got != 250*time.Millisecond {
		t.Errorf("pollTimeout(20ms) = %v, want the 250ms floor", got)
	}
	if got := mk(2 * time.Second).pollTimeout(); got != 2*time.Second {
		t.Errorf("pollTimeout(2s) = %v, want the interval itself", got)
	}
	if got := mk(50 * time.Millisecond).controlTimeout(); got != 2*time.Second {
		t.Errorf("controlTimeout(50ms poll) = %v, want the 2s floor", got)
	}
	if got := mk(time.Second).controlTimeout(); got != 4*time.Second {
		t.Errorf("controlTimeout(1s poll) = %v, want 4×poll", got)
	}
	if got := mk(30 * time.Second).controlTimeout(); got != 10*time.Second {
		t.Errorf("controlTimeout(30s poll) = %v, want the 10s cap", got)
	}
}

// TestDerivedRole pins the role inference for upstreams predating the
// explicit role field: writable → primary, replica block → replica,
// neither → static; an explicit role always wins.
func TestDerivedRole(t *testing.T) {
	cases := []struct {
		h    UpstreamHealth
		want string
	}{
		{UpstreamHealth{Role: "fenced", Writable: true}, "fenced"},
		{UpstreamHealth{Writable: true}, "primary"},
		{UpstreamHealth{Replica: &ReplicaHealth{}}, "replica"},
		{UpstreamHealth{}, "static"},
	}
	for _, c := range cases {
		if got := c.h.DerivedRole(); got != c.want {
			t.Errorf("DerivedRole(%+v) = %q, want %q", c.h, got, c.want)
		}
	}
}

// TestPickWritablesOrders pins the adoption order: highest replicated
// seq first, URL as the deterministic tiebreak.
func TestPickWritablesOrders(t *testing.T) {
	rt, err := New(Config{
		Primary:  "http://b.example:1",
		Replicas: []string{"http://a.example:1", "http://c.example:1", "http://d.example:1"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	set := func(u string, writable bool, seq int64) {
		n := rt.nodes[u]
		n.ok = true
		n.health = fakePrimaryHealth(seq)
		n.health.Writable = writable
	}
	set("http://b.example:1", true, 5)
	set("http://a.example:1", true, 9)
	set("http://c.example:1", true, 9)
	set("http://d.example:1", false, 99) // not writable: excluded
	got := rt.pickWritables()
	want := []string{"http://a.example:1", "http://c.example:1", "http://b.example:1"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("pickWritables() = %v, want %v", got, want)
	}
}

// TestProxyErrorAnswers502 kills the adopted primary's socket out from
// under the router: the shared proxy's error handler must answer 502
// and count the failure, not hang or panic.
func TestProxyErrorAnswers502(t *testing.T) {
	// A long poll interval: the immediate first round adopts the fake,
	// and no second round can notice the socket dying before the
	// request below hits the stale table.
	n := newFakeNode(t, fakePrimaryHealth(1))
	rt, srv := startRouter(t, Config{Primary: n.url(), Poll: time.Minute})

	waitUntil(t, 5*time.Second, "primary adopted", func() bool {
		return routerHealth(t, srv.URL)["primary"] == n.url()
	})
	n.srv.Close() // the routing table still names it

	resp, err := http.Post(srv.URL+"/v1/enroll", "application/json",
		strings.NewReader(`{"id":"x","fingerprint":[1]}`))
	if err != nil {
		t.Fatalf("POST through the router: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("proxy to a dead upstream answered %d, want 502", resp.StatusCode)
	}
	if got := rt.proxyErrors.Load(); got == 0 {
		t.Error("proxyErrors counter did not move")
	}
}
