package router

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestNewValidatesTopology pins the constructor's input contract.
func TestNewValidatesTopology(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no primary succeeded")
	}
	if _, err := New(Config{Primary: "not a url"}); err == nil {
		t.Fatal("New with a relative primary succeeded")
	}
	if _, err := New(Config{Primary: "http://a:1", Replicas: []string{"nope"}}); err == nil {
		t.Fatal("New with a relative replica succeeded")
	}
	if _, err := New(Config{Primary: "http://a:1", Replicas: []string{"http://a:1/"}}); err == nil {
		t.Fatal("New with a duplicate upstream succeeded")
	}
	rt, err := New(Config{Primary: "http://a:1/", Replicas: []string{"http://b:2"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Before the first poll round the table is empty: no primary.
	if tb := rt.table.Load(); tb.primary != "" || len(tb.readers) != 0 {
		t.Fatalf("pre-poll table: %+v", tb)
	}
}

// TestRoutingSplitsReadsAndWrites pins the core routing policy over a
// real primary + replica pair: reads land on the replica, writes on
// the primary, and both responses carry the upstream header naming who
// served them.
func TestRoutingSplitsReadsAndWrites(t *testing.T) {
	p := startPrimary(t, 5)
	r := startReplicaNode(t, p.url)
	_, rsrv := startRouter(t, fastRouter(p.url, r.url))

	waitUntil(t, 10*time.Second, "router to see primary and replica", func() bool {
		doc := routerHealth(t, rsrv.URL)
		return doc["primary"] == p.url && doc["replicas"].(float64) == 1
	})
	waitUntil(t, 10*time.Second, "replica catch-up", func() bool {
		return r.rep.Stats().Seq >= p.eng.Stats().Seq
	})

	rng := rand.New(rand.NewSource(41))
	probe := randVec(rng)
	code, upstream, body := identifyVia(t, rsrv.URL, probe, "")
	if code != http.StatusOK {
		t.Fatalf("identify via router: %d %s", code, body)
	}
	if upstream != r.url {
		t.Fatalf("read served by %q, want the replica %q", upstream, r.url)
	}

	code, upstream, body = enrollVia(t, rsrv.URL, "via-router", randVec(rng))
	if code != http.StatusCreated {
		t.Fatalf("enroll via router: %d %s", code, body)
	}
	if upstream != p.url {
		t.Fatalf("write served by %q, want the primary %q", upstream, p.url)
	}
	if p.eng.Index("via-router") < 0 {
		t.Fatal("write did not land on the primary")
	}

	// The write replicates; a bounded read still routes to the replica
	// once its staleness recovers, and finds the new subject.
	waitUntil(t, 10*time.Second, "write to replicate", func() bool {
		return r.rep.Index("via-router") >= 0
	})
}

// TestStalenessBound pins the per-request bound semantics: a
// fresh-enough replica serves the read, an impossible bound falls back
// to the primary, and header garbage is a 400 — never a silent
// default.
func TestStalenessBound(t *testing.T) {
	p := startPrimary(t, 4)
	r := startReplicaNode(t, p.url)
	rt, rsrv := startRouter(t, fastRouter(p.url, r.url))

	waitUntil(t, 10*time.Second, "router to see primary and replica", func() bool {
		doc := routerHealth(t, rsrv.URL)
		return doc["primary"] == p.url && doc["replicas"].(float64) == 1
	})

	rng := rand.New(rand.NewSource(42))
	probe := randVec(rng)

	// A generous bound routes to the replica.
	code, upstream, body := identifyVia(t, rsrv.URL, probe, "30")
	if code != http.StatusOK || upstream != r.url {
		t.Fatalf("bounded read: %d via %q (%s), want 200 via replica", code, upstream, body)
	}
	// A zero bound can never be satisfied by a polled replica (effective
	// staleness includes time-since-poll), so the primary serves it.
	code, upstream, _ = identifyVia(t, rsrv.URL, probe, "0")
	if code != http.StatusOK || upstream != p.url {
		t.Fatalf("zero-bound read: %d via %q, want 200 via primary", code, upstream)
	}
	// Garbage bounds are the client's error.
	for _, bad := range []string{"soon", "-1", "NaN"} {
		code, _, _ = identifyVia(t, rsrv.URL, probe, bad)
		if code != http.StatusBadRequest {
			t.Fatalf("bound %q: %d, want 400", bad, code)
		}
	}
	if rt.readsReplica.Load() == 0 || rt.readsPrimary.Load() == 0 {
		t.Fatalf("read counters: replica=%d primary=%d, want both nonzero",
			rt.readsReplica.Load(), rt.readsPrimary.Load())
	}
}

// TestRoundRobinOverReplicas pins read spreading: with two qualifying
// replicas, consecutive reads alternate between them.
func TestRoundRobinOverReplicas(t *testing.T) {
	p := startPrimary(t, 3)
	r1 := startReplicaNode(t, p.url)
	r2 := startReplicaNode(t, p.url)
	_, rsrv := startRouter(t, fastRouter(p.url, r1.url, r2.url))

	waitUntil(t, 10*time.Second, "router to see both replicas", func() bool {
		return routerHealth(t, rsrv.URL)["replicas"].(float64) == 2
	})

	rng := rand.New(rand.NewSource(43))
	probe := randVec(rng)
	served := map[string]int{}
	for i := 0; i < 10; i++ {
		code, upstream, body := identifyVia(t, rsrv.URL, probe, "")
		if code != http.StatusOK {
			t.Fatalf("read %d: %d %s", i, code, body)
		}
		served[upstream]++
	}
	if served[r1.url] < 3 || served[r2.url] < 3 {
		t.Fatalf("reads did not spread: %v", served)
	}
	if served[p.url] != 0 {
		t.Fatalf("primary served %d reads with healthy replicas available", served[p.url])
	}
}

// TestRouterOwnSurface pins the router's /healthz and /v1/metrics
// documents.
func TestRouterOwnSurface(t *testing.T) {
	p := startPrimary(t, 2)
	r := startReplicaNode(t, p.url)
	_, rsrv := startRouter(t, fastRouter(p.url, r.url))
	waitUntil(t, 10*time.Second, "router convergence", func() bool {
		return routerHealth(t, rsrv.URL)["status"] == "ok"
	})

	doc := routerHealth(t, rsrv.URL)
	if doc["role"] != "router" || doc["primary"] != p.url {
		t.Fatalf("healthz: %v", doc)
	}
	nodes := doc["nodes"].([]any)
	if len(nodes) != 2 {
		t.Fatalf("healthz nodes: %v", nodes)
	}
	roles := map[string]string{}
	for _, n := range nodes {
		m := n.(map[string]any)
		if m["healthy"] != true {
			t.Fatalf("unhealthy node in converged topology: %v", m)
		}
		roles[m["url"].(string)] = m["role"].(string)
	}
	if roles[p.url] != "primary" || roles[r.url] != "replica" {
		t.Fatalf("node roles: %v", roles)
	}

	resp, err := http.Get(rsrv.URL + "/v1/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var metrics map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatalf("metrics body: %v", err)
	}
	for _, key := range []string{"reads_replica", "reads_primary_fallback", "reads_unroutable",
		"primary_forwards", "proxy_errors", "failovers", "demotions", "repoints", "nodes"} {
		if _, ok := metrics[key]; !ok {
			t.Fatalf("metrics missing %q: %v", key, metrics)
		}
	}
}

// TestNoWritableUpstream pins fail-fast behavior: with every upstream
// down, writes and reads answer 503 immediately instead of hanging,
// and the router reports itself degraded.
func TestNoWritableUpstream(t *testing.T) {
	primary := newFakeNode(t, fakePrimaryHealth(5))
	replica := newFakeNode(t, fakeReplicaHealth(primary.url(), 5, 0.1))
	_, rsrv := startRouter(t, Config{
		Primary: primary.url(), Replicas: []string{replica.url()},
		Poll: 50 * time.Millisecond, FailAfter: 2, NoFailover: true,
	})
	waitUntil(t, 10*time.Second, "router convergence", func() bool {
		return routerHealth(t, rsrv.URL)["status"] == "ok"
	})

	primary.setDown(true)
	replica.setDown(true)
	waitUntil(t, 10*time.Second, "router to notice the outage", func() bool {
		return routerHealth(t, rsrv.URL)["status"] == "degraded"
	})

	code, _, body := enrollVia(t, rsrv.URL, "x", make([]float64, testFeatures))
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "no writable upstream") {
		t.Fatalf("write with no upstream: %d %s", code, body)
	}
	code, _, body = identifyVia(t, rsrv.URL, make([]float64, testFeatures), "1")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "staleness bound") {
		t.Fatalf("read with no upstream: %d %s", code, body)
	}
}

// TestDecodeUpstreamHealth pins the strict-on-known/tolerant-on-unknown
// decode contract the router's polls depend on.
func TestDecodeUpstreamHealth(t *testing.T) {
	good := `{"status":"ok","role":"replica","writable":false,"subjects":7,
		"replica":{"primary":"http://p:1","connected":true,"seq":7,"primary_seq":9,
		"seq_lag":2,"staleness_seconds":0.25},"some_future_field":{"x":1}}`
	h, err := DecodeUpstreamHealth([]byte(good))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.DerivedRole() != "replica" || h.Seq() != 7 || h.Staleness() != 250*time.Millisecond {
		t.Fatalf("decoded: %+v", h)
	}

	// Role inference for pre-promote-era documents that carry no role.
	h2, err := DecodeUpstreamHealth([]byte(`{"status":"ok","writable":true,"live":{"seq":4}}`))
	if err != nil {
		t.Fatalf("decode legacy: %v", err)
	}
	if h2.DerivedRole() != "primary" || h2.Seq() != 4 {
		t.Fatalf("legacy derived: %+v", h2)
	}
	h3, err := DecodeUpstreamHealth([]byte(`{"status":"ok"}`))
	if err != nil || h3.DerivedRole() != "static" {
		t.Fatalf("static derived: %+v, %v", h3, err)
	}

	for name, bad := range map[string]string{
		"empty":          ``,
		"not json":       `<html>gateway error</html>`,
		"wrong type":     `[1,2,3]`,
		"bad status":     `{"status":"on-fire"}`,
		"bad role":       `{"status":"ok","role":"emperor"}`,
		"negative seq":   `{"status":"ok","replica":{"seq":-1}}`,
		"negative stale": `{"status":"ok","replica":{"staleness_seconds":-0.5}}`,
		"trailing data":  `{"status":"ok"}{"status":"ok"}`,
		"truncated":      `{"status":"ok","replica":{"seq":`,
	} {
		if _, err := DecodeUpstreamHealth([]byte(bad)); err == nil {
			t.Fatalf("%s: decode succeeded on %q", name, bad)
		}
	}
}

// TestReplicationSurfaceProxies pins that the replication endpoints
// pass through to the primary — an external replica can bootstrap
// through the router's address.
func TestReplicationSurfaceProxies(t *testing.T) {
	p := startPrimary(t, 4)
	_, rsrv := startRouter(t, fastRouter(p.url))
	waitUntil(t, 10*time.Second, "router to see the primary", func() bool {
		return routerHealth(t, rsrv.URL)["primary"] == p.url
	})

	// A replica bootstrapped against the ROUTER address converges.
	r := startReplicaNode(t, rsrv.URL)
	waitUntil(t, 10*time.Second, "through-router replica catch-up", func() bool {
		return r.rep.Stats().Seq >= p.eng.Stats().Seq
	})
	for i := 0; i < 4; i++ {
		if r.rep.Index(fmt.Sprintf("subj-%02d", i)) < 0 {
			t.Fatalf("through-router replica missing subj-%02d", i)
		}
	}
}
