package router

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"time"
)

// HeaderMaxStaleness is the request header carrying a per-request read
// staleness bound in (fractional) seconds; it overrides the router's
// -max-staleness default. A read is only ever served by an upstream
// whose data is provably no older than the bound.
const HeaderMaxStaleness = "X-Max-Staleness-Seconds"

// HeaderUpstream is the response header the router stamps with the
// base URL of the upstream that actually served the request — the
// observability hook the staleness and failover tests assert on.
const HeaderUpstream = "X-Brainprint-Upstream"

// readPaths are the endpoints eligible for replica routing; everything
// else — writes, topology control, the replication surface — forwards
// to the primary.
var readPaths = map[string]bool{
	"/v1/identify":        true,
	"/v1/identify/batch":  true,
	"/v1/identify/stream": true,
	"/v1/gallery":         true,
}

// targetKey carries the chosen upstream through the request context
// into the shared reverse proxy.
type targetKey struct{}

// Handler returns the router's HTTP surface: its own /healthz and
// /v1/metrics, and a proxy for everything else.
func (rt *Router) Handler() http.Handler {
	proxy := rt.newProxy()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /v1/metrics", rt.handleMetrics)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) { rt.route(proxy, w, r) })
	return mux
}

// newProxy builds the one reverse proxy all routes share; the chosen
// upstream travels in the request context. Flushing is immediate
// (FlushInterval -1) because two proxied endpoints — the identify
// stream and the replication WAL stream — are long-lived and
// line-buffered, and a buffering proxy would stall them.
func (rt *Router) newProxy() *httputil.ReverseProxy {
	return &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			t := pr.In.Context().Value(targetKey{}).(*url.URL)
			pr.SetURL(t)
			pr.Out.Host = t.Host
		},
		FlushInterval: -1,
		ModifyResponse: func(resp *http.Response) error {
			resp.Header.Set(HeaderUpstream, resp.Request.URL.Scheme+"://"+resp.Request.URL.Host)
			return nil
		},
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			rt.proxyErrors.Add(1)
			writeJSON(w, http.StatusBadGateway,
				map[string]string{"error": "upstream unreachable: " + err.Error()})
		},
	}
}

// route classifies one request and forwards it. Reads go to a replica
// whose effective staleness — the staleness it reported at poll time
// plus the time elapsed since that poll, a deliberate upper bound —
// fits the request's bound, round-robin among the qualifiers; with no
// qualifying replica they fall back to the primary (staleness zero by
// definition). Everything else goes to the primary. With no live
// primary, writes answer 503 immediately rather than hanging.
func (rt *Router) route(proxy *httputil.ReverseProxy, w http.ResponseWriter, r *http.Request) {
	tb := rt.table.Load()
	if readPaths[r.URL.Path] {
		bound, ok := rt.readBound(w, r)
		if !ok {
			return
		}
		if rd := rt.pickReader(tb, bound); rd != nil {
			rt.readsReplica.Add(1)
			rt.forward(proxy, w, r, rd)
			return
		}
		if tb.primaryURL != nil {
			rt.readsPrimary.Add(1)
			rt.forward(proxy, w, r, tb.primaryURL)
			return
		}
		rt.readsDropped.Add(1)
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "no upstream satisfies the staleness bound (failover in progress?)"})
		return
	}
	if tb.primaryURL == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "no writable upstream (failover in progress?)"})
		return
	}
	rt.forwards.Add(1)
	rt.forward(proxy, w, r, tb.primaryURL)
}

// forward hands one request to the shared proxy with its target bound
// into the context.
func (rt *Router) forward(proxy *httputil.ReverseProxy, w http.ResponseWriter, r *http.Request, target *url.URL) {
	ctx := context.WithValue(r.Context(), targetKey{}, target)
	proxy.ServeHTTP(w, r.WithContext(ctx))
}

// readBound resolves a request's staleness bound: the header when
// present (400 on garbage — a client that asked for a bound must not
// silently get the default), the configured default otherwise.
func (rt *Router) readBound(w http.ResponseWriter, r *http.Request) (time.Duration, bool) {
	raw := r.Header.Get(HeaderMaxStaleness)
	if raw == "" {
		return rt.cfg.MaxStaleness, true
	}
	secs, err := strconv.ParseFloat(raw, 64)
	if err != nil || secs < 0 || secs != secs {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": "bad " + HeaderMaxStaleness + " header: " + raw})
		return 0, false
	}
	return time.Duration(secs * float64(time.Second)), true
}

// pickReader round-robins over the replicas whose effective staleness
// fits the bound; nil when none qualifies.
func (rt *Router) pickReader(tb *table, bound time.Duration) *url.URL {
	if len(tb.readers) == 0 {
		return nil
	}
	now := time.Now()
	start := int(rt.rr.Add(1))
	for i := range tb.readers {
		rd := &tb.readers[(start+i)%len(tb.readers)]
		if rd.staleness+now.Sub(rd.polled) <= bound {
			return rd.url
		}
	}
	return nil
}

// ---- the router's own health/metrics surface ----

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	tb := rt.table.Load()
	status := "ok"
	if tb.primary == "" {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"role":           "router",
		"primary":        tb.primary,
		"replicas":       len(tb.readers),
		"failovers":      rt.failovers.Load(),
		"demotions":      rt.demotions.Load(),
		"repoints":       rt.repoints.Load(),
		"poll_seconds":   rt.cfg.Poll.Seconds(),
		"uptime_seconds": time.Since(rt.started).Seconds(),
		"nodes":          tb.nodes,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	tb := rt.table.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds":         time.Since(rt.started).Seconds(),
		"primary":                tb.primary,
		"failovers":              rt.failovers.Load(),
		"demotions":              rt.demotions.Load(),
		"repoints":               rt.repoints.Load(),
		"reads_replica":          rt.readsReplica.Load(),
		"reads_primary_fallback": rt.readsPrimary.Load(),
		"reads_unroutable":       rt.readsDropped.Load(),
		"primary_forwards":       rt.forwards.Load(),
		"proxy_errors":           rt.proxyErrors.Load(),
		"nodes":                  tb.nodes,
	})
}

// writeJSON emits the service's JSON shape.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
