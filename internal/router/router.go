// Package router is the replica-aware HTTP front tier over a
// primary + N read-replica brainprint topology (internal/replicate,
// internal/serve). It health-polls every upstream's /healthz, routes
// read traffic to replicas under a per-request staleness bound
// (falling back to the primary when no replica qualifies), forwards
// writes and the replication surface to the primary, and — on primary
// loss — promotes the most-caught-up replica via POST /v1/promote,
// repoints the surviving siblings at it, and fences a healed old
// primary before it can split-brain the topology.
//
// The routing table is an immutable snapshot swapped atomically after
// each poll round, so request routing never takes a lock; the poll
// loop is a single goroutine, so failover decisions are serialized by
// construction. Router state is surfaced on the router's own /healthz
// and /v1/metrics.
package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the router.
type Config struct {
	// Addr is the listen address (default 127.0.0.1:7351 — loopback,
	// like serve: expose deliberately).
	Addr string
	// Primary is the base URL of the node believed primary at start.
	Primary string
	// Replicas are the base URLs of the read replicas.
	Replicas []string
	// Poll is the health-poll interval (default 1s).
	Poll time.Duration
	// FailAfter is how many consecutive failed polls of the primary
	// trigger failover (default 3).
	FailAfter int
	// MaxStaleness is the default read staleness bound, used when a
	// request carries no X-Max-Staleness-Seconds header (default 5s).
	MaxStaleness time.Duration
	// NoFailover observes and routes but never promotes, demotes, or
	// repoints — a read-only balancing mode.
	NoFailover bool
	// Client is the HTTP client for health polls and control calls (a
	// default client when nil; the router manages per-call contexts).
	Client *http.Client
	// Logf receives router lifecycle messages (nil = silent).
	Logf func(format string, args ...any)
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7351"
	}
	if c.Poll <= 0 {
		c.Poll = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.MaxStaleness <= 0 {
		c.MaxStaleness = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// nodeState is the poll loop's private view of one upstream; only the
// loop goroutine touches it.
type nodeState struct {
	url     string
	ok      bool // last poll succeeded and decoded
	health  UpstreamHealth
	polled  time.Time
	fails   int // consecutive failed polls
	lastErr string
}

// reader is one read-eligible upstream in a published routing table.
type reader struct {
	url       *url.URL
	raw       string
	staleness time.Duration // self-reported at poll time
	polled    time.Time     // when it was reported
	seq       int64
}

// table is one immutable routing snapshot; requests load it via one
// atomic pointer read.
type table struct {
	primary    string   // "" while no writable upstream is known
	primaryURL *url.URL // parsed form of primary (nil when primary == "")
	readers    []reader // healthy replicas, any staleness (bounds apply per request)
	built      time.Time
	nodes      []nodeStatus // full per-node view for healthz/metrics
}

// nodeStatus renders one upstream in the router's health/metrics JSON.
type nodeStatus struct {
	URL              string  `json:"url"`
	Role             string  `json:"role"`
	Healthy          bool    `json:"healthy"`
	Seq              int64   `json:"seq"`
	StalenessSeconds float64 `json:"staleness_seconds"`
	Fails            int     `json:"consecutive_failures,omitempty"`
	Error            string  `json:"error,omitempty"`
}

// Router is the front tier. Build one with New, run its poll loop with
// Watch (or ListenAndServe, which also serves), and mount Handler.
type Router struct {
	cfg     Config
	started time.Time

	urls  map[string]*url.URL // parsed upstream base URLs, fixed at New
	order []string            // stable poll order: primary first

	table atomic.Pointer[table]

	// Poll-loop-private (single goroutine): current belief and history.
	nodes      map[string]*nodeState
	curPrimary string
	// pendingPromote is set while a promote call's outcome is unknown
	// (transport error: the POST may or may not have landed). Until the
	// target is heard from again — or written off after FailAfter failed
	// polls — no OTHER node may be promoted, else a lost response could
	// mint two primaries.
	pendingPromote string

	rr atomic.Uint64 // round-robin cursor over read candidates

	failovers    atomic.Int64
	demotions    atomic.Int64
	repoints     atomic.Int64
	readsReplica atomic.Int64
	readsPrimary atomic.Int64
	readsDropped atomic.Int64
	forwards     atomic.Int64
	proxyErrors  atomic.Int64
}

// New validates the topology and builds a router. The first routing
// table is empty (no primary) until the first poll round completes;
// Watch runs one round immediately on entry.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if cfg.Primary == "" {
		return nil, fmt.Errorf("router: no primary URL")
	}
	rt := &Router{
		cfg:     cfg,
		started: time.Now(),
		urls:    make(map[string]*url.URL),
		nodes:   make(map[string]*nodeState),
	}
	add := func(raw string) (string, error) {
		raw = strings.TrimRight(raw, "/")
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return "", fmt.Errorf("router: upstream %q is not an absolute URL", raw)
		}
		if _, dup := rt.urls[raw]; dup {
			return "", fmt.Errorf("router: upstream %q listed twice", raw)
		}
		rt.urls[raw] = u
		rt.nodes[raw] = &nodeState{url: raw}
		rt.order = append(rt.order, raw)
		return raw, nil
	}
	primary, err := add(cfg.Primary)
	if err != nil {
		return nil, err
	}
	rt.curPrimary = primary
	for _, r := range cfg.Replicas {
		if _, err := add(r); err != nil {
			return nil, err
		}
	}
	rt.table.Store(&table{built: time.Now(), nodes: []nodeStatus{}})
	return rt, nil
}

// Addr returns the configured listen address.
func (rt *Router) Addr() string { return rt.cfg.Addr }

// Watch runs the health-poll/failover loop until ctx ends, one round
// immediately and then every Poll interval. Blocking; run it in a
// goroutine next to Handler, or use ListenAndServe which does both.
func (rt *Router) Watch(ctx context.Context) {
	rt.tick(ctx)
	t := time.NewTicker(rt.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.tick(ctx)
		}
	}
}

// ListenAndServe runs the poll loop and the HTTP front until ctx is
// cancelled, then shuts down gracefully with a 10s drain bound.
func (rt *Router) ListenAndServe(ctx context.Context) error {
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	go rt.Watch(wctx)
	srv := &http.Server{
		Addr:              rt.cfg.Addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil {
			_ = srv.Close()
			return err
		}
		return nil
	}
}

// ---- poll loop ----

// tick runs one poll round: poll every upstream in parallel, update
// the failure counters, make the failover decision, publish a fresh
// routing table.
func (rt *Router) tick(ctx context.Context) {
	type result struct {
		h   UpstreamHealth
		err error
	}
	results := make([]result, len(rt.order))
	var wg sync.WaitGroup
	for i, u := range rt.order {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := rt.pollOne(ctx, u)
			results[i] = result{h: h, err: err}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return // mid-shutdown polls look like failures; don't act on them
	}
	now := time.Now()
	for i, u := range rt.order {
		n := rt.nodes[u]
		if res := results[i]; res.err != nil {
			n.ok = false
			n.fails++
			n.lastErr = res.err.Error()
		} else {
			n.ok = true
			n.fails = 0
			n.lastErr = ""
			n.health = res.h
			n.polled = now
		}
	}
	rt.decide(ctx)
	rt.publish(now)
}

// pollOne fetches and decodes one upstream's health document.
func (rt *Router) pollOne(ctx context.Context, upstream string) (UpstreamHealth, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.pollTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, upstream+"/healthz", nil)
	if err != nil {
		return UpstreamHealth{}, err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return UpstreamHealth{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return UpstreamHealth{}, fmt.Errorf("healthz answered %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return UpstreamHealth{}, err
	}
	return DecodeUpstreamHealth(data)
}

// pollTimeout bounds one health poll: the poll interval, floored so a
// sub-100ms test interval doesn't flake on a loaded machine.
func (rt *Router) pollTimeout() time.Duration {
	if rt.cfg.Poll < 250*time.Millisecond {
		return 250 * time.Millisecond
	}
	return rt.cfg.Poll
}

// controlTimeout bounds one control call (promote/demote/repoint).
func (rt *Router) controlTimeout() time.Duration {
	d := 4 * rt.cfg.Poll
	if d < 2*time.Second {
		d = 2 * time.Second
	}
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	return d
}

// decide updates the router's belief about who the primary is and
// drives the topology toward it. The order of the rules matters:
//
//  1. The current primary is healthy and writable → keep it, and fence
//     any OTHER healthy writable (a healed old primary must not
//     split-brain the topology).
//  2. Some other upstream is healthy and writable → adopt the
//     most-caught-up one. This is what makes a router restart after a
//     failover converge instead of demoting the survivor, and what
//     lets two routers coexist (the second adopts the first's choice).
//  3. The current primary has failed fewer than FailAfter consecutive
//     polls → grace period, keep routing to it.
//  4. Otherwise promote the most-caught-up healthy replica (highest
//     replicated seq, URL as tiebreak) — exactly once per failover:
//     after a successful promote the next round takes rule 1 or 2, and
//     a retried promote (response lost on the wire) is idempotent on
//     the serve side.
//
// Finally, any healthy replica tailing a different upstream than the
// chosen primary is repointed at it.
func (rt *Router) decide(ctx context.Context) {
	cur := rt.nodes[rt.curPrimary]
	writable := func(n *nodeState) bool { return n.ok && n.health.Writable }
	switch {
	case cur != nil && writable(cur):
		if !rt.cfg.NoFailover {
			for _, u := range rt.order {
				if n := rt.nodes[u]; u != rt.curPrimary && writable(n) {
					rt.demote(ctx, u)
				}
			}
		}
	case len(rt.pickWritables()) > 0:
		best := rt.pickWritables()[0]
		if best != rt.curPrimary {
			rt.cfg.Logf("router: adopting %s as primary (writable, seq %d)", best, rt.nodes[best].health.Seq())
			rt.curPrimary = best
		}
	case cur != nil && !cur.ok && cur.fails < rt.cfg.FailAfter:
		// Grace period: a transient blip should not churn the topology.
		// It applies only while polls are FAILING — a primary that
		// answers but reports itself unwritable (fenced, or restarted
		// into replica mode) is not coming back, so failover proceeds
		// without waiting out the window.
	case rt.cfg.NoFailover:
		// Observe-only: keep the belief, let writes fail loudly.
	default:
		rt.failover(ctx)
	}
	if !rt.cfg.NoFailover && rt.curPrimary != "" {
		if n := rt.nodes[rt.curPrimary]; n != nil && writable(n) {
			rt.converge(ctx)
		}
	}
}

// pickWritables lists healthy writable upstreams, most caught-up first
// (URL as tiebreak, so the ordering is total and deterministic).
func (rt *Router) pickWritables() []string {
	var out []string
	for _, u := range rt.order {
		if n := rt.nodes[u]; n.ok && n.health.Writable {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := rt.nodes[out[i]].health.Seq(), rt.nodes[out[j]].health.Seq()
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// failover promotes the most-caught-up healthy replica. On success the
// local health cache is patched so the very next request routes writes
// to the new primary without waiting a poll round. An indeterminate
// promote — a transport error, where the POST may have landed — parks
// the failover on that one target until its health answers again (a
// healthy poll is definitive either way) or it has been dead FailAfter
// polls; promoting a second node while the first's outcome is unknown
// could mint two primaries from one lost response.
func (rt *Router) failover(ctx context.Context) {
	if p := rt.pendingPromote; p != "" {
		n := rt.nodes[p]
		switch {
		case n.ok:
			rt.pendingPromote = "" // heard from it: its health doc is the truth
		case n.fails < rt.cfg.FailAfter:
			return // outcome unknown and the node may yet answer: hold
		default:
			rt.pendingPromote = "" // written off like a dead primary
		}
	}
	var cands []string
	for _, u := range rt.order {
		if n := rt.nodes[u]; n.ok && n.health.DerivedRole() == "replica" {
			cands = append(cands, u)
		}
	}
	if len(cands) == 0 {
		return // nothing promotable this round; keep trying
	}
	sort.Slice(cands, func(i, j int) bool {
		si, sj := rt.nodes[cands[i]].health.Seq(), rt.nodes[cands[j]].health.Seq()
		if si != sj {
			return si > sj
		}
		return cands[i] < cands[j]
	})
	best := cands[0]
	definitive, err := rt.control(ctx, best, "/v1/promote", nil)
	if err != nil {
		if !definitive {
			rt.pendingPromote = best
		}
		rt.cfg.Logf("router: promoting %s failed: %v", best, err)
		return
	}
	n := rt.nodes[best]
	rt.cfg.Logf("router: promoted %s (seq %d) after %d failed polls of %s",
		best, n.health.Seq(), rt.nodes[rt.curPrimary].fails, rt.curPrimary)
	n.health.Writable = true
	n.health.Role = "primary"
	rt.curPrimary = best
	rt.failovers.Add(1)
}

// converge repoints healthy replicas that are tailing something other
// than the current primary — the post-failover cleanup that lets the
// surviving siblings (and a rejoined old primary) follow the new head.
func (rt *Router) converge(ctx context.Context) {
	for _, u := range rt.order {
		n := rt.nodes[u]
		if u == rt.curPrimary || !n.ok || n.health.Replica == nil || n.health.Writable {
			continue
		}
		if strings.TrimRight(n.health.Replica.Primary, "/") == rt.curPrimary {
			continue
		}
		if _, err := rt.control(ctx, u, "/v1/repoint", map[string]string{"primary": rt.curPrimary}); err != nil {
			rt.cfg.Logf("router: repointing %s at %s failed: %v", u, rt.curPrimary, err)
			continue
		}
		rt.cfg.Logf("router: repointed %s at %s", u, rt.curPrimary)
		n.health.Replica.Primary = rt.curPrimary
		rt.repoints.Add(1)
	}
}

// demote fences one upstream out of write mode.
func (rt *Router) demote(ctx context.Context, upstream string) {
	if _, err := rt.control(ctx, upstream, "/v1/demote", nil); err != nil {
		rt.cfg.Logf("router: demoting %s failed: %v", upstream, err)
		return
	}
	rt.cfg.Logf("router: demoted %s (split-brain guard; primary is %s)", upstream, rt.curPrimary)
	n := rt.nodes[upstream]
	n.health.Writable = false
	n.health.Role = "fenced"
	rt.demotions.Add(1)
}

// control issues one POST control call against an upstream. The bool
// reports whether the outcome is definitive: true when an HTTP status
// came back (success or refusal), false on a transport error, where
// the call may have been applied with its response lost on the wire.
func (rt *Router) control(ctx context.Context, upstream, path string, body any) (bool, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.controlTimeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return true, err
		}
		rd = strings.NewReader(string(b))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, upstream+path, rd)
	if err != nil {
		return true, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return true, fmt.Errorf("%s answered %d: %s", path, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return true, nil
}

// publish swaps in a fresh routing table reflecting the round.
func (rt *Router) publish(now time.Time) {
	tb := &table{built: now}
	if n := rt.nodes[rt.curPrimary]; n != nil && n.ok && n.health.Writable {
		tb.primary = rt.curPrimary
		tb.primaryURL = rt.urls[rt.curPrimary]
	}
	for _, u := range rt.order {
		n := rt.nodes[u]
		st := nodeStatus{URL: u, Fails: n.fails, Error: n.lastErr}
		if n.ok {
			st.Healthy = true
			st.Role = n.health.DerivedRole()
			st.Seq = n.health.Seq()
			st.StalenessSeconds = n.health.Staleness().Seconds()
			if u != tb.primary && st.Role == "replica" {
				tb.readers = append(tb.readers, reader{
					url:       rt.urls[u],
					raw:       u,
					staleness: n.health.Staleness(),
					polled:    n.polled,
					seq:       n.health.Seq(),
				})
			}
		}
		tb.nodes = append(tb.nodes, st)
	}
	rt.table.Store(tb)
}
