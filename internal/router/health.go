package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// UpstreamHealth is the router's view of one upstream's /healthz
// document (internal/serve's health shape). The decoder keeps only the
// fields routing decisions consume and tolerates unknown ones — a newer
// serve build may add fields freely without breaking an older router —
// but what it does keep it validates hard: a health document is an
// input from the network, and a garbage seq or negative staleness must
// not steer failover.
type UpstreamHealth struct {
	// Status is the upstream's self-reported liveness: "ok" or
	// "degraded" (a degraded upstream still serves; see DerivedRole and
	// the routing policy for how each is used).
	Status string `json:"status"`
	// Writable reports whether the upstream accepts writes right now.
	Writable bool `json:"writable"`
	// Role is the upstream's self-reported topology role ("primary",
	// "replica", "fenced", "static"); empty on pre-router serve builds,
	// where DerivedRole infers it.
	Role string `json:"role,omitempty"`
	// Subjects is the visible gallery size.
	Subjects int `json:"subjects"`
	// Promotions counts role flips into primary over the process life.
	Promotions int64 `json:"promotions,omitempty"`
	// Live carries the engine counters of a live-backed upstream.
	Live *LiveHealth `json:"live,omitempty"`
	// Replica carries replication-lag figures on a replica upstream.
	Replica *ReplicaHealth `json:"replica,omitempty"`
}

// LiveHealth is the slice of the health document's "live" block the
// router consumes.
type LiveHealth struct {
	// Generation is the engine's on-disk generation.
	Generation int `json:"generation"`
	// Seq is the engine's head mutation sequence.
	Seq int64 `json:"seq"`
}

// ReplicaHealth is the slice of the health document's "replica" block
// the router consumes.
type ReplicaHealth struct {
	// Primary is the upstream base URL this replica tails.
	Primary string `json:"primary"`
	// Connected reports whether the replication stream is open.
	Connected bool `json:"connected"`
	// Seq is the replica's durably applied head sequence.
	Seq int64 `json:"seq"`
	// PrimarySeq is the primary's head as of last contact.
	PrimarySeq int64 `json:"primary_seq"`
	// SeqLag is max(PrimarySeq-Seq, 0).
	SeqLag int64 `json:"seq_lag"`
	// StalenessSeconds is the wall-clock time since the replica last
	// heard from its primary — an upper bound on its data age.
	StalenessSeconds float64 `json:"staleness_seconds"`
}

// healthStatuses are the liveness values a serve build emits.
var healthStatuses = map[string]bool{"ok": true, "degraded": true}

// healthRoles are the role values a serve build emits ("" = pre-router
// build, role inferred by DerivedRole).
var healthRoles = map[string]bool{"": true, "primary": true, "replica": true, "fenced": true, "static": true}

// DecodeUpstreamHealth parses one upstream /healthz document. Unknown
// fields are ignored; known fields are validated: a document with an
// unrecognized status or role, a negative counter, or a non-finite
// staleness is rejected outright rather than half-trusted. The decode
// is reject-or-roundtrip: any accepted document re-encodes and
// re-decodes to the same value (FuzzDecodeUpstreamHealth pins this).
func DecodeUpstreamHealth(data []byte) (UpstreamHealth, error) {
	var h UpstreamHealth
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&h); err != nil {
		return UpstreamHealth{}, fmt.Errorf("router: bad health document: %w", err)
	}
	// One JSON value per document: trailing data means a confused (or
	// hostile) upstream.
	if dec.More() {
		return UpstreamHealth{}, fmt.Errorf("router: health document has trailing data")
	}
	if !healthStatuses[h.Status] {
		return UpstreamHealth{}, fmt.Errorf("router: health status %q is not ok|degraded", h.Status)
	}
	if !healthRoles[h.Role] {
		return UpstreamHealth{}, fmt.Errorf("router: health role %q unrecognized", h.Role)
	}
	if h.Subjects < 0 || h.Promotions < 0 {
		return UpstreamHealth{}, fmt.Errorf("router: negative counter in health document")
	}
	if l := h.Live; l != nil && (l.Seq < 0 || l.Generation < 0) {
		return UpstreamHealth{}, fmt.Errorf("router: negative live counter in health document")
	}
	if r := h.Replica; r != nil {
		if r.Seq < 0 || r.PrimarySeq < 0 || r.SeqLag < 0 {
			return UpstreamHealth{}, fmt.Errorf("router: negative replica counter in health document")
		}
		// NaN and ±Inf never survive json.Marshal, so rejecting the
		// negatives is enough to make StalenessSeconds trustworthy.
		if r.StalenessSeconds < 0 {
			return UpstreamHealth{}, fmt.Errorf("router: negative staleness in health document")
		}
	}
	return h, nil
}

// DerivedRole resolves the upstream's topology role, inferring it from
// the document shape when the upstream predates the explicit role field:
// writable means primary, a replica block means replica, anything else
// is a static read-only store.
func (h UpstreamHealth) DerivedRole() string {
	if h.Role != "" {
		return h.Role
	}
	switch {
	case h.Writable:
		return "primary"
	case h.Replica != nil:
		return "replica"
	}
	return "static"
}

// Seq is the upstream's head mutation sequence from whichever block
// carries it (0 when neither does).
func (h UpstreamHealth) Seq() int64 {
	switch {
	case h.Replica != nil:
		return h.Replica.Seq
	case h.Live != nil:
		return h.Live.Seq
	}
	return 0
}

// Staleness is the upstream's self-reported data age: zero on a
// primary (it is the source of truth), the replication staleness on a
// replica.
func (h UpstreamHealth) Staleness() time.Duration {
	if h.Replica != nil {
		return time.Duration(h.Replica.StalenessSeconds * float64(time.Second))
	}
	return 0
}
