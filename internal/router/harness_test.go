package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"brainprint/internal/attacker"
	"brainprint/internal/gallery/live"
	"brainprint/internal/replicate"
	"brainprint/internal/serve"
)

// ---- fault-injection harness ----

// flakyProxy is the in-process fault-injection proxy the partition
// tests route traffic through: per request it can drop the connection
// (a transport error for the caller), delay, or sever everything —
// decided by a seeded RNG for rate-based modes and by explicit
// counters for scripted ones. dropResponseNext is the nasty case: the
// request REACHES the backend and is processed, but the response dies
// on the wire — how a promotion gets applied with its acknowledgment
// lost.
type flakyProxy struct {
	t       *testing.T
	srv     *httptest.Server
	backend string
	forward *httputil.ReverseProxy

	mu       sync.Mutex
	rng      *rand.Rand
	dropP    float64        // P(drop request before it reaches the backend)
	delayP   float64        // P(delay a request)
	delay    time.Duration  // how long a delayed request sleeps
	severed  bool           // drop everything (a full partition)
	dropResp map[string]int // path → remaining requests to process-then-abort
}

// newFlaky builds a flaky proxy in front of backendURL.
func newFlaky(t *testing.T, backendURL string, seed int64) *flakyProxy {
	t.Helper()
	bu, err := url.Parse(backendURL)
	if err != nil {
		t.Fatalf("backend URL: %v", err)
	}
	f := &flakyProxy{
		t:        t,
		backend:  backendURL,
		forward:  httputil.NewSingleHostReverseProxy(bu),
		rng:      rand.New(rand.NewSource(seed)),
		dropResp: make(map[string]int),
	}
	f.forward.FlushInterval = -1
	f.srv = httptest.NewServer(f)
	t.Cleanup(f.srv.Close)
	return f
}

// URL is the proxy's front address — what the victim dials instead of
// the backend.
func (f *flakyProxy) URL() string { return f.srv.URL }

// sever cuts (or restores) the whole link.
func (f *flakyProxy) sever(on bool) {
	f.mu.Lock()
	f.severed = on
	f.mu.Unlock()
}

// setDrop sets the per-request drop probability.
func (f *flakyProxy) setDrop(p float64) {
	f.mu.Lock()
	f.dropP = p
	f.mu.Unlock()
}

// setDelay makes a fraction p of requests sleep d before forwarding.
func (f *flakyProxy) setDelay(p float64, d time.Duration) {
	f.mu.Lock()
	f.delayP, f.delay = p, d
	f.mu.Unlock()
}

// dropResponseNext makes the next n requests to path reach the backend
// and then lose their responses.
func (f *flakyProxy) dropResponseNext(path string, n int) {
	f.mu.Lock()
	f.dropResp[path] += n
	f.mu.Unlock()
}

func (f *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	severed := f.severed
	drop := f.dropP > 0 && f.rng.Float64() < f.dropP
	var delay time.Duration
	if f.delayP > 0 && f.rng.Float64() < f.delayP {
		delay = f.delay
	}
	dropResp := false
	if f.dropResp[r.URL.Path] > 0 {
		f.dropResp[r.URL.Path]--
		dropResp = true
	}
	f.mu.Unlock()

	if severed || drop {
		panic(http.ErrAbortHandler) // aborts the connection: a transport error, not an HTTP status
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if dropResp {
		// Deliver the request for real, discard the backend's answer,
		// then kill the client's connection.
		body, _ := io.ReadAll(r.Body)
		req, err := http.NewRequest(r.Method, f.backend+r.URL.RequestURI(), bytes.NewReader(body))
		if err == nil {
			req.Header = r.Header.Clone()
			if resp, rerr := http.DefaultClient.Do(req); rerr == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		panic(http.ErrAbortHandler)
	}
	f.forward.ServeHTTP(w, r)
}

// ---- scripted fake upstreams ----

// fakeNode is a scripted upstream: a health document the test controls
// plus counting control endpoints — for pinning the router's decision
// logic without real engines.
type fakeNode struct {
	srv *httptest.Server

	mu            sync.Mutex
	health        UpstreamHealth
	down          bool // healthz answers 500
	downAfterFlip bool // go dark the instant a promote flips this node
	flips         int  // promote calls that actually flipped replica→primary
	promoteCalls  int
	demoteCalls   int
	repointedTo   []string
}

// newFakeNode builds a fake upstream with the given starting health.
func newFakeNode(t *testing.T, h UpstreamHealth) *fakeNode {
	t.Helper()
	n := &fakeNode{health: h}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.down {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		_ = json.NewEncoder(w).Encode(n.health)
	})
	mux.HandleFunc("POST /v1/promote", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.promoteCalls++
		if n.health.Writable {
			_ = json.NewEncoder(w).Encode(map[string]any{"role": "primary", "already_primary": true})
			return
		}
		n.flips++
		n.health.Writable = true
		n.health.Role = "primary"
		n.health.Live = &LiveHealth{Seq: n.health.Seq()}
		n.health.Replica = nil
		if n.downAfterFlip {
			n.down = true
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"role": "primary"})
	})
	mux.HandleFunc("POST /v1/demote", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.demoteCalls++
		n.health.Writable = false
		n.health.Role = "fenced"
		_ = json.NewEncoder(w).Encode(map[string]any{"role": "fenced"})
	})
	mux.HandleFunc("POST /v1/repoint", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Primary string `json:"primary"`
		}
		_ = json.NewDecoder(r.Body).Decode(&body)
		n.mu.Lock()
		defer n.mu.Unlock()
		n.repointedTo = append(n.repointedTo, body.Primary)
		if n.health.Replica != nil {
			n.health.Replica.Primary = body.Primary
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"primary": body.Primary})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]string{"served_by": n.srv.URL})
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

func (n *fakeNode) url() string { return n.srv.URL }

// set mutates the scripted health under the node's lock.
func (n *fakeNode) set(mut func(h *UpstreamHealth)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	mut(&n.health)
}

// setDown makes /healthz answer 500 (a failed poll) until restored.
func (n *fakeNode) setDown(down bool) {
	n.mu.Lock()
	n.down = down
	n.mu.Unlock()
}

// snapshot reads the counters under the lock.
func (n *fakeNode) snapshot() (flips, promoteCalls, demoteCalls int, repointedTo []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.flips, n.promoteCalls, n.demoteCalls, append([]string(nil), n.repointedTo...)
}

// fakeReplicaHealth is a healthy replica document at the given seq and
// staleness, tailing primary.
func fakeReplicaHealth(primary string, seq int64, staleness float64) UpstreamHealth {
	return UpstreamHealth{
		Status: "ok", Role: "replica", Subjects: int(seq),
		Replica: &ReplicaHealth{Primary: primary, Connected: true, Seq: seq, PrimarySeq: seq, StalenessSeconds: staleness},
	}
}

// fakePrimaryHealth is a healthy writable primary document at the
// given seq.
func fakePrimaryHealth(seq int64) UpstreamHealth {
	return UpstreamHealth{Status: "ok", Role: "primary", Writable: true, Subjects: int(seq), Live: &LiveHealth{Seq: seq}}
}

// ---- real-topology helpers ----

const testFeatures = 16

// topoNode is one real serving node: a live engine or WAL-shipping
// replica under a real serve.Server.
type topoNode struct {
	url   string
	srv   *httptest.Server
	serve *serve.Server
	eng   *live.Engine       // primary only
	rep   *replicate.Replica // replica only
}

// randVec yields a deterministic pseudo-random fingerprint.
func randVec(rng *rand.Rand) []float64 {
	v := make([]float64, testFeatures)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// startPrimary builds a writable primary with n enrolled subjects and
// its replication surface mounted.
func startPrimary(t *testing.T, n int) *topoNode {
	t.Helper()
	eng, err := live.Create(filepath.Join(t.TempDir(), "primary"), testFeatures, nil, live.Options{NoSync: true})
	if err != nil {
		t.Fatalf("live.Create: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < n; i++ {
		if err := eng.Enroll(fmt.Sprintf("subj-%02d", i), randVec(rng)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	atk, err := attacker.New(nil, attacker.WithMutableGallery(eng), attacker.WithTopK(3))
	if err != nil {
		t.Fatalf("attacker.New: %v", err)
	}
	s, err := serve.New(atk, serve.Config{Live: eng})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return &topoNode{url: srv.URL, srv: srv, serve: s, eng: eng}
}

// startReplicaNode builds a serving replica tailing primaryURL.
func startReplicaNode(t *testing.T, primaryURL string) *topoNode {
	t.Helper()
	rep, err := replicate.Start(primaryURL, filepath.Join(t.TempDir(), "replica"), replicate.Options{
		Backoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, Poll: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("replicate.Start: %v", err)
	}
	t.Cleanup(func() { rep.Close() })
	atk, err := attacker.New(rep, attacker.WithTopK(3))
	if err != nil {
		t.Fatalf("attacker.New: %v", err)
	}
	s, err := serve.New(atk, serve.Config{Replica: rep})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	// If the node gets promoted, engine ownership leaves the replica
	// (rep.Close no longer closes it) — the test must.
	t.Cleanup(func() {
		if s.Writable() {
			rep.Engine().Close()
		}
	})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return &topoNode{url: srv.URL, srv: srv, serve: s, rep: rep}
}

// startRouter builds a router, runs its poll loop in the background,
// and serves its handler.
func startRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go rt.Watch(ctx)
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)
	return rt, srv
}

// fastRouter is the test-speed router config over the given topology.
func fastRouter(primary string, replicas ...string) Config {
	return Config{
		Primary:      primary,
		Replicas:     replicas,
		Poll:         50 * time.Millisecond,
		FailAfter:    2,
		MaxStaleness: 30 * time.Second,
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// routerHealth fetches and decodes the router's own health document.
func routerHealth(t *testing.T, routerURL string) map[string]any {
	t.Helper()
	resp, err := http.Get(routerURL + "/healthz")
	if err != nil {
		t.Fatalf("router healthz: %v", err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("router healthz body: %v", err)
	}
	return doc
}

// identifyVia issues one identification read through the router,
// optionally with a staleness bound header, and reports the status,
// the upstream that served it, and the response body.
func identifyVia(t *testing.T, routerURL string, probe []float64, bound string) (int, string, string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"probe": probe})
	req, err := http.NewRequest(http.MethodPost, routerURL+"/v1/identify", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if bound != "" {
		req.Header.Set(HeaderMaxStaleness, bound)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("identify via router: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get(HeaderUpstream), string(data)
}

// enrollVia issues one write through the router.
func enrollVia(t *testing.T, routerURL, id string, vec []float64) (int, string, string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"id": id, "fingerprint": vec})
	resp, err := http.Post(routerURL+"/v1/enroll", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("enroll via router: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get(HeaderUpstream), string(data)
}
