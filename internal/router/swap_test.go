package router

import (
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestTableSwapUnderTraffic hammers reads and writes through the
// router while the routing table is swapped as fast as the poll loop
// can go — two fake upstreams trading the primary role every few
// milliseconds. Every request must complete with a coherent status
// (200 served, 502 upstream died mid-request, 503 no route); run under
// -race in CI, this is the lock-free-table proof.
func TestTableSwapUnderTraffic(t *testing.T) {
	a := newFakeNode(t, fakePrimaryHealth(50))
	b := newFakeNode(t, fakeReplicaHealth("", 50, 0.01))
	_, rsrv := startRouter(t, Config{
		Primary:    a.url(),
		Replicas:   []string{b.url()},
		Poll:       5 * time.Millisecond, // swap tables as fast as possible
		FailAfter:  2,
		NoFailover: true, // the fakes flip themselves; the router must only observe
	})
	waitUntil(t, 10*time.Second, "convergence", func() bool {
		return routerHealth(t, rsrv.URL)["primary"] == a.url()
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// The flipper: the two nodes trade roles continuously, so successive
	// published tables disagree about who is primary and who reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		flip := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			flip = !flip
			aPrimary := flip
			a.set(func(h *UpstreamHealth) {
				h.Writable = aPrimary
				if aPrimary {
					h.Role = "primary"
				} else {
					h.Role = "replica"
					h.Replica = &ReplicaHealth{Seq: 50, StalenessSeconds: 0.01}
				}
			})
			b.set(func(h *UpstreamHealth) {
				h.Writable = !aPrimary
				if !aPrimary {
					h.Role = "primary"
				} else {
					h.Role = "replica"
					h.Replica = &ReplicaHealth{Seq: 50, StalenessSeconds: 0.01}
				}
			})
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// The hammer: concurrent reads and writes must always see a coherent
	// table — one atomic load, no torn routing state.
	okStatuses := map[int]bool{
		http.StatusOK:                 true,
		http.StatusCreated:            true,
		http.StatusBadGateway:         true, // upstream flipped away mid-request
		http.StatusServiceUnavailable: true, // no route in this table generation
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(write bool) {
			defer wg.Done()
			probe := make([]float64, testFeatures)
			for {
				select {
				case <-stop:
					return
				default:
				}
				var code int
				if write {
					code, _, _ = enrollVia(t, rsrv.URL, "hammer", probe)
				} else {
					code, _, _ = identifyVia(t, rsrv.URL, probe, "1")
				}
				if !okStatuses[code] {
					t.Errorf("incoherent status %d under table swaps", code)
					return
				}
			}
		}(g%2 == 0)
	}

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The router survived; its own surface is still coherent.
	doc := routerHealth(t, rsrv.URL)
	if doc["role"] != "router" {
		t.Fatalf("router healthz after the hammer: %v", doc)
	}
}
