// Package report renders experiment results as terminal-friendly text:
// ASCII heatmaps standing in for the paper's matrix figures, aligned
// tables standing in for its result tables, and scatter plots for the
// t-SNE embeddings.
package report

import (
	"fmt"
	"math"
	"strings"

	"brainprint/internal/linalg"
)

// shades orders glyphs from low to high intensity.
var shades = []rune(" .:-=+*#%@")

// Heatmap renders a matrix as an ASCII intensity map, one glyph per
// cell, normalized to the matrix's own min/max range. Row and column
// labels are optional (pass nil). Large matrices are downsampled to at
// most maxCells cells per side by block averaging, mirroring how the
// paper's pixel figures compress 100×100 matrices.
func Heatmap(m *linalg.Matrix, rowLabels, colLabels []string, maxCells int) string {
	rows, cols := m.Dims()
	if rows == 0 || cols == 0 {
		return "(empty matrix)\n"
	}
	if maxCells <= 0 {
		maxCells = 60
	}
	display := m
	if rows > maxCells || cols > maxCells {
		display = downsample(m, maxCells)
		rowLabels, colLabels = nil, nil
		rows, cols = display.Dims()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range display.RawData() {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var sb strings.Builder
	labelWidth := 0
	for _, l := range rowLabels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	for i := 0; i < rows; i++ {
		if rowLabels != nil && i < len(rowLabels) {
			fmt.Fprintf(&sb, "%*s ", labelWidth, rowLabels[i])
		}
		for j := 0; j < cols; j++ {
			v := display.At(i, j)
			idx := 0
			if span > 0 {
				idx = int((v - lo) / span * float64(len(shades)-1))
				if idx < 0 {
					idx = 0
				}
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			sb.WriteRune(shades[idx])
		}
		sb.WriteByte('\n')
	}
	if colLabels != nil {
		if labelWidth > 0 {
			sb.WriteString(strings.Repeat(" ", labelWidth+1))
		}
		sb.WriteString(strings.Join(colLabels, " "))
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "scale: %q = %.3f .. %q = %.3f\n", string(shades[0]), lo, string(shades[len(shades)-1]), hi)
	return sb.String()
}

// downsample block-averages m down to at most side cells per dimension.
func downsample(m *linalg.Matrix, side int) *linalg.Matrix {
	rows, cols := m.Dims()
	outR, outC := rows, cols
	if outR > side {
		outR = side
	}
	if outC > side {
		outC = side
	}
	out := linalg.NewMatrix(outR, outC)
	for i := 0; i < outR; i++ {
		r0 := i * rows / outR
		r1 := (i + 1) * rows / outR
		if r1 == r0 {
			r1 = r0 + 1
		}
		for j := 0; j < outC; j++ {
			c0 := j * cols / outC
			c1 := (j + 1) * cols / outC
			if c1 == c0 {
				c1 = c0 + 1
			}
			var sum float64
			for r := r0; r < r1; r++ {
				for c := c0; c < c1; c++ {
					sum += m.At(r, c)
				}
			}
			out.Set(i, j, sum/float64((r1-r0)*(c1-c0)))
		}
	}
	return out
}

// Table renders rows under headers with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i >= len(widths) {
				break
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
			if i < len(widths)-1 {
				sb.WriteString("  ")
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// Scatter renders labelled 2-D points (an n×2 matrix) on a character
// grid, using one digit/letter per label class — the textual analogue of
// the paper's Figure 6 cluster plot.
func Scatter(points *linalg.Matrix, labels []int, width, height int) string {
	n, dims := points.Dims()
	if n == 0 || dims < 2 {
		return "(no points)\n"
	}
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 28
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		x, y := points.At(i, 0), points.At(i, 1)
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	glyphs := []rune("0123456789abcdefghijklmnopqrstuvwxyz")
	for i := 0; i < n; i++ {
		x := int((points.At(i, 0) - minX) / spanX * float64(width-1))
		y := int((points.At(i, 1) - minY) / spanY * float64(height-1))
		g := '?'
		if labels != nil && i < len(labels) && labels[i] >= 0 && labels[i] < len(glyphs) {
			g = glyphs[labels[i]]
		}
		grid[height-1-y][x] = g
	}
	var sb strings.Builder
	for _, row := range grid {
		sb.WriteString(string(row))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Percent formats a fraction as a percentage with one decimal.
func Percent(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
