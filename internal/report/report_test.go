package report

import (
	"strings"
	"testing"

	"brainprint/internal/linalg"
)

func TestHeatmapBasic(t *testing.T) {
	m, _ := linalg.NewMatrixFromRows([][]float64{
		{0, 1},
		{1, 0},
	})
	s := Heatmap(m, nil, nil, 10)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 { // 2 rows + scale line
		t.Fatalf("lines = %d: %q", len(lines), s)
	}
	// Max value renders as the densest glyph, min as the sparsest.
	if lines[0] != " @" {
		t.Errorf("row 0 = %q want ' @'", lines[0])
	}
	if lines[1] != "@ " {
		t.Errorf("row 1 = %q want '@ '", lines[1])
	}
	if !strings.Contains(s, "scale:") {
		t.Error("missing scale legend")
	}
}

func TestHeatmapConstantMatrix(t *testing.T) {
	m := linalg.NewMatrix(3, 3)
	s := Heatmap(m, nil, nil, 10)
	if !strings.Contains(s, "scale:") {
		t.Error("constant matrix should still render")
	}
}

func TestHeatmapEmpty(t *testing.T) {
	if s := Heatmap(linalg.NewMatrix(0, 0), nil, nil, 10); !strings.Contains(s, "empty") {
		t.Errorf("empty render = %q", s)
	}
}

func TestHeatmapLabels(t *testing.T) {
	m, _ := linalg.NewMatrixFromRows([][]float64{{1, 0}, {0, 1}})
	s := Heatmap(m, []string{"r0", "r1"}, []string{"c0", "c1"}, 10)
	if !strings.Contains(s, "r0") || !strings.Contains(s, "c1") {
		t.Errorf("labels missing:\n%s", s)
	}
}

func TestHeatmapDownsamples(t *testing.T) {
	big := linalg.NewMatrix(100, 100)
	for i := 0; i < 100; i++ {
		big.Set(i, i, 1)
	}
	s := Heatmap(big, nil, nil, 20)
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 21 { // 20 rows + scale
		t.Fatalf("downsampled to %d lines, want 21", len(lines))
	}
	for _, l := range lines[:20] {
		if len([]rune(l)) != 20 {
			t.Fatalf("row width %d want 20: %q", len(l), l)
		}
	}
}

func TestDownsamplePreservesMean(t *testing.T) {
	m := linalg.NewMatrix(10, 10)
	for i := range m.RawData() {
		m.RawData()[i] = float64(i)
	}
	d := downsample(m, 5)
	var origSum, downSum float64
	for _, v := range m.RawData() {
		origSum += v
	}
	for _, v := range d.RawData() {
		downSum += v
	}
	origMean := origSum / 100
	downMean := downSum / 25
	if diff := origMean - downMean; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("downsample changed mean: %v vs %v", origMean, downMean)
	}
}

func TestTableAlignment(t *testing.T) {
	s := Table([]string{"task", "accuracy"}, [][]string{
		{"REST", "94.0%"},
		{"LANGUAGE", "90.0%"},
	})
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "task") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
	// Columns align: "accuracy" starts at the same offset in all rows.
	idx := strings.Index(lines[0], "accuracy")
	if !strings.HasPrefix(lines[2][idx:], "94.0%") {
		t.Errorf("column misaligned: %q", lines[2])
	}
}

func TestTableEmptyRows(t *testing.T) {
	s := Table([]string{"a"}, nil)
	if !strings.Contains(s, "a") {
		t.Error("headers should render with no rows")
	}
}

func TestScatter(t *testing.T) {
	pts, _ := linalg.NewMatrixFromRows([][]float64{
		{0, 0},
		{10, 10},
		{0, 10},
	})
	s := Scatter(pts, []int{0, 1, 2}, 20, 10)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("height = %d want 10", len(lines))
	}
	if !strings.Contains(s, "0") || !strings.Contains(s, "1") || !strings.Contains(s, "2") {
		t.Errorf("glyphs missing:\n%s", s)
	}
	// Point (0,0) is bottom-left, (10,10) top-right.
	if lines[9][0] != '0' {
		t.Errorf("bottom-left should be label 0:\n%s", s)
	}
	if lines[0][19] != '1' {
		t.Errorf("top-right should be label 1:\n%s", s)
	}
}

func TestScatterDegenerate(t *testing.T) {
	if s := Scatter(linalg.NewMatrix(0, 2), nil, 10, 5); !strings.Contains(s, "no points") {
		t.Errorf("empty scatter = %q", s)
	}
	// Single point / zero span must not divide by zero.
	one, _ := linalg.NewMatrixFromRows([][]float64{{3, 3}})
	if s := Scatter(one, []int{0}, 10, 5); !strings.Contains(s, "0") {
		t.Errorf("single point missing:\n%s", s)
	}
}

func TestScatterUnknownLabel(t *testing.T) {
	pts, _ := linalg.NewMatrixFromRows([][]float64{{0, 0}, {1, 1}})
	s := Scatter(pts, []int{0, 99}, 10, 5)
	if !strings.Contains(s, "?") {
		t.Error("out-of-range label should render '?'")
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.945); got != "94.5%" {
		t.Errorf("Percent = %q", got)
	}
}
