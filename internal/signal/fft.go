// Package signal provides the temporal signal-processing substrate used
// by the fMRI preprocessing pipeline: an FFT for arbitrary lengths,
// frequency-domain bandpass filtering, detrending, smoothing kernels and
// the canonical haemodynamic response function (HRF) used to synthesize
// task activations.
package signal

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x. The input may have
// any length: power-of-two lengths use the iterative radix-2
// Cooley-Tukey algorithm; other lengths use Bluestein's chirp-z
// transform (which internally pads to a power of two).
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := make([]complex128, n)
		copy(out, x)
		radix2(out, false)
		return out
	}
	return bluestein(x, false)
}

// IFFT computes the inverse discrete Fourier transform of x, including
// the 1/n normalization.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	var out []complex128
	if n&(n-1) == 0 {
		out = make([]complex128, n)
		copy(out, x)
		radix2(out, true)
	} else {
		out = bluestein(x, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// radix2 performs an in-place iterative radix-2 FFT. len(x) must be a
// power of two. If inverse is true the conjugate transform is computed
// (without the 1/n scaling).
func radix2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes a DFT of arbitrary length via the chirp-z
// transform, expressing it as a convolution that is evaluated with a
// padded power-of-two FFT.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp sequence w_k = exp(sign·iπk²/n). k² mod 2n avoids precision
	// loss for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := int64(k) * int64(k) % int64(2*n)
		ang := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = cmplx.Exp(complex(0, ang))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		inv := cmplx.Conj(chirp[k])
		b[k] = inv
		if k > 0 {
			b[m-k] = inv
		}
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * chirp[k]
	}
	return out
}

// FFTReal transforms a real series, returning the full complex spectrum.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// Bandpass filters a real time series in the frequency domain, keeping
// only components with |f| in [lowHz, highHz]. dt is the sampling
// interval in seconds (the fMRI TR). Setting lowHz = 0 yields a low-pass
// filter; setting highHz ≥ Nyquist yields a high-pass filter. The DC
// component is retained only when lowHz = 0.
//
// It returns an error if the cutoffs are invalid.
func Bandpass(x []float64, dt, lowHz, highHz float64) ([]float64, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("signal: nonpositive sampling interval %v", dt)
	}
	if lowHz < 0 || highHz < lowHz {
		return nil, fmt.Errorf("signal: invalid band [%v, %v]", lowHz, highHz)
	}
	n := len(x)
	if n == 0 {
		return nil, nil
	}
	spec := FFTReal(x)
	df := 1 / (float64(n) * dt)
	for k := range spec {
		// Frequency of bin k (two-sided spectrum).
		var f float64
		if k <= n/2 {
			f = float64(k) * df
		} else {
			f = float64(n-k) * df
		}
		keep := f >= lowHz && f <= highHz
		if k == 0 {
			keep = lowHz == 0
		}
		if !keep {
			spec[k] = 0
		}
	}
	inv := IFFT(spec)
	out := make([]float64, n)
	for i, v := range inv {
		out[i] = real(v)
	}
	return out, nil
}

// Detrend removes the best-fit line (least squares) from x in place and
// returns the slope and intercept that were removed.
func Detrend(x []float64) (slope, intercept float64) {
	n := len(x)
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		intercept = x[0]
		x[0] = 0
		return 0, intercept
	}
	// Closed-form simple linear regression on t = 0..n-1.
	tMean := float64(n-1) / 2
	var xMean, stx, stt float64
	for _, v := range x {
		xMean += v
	}
	xMean /= float64(n)
	for t, v := range x {
		dt := float64(t) - tMean
		stx += dt * (v - xMean)
		stt += dt * dt
	}
	slope = stx / stt
	intercept = xMean - slope*tMean
	for t := range x {
		x[t] -= slope*float64(t) + intercept
	}
	return slope, intercept
}

// GaussianKernel returns a normalized 1-D Gaussian kernel with the given
// standard deviation (in samples), truncated at ±3σ. The kernel always
// has odd length and sums to 1.
func GaussianKernel(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	radius := int(math.Ceil(3 * sigma))
	k := make([]float64, 2*radius+1)
	var sum float64
	for i := -radius; i <= radius; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		k[i+radius] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// Convolve returns the "same"-length convolution of x with kernel k,
// using edge replication at the boundaries. The kernel length must be
// odd.
func Convolve(x, k []float64) ([]float64, error) {
	if len(k)%2 == 0 {
		return nil, fmt.Errorf("signal: Convolve kernel length %d must be odd", len(k))
	}
	n := len(x)
	out := make([]float64, n)
	radius := len(k) / 2
	for i := 0; i < n; i++ {
		var s float64
		for j := -radius; j <= radius; j++ {
			idx := i + j
			if idx < 0 {
				idx = 0
			} else if idx >= n {
				idx = n - 1
			}
			s += x[idx] * k[j+radius]
		}
		out[i] = s
	}
	return out, nil
}
