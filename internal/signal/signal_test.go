package signal

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference implementation used to validate FFT.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func complexSlicesClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Cover radix-2 sizes and awkward Bluestein sizes (primes, odd).
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 30, 64, 100} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := FFT(x)
		want := naiveDFT(x)
		if !complexSlicesClose(got, want, 1e-8*float64(n)) {
			t.Errorf("n=%d: FFT does not match naive DFT", n)
		}
	}
}

func TestFFTEmptyAndSingle(t *testing.T) {
	if FFT(nil) != nil {
		t.Error("FFT(nil) should be nil")
	}
	got := FFT([]complex128{complex(3, 0)})
	if len(got) != 1 || cmplx.Abs(got[0]-complex(3, 0)) > 1e-12 {
		t.Errorf("FFT singleton = %v", got)
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 8, 13, 64, 90} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		back := IFFT(FFT(x))
		if !complexSlicesClose(back, x, 1e-9*float64(n)) {
			t.Errorf("n=%d: IFFT(FFT(x)) != x", n)
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 24
	x := make([]complex128, n)
	y := make([]complex128, n)
	sum := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		y[i] = complex(rng.NormFloat64(), 0)
		sum[i] = x[i] + y[i]
	}
	fx, fy, fsum := FFT(x), FFT(y), FFT(sum)
	for i := range fx {
		if cmplx.Abs(fx[i]+fy[i]-fsum[i]) > 1e-9 {
			t.Fatalf("FFT not linear at bin %d", i)
		}
	}
}

func TestBandpassKeepsInBandSine(t *testing.T) {
	// 0.05 Hz sine sampled at TR = 0.72 s, inside the 0.008–0.1 Hz band.
	const dt = 0.72
	n := 1200
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 0.05 * float64(i) * dt)
	}
	y, err := Bandpass(x, dt, 0.008, 0.1)
	if err != nil {
		t.Fatalf("Bandpass: %v", err)
	}
	var power, origPower float64
	for i := range x {
		power += y[i] * y[i]
		origPower += x[i] * x[i]
	}
	if power < 0.9*origPower {
		t.Errorf("in-band sine attenuated: %.3f of original power", power/origPower)
	}
}

func TestBandpassRemovesOutOfBand(t *testing.T) {
	const dt = 0.72
	n := 1200
	x := make([]float64, n)
	for i := range x {
		// DC offset + very slow drift (0.001 Hz) + high-frequency (0.5 Hz).
		ti := float64(i) * dt
		x[i] = 10 + math.Sin(2*math.Pi*0.001*ti) + math.Sin(2*math.Pi*0.5*ti)
	}
	y, err := Bandpass(x, dt, 0.008, 0.1)
	if err != nil {
		t.Fatalf("Bandpass: %v", err)
	}
	var power float64
	for _, v := range y {
		power += v * v
	}
	power /= float64(n)
	if power > 0.05 {
		t.Errorf("out-of-band power remaining: %v", power)
	}
}

func TestBandpassErrors(t *testing.T) {
	if _, err := Bandpass([]float64{1}, 0, 0, 1); err == nil {
		t.Error("expected error for dt=0")
	}
	if _, err := Bandpass([]float64{1}, 1, 0.5, 0.1); err == nil {
		t.Error("expected error for inverted band")
	}
	out, err := Bandpass(nil, 1, 0, 1)
	if err != nil || out != nil {
		t.Error("empty input should pass through")
	}
}

func TestBandpassDCRetainedForLowpass(t *testing.T) {
	x := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	y, err := Bandpass(x, 1, 0, 0.4)
	if err != nil {
		t.Fatalf("Bandpass: %v", err)
	}
	for _, v := range y {
		if math.Abs(v-5) > 1e-9 {
			t.Fatalf("low-pass should keep DC: %v", y)
		}
	}
}

func TestDetrendRemovesLine(t *testing.T) {
	n := 100
	x := make([]float64, n)
	for i := range x {
		x[i] = 3*float64(i) + 7
	}
	slope, intercept := Detrend(x)
	if math.Abs(slope-3) > 1e-9 || math.Abs(intercept-7) > 1e-9 {
		t.Errorf("slope=%v intercept=%v want 3, 7", slope, intercept)
	}
	for i, v := range x {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("residual at %d: %v", i, v)
		}
	}
}

func TestDetrendDegenerate(t *testing.T) {
	var empty []float64
	if s, i := Detrend(empty); s != 0 || i != 0 {
		t.Error("empty detrend should be 0,0")
	}
	one := []float64{4}
	if _, i := Detrend(one); i != 4 || one[0] != 0 {
		t.Error("single-sample detrend should remove the value")
	}
}

func TestGaussianKernel(t *testing.T) {
	k := GaussianKernel(2)
	if len(k)%2 == 0 {
		t.Error("kernel length must be odd")
	}
	var sum float64
	for _, v := range k {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("kernel sum = %v want 1", sum)
	}
	mid := len(k) / 2
	for i := 0; i < mid; i++ {
		if k[i] != k[len(k)-1-i] {
			t.Error("kernel not symmetric")
		}
		if k[i] > k[i+1] {
			t.Error("kernel not unimodal")
		}
	}
	if got := GaussianKernel(0); len(got) != 1 || got[0] != 1 {
		t.Error("sigma=0 should yield identity kernel")
	}
}

func TestConvolveIdentityAndSmoothing(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	out, err := Convolve(x, []float64{1})
	if err != nil {
		t.Fatalf("Convolve: %v", err)
	}
	for i := range x {
		if out[i] != x[i] {
			t.Fatal("identity kernel changed signal")
		}
	}
	if _, err := Convolve(x, []float64{0.5, 0.5}); err == nil {
		t.Error("even kernel should be rejected")
	}
	// Smoothing a spike spreads mass but preserves the total (away from edges).
	spike := make([]float64, 21)
	spike[10] = 1
	sm, _ := Convolve(spike, GaussianKernel(1.5))
	var sum float64
	for _, v := range sm {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("smoothed mass = %v want 1", sum)
	}
	if sm[10] >= 1 || sm[10] <= 0 {
		t.Errorf("peak should shrink but stay positive: %v", sm[10])
	}
}

func TestCanonicalHRFShape(t *testing.T) {
	h := CanonicalHRF()
	k, err := h.Sample(0.5)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	// Peak normalized to 1, located near 6 s.
	peakIdx := 0
	for i, v := range k {
		if v > k[peakIdx] {
			peakIdx = i
		}
	}
	if math.Abs(k[peakIdx]-1) > 1e-12 {
		t.Errorf("peak = %v want 1", k[peakIdx])
	}
	peakT := float64(peakIdx) * 0.5
	if peakT < 4 || peakT > 7 {
		t.Errorf("peak at %v s, want near 6 s", peakT)
	}
	// Undershoot: some negative values after the peak.
	hasUndershoot := false
	for _, v := range k[peakIdx:] {
		if v < 0 {
			hasUndershoot = true
			break
		}
	}
	if !hasUndershoot {
		t.Error("HRF missing undershoot")
	}
	if _, err := h.Sample(0); err == nil {
		t.Error("expected error for dt=0")
	}
}

func TestBlockDesign(t *testing.T) {
	// 10 s off, 10 s on, dt = 1 s.
	d := BlockDesign(40, 1, 10, 10)
	if d[0] != 0 || d[5] != 0 {
		t.Error("design should start with rest")
	}
	if d[10] != 1 || d[15] != 1 {
		t.Error("design should be on during block")
	}
	if d[20] != 0 {
		t.Error("design should return to rest")
	}
	// Degenerate period.
	z := BlockDesign(5, 1, 0, 0)
	for _, v := range z {
		if v != 0 {
			t.Error("degenerate design should be all zero")
		}
	}
}

func TestConvolveHRFDelaysOnset(t *testing.T) {
	stim := make([]float64, 60)
	for i := 20; i < 40; i++ {
		stim[i] = 1
	}
	resp, err := ConvolveHRF(stim, CanonicalHRF(), 1)
	if err != nil {
		t.Fatalf("ConvolveHRF: %v", err)
	}
	if len(resp) != len(stim) {
		t.Fatalf("length changed: %d", len(resp))
	}
	// Response before stimulus onset must be zero (causality).
	for i := 0; i < 20; i++ {
		if resp[i] != 0 {
			t.Fatalf("non-causal response at %d: %v", i, resp[i])
		}
	}
	// Peak of response should lag the stimulus onset by roughly the HRF
	// peak delay.
	peakIdx := 0
	for i, v := range resp {
		if v > resp[peakIdx] {
			peakIdx = i
		}
	}
	if peakIdx < 24 {
		t.Errorf("response peak at %d, expected lag after onset 20", peakIdx)
	}
}

// Property: Parseval's theorem — energy is conserved by the FFT
// (scaled by n).
func TestQuickParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		spec := FFT(x)
		var freqEnergy float64
		for _, v := range spec {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(freqEnergy-float64(n)*timeEnergy) < 1e-6*(1+freqEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: bandpass filtering is idempotent (filtering twice equals
// filtering once).
func TestQuickBandpassIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		once, err := Bandpass(x, 0.72, 0.008, 0.1)
		if err != nil {
			return false
		}
		twice, err := Bandpass(once, 0.72, 0.008, 0.1)
		if err != nil {
			return false
		}
		for i := range once {
			if math.Abs(once[i]-twice[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
