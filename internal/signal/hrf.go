package signal

import (
	"fmt"
	"math"
)

// HRF models the canonical double-gamma haemodynamic response function:
// a positive response peaking around 6 s followed by a smaller
// undershoot around 16 s. This is the kernel that links neuronal events
// to the BOLD signal that fMRI measures.
type HRF struct {
	PeakDelay       float64 // seconds to the positive peak (default 6)
	UndershootDelay float64 // seconds to the undershoot (default 16)
	PeakDisp        float64 // dispersion of the peak gamma (default 1)
	UndershootDisp  float64 // dispersion of the undershoot gamma (default 1)
	UndershootRatio float64 // peak/undershoot amplitude ratio (default 6)
	Duration        float64 // kernel support in seconds (default 32)
}

// CanonicalHRF returns the standard SPM-style double-gamma HRF
// parameters.
func CanonicalHRF() HRF {
	return HRF{
		PeakDelay:       6,
		UndershootDelay: 16,
		PeakDisp:        1,
		UndershootDisp:  1,
		UndershootRatio: 6,
		Duration:        32,
	}
}

// Sample evaluates the HRF at sampling interval dt seconds, returning a
// kernel normalized so its peak is 1. It returns an error for
// non-positive dt.
func (h HRF) Sample(dt float64) ([]float64, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("signal: HRF sampling interval %v must be positive", dt)
	}
	n := int(h.Duration/dt) + 1
	if n < 2 {
		n = 2
	}
	out := make([]float64, n)
	peak := 0.0
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		v := gammaPDF(t, h.PeakDelay/h.PeakDisp, h.PeakDisp) -
			gammaPDF(t, h.UndershootDelay/h.UndershootDisp, h.UndershootDisp)/h.UndershootRatio
		out[i] = v
		if v > peak {
			peak = v
		}
	}
	if peak > 0 {
		for i := range out {
			out[i] /= peak
		}
	}
	return out, nil
}

// gammaPDF evaluates the gamma distribution density with shape k and
// scale θ at t (zero for t ≤ 0).
func gammaPDF(t, k, theta float64) float64 {
	if t <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(k)
	logp := (k-1)*math.Log(t) - t/theta - k*math.Log(theta) - lg
	return math.Exp(logp)
}

// BlockDesign returns a boxcar stimulus time course of n samples at
// interval dt: blocks of onDur seconds separated by offDur seconds of
// rest, starting with rest of offDur. Amplitude is 1 during blocks.
func BlockDesign(n int, dt, onDur, offDur float64) []float64 {
	out := make([]float64, n)
	period := onDur + offDur
	if period <= 0 {
		return out
	}
	for i := 0; i < n; i++ {
		t := math.Mod(float64(i)*dt, period)
		if t >= offDur {
			out[i] = 1
		}
	}
	return out
}

// ConvolveHRF convolves a stimulus time course with the HRF sampled at
// dt, producing the expected BOLD response (causal convolution, same
// length as the stimulus).
func ConvolveHRF(stimulus []float64, h HRF, dt float64) ([]float64, error) {
	kernel, err := h.Sample(dt)
	if err != nil {
		return nil, err
	}
	n := len(stimulus)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < len(kernel) && j <= i; j++ {
			s += stimulus[i-j] * kernel[j]
		}
		out[i] = s
	}
	return out, nil
}
