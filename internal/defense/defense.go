// Package defense implements gallery-side anonymization: the
// countermeasure side of the paper's attack/defense arms race.
//
// Two layers live here. The release-noise layer (this file) is the
// countermeasure the paper's §4 sketches: because the attack localizes
// identity to a small set of high-leverage connectome features, a data
// publisher can add noise to exactly those features before release,
// spending a distortion budget where it buys the most privacy; Protect
// provides targeted (leverage-guided) and uniform perturbation at
// matched total distortion.
//
// The transform layer (descriptor.go, transform.go) is the persistent
// counterpart: composable, deterministic gallery transforms — k-same
// MDAV microaggregation, feature suppression/generalization, and
// calibrated Gaussian/Laplace DP noise — described by a Descriptor
// that the shard manifest persists and the live engine re-applies at
// every compaction, so a defended gallery stays defended across WAL
// replay, reopen, and replication. Apply is bit-identical at any
// parallelism setting; see DESIGN.md §12 for the determinism argument
// and composition rules.
package defense

import (
	"fmt"
	"math"
	"math/rand"

	"brainprint/internal/linalg"
	"brainprint/internal/sampling"
)

// Strategy selects where the distortion budget is spent.
type Strategy int

// Perturbation strategies.
const (
	// Targeted concentrates the budget on the top-leverage features of
	// the dataset being released — the localized signature region the
	// paper identifies.
	Targeted Strategy = iota
	// Uniform spreads the same total budget over every feature, the
	// naive baseline.
	Uniform
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Targeted:
		return "targeted"
	case Uniform:
		return "uniform"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Result reports one protection run.
type Result struct {
	// Protected is the perturbed group matrix (features × subjects).
	Protected *linalg.Matrix
	// PerturbedFeatures lists the feature rows that received noise.
	PerturbedFeatures []int
	// Distortion is the relative Frobenius distortion
	// ‖protected − original‖F / ‖original‖F.
	Distortion float64
}

// Protect perturbs a group matrix before release. sigma is the noise
// standard deviation applied per targeted feature entry; topFeatures is
// the number of leverage-selected features the targeted strategy
// touches. The uniform strategy spreads the *same expected total
// squared noise* over all features, so the two strategies are compared
// at equal distortion budget.
func Protect(group *linalg.Matrix, strategy Strategy, topFeatures int, sigma float64, rng *rand.Rand) (*Result, error) {
	m, n := group.Dims()
	if m == 0 || n == 0 {
		return nil, fmt.Errorf("defense: empty group matrix")
	}
	if sigma < 0 {
		return nil, fmt.Errorf("defense: negative noise level %v", sigma)
	}
	if topFeatures <= 0 || topFeatures > m {
		return nil, fmt.Errorf("defense: topFeatures=%d out of range (1..%d)", topFeatures, m)
	}
	out := group.Clone()
	var perturbed []int
	switch strategy {
	case Targeted:
		// The publisher computes leverage on its own (to-be-released)
		// dataset; no attacker knowledge is required.
		idx, _, err := sampling.PrincipalFeatures(group, topFeatures)
		if err != nil {
			return nil, err
		}
		perturbed = idx
		for _, f := range idx {
			row := out.RowView(f)
			for s := range row {
				row[s] += sigma * rng.NormFloat64()
			}
		}
	case Uniform:
		// Equal total budget: t·σ² spread over m features.
		sigmaU := sigma * math.Sqrt(float64(topFeatures)/float64(m))
		perturbed = make([]int, m)
		data := out.RawData()
		for i := range data {
			data[i] += sigmaU * rng.NormFloat64()
		}
		for i := range perturbed {
			perturbed[i] = i
		}
	default:
		return nil, fmt.Errorf("defense: unknown strategy %v", strategy)
	}
	orig := group.FrobeniusNorm()
	dist := 0.0
	if orig > 0 {
		dist = out.Sub(group).FrobeniusNorm() / orig
	}
	return &Result{Protected: out, PerturbedFeatures: perturbed, Distortion: dist}, nil
}

// ClampCorrelations clips every entry of a protected group matrix back
// into the valid correlation range [−1, 1], which a publisher would do
// so the released connectomes remain well-formed.
func ClampCorrelations(group *linalg.Matrix) {
	data := group.RawData()
	for i, v := range data {
		if v > 1 {
			data[i] = 1
		} else if v < -1 {
			data[i] = -1
		}
	}
}
