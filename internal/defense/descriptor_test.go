package defense

import (
	"errors"
	"strings"
	"testing"
)

// sampleDescriptors covers every kind, both mechanisms, and multi-step
// composition.
func sampleDescriptors() []*Descriptor {
	return []*Descriptor{
		{Steps: []Step{{Kind: KindKSame, K: 2}}},
		{Steps: []Step{{Kind: KindKSame, K: 1000}}},
		{Steps: []Step{{Kind: KindSuppress, TopFeatures: 20}}},
		{Steps: []Step{{Kind: KindSuppress, TopFeatures: 8, Buckets: 4}}},
		{Steps: []Step{{Kind: KindSuppress, Indices: []int{0, 3, 17}}}},
		{Steps: []Step{{Kind: KindNoise, Mechanism: Gaussian, Epsilon: 2, Delta: 1e-6, Seed: 7}}},
		{Steps: []Step{{Kind: KindNoise, Mechanism: Laplace, Epsilon: 0.5, Seed: 9}}},
		{Steps: []Step{
			{Kind: KindSuppress, TopFeatures: 10},
			{Kind: KindKSame, K: 5},
			{Kind: KindNoise, Mechanism: Gaussian, Epsilon: 8},
		}},
	}
}

func TestDescriptorCodecRoundTrip(t *testing.T) {
	for _, d := range sampleDescriptors() {
		blob, err := EncodeDescriptor(d)
		if err != nil {
			t.Fatalf("encode %s: %v", d, err)
		}
		got, err := DecodeDescriptor(blob)
		if err != nil {
			t.Fatalf("decode %s: %v", d, err)
		}
		if got.String() != d.String() {
			t.Errorf("round trip changed the descriptor: %s -> %s", d, got)
		}
		reblob, err := EncodeDescriptor(got)
		if err != nil {
			t.Fatalf("re-encode %s: %v", got, err)
		}
		if string(reblob) != string(blob) {
			t.Errorf("%s: re-encode is not byte-identical", d)
		}
	}
}

func TestDescriptorNilEncodesEmpty(t *testing.T) {
	blob, err := EncodeDescriptor(nil)
	if err != nil {
		t.Fatalf("encode nil: %v", err)
	}
	if len(blob) != 0 {
		t.Fatalf("nil descriptor encoded to %d bytes, want 0", len(blob))
	}
	d, err := DecodeDescriptor(nil)
	if err != nil {
		t.Fatalf("decode nil: %v", err)
	}
	if d != nil {
		t.Fatalf("decode of empty blob = %v, want nil", d)
	}
}

func TestDescriptorParseStringRoundTrip(t *testing.T) {
	specs := []string{
		"ksame(k=5)",
		"suppress(top=20)",
		"suppress(top=8,buckets=4)",
		"suppress(idx=0;3;17)",
		"noise(gaussian,eps=2,seed=7)",
		"noise(laplace,eps=0.5,seed=9)",
		"suppress(top=10)+ksame(k=5)+noise(gaussian,eps=8)",
	}
	for _, spec := range specs {
		d, err := Parse(spec)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		re, err := Parse(d.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", d.String(), spec, err)
		}
		if re.String() != d.String() {
			t.Errorf("canonical form unstable: %q -> %q -> %q", spec, d, re)
		}
	}
	for _, none := range []string{"", "none", " none "} {
		d, err := Parse(none)
		if err != nil {
			t.Fatalf("parse %q: %v", none, err)
		}
		if d != nil {
			t.Errorf("parse %q = %v, want nil (the undefended pipeline)", none, d)
		}
	}
}

func TestDescriptorValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		d    Descriptor
	}{
		{"ksame k=1", Descriptor{Steps: []Step{{Kind: KindKSame, K: 1}}}},
		{"ksame with epsilon", Descriptor{Steps: []Step{{Kind: KindKSame, K: 2, Epsilon: 1}}}},
		{"suppress nothing", Descriptor{Steps: []Step{{Kind: KindSuppress}}}},
		{"suppress both top and idx", Descriptor{Steps: []Step{{Kind: KindSuppress, TopFeatures: 3, Indices: []int{1}}}}},
		{"suppress unsorted idx", Descriptor{Steps: []Step{{Kind: KindSuppress, Indices: []int{5, 3}}}}},
		{"suppress duplicate idx", Descriptor{Steps: []Step{{Kind: KindSuppress, Indices: []int{3, 3}}}}},
		{"noise eps=0", Descriptor{Steps: []Step{{Kind: KindNoise, Mechanism: Gaussian}}}},
		{"noise negative eps", Descriptor{Steps: []Step{{Kind: KindNoise, Mechanism: Gaussian, Epsilon: -1}}}},
		{"laplace with delta", Descriptor{Steps: []Step{{Kind: KindNoise, Mechanism: Laplace, Epsilon: 1, Delta: 0.1}}}},
		{"delta out of range", Descriptor{Steps: []Step{{Kind: KindNoise, Mechanism: Gaussian, Epsilon: 1, Delta: 1}}}},
		{"unknown kind", Descriptor{Steps: []Step{{Kind: Kind(99)}}}},
		{"no steps", Descriptor{}},
	}
	for _, tc := range cases {
		if err := tc.d.Validate(); !errors.Is(err, ErrDescriptorInvalid) {
			t.Errorf("%s: Validate() = %v, want ErrDescriptorInvalid", tc.name, err)
		}
	}
}

func TestDescriptorParseSyntaxErrors(t *testing.T) {
	for _, spec := range []string{
		"ksame",            // missing arguments
		"ksame(k=two)",     // non-numeric
		"ksame(k=5",        // unbalanced paren
		"bogus(k=5)",       // unknown kind
		"noise(eps=1,q=2)", // unknown key
		"ksame(k=5)+",      // trailing separator
	} {
		if _, err := Parse(spec); !errors.Is(err, ErrDescriptorSyntax) && !errors.Is(err, ErrDescriptorInvalid) {
			t.Errorf("Parse(%q) = %v, want a syntax or validation error", spec, err)
		}
	}
}

func TestDescriptorDecodeRejectsCorruption(t *testing.T) {
	d := &Descriptor{Steps: []Step{
		{Kind: KindSuppress, Indices: []int{1, 4, 9}},
		{Kind: KindNoise, Mechanism: Gaussian, Epsilon: 2, Seed: 3},
	}}
	blob, err := EncodeDescriptor(d)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix length must fail cleanly, never
	// panic or succeed.
	for cut := 1; cut < len(blob); cut++ {
		if _, err := DecodeDescriptor(blob[:cut]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", cut)
		}
	}
	// Trailing garbage is rejected.
	if _, err := DecodeDescriptor(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	// A foreign version is a version error.
	bad := append([]byte(nil), blob...)
	bad[0], bad[1] = 0xFF, 0xFF
	if _, err := DecodeDescriptor(bad); !errors.Is(err, ErrDescriptorVersion) {
		t.Errorf("foreign version: %v, want ErrDescriptorVersion", err)
	}
}

func TestDescriptorSuppressedFeatures(t *testing.T) {
	var nilDesc *Descriptor
	if n := nilDesc.SuppressedFeatures(); n != 0 {
		t.Errorf("nil descriptor suppresses %d features, want 0", n)
	}
	d := &Descriptor{Steps: []Step{
		{Kind: KindSuppress, TopFeatures: 20},
		{Kind: KindSuppress, Indices: []int{0, 1}},
		{Kind: KindKSame, K: 2},
	}}
	if n := d.SuppressedFeatures(); n != 22 {
		t.Errorf("SuppressedFeatures() = %d, want 22", n)
	}
}

func TestStepStrengthOrdering(t *testing.T) {
	weak := Step{Kind: KindNoise, Mechanism: Gaussian, Epsilon: 20}
	strong := Step{Kind: KindNoise, Mechanism: Gaussian, Epsilon: 2}
	if weak.Strength() >= strong.Strength() {
		t.Errorf("strength(eps=20)=%v not below strength(eps=2)=%v", weak.Strength(), strong.Strength())
	}
	if s := (Step{Kind: KindKSame, K: 7}).Strength(); s != 7 {
		t.Errorf("ksame strength = %v, want 7", s)
	}
}

func TestDescriptorStringNames(t *testing.T) {
	d := &Descriptor{Steps: []Step{{Kind: KindNoise, Mechanism: Laplace, Epsilon: 0.5, Seed: 7}}}
	if s := d.String(); !strings.Contains(s, "laplace") {
		t.Errorf("String() = %q, want the mechanism named", s)
	}
	var nilDesc *Descriptor
	if s := nilDesc.String(); s != "none" {
		t.Errorf("nil String() = %q, want \"none\"", s)
	}
}
