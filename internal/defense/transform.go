package defense

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"brainprint/internal/gallery"
	"brainprint/internal/parallel"
)

// Gallery transforms. Apply runs a descriptor's pipeline over a
// gallery's stored fingerprints and returns a fresh defended gallery
// with the same IDs, enrollment order, and geometry. Every transform is
// a pure function of (ordered record list, descriptor), bit-identical
// at any parallelism setting:
//
//   - k-same group selection is a serial greedy loop with index
//     tie-breaks; only the distance evaluations fan out, each worker
//     writing a disjoint range of the distance buffer.
//   - Suppression's variance ranking is computed per feature into
//     disjoint slots and ordered by (variance desc, feature asc).
//   - Noise derives one RNG stream per record from
//     parallel.DeriveSeed(step seed, step index, record index), so the
//     draws a record sees never depend on scheduling.
//
// Because the inputs are the ordered records alone, applying a
// descriptor at enroll time and applying it at compaction time to the
// same record sequence produce byte-identical galleries — the
// equivalence the live engine's defended-compaction test pins.

// Apply runs the descriptor's transform pipeline over g and returns the
// defended gallery (g itself when the descriptor is nil or empty — no
// defense is the identity). The input gallery is never mutated. Stored
// vectors are transformed in gallery space and stored verbatim, without
// re-normalization: defended vectors are deliberately not z-scored
// (a k-same centroid has sub-unit variance), and the scan scores them
// as stored.
func Apply(g *gallery.Gallery, d *Descriptor, parallelism int) (*gallery.Gallery, error) {
	if d == nil || len(d.Steps) == 0 {
		return g, nil
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n, f := g.Len(), g.Features()
	if n == 0 {
		return g, nil
	}
	vecs := make([]float64, n*f)
	for i := 0; i < n; i++ {
		copy(vecs[i*f:(i+1)*f], g.Fingerprint(i))
	}
	for si, s := range d.Steps {
		switch s.Kind {
		case KindKSame:
			applyKSame(vecs, n, f, s.K, parallelism)
		case KindSuppress:
			if err := applySuppress(vecs, n, f, s, parallelism); err != nil {
				return nil, err
			}
		case KindNoise:
			applyNoise(vecs, n, f, s, si, parallelism)
		}
	}
	var out *gallery.Gallery
	if idx := g.FeatureIndex(); idx != nil {
		out = gallery.WithFeatureIndex(idx)
	} else {
		out = gallery.New(f)
	}
	for i, id := range g.IDs() {
		if err := out.EnrollNormalized(id, vecs[i*f:(i+1)*f]); err != nil {
			return nil, fmt.Errorf("defense: rebuilding defended gallery: %w", err)
		}
	}
	return out, nil
}

// applyKSame microaggregates the records with MDAV (maximum distance to
// average vector) and replaces every record with its group's centroid,
// so each released vector is shared by at least k subjects. The
// selection loop is serial — centroid, farthest record r (ties to the
// lower index), r's k−1 nearest records (ties to the lower index), then
// the same from the record farthest from r — which makes the grouping a
// pure function of the record order; only the distance sweeps fan out.
func applyKSame(vecs []float64, n, f, k, parallelism int) {
	if k >= n {
		group := make([]int, n)
		for i := range group {
			group[i] = i
		}
		replaceWithCentroid(vecs, f, group)
		return
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	var groups [][]int
	dist := make([]float64, n)
	centroid := make([]float64, f)

	// distTo fills dist[p] with the squared distance from remaining[p]
	// to point, workers owning disjoint ranges of dist.
	distTo := func(point []float64) {
		parallel.ForWith(parallelism, len(remaining), 64, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				dist[p] = sqDist(vecs[remaining[p]*f:(remaining[p]+1)*f], point)
			}
		})
	}
	// farthest returns the position in remaining with the largest
	// distance in dist, ties to the lower record index.
	farthest := func() int {
		best := 0
		for p := 1; p < len(remaining); p++ {
			if dist[p] > dist[best] || (dist[p] == dist[best] && remaining[p] < remaining[best]) {
				best = p
			}
		}
		return best
	}
	// takeGroup removes the group of remaining[seedPos] plus its k−1
	// nearest records (by the current dist buffer, ties to the lower
	// record index) from remaining and records it.
	takeGroup := func(seedPos int) {
		type cand struct {
			pos int
			d   float64
		}
		cands := make([]cand, 0, len(remaining)-1)
		for p := range remaining {
			if p != seedPos {
				cands = append(cands, cand{pos: p, d: dist[p]})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].d != cands[b].d {
				return cands[a].d < cands[b].d
			}
			return remaining[cands[a].pos] < remaining[cands[b].pos]
		})
		member := map[int]bool{seedPos: true}
		group := []int{remaining[seedPos]}
		for _, c := range cands[:k-1] {
			member[c.pos] = true
			group = append(group, remaining[c.pos])
		}
		groups = append(groups, group)
		kept := remaining[:0]
		for p, rec := range remaining {
			if !member[p] {
				kept = append(kept, rec)
			}
		}
		remaining = kept
	}

	for len(remaining) >= 3*k {
		centroidOf(vecs, f, remaining, centroid)
		distTo(centroid)
		r := farthest()
		rVec := append([]float64(nil), vecs[remaining[r]*f:(remaining[r]+1)*f]...)
		distTo(rVec)
		takeGroup(r)
		distTo(rVec)
		s := farthest()
		sVec := append([]float64(nil), vecs[remaining[s]*f:(remaining[s]+1)*f]...)
		distTo(sVec)
		takeGroup(s)
	}
	if len(remaining) >= 2*k {
		centroidOf(vecs, f, remaining, centroid)
		distTo(centroid)
		r := farthest()
		rVec := append([]float64(nil), vecs[remaining[r]*f:(remaining[r]+1)*f]...)
		distTo(rVec)
		takeGroup(r)
	}
	if len(remaining) > 0 {
		groups = append(groups, append([]int(nil), remaining...))
	}
	for _, group := range groups {
		replaceWithCentroid(vecs, f, group)
	}
}

// centroidOf writes the mean vector of the listed records into out.
func centroidOf(vecs []float64, f int, records []int, out []float64) {
	for j := range out {
		out[j] = 0
	}
	for _, rec := range records {
		v := vecs[rec*f : (rec+1)*f]
		for j, x := range v {
			out[j] += x
		}
	}
	inv := 1 / float64(len(records))
	for j := range out {
		out[j] *= inv
	}
}

// replaceWithCentroid overwrites every listed record with the group
// centroid.
func replaceWithCentroid(vecs []float64, f int, group []int) {
	c := make([]float64, f)
	centroidOf(vecs, f, group, c)
	for _, rec := range group {
		copy(vecs[rec*f:(rec+1)*f], c)
	}
}

// sqDist returns the squared Euclidean distance between two vectors.
func sqDist(a, b []float64) float64 {
	var s float64
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return s
}

// applySuppress zeroes or bucket-generalizes the selected features:
// the explicit index list when given, otherwise the TopFeatures
// highest-variance features of the population (ties to the lower
// feature index) — variance is where identity lives, so suppressing the
// most variable features is the generalization counterpart of the
// paper's targeted-noise defense.
func applySuppress(vecs []float64, n, f int, s Step, parallelism int) error {
	selected := s.Indices
	if len(selected) > 0 {
		for _, idx := range selected {
			if idx >= f {
				return fmt.Errorf("%w: suppress index %d outside %d features (defense suppresses %d features)",
					gallery.ErrDimMismatch, idx, f, len(selected))
			}
		}
	} else {
		if s.TopFeatures > f {
			return fmt.Errorf("%w: defense suppresses %d features but the gallery has only %d",
				gallery.ErrDimMismatch, s.TopFeatures, f)
		}
		variance := make([]float64, f)
		parallel.ForWith(parallelism, f, 16, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				var sum, sumSq float64
				for i := 0; i < n; i++ {
					x := vecs[i*f+j]
					sum += x
					sumSq += x * x
				}
				mean := sum / float64(n)
				variance[j] = sumSq/float64(n) - mean*mean
			}
		})
		order := make([]int, f)
		for j := range order {
			order[j] = j
		}
		sort.Slice(order, func(a, b int) bool {
			if variance[order[a]] != variance[order[b]] {
				return variance[order[a]] > variance[order[b]]
			}
			return order[a] < order[b]
		})
		selected = order[:s.TopFeatures]
	}
	if s.Buckets == 0 {
		parallel.ForWith(parallelism, n, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for _, j := range selected {
					vecs[i*f+j] = 0
				}
			}
		})
		return nil
	}
	// Generalization: snap each value to the midpoint of its bucket over
	// the feature's observed range. A constant feature stays put.
	lo, hi := featureRanges(vecs, n, f, selected, parallelism)
	parallel.ForWith(parallelism, n, 64, func(ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			for sj, j := range selected {
				width := (hi[sj] - lo[sj]) / float64(s.Buckets)
				if width <= 0 {
					continue
				}
				b := math.Floor((vecs[i*f+j] - lo[sj]) / width)
				if b >= float64(s.Buckets) {
					b = float64(s.Buckets) - 1
				}
				vecs[i*f+j] = lo[sj] + (b+0.5)*width
			}
		}
	})
	return nil
}

// featureRanges computes the observed [min, max] of each selected
// feature over the population, each feature's slot written by exactly
// one worker.
func featureRanges(vecs []float64, n, f int, selected []int, parallelism int) (lo, hi []float64) {
	lo = make([]float64, len(selected))
	hi = make([]float64, len(selected))
	parallel.ForWith(parallelism, len(selected), 8, func(slo, shi int) {
		for sj := slo; sj < shi; sj++ {
			j := selected[sj]
			mn, mx := vecs[j], vecs[j]
			for i := 1; i < n; i++ {
				x := vecs[i*f+j]
				if x < mn {
					mn = x
				}
				if x > mx {
					mx = x
				}
			}
			lo[sj], hi[sj] = mn, mx
		}
	})
	return lo, hi
}

// applyNoise adds calibrated per-feature noise: the sensitivity of
// feature j is its observed range over the population, the Laplace
// scale is sens/ε, and the Gaussian σ is sens·sqrt(2·ln(1.25/δ))/ε
// (the analytic calibration of the Gaussian mechanism). Each record
// draws from its own derived RNG stream, so the noise a record receives
// is independent of parallelism and of every other record.
func applyNoise(vecs []float64, n, f int, s Step, stepIdx, parallelism int) {
	all := make([]int, f)
	for j := range all {
		all[j] = j
	}
	lo, hi := featureRanges(vecs, n, f, all, parallelism)
	scale := make([]float64, f)
	delta := s.Delta
	if delta == 0 {
		delta = DefaultDelta
	}
	gaussFactor := math.Sqrt(2*math.Log(1.25/delta)) / s.Epsilon
	for j := range scale {
		sens := hi[j] - lo[j]
		if s.Mechanism == Gaussian {
			scale[j] = sens * gaussFactor
		} else {
			scale[j] = sens / s.Epsilon
		}
	}
	parallel.ForWith(parallelism, n, 16, func(ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			rng := rand.New(rand.NewSource(parallel.DeriveSeed(s.Seed, int64(stepIdx), int64(i))))
			v := vecs[i*f : (i+1)*f]
			for j := range v {
				if scale[j] == 0 {
					continue
				}
				if s.Mechanism == Gaussian {
					v[j] += scale[j] * rng.NormFloat64()
				} else {
					v[j] += laplaceDraw(rng, scale[j])
				}
			}
		}
	})
}

// laplaceDraw samples Lap(0, b) by inverse transform, resampling the
// (measure-zero) degenerate uniform draw.
func laplaceDraw(rng *rand.Rand, b float64) float64 {
	for {
		u := rng.Float64() - 0.5
		if m := 1 - 2*math.Abs(u); m > 0 {
			if u < 0 {
				return b * math.Log(m)
			}
			return -b * math.Log(m)
		}
	}
}
