package defense

import (
	"bytes"
	"testing"
)

// fuzzSeedDescriptor builds a valid two-step descriptor blob for the
// fuzz corpus.
func fuzzSeedDescriptor(t *testing.F) []byte {
	t.Helper()
	blob, err := EncodeDescriptor(&Descriptor{Steps: []Step{
		{Kind: KindSuppress, Indices: []int{1, 4, 9}},
		{Kind: KindNoise, Mechanism: Gaussian, Epsilon: 2, Delta: 1e-6, Seed: 7},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// FuzzDecodeDefenseDescriptor is the reject-or-roundtrip contract of
// the descriptor codec: DecodeDescriptor must never panic, and
// whatever it accepts must re-encode to the identical bytes (the
// canonical-form invariant the shard manifest CRC depends on).
func FuzzDecodeDefenseDescriptor(f *testing.F) {
	valid := fuzzSeedDescriptor(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[6] ^= 0xFF // corrupt a step's kind byte
	f.Add(flipped)
	f.Add(append(append([]byte(nil), valid...), 0xAA)) // trailing byte
	ksame, err := EncodeDescriptor(&Descriptor{Steps: []Step{{Kind: KindKSame, K: 5}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ksame)

	f.Fuzz(func(t *testing.T, blob []byte) {
		d, err := DecodeDescriptor(blob)
		if err != nil {
			return
		}
		if d == nil {
			if len(blob) != 0 {
				t.Fatalf("nil descriptor decoded from %d bytes", len(blob))
			}
			return
		}
		// Everything accepted satisfies the semantic invariants…
		if err := d.Validate(); err != nil {
			t.Fatalf("decoded descriptor fails Validate: %v", err)
		}
		// …and re-encodes byte-identically.
		re, err := EncodeDescriptor(d)
		if err != nil {
			t.Fatalf("accepted descriptor fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, blob) {
			t.Fatalf("re-encode differs:\n in:  %x\n out: %x", blob, re)
		}
	})
}
