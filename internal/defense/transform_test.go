package defense

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"brainprint/internal/gallery"
)

// testGallery enrolls n seeded random vectors of f features as
// verbatim (non-z-scored) fingerprints.
func testGallery(t testing.TB, seed int64, n, f int) *gallery.Gallery {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := gallery.New(f)
	v := make([]float64, f)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if err := g.EnrollNormalized(fmt.Sprintf("sub-%04d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// galleriesEqual compares two galleries bit for bit.
func galleriesEqual(a, b *gallery.Gallery) bool {
	if a.Len() != b.Len() || a.Features() != b.Features() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.ID(i) != b.ID(i) {
			return false
		}
		av, bv := a.Fingerprint(i), b.Fingerprint(i)
		for j := range av {
			if math.Float64bits(av[j]) != math.Float64bits(bv[j]) {
				return false
			}
		}
	}
	return true
}

func TestApplyNilDescriptorIsIdentity(t *testing.T) {
	g := testGallery(t, 1, 30, 8)
	got, err := Apply(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Error("nil descriptor did not return the input gallery")
	}
}

func TestApplyDeterministicAcrossParallelism(t *testing.T) {
	g := testGallery(t, 2, 257, 24)
	for _, d := range []*Descriptor{
		{Steps: []Step{{Kind: KindKSame, K: 5}}},
		{Steps: []Step{{Kind: KindSuppress, TopFeatures: 6, Buckets: 3}}},
		{Steps: []Step{{Kind: KindNoise, Mechanism: Laplace, Epsilon: 1, Seed: 11}}},
		{Steps: []Step{
			{Kind: KindSuppress, TopFeatures: 4},
			{Kind: KindKSame, K: 3},
			{Kind: KindNoise, Mechanism: Gaussian, Epsilon: 4, Seed: 5},
		}},
	} {
		serial, err := Apply(g, d, 1)
		if err != nil {
			t.Fatalf("%s serial: %v", d, err)
		}
		wide, err := Apply(g, d, 0)
		if err != nil {
			t.Fatalf("%s parallel: %v", d, err)
		}
		if !galleriesEqual(serial, wide) {
			t.Errorf("%s: parallel output differs from serial", d)
		}
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	g := testGallery(t, 3, 40, 10)
	before := make([][]float64, g.Len())
	for i := range before {
		before[i] = append([]float64(nil), g.Fingerprint(i)...)
	}
	if _, err := Apply(g, &Descriptor{Steps: []Step{{Kind: KindKSame, K: 4}}}, 0); err != nil {
		t.Fatal(err)
	}
	for i, want := range before {
		got := g.Fingerprint(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("record %d feature %d mutated: %v -> %v", i, j, want[j], got[j])
			}
		}
	}
}

func TestKSameGroupSizesAndMeanPreservation(t *testing.T) {
	for _, k := range []int{2, 3, 5, 7} {
		g := testGallery(t, 4, 103, 12)
		out, err := Apply(g, &Descriptor{Steps: []Step{{Kind: KindKSame, K: k}}}, 0)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Every released vector must be shared by at least k records.
		counts := map[string]int{}
		for i := 0; i < out.Len(); i++ {
			counts[fmt.Sprint(out.Fingerprint(i))]++
		}
		for vec, c := range counts {
			if c < k {
				t.Errorf("k=%d: a released vector is shared by only %d records (%s…)", k, c, vec[:20])
			}
		}
		// Microaggregation preserves per-feature population sums.
		f := g.Features()
		for j := 0; j < f; j++ {
			var orig, def float64
			for i := 0; i < g.Len(); i++ {
				orig += g.Fingerprint(i)[j]
				def += out.Fingerprint(i)[j]
			}
			if math.Abs(orig-def) > 1e-9*float64(g.Len()) {
				t.Errorf("k=%d: feature %d mean drifted: %v vs %v", k, j, orig, def)
			}
		}
	}
}

func TestKSameDegenerateGlobalCentroid(t *testing.T) {
	g := testGallery(t, 5, 6, 4)
	out, err := Apply(g, &Descriptor{Steps: []Step{{Kind: KindKSame, K: 10}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	first := out.Fingerprint(0)
	for i := 1; i < out.Len(); i++ {
		v := out.Fingerprint(i)
		for j := range v {
			if v[j] != first[j] {
				t.Fatalf("k above population: record %d differs from the global centroid", i)
			}
		}
	}
}

func TestSuppressZeroesAndBuckets(t *testing.T) {
	g := testGallery(t, 6, 50, 16)
	out, err := Apply(g, &Descriptor{Steps: []Step{{Kind: KindSuppress, Indices: []int{2, 7}}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < out.Len(); i++ {
		v := out.Fingerprint(i)
		if v[2] != 0 || v[7] != 0 {
			t.Fatalf("record %d: suppressed features not zeroed: %v %v", i, v[2], v[7])
		}
		if v[0] != g.Fingerprint(i)[0] {
			t.Fatalf("record %d: untargeted feature changed", i)
		}
	}
	// Bucket generalization: a bucketed feature takes at most `buckets`
	// distinct values.
	out, err = Apply(g, &Descriptor{Steps: []Step{{Kind: KindSuppress, TopFeatures: 3, Buckets: 4}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for j := 0; j < g.Features(); j++ {
		vals := map[float64]bool{}
		for i := 0; i < out.Len(); i++ {
			vals[out.Fingerprint(i)[j]] = true
		}
		if len(vals) <= 4 {
			changed++
		}
	}
	if changed < 3 {
		t.Errorf("top-3 bucketized features: only %d features have ≤4 distinct values", changed)
	}
}

func TestSuppressIndexOutOfRange(t *testing.T) {
	g := testGallery(t, 7, 10, 8)
	_, err := Apply(g, &Descriptor{Steps: []Step{{Kind: KindSuppress, Indices: []int{3, 99}}}}, 0)
	if !errors.Is(err, gallery.ErrDimMismatch) {
		t.Fatalf("out-of-range suppress index: %v, want ErrDimMismatch", err)
	}
	_, err = Apply(g, &Descriptor{Steps: []Step{{Kind: KindSuppress, TopFeatures: 20}}}, 0)
	if !errors.Is(err, gallery.ErrDimMismatch) {
		t.Fatalf("top-count above dimensionality: %v, want ErrDimMismatch", err)
	}
}

func TestNoisePerturbsEveryVaryingFeature(t *testing.T) {
	g := testGallery(t, 8, 60, 12)
	out, err := Apply(g, &Descriptor{Steps: []Step{{Kind: KindNoise, Mechanism: Gaussian, Epsilon: 2, Seed: 1}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < g.Len(); i++ {
		a, b := g.Fingerprint(i), out.Fingerprint(i)
		for j := range a {
			if a[j] == b[j] {
				same++
			}
		}
	}
	if same > 0 {
		t.Errorf("%d feature values survived the noise unchanged", same)
	}
	// The seed pins the draw: re-applying gives the identical gallery.
	again, err := Apply(g, &Descriptor{Steps: []Step{{Kind: KindNoise, Mechanism: Gaussian, Epsilon: 2, Seed: 1}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !galleriesEqual(out, again) {
		t.Error("same seed produced a different noise draw")
	}
	// A different seed produces a different draw.
	other, err := Apply(g, &Descriptor{Steps: []Step{{Kind: KindNoise, Mechanism: Gaussian, Epsilon: 2, Seed: 2}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if galleriesEqual(out, other) {
		t.Error("different seeds produced the identical noise draw")
	}
}

func TestApplyRejectsInvalidDescriptor(t *testing.T) {
	g := testGallery(t, 9, 10, 4)
	_, err := Apply(g, &Descriptor{Steps: []Step{{Kind: KindKSame, K: 1}}}, 0)
	if !errors.Is(err, ErrDescriptorInvalid) {
		t.Fatalf("Apply accepted an invalid descriptor: %v", err)
	}
}

// BenchmarkDefendEnroll measures the enroll-time transform: a full
// ksame(k=5)+noise pipeline over a 2000×96 gallery.
func BenchmarkDefendEnroll(b *testing.B) {
	g := testGallery(b, 10, 2000, 96)
	d := &Descriptor{Steps: []Step{
		{Kind: KindKSame, K: 5},
		{Kind: KindNoise, Mechanism: Gaussian, Epsilon: 8, Seed: 1},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(g, d, 0); err != nil {
			b.Fatal(err)
		}
	}
}
