package defense

import (
	"math"
	"math/rand"
	"testing"

	"brainprint/internal/linalg"
)

func randomGroup(rng *rand.Rand, features, subjects int) *linalg.Matrix {
	m := linalg.NewMatrix(features, subjects)
	for i := range m.RawData() {
		m.RawData()[i] = 0.5 * rng.NormFloat64()
	}
	return m
}

func TestStrategyString(t *testing.T) {
	if Targeted.String() != "targeted" || Uniform.String() != "uniform" {
		t.Error("strategy names wrong")
	}
	if Strategy(5).String() == "" {
		t.Error("unknown strategy should render")
	}
}

func TestProtectValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGroup(rng, 20, 5)
	if _, err := Protect(linalg.NewMatrix(0, 0), Targeted, 1, 0.1, rng); err == nil {
		t.Error("expected empty error")
	}
	if _, err := Protect(g, Targeted, 0, 0.1, rng); err == nil {
		t.Error("expected topFeatures error")
	}
	if _, err := Protect(g, Targeted, 21, 0.1, rng); err == nil {
		t.Error("expected topFeatures range error")
	}
	if _, err := Protect(g, Targeted, 5, -1, rng); err == nil {
		t.Error("expected negative sigma error")
	}
	if _, err := Protect(g, Strategy(9), 5, 0.1, rng); err == nil {
		t.Error("expected unknown strategy error")
	}
}

func TestProtectTargetedTouchesOnlySelectedRows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGroup(rng, 30, 6)
	res, err := Protect(g, Targeted, 5, 0.2, rng)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	if len(res.PerturbedFeatures) != 5 {
		t.Fatalf("perturbed %d features want 5", len(res.PerturbedFeatures))
	}
	touched := make(map[int]bool)
	for _, f := range res.PerturbedFeatures {
		touched[f] = true
	}
	for f := 0; f < 30; f++ {
		orig := g.RowView(f)
		prot := res.Protected.RowView(f)
		changed := false
		for s := range orig {
			if orig[s] != prot[s] {
				changed = true
			}
		}
		if changed != touched[f] {
			t.Errorf("feature %d: changed=%v touched=%v", f, changed, touched[f])
		}
	}
	// Input untouched.
	if res.Protected == g {
		t.Error("Protect must not alias its input")
	}
}

func TestProtectUniformTouchesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGroup(rng, 25, 4)
	res, err := Protect(g, Uniform, 5, 0.3, rng)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	if len(res.PerturbedFeatures) != 25 {
		t.Errorf("uniform should list all features, got %d", len(res.PerturbedFeatures))
	}
}

func TestProtectBudgetsMatch(t *testing.T) {
	// Expected total squared noise must match between strategies.
	rng := rand.New(rand.NewSource(4))
	g := randomGroup(rng, 400, 30)
	const sigma = 0.2
	const top = 50
	var targetedSq, uniformSq float64
	const reps = 30
	for r := 0; r < reps; r++ {
		tRes, err := Protect(g, Targeted, top, sigma, rng)
		if err != nil {
			t.Fatalf("Protect: %v", err)
		}
		uRes, err := Protect(g, Uniform, top, sigma, rng)
		if err != nil {
			t.Fatalf("Protect: %v", err)
		}
		d := tRes.Protected.Sub(g).FrobeniusNorm()
		targetedSq += d * d
		d = uRes.Protected.Sub(g).FrobeniusNorm()
		uniformSq += d * d
	}
	ratio := targetedSq / uniformSq
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("distortion budgets differ: ratio %.3f", ratio)
	}
}

func TestProtectZeroSigmaIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGroup(rng, 15, 3)
	res, err := Protect(g, Targeted, 5, 0, rng)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	if !res.Protected.EqualApprox(g, 0) {
		t.Error("zero sigma should not change the matrix")
	}
	if res.Distortion != 0 {
		t.Errorf("distortion = %v want 0", res.Distortion)
	}
}

func TestClampCorrelations(t *testing.T) {
	m, _ := linalg.NewMatrixFromRows([][]float64{{1.5, -2}, {0.5, 0.9}})
	ClampCorrelations(m)
	if m.At(0, 0) != 1 || m.At(0, 1) != -1 {
		t.Errorf("clamp failed: %v", m)
	}
	if m.At(1, 0) != 0.5 {
		t.Error("in-range values must be untouched")
	}
}

func TestTargetedHitsHighLeverageRows(t *testing.T) {
	// Build a matrix with one dominant row; targeted protection must
	// perturb it.
	rng := rand.New(rand.NewSource(6))
	g := linalg.NewMatrix(40, 4)
	for i := range g.RawData() {
		g.RawData()[i] = 0.01 * rng.NormFloat64()
	}
	g.Set(7, 0, 3)
	g.Set(7, 1, -3)
	g.Set(7, 2, 2)
	g.Set(7, 3, -1)
	res, err := Protect(g, Targeted, 3, 0.5, rng)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	found := false
	for _, f := range res.PerturbedFeatures {
		if f == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("dominant row 7 not targeted: %v", res.PerturbedFeatures)
	}
	if math.Abs(res.Distortion) == 0 {
		t.Error("distortion should be positive")
	}
}
