package defense

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// The defense descriptor is the durable record of which anonymization
// pipeline produced a gallery: an ordered list of transform steps, each
// with its parameters, serialized into the shard manifest (flag bit 1)
// so a defended store re-applies the same pipeline at every live
// compaction and reports what it did through `gallery info`, /healthz,
// and /v1/gallery. The binary layout, version 1 (all integers
// little-endian, floats as IEEE-754 bits):
//
//	version  uint16  1
//	steps    uint16  step count (1..16)
//	step (×steps, in application order):
//	  kind      uint8    1 = ksame, 2 = suppress, 3 = noise
//	  mechanism uint8    0 = gaussian, 1 = laplace (noise only)
//	  k         uint32   k-same group size
//	  top       uint32   suppress: top-variance feature budget
//	  buckets   uint32   suppress: generalization buckets (0 = zero out)
//	  epsilon   float64  noise: privacy budget ε
//	  delta     float64  noise: gaussian δ (0 = DefaultDelta)
//	  seed      uint64   noise: per-step RNG root
//	  nidx      uint32   suppress: explicit index count (0 = top-variance)
//	  idx       [nidx]uint32  strictly ascending feature indices
//
// The encoding is canonical: Decode(Encode(d)) is the identity and a
// decoded descriptor re-encodes to the same bytes, which the fuzz
// target (FuzzDecodeDefenseDescriptor) pins. The blob carries no
// checksum of its own — it lives inside the manifest header, which is
// already CRC-protected as a whole.

// DescriptorVersion is the defense descriptor format version this
// package reads and writes.
const DescriptorVersion = 1

const (
	// maxSteps bounds a descriptor's pipeline length so a corrupt blob
	// cannot drive an absurd allocation.
	maxSteps = 16
	// maxSuppressIndices bounds one suppress step's explicit index list.
	maxSuppressIndices = 1 << 20
	// stepFixedLen is the per-step encoded length before the index list.
	stepFixedLen = 1 + 1 + 4 + 4 + 4 + 8 + 8 + 8 + 4
)

// DefaultDelta is the δ the gaussian mechanism falls back to when a
// noise step leaves Delta zero.
const DefaultDelta = 1e-5

// Typed descriptor errors, matched with errors.Is.
var (
	// ErrDescriptorVersion means the blob uses an unsupported descriptor
	// format version.
	ErrDescriptorVersion = errors.New("defense: unsupported descriptor version")
	// ErrDescriptorCorrupt means the blob is truncated, carries trailing
	// bytes, or violates a structural bound.
	ErrDescriptorCorrupt = errors.New("defense: corrupt descriptor")
	// ErrDescriptorInvalid means a structurally well-formed descriptor
	// carries semantically invalid parameters (k < 2, ε ≤ 0, …).
	ErrDescriptorInvalid = errors.New("defense: invalid descriptor")
	// ErrDescriptorSyntax means a textual descriptor spec failed to
	// parse.
	ErrDescriptorSyntax = errors.New("defense: bad descriptor syntax")
)

// Kind identifies one transform family.
type Kind uint8

// Transform kinds, in the order a typical pipeline composes them.
const (
	// KindKSame replaces each fingerprint with the centroid of its
	// MDAV microaggregation group of at least K records, so every
	// released vector is shared by K-or-more subjects (k-anonymity for
	// fingerprints).
	KindKSame Kind = 1
	// KindSuppress zeroes (or bucket-generalizes) a feature subset:
	// either the top-variance features or an explicit index list.
	KindSuppress Kind = 2
	// KindNoise adds calibrated per-feature Gaussian or Laplace noise
	// with sensitivity taken from the observed per-feature range.
	KindNoise Kind = 3
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindKSame:
		return "ksame"
	case KindSuppress:
		return "suppress"
	case KindNoise:
		return "noise"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Mechanism selects the noise distribution of a KindNoise step.
type Mechanism uint8

// Noise mechanisms.
const (
	// Gaussian draws N(0, σ_f²) per feature with
	// σ_f = sens_f · sqrt(2·ln(1.25/δ)) / ε.
	Gaussian Mechanism = 0
	// Laplace draws Lap(0, b_f) per feature with b_f = sens_f / ε.
	Laplace Mechanism = 1
)

// String implements fmt.Stringer.
func (m Mechanism) String() string {
	switch m {
	case Gaussian:
		return "gaussian"
	case Laplace:
		return "laplace"
	default:
		return fmt.Sprintf("Mechanism(%d)", uint8(m))
	}
}

// Step is one transform in a defense pipeline. Only the fields of its
// Kind are meaningful; the rest stay zero (the codec and String enforce
// that canonical form).
type Step struct {
	// Kind selects the transform family.
	Kind Kind
	// K is the k-same minimum group size (≥ 2).
	K int
	// TopFeatures is the suppress step's top-variance feature budget,
	// used when Indices is empty.
	TopFeatures int
	// Indices is the suppress step's explicit feature list, strictly
	// ascending; it overrides TopFeatures when non-empty.
	Indices []int
	// Buckets is the suppress generalization granularity: 0 zeroes the
	// selected features, b > 0 snaps each value to the midpoint of its
	// bucket over the feature's observed range split into b buckets.
	Buckets int
	// Mechanism is the noise distribution.
	Mechanism Mechanism
	// Epsilon is the noise privacy budget ε (> 0; smaller is stronger).
	Epsilon float64
	// Delta is the gaussian mechanism's δ (0 means DefaultDelta).
	Delta float64
	// Seed is the noise step's RNG root; per-record streams derive from
	// it so results are bit-identical at any parallelism.
	Seed int64
}

// Strength maps a step onto a scalar "more is stronger" axis — the
// coordinate the sweep's monotonicity gate orders cells by: k for
// k-same, the suppressed-feature count for suppression, and 1/ε for
// noise.
func (s Step) Strength() float64 {
	switch s.Kind {
	case KindKSame:
		return float64(s.K)
	case KindSuppress:
		if len(s.Indices) > 0 {
			return float64(len(s.Indices))
		}
		return float64(s.TopFeatures)
	case KindNoise:
		if s.Epsilon > 0 {
			return 1 / s.Epsilon
		}
		return math.Inf(1)
	default:
		return 0
	}
}

// validate checks one step's semantic invariants.
func (s Step) validate(i int) error {
	switch s.Kind {
	case KindKSame:
		if s.K < 2 {
			return fmt.Errorf("%w: step %d: ksame needs k >= 2, got %d", ErrDescriptorInvalid, i, s.K)
		}
		if s.TopFeatures != 0 || len(s.Indices) != 0 || s.Buckets != 0 || s.Mechanism != 0 || s.Epsilon != 0 || s.Delta != 0 || s.Seed != 0 {
			return fmt.Errorf("%w: step %d: ksame carries foreign parameters", ErrDescriptorInvalid, i)
		}
	case KindSuppress:
		if len(s.Indices) == 0 && s.TopFeatures <= 0 {
			return fmt.Errorf("%w: step %d: suppress needs top-variance budget or explicit indices", ErrDescriptorInvalid, i)
		}
		if len(s.Indices) > 0 && s.TopFeatures != 0 {
			return fmt.Errorf("%w: step %d: suppress has both a top-variance budget and explicit indices", ErrDescriptorInvalid, i)
		}
		if len(s.Indices) > maxSuppressIndices {
			return fmt.Errorf("%w: step %d: %d suppress indices (max %d)", ErrDescriptorInvalid, i, len(s.Indices), maxSuppressIndices)
		}
		for j, idx := range s.Indices {
			if idx < 0 || idx > math.MaxUint32 {
				return fmt.Errorf("%w: step %d: suppress index %d out of range", ErrDescriptorInvalid, i, idx)
			}
			if j > 0 && idx <= s.Indices[j-1] {
				return fmt.Errorf("%w: step %d: suppress indices not strictly ascending at %d", ErrDescriptorInvalid, i, idx)
			}
		}
		if s.Buckets < 0 {
			return fmt.Errorf("%w: step %d: negative bucket count %d", ErrDescriptorInvalid, i, s.Buckets)
		}
		if s.K != 0 || s.Mechanism != 0 || s.Epsilon != 0 || s.Delta != 0 || s.Seed != 0 {
			return fmt.Errorf("%w: step %d: suppress carries foreign parameters", ErrDescriptorInvalid, i)
		}
	case KindNoise:
		if s.Mechanism != Gaussian && s.Mechanism != Laplace {
			return fmt.Errorf("%w: step %d: unknown noise mechanism %d", ErrDescriptorInvalid, i, uint8(s.Mechanism))
		}
		if !(s.Epsilon > 0) || math.IsInf(s.Epsilon, 0) {
			return fmt.Errorf("%w: step %d: noise needs a finite epsilon > 0, got %v", ErrDescriptorInvalid, i, s.Epsilon)
		}
		if s.Delta < 0 || s.Delta >= 1 || math.IsNaN(s.Delta) {
			return fmt.Errorf("%w: step %d: delta %v outside [0, 1)", ErrDescriptorInvalid, i, s.Delta)
		}
		if s.Mechanism == Laplace && s.Delta != 0 {
			return fmt.Errorf("%w: step %d: laplace takes no delta", ErrDescriptorInvalid, i)
		}
		if s.K != 0 || s.TopFeatures != 0 || len(s.Indices) != 0 || s.Buckets != 0 {
			return fmt.Errorf("%w: step %d: noise carries foreign parameters", ErrDescriptorInvalid, i)
		}
	default:
		return fmt.Errorf("%w: step %d: unknown kind %d", ErrDescriptorInvalid, i, uint8(s.Kind))
	}
	return nil
}

// Descriptor is an ordered defense pipeline: Apply runs the steps
// front to back, and the manifest persists the whole list so a live
// store keeps re-applying it at every compaction.
type Descriptor struct {
	// Steps is the pipeline in application order (1..16 steps).
	Steps []Step
}

// Validate checks the descriptor's semantic invariants — step count,
// per-kind parameter ranges, ascending suppress indices — returning
// ErrDescriptorInvalid on the first violation.
func (d *Descriptor) Validate() error {
	if len(d.Steps) == 0 {
		return fmt.Errorf("%w: empty pipeline", ErrDescriptorInvalid)
	}
	if len(d.Steps) > maxSteps {
		return fmt.Errorf("%w: %d steps (max %d)", ErrDescriptorInvalid, len(d.Steps), maxSteps)
	}
	for i, s := range d.Steps {
		if err := s.validate(i); err != nil {
			return err
		}
	}
	return nil
}

// SuppressedFeatures returns how many feature slots the pipeline's
// suppress steps cover in total — the count dims-mismatch diagnostics
// name so a geometry dispute on a defended store points at the defense
// configuration instead of a bare number.
func (d *Descriptor) SuppressedFeatures() int {
	if d == nil {
		return 0
	}
	total := 0
	for _, s := range d.Steps {
		if s.Kind != KindSuppress {
			continue
		}
		if len(s.Indices) > 0 {
			total += len(s.Indices)
		} else {
			total += s.TopFeatures
		}
	}
	return total
}

// String renders the pipeline in the textual spec syntax Parse accepts,
// e.g. "ksame(k=5)+noise(gaussian,eps=0.5)". String∘Parse and
// Parse∘String are identities on valid specs.
func (d *Descriptor) String() string {
	if d == nil || len(d.Steps) == 0 {
		return "none"
	}
	parts := make([]string, len(d.Steps))
	for i, s := range d.Steps {
		parts[i] = s.String()
	}
	return strings.Join(parts, "+")
}

// String renders one step in the spec syntax.
func (s Step) String() string {
	switch s.Kind {
	case KindKSame:
		return fmt.Sprintf("ksame(k=%d)", s.K)
	case KindSuppress:
		var b strings.Builder
		b.WriteString("suppress(")
		if len(s.Indices) > 0 {
			b.WriteString("idx=")
			for j, idx := range s.Indices {
				if j > 0 {
					b.WriteByte(';')
				}
				b.WriteString(strconv.Itoa(idx))
			}
		} else {
			fmt.Fprintf(&b, "top=%d", s.TopFeatures)
		}
		if s.Buckets > 0 {
			fmt.Fprintf(&b, ",buckets=%d", s.Buckets)
		}
		b.WriteByte(')')
		return b.String()
	case KindNoise:
		var b strings.Builder
		fmt.Fprintf(&b, "noise(%s,eps=%s", s.Mechanism, strconv.FormatFloat(s.Epsilon, 'g', -1, 64))
		if s.Delta != 0 {
			fmt.Fprintf(&b, ",delta=%s", strconv.FormatFloat(s.Delta, 'g', -1, 64))
		}
		if s.Seed != 0 {
			fmt.Fprintf(&b, ",seed=%d", s.Seed)
		}
		b.WriteByte(')')
		return b.String()
	default:
		return fmt.Sprintf("Kind(%d)", uint8(s.Kind))
	}
}

// EncodeDescriptor renders a validated descriptor into the version-1
// binary blob the shard manifest embeds. A nil descriptor (the
// undefended pipeline) encodes to an empty blob.
func EncodeDescriptor(d *Descriptor) ([]byte, error) {
	if d == nil {
		return nil, nil
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 4+len(d.Steps)*stepFixedLen)
	buf = binary.LittleEndian.AppendUint16(buf, DescriptorVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(d.Steps)))
	for _, s := range d.Steps {
		buf = append(buf, byte(s.Kind), byte(s.Mechanism))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.K))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.TopFeatures))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Buckets))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Epsilon))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Delta))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Seed))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Indices)))
		for _, idx := range s.Indices {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(idx))
		}
	}
	return buf, nil
}

// DecodeDescriptor parses a version-1 descriptor blob, rejecting
// truncation, trailing bytes, structural bound violations
// (ErrDescriptorCorrupt), unsupported versions (ErrDescriptorVersion),
// and semantically invalid parameters (ErrDescriptorInvalid). A
// successfully decoded descriptor re-encodes to the identical bytes.
func DecodeDescriptor(blob []byte) (*Descriptor, error) {
	if len(blob) == 0 {
		return nil, nil
	}
	if len(blob) < 4 {
		return nil, fmt.Errorf("%w: %d-byte blob", ErrDescriptorCorrupt, len(blob))
	}
	version := binary.LittleEndian.Uint16(blob)
	if version != DescriptorVersion {
		return nil, fmt.Errorf("%w %d (supported: %d)", ErrDescriptorVersion, version, DescriptorVersion)
	}
	steps := int(binary.LittleEndian.Uint16(blob[2:]))
	if steps == 0 || steps > maxSteps {
		return nil, fmt.Errorf("%w: implausible step count %d", ErrDescriptorCorrupt, steps)
	}
	d := &Descriptor{Steps: make([]Step, 0, steps)}
	off := 4
	for i := 0; i < steps; i++ {
		if len(blob)-off < stepFixedLen {
			return nil, fmt.Errorf("%w: truncated in step %d", ErrDescriptorCorrupt, i)
		}
		s := Step{
			Kind:        Kind(blob[off]),
			Mechanism:   Mechanism(blob[off+1]),
			K:           int(binary.LittleEndian.Uint32(blob[off+2:])),
			TopFeatures: int(binary.LittleEndian.Uint32(blob[off+6:])),
			Buckets:     int(binary.LittleEndian.Uint32(blob[off+10:])),
			Epsilon:     math.Float64frombits(binary.LittleEndian.Uint64(blob[off+14:])),
			Delta:       math.Float64frombits(binary.LittleEndian.Uint64(blob[off+22:])),
			Seed:        int64(binary.LittleEndian.Uint64(blob[off+30:])),
		}
		nidx := int(binary.LittleEndian.Uint32(blob[off+38:]))
		off += stepFixedLen
		if nidx > maxSuppressIndices {
			return nil, fmt.Errorf("%w: step %d names %d suppress indices (max %d)", ErrDescriptorCorrupt, i, nidx, maxSuppressIndices)
		}
		if len(blob)-off < 4*nidx {
			return nil, fmt.Errorf("%w: truncated in step %d index list", ErrDescriptorCorrupt, i)
		}
		if nidx > 0 {
			s.Indices = make([]int, nidx)
			for j := range s.Indices {
				s.Indices[j] = int(binary.LittleEndian.Uint32(blob[off+4*j:]))
			}
			off += 4 * nidx
		}
		d.Steps = append(d.Steps, s)
	}
	if off != len(blob) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrDescriptorCorrupt, len(blob)-off)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Parse reads the textual descriptor spec the CLI accepts: steps joined
// with '+', each "kind(key=value,...)". Examples:
//
//	ksame(k=5)
//	suppress(top=20,buckets=4)
//	suppress(idx=0;3;17)
//	noise(laplace,eps=0.5,seed=7)
//	ksame(k=2)+noise(gaussian,eps=2)
//
// "none" (or the empty string) parses to nil — no defense.
func Parse(spec string) (*Descriptor, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	d := &Descriptor{}
	for _, part := range strings.Split(spec, "+") {
		s, err := parseStep(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		d.Steps = append(d.Steps, s)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// parseStep reads one "kind(args)" clause.
func parseStep(part string) (Step, error) {
	open := strings.IndexByte(part, '(')
	if open < 0 || !strings.HasSuffix(part, ")") {
		return Step{}, fmt.Errorf("%w: step %q is not kind(args)", ErrDescriptorSyntax, part)
	}
	kind, args := part[:open], part[open+1:len(part)-1]
	var s Step
	switch kind {
	case "ksame":
		s.Kind = KindKSame
	case "suppress":
		s.Kind = KindSuppress
	case "noise":
		s.Kind = KindNoise
	default:
		return Step{}, fmt.Errorf("%w: unknown kind %q (want ksame, suppress, or noise)", ErrDescriptorSyntax, kind)
	}
	for _, arg := range strings.Split(args, ",") {
		arg = strings.TrimSpace(arg)
		if arg == "" {
			continue
		}
		key, val, ok := strings.Cut(arg, "=")
		if !ok {
			// A bare word is a noise mechanism name.
			if s.Kind == KindNoise && (arg == "gaussian" || arg == "laplace") {
				if arg == "laplace" {
					s.Mechanism = Laplace
				}
				continue
			}
			return Step{}, fmt.Errorf("%w: argument %q is not key=value", ErrDescriptorSyntax, arg)
		}
		if err := s.setArg(key, val); err != nil {
			return Step{}, err
		}
	}
	return s, nil
}

// setArg assigns one parsed key=value onto the step.
func (s *Step) setArg(key, val string) error {
	switch key {
	case "k":
		return parseInt(val, &s.K)
	case "top":
		return parseInt(val, &s.TopFeatures)
	case "buckets":
		return parseInt(val, &s.Buckets)
	case "idx":
		for _, tok := range strings.Split(val, ";") {
			var idx int
			if err := parseInt(tok, &idx); err != nil {
				return err
			}
			s.Indices = append(s.Indices, idx)
		}
		sort.Ints(s.Indices)
		return nil
	case "eps":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("%w: bad float %q", ErrDescriptorSyntax, val)
		}
		s.Epsilon = f
		return nil
	case "delta":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("%w: bad float %q", ErrDescriptorSyntax, val)
		}
		s.Delta = f
		return nil
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("%w: bad integer %q", ErrDescriptorSyntax, val)
		}
		s.Seed = n
		return nil
	default:
		return fmt.Errorf("%w: unknown parameter %q", ErrDescriptorSyntax, key)
	}
}

// parseInt reads a non-negative int spec argument.
func parseInt(val string, out *int) error {
	n, err := strconv.Atoi(strings.TrimSpace(val))
	if err != nil {
		return fmt.Errorf("%w: bad integer %q", ErrDescriptorSyntax, val)
	}
	*out = n
	return nil
}
