package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// ForCtx is the context-aware ForErr: it splits [0, n) into chunks of at
// most grain indices, processes them on Workers(workers) goroutines, and
// stops pulling new chunks as soon as ctx is cancelled or any chunk
// fails. A cancelled run returns ctx.Err(); a failed run returns the
// error of the lowest failed range (like ForErr, independent of
// scheduling); chunk errors win over a concurrent cancellation so a
// real failure is never masked.
//
// Unlike ForWith/ForErr, the serial path still iterates chunk by chunk
// (checking ctx between chunks) instead of collapsing to one fn(0, n)
// call, so cancellation stays prompt at any worker count. fn must treat
// [lo, hi) as its exclusive territory; on success the output is
// bit-identical to the same fn run under ForErr or serially, because
// chunk boundaries and ownership do not depend on ctx or scheduling.
func ForCtx(ctx context.Context, workers, n, grain int, fn func(lo, hi int) error) error {
	w, _ := plan(workers, &n, &grain)
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if w <= 1 {
		for lo := 0; lo < n; lo += grain {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			if err := fn(lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		err    error
		errLo  int
	)
	done := ctx.Done()
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				select {
				case <-done:
					return
				default:
				}
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				if e := fn(lo, hi); e != nil {
					mu.Lock()
					if err == nil || lo < errLo {
						err, errLo = e, lo
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// ReduceCtx is the context-aware Reduce: chunk boundaries and the fold
// order are functions of (n, grain) alone, so a successful run returns
// the exact value Reduce would. On cancellation it stops mapping and
// returns (zero, ctx.Err()) without folding, so a partial reduction is
// never observable.
func ReduceCtx[T any](ctx context.Context, workers, n, grain int, zero T, mapFn func(lo, hi int) T, merge func(acc, part T) T) (T, error) {
	if grain < 1 {
		grain = 1
	}
	if n <= 0 {
		return zero, ctx.Err()
	}
	chunks := (n + grain - 1) / grain
	partials := make([]T, chunks)
	err := ForCtx(ctx, workers, chunks, 1, func(lo, hi int) error {
		for c := lo; c < hi; c++ {
			clo := c * grain
			chi := clo + grain
			if chi > n {
				chi = n
			}
			partials[c] = mapFn(clo, chi)
		}
		return nil
	})
	if err != nil {
		return zero, err
	}
	acc := zero
	for _, p := range partials {
		acc = merge(acc, p)
	}
	return acc, nil
}

// GroupCtx is the context-aware Group: an errgroup-style fan-out whose
// derived context is cancelled as soon as any task fails or the parent
// context is cancelled, so sibling tasks (and the loops they run via
// ForCtx) abort early instead of finishing doomed work.
type GroupCtx struct {
	parent context.Context
	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
	err    error
}

// NewGroupCtx returns a group bounded by Workers(workers) goroutines and
// the derived context its tasks should run under.
func NewGroupCtx(ctx context.Context, workers int) (*GroupCtx, context.Context) {
	child, cancel := context.WithCancel(ctx)
	return &GroupCtx{parent: ctx, ctx: child, cancel: cancel, sem: make(chan struct{}, Workers(workers))}, child
}

// Go submits a task, blocking until a worker slot frees up. If the group
// context is already cancelled the task is not started — Wait will
// report why.
func (g *GroupCtx) Go(fn func(ctx context.Context) error) {
	if g.ctx.Err() != nil {
		return
	}
	g.wg.Add(1)
	g.sem <- struct{}{}
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		if g.ctx.Err() != nil {
			return
		}
		if err := fn(g.ctx); err != nil {
			g.once.Do(func() {
				g.err = err
				g.cancel()
			})
		}
	}()
}

// Wait blocks until every submitted task has finished, cancels the
// derived context, and returns the first task error — or the parent
// context's error when the run was cancelled from outside.
func (g *GroupCtx) Wait() error {
	g.wg.Wait()
	g.cancel()
	if g.err != nil {
		return g.err
	}
	return g.parent.Err()
}
