package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestForCtxMatchesForErr pins the success-path contract: at any worker
// count, ForCtx must produce exactly the outputs of ForErr (disjoint
// chunk writes, same chunking).
func TestForCtxMatchesForErr(t *testing.T) {
	const n, grain = 1000, 7
	want := make([]int, n)
	if err := ForErr(1, n, grain, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			want[i] = i * i
		}
		return nil
	}); err != nil {
		t.Fatalf("ForErr: %v", err)
	}
	for _, workers := range []int{1, 2, 4, 0} {
		got := make([]int, n)
		if err := ForCtx(context.Background(), workers, n, grain, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				got[i] = i * i
			}
			return nil
		}); err != nil {
			t.Fatalf("ForCtx(workers=%d): %v", workers, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestForCtxPreCancelled verifies a pre-cancelled context aborts before
// any chunk runs, at serial and parallel worker counts.
func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForCtx(ctx, workers, 100, 1, func(lo, hi int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d chunks ran on a pre-cancelled context", workers, ran.Load())
		}
	}
}

// TestForCtxMidRunCancel cancels while chunks are in flight and asserts
// the loop returns promptly without running the remaining chunks and
// without deadlocking (run under -race in CI).
func TestForCtxMidRunCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		start := time.Now()
		err := ForCtx(ctx, workers, 10000, 1, func(lo, hi int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return nil
		})
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() > int64(3+Workers(workers)) {
			t.Errorf("workers=%d: %d chunks ran after cancellation", workers, ran.Load())
		}
		if elapsed > time.Second {
			t.Errorf("workers=%d: cancellation took %v, want < 1s", workers, elapsed)
		}
	}
}

// TestForCtxErrorBeatsCancel verifies a chunk error is reported even
// when the context is cancelled concurrently: real failures are never
// masked as cancellations.
func TestForCtxErrorBeatsCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForCtx(ctx, 4, 100, 1, func(lo, hi int) error {
		if lo == 10 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the chunk error", err)
	}
}

// TestForCtxLowestErrorWins pins the deterministic-error contract shared
// with ForErr.
func TestForCtxLowestErrorWins(t *testing.T) {
	errLo := errors.New("low")
	errHi := errors.New("high")
	for trial := 0; trial < 20; trial++ {
		err := ForCtx(context.Background(), 4, 64, 1, func(lo, hi int) error {
			switch lo {
			case 5:
				return errLo
			case 40:
				return errHi
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		if errors.Is(err, errHi) {
			t.Fatalf("trial %d: high-range error reported over low-range", trial)
		}
	}
}

// TestReduceCtxMatchesReduce pins ReduceCtx's success path to Reduce.
func TestReduceCtxMatchesReduce(t *testing.T) {
	mapFn := func(lo, hi int) int {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		return s
	}
	merge := func(a, b int) int { return a + b }
	want := Reduce(1, 500, 13, 0, mapFn, merge)
	for _, workers := range []int{1, 3, 0} {
		got, err := ReduceCtx(context.Background(), workers, 500, 13, 0, mapFn, merge)
		if err != nil {
			t.Fatalf("ReduceCtx(workers=%d): %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: got %d want %d", workers, got, want)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := ReduceCtx(ctx, 2, 500, 13, 0, mapFn, merge)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ReduceCtx err = %v", err)
	}
	if got != 0 {
		t.Errorf("cancelled ReduceCtx leaked a partial value %d", got)
	}
}

// TestGroupCtx verifies error propagation and sibling cancellation: once
// one task fails, the derived context stops the others.
func TestGroupCtx(t *testing.T) {
	boom := errors.New("boom")
	g, ctx := NewGroupCtx(context.Background(), 2)
	g.Go(func(context.Context) error { return boom })
	g.Go(func(tctx context.Context) error {
		select {
		case <-tctx.Done():
			return nil // sibling failure cancelled us — expected
		case <-time.After(5 * time.Second):
			return errors.New("derived context never cancelled")
		}
	})
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Errorf("Wait = %v, want task error", err)
	}
	if ctx.Err() == nil {
		t.Error("derived context still live after Wait")
	}
}

// TestGroupCtxParentCancel verifies an outside cancellation surfaces as
// the parent context's error and stops unstarted tasks.
func TestGroupCtxParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g, _ := NewGroupCtx(ctx, 2)
	g.Go(func(tctx context.Context) error {
		<-tctx.Done()
		return nil
	})
	cancel()
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("Wait = %v, want context.Canceled", err)
	}
	var ran atomic.Bool
	g.Go(func(context.Context) error { ran.Store(true); return nil })
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("second Wait = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Error("task started after the group was cancelled")
	}
}
