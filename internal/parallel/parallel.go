// Package parallel is the shared execution layer of the attack pipeline:
// a bounded worker pool keyed to GOMAXPROCS, a range-splitting For loop
// with dynamic chunk scheduling, an errgroup-style fan-out with
// first-error propagation, and a seed-derivation mixer that gives every
// concurrently executed experiment cell its own deterministic RNG stream.
//
// Everything is stdlib-only. All helpers accept a Parallelism knob with
// the convention used across the codebase: 0 (or negative) means "the
// package default" (all cores unless overridden by SetDefault), 1 means
// strictly serial (the work runs inline on the calling goroutine), and
// n > 1 pins exactly n workers.
//
// The kernels built on this package are written so that the worker count
// never changes results: range workers write disjoint output regions and
// randomized sweeps draw from per-cell derived seeds, so Parallelism: 1
// and Parallelism: 0 are bit-identical.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers overrides the GOMAXPROCS fallback when positive.
var defaultWorkers atomic.Int32

// SetDefault sets the process-wide default worker count used when a
// Parallelism knob is 0 or negative. n <= 0 restores the GOMAXPROCS
// default. Benchmarks use it to pin the whole stack — including the
// linalg kernels, which have no per-call knob — to serial or parallel.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// Workers resolves a Parallelism knob to a concrete worker count:
// p > 0 is used as-is; otherwise the SetDefault value applies, falling
// back to GOMAXPROCS.
func Workers(p int) int {
	if p > 0 {
		return p
	}
	if d := int(defaultWorkers.Load()); d > 0 {
		return d
	}
	return runtime.GOMAXPROCS(0)
}

// For processes the index range [0, n) with the default worker count.
// See ForWith.
func For(n, grain int, fn func(lo, hi int)) {
	ForWith(0, n, grain, fn)
}

// ForWith splits [0, n) into contiguous chunks of at most grain indices
// and processes them on Workers(workers) goroutines. Chunks are handed
// out dynamically (an atomic cursor), so uneven per-index work — e.g.
// the triangular loops of connectome construction — still balances.
// When a single worker (or a single chunk) remains, fn runs inline as
// one [0, n) call, which is the serial path.
//
// fn must treat [lo, hi) as its exclusive territory; disjoint ranges may
// run concurrently.
func ForWith(workers, n, grain int, fn func(lo, hi int)) {
	w, ok := plan(workers, &n, &grain)
	if n <= 0 {
		return
	}
	if !ok {
		fn(0, n)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForErr is ForWith for fallible chunks. All workers stop pulling new
// chunks once any chunk fails; among the failed chunks the error of the
// lowest range is returned, so the reported error does not depend on
// scheduling.
func ForErr(workers, n, grain int, fn func(lo, hi int) error) error {
	w, ok := plan(workers, &n, &grain)
	if n <= 0 {
		return nil
	}
	if !ok {
		return fn(0, n)
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		err    error
		errLo  int
	)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				if e := fn(lo, hi); e != nil {
					mu.Lock()
					if err == nil || lo < errLo {
						err, errLo = e, lo
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return err
}

// plan normalizes the loop parameters and reports whether a concurrent
// run is worthwhile; on a concurrent run it returns the worker count.
func plan(workers int, n, grain *int) (int, bool) {
	if *grain < 1 {
		*grain = 1
	}
	if *n <= 0 {
		return 0, false
	}
	w := Workers(workers)
	if chunks := (*n + *grain - 1) / *grain; w > chunks {
		w = chunks
	}
	return w, w > 1
}

// Reduce maps disjoint chunks of [0, n) — each at most grain indices —
// to partial results on Workers(workers) goroutines, then folds the
// partials serially in ascending chunk order starting from zero:
//
//	acc = merge(...merge(merge(zero, p₀), p₁)..., p₍c₋₁₎)
//
// The chunk boundaries and the fold order are functions of (n, grain)
// alone, never of the worker count or scheduling, so Reduce is
// deterministic whenever mapFn and merge are. It is the reduction
// counterpart of ForWith, built for blocked searches that keep a small
// per-chunk partial (e.g. the gallery top-k sweep) instead of writing a
// dense output.
func Reduce[T any](workers, n, grain int, zero T, mapFn func(lo, hi int) T, merge func(acc, part T) T) T {
	if grain < 1 {
		grain = 1
	}
	if n <= 0 {
		return zero
	}
	chunks := (n + grain - 1) / grain
	partials := make([]T, chunks)
	ForWith(workers, chunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			clo := c * grain
			chi := clo + grain
			if chi > n {
				chi = n
			}
			partials[c] = mapFn(clo, chi)
		}
	})
	acc := zero
	for _, p := range partials {
		acc = merge(acc, p)
	}
	return acc
}

// Group is an errgroup-style fan-out: tasks submitted with Go run on at
// most Workers(workers) concurrent goroutines, Wait blocks until all of
// them finish, and the first error observed wins. Go blocks while the
// pool is saturated, so a producer loop cannot outrun the workers.
type Group struct {
	sem  chan struct{}
	wg   sync.WaitGroup
	once sync.Once
	err  error
}

// NewGroup returns a Group bounded by Workers(workers) goroutines.
func NewGroup(workers int) *Group {
	return &Group{sem: make(chan struct{}, Workers(workers))}
}

// Go submits a task, blocking until a worker slot frees up.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	g.sem <- struct{}{}
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		if err := fn(); err != nil {
			g.once.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every submitted task has finished and returns the
// first error any of them produced.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}

// DeriveSeed mixes a root seed with an index path (e.g. noise level,
// trial) into an independent child seed via splitmix64. Experiment
// sweeps give each concurrently executed cell its own rand.Source seeded
// this way, which is what keeps parallel and serial runs bit-identical:
// the stream a cell draws no longer depends on how many cells ran
// before it.
func DeriveSeed(root int64, path ...int64) int64 {
	h := uint64(root)
	for _, p := range path {
		h = splitmix64(h ^ splitmix64(uint64(p)))
	}
	return int64(splitmix64(h))
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed 64-bit permutation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
