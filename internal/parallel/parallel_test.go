package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefault(2)
	if got := Workers(0); got != 2 {
		t.Errorf("Workers(0) with default 2 = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("explicit knob must beat the default: Workers(5) = %d", got)
	}
	SetDefault(0)
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-1) = %d want GOMAXPROCS", got)
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		for _, n := range []int{1, 2, 16, 1000} {
			for _, grain := range []int{1, 3, 16, 5000} {
				hits := make([]int32, n)
				ForWith(workers, n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d hit %d times", workers, n, grain, i, h)
					}
				}
			}
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	ForWith(4, -3, 1, func(lo, hi int) { called = true })
	if called {
		t.Error("fn must not run on an empty range")
	}
	if err := ForErr(4, 0, 1, func(lo, hi int) error { return errors.New("no") }); err != nil {
		t.Errorf("ForErr on empty range: %v", err)
	}
}

func TestForGrainAtLeastNRunsInline(t *testing.T) {
	calls := 0
	ForWith(8, 10, 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Errorf("single-chunk range [%d,%d) want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("grain >= n must collapse to one inline call, got %d", calls)
	}
	// Zero or negative grain is clamped, not a panic.
	total := 0
	ForWith(1, 5, 0, func(lo, hi int) { total += hi - lo })
	if total != 5 {
		t.Errorf("grain=0 covered %d of 5", total)
	}
}

func TestForErrFirstErrorByRange(t *testing.T) {
	// fn fails at the first index >= 30 it sees. Serial collapses to one
	// [0,100) call and trips on index 30; parallel chunks report their
	// own first bad index but the lowest range wins — either way the
	// caller sees index 30.
	failFrom30 := func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if i >= 30 {
				return fmt.Errorf("index %d", i)
			}
		}
		return nil
	}
	if err := ForErr(1, 100, 10, failFrom30); err == nil || err.Error() != "index 30" {
		t.Errorf("serial ForErr = %v want index 30", err)
	}
	if err := ForErr(4, 100, 10, failFrom30); err == nil || err.Error() != "index 30" {
		t.Errorf("parallel ForErr = %v want index 30", err)
	}
	// Parallel: whichever failing chunks execute, the reported error must
	// be the lowest-range one among them; chunk 0 always fails, so the
	// answer is fully determined.
	for trial := 0; trial < 20; trial++ {
		err := ForErr(8, 64, 1, func(lo, hi int) error {
			if lo%2 == 0 {
				return fmt.Errorf("chunk %d", lo)
			}
			return nil
		})
		if err == nil || err.Error() != "chunk 0" {
			t.Fatalf("parallel ForErr = %v want chunk 0", err)
		}
	}
}

func TestForErrStopsSchedulingAfterFailure(t *testing.T) {
	var ran atomic.Int32
	err := ForErr(2, 1000, 1, func(lo, hi int) error {
		ran.Add(1)
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got > 10 {
		t.Errorf("%d chunks ran after the first failure; scheduling should stop", got)
	}
}

func TestReduceSumMatchesSerial(t *testing.T) {
	const n = 1000
	want := n * (n - 1) / 2
	for _, workers := range []int{1, 2, 8} {
		for _, grain := range []int{1, 7, 64, 5000} {
			got := Reduce(workers, n, grain, 0, func(lo, hi int) int {
				s := 0
				for i := lo; i < hi; i++ {
					s += i
				}
				return s
			}, func(acc, part int) int { return acc + part })
			if got != want {
				t.Errorf("workers=%d grain=%d: Reduce sum = %d want %d", workers, grain, got, want)
			}
		}
	}
}

func TestReduceFoldOrderIsChunkOrder(t *testing.T) {
	// A non-commutative merge (slice append) exposes the fold order: the
	// concatenated chunk ranges must come back ascending at any worker
	// count, because partials fold in chunk order regardless of which
	// worker produced them.
	for _, workers := range []int{1, 3, 8} {
		got := Reduce(workers, 100, 9, nil, func(lo, hi int) []int {
			return []int{lo, hi}
		}, func(acc, part []int) []int { return append(acc, part...) })
		for i := 2; i < len(got); i += 2 {
			if got[i] != got[i-1] {
				t.Fatalf("workers=%d: chunk ranges out of order: %v", workers, got)
			}
		}
		if got[0] != 0 || got[len(got)-1] != 100 {
			t.Fatalf("workers=%d: chunks do not cover [0,100): %v", workers, got)
		}
	}
}

func TestReduceEmptyRangeReturnsZero(t *testing.T) {
	got := Reduce(4, 0, 8, -7, func(lo, hi int) int {
		t.Error("mapFn must not run on an empty range")
		return 0
	}, func(acc, part int) int { return acc + part })
	if got != -7 {
		t.Errorf("Reduce on empty range = %d want the zero value -7", got)
	}
}

func TestGroupPropagatesErrorAndBoundsConcurrency(t *testing.T) {
	g := NewGroup(3)
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		i := i
		g.Go(func() error {
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			mu.Lock()
			if cur > peak.Load() {
				peak.Store(cur)
			}
			mu.Unlock()
			if i == 7 {
				return errors.New("task 7 failed")
			}
			return nil
		})
	}
	if err := g.Wait(); err == nil || err.Error() != "task 7 failed" {
		t.Errorf("Wait = %v", err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("concurrency peak %d exceeds limit 3", p)
	}
	// A clean group returns nil.
	g2 := NewGroup(0)
	g2.Go(func() error { return nil })
	if err := g2.Wait(); err != nil {
		t.Errorf("clean Wait = %v", err)
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[int64]string{}
	for root := int64(0); root < 4; root++ {
		for a := int64(0); a < 8; a++ {
			for b := int64(0); b < 8; b++ {
				s := DeriveSeed(root, a, b)
				key := fmt.Sprintf("root=%d a=%d b=%d", root, a, b)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision between %s and %s", key, prev)
				}
				seen[s] = key
			}
		}
	}
	// Deterministic across calls.
	if DeriveSeed(42, 1, 2) != DeriveSeed(42, 1, 2) {
		t.Error("DeriveSeed is not deterministic")
	}
	// Path order matters.
	if DeriveSeed(42, 1, 2) == DeriveSeed(42, 2, 1) {
		t.Error("DeriveSeed ignores path order")
	}
}
