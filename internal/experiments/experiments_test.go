package experiments

import (
	"context"
	"strings"
	"testing"

	"brainprint/internal/connectome"
	"brainprint/internal/core"
	"brainprint/internal/defense"
	"brainprint/internal/synth"
	"brainprint/internal/tsne"
)

// testHCP returns a small cohort shared across experiment tests.
func testHCP(t *testing.T) *synth.HCPCohort {
	t.Helper()
	p := synth.DefaultHCPParams()
	p.Subjects = 14
	p.Regions = 44
	p.RestFrames = 160
	p.TaskFrames = 130
	c, err := synth.GenerateHCP(p)
	if err != nil {
		t.Fatalf("GenerateHCP: %v", err)
	}
	return c
}

func testADHD(t *testing.T) *synth.ADHDCohort {
	t.Helper()
	p := synth.DefaultADHDParams()
	p.Controls = 10
	p.Subtype1 = 6
	p.Subtype2 = 0
	p.Subtype3 = 5
	p.Regions = 40
	p.Frames = 150
	c, err := synth.GenerateADHD(p)
	if err != nil {
		t.Fatalf("GenerateADHD: %v", err)
	}
	return c
}

func attackCfg() core.AttackConfig {
	cfg := core.DefaultAttackConfig()
	cfg.Features = 80
	return cfg
}

func TestBuildGroupMatrix(t *testing.T) {
	c := testHCP(t)
	scans, _ := c.ScansFor(synth.Rest1, synth.LR)
	g, err := BuildGroupMatrix(context.Background(), scans, connectome.Options{})
	if err != nil {
		t.Fatalf("BuildGroupMatrix: %v", err)
	}
	wantFeatures := 44 * 43 / 2
	if r, cc := g.Dims(); r != wantFeatures || cc != 14 {
		t.Fatalf("dims %dx%d want %dx14", r, cc, wantFeatures)
	}
	if _, err := BuildGroupMatrix(context.Background(), nil, connectome.Options{}); err == nil {
		t.Error("expected error for no scans")
	}
}

func TestFigure1ShapeMatchesPaper(t *testing.T) {
	c := testHCP(t)
	res, err := Figure1(context.Background(), c, attackCfg())
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	// The paper's headline claims: diagonal dominates, accuracy > 94%.
	if res.DiagMean <= res.OffMean {
		t.Errorf("diagonal (%.3f) must dominate off-diagonal (%.3f)", res.DiagMean, res.OffMean)
	}
	if res.Accuracy < 0.9 {
		t.Errorf("rest accuracy %.2f want >= 0.90", res.Accuracy)
	}
	if !strings.Contains(res.Render(), "Figure 1") {
		t.Error("render missing title")
	}
}

func TestFigure2WeakerContrastThanFigure1(t *testing.T) {
	c := testHCP(t)
	f1, err := Figure1(context.Background(), c, attackCfg())
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	f2, err := Figure2(context.Background(), c, attackCfg())
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	contrast1 := f1.DiagMean - f1.OffMean
	contrast2 := f2.DiagMean - f2.OffMean
	t.Logf("rest contrast=%.3f language contrast=%.3f", contrast1, contrast2)
	if contrast2 <= 0 {
		t.Errorf("language diagonal should still dominate (contrast %.3f)", contrast2)
	}
	if contrast2 >= contrast1 {
		t.Errorf("task contrast (%.3f) should be weaker than rest (%.3f), per Figure 2", contrast2, contrast1)
	}
}

func TestFigure5Shape(t *testing.T) {
	c := testHCP(t)
	res, err := Figure5(context.Background(), c, attackCfg())
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	n := len(res.Conditions)
	if r, cc := res.Accuracy.Dims(); r != n || cc != n {
		t.Fatalf("accuracy matrix %dx%d want %dx%d", r, cc, n, n)
	}
	idx := func(task synth.Task) int {
		for i, t2 := range res.Conditions {
			if t2 == task {
				return i
			}
		}
		t.Fatalf("condition %v missing", task)
		return -1
	}
	rest := idx(synth.Rest1)
	lang := idx(synth.Language)
	motor := idx(synth.Motor)
	wm := idx(synth.WorkingMemory)
	restAcc := res.Accuracy.At(rest, rest)
	langAcc := res.Accuracy.At(lang, lang)
	motorAcc := res.Accuracy.At(motor, motor)
	wmAcc := res.Accuracy.At(wm, wm)
	t.Logf("diag accuracies: rest=%.2f lang=%.2f motor=%.2f wm=%.2f", restAcc, langAcc, motorAcc, wmAcc)
	// Figure 5's qualitative structure.
	if restAcc < 0.9 {
		t.Errorf("rest-rest accuracy %.2f want >= 0.9", restAcc)
	}
	if langAcc < 0.7 {
		t.Errorf("language-language accuracy %.2f want >= 0.7", langAcc)
	}
	if motorAcc > 0.5 || wmAcc > 0.5 {
		t.Errorf("motor (%.2f) and WM (%.2f) should identify poorly even on-diagonal", motorAcc, wmAcc)
	}
	if restAcc <= motorAcc {
		t.Error("rest must beat motor")
	}
	if !strings.Contains(res.Render(), "REST1") {
		t.Error("render missing condition labels")
	}
}

func TestFigure6Clusters(t *testing.T) {
	c := testHCP(t)
	res, err := Figure6(context.Background(), c, 0.5, tsne.Config{Perplexity: 10, Iterations: 250, Seed: 2}, 3)
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	if res.Accuracy < 0.85 {
		t.Errorf("task prediction accuracy %.2f want >= 0.85 (paper ~100%%)", res.Accuracy)
	}
	wantPoints := 14 * len(synth.TaskConditions)
	if r, _ := res.Embedding.Dims(); r != wantPoints {
		t.Errorf("embedding rows %d want %d", r, wantPoints)
	}
	if len(res.PerTask) == 0 {
		t.Error("per-task accuracies missing")
	}
	if !strings.Contains(res.Render(), "Figure 6") {
		t.Error("render missing title")
	}
}

func TestTable1AllTasksPresent(t *testing.T) {
	p := synth.DefaultHCPParams()
	p.Subjects = 24
	p.Regions = 40
	p.RestFrames = 80
	p.TaskFrames = 150
	c, err := synth.GenerateHCP(p)
	if err != nil {
		t.Fatalf("GenerateHCP: %v", err)
	}
	cfg := core.DefaultPerformanceConfig()
	cfg.Trials = 5
	cfg.Seed = 2
	res, err := Table1(context.Background(), c, cfg)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	for _, task := range synth.PerformanceTasks {
		row, ok := res.Rows[task]
		if !ok {
			t.Fatalf("missing task %v", task)
		}
		// Train error must be low and not exceed test error (the Table 1
		// pattern).
		if row.TrainNRMSE.Mean > row.TestNRMSE.Mean+1 {
			t.Errorf("%v: train %.2f exceeds test %.2f", task, row.TrainNRMSE.Mean, row.TestNRMSE.Mean)
		}
		if row.TestNRMSE.Mean > 30 {
			t.Errorf("%v: test nRMSE %.2f%% too high", task, row.TestNRMSE.Mean)
		}
	}
	if !strings.Contains(res.Render(), "LANGUAGE") {
		t.Error("render missing task names")
	}
}

func TestFigures7And8(t *testing.T) {
	c := testADHD(t)
	cfg := attackCfg()
	f7, err := Figure7(context.Background(), c, cfg)
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	if f7.DiagMean <= f7.OffMean {
		t.Errorf("subtype-1 diagonal (%.3f) must dominate (%.3f)", f7.DiagMean, f7.OffMean)
	}
	if f7.NumSubj != 6 {
		t.Errorf("subtype-1 subjects = %d want 6", f7.NumSubj)
	}
	f8, err := Figure8(context.Background(), c, cfg)
	if err != nil {
		t.Fatalf("Figure8: %v", err)
	}
	if f8.DiagMean <= f8.OffMean {
		t.Errorf("subtype-3 diagonal (%.3f) must dominate (%.3f)", f8.DiagMean, f8.OffMean)
	}
}

func TestFigure9TransferAccuracy(t *testing.T) {
	p := synth.DefaultADHDParams()
	p.Controls = 14
	p.Subtype1 = 8
	p.Subtype2 = 0
	p.Subtype3 = 8
	p.Regions = 40
	p.Frames = 160
	c, err := synth.GenerateADHD(p)
	if err != nil {
		t.Fatalf("GenerateADHD: %v", err)
	}
	res, err := Figure9(context.Background(), c, attackCfg(), 6, 0.7, 5)
	if err != nil {
		t.Fatalf("Figure9: %v", err)
	}
	t.Logf("cases transfer: %v, mixed transfer: %v", res.CasesTransfer, res.MixedTransfer)
	if res.CasesTransfer.Mean < 70 {
		t.Errorf("cases transfer accuracy %.1f%% want >= 70%% (paper: 97.2)", res.CasesTransfer.Mean)
	}
	if res.MixedTransfer.Mean < 70 {
		t.Errorf("mixed transfer accuracy %.1f%% want >= 70%% (paper: 94.1)", res.MixedTransfer.Mean)
	}
	if res.Similarity.DiagMean <= res.Similarity.OffMean {
		t.Error("full-cohort diagonal must dominate")
	}
	if !strings.Contains(res.Render(), "transfer") {
		t.Error("render missing transfer accuracies")
	}
}

func TestTransferAccuracyValidation(t *testing.T) {
	c := testADHD(t)
	if _, err := TransferAccuracy(context.Background(), c, []int{0, 1}, attackCfg(), 3, 0.7, 1); err == nil {
		t.Error("expected error for too-few subjects")
	}
}

func TestTable2MonotoneDecay(t *testing.T) {
	hcpP := synth.DefaultHCPParams()
	hcpP.Subjects = 12
	hcpP.Regions = 40
	hcpP.RestFrames = 150
	hcpP.TaskFrames = 60
	hcp, err := synth.GenerateHCP(hcpP)
	if err != nil {
		t.Fatalf("GenerateHCP: %v", err)
	}
	adhd := testADHD(t)
	res, err := Table2(context.Background(), hcp, adhd, []float64{0.1, 0.3}, 3, attackCfg(), 7)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(res.HCP) != 2 || len(res.ADHD) != 2 {
		t.Fatalf("rows missing: %+v", res)
	}
	// The paper's Table 2 pattern: accuracy decays as noise grows, and
	// low-noise accuracy stays high.
	if res.HCP[0].Mean < res.HCP[1].Mean-1e-9 {
		t.Errorf("HCP accuracy should not increase with noise: %v -> %v", res.HCP[0], res.HCP[1])
	}
	if res.HCP[0].Mean < 75 {
		t.Errorf("HCP accuracy at 10%% noise = %.1f%% want >= 75%% (paper: 91.1)", res.HCP[0].Mean)
	}
	if res.ADHD[0].Mean < 75 {
		t.Errorf("ADHD accuracy at 10%% noise = %.1f%% want >= 75%% (paper: 96.3)", res.ADHD[0].Mean)
	}
	if !strings.Contains(res.Render(), "Table 2") {
		t.Error("render missing title")
	}
}

func TestRenderADHDSummary(t *testing.T) {
	c := testADHD(t)
	s := RenderADHDSummary(c)
	if !strings.Contains(s, "control") || !strings.Contains(s, "10") {
		t.Errorf("summary missing content:\n%s", s)
	}
}

func TestDefenseSweepTradeoffShape(t *testing.T) {
	p := synth.DefaultHCPParams()
	p.Subjects = 12
	p.Regions = 40
	p.RestFrames = 150
	p.TaskFrames = 110
	c, err := synth.GenerateHCP(p)
	if err != nil {
		t.Fatalf("GenerateHCP: %v", err)
	}
	cfg := attackCfg()
	res, err := DefenseSweep(context.Background(), c, []float64{0.0, 0.6}, 150, cfg, 4)
	if err != nil {
		t.Fatalf("DefenseSweep: %v", err)
	}
	if len(res.Rows) != 4 { // 2 sigmas × 2 strategies
		t.Fatalf("rows = %d want 4", len(res.Rows))
	}
	get := func(s defense.Strategy, sigma float64) DefenseRow {
		for _, row := range res.Rows {
			if row.Strategy == s && row.Sigma == sigma {
				return row
			}
		}
		t.Fatalf("row %v/%v missing", s, sigma)
		return DefenseRow{}
	}
	// Zero noise: no distortion, attack intact.
	clean := get(defense.Targeted, 0)
	if clean.Distortion != 0 {
		t.Errorf("zero-sigma distortion %v", clean.Distortion)
	}
	if clean.IdentificationAcc < 0.9 {
		t.Errorf("clean identification %.2f should be high", clean.IdentificationAcc)
	}
	// Strong targeted noise: privacy improves (identification drops)
	// more than the same budget spread uniformly.
	targeted := get(defense.Targeted, 0.6)
	uniform := get(defense.Uniform, 0.6)
	t.Logf("targeted: ident=%.2f task=%.2f dist=%.3f | uniform: ident=%.2f task=%.2f dist=%.3f",
		targeted.IdentificationAcc, targeted.TaskAcc, targeted.Distortion,
		uniform.IdentificationAcc, uniform.TaskAcc, uniform.Distortion)
	if targeted.IdentificationAcc > clean.IdentificationAcc {
		t.Error("targeted noise should not improve the attack")
	}
	if targeted.IdentificationAcc > uniform.IdentificationAcc+1e-9 {
		t.Errorf("targeted (%.2f) should beat uniform (%.2f) at equal budget",
			targeted.IdentificationAcc, uniform.IdentificationAcc)
	}
	// Utility: task prediction survives targeted protection.
	if targeted.TaskAcc < 0.7 {
		t.Errorf("task utility collapsed under targeted noise: %.2f", targeted.TaskAcc)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure6UsesProjectionForHugeFeatureSpaces(t *testing.T) {
	// 160 regions ⇒ 12720 connectome features, crossing the projection
	// threshold; the experiment must still run and cluster correctly.
	p := synth.DefaultHCPParams()
	p.Subjects = 8
	p.Regions = 160
	p.RestFrames = 70
	p.TaskFrames = 70
	c, err := synth.GenerateHCP(p)
	if err != nil {
		t.Fatalf("GenerateHCP: %v", err)
	}
	res, err := Figure6(context.Background(), c, 0.5, tsne.Config{Perplexity: 8, Iterations: 150, Seed: 4}, 4)
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	if rows, cols := res.Embedding.Dims(); rows != 8*len(synth.TaskConditions) || cols != 2 {
		t.Fatalf("embedding dims %dx%d", rows, cols)
	}
	if res.Accuracy < 0.8 {
		t.Errorf("projected task prediction accuracy %.2f want >= 0.8", res.Accuracy)
	}
}
