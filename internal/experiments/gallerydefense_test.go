package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"testing"

	"brainprint/internal/defense"
)

// defenseSweepSeed pins the CI gate cohort; the baseline constants
// below are exact deterministic counts for it.
const defenseSweepSeed = 41

// defenseUndefendedTop1 is the undefended attack top-1 accuracy on the
// pinned 1k cohort — the seed baseline the CI gate compares against.
// The cohort, scan, and tie-breaks are all deterministic, so the value
// is an exact count (1000/1000), not a tolerance band.
const defenseUndefendedTop1 = 1.0

// TestGalleryDefenseSweepGate is the CI defense gate (the
// defense-sweep job runs it by name): the acceptance-grade sweep on
// the pinned 1k cohort — k-same k ∈ {2, 5, 10} and gaussian noise
// ε ∈ {20, 8, 2} — with three hard invariants. The undefended baseline
// must equal the seed value exactly, attack top-1 must be
// non-increasing with strength within each kind (strictly decreasing
// for k-same), and every defended cell must report its utility
// numbers. When DEFENSE_OUT is set the full grid is written there as
// the CI artifact (DEFENSE_pr10.json).
func TestGalleryDefenseSweepGate(t *testing.T) {
	cfg := GalleryDefenseConfig{Seed: defenseSweepSeed}
	res, err := GalleryDefenseSweep(context.Background(), cfg)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, row := range res.Rows {
		t.Logf("%-32s top1=%.4f top%d=%.4f vulnerable=%.4f task=%.4f aggerr=%.4f",
			row.Descriptor, row.Top1, res.Config.TopK, row.TopK, row.Vulnerable, row.TaskAcc, row.AggErr)
	}

	if out := os.Getenv("DEFENSE_OUT"); out != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"subjects":        res.Config.Subjects,
			"features":        res.Config.Features,
			"clusters":        res.Config.Clusters,
			"topk":            res.Config.TopK,
			"seed":            res.Config.Seed,
			"undefended_top1": defenseUndefendedTop1,
			"rows":            res.Rows,
		}, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", out, err)
		}
		t.Logf("wrote defense grid to %s", out)
	}

	// Gate 1: the undefended baseline matches the seed exactly.
	if res.Rows[0].Kind != "none" {
		t.Fatalf("first row is %q, want the undefended baseline", res.Rows[0].Kind)
	}
	if res.Rows[0].Top1 != defenseUndefendedTop1 {
		t.Errorf("undefended top-1 = %v, want the seed baseline %v", res.Rows[0].Top1, defenseUndefendedTop1)
	}
	if res.Rows[0].AggErr != 0 {
		t.Errorf("undefended aggregate error = %v, want 0", res.Rows[0].AggErr)
	}

	// Gate 2: attack accuracy is monotone non-increasing with strength
	// within each kind and never above the baseline.
	for _, v := range res.MonotoneByStrength() {
		t.Errorf("monotonicity violated: %s", v)
	}

	// Gate 3: k-same is strictly decreasing over k ∈ {2, 5, 10} (ties
	// would mean the defense stopped biting), preserves population
	// means exactly, and drives the uniquely-vulnerable fraction to
	// zero (identical centroids ⇒ exact score ties).
	var ksame []GalleryDefenseRow
	for _, row := range res.Rows {
		if row.Kind == "ksame" {
			ksame = append(ksame, row)
		}
	}
	if len(ksame) != 3 {
		t.Fatalf("got %d k-same cells, want 3", len(ksame))
	}
	for i, row := range ksame {
		if i > 0 && row.Top1 >= ksame[i-1].Top1 {
			t.Errorf("k-same top-1 not strictly decreasing: k=%.0f gives %v, k=%.0f gave %v",
				row.Strength, row.Top1, ksame[i-1].Strength, ksame[i-1].Top1)
		}
		if row.AggErr > 1e-12 {
			t.Errorf("k-same k=%.0f aggregate error = %v, want ~0 (microaggregation preserves means)",
				row.Strength, row.AggErr)
		}
		if row.Vulnerable != 0 {
			t.Errorf("k-same k=%.0f vulnerable fraction = %v, want 0 (centroid ties)", row.Strength, row.Vulnerable)
		}
		if row.TaskAcc < 0.9 {
			t.Errorf("k-same k=%.0f task accuracy = %v, want ≥ 0.9 (utility floor)", row.Strength, row.TaskAcc)
		}
	}
}

// TestGalleryDefenseSweepDeterministicAcrossParallelism re-runs a
// small sweep at parallelism 1 and GOMAXPROCS and requires the full
// row set to be bit-identical — the per-cell derived-seed design, not
// scheduling, decides every number.
func TestGalleryDefenseSweepDeterministicAcrossParallelism(t *testing.T) {
	cfg := GalleryDefenseConfig{Subjects: 240, Features: 48, Seed: 9}
	serial := cfg
	serial.Parallelism = 1
	a, err := GalleryDefenseSweep(context.Background(), serial)
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	wide := cfg
	wide.Parallelism = 0
	b, err := GalleryDefenseSweep(context.Background(), wide)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Errorf("row %d differs across parallelism:\n  serial:   %+v\n  parallel: %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

// TestGalleryDefenseSweepNoiseUtilityDegrades checks the utility side
// of the trade-off: stronger noise (smaller ε) must cost strictly more
// aggregate-query error, and the strongest cell must not report
// perfect task accuracy — a sweep whose utility column never moves is
// measuring nothing.
func TestGalleryDefenseSweepNoiseUtilityDegrades(t *testing.T) {
	res, err := GalleryDefenseSweep(context.Background(), GalleryDefenseConfig{
		Subjects: 400, Features: 64, Seed: defenseSweepSeed,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	var noise []GalleryDefenseRow
	for _, row := range res.Rows {
		if row.Kind == "noise" {
			noise = append(noise, row)
		}
	}
	if len(noise) < 2 {
		t.Fatalf("got %d noise cells, want ≥ 2", len(noise))
	}
	for i, row := range noise {
		if row.AggErr <= 0 || math.IsNaN(row.AggErr) {
			t.Errorf("noise cell %s aggregate error = %v, want > 0", row.Descriptor, row.AggErr)
		}
		if i > 0 && row.AggErr <= noise[i-1].AggErr {
			t.Errorf("aggregate error not increasing with strength: %s gives %v after %v",
				row.Descriptor, row.AggErr, noise[i-1].AggErr)
		}
	}
	if last := noise[len(noise)-1]; last.TaskAcc >= 1 {
		t.Errorf("strongest noise cell still has perfect task accuracy (%v) — utility metric is inert", last.TaskAcc)
	}
}

// TestGalleryDefenseSweepRejectsBadDescriptor confirms the sweep
// surfaces descriptor validation errors instead of silently skipping
// cells.
func TestGalleryDefenseSweepRejectsBadDescriptor(t *testing.T) {
	_, err := GalleryDefenseSweep(context.Background(), GalleryDefenseConfig{
		Subjects: 50, Features: 16, KSameKs: []int{1},
	})
	if err == nil {
		t.Fatal("sweep accepted k-same k=1, want a validation error")
	}
	if !errors.Is(err, defense.ErrDescriptorInvalid) {
		t.Errorf("error %v does not unwrap to ErrDescriptorInvalid", err)
	}
}
