package experiments

import (
	"context"
	"fmt"

	"brainprint/internal/connectome"
	"brainprint/internal/core"
	"brainprint/internal/linalg"
	"brainprint/internal/match"
	"brainprint/internal/report"
	"brainprint/internal/synth"
)

// SimilarityResult is the outcome of one pairwise-similarity experiment
// (Figures 1, 2, 7, 8, 9): the subject×subject similarity matrix in the
// reduced feature space, its diagonal contrast, and the identification
// accuracy it implies.
type SimilarityResult struct {
	Name     string
	Sim      *linalg.Matrix
	DiagMean float64
	OffMean  float64
	Accuracy float64
	NumFeat  int
	NumSubj  int
}

// Render prints the result as an ASCII heatmap with summary statistics,
// the textual analogue of the paper's matrix figures.
func (r *SimilarityResult) Render() string {
	s := fmt.Sprintf("%s\nsubjects=%d features=%d\n", r.Name, r.NumSubj, r.NumFeat)
	s += report.Heatmap(r.Sim, nil, nil, 60)
	s += fmt.Sprintf("diagonal mean %.3f vs off-diagonal mean %.3f; identification accuracy %s\n",
		r.DiagMean, r.OffMean, report.Percent(r.Accuracy))
	return s
}

// pairSimilarity runs the attack between two matched scan groups and
// summarizes the similarity matrix.
func pairSimilarity(ctx context.Context, name string, known, anon *linalg.Matrix, cfg core.AttackConfig) (*SimilarityResult, error) {
	res, err := core.DeanonymizeCtx(ctx, known, anon, cfg)
	if err != nil {
		return nil, err
	}
	diag, off, err := match.DiagonalContrast(res.Similarity)
	if err != nil {
		return nil, err
	}
	_, subj := known.Dims()
	return &SimilarityResult{
		Name:     name,
		Sim:      res.Similarity,
		DiagMean: diag,
		OffMean:  off,
		Accuracy: res.Accuracy,
		NumFeat:  len(res.Features),
		NumSubj:  subj,
	}, nil
}

// Figure1 reproduces the paper's Figure 1: pairwise similarity of
// resting-state connectomes, REST1 L-R (de-anonymized) against REST2
// R-L (anonymous), in the principal features subspace.
func Figure1(ctx context.Context, c *synth.HCPCohort, cfg core.AttackConfig) (*SimilarityResult, error) {
	known, anon, err := hcpPair(ctx, c, synth.Rest1, synth.LR, synth.Rest2, synth.RL, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	return pairSimilarity(ctx, "Figure 1: resting-state pairwise similarity (REST1-LR vs REST2-RL)", known, anon, cfg)
}

// Figure2 reproduces Figure 2: pairwise similarity of LANGUAGE task
// connectomes across encodings. The diagonal remains dominant but with
// weaker contrast than rest.
func Figure2(ctx context.Context, c *synth.HCPCohort, cfg core.AttackConfig) (*SimilarityResult, error) {
	known, anon, err := hcpPair(ctx, c, synth.Language, synth.LR, synth.Language, synth.RL, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	return pairSimilarity(ctx, "Figure 2: language-task pairwise similarity (LANGUAGE-LR vs LANGUAGE-RL)", known, anon, cfg)
}

// hcpPair builds the two group matrices for a pair of conditions.
func hcpPair(ctx context.Context, c *synth.HCPCohort, t1 synth.Task, e1 synth.Encoding, t2 synth.Task, e2 synth.Encoding, parallelism int) (*linalg.Matrix, *linalg.Matrix, error) {
	s1, err := c.ScansFor(t1, e1)
	if err != nil {
		return nil, nil, err
	}
	s2, err := c.ScansFor(t2, e2)
	if err != nil {
		return nil, nil, err
	}
	known, err := BuildGroupMatrix(ctx, s1, connectome.Options{Parallelism: parallelism})
	if err != nil {
		return nil, nil, err
	}
	anon, err := BuildGroupMatrix(ctx, s2, connectome.Options{Parallelism: parallelism})
	if err != nil {
		return nil, nil, err
	}
	return known, anon, nil
}
