// Package experiments regenerates every table and figure of the paper's
// evaluation (§3.3) on the synthetic cohorts: one driver function per
// experiment, each returning a structured result with a Render method
// that prints the same rows or picture the paper reports. DESIGN.md maps
// each driver to its paper artifact.
//
// Every driver takes a context.Context first: the grid sweeps and group
// builds underneath run on parallel.ForCtx, so a cancelled context
// aborts a running experiment between cells/scans and surfaces
// ctx.Err(). Results are bit-identical at any parallelism setting and
// unaffected by the context on success.
package experiments

import (
	"context"
	"fmt"

	"brainprint/internal/connectome"
	"brainprint/internal/linalg"
	"brainprint/internal/parallel"
	"brainprint/internal/synth"
)

// BuildGroupMatrix converts HCP-like scans into the features×subjects
// group matrix of §3.1.1: each scan becomes a vectorized connectome
// column. Scans are independent, so their connectomes build concurrently
// under opt.Parallelism; the scan-pair sweep inside each build runs
// serially then, keeping the total worker count at the knob.
func BuildGroupMatrix(ctx context.Context, scans []*synth.Scan, opt connectome.Options) (*linalg.Matrix, error) {
	return buildGroup(ctx, len(scans), opt, func(i int) *linalg.Matrix { return scans[i].Series })
}

// BuildGroupMatrixADHD converts ADHD-like scans into a group matrix.
func BuildGroupMatrixADHD(ctx context.Context, scans []*synth.ADHDScan, opt connectome.Options) (*linalg.Matrix, error) {
	return buildGroup(ctx, len(scans), opt, func(i int) *linalg.Matrix { return scans[i].Series })
}

// buildGroup fans the per-scan connectome construction out over the
// scans and stacks the results in scan order. Cancellation aborts
// between scans.
func buildGroup(ctx context.Context, n int, opt connectome.Options, series func(i int) *linalg.Matrix) (*linalg.Matrix, error) {
	if n == 0 {
		return nil, fmt.Errorf("experiments: no scans")
	}
	// One layer of parallelism is enough: when scans fan out, each
	// per-scan correlation sweep stays serial.
	inner := opt
	if n > 1 && parallel.Workers(opt.Parallelism) > 1 {
		inner.Parallelism = 1
	}
	cons := make([]*connectome.Connectome, n)
	err := parallel.ForCtx(ctx, opt.Parallelism, n, 1, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			c, err := connectome.FromRegionSeries(series(i), inner)
			if err != nil {
				return fmt.Errorf("experiments: scan %d: %w", i, err)
			}
			cons[i] = c
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return connectome.GroupMatrix(cons)
}
