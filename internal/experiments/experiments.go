// Package experiments regenerates every table and figure of the paper's
// evaluation (§3.3) on the synthetic cohorts: one driver function per
// experiment, each returning a structured result with a Render method
// that prints the same rows or picture the paper reports. DESIGN.md maps
// each driver to its paper artifact.
package experiments

import (
	"fmt"

	"brainprint/internal/connectome"
	"brainprint/internal/linalg"
	"brainprint/internal/synth"
)

// BuildGroupMatrix converts HCP-like scans into the features×subjects
// group matrix of §3.1.1: each scan becomes a vectorized connectome
// column.
func BuildGroupMatrix(scans []*synth.Scan, opt connectome.Options) (*linalg.Matrix, error) {
	if len(scans) == 0 {
		return nil, fmt.Errorf("experiments: no scans")
	}
	cons := make([]*connectome.Connectome, len(scans))
	for i, s := range scans {
		c, err := connectome.FromRegionSeries(s.Series, opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: scan %d: %w", i, err)
		}
		cons[i] = c
	}
	return connectome.GroupMatrix(cons)
}

// BuildGroupMatrixADHD converts ADHD-like scans into a group matrix.
func BuildGroupMatrixADHD(scans []*synth.ADHDScan, opt connectome.Options) (*linalg.Matrix, error) {
	if len(scans) == 0 {
		return nil, fmt.Errorf("experiments: no scans")
	}
	cons := make([]*connectome.Connectome, len(scans))
	for i, s := range scans {
		c, err := connectome.FromRegionSeries(s.Series, opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: scan %d: %w", i, err)
		}
		cons[i] = c
	}
	return connectome.GroupMatrix(cons)
}
