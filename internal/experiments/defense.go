package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"brainprint/internal/connectome"
	"brainprint/internal/core"
	"brainprint/internal/defense"
	"brainprint/internal/linalg"
	"brainprint/internal/parallel"
	"brainprint/internal/report"
	"brainprint/internal/synth"
	"brainprint/internal/tsne"
)

// DefaultDefenseTopFeatures is the targeted-noise feature budget
// DefenseSweep falls back to — the single definition site shared with
// the facade's compatibility wrapper.
const DefaultDefenseTopFeatures = 200

// DefaultDefenseSigmas returns the noise grid DefenseSweep falls back
// to (a fresh slice per call; callers may mutate it).
func DefaultDefenseSigmas() []float64 { return []float64{0.05, 0.15, 0.3} }

// DefenseRow is one cell of the defense sweep: a strategy at a noise
// level, with the privacy and utility outcomes.
type DefenseRow struct {
	Strategy defense.Strategy
	Sigma    float64
	// IdentificationAcc is the attacker's accuracy on the protected
	// release (privacy: lower is better for the publisher).
	IdentificationAcc float64
	// TaskAcc is the t-SNE task-prediction accuracy on the protected
	// release (utility proxy: higher is better).
	TaskAcc float64
	// Distortion is the relative Frobenius change of the release.
	Distortion float64
	// ClusteringShift is the mean absolute change of the Onnela weighted
	// clustering coefficient across sampled subjects — a graph-level
	// utility check (connectomic analyses must survive protection).
	ClusteringShift float64
}

// DefenseResult is the full privacy/utility sweep of the §4 defense.
type DefenseResult struct {
	Rows []DefenseRow
}

// Render prints the sweep as a table.
func (r *DefenseResult) Render() string {
	headers := []string{"strategy", "sigma", "distortion", "ident-acc (privacy)", "task-acc (utility)", "clustering-shift"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Strategy.String(),
			fmt.Sprintf("%.2f", row.Sigma),
			fmt.Sprintf("%.3f", row.Distortion),
			report.Percent(row.IdentificationAcc),
			report.Percent(row.TaskAcc),
			fmt.Sprintf("%.4f", row.ClusteringShift),
		})
	}
	return "Defense (§4): targeted vs uniform noise at matched distortion budget\n" + report.Table(headers, rows)
}

// DefenseSweep evaluates the paper's §4 defense idea: the publisher
// perturbs the to-be-released dataset (the anonymous R-L resting scans)
// either on its top-leverage features (targeted) or uniformly, at the
// same total distortion budget. For each configuration we measure the
// attacker's identification accuracy (privacy) and the task-prediction
// accuracy across all conditions (a utility proxy: the data must stay
// analyzable).
func DefenseSweep(ctx context.Context, c *synth.HCPCohort, sigmas []float64, topFeatures int, attackCfg core.AttackConfig, seed int64) (*DefenseResult, error) {
	if len(sigmas) == 0 {
		sigmas = DefaultDefenseSigmas()
	}
	if topFeatures <= 0 {
		topFeatures = DefaultDefenseTopFeatures
	}

	// Attacker side: known group from REST1-LR.
	knownScans, err := c.ScansFor(synth.Rest1, synth.LR)
	if err != nil {
		return nil, err
	}
	known, err := BuildGroupMatrix(ctx, knownScans, connectome.Options{Parallelism: attackCfg.Parallelism})
	if err != nil {
		return nil, err
	}
	// Publisher side: the release is REST2-RL.
	anonScans, err := c.ScansFor(synth.Rest2, synth.RL)
	if err != nil {
		return nil, err
	}
	anon, err := BuildGroupMatrix(ctx, anonScans, connectome.Options{Parallelism: attackCfg.Parallelism})
	if err != nil {
		return nil, err
	}

	// Utility evaluation set: per-condition scans of the release
	// encoding, used for task prediction after protection.
	conds := synth.TaskConditions
	var vecs [][]float64
	var labels []int
	for ci, task := range conds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		scans, err := c.ScansFor(task, synth.RL)
		if err != nil {
			return nil, err
		}
		for _, s := range scans {
			con, err := connectome.FromRegionSeries(s.Series, connectome.Options{Parallelism: attackCfg.Parallelism})
			if err != nil {
				return nil, err
			}
			vecs = append(vecs, con.Vectorize())
			labels = append(labels, ci)
		}
	}
	taskPoints, err := connectome.GroupMatrixFromVectors(vecs)
	if err != nil {
		return nil, err
	}

	// The sigma×strategy grid fans out whole cells (a cell spans the
	// protected release, the attack on it, and the t-SNE utility run —
	// the dominant cost). Each cell's noise comes from an RNG derived
	// from (seed, sigma index, strategy index), so the sweep is
	// bit-identical at every parallelism setting.
	strategies := []defense.Strategy{defense.Targeted, defense.Uniform}
	rows := make([]DefenseRow, len(sigmas)*len(strategies))
	cellCfg := attackCfg
	if parallel.Workers(attackCfg.Parallelism) > 1 {
		cellCfg.Parallelism = 1
	}
	err = parallel.ForCtx(ctx, attackCfg.Parallelism, len(rows), 1, func(lo, hi int) error {
		for cell := lo; cell < hi; cell++ {
			si, sti := cell/len(strategies), cell%len(strategies)
			sigma, strategy := sigmas[si], strategies[sti]
			rng := rand.New(rand.NewSource(parallel.DeriveSeed(seed, int64(si), int64(sti))))
			prot, err := defense.Protect(anon, strategy, topFeatures, sigma, rng)
			if err != nil {
				return err
			}
			defense.ClampCorrelations(prot.Protected)
			attack, err := core.DeanonymizeCtx(ctx, known, prot.Protected, cellCfg)
			if err != nil {
				return err
			}

			// Utility: protect the task points the same way and measure
			// task prediction. (The publisher applies the same mechanism
			// to every released scan.)
			protTask, err := defense.Protect(taskPoints, strategy, topFeatures, sigma, rng)
			if err != nil {
				return err
			}
			defense.ClampCorrelations(protTask.Protected)
			knownMask := make([]bool, len(labels))
			for i := range knownMask {
				knownMask[i] = i%2 == 0
			}
			taskInput := protTask.Protected.T()
			// As in Figure6, paper-scale feature spaces are reduced with a
			// JL random projection before the t-SNE utility evaluation.
			if _, d := taskInput.Dims(); d > 12000 {
				taskInput, err = tsne.RandomProjection(taskInput, 512, seed+1)
				if err != nil {
					return err
				}
			}
			taskRes, err := core.TaskPredictCtx(ctx, taskInput, labels, knownMask, core.TaskPredictConfig{
				TSNE: tsne.Config{Perplexity: 15, Iterations: 200, Seed: seed},
			})
			if err != nil {
				return err
			}
			shift, err := clusteringShift(anon, prot.Protected, c.Params.Regions)
			if err != nil {
				return err
			}
			rows[cell] = DefenseRow{
				Strategy:          strategy,
				Sigma:             sigma,
				IdentificationAcc: attack.Accuracy,
				TaskAcc:           taskRes.Accuracy,
				Distortion:        prot.Distortion,
				ClusteringShift:   shift,
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &DefenseResult{Rows: rows}, nil
}

// clusteringShift measures the mean absolute change of the Onnela
// weighted clustering coefficient between the original and protected
// connectomes of up to five subjects — the graph-utility metric of the
// defense table.
func clusteringShift(orig, prot *linalg.Matrix, regions int) (float64, error) {
	_, subjects := orig.Dims()
	sample := subjects
	if sample > 5 {
		sample = 5
	}
	var total float64
	var count int
	for s := 0; s < sample; s++ {
		co, err := connectome.FromVector(orig.Col(s), regions)
		if err != nil {
			return 0, err
		}
		cp, err := connectome.FromVector(prot.Col(s), regions)
		if err != nil {
			return 0, err
		}
		ccO := co.ClusteringCoefficients()
		ccP := cp.ClusteringCoefficients()
		for i := range ccO {
			total += math.Abs(ccO[i] - ccP[i])
			count++
		}
	}
	if count == 0 {
		return 0, nil
	}
	return total / float64(count), nil
}
