package experiments

import (
	"context"
	"fmt"

	"brainprint/internal/connectome"
	"brainprint/internal/core"
	"brainprint/internal/linalg"
	"brainprint/internal/parallel"
	"brainprint/internal/report"
	"brainprint/internal/synth"
)

// CrossTaskResult is the Figure 5 matrix: identification accuracy when
// the row condition is de-anonymized (L-R scans, with REST represented
// by REST1) and the column condition is anonymous (R-L scans, REST
// represented by REST2).
type CrossTaskResult struct {
	Conditions []synth.Task
	Accuracy   *linalg.Matrix // rows = known condition, cols = anonymous condition
}

// Render prints the accuracy matrix as a labelled table plus a heatmap.
func (r *CrossTaskResult) Render() string {
	headers := []string{"known \\ anon"}
	for _, t := range r.Conditions {
		headers = append(headers, t.String())
	}
	var rows [][]string
	for i, t := range r.Conditions {
		row := []string{t.String()}
		for j := range r.Conditions {
			row = append(row, report.Percent(r.Accuracy.At(i, j)))
		}
		rows = append(rows, row)
	}
	s := "Figure 5: identifiability of subjects across tasks\n"
	s += report.Table(headers, rows)
	s += report.Heatmap(r.Accuracy, nil, nil, 20)
	return s
}

// Figure5 reproduces the paper's Figure 5: for every pair of conditions
// (row = de-anonymized dataset, column = anonymous dataset), select the
// principal features subspace on the row group and measure the
// identification accuracy on the column group. The row group uses L-R
// encodings (REST1 for rest); the column group uses R-L encodings
// (REST2 for rest), exactly as §3.3.1 describes.
func Figure5(ctx context.Context, c *synth.HCPCohort, cfg core.AttackConfig) (*CrossTaskResult, error) {
	conds := synth.TaskConditions
	known := make([]*linalg.Matrix, len(conds))
	anon := make([]*linalg.Matrix, len(conds))
	// Per-condition group matrices build concurrently; each condition
	// writes only its own slots and builds its scans serially, so the
	// knob stays the total worker count instead of multiplying across
	// the two layers.
	buildOpt := connectome.Options{Parallelism: cfg.Parallelism}
	if parallel.Workers(cfg.Parallelism) > 1 {
		buildOpt.Parallelism = 1
	}
	err := parallel.ForCtx(ctx, cfg.Parallelism, len(conds), 1, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			t := conds[i]
			kt, at := t, t
			if t == synth.Rest1 {
				at = synth.Rest2
			}
			scansK, err := c.ScansFor(kt, synth.LR)
			if err != nil {
				return err
			}
			scansA, err := c.ScansFor(at, synth.RL)
			if err != nil {
				return err
			}
			if known[i], err = BuildGroupMatrix(ctx, scansK, buildOpt); err != nil {
				return err
			}
			if anon[i], err = BuildGroupMatrix(ctx, scansA, buildOpt); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The grid cells are independent whole attacks; fan them out and let
	// each run its own similarity sweep serially so the knob stays the
	// total worker budget.
	cellCfg := cfg
	if parallel.Workers(cfg.Parallelism) > 1 {
		cellCfg.Parallelism = 1
	}
	acc := linalg.NewMatrix(len(conds), len(conds))
	raw := acc.RawData()
	cells := len(conds) * len(conds)
	err = parallel.ForCtx(ctx, cfg.Parallelism, cells, 1, func(lo, hi int) error {
		for cell := lo; cell < hi; cell++ {
			i, j := cell/len(conds), cell%len(conds)
			res, err := core.DeanonymizeCtx(ctx, known[i], anon[j], cellCfg)
			if err != nil {
				return fmt.Errorf("experiments: %v vs %v: %w", conds[i], conds[j], err)
			}
			raw[cell] = res.Accuracy
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &CrossTaskResult{Conditions: conds, Accuracy: acc}, nil
}
