package experiments

import (
	"fmt"

	"brainprint/internal/connectome"
	"brainprint/internal/core"
	"brainprint/internal/linalg"
	"brainprint/internal/report"
	"brainprint/internal/synth"
)

// CrossTaskResult is the Figure 5 matrix: identification accuracy when
// the row condition is de-anonymized (L-R scans, with REST represented
// by REST1) and the column condition is anonymous (R-L scans, REST
// represented by REST2).
type CrossTaskResult struct {
	Conditions []synth.Task
	Accuracy   *linalg.Matrix // rows = known condition, cols = anonymous condition
}

// Render prints the accuracy matrix as a labelled table plus a heatmap.
func (r *CrossTaskResult) Render() string {
	headers := []string{"known \\ anon"}
	for _, t := range r.Conditions {
		headers = append(headers, t.String())
	}
	var rows [][]string
	for i, t := range r.Conditions {
		row := []string{t.String()}
		for j := range r.Conditions {
			row = append(row, report.Percent(r.Accuracy.At(i, j)))
		}
		rows = append(rows, row)
	}
	s := "Figure 5: identifiability of subjects across tasks\n"
	s += report.Table(headers, rows)
	s += report.Heatmap(r.Accuracy, nil, nil, 20)
	return s
}

// Figure5 reproduces the paper's Figure 5: for every pair of conditions
// (row = de-anonymized dataset, column = anonymous dataset), select the
// principal features subspace on the row group and measure the
// identification accuracy on the column group. The row group uses L-R
// encodings (REST1 for rest); the column group uses R-L encodings
// (REST2 for rest), exactly as §3.3.1 describes.
func Figure5(c *synth.HCPCohort, cfg core.AttackConfig) (*CrossTaskResult, error) {
	conds := synth.TaskConditions
	known := make([]*linalg.Matrix, len(conds))
	anon := make([]*linalg.Matrix, len(conds))
	for i, t := range conds {
		kt, at := t, t
		if t == synth.Rest1 {
			at = synth.Rest2
		}
		scansK, err := c.ScansFor(kt, synth.LR)
		if err != nil {
			return nil, err
		}
		scansA, err := c.ScansFor(at, synth.RL)
		if err != nil {
			return nil, err
		}
		if known[i], err = BuildGroupMatrix(scansK, connectome.Options{}); err != nil {
			return nil, err
		}
		if anon[i], err = BuildGroupMatrix(scansA, connectome.Options{}); err != nil {
			return nil, err
		}
	}
	acc := linalg.NewMatrix(len(conds), len(conds))
	for i := range conds {
		for j := range conds {
			res, err := core.Deanonymize(known[i], anon[j], cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: %v vs %v: %w", conds[i], conds[j], err)
			}
			acc.Set(i, j, res.Accuracy)
		}
	}
	return &CrossTaskResult{Conditions: conds, Accuracy: acc}, nil
}
