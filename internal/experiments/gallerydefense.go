package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"brainprint/internal/defense"
	"brainprint/internal/gallery"
	"brainprint/internal/linalg"
	"brainprint/internal/parallel"
	"brainprint/internal/report"
)

// The gallery defense sweep: the attack/defense arms race measured at
// the gallery layer. A steward enrolls a synthetic cohort, anonymizes
// the gallery through a transform pipeline (internal/defense), and the
// attacker re-runs the paper's identification attack against the
// defended release. Each cell of the kind × strength grid reports the
// privacy outcomes (top-1/top-k attack accuracy and the percentage of
// the population still uniquely re-identifiable) next to the utility
// outcomes (task-prediction accuracy on the defended vectors and the
// aggregate-query error against the undefended gallery) — the
// percentage-of-vulnerable-population framing of the
// Narayanan–Shmatikov robustness analysis applied to fingerprint
// galleries.

// Gallery defense sweep defaults, shared by the CLI subcommand and the
// attacker registry entry so both run the acceptance-grade sweep.
const (
	// DefaultGalleryDefenseSubjects is the synthetic cohort size.
	DefaultGalleryDefenseSubjects = 1000
	// DefaultGalleryDefenseFeatures is the fingerprint dimensionality.
	DefaultGalleryDefenseFeatures = 96
	// DefaultGalleryDefenseClusters is the latent task-cluster count
	// (also the task-label alphabet of the utility metric).
	DefaultGalleryDefenseClusters = 8
	// DefaultGalleryDefenseTopK is the ranked list depth of the top-k
	// accuracy column.
	DefaultGalleryDefenseTopK = 5
)

// DefaultGalleryDefenseKSameKs returns the k-same strength grid the
// sweep falls back to (a fresh slice per call).
func DefaultGalleryDefenseKSameKs() []int { return []int{2, 5, 10} }

// DefaultGalleryDefenseEpsilons returns the DP-noise ε grid the sweep
// falls back to, strongest last (a fresh slice per call).
func DefaultGalleryDefenseEpsilons() []float64 { return []float64{20, 8, 2} }

// GalleryDefenseConfig parameterizes one gallery defense sweep.
type GalleryDefenseConfig struct {
	// Subjects is the cohort size (default 1000).
	Subjects int
	// Features is the fingerprint dimensionality (default 96).
	Features int
	// Clusters is the latent cluster / task-label count (default 8).
	Clusters int
	// TopK is the ranked list depth of the top-k column (default 5,
	// min 2 — the unique-match test needs a runner-up).
	TopK int
	// KSameKs is the k-same strength grid (default 2, 5, 10; empty
	// slice plus SkipKSame false means the default).
	KSameKs []int
	// Epsilons is the gaussian DP-noise ε grid (default 20, 8, 2).
	Epsilons []float64
	// Parallelism is the worker knob (0 = all cores); results are
	// bit-identical at any setting.
	Parallelism int
	// Seed drives cohort generation and probe noise.
	Seed int64
}

// withDefaults resolves zero values.
func (c GalleryDefenseConfig) withDefaults() GalleryDefenseConfig {
	if c.Subjects <= 0 {
		c.Subjects = DefaultGalleryDefenseSubjects
	}
	if c.Features <= 0 {
		c.Features = DefaultGalleryDefenseFeatures
	}
	if c.Clusters <= 0 {
		c.Clusters = DefaultGalleryDefenseClusters
	}
	if c.TopK < 2 {
		c.TopK = DefaultGalleryDefenseTopK
	}
	if len(c.KSameKs) == 0 {
		c.KSameKs = DefaultGalleryDefenseKSameKs()
	}
	if len(c.Epsilons) == 0 {
		c.Epsilons = DefaultGalleryDefenseEpsilons()
	}
	return c
}

// GalleryDefenseRow is one cell of the sweep: a defense pipeline with
// its privacy and utility outcomes.
type GalleryDefenseRow struct {
	// Kind names the transform family ("none" for the undefended
	// baseline, else "ksame" or "noise").
	Kind string
	// Strength is the cell's position on the kind's "more is stronger"
	// axis: k for k-same, 1/ε for noise, 0 for the baseline.
	Strength float64
	// Descriptor is the pipeline's textual spec.
	Descriptor string
	// Top1 is the attacker's top-1 identification accuracy (privacy:
	// lower is better for the steward).
	Top1 float64
	// TopK is the fraction of probes whose true subject appears in the
	// ranked top-k.
	TopK float64
	// Vulnerable is the percentage-of-vulnerable-population: the
	// fraction of probes whose top match is both correct and strictly
	// unique (no score tie with the runner-up) — the records k-anonymity
	// failed to hide.
	Vulnerable float64
	// TaskAcc is the nearest-centroid task-prediction accuracy on the
	// defended gallery vectors (utility: higher is better).
	TaskAcc float64
	// AggErr is the RMSE of the per-feature population means between
	// the defended and undefended galleries — the aggregate-query error
	// a cohort-statistics consumer pays.
	AggErr float64
}

// GalleryDefenseResult is the full kind × strength sweep.
type GalleryDefenseResult struct {
	// Config echoes the resolved sweep configuration.
	Config GalleryDefenseConfig
	// Rows holds the undefended baseline first, then each defense kind
	// in ascending strength.
	Rows []GalleryDefenseRow
}

// Render prints the sweep as a table.
func (r *GalleryDefenseResult) Render() string {
	headers := []string{"defense", "strength",
		"top-1 (privacy)", fmt.Sprintf("top-%d", r.Config.TopK),
		"vulnerable", "task-acc (utility)", "agg-err"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Descriptor,
			fmt.Sprintf("%.2f", row.Strength),
			report.Percent(row.Top1),
			report.Percent(row.TopK),
			report.Percent(row.Vulnerable),
			report.Percent(row.TaskAcc),
			fmt.Sprintf("%.4f", row.AggErr),
		})
	}
	return fmt.Sprintf("Gallery defense sweep: %d subjects, %d features, attack vs utility per pipeline\n",
		r.Config.Subjects, r.Config.Features) + report.Table(headers, rows)
}

// GalleryDefenseSweep runs the attack-vs-utility sweep: it enrolls a
// seeded synthetic cohort, re-scans every subject as a noisy probe,
// and for the undefended baseline plus every (kind, strength) cell
// applies the pipeline with defense.Apply and attacks the defended
// gallery with ranked top-k queries. Cells fan out in parallel with
// per-cell derived determinism: results are bit-identical at any
// Parallelism setting.
func GalleryDefenseSweep(ctx context.Context, cfg GalleryDefenseConfig) (*GalleryDefenseResult, error) {
	cfg = cfg.withDefaults()
	base, probes, labels, err := synthGalleryCohort(cfg)
	if err != nil {
		return nil, err
	}
	baseMeans := columnMeans(base)

	type cell struct {
		kind     string
		strength float64
		desc     *defense.Descriptor
	}
	cells := []cell{{kind: "none"}}
	for _, k := range cfg.KSameKs {
		cells = append(cells, cell{
			kind: "ksame", strength: float64(k),
			desc: &defense.Descriptor{Steps: []defense.Step{{Kind: defense.KindKSame, K: k}}},
		})
	}
	for _, eps := range cfg.Epsilons {
		cells = append(cells, cell{
			kind: "noise", strength: 1 / eps,
			desc: &defense.Descriptor{Steps: []defense.Step{{
				Kind: defense.KindNoise, Mechanism: defense.Gaussian, Epsilon: eps, Seed: cfg.Seed,
			}}},
		})
	}

	// Whole cells fan out; everything inside a cell runs serial so the
	// outer loop owns the parallelism (the same shape as DefenseSweep).
	rows := make([]GalleryDefenseRow, len(cells))
	err = parallel.ForCtx(ctx, cfg.Parallelism, len(cells), 1, func(lo, hi int) error {
		for ci := lo; ci < hi; ci++ {
			c := cells[ci]
			defended, err := defense.Apply(base, c.desc, 1)
			if err != nil {
				return err
			}
			row := GalleryDefenseRow{Kind: c.kind, Strength: c.strength, Descriptor: c.desc.String()}
			ranked, err := defended.QueryAllCtx(ctx, probes, cfg.TopK, 1)
			if err != nil {
				return err
			}
			for pi, cands := range ranked {
				want := defended.ID(pi)
				if len(cands) > 0 && cands[0].ID == want {
					row.Top1++
					if len(cands) > 1 && cands[0].Score > cands[1].Score {
						row.Vulnerable++
					}
				}
				for _, cand := range cands {
					if cand.ID == want {
						row.TopK++
						break
					}
				}
			}
			n := float64(len(ranked))
			row.Top1 /= n
			row.TopK /= n
			row.Vulnerable /= n
			row.TaskAcc = nearestCentroidAccuracy(defended, labels, cfg.Clusters)
			row.AggErr = meansRMSE(baseMeans, columnMeans(defended))
			rows[ci] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &GalleryDefenseResult{Config: cfg, Rows: rows}, nil
}

// synthGalleryCohort generates the seeded cohort: each subject's
// fingerprint is its cluster center plus an individual signature, the
// probe a noisy re-scan of it, the task label the cluster. Probes line
// up column pi ↔ enrollment index pi. Generation is serial from one
// RNG, so the cohort is a function of the config alone.
func synthGalleryCohort(cfg GalleryDefenseConfig) (*gallery.Gallery, *linalg.Matrix, []int, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([][]float64, cfg.Clusters)
	for c := range centers {
		centers[c] = make([]float64, cfg.Features)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64()
		}
	}
	g := gallery.New(cfg.Features)
	probes := linalg.NewMatrix(cfg.Features, cfg.Subjects)
	labels := make([]int, cfg.Subjects)
	raw := make([]float64, cfg.Features)
	probe := make([]float64, cfg.Features)
	for i := 0; i < cfg.Subjects; i++ {
		labels[i] = i % cfg.Clusters
		center := centers[labels[i]]
		for j := range raw {
			raw[j] = center[j] + 0.8*rng.NormFloat64()
		}
		for j := range probe {
			probe[j] = raw[j] + 0.6*rng.NormFloat64()
		}
		if err := g.Enroll(fmt.Sprintf("sub-%04d", i), raw); err != nil {
			return nil, nil, nil, err
		}
		probes.SetCol(i, probe)
	}
	return g, probes, labels, nil
}

// columnMeans returns the per-feature population mean of a gallery's
// stored vectors — the aggregate a cohort-statistics query reads.
func columnMeans(g *gallery.Gallery) []float64 {
	f := g.Features()
	means := make([]float64, f)
	for i := 0; i < g.Len(); i++ {
		v := g.Fingerprint(i)
		for j, x := range v {
			means[j] += x
		}
	}
	inv := 1 / float64(g.Len())
	for j := range means {
		means[j] *= inv
	}
	return means
}

// meansRMSE is the root-mean-square difference of two per-feature mean
// vectors.
func meansRMSE(a, b []float64) float64 {
	var s float64
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

// nearestCentroidAccuracy measures task utility on the defended
// vectors: per-label centroids are estimated from the defended gallery
// itself, every subject is classified to the nearest centroid
// (squared-Euclidean, ties to the lower label), and the fraction of
// correct labels is returned. Deterministic — no RNG, no parallelism.
func nearestCentroidAccuracy(g *gallery.Gallery, labels []int, clusters int) float64 {
	f := g.Features()
	centroids := make([][]float64, clusters)
	counts := make([]int, clusters)
	for c := range centroids {
		centroids[c] = make([]float64, f)
	}
	for i := 0; i < g.Len(); i++ {
		c := labels[i]
		counts[c]++
		for j, x := range g.Fingerprint(i) {
			centroids[c][j] += x
		}
	}
	for c := range centroids {
		if counts[c] == 0 {
			continue
		}
		inv := 1 / float64(counts[c])
		for j := range centroids[c] {
			centroids[c][j] *= inv
		}
	}
	correct := 0
	for i := 0; i < g.Len(); i++ {
		v := g.Fingerprint(i)
		best, bestD := -1, math.Inf(1)
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			var d float64
			for j, x := range v {
				dx := x - centroids[c][j]
				d += dx * dx
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(g.Len())
}

// MonotoneByStrength checks the sweep's gate invariant: within each
// defense kind, attack top-1 accuracy must be non-increasing as
// strength increases, and every defended cell must sit at or below the
// undefended baseline. It returns the violations in rendering order
// (empty = the invariant holds).
func (r *GalleryDefenseResult) MonotoneByStrength() []string {
	var baseline float64
	haveBaseline := false
	for _, row := range r.Rows {
		if row.Kind == "none" {
			baseline, haveBaseline = row.Top1, true
		}
	}
	byKind := map[string][]GalleryDefenseRow{}
	var kinds []string
	for _, row := range r.Rows {
		if row.Kind == "none" {
			continue
		}
		if _, ok := byKind[row.Kind]; !ok {
			kinds = append(kinds, row.Kind)
		}
		byKind[row.Kind] = append(byKind[row.Kind], row)
	}
	sort.Strings(kinds)
	var violations []string
	for _, kind := range kinds {
		rows := byKind[kind]
		sort.Slice(rows, func(a, b int) bool { return rows[a].Strength < rows[b].Strength })
		for i, row := range rows {
			if haveBaseline && row.Top1 > baseline {
				violations = append(violations, fmt.Sprintf(
					"%s: top-1 %.4f above the undefended baseline %.4f", row.Descriptor, row.Top1, baseline))
			}
			if i > 0 && row.Top1 > rows[i-1].Top1 {
				violations = append(violations, fmt.Sprintf(
					"%s: top-1 %.4f above weaker cell %s (%.4f)", row.Descriptor, row.Top1, rows[i-1].Descriptor, rows[i-1].Top1))
			}
		}
	}
	return violations
}
