package experiments

// Parallel/serial equivalence: every experiment driver must produce
// bit-identical results whether it runs on one worker (Parallelism: 1),
// the all-cores default (0), or an explicit multi-worker pin. The
// contract holds because range workers own disjoint output regions and
// randomized sweeps derive per-cell RNGs from the root seed; these tests
// are the regression net for that contract. The multi-worker mode pins
// more workers than GOMAXPROCS so real fan-out happens even on a
// single-core CI runner.

import (
	"context"
	"testing"

	"brainprint/internal/connectome"
	"brainprint/internal/core"
	"brainprint/internal/linalg"
	"brainprint/internal/synth"
)

// equivModes are the Parallelism settings compared against the serial
// baseline of 1.
var equivModes = []int{0, 4}

func matricesIdentical(t *testing.T, name string, serial, parallel *linalg.Matrix) {
	t.Helper()
	if !serial.EqualApprox(parallel, 0) {
		t.Errorf("%s: parallel result differs from serial", name)
	}
}

func TestDeanonymizeParallelSerialEquivalence(t *testing.T) {
	c := testHCP(t)
	scansK, err := c.ScansFor(synth.Rest1, synth.LR)
	if err != nil {
		t.Fatal(err)
	}
	scansA, err := c.ScansFor(synth.Rest2, synth.RL)
	if err != nil {
		t.Fatal(err)
	}
	known, err := BuildGroupMatrix(context.Background(), scansK, connectome.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	anon, err := BuildGroupMatrix(context.Background(), scansA, connectome.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := attackCfg()
	cfg.Parallelism = 1
	serial, err := core.Deanonymize(known, anon, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range equivModes {
		cfg.Parallelism = mode
		par, err := core.Deanonymize(known, anon, cfg)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		matricesIdentical(t, "Similarity", serial.Similarity, par.Similarity)
		if len(par.Predictions) != len(serial.Predictions) {
			t.Fatalf("mode %d: prediction count %d vs %d", mode, len(par.Predictions), len(serial.Predictions))
		}
		for i := range serial.Predictions {
			if par.Predictions[i] != serial.Predictions[i] {
				t.Errorf("mode %d: prediction %d = %d, serial %d", mode, i, par.Predictions[i], serial.Predictions[i])
			}
		}
		if par.Accuracy != serial.Accuracy {
			t.Errorf("mode %d: accuracy %v vs serial %v", mode, par.Accuracy, serial.Accuracy)
		}
	}
}

func TestGroupMatrixParallelSerialEquivalence(t *testing.T) {
	c := testHCP(t)
	scans, err := c.ScansFor(synth.Language, synth.LR)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := BuildGroupMatrix(context.Background(), scans, connectome.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range equivModes {
		par, err := BuildGroupMatrix(context.Background(), scans, connectome.Options{Parallelism: mode})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		matricesIdentical(t, "GroupMatrix", serial, par)
	}
	// FisherZ path too.
	serialZ, err := BuildGroupMatrix(context.Background(), scans, connectome.Options{FisherZ: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parZ, err := BuildGroupMatrix(context.Background(), scans, connectome.Options{FisherZ: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	matricesIdentical(t, "GroupMatrix fisher-z", serialZ, parZ)
}

func TestFigure5ParallelSerialEquivalence(t *testing.T) {
	c := testHCP(t)
	cfg := attackCfg()
	cfg.Parallelism = 1
	serial, err := Figure5(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range equivModes {
		cfg.Parallelism = mode
		par, err := Figure5(context.Background(), c, cfg)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		matricesIdentical(t, "Figure5 accuracy grid", serial.Accuracy, par.Accuracy)
	}
}

func TestTable2ParallelSerialEquivalence(t *testing.T) {
	hcpP := synth.DefaultHCPParams()
	hcpP.Subjects = 10
	hcpP.Regions = 36
	hcpP.RestFrames = 120
	hcpP.TaskFrames = 60
	hcp, err := synth.GenerateHCP(hcpP)
	if err != nil {
		t.Fatal(err)
	}
	adhd := testADHD(t)
	cfg := attackCfg()
	cfg.Parallelism = 1
	serial, err := Table2(context.Background(), hcp, adhd, []float64{0.1, 0.3}, 3, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range equivModes {
		cfg.Parallelism = mode
		par, err := Table2(context.Background(), hcp, adhd, []float64{0.1, 0.3}, 3, cfg, 7)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		for i := range serial.HCP {
			if par.HCP[i] != serial.HCP[i] || par.ADHD[i] != serial.ADHD[i] {
				t.Errorf("mode %d level %d: parallel %v/%v vs serial %v/%v",
					mode, i, par.HCP[i], par.ADHD[i], serial.HCP[i], serial.ADHD[i])
			}
		}
	}
}

func TestTransferAccuracyParallelSerialEquivalence(t *testing.T) {
	c := testADHD(t)
	subjects := c.SubjectsInGroups(synth.Control, synth.Subtype1, synth.Subtype3)
	cfg := attackCfg()
	cfg.Parallelism = 1
	serial, err := TransferAccuracy(context.Background(), c, subjects, cfg, 5, 0.7, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range equivModes {
		cfg.Parallelism = mode
		par, err := TransferAccuracy(context.Background(), c, subjects, cfg, 5, 0.7, 11)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if par != serial {
			t.Errorf("mode %d: transfer %v vs serial %v", mode, par, serial)
		}
	}
}

func TestDefenseSweepParallelSerialEquivalence(t *testing.T) {
	p := synth.DefaultHCPParams()
	p.Subjects = 8
	p.Regions = 30
	p.RestFrames = 100
	p.TaskFrames = 80
	c, err := synth.GenerateHCP(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := attackCfg()
	cfg.Features = 60
	cfg.Parallelism = 1
	serial, err := DefenseSweep(context.Background(), c, []float64{0.1, 0.5}, 100, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range equivModes {
		cfg.Parallelism = mode
		par, err := DefenseSweep(context.Background(), c, []float64{0.1, 0.5}, 100, cfg, 9)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if len(par.Rows) != len(serial.Rows) {
			t.Fatalf("mode %d: %d rows vs %d", mode, len(par.Rows), len(serial.Rows))
		}
		for i := range serial.Rows {
			if par.Rows[i] != serial.Rows[i] {
				t.Errorf("mode %d row %d: parallel %+v vs serial %+v", mode, i, par.Rows[i], serial.Rows[i])
			}
		}
	}
}
