package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"brainprint/internal/connectome"
	"brainprint/internal/core"
	"brainprint/internal/linalg"
	"brainprint/internal/report"
	"brainprint/internal/synth"
	"brainprint/internal/tsne"
)

// TaskClusterResult is the Figure 6 outcome: the t-SNE embedding of
// every scan (one per subject per condition), the task-prediction
// accuracy via nearest known neighbour, and per-task accuracies.
type TaskClusterResult struct {
	Conditions []synth.Task
	Embedding  *linalg.Matrix
	Labels     []int
	Known      []bool
	KL         float64
	Accuracy   float64
	PerTask    map[synth.Task]float64
}

// Render prints the cluster scatter and the accuracy summary.
func (r *TaskClusterResult) Render() string {
	s := "Figure 6: t-SNE clustering of scans by task\nlegend: "
	for i, t := range r.Conditions {
		s += fmt.Sprintf("%d=%s ", i, t)
	}
	s += "\n"
	s += report.Scatter(r.Embedding, r.Labels, 72, 26)
	s += fmt.Sprintf("task prediction accuracy (anonymous scans): %s\n", report.Percent(r.Accuracy))
	for _, t := range r.Conditions {
		if acc, ok := r.PerTask[t]; ok {
			s += fmt.Sprintf("  %-10s %s\n", t.String(), report.Percent(acc))
		}
	}
	s += fmt.Sprintf("final KL divergence: %.3f\n", r.KL)
	return s
}

// Figure6 reproduces §3.3.2: stack one scan per subject per condition
// (L-R encodings; 100 subjects × 8 conditions = 800 rows in the paper),
// embed with t-SNE, and predict the task of anonymous scans from their
// nearest labelled neighbour. knownFraction of scans (stratified per
// condition) keep their labels, matching the paper's 50 known subjects.
func Figure6(ctx context.Context, c *synth.HCPCohort, knownFraction float64, tcfg tsne.Config, seed int64) (*TaskClusterResult, error) {
	if knownFraction <= 0 || knownFraction >= 1 {
		knownFraction = 0.5
	}
	conds := synth.TaskConditions
	var vecs [][]float64
	var labels []int
	for ci, task := range conds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		scans, err := c.ScansFor(task, synth.LR)
		if err != nil {
			return nil, err
		}
		for _, s := range scans {
			con, err := connectome.FromRegionSeries(s.Series, connectome.Options{})
			if err != nil {
				return nil, err
			}
			vecs = append(vecs, con.Vectorize())
			labels = append(labels, ci)
		}
	}
	points, err := connectome.GroupMatrixFromVectors(vecs)
	if err != nil {
		return nil, err
	}
	pointsT := points.T() // rows = scans
	// At paper scale the feature space is huge (64620 dims for 360
	// regions); a Johnson-Lindenstrauss sparse random projection keeps
	// the pairwise distances t-SNE consumes while making the embedding
	// tractable.
	if _, d := pointsT.Dims(); d > 12000 {
		pointsT, err = tsne.RandomProjection(pointsT, 512, seed+1)
		if err != nil {
			return nil, err
		}
	}
	// Known mask: the same random subject subset across all conditions,
	// as the paper assumes the attacker knows the labels of 50 subjects.
	rng := rand.New(rand.NewSource(seed))
	subjects := c.Params.Subjects
	knownSubject := make([]bool, subjects)
	perm := rng.Perm(subjects)
	for i := 0; i < int(knownFraction*float64(subjects)+0.5) && i < subjects; i++ {
		knownSubject[perm[i]] = true
	}
	known := make([]bool, len(labels))
	for i := range known {
		known[i] = knownSubject[i%subjects]
	}
	res, err := core.TaskPredictCtx(ctx, pointsT, labels, known, core.TaskPredictConfig{TSNE: tcfg})
	if err != nil {
		return nil, err
	}
	perTask := make(map[synth.Task]float64, len(conds))
	for ci, t := range conds {
		if acc, ok := res.PerLabel[ci]; ok {
			perTask[t] = acc
		}
	}
	return &TaskClusterResult{
		Conditions: conds,
		Embedding:  res.Embedding,
		Labels:     labels,
		Known:      known,
		KL:         res.KL,
		Accuracy:   res.Accuracy,
		PerTask:    perTask,
	}, nil
}
