package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"brainprint/internal/connectome"
	"brainprint/internal/core"
	"brainprint/internal/linalg"
	"brainprint/internal/match"
	"brainprint/internal/parallel"
	"brainprint/internal/report"
	"brainprint/internal/sampling"
	"brainprint/internal/stats"
	"brainprint/internal/synth"
)

// Figure7 reproduces the paper's Figure 7: session-1 vs session-2
// similarity of ADHD subtype-1 (combined type) subjects.
func Figure7(ctx context.Context, c *synth.ADHDCohort, cfg core.AttackConfig) (*SimilarityResult, error) {
	return adhdSimilarity(ctx, c, cfg, "Figure 7: ADHD subtype-1 inter-session similarity", synth.Subtype1)
}

// Figure8 reproduces Figure 8 for subtype 3 (inattentive type).
func Figure8(ctx context.Context, c *synth.ADHDCohort, cfg core.AttackConfig) (*SimilarityResult, error) {
	return adhdSimilarity(ctx, c, cfg, "Figure 8: ADHD subtype-3 inter-session similarity", synth.Subtype3)
}

// adhdSimilarity runs the attack between the two sessions of the given
// diagnostic groups.
func adhdSimilarity(ctx context.Context, c *synth.ADHDCohort, cfg core.AttackConfig, name string, groups ...synth.ADHDGroup) (*SimilarityResult, error) {
	subjects := c.SubjectsInGroups(groups...)
	if len(subjects) < 2 {
		return nil, fmt.Errorf("experiments: only %d subjects in groups %v", len(subjects), groups)
	}
	known, anon, err := adhdPair(ctx, c, subjects, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	return pairSimilarity(ctx, name, known, anon, cfg)
}

// adhdPair builds session-1 and session-2 group matrices for a subject
// subset.
func adhdPair(ctx context.Context, c *synth.ADHDCohort, subjects []int, parallelism int) (*linalg.Matrix, *linalg.Matrix, error) {
	s1, err := c.SessionScans(subjects, 0)
	if err != nil {
		return nil, nil, err
	}
	s2, err := c.SessionScans(subjects, 1)
	if err != nil {
		return nil, nil, err
	}
	known, err := BuildGroupMatrixADHD(ctx, s1, connectome.Options{Parallelism: parallelism})
	if err != nil {
		return nil, nil, err
	}
	anon, err := BuildGroupMatrixADHD(ctx, s2, connectome.Options{Parallelism: parallelism})
	if err != nil {
		return nil, nil, err
	}
	return known, anon, nil
}

// DefaultTransferTrials is the resampling count TransferAccuracy falls
// back to — the single definition site shared with the facade's
// compatibility wrapper.
const DefaultTransferTrials = 10

// Figure9Result extends the similarity result with the train/test
// feature-transfer accuracy the paper reports alongside Figure 9
// (97.2 ± 0.9% for cases, 94.12 ± 3.4% for the full cases+controls
// cohort).
type Figure9Result struct {
	Similarity    *SimilarityResult
	CasesTransfer stats.Summary // test accuracy, case subjects only
	MixedTransfer stats.Summary // test accuracy, cases + controls
}

// Render prints the similarity heatmap and transfer accuracies.
func (r *Figure9Result) Render() string {
	s := r.Similarity.Render()
	s += fmt.Sprintf("train/test leverage transfer accuracy (cases only):    %s\n", r.CasesTransfer)
	s += fmt.Sprintf("train/test leverage transfer accuracy (cases+controls): %s\n", r.MixedTransfer)
	return s
}

// Figure9 reproduces §3.3.4's quantitative claims: the full-cohort
// similarity matrix and the train/test experiment in which the
// principal features subspace is computed on a training subset of
// subjects and reused, unchanged, to identify held-out test subjects.
func Figure9(ctx context.Context, c *synth.ADHDCohort, cfg core.AttackConfig, trials int, trainFraction float64, seed int64) (*Figure9Result, error) {
	all := make([]int, c.Params.NumSubjects())
	for i := range all {
		all[i] = i
	}
	cases := c.SubjectsInGroups(synth.Subtype1, synth.Subtype2, synth.Subtype3)
	// The three sub-experiments (full-cohort similarity and the two
	// transfer runs) only read the cohort and write disjoint results, so
	// they fan out as a group; each keeps its own seed, so the outcome
	// matches the serial order exactly. The group's derived context
	// cancels the siblings as soon as one fails or the caller cancels.
	var (
		sim                *SimilarityResult
		casesAcc, mixedAcc stats.Summary
	)
	subCfg := cfg
	if parallel.Workers(cfg.Parallelism) > 1 {
		subCfg.Parallelism = 1
	}
	g, _ := parallel.NewGroupCtx(ctx, cfg.Parallelism)
	g.Go(func(gctx context.Context) (err error) {
		sim, err = adhdSimilarity(gctx, c, subCfg, "Figure 9: all ADHD-200 subjects (cases + controls)",
			synth.Control, synth.Subtype1, synth.Subtype2, synth.Subtype3)
		return err
	})
	g.Go(func(gctx context.Context) (err error) {
		casesAcc, err = TransferAccuracy(gctx, c, cases, subCfg, trials, trainFraction, seed)
		return err
	})
	g.Go(func(gctx context.Context) (err error) {
		mixedAcc, err = TransferAccuracy(gctx, c, all, subCfg, trials, trainFraction, seed+1)
		return err
	})
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return &Figure9Result{Similarity: sim, CasesTransfer: casesAcc, MixedTransfer: mixedAcc}, nil
}

// TransferAccuracy measures how well the principal features subspace
// generalizes across subjects: per trial, subjects are split into train
// and test sets, leverage scores are computed on the training group
// matrix only, and the held-out test subjects are identified across
// sessions in that fixed feature space (§3.3.4's protocol).
func TransferAccuracy(ctx context.Context, c *synth.ADHDCohort, subjects []int, cfg core.AttackConfig, trials int, trainFraction float64, seed int64) (stats.Summary, error) {
	if trials <= 0 {
		trials = DefaultTransferTrials
	}
	if trainFraction <= 0 || trainFraction >= 1 {
		trainFraction = 0.7
	}
	if len(subjects) < 4 {
		return stats.Summary{}, fmt.Errorf("experiments: need at least 4 subjects, got %d", len(subjects))
	}
	features := cfg.Features
	if features <= 0 {
		features = 100
	}
	known, anon, err := adhdPair(ctx, c, subjects, cfg.Parallelism)
	if err != nil {
		return stats.Summary{}, err
	}
	if f, _ := known.Dims(); features > f {
		features = f
	}
	n := len(subjects)
	nTrain := int(float64(n) * trainFraction)
	if nTrain < 2 {
		nTrain = 2
	}
	if nTrain > n-2 {
		nTrain = n - 2
	}
	// Trials are independent resampling experiments: each derives its own
	// RNG from the root seed (so the split a trial draws does not depend
	// on execution order) and fans out under cfg.Parallelism.
	accs := make([]float64, trials)
	trialCfg := cfg.Parallelism
	if parallel.Workers(cfg.Parallelism) > 1 {
		trialCfg = 1
	}
	err = parallel.ForCtx(ctx, cfg.Parallelism, trials, 1, func(lo, hi int) error {
		for trial := lo; trial < hi; trial++ {
			rng := rand.New(rand.NewSource(parallel.DeriveSeed(seed, int64(trial))))
			perm := rng.Perm(n)
			trainIdx := perm[:nTrain]
			testIdx := perm[nTrain:]
			featIdx, _, err := sampling.PrincipalFeatures(known.SelectCols(trainIdx), features)
			if err != nil {
				return err
			}
			kTest := known.SelectRows(featIdx).SelectCols(testIdx)
			aTest := anon.SelectRows(featIdx).SelectCols(testIdx)
			sim, err := match.SimilarityMatrixCtx(ctx, kTest, aTest, trialCfg)
			if err != nil {
				return err
			}
			acc, err := match.Accuracy(sim, nil)
			if err != nil {
				return err
			}
			accs[trial] = 100 * acc
		}
		return nil
	})
	if err != nil {
		return stats.Summary{}, err
	}
	return stats.Summarize(accs), nil
}

// RenderADHDSummary prints the per-group composition of an ADHD cohort,
// useful context above the Figure 7–9 outputs.
func RenderADHDSummary(c *synth.ADHDCohort) string {
	counts := map[synth.ADHDGroup]int{}
	for _, g := range c.Groups {
		counts[g]++
	}
	headers := []string{"group", "subjects"}
	var rows [][]string
	for _, g := range []synth.ADHDGroup{synth.Control, synth.Subtype1, synth.Subtype2, synth.Subtype3} {
		rows = append(rows, []string{g.String(), fmt.Sprintf("%d", counts[g])})
	}
	return report.Table(headers, rows)
}
