package experiments

import (
	"fmt"
	"math/rand"

	"brainprint/internal/connectome"
	"brainprint/internal/core"
	"brainprint/internal/report"
	"brainprint/internal/stats"
	"brainprint/internal/synth"
)

// Table2Result holds the multi-site noise sweep of the paper's Table 2:
// identification accuracy at each noise-variance level for the HCP-like
// and ADHD-like cohorts.
type Table2Result struct {
	Levels []float64 // noise variance fractions (0.1, 0.2, 0.3 in the paper)
	HCP    []stats.Summary
	ADHD   []stats.Summary
}

// Render prints the table in the paper's format.
func (r *Table2Result) Render() string {
	headers := []string{"Noise Variance (%)", "HCP accuracy (%)", "ADHD-200 accuracy (%)"}
	var rows [][]string
	for i, l := range r.Levels {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", 100*l),
			r.HCP[i].String(),
			r.ADHD[i].String(),
		})
	}
	return "Table 2: identification accuracy under simulated multi-site acquisition\n" + report.Table(headers, rows)
}

// Table2 reproduces §3.3.5: Gaussian noise with mean equal to the signal
// mean and variance a fraction of the signal variance is added to every
// time series of the second session, connectomes are recomputed, and the
// identification attack is repeated. Each level is run `trials` times
// with fresh noise.
func Table2(hcp *synth.HCPCohort, adhd *synth.ADHDCohort, levels []float64, trials int, cfg core.AttackConfig, seed int64) (*Table2Result, error) {
	if len(levels) == 0 {
		levels = []float64{0.1, 0.2, 0.3}
	}
	if trials <= 0 {
		trials = 5
	}

	// Clean session-1 groups and raw session-2 scans.
	hcpKnownScans, err := hcp.ScansFor(synth.Rest1, synth.LR)
	if err != nil {
		return nil, err
	}
	hcpAnonScans, err := hcp.ScansFor(synth.Rest2, synth.RL)
	if err != nil {
		return nil, err
	}
	hcpKnown, err := BuildGroupMatrix(hcpKnownScans, connectome.Options{})
	if err != nil {
		return nil, err
	}

	allADHD := make([]int, adhd.Params.NumSubjects())
	for i := range allADHD {
		allADHD[i] = i
	}
	adhdS1, err := adhd.SessionScans(allADHD, 0)
	if err != nil {
		return nil, err
	}
	adhdS2, err := adhd.SessionScans(allADHD, 1)
	if err != nil {
		return nil, err
	}
	adhdKnown, err := BuildGroupMatrixADHD(adhdS1, connectome.Options{})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(seed))
	res := &Table2Result{Levels: levels}
	for _, level := range levels {
		var hcpAccs, adhdAccs []float64
		for trial := 0; trial < trials; trial++ {
			noisyHCP, err := synth.NoisyCopyHCP(hcpAnonScans, level, rng)
			if err != nil {
				return nil, err
			}
			anon, err := BuildGroupMatrix(noisyHCP, connectome.Options{})
			if err != nil {
				return nil, err
			}
			r, err := core.Deanonymize(hcpKnown, anon, cfg)
			if err != nil {
				return nil, err
			}
			hcpAccs = append(hcpAccs, 100*r.Accuracy)

			noisyADHD, err := synth.NoisyCopyADHD(adhdS2, level, rng)
			if err != nil {
				return nil, err
			}
			anonA, err := BuildGroupMatrixADHD(noisyADHD, connectome.Options{})
			if err != nil {
				return nil, err
			}
			rA, err := core.Deanonymize(adhdKnown, anonA, cfg)
			if err != nil {
				return nil, err
			}
			adhdAccs = append(adhdAccs, 100*rA.Accuracy)
		}
		res.HCP = append(res.HCP, stats.Summarize(hcpAccs))
		res.ADHD = append(res.ADHD, stats.Summarize(adhdAccs))
	}
	return res, nil
}
