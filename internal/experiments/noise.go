package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"brainprint/internal/connectome"
	"brainprint/internal/core"
	"brainprint/internal/parallel"
	"brainprint/internal/report"
	"brainprint/internal/stats"
	"brainprint/internal/synth"
)

// Table2Result holds the multi-site noise sweep of the paper's Table 2:
// identification accuracy at each noise-variance level for the HCP-like
// and ADHD-like cohorts.
type Table2Result struct {
	Levels []float64 // noise variance fractions (0.1, 0.2, 0.3 in the paper)
	HCP    []stats.Summary
	ADHD   []stats.Summary
}

// Render prints the table in the paper's format.
func (r *Table2Result) Render() string {
	headers := []string{"Noise Variance (%)", "HCP accuracy (%)", "ADHD-200 accuracy (%)"}
	var rows [][]string
	for i, l := range r.Levels {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", 100*l),
			r.HCP[i].String(),
			r.ADHD[i].String(),
		})
	}
	return "Table 2: identification accuracy under simulated multi-site acquisition\n" + report.Table(headers, rows)
}

// Table2 reproduces §3.3.5: Gaussian noise with mean equal to the signal
// mean and variance a fraction of the signal variance is added to every
// time series of the second session, connectomes are recomputed, and the
// identification attack is repeated. Each level is run `trials` times
// with fresh noise.
func Table2(ctx context.Context, hcp *synth.HCPCohort, adhd *synth.ADHDCohort, levels []float64, trials int, cfg core.AttackConfig, seed int64) (*Table2Result, error) {
	if len(levels) == 0 {
		levels = []float64{0.1, 0.2, 0.3}
	}
	if trials <= 0 {
		trials = 5
	}

	// Clean session-1 groups and raw session-2 scans.
	hcpKnownScans, err := hcp.ScansFor(synth.Rest1, synth.LR)
	if err != nil {
		return nil, err
	}
	hcpAnonScans, err := hcp.ScansFor(synth.Rest2, synth.RL)
	if err != nil {
		return nil, err
	}
	hcpKnown, err := BuildGroupMatrix(ctx, hcpKnownScans, connectome.Options{Parallelism: cfg.Parallelism})
	if err != nil {
		return nil, err
	}

	allADHD := make([]int, adhd.Params.NumSubjects())
	for i := range allADHD {
		allADHD[i] = i
	}
	adhdS1, err := adhd.SessionScans(allADHD, 0)
	if err != nil {
		return nil, err
	}
	adhdS2, err := adhd.SessionScans(allADHD, 1)
	if err != nil {
		return nil, err
	}
	adhdKnown, err := BuildGroupMatrixADHD(ctx, adhdS1, connectome.Options{Parallelism: cfg.Parallelism})
	if err != nil {
		return nil, err
	}

	// The level×trial grid fans out whole cells. Every cell draws its
	// noise from an RNG derived from (seed, level index, trial), so the
	// sweep is bit-identical at every parallelism setting — the stream a
	// cell sees no longer depends on how many cells ran before it.
	hcpAccs := make([]float64, len(levels)*trials)
	adhdAccs := make([]float64, len(levels)*trials)
	cellCfg := cfg
	if parallel.Workers(cfg.Parallelism) > 1 {
		cellCfg.Parallelism = 1
	}
	cellOpt := connectome.Options{Parallelism: cellCfg.Parallelism}
	err = parallel.ForCtx(ctx, cfg.Parallelism, len(levels)*trials, 1, func(lo, hi int) error {
		for cell := lo; cell < hi; cell++ {
			li, trial := cell/trials, cell%trials
			level := levels[li]
			rng := rand.New(rand.NewSource(parallel.DeriveSeed(seed, int64(li), int64(trial))))
			noisyHCP, err := synth.NoisyCopyHCP(hcpAnonScans, level, rng)
			if err != nil {
				return err
			}
			anon, err := BuildGroupMatrix(ctx, noisyHCP, cellOpt)
			if err != nil {
				return err
			}
			r, err := core.DeanonymizeCtx(ctx, hcpKnown, anon, cellCfg)
			if err != nil {
				return err
			}
			hcpAccs[cell] = 100 * r.Accuracy

			noisyADHD, err := synth.NoisyCopyADHD(adhdS2, level, rng)
			if err != nil {
				return err
			}
			anonA, err := BuildGroupMatrixADHD(ctx, noisyADHD, cellOpt)
			if err != nil {
				return err
			}
			rA, err := core.DeanonymizeCtx(ctx, adhdKnown, anonA, cellCfg)
			if err != nil {
				return err
			}
			adhdAccs[cell] = 100 * rA.Accuracy
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table2Result{Levels: levels}
	for li := range levels {
		res.HCP = append(res.HCP, stats.Summarize(hcpAccs[li*trials:(li+1)*trials]))
		res.ADHD = append(res.ADHD, stats.Summarize(adhdAccs[li*trials:(li+1)*trials]))
	}
	return res, nil
}
