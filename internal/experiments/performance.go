package experiments

import (
	"context"
	"fmt"

	"brainprint/internal/connectome"
	"brainprint/internal/core"
	"brainprint/internal/report"
	"brainprint/internal/synth"
)

// Table1Result holds per-task performance-prediction errors, the rows of
// the paper's Table 1.
type Table1Result struct {
	Tasks []synth.Task
	Rows  map[synth.Task]*core.PerformanceResult
}

// Render prints the table in the paper's format.
func (r *Table1Result) Render() string {
	headers := []string{"Task", "Train nRMSE (%)", "Test nRMSE (%)"}
	var rows [][]string
	for _, t := range r.Tasks {
		res := r.Rows[t]
		rows = append(rows, []string{t.String(), res.TrainNRMSE.String(), res.TestNRMSE.String()})
	}
	return "Table 1: task-wise performance prediction error (normalized RMSE)\n" + report.Table(headers, rows)
}

// Table1 reproduces §3.3.3: for each task with a performance metric,
// regress the scores on leverage-selected connectome features of the
// L-R scans over repeated random 80/20 splits.
func Table1(ctx context.Context, c *synth.HCPCohort, cfg core.PerformanceConfig) (*Table1Result, error) {
	out := &Table1Result{
		Tasks: synth.PerformanceTasks,
		Rows:  make(map[synth.Task]*core.PerformanceResult, len(synth.PerformanceTasks)),
	}
	for _, task := range out.Tasks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		scans, err := c.ScansFor(task, synth.LR)
		if err != nil {
			return nil, err
		}
		group, err := BuildGroupMatrix(ctx, scans, connectome.Options{})
		if err != nil {
			return nil, err
		}
		scores, ok := c.Performance[task]
		if !ok {
			return nil, fmt.Errorf("experiments: cohort has no performance scores for %v", task)
		}
		res, err := core.PerformancePredict(group, scores, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %v: %w", task, err)
		}
		out.Rows[task] = res
	}
	return out, nil
}
