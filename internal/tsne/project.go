package tsne

import (
	"fmt"
	"math"
	"math/rand"

	"brainprint/internal/linalg"
)

// RandomProjection maps the rows of x (n points × d features) into a
// dims-dimensional space with the sparse ternary projection of
// Achlioptas (2003): each projection entry is +1, 0, −1 with
// probabilities 1/6, 2/3, 1/6, scaled by √(3/dims). By the
// Johnson-Lindenstrauss lemma the projection preserves pairwise
// Euclidean distances within a small relative error with high
// probability — exactly the property t-SNE's input affinities depend
// on — while reducing the cost of the paper-scale Figure 6 embedding
// (800 scans × 64620 connectome features) from hours to seconds.
//
// The projection is deterministic in seed.
func RandomProjection(x *linalg.Matrix, dims int, seed int64) (*linalg.Matrix, error) {
	n, d := x.Dims()
	if dims <= 0 {
		return nil, fmt.Errorf("tsne: nonpositive projection dims %d", dims)
	}
	if dims >= d {
		// Nothing to gain; return a copy so callers can always mutate.
		return x.Clone(), nil
	}
	rng := rand.New(rand.NewSource(seed))
	// Column-sparse representation of the projection: for each input
	// feature, the list of (output dim, sign) pairs. With density 1/3 the
	// expected list length is dims/3.
	type entry struct {
		col  int
		sign float64
	}
	proj := make([][]entry, d)
	for j := 0; j < d; j++ {
		for k := 0; k < dims; k++ {
			switch rng.Intn(6) {
			case 0:
				proj[j] = append(proj[j], entry{col: k, sign: 1})
			case 1:
				proj[j] = append(proj[j], entry{col: k, sign: -1})
			}
		}
	}
	scale := math.Sqrt(3 / float64(dims))
	out := linalg.NewMatrix(n, dims)
	for i := 0; i < n; i++ {
		row := x.RowView(i)
		orow := out.RowView(i)
		for j, v := range row {
			if v == 0 {
				continue
			}
			for _, e := range proj[j] {
				orow[e.col] += e.sign * v
			}
		}
		for k := range orow {
			orow[k] *= scale
		}
	}
	return out, nil
}
