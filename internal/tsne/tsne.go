// Package tsne implements t-distributed Stochastic Neighbor Embedding
// (van der Maaten & Hinton 2008) as specified in the paper's §3.1.3 and
// Algorithm 2: Gaussian input affinities calibrated per point to a
// target perplexity, symmetrized joint probabilities, a Cauchy
// (Student-t, one degree of freedom) kernel in the embedding space, and
// momentum gradient descent on the KL divergence, with the standard
// early-exaggeration phase.
package tsne

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"brainprint/internal/linalg"
)

// Config controls the embedding. Zero fields take the documented
// defaults.
type Config struct {
	// Perplexity is the effective neighbour count (Eq. 7); default 30,
	// clamped to (n−1)/3 when the dataset is small.
	Perplexity float64
	// OutputDims is the embedding dimensionality; default 2.
	OutputDims int
	// Iterations is the number of gradient steps T; default 500.
	Iterations int
	// LearningRate is η; default 100.
	LearningRate float64
	// EarlyExaggeration multiplies P during the first ExaggerationIters
	// steps; default 4 for 50 iterations.
	EarlyExaggeration float64
	ExaggerationIters int
	// Seed drives the N(0, 1e-4) initialization of Algorithm 2.
	Seed int64
}

func (c Config) withDefaults(n int) Config {
	if c.Perplexity <= 0 {
		c.Perplexity = 30
	}
	if maxPerp := float64(n-1) / 3; c.Perplexity > maxPerp && maxPerp >= 2 {
		c.Perplexity = maxPerp
	}
	if c.OutputDims <= 0 {
		c.OutputDims = 2
	}
	if c.Iterations <= 0 {
		c.Iterations = 500
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 100
	}
	if c.EarlyExaggeration <= 0 {
		c.EarlyExaggeration = 4
	}
	if c.ExaggerationIters <= 0 {
		c.ExaggerationIters = 50
	}
	return c
}

// Result holds the embedding and diagnostics.
type Result struct {
	// Y is the n×OutputDims embedding.
	Y *linalg.Matrix
	// KL is the final Kullback-Leibler divergence KL(P‖Q) (Eq. 10).
	KL float64
	// Iterations actually run.
	Iterations int
}

// Embed maps the rows of x (n points × d features) into the low-
// dimensional space.
func Embed(x *linalg.Matrix, cfg Config) (*Result, error) {
	return EmbedCtx(context.Background(), x, cfg)
}

// EmbedCtx is Embed under a context: the gradient loop checks ctx every
// iteration and returns ctx.Err() on cancellation, so even long
// paper-scale embeddings abort promptly.
func EmbedCtx(ctx context.Context, x *linalg.Matrix, cfg Config) (*Result, error) {
	n, _ := x.Dims()
	if n < 4 {
		return nil, fmt.Errorf("tsne: need at least 4 points, got %d", n)
	}
	d2, err := SquaredDistances(x)
	if err != nil {
		return nil, err
	}
	return EmbedDistancesCtx(ctx, d2, n, cfg)
}

// SquaredDistances computes the n×n matrix of squared Euclidean
// distances between the rows of x using the Gram identity
// ‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b, which costs one n×n Gram product instead
// of n² row scans of the (possibly very wide) data.
func SquaredDistances(x *linalg.Matrix) (*linalg.Matrix, error) {
	n, _ := x.Dims()
	if n == 0 {
		return nil, fmt.Errorf("tsne: empty input")
	}
	gram := x.Mul(x.T())
	out := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		gii := gram.At(i, i)
		for j := 0; j < n; j++ {
			d := gii + gram.At(j, j) - 2*gram.At(i, j)
			if d < 0 {
				d = 0 // numerical noise
			}
			out.Set(i, j, d)
		}
	}
	return out, nil
}

// EmbedDistances runs t-SNE from a precomputed n×n squared-distance
// matrix.
func EmbedDistances(d2 *linalg.Matrix, n int, cfg Config) (*Result, error) {
	return EmbedDistancesCtx(context.Background(), d2, n, cfg)
}

// EmbedDistancesCtx is EmbedDistances under a context (see EmbedCtx).
func EmbedDistancesCtx(ctx context.Context, d2 *linalg.Matrix, n int, cfg Config) (*Result, error) {
	if r, c := d2.Dims(); r != n || c != n {
		return nil, fmt.Errorf("tsne: distance matrix is %dx%d, want %dx%d", r, c, n, n)
	}
	if n < 4 {
		return nil, fmt.Errorf("tsne: need at least 4 points, got %d", n)
	}
	cfg = cfg.withDefaults(n)

	p := jointProbabilities(d2, cfg.Perplexity)

	rng := rand.New(rand.NewSource(cfg.Seed))
	dims := cfg.OutputDims
	y := linalg.NewMatrix(n, dims)
	yd := y.RawData()
	for i := range yd {
		yd[i] = 1e-2 * rng.NormFloat64() // N(0, 1e-4·I) as in Algorithm 2
	}

	grad := make([]float64, n*dims)
	update := make([]float64, n*dims)
	q := linalg.NewMatrix(n, n)
	num := linalg.NewMatrix(n, n)

	exaggerate := cfg.EarlyExaggeration
	for i := range p.RawData() {
		p.RawData()[i] *= exaggerate
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if iter == cfg.ExaggerationIters {
			inv := 1 / exaggerate
			for i := range p.RawData() {
				p.RawData()[i] *= inv
			}
		}
		computeQ(y, q, num)
		// Gradient (Eq. 12): 4·Σ_j (p_ij − q_ij)(y_i − y_j)(1+‖y_i−y_j‖²)⁻¹.
		for i := range grad {
			grad[i] = 0
		}
		for i := 0; i < n; i++ {
			yi := y.RowView(i)
			gi := grad[i*dims : (i+1)*dims]
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				mult := 4 * (p.At(i, j) - q.At(i, j)) * num.At(i, j)
				yj := y.RowView(j)
				for k := 0; k < dims; k++ {
					gi[k] += mult * (yi[k] - yj[k])
				}
			}
		}
		// Momentum schedule of van der Maaten: 0.5 early, 0.8 late.
		momentum := 0.5
		if iter >= 250 {
			momentum = 0.8
		}
		for i := range yd {
			update[i] = momentum*update[i] - cfg.LearningRate*grad[i]
			yd[i] += update[i]
		}
		centerRows(y)
	}
	// Undo any residual exaggeration before computing the final KL
	// (possible when Iterations < ExaggerationIters).
	if cfg.Iterations < cfg.ExaggerationIters {
		inv := 1 / exaggerate
		for i := range p.RawData() {
			p.RawData()[i] *= inv
		}
	}
	computeQ(y, q, num)
	return &Result{Y: y, KL: klDivergence(p, q), Iterations: cfg.Iterations}, nil
}

// jointProbabilities converts squared distances into the symmetrized
// joint distribution P of Eq. 10, calibrating the per-point Gaussian
// bandwidth to the target perplexity with binary search on the
// precision β = 1/(2σ²).
func jointProbabilities(d2 *linalg.Matrix, perplexity float64) *linalg.Matrix {
	n := d2.Rows()
	target := math.Log(perplexity)
	p := linalg.NewMatrix(n, n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		beta := 1.0
		betaMin := math.Inf(-1)
		betaMax := math.Inf(1)
		for iter := 0; iter < 64; iter++ {
			// Compute conditional probabilities and entropy at this beta.
			var sum float64
			for j := 0; j < n; j++ {
				if j == i {
					row[j] = 0
					continue
				}
				row[j] = math.Exp(-beta * d2.At(i, j))
				sum += row[j]
			}
			if sum == 0 {
				// All neighbours infinitely far at this precision: soften.
				beta /= 2
				continue
			}
			// Shannon entropy H = log Σ + β·E[d]/Σ.
			var dotP float64
			for j := 0; j < n; j++ {
				if j != i {
					dotP += row[j] * d2.At(i, j)
				}
			}
			h := math.Log(sum) + beta*dotP/sum
			diff := h - target
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 { // entropy too high → sharpen
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			if j == i {
				row[j] = 0
				continue
			}
			row[j] = math.Exp(-beta * d2.At(i, j))
			sum += row[j]
		}
		if sum > 0 {
			inv := 1 / sum
			for j := range row {
				row[j] *= inv
			}
		}
		p.SetRow(i, row)
	}
	// Symmetrize: p_ij = (p_j|i + p_i|j) / 2n, which guarantees every
	// point contributes to the cost (§3.1.3's outlier fix).
	out := linalg.NewMatrix(n, n)
	inv2n := 1 / (2 * float64(n))
	const floor = 1e-12
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := (p.At(i, j) + p.At(j, i)) * inv2n
			if v < floor {
				v = floor
			}
			out.Set(i, j, v)
		}
	}
	return out
}

// computeQ fills q with the Cauchy-kernel joint distribution of Eq. 11
// and num with the kernel values (1+‖y_i−y_j‖²)⁻¹ reused by the
// gradient.
func computeQ(y, q, num *linalg.Matrix) {
	n := y.Rows()
	dims := y.Cols()
	var total float64
	for i := 0; i < n; i++ {
		yi := y.RowView(i)
		for j := i + 1; j < n; j++ {
			yj := y.RowView(j)
			var d float64
			for k := 0; k < dims; k++ {
				diff := yi[k] - yj[k]
				d += diff * diff
			}
			v := 1 / (1 + d)
			num.Set(i, j, v)
			num.Set(j, i, v)
			total += 2 * v
		}
	}
	const floor = 1e-12
	for i := 0; i < n; i++ {
		q.Set(i, i, 0)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := num.At(i, j) / total
			if v < floor {
				v = floor
			}
			q.Set(i, j, v)
		}
	}
}

// centerRows translates the embedding to zero mean, removing the
// translational degree of freedom.
func centerRows(y *linalg.Matrix) {
	n, dims := y.Dims()
	for k := 0; k < dims; k++ {
		var mean float64
		for i := 0; i < n; i++ {
			mean += y.At(i, k)
		}
		mean /= float64(n)
		for i := 0; i < n; i++ {
			y.Set(i, k, y.At(i, k)-mean)
		}
	}
}

// klDivergence computes KL(P‖Q) = Σ p_ij log(p_ij/q_ij) over off-
// diagonal entries.
func klDivergence(p, q *linalg.Matrix) float64 {
	n := p.Rows()
	var kl float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			pij := p.At(i, j)
			if pij <= 0 {
				continue
			}
			kl += pij * math.Log(pij/q.At(i, j))
		}
	}
	return kl
}
