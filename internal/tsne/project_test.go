package tsne

import (
	"math"
	"math/rand"
	"testing"

	"brainprint/internal/linalg"
)

func TestRandomProjectionPreservesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, d := 30, 4000
	x := linalg.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
	}
	y, err := RandomProjection(x, 256, 7)
	if err != nil {
		t.Fatalf("RandomProjection: %v", err)
	}
	if rows, cols := y.Dims(); rows != n || cols != 256 {
		t.Fatalf("projected dims %dx%d", rows, cols)
	}
	origD, _ := SquaredDistances(x)
	projD, _ := SquaredDistances(y)
	// JL guarantee: per-pair ratio variance ≈ 2/k, so with k = 256 the
	// std is ≈ 9%; the max over all 435 pairs lands around 3–4 σ.
	var worst, sum float64
	pairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ratio := projD.At(i, j) / origD.At(i, j)
			dev := math.Abs(ratio - 1)
			if dev > worst {
				worst = dev
			}
			sum += dev
			pairs++
		}
	}
	if worst > 0.45 {
		t.Errorf("worst distance distortion %.3f > 0.45", worst)
	}
	if mean := sum / float64(pairs); mean > 0.12 {
		t.Errorf("mean distance distortion %.3f > 0.12", mean)
	}
}

func TestRandomProjectionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := linalg.NewMatrix(5, 100)
	for i := range x.RawData() {
		x.RawData()[i] = rng.NormFloat64()
	}
	a, _ := RandomProjection(x, 16, 3)
	b, _ := RandomProjection(x, 16, 3)
	if !a.EqualApprox(b, 0) {
		t.Error("projection not deterministic in seed")
	}
	c, _ := RandomProjection(x, 16, 4)
	if a.EqualApprox(c, 1e-12) {
		t.Error("different seeds should give different projections")
	}
}

func TestRandomProjectionPassThrough(t *testing.T) {
	x := linalg.NewMatrix(3, 8)
	x.Set(0, 0, 5)
	y, err := RandomProjection(x, 8, 1)
	if err != nil {
		t.Fatalf("RandomProjection: %v", err)
	}
	if !y.EqualApprox(x, 0) {
		t.Error("dims >= features should pass through unchanged")
	}
	// But must be a copy, not an alias.
	y.Set(0, 0, 9)
	if x.At(0, 0) != 5 {
		t.Error("pass-through aliased the input")
	}
	if _, err := RandomProjection(x, 0, 1); err == nil {
		t.Error("expected error for dims=0")
	}
}
