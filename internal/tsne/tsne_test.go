package tsne

import (
	"math"
	"math/rand"
	"testing"

	"brainprint/internal/linalg"
	"brainprint/internal/stats"
)

// gaussianClusters samples n points per cluster around well-separated
// centres in d dimensions.
func gaussianClusters(rng *rand.Rand, centers [][]float64, perCluster int, spread float64) (*linalg.Matrix, []int) {
	d := len(centers[0])
	n := len(centers) * perCluster
	x := linalg.NewMatrix(n, d)
	labels := make([]int, n)
	row := 0
	for c, center := range centers {
		for i := 0; i < perCluster; i++ {
			for j := 0; j < d; j++ {
				x.Set(row, j, center[j]+spread*rng.NormFloat64())
			}
			labels[row] = c
			row++
		}
	}
	return x, labels
}

func TestSquaredDistances(t *testing.T) {
	x, _ := linalg.NewMatrixFromRows([][]float64{
		{0, 0},
		{3, 4},
		{0, 1},
	})
	d2, err := SquaredDistances(x)
	if err != nil {
		t.Fatalf("SquaredDistances: %v", err)
	}
	if math.Abs(d2.At(0, 1)-25) > 1e-9 {
		t.Errorf("d2(0,1) = %v want 25", d2.At(0, 1))
	}
	if math.Abs(d2.At(0, 2)-1) > 1e-9 {
		t.Errorf("d2(0,2) = %v want 1", d2.At(0, 2))
	}
	if d2.At(1, 1) != 0 {
		t.Errorf("diagonal should be 0")
	}
	if d2.At(0, 1) != d2.At(1, 0) {
		t.Error("distance matrix should be symmetric")
	}
	if _, err := SquaredDistances(linalg.NewMatrix(0, 0)); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestEmbedRejectsTinyInput(t *testing.T) {
	if _, err := Embed(linalg.NewMatrix(3, 5), Config{}); err == nil {
		t.Error("expected error for <4 points")
	}
	if _, err := EmbedDistances(linalg.NewMatrix(4, 5), 4, Config{}); err == nil {
		t.Error("expected error for non-square distances")
	}
}

func TestEmbedShapeAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, _ := gaussianClusters(rng, [][]float64{{0, 0, 0}, {10, 0, 0}}, 8, 0.5)
	cfg := Config{Perplexity: 5, Iterations: 120, Seed: 7}
	r1, err := Embed(x, cfg)
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	if rows, cols := r1.Y.Dims(); rows != 16 || cols != 2 {
		t.Fatalf("embedding dims %dx%d want 16x2", rows, cols)
	}
	r2, err := Embed(x, cfg)
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	if !r1.Y.EqualApprox(r2.Y, 0) {
		t.Error("same seed should reproduce the embedding exactly")
	}
	r3, _ := Embed(x, Config{Perplexity: 5, Iterations: 120, Seed: 8})
	if r1.Y.EqualApprox(r3.Y, 1e-12) {
		t.Error("different seed should change the embedding")
	}
}

// TestEmbedSeparatesClusters is the core behavioural test: two
// well-separated high-dimensional clusters must stay separated in 2-D —
// every point's nearest neighbours in the embedding should be from its
// own cluster.
func TestEmbedSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	centers := [][]float64{
		{0, 0, 0, 0, 0},
		{20, 0, 0, 0, 0},
		{0, 20, 0, 0, 0},
	}
	x, labels := gaussianClusters(rng, centers, 10, 0.8)
	res, err := Embed(x, Config{Perplexity: 8, Iterations: 300, Seed: 3})
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	// Measure cluster preservation: mean intra-cluster distance must be
	// much smaller than mean inter-cluster distance.
	var intra, inter []float64
	n := len(labels)
	for i := 0; i < n; i++ {
		yi := res.Y.Row(i)
		for j := i + 1; j < n; j++ {
			yj := res.Y.Row(j)
			d := math.Hypot(yi[0]-yj[0], yi[1]-yj[1])
			if labels[i] == labels[j] {
				intra = append(intra, d)
			} else {
				inter = append(inter, d)
			}
		}
	}
	mi, me := stats.Mean(intra), stats.Mean(inter)
	if me < 2*mi {
		t.Errorf("clusters not separated: intra=%.3f inter=%.3f", mi, me)
	}
}

func TestEmbedKLDecreasesWithIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, _ := gaussianClusters(rng, [][]float64{{0, 0, 0}, {8, 0, 0}}, 10, 1)
	short, err := Embed(x, Config{Perplexity: 6, Iterations: 60, ExaggerationIters: 10, Seed: 5})
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	long, err := Embed(x, Config{Perplexity: 6, Iterations: 400, ExaggerationIters: 10, Seed: 5})
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	if long.KL > short.KL+1e-9 {
		t.Errorf("KL should not increase with more iterations: %v -> %v", short.KL, long.KL)
	}
	if long.KL < 0 {
		t.Errorf("KL divergence must be nonnegative, got %v", long.KL)
	}
}

func TestEmbedCentered(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, _ := gaussianClusters(rng, [][]float64{{0, 0}, {5, 5}}, 6, 0.5)
	res, err := Embed(x, Config{Perplexity: 4, Iterations: 50, Seed: 1})
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	n, dims := res.Y.Dims()
	for k := 0; k < dims; k++ {
		var mean float64
		for i := 0; i < n; i++ {
			mean += res.Y.At(i, k)
		}
		mean /= float64(n)
		if math.Abs(mean) > 1e-9 {
			t.Errorf("dimension %d not centred: mean=%v", k, mean)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(1000)
	if c.Perplexity != 30 || c.OutputDims != 2 || c.Iterations != 500 {
		t.Errorf("defaults wrong: %+v", c)
	}
	// Small datasets clamp perplexity.
	small := Config{Perplexity: 50}.withDefaults(10)
	if small.Perplexity != 3 {
		t.Errorf("perplexity should clamp to (n-1)/3 = 3, got %v", small.Perplexity)
	}
}

func TestEmbedHigherOutputDims(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, _ := gaussianClusters(rng, [][]float64{{0, 0, 0}, {6, 0, 0}}, 5, 0.4)
	res, err := Embed(x, Config{Perplexity: 3, Iterations: 40, OutputDims: 3, Seed: 2})
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	if _, cols := res.Y.Dims(); cols != 3 {
		t.Errorf("output dims = %d want 3", cols)
	}
}

func TestJointProbabilitiesRowStochasticSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, _ := gaussianClusters(rng, [][]float64{{0, 0}, {4, 4}}, 6, 0.8)
	d2, _ := SquaredDistances(x)
	p := jointProbabilities(d2, 4)
	n := p.Rows()
	var total float64
	for i := 0; i < n; i++ {
		if p.At(i, i) != 0 {
			t.Errorf("diagonal p(%d,%d) should be 0", i, i)
		}
		for j := 0; j < n; j++ {
			if math.Abs(p.At(i, j)-p.At(j, i)) > 1e-15 {
				t.Fatalf("P not symmetric at (%d,%d)", i, j)
			}
			total += p.At(i, j)
		}
	}
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("P sums to %v want 1", total)
	}
	// Outlier robustness (§3.1.3): every row keeps some mass.
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			rowSum += p.At(i, j)
		}
		if rowSum < 1/(2*float64(n))-1e-9 {
			t.Errorf("row %d mass %v below 1/2n", i, rowSum)
		}
	}
}
