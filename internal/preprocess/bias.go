package preprocess

import (
	"fmt"
	"time"

	"brainprint/internal/fmri"
	"brainprint/internal/signal"
)

// BiasCorrect removes smooth multiplicative intensity non-uniformity
// ("gradient non-linearity" / B1 bias): the field is estimated by
// heavily Gaussian-smoothing the temporal mean image inside the brain
// mask, normalized to unit mean, and divided out of every frame.
type BiasCorrect struct {
	// SigmaVoxels is the Gaussian smoothing standard deviation used for
	// field estimation, in voxels. Larger values assume a smoother field.
	SigmaVoxels float64
}

// Name implements Step.
func (b *BiasCorrect) Name() string { return "bias-correct" }

// Apply implements Step.
func (b *BiasCorrect) Apply(s *fmri.Series, ctx *Context) (*fmri.Series, error) {
	start := time.Now()
	sigma := b.SigmaVoxels
	if sigma <= 0 {
		sigma = 4
	}
	mean := s.MeanVolume()
	mask := ctx.BrainMask

	// Fill non-brain voxels with the mean brain intensity before
	// smoothing so the field estimate is not dragged down at the brain
	// boundary.
	var brainMean float64
	var n int
	for i, v := range mean.Data {
		if mask == nil || mask[i] {
			brainMean += v
			n++
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("bias-correct: empty mask")
	}
	brainMean /= float64(n)
	work := mean.Clone()
	for i := range work.Data {
		if mask != nil && !mask[i] {
			work.Data[i] = brainMean
		}
	}

	field := smooth3D(work, sigma)

	// Normalize the field to unit mean over the mask and guard against
	// division by ~0.
	var fieldMean float64
	for i, v := range field.Data {
		if mask == nil || mask[i] {
			fieldMean += v
		}
	}
	fieldMean /= float64(n)
	if fieldMean == 0 {
		return nil, fmt.Errorf("bias-correct: degenerate field")
	}
	floor := 0.05 * fieldMean
	for i := range field.Data {
		field.Data[i] /= fieldMean
		if field.Data[i] < floor {
			field.Data[i] = floor
		}
	}
	for _, f := range s.Frames {
		for i := range f.Data {
			if mask == nil || mask[i] {
				f.Data[i] /= field.Data[i]
			}
		}
	}
	ctx.record(b.Name(), fmt.Sprintf("sigma=%.1f voxels", sigma), time.Since(start))
	return nil, nil
}

// smooth3D applies a separable 3-D Gaussian filter with replicate
// boundary handling.
func smooth3D(v *fmri.Volume, sigma float64) *fmri.Volume {
	g := v.Grid
	kernel := signal.GaussianKernel(sigma)
	out := v.Clone()
	buf := make([]float64, maxInt(g.NX, maxInt(g.NY, g.NZ)))

	// X axis.
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			line := buf[:g.NX]
			for x := 0; x < g.NX; x++ {
				line[x] = out.Data[g.Index(x, y, z)]
			}
			sm, _ := signal.Convolve(line, kernel)
			for x := 0; x < g.NX; x++ {
				out.Data[g.Index(x, y, z)] = sm[x]
			}
		}
	}
	// Y axis.
	for z := 0; z < g.NZ; z++ {
		for x := 0; x < g.NX; x++ {
			line := buf[:g.NY]
			for y := 0; y < g.NY; y++ {
				line[y] = out.Data[g.Index(x, y, z)]
			}
			sm, _ := signal.Convolve(line, kernel)
			for y := 0; y < g.NY; y++ {
				out.Data[g.Index(x, y, z)] = sm[y]
			}
		}
	}
	// Z axis.
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			line := buf[:g.NZ]
			for z := 0; z < g.NZ; z++ {
				line[z] = out.Data[g.Index(x, y, z)]
			}
			sm, _ := signal.Convolve(line, kernel)
			for z := 0; z < g.NZ; z++ {
				out.Data[g.Index(x, y, z)] = sm[z]
			}
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
