package preprocess

import (
	"fmt"
	"math"
	"time"

	"brainprint/internal/fmri"
)

// SkullStrip classifies voxels as brain or non-brain on the temporal
// mean image and masks the non-brain voxels to zero, the procedure
// described in §2: intensity-based tissue classification followed by a
// largest-connected-component cleanup. The resulting brain mask is
// stored in the context for downstream steps.
type SkullStrip struct{}

// Name implements Step.
func (k *SkullStrip) Name() string { return "skull-strip" }

// Apply implements Step.
func (k *SkullStrip) Apply(s *fmri.Series, ctx *Context) (*fmri.Series, error) {
	start := time.Now()
	mean := s.MeanVolume()

	// Stage 1: classify intensities into three tissue classes — air
	// (dark), brain (mid) and skull (bright) — with 1-D 3-means. A single
	// Otsu split is unreliable here because the bright skull dominates
	// the between-class variance and absorbs the brain into the "dark"
	// class.
	classes := kMeans1D(mean.Data, 3)
	brainCandidate := make([]bool, len(mean.Data))
	anyBrain := false
	for i, c := range classes {
		if c == 1 { // middle intensity class
			brainCandidate[i] = true
			anyBrain = true
		}
	}
	if !anyBrain {
		return nil, fmt.Errorf("skull-strip: no brain-intensity voxels found")
	}

	// Stage 2: keep only the largest 6-connected component — stray
	// mid-intensity voxels in the skull shell or background are
	// discarded.
	mask := largestComponent(s.Grid, brainCandidate)
	count := 0
	for _, b := range mask {
		if b {
			count++
		}
	}
	if count == 0 {
		return nil, fmt.Errorf("skull-strip: empty brain mask")
	}

	// Zero all non-brain voxels in every frame.
	for _, f := range s.Frames {
		for i := range f.Data {
			if !mask[i] {
				f.Data[i] = 0
			}
		}
	}
	ctx.BrainMask = mask
	ctx.record(k.Name(), fmt.Sprintf("%d brain voxels (%.1f%% of grid)", count,
		100*float64(count)/float64(len(mask))), time.Since(start))
	return nil, nil
}

// kMeans1D clusters scalar values into k classes with Lloyd's algorithm,
// returning the class of each value with classes ordered by ascending
// centroid (class 0 = darkest). Centroids are initialized evenly across
// the value range.
func kMeans1D(vals []float64, k int) []int {
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	centroids := make([]float64, k)
	for i := range centroids {
		centroids[i] = lo + (hi-lo)*(float64(i)+0.5)/float64(k)
	}
	classes := make([]int, len(vals))
	for iter := 0; iter < 100; iter++ {
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, v := range vals {
			best, bestD := 0, math.Abs(v-centroids[0])
			for c := 1; c < k; c++ {
				if d := math.Abs(v - centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			classes[i] = best
			sums[best] += v
			counts[best]++
		}
		changed := false
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			nc := sums[c] / float64(counts[c])
			if nc != centroids[c] {
				centroids[c] = nc
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Centroids stay ordered because Lloyd's on 1-D data preserves the
	// initial ordering, so class indices already rank by intensity.
	return classes
}

// largestComponent returns the largest 6-connected component of the
// candidate mask, found by breadth-first search.
func largestComponent(g fmri.Grid, candidate []bool) []bool {
	visited := make([]bool, len(candidate))
	best := []int(nil)
	queue := make([]int, 0, 1024)
	for seed, isC := range candidate {
		if !isC || visited[seed] {
			continue
		}
		// BFS from seed.
		comp := []int{seed}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			x, y, z := g.Coords(cur)
			for _, d := range [][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
				nx, ny, nz := x+d[0], y+d[1], z+d[2]
				if !g.InBounds(nx, ny, nz) {
					continue
				}
				ni := g.Index(nx, ny, nz)
				if candidate[ni] && !visited[ni] {
					visited[ni] = true
					comp = append(comp, ni)
					queue = append(queue, ni)
				}
			}
		}
		if len(comp) > len(best) {
			best = comp
		}
	}
	mask := make([]bool, len(candidate))
	for _, i := range best {
		mask[i] = true
	}
	return mask
}
