package preprocess

import (
	"fmt"
	"math"
	"time"

	"brainprint/internal/fmri"
)

// MotionCorrect estimates and removes rigid head translation frame by
// frame. Each frame is aligned to the first frame by maximizing the
// voxelwise correlation over integer shifts within SearchRadius, then
// refined to sub-voxel precision with a parabolic fit along each axis.
type MotionCorrect struct {
	// SearchRadius bounds the integer shift search per axis, in voxels.
	SearchRadius int
}

// Name implements Step.
func (m *MotionCorrect) Name() string { return "motion-correct" }

// Apply implements Step.
func (m *MotionCorrect) Apply(s *fmri.Series, ctx *Context) (*fmri.Series, error) {
	start := time.Now()
	r := m.SearchRadius
	if r <= 0 {
		r = 2
	}
	ref := s.Frames[0]
	trace := &fmri.MotionTrace{
		DX: make([]float64, s.NumFrames()),
		DY: make([]float64, s.NumFrames()),
		DZ: make([]float64, s.NumFrames()),
	}
	var maxShift float64
	for t := 1; t < s.NumFrames(); t++ {
		dx, dy, dz := estimateShift(ref, s.Frames[t], r)
		trace.DX[t], trace.DY[t], trace.DZ[t] = dx, dy, dz
		if sh := math.Max(math.Abs(dx), math.Max(math.Abs(dy), math.Abs(dz))); sh > maxShift {
			maxShift = sh
		}
		if dx != 0 || dy != 0 || dz != 0 {
			// Undo the estimated shift: the frame content moved by +d, so
			// sample at −d.
			s.Frames[t] = s.Frames[t].Shifted(-dx, -dy, -dz)
		}
	}
	ctx.Motion = trace
	ctx.record(m.Name(), fmt.Sprintf("max estimated shift %.2f voxels", maxShift), time.Since(start))
	return nil, nil
}

// estimateShift finds the translation of frame relative to ref that
// maximizes correlation: an exhaustive integer search followed by
// per-axis parabolic refinement.
func estimateShift(ref, frame *fmri.Volume, radius int) (dx, dy, dz float64) {
	bestScore := math.Inf(-1)
	var bx, by, bz int
	for z := -radius; z <= radius; z++ {
		for y := -radius; y <= radius; y++ {
			for x := -radius; x <= radius; x++ {
				score := shiftScore(ref, frame, float64(x), float64(y), float64(z))
				if score > bestScore {
					bestScore, bx, by, bz = score, x, y, z
				}
			}
		}
	}
	// Parabolic sub-voxel refinement along each axis independently.
	refine := func(axis int) float64 {
		center := bestScore
		var lo, hi float64
		switch axis {
		case 0:
			lo = shiftScore(ref, frame, float64(bx)-1, float64(by), float64(bz))
			hi = shiftScore(ref, frame, float64(bx)+1, float64(by), float64(bz))
		case 1:
			lo = shiftScore(ref, frame, float64(bx), float64(by)-1, float64(bz))
			hi = shiftScore(ref, frame, float64(bx), float64(by)+1, float64(bz))
		default:
			lo = shiftScore(ref, frame, float64(bx), float64(by), float64(bz)-1)
			hi = shiftScore(ref, frame, float64(bx), float64(by), float64(bz)+1)
		}
		denom := lo - 2*center + hi
		if denom >= 0 { // not a local maximum; skip refinement
			return 0
		}
		off := 0.5 * (lo - hi) / denom
		if off > 0.5 {
			off = 0.5
		} else if off < -0.5 {
			off = -0.5
		}
		return off
	}
	return float64(bx) + refine(0), float64(by) + refine(1), float64(bz) + refine(2)
}

// shiftScore computes the unnormalized correlation between ref and frame
// sampled at the candidate shift. The frame is hypothesized to be the
// reference translated by (dx,dy,dz): frame(x) ≈ ref(x−d), so we compare
// frame sampled at x against ref sampled at x−d over an interior margin
// that avoids boundary-replication bias.
func shiftScore(ref, frame *fmri.Volume, dx, dy, dz float64) float64 {
	g := ref.Grid
	margin := 2
	var score float64
	for z := margin; z < g.NZ-margin; z++ {
		for y := margin; y < g.NY-margin; y++ {
			for x := margin; x < g.NX-margin; x++ {
				rv := ref.Interpolate(float64(x)-dx, float64(y)-dy, float64(z)-dz)
				score += rv * frame.At(x, y, z)
			}
		}
	}
	return score
}
