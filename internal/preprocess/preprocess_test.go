package preprocess

import (
	"math"
	"math/rand"
	"testing"

	"brainprint/internal/atlas"
	"brainprint/internal/fmri"
	"brainprint/internal/signal"
	"brainprint/internal/stats"
)

// makePhantom builds a small test phantom.
func makePhantom(t *testing.T, n int, seed int64) (*fmri.Phantom, *rand.Rand) {
	t.Helper()
	g, err := fmri.NewGrid(n, n, n, 2)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	ph, err := fmri.NewPhantom(g, fmri.DefaultPhantomParams(), rng)
	if err != nil {
		t.Fatalf("NewPhantom: %v", err)
	}
	return ph, rng
}

// smoothActivity builds slow sinusoidal region activity inside the
// haemodynamic band.
func smoothActivity(regions, frames int, tr float64, rng *rand.Rand) [][]float64 {
	out := make([][]float64, regions)
	for r := range out {
		f1 := 0.01 + 0.08*rng.Float64() // Hz, inside 0.008–0.1
		phase := rng.Float64() * 2 * math.Pi
		s := make([]float64, frames)
		for t := 0; t < frames; t++ {
			s[t] = math.Sin(2*math.Pi*f1*float64(t)*tr + phase)
		}
		out[r] = s
	}
	return out
}

func TestSkullStripRecoversBrainMask(t *testing.T) {
	ph, rng := makePhantom(t, 16, 1)
	labels := make([]int, ph.NumBrainVoxels())
	act := &fmri.RegionActivity{Labels: labels, Series: [][]float64{make([]float64, 8)}}
	p := fmri.AcquisitionParams{TR: 1, Frames: 8, ThermalNoise: 0.005}
	s, _, err := fmri.Acquire(ph, act, p, rng)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ctx := &Context{}
	if _, err := (&SkullStrip{}).Apply(s, ctx); err != nil {
		t.Fatalf("SkullStrip: %v", err)
	}
	if ctx.BrainMask == nil {
		t.Fatal("no mask produced")
	}
	// Compare against ground truth: count agreement.
	var tp, fp, fn int
	for i, got := range ctx.BrainMask {
		truth := ph.BrainMask[i]
		switch {
		case got && truth:
			tp++
		case got && !truth:
			fp++
		case !got && truth:
			fn++
		}
	}
	dice := 2 * float64(tp) / float64(2*tp+fp+fn)
	if dice < 0.90 {
		t.Errorf("skull strip Dice = %.3f want >= 0.90 (tp=%d fp=%d fn=%d)", dice, tp, fp, fn)
	}
	// Skull voxels must be zeroed.
	for i, isSkull := range ph.SkullMask {
		if isSkull && !ctx.BrainMask[i] && s.Frames[0].Data[i] != 0 {
			t.Fatal("skull voxel not masked")
		}
	}
}

func TestMotionCorrectRecoversShift(t *testing.T) {
	ph, rng := makePhantom(t, 16, 2)
	labels := make([]int, ph.NumBrainVoxels())
	act := &fmri.RegionActivity{Labels: labels, Series: [][]float64{make([]float64, 6)}}
	p := fmri.AcquisitionParams{TR: 1, Frames: 6}
	s, _, err := fmri.Acquire(ph, act, p, rng)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// Inject a known shift into frames 3..5.
	trueShift := 1.0
	for f := 3; f < 6; f++ {
		s.Frames[f] = s.Frames[f].Shifted(trueShift, 0, 0)
	}
	ctx := &Context{}
	if _, err := (&MotionCorrect{SearchRadius: 2}).Apply(s, ctx); err != nil {
		t.Fatalf("MotionCorrect: %v", err)
	}
	for f := 3; f < 6; f++ {
		if math.Abs(ctx.Motion.DX[f]-trueShift) > 0.3 {
			t.Errorf("frame %d: estimated dx=%.2f want %.2f", f, ctx.Motion.DX[f], trueShift)
		}
	}
	for f := 1; f < 3; f++ {
		if math.Abs(ctx.Motion.DX[f]) > 0.3 {
			t.Errorf("frame %d: spurious shift %.2f", f, ctx.Motion.DX[f])
		}
	}
}

func TestBiasCorrectFlattensField(t *testing.T) {
	ph, rng := makePhantom(t, 16, 3)
	labels := make([]int, ph.NumBrainVoxels())
	act := &fmri.RegionActivity{Labels: labels, Series: [][]float64{make([]float64, 6)}}
	// Strong bias, no other artifacts, no baseline noise.
	p := fmri.AcquisitionParams{TR: 1, Frames: 6, BiasStrength: 0.4}
	s, _, err := fmri.Acquire(ph, act, p, rng)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// Coefficient of variation of brain intensities before and after.
	cv := func(vol *fmri.Volume) float64 {
		var vals []float64
		for _, idx := range ph.BrainVoxel {
			vals = append(vals, vol.Data[idx])
		}
		return stats.StdDev(vals) / stats.Mean(vals)
	}
	before := cv(s.MeanVolume())
	ctx := &Context{BrainMask: ph.BrainMask}
	if _, err := (&BiasCorrect{SigmaVoxels: 4}).Apply(s, ctx); err != nil {
		t.Fatalf("BiasCorrect: %v", err)
	}
	after := cv(s.MeanVolume())
	if after >= before {
		t.Errorf("bias correction did not reduce intensity variation: %.4f -> %.4f", before, after)
	}
}

func TestRegisterNormalizesHeadSize(t *testing.T) {
	// Two phantoms with different brain scales must land on masks of
	// similar size after registration.
	target := fmri.MNIGrid(16)
	sizes := make([]int, 2)
	for i, scale := range []float64{0.55, 0.8} {
		g, _ := fmri.NewGrid(16, 16, 16, 2)
		rng := rand.New(rand.NewSource(int64(40 + i)))
		pp := fmri.DefaultPhantomParams()
		pp.BrainScale = scale
		ph, err := fmri.NewPhantom(g, pp, rng)
		if err != nil {
			t.Fatalf("NewPhantom: %v", err)
		}
		labels := make([]int, ph.NumBrainVoxels())
		act := &fmri.RegionActivity{Labels: labels, Series: [][]float64{make([]float64, 4)}}
		s, _, err := fmri.Acquire(ph, act, fmri.AcquisitionParams{TR: 1, Frames: 4}, rng)
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		ctx := &Context{BrainMask: ph.BrainMask}
		out, err := (&Register{Target: target}).Apply(s, ctx)
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		if !out.Grid.Equal(target) {
			t.Fatal("output not on target grid")
		}
		n := 0
		for _, b := range ctx.BrainMask {
			if b {
				n++
			}
		}
		sizes[i] = n
	}
	ratio := float64(sizes[0]) / float64(sizes[1])
	if ratio < 0.85 || ratio > 1.18 {
		t.Errorf("registered mask sizes differ too much: %d vs %d (ratio %.2f)", sizes[0], sizes[1], ratio)
	}
}

func TestRegisterRequiresMask(t *testing.T) {
	g, _ := fmri.NewGrid(8, 8, 8, 2)
	s, _ := fmri.NewSeries(g, 1, 2)
	if _, err := (&Register{Target: g}).Apply(s, &Context{}); err == nil {
		t.Error("expected error without mask")
	}
}

func TestTemporalFilterRemovesDrift(t *testing.T) {
	g, _ := fmri.NewGrid(4, 4, 4, 2)
	s, _ := fmri.NewSeries(g, 0.72, 256)
	// Voxel 0: in-band sine plus strong linear drift.
	series := make([]float64, 256)
	for i := range series {
		series[i] = math.Sin(2*math.Pi*0.05*float64(i)*0.72) + 0.05*float64(i)
	}
	s.SetVoxelSeries(0, series)
	ctx := &Context{}
	if _, err := (&TemporalFilter{LowHz: 0.008, HighHz: 0.1}).Apply(s, ctx); err != nil {
		t.Fatalf("TemporalFilter: %v", err)
	}
	got := s.VoxelSeries(0)
	// Compare against the pure sine: correlation should be high.
	want := make([]float64, 256)
	for i := range want {
		want[i] = math.Sin(2 * math.Pi * 0.05 * float64(i) * 0.72)
	}
	r, _ := stats.Pearson(got, want)
	if r < 0.95 {
		t.Errorf("filtered series correlation with clean sine = %.3f", r)
	}
}

func TestGlobalSignalRegressRemovesSharedComponent(t *testing.T) {
	g, _ := fmri.NewGrid(3, 3, 3, 2)
	frames := 128
	s, _ := fmri.NewSeries(g, 0.72, frames)
	rng := rand.New(rand.NewSource(5))
	shared := make([]float64, frames)
	for t2 := range shared {
		shared[t2] = math.Sin(2 * math.Pi * 0.03 * float64(t2) * 0.72)
	}
	for idx := 0; idx < g.NumVoxels(); idx++ {
		v := make([]float64, frames)
		for t2 := range v {
			v[t2] = shared[t2] + 0.3*rng.NormFloat64()
		}
		s.SetVoxelSeries(idx, v)
	}
	ctx := &Context{}
	if _, err := (&GlobalSignalRegress{}).Apply(s, ctx); err != nil {
		t.Fatalf("GSR: %v", err)
	}
	// After GSR, voxel series should be nearly orthogonal to the shared
	// component.
	for idx := 0; idx < g.NumVoxels(); idx++ {
		r, _ := stats.Pearson(s.VoxelSeries(idx), shared)
		if math.Abs(r) > 0.35 {
			t.Fatalf("voxel %d still correlates %.2f with global signal", idx, r)
		}
	}
}

func TestZScoreVoxels(t *testing.T) {
	g, _ := fmri.NewGrid(2, 2, 2, 2)
	s, _ := fmri.NewSeries(g, 1, 50)
	rng := rand.New(rand.NewSource(6))
	for idx := 0; idx < g.NumVoxels(); idx++ {
		v := make([]float64, 50)
		for t2 := range v {
			v[t2] = 5 + 3*rng.NormFloat64()
		}
		s.SetVoxelSeries(idx, v)
	}
	ctx := &Context{}
	if _, err := (&ZScoreVoxels{}).Apply(s, ctx); err != nil {
		t.Fatalf("ZScoreVoxels: %v", err)
	}
	for idx := 0; idx < g.NumVoxels(); idx++ {
		v := s.VoxelSeries(idx)
		if math.Abs(stats.Mean(v)) > 1e-9 || math.Abs(stats.StdDev(v)-1) > 1e-9 {
			t.Fatalf("voxel %d not standardized", idx)
		}
	}
}

func TestSliceTimeCorrect(t *testing.T) {
	g, _ := fmri.NewGrid(2, 2, 4, 2)
	s, _ := fmri.NewSeries(g, 1, 10)
	for idx := 0; idx < g.NumVoxels(); idx++ {
		v := make([]float64, 10)
		for t2 := range v {
			v[t2] = float64(t2)
		}
		s.SetVoxelSeries(idx, v)
	}
	ctx := &Context{}
	if _, err := (&SliceTimeCorrect{}).Apply(s, ctx); err != nil {
		t.Fatalf("SliceTimeCorrect: %v", err)
	}
	// Slice 0 untouched; later slices shifted back by their offset.
	v0 := s.VoxelSeries(g.Index(0, 0, 0))
	if v0[5] != 5 {
		t.Error("slice 0 should be unchanged")
	}
	v2 := s.VoxelSeries(g.Index(0, 0, 2)) // offset 0.5 TR
	if math.Abs(v2[5]-4.5) > 1e-9 {
		t.Errorf("slice 2 sample = %v want 4.5", v2[5])
	}
}

func TestPipelineRunsAllStepsAndLogs(t *testing.T) {
	ph, rng := makePhantom(t, 14, 7)
	a := atlas.SymmetricAtlas("t", 8)
	labels := a.LabelVoxels(ph)
	series := smoothActivity(8, 48, 0.72, rng)
	act := &fmri.RegionActivity{Labels: labels, Series: series}
	p := fmri.DefaultAcquisitionParams()
	p.Frames = 48
	p.MotionMax = 0.4
	raw, _, err := fmri.Acquire(ph, act, p, rng)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	pipe := Default(fmri.MNIGrid(14))
	out, ctx, err := pipe.Run(raw)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ctx.Log) != len(pipe.Steps) {
		t.Errorf("log has %d entries want %d", len(ctx.Log), len(pipe.Steps))
	}
	if out.Grid.NX != 14 {
		t.Error("output not on target grid")
	}
	// Input untouched.
	if raw.Frames[0].Data[0] == 0 && raw.Frames[0].Mean() == 0 {
		t.Error("input series appears mutated")
	}
}

func TestPipelineEmptyInput(t *testing.T) {
	pipe := Default(fmri.MNIGrid(8))
	if _, _, err := pipe.Run(nil); err == nil {
		t.Error("expected error for nil series")
	}
}

// TestEndToEndSignalRecovery is the load-bearing integration test: a
// scan with every artifact enabled goes through the full pipeline and
// the region-averaged series must still correlate strongly with the
// latent activity that drove the simulation. This is what licenses the
// experiments to skip the voxel stage and work from region series
// directly (DESIGN.md, "Data substitution").
func TestEndToEndSignalRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ph, rng := makePhantom(t, 16, 8)
	a := atlas.SymmetricAtlas("t", 10)
	labels := a.LabelVoxels(ph)
	frames := 96
	latent := smoothActivity(10, frames, 0.72, rng)
	act := &fmri.RegionActivity{Labels: labels, Series: latent, VoxelJitter: 0.2, Rng: rng}
	p := fmri.DefaultAcquisitionParams()
	p.Frames = frames
	p.MotionMax = 0.5
	p.BOLDAmplitude = 0.05
	raw, _, err := fmri.Acquire(ph, act, p, rng)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	pipe := Default(fmri.MNIGrid(16))
	out, ctx, err := pipe.Run(raw)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Re-parcellate on the registered grid: build a registered-space
	// phantom stand-in from the mask.
	var brainVoxels []int
	for i, b := range ctx.BrainMask {
		if b {
			brainVoxels = append(brainVoxels, i)
		}
	}
	// Label registered voxels through normalized coordinates of the
	// canonical grid.
	regLabels := make([]int, len(brainVoxels))
	tg := out.Grid
	cx, cy, cz := float64(tg.NX-1)/2, float64(tg.NY-1)/2, float64(tg.NZ-1)/2
	rx, ry, rz := 0.7*cx, 0.7*cy*1.1, 0.7*cz*0.95
	for ord, idx := range brainVoxels {
		x, y, z := tg.Coords(idx)
		regLabels[ord] = a.LabelPoint((float64(x)-cx)/rx, (float64(y)-cy)/ry, (float64(z)-cz)/rz)
	}
	regionSeries, err := atlas.ReduceSeries(out, brainVoxels, regLabels, a.NumRegions())
	if err != nil {
		t.Fatalf("ReduceSeries: %v", err)
	}
	// The recovered series for each region should correlate with the
	// latent activity driving that region. The first frames carry HRF-
	// free simulation directly, so compare against band-passed latent.
	good := 0
	for r := 0; r < a.NumRegions(); r++ {
		want, _ := signal.Bandpass(latent[r], 0.72, 0.008, 0.1)
		got := regionSeries.Row(r)
		if stats.StdDev(got) == 0 {
			continue // region lost in registration (tiny grids)
		}
		corr, _ := stats.Pearson(got, want)
		if corr > 0.5 {
			good++
		}
	}
	if good < a.NumRegions()*6/10 {
		t.Errorf("only %d/%d regions recovered latent signal", good, a.NumRegions())
	}
}
