// Package preprocess implements the fMRI preprocessing pipeline of the
// paper's Figure 4 as composable steps: head-motion correction, skull
// stripping, bias-field correction, registration to a standard grid,
// temporal bandpass filtering, global signal regression and voxelwise
// z-scoring.
//
// Each step transforms a 4-D series in place and records provenance in
// the pipeline context, so a run documents exactly what was done — the
// property real pipelines (HCP minimal preprocessing, Burner) expose
// through their logs.
package preprocess

import (
	"fmt"
	"time"

	"brainprint/internal/fmri"
)

// Step is one stage of the preprocessing pipeline.
type Step interface {
	// Name identifies the step in provenance logs.
	Name() string
	// Apply transforms the series in place (or replaces it via the
	// returned pointer when the grid changes, as registration does).
	Apply(s *fmri.Series, ctx *Context) (*fmri.Series, error)
}

// StepRecord is one provenance entry.
type StepRecord struct {
	Name    string
	Detail  string
	Elapsed time.Duration
}

// Context carries state shared between steps: the evolving brain mask
// and the provenance log.
type Context struct {
	// BrainMask marks brain voxels on the current grid. It is nil until
	// skull stripping runs; steps that want a mask fall back to all
	// voxels when it is nil.
	BrainMask []bool
	// Motion holds the estimated per-frame translations once motion
	// correction has run.
	Motion *fmri.MotionTrace
	// Log records every executed step in order.
	Log []StepRecord
}

func (c *Context) record(name, detail string, elapsed time.Duration) {
	c.Log = append(c.Log, StepRecord{Name: name, Detail: detail, Elapsed: elapsed})
}

// Pipeline is an ordered list of steps.
type Pipeline struct {
	Steps []Step
}

// Default returns the standard pipeline in the order of Figure 4:
// motion correction, skull stripping, bias-field correction,
// registration to the target grid, temporal bandpass (resting-state
// band 0.008–0.1 Hz), global signal regression and z-scoring.
func Default(target fmri.Grid) *Pipeline {
	return &Pipeline{Steps: []Step{
		&MotionCorrect{SearchRadius: 2},
		&SkullStrip{},
		&BiasCorrect{SigmaVoxels: 4},
		&Register{Target: target},
		&TemporalFilter{LowHz: 0.008, HighHz: 0.1},
		&GlobalSignalRegress{},
		&ZScoreVoxels{},
	}}
}

// Run executes the pipeline on a deep copy of the input series,
// returning the processed series and the run context. The input is
// never mutated.
func (p *Pipeline) Run(s *fmri.Series) (*fmri.Series, *Context, error) {
	if s == nil || s.NumFrames() == 0 {
		return nil, nil, fmt.Errorf("preprocess: empty series")
	}
	cur := s.Clone()
	ctx := &Context{}
	for _, step := range p.Steps {
		start := time.Now()
		next, err := step.Apply(cur, ctx)
		if err != nil {
			return nil, ctx, fmt.Errorf("preprocess: step %q: %w", step.Name(), err)
		}
		if next != nil {
			cur = next
		}
		// The step itself may have recorded detail; ensure at least a
		// bare entry exists.
		if len(ctx.Log) == 0 || ctx.Log[len(ctx.Log)-1].Name != step.Name() {
			ctx.record(step.Name(), "", time.Since(start))
		}
	}
	return cur, ctx, nil
}
