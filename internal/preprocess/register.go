package preprocess

import (
	"fmt"
	"math"
	"time"

	"brainprint/internal/fmri"
)

// Register maps the series onto a standard target grid ("MNI space"),
// normalizing head size: the brain centroid and mean radius are
// estimated from the mask and an affine scale+translate transform maps
// the subject brain onto a canonical brain that fills TargetBrainScale
// of the target half-grid. This implements the "registration to a
// standard brain" of §3.2.1 for the rigid+scale case.
type Register struct {
	// Target is the standard grid to resample onto.
	Target fmri.Grid
	// TargetBrainScale is the canonical brain radius as a fraction of
	// the half-grid (default 0.7, matching fmri.DefaultPhantomParams).
	TargetBrainScale float64
}

// Name implements Step.
func (r *Register) Name() string { return "register" }

// Apply implements Step.
func (r *Register) Apply(s *fmri.Series, ctx *Context) (*fmri.Series, error) {
	start := time.Now()
	scale := r.TargetBrainScale
	if scale <= 0 {
		scale = 0.7
	}
	mask := ctx.BrainMask
	if mask == nil {
		return nil, fmt.Errorf("register: requires a brain mask (run skull-strip first)")
	}
	// Estimate subject brain centroid and mean radius from the mask.
	g := s.Grid
	var cx, cy, cz float64
	var n int
	for i, b := range mask {
		if !b {
			continue
		}
		x, y, z := g.Coords(i)
		cx += float64(x)
		cy += float64(y)
		cz += float64(z)
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("register: empty mask")
	}
	cx /= float64(n)
	cy /= float64(n)
	cz /= float64(n)
	// Mean radius of an ellipsoid of N voxels ≈ radius of the equivalent
	// ball: (3N/4π)^(1/3). Using the voxel count is robust to mask noise.
	srcRadius := math.Cbrt(3 * float64(n) / (4 * math.Pi))

	tg := r.Target
	tcx := float64(tg.NX-1) / 2
	tcy := float64(tg.NY-1) / 2
	tcz := float64(tg.NZ-1) / 2
	// The canonical phantom is mildly anisotropic (see fmri.NewPhantom);
	// use the geometric mean of the target half-dims for the radius.
	tHalf := math.Cbrt(tcx * tcy * tcz)
	tgtRadius := scale * tHalf * math.Cbrt(1.1*0.95) // match phantom anisotropy factors

	ratio := srcRadius / tgtRadius

	out, err := fmri.NewSeries(tg, s.TR, s.NumFrames())
	if err != nil {
		return nil, err
	}
	// New mask on the target grid (nearest-neighbour transform).
	newMask := make([]bool, tg.NumVoxels())
	maskVol := fmri.NewVolume(g)
	for i, b := range mask {
		if b {
			maskVol.Data[i] = 1
		}
	}
	for z := 0; z < tg.NZ; z++ {
		for y := 0; y < tg.NY; y++ {
			for x := 0; x < tg.NX; x++ {
				sx := cx + (float64(x)-tcx)*ratio
				sy := cy + (float64(y)-tcy)*ratio
				sz := cz + (float64(z)-tcz)*ratio
				ti := tg.Index(x, y, z)
				if maskVol.Interpolate(sx, sy, sz) > 0.5 {
					newMask[ti] = true
				}
				for t, f := range s.Frames {
					out.Frames[t].Data[ti] = f.Interpolate(sx, sy, sz)
				}
			}
		}
	}
	// Mask the registered data to the brain.
	for _, f := range out.Frames {
		for i := range f.Data {
			if !newMask[i] {
				f.Data[i] = 0
			}
		}
	}
	ctx.BrainMask = newMask
	ctx.record(r.Name(), fmt.Sprintf("scale ratio %.3f onto %dx%dx%d", ratio, tg.NX, tg.NY, tg.NZ), time.Since(start))
	return out, nil
}
