package preprocess

import (
	"fmt"
	"time"

	"brainprint/internal/fmri"
	"brainprint/internal/signal"
	"brainprint/internal/stats"
)

// TemporalFilter bandpass-filters every brain voxel time series,
// retaining the haemodynamic band. The paper uses 0.008–0.1 Hz for
// resting state (§3.2.1).
type TemporalFilter struct {
	LowHz, HighHz float64
}

// Name implements Step.
func (f *TemporalFilter) Name() string { return "temporal-filter" }

// Apply implements Step.
func (f *TemporalFilter) Apply(s *fmri.Series, ctx *Context) (*fmri.Series, error) {
	start := time.Now()
	lo, hi := f.LowHz, f.HighHz
	if hi == 0 {
		lo, hi = 0.008, 0.1
	}
	n := 0
	for idx := 0; idx < s.Grid.NumVoxels(); idx++ {
		if ctx.BrainMask != nil && !ctx.BrainMask[idx] {
			continue
		}
		series := s.VoxelSeries(idx)
		signal.Detrend(series)
		filtered, err := signal.Bandpass(series, s.TR, lo, hi)
		if err != nil {
			return nil, err
		}
		s.SetVoxelSeries(idx, filtered)
		n++
	}
	ctx.record(f.Name(), fmt.Sprintf("band [%g, %g] Hz on %d voxels", lo, hi, n), time.Since(start))
	return nil, nil
}

// GlobalSignalRegress removes the component of every voxel series
// explained by the global (brain-mean) signal, the global signal
// regression step the paper applies to resting-state data (§3.2.1).
type GlobalSignalRegress struct{}

// Name implements Step.
func (g *GlobalSignalRegress) Name() string { return "global-signal-regression" }

// Apply implements Step.
func (g *GlobalSignalRegress) Apply(s *fmri.Series, ctx *Context) (*fmri.Series, error) {
	start := time.Now()
	global := s.GlobalSignal(ctx.BrainMask)
	gm := stats.Mean(global)
	centered := make([]float64, len(global))
	var gss float64
	for i, v := range global {
		centered[i] = v - gm
		gss += centered[i] * centered[i]
	}
	if gss == 0 {
		ctx.record(g.Name(), "constant global signal; skipped", time.Since(start))
		return nil, nil
	}
	for idx := 0; idx < s.Grid.NumVoxels(); idx++ {
		if ctx.BrainMask != nil && !ctx.BrainMask[idx] {
			continue
		}
		series := s.VoxelSeries(idx)
		m := stats.Mean(series)
		var dot float64
		for t, v := range series {
			dot += (v - m) * centered[t]
		}
		beta := dot / gss
		for t := range series {
			series[t] -= beta * centered[t]
		}
		s.SetVoxelSeries(idx, series)
	}
	ctx.record(g.Name(), "", time.Since(start))
	return nil, nil
}

// ZScoreVoxels standardizes every brain voxel time series to zero mean
// and unit variance, the final normalization of §3.1.1.
type ZScoreVoxels struct{}

// Name implements Step.
func (z *ZScoreVoxels) Name() string { return "zscore" }

// Apply implements Step.
func (z *ZScoreVoxels) Apply(s *fmri.Series, ctx *Context) (*fmri.Series, error) {
	start := time.Now()
	for idx := 0; idx < s.Grid.NumVoxels(); idx++ {
		if ctx.BrainMask != nil && !ctx.BrainMask[idx] {
			continue
		}
		series := s.VoxelSeries(idx)
		stats.ZScore(series)
		s.SetVoxelSeries(idx, series)
	}
	ctx.record(z.Name(), "", time.Since(start))
	return nil, nil
}

// SliceTimeCorrect aligns the acquisition time of every axial slice to
// the start of the frame by linear temporal interpolation: slice z is
// assumed acquired at offset (z/NZ)·TR within the frame. The paper
// mentions this as an optional extra step (Figure 4 caption).
type SliceTimeCorrect struct{}

// Name implements Step.
func (c *SliceTimeCorrect) Name() string { return "slice-time-correct" }

// Apply implements Step.
func (c *SliceTimeCorrect) Apply(s *fmri.Series, ctx *Context) (*fmri.Series, error) {
	start := time.Now()
	g := s.Grid
	frames := s.NumFrames()
	for z := 0; z < g.NZ; z++ {
		frac := float64(z) / float64(g.NZ) // fraction of TR after frame start
		if frac == 0 {
			continue
		}
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				idx := g.Index(x, y, z)
				if ctx.BrainMask != nil && !ctx.BrainMask[idx] {
					continue
				}
				series := s.VoxelSeries(idx)
				corrected := make([]float64, frames)
				for t := 0; t < frames; t++ {
					// Value at frame-start time t is interpolated between
					// samples taken at t−1+frac... shift the series back by
					// frac of one sample.
					if t == 0 {
						corrected[t] = series[0]
						continue
					}
					corrected[t] = series[t-1]*frac + series[t]*(1-frac)
				}
				s.SetVoxelSeries(idx, corrected)
			}
		}
	}
	ctx.record(c.Name(), "", time.Since(start))
	return nil, nil
}
