// Package replicate is the primary→replica replication tier over the
// live gallery's write-ahead log. A primary serves three HTTP
// endpoints (mounted by internal/serve when the gallery is live):
//
//	GET /v1/replicate/state          JSON State: generation, sequence
//	                                 window, file inventory
//	GET /v1/replicate/file?name=N    one generation file, verbatim (the
//	                                 log truncated to committed bytes)
//	GET /v1/replicate/wal?gen=G&after=S
//	                                 long-poll stream of raw CRC-framed
//	                                 log records after sequence S
//
// A Replica bootstraps by copying the primary's current generation
// byte-for-byte into a local live directory, opens it with the same
// engine the primary runs, and then tails the stream, applying each
// frame through the engine's fsync-before-visibility commit path — so
// replica query results are bit-identical to the primary's at the same
// sequence number, and a replica restart recovers exactly like a
// primary restart (torn tails truncate, interior corruption refuses).
//
// The stream carries the verbatim frame bytes the primary committed —
// the wal.go record codec reused unchanged, no second serialization.
// Catch-up across a compaction is sequence-gated: a follower may cross
// a generation switch only from the seeded prefix's end (State.SeedSeq)
// or later, because the seeded log retells post-freeze history in a
// collapsed, reordered form; anything earlier answers 410 and the
// replica re-bootstraps from the newest generation. See
// docs/REPLICATION.md for the wire contract and failure matrix.
package replicate

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"brainprint/internal/gallery"
)

// Wire paths and header names of the replication surface.
const (
	// PathState is the replication-state endpoint.
	PathState = "/v1/replicate/state"
	// PathFile is the generation-file bootstrap endpoint.
	PathFile = "/v1/replicate/file"
	// PathWAL is the long-poll frame-stream endpoint.
	PathWAL = "/v1/replicate/wal"

	// HeaderGeneration carries the primary's current generation number
	// on a stream response.
	HeaderGeneration = "X-Replicate-Generation"
	// HeaderSeq carries the primary's head sequence number at the time
	// the stream opened — the replica's staleness reference.
	HeaderSeq = "X-Replicate-Seq"
	// HeaderSeedSeq carries the earliest cross-generation resume
	// position of the primary's current generation.
	HeaderSeedSeq = "X-Replicate-Seed-Seq"
)

// Typed replication errors, matched with errors.Is.
var (
	// ErrFrameCorrupt means a streamed frame failed framing or checksum
	// validation — the bytes on the wire are not a committed record.
	ErrFrameCorrupt = errors.New("replicate: stream frame corrupt")
	// ErrHistoryGone means the primary no longer retains the history
	// the replica needs to resume (HTTP 409/410, or a frame that does
	// not apply): the replica must re-bootstrap from a snapshot.
	ErrHistoryGone = errors.New("replicate: primary no longer retains the needed history")
	// ErrBadState means the primary's state document is malformed or
	// incompatible with this replica.
	ErrBadState = errors.New("replicate: bad primary state")
)

// State is the JSON body of GET /v1/replicate/state: everything a
// replica needs to bootstrap from the primary's current generation and
// decide whether its own position can resume streaming.
type State struct {
	// Generation is the primary's current generation number.
	Generation int `json:"generation"`
	// BaseSeq is the sequence the generation's log starts after.
	BaseSeq int64 `json:"base_seq"`
	// SeedSeq is the earliest position a follower of an older
	// generation may resume streaming from.
	SeedSeq int64 `json:"seed_seq"`
	// Seq is the primary's head sequence number.
	Seq int64 `json:"seq"`
	// WALVersion is the log format version the frames use.
	WALVersion int `json:"wal_version"`
	// Features is the fingerprint dimensionality — it bounds the size
	// of any legal frame on the stream.
	Features int `json:"features"`
	// WAL is the generation's log segment file name.
	WAL string `json:"wal"`
	// WALBytes is the committed log prefix a bootstrap must copy.
	WALBytes int64 `json:"wal_bytes"`
	// Files lists the generation's immutable files (manifest, shards,
	// ANN and sequence sidecars) to copy verbatim.
	Files []FileInfo `json:"files"`
}

// FileInfo is one bootstrap file in a State document.
type FileInfo struct {
	// Name is the file's name within the live directory.
	Name string `json:"name"`
	// Size is the file's length in bytes.
	Size int64 `json:"size"`
}

// MaxPayload returns the largest legal frame payload for a gallery of
// the given dimensionality: kind + idLen + id + one float64 per
// feature.
func MaxPayload(features int) int {
	return 3 + gallery.MaxIDLen + 8*features
}

// ReadFrame reads one CRC-framed record from the stream and returns
// its verbatim bytes (length prefix, payload, and trailing checksum —
// exactly what Engine.ApplyReplicated consumes). io.EOF at a frame
// boundary means a clean end of stream; a frame cut short mid-way is
// io.ErrUnexpectedEOF; an implausible length or a checksum mismatch is
// ErrFrameCorrupt. The decoder either returns bytes that re-encode to
// the input or rejects — it never resynchronizes past damage.
func ReadFrame(br *bufio.Reader, maxPayload int) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	payloadLen := int64(binary.LittleEndian.Uint32(lenBuf[:]))
	if payloadLen < 3 || payloadLen > int64(maxPayload) {
		return nil, fmt.Errorf("%w: payload of %d bytes (max %d)", ErrFrameCorrupt, payloadLen, maxPayload)
	}
	body, err := gallery.ReadN(br, int(payloadLen)+4, "replication stream frame")
	if err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	payload := body[:payloadLen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(body[payloadLen:]) {
		return nil, fmt.Errorf("%w: frame failed checksum", ErrFrameCorrupt)
	}
	frame := make([]byte, 0, 4+len(body))
	frame = append(frame, lenBuf[:]...)
	frame = append(frame, body...)
	return frame, nil
}
