package replicate

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"brainprint/internal/gallery/live"
)

// DefaultPoll is the idle window a WAL stream stays open waiting for
// new frames before ending cleanly; the replica reconnects
// immediately, so the poll window bounds the replica's wall-clock
// staleness estimate.
const DefaultPoll = 10 * time.Second

// Source serves a live engine's replication surface: the state
// document, generation-file bootstrap copies, and the long-poll frame
// stream. internal/serve mounts one when serving a live directory —
// and, via NewSourceFunc, over a replica's current engine, which is
// what makes chained replication (a replica of a replica) and
// post-promotion continuity work.
type Source struct {
	// Poll is the stream's idle window (DefaultPoll when zero).
	Poll time.Duration

	eng func() *live.Engine
}

// NewSource wraps one fixed live engine for replication.
func NewSource(eng *live.Engine) *Source {
	return &Source{eng: func() *live.Engine { return eng }}
}

// NewSourceFunc wraps an engine provider for replication: each request
// resolves the engine afresh, so a source mounted over a replica keeps
// serving across the replica's re-bootstrap engine swaps (a stream
// caught mid-swap ends cleanly and the follower reconnects against the
// new engine).
func NewSourceFunc(eng func() *live.Engine) *Source {
	return &Source{eng: eng}
}

// State assembles the current state document.
func (s *Source) State() (State, error) {
	eng := s.eng()
	rs := eng.ReplicationState()
	files, err := eng.GenerationFiles()
	if err != nil {
		return State{}, err
	}
	st := State{
		Generation: rs.Generation,
		BaseSeq:    rs.BaseSeq,
		SeedSeq:    rs.SeedSeq,
		Seq:        rs.Seq,
		WALVersion: live.WALVersion,
		Features:   rs.Features,
		WAL:        rs.WALName,
		WALBytes:   rs.WALBytes,
		Files:      make([]FileInfo, 0, len(files)),
	}
	for _, f := range files {
		st.Files = append(st.Files, FileInfo{Name: f.Name, Size: f.Size})
	}
	return st, nil
}

// ServeState answers GET /v1/replicate/state.
func (s *Source) ServeState(w http.ResponseWriter, r *http.Request) {
	st, err := s.State()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// ServeFile answers GET /v1/replicate/file?name=N with one generation
// file, verbatim; the write-ahead log is truncated to its committed
// prefix. Unknown or out-of-generation names answer 404.
func (s *Source) ServeFile(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing name parameter")
		return
	}
	rc, size, err := s.eng().OpenGenerationFile(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	_, _ = io.Copy(w, rc)
}

// ServeWAL answers GET /v1/replicate/wal?gen=G&after=S: a long-poll
// stream of raw committed frames after sequence S of generation G. The
// response headers carry the primary's generation, head sequence, and
// seed sequence at open time; the body is frames only. The stream ends
// cleanly when the poll window passes without new frames, when the
// generation switches, when the engine closes, or when drain closes (a
// graceful shutdown). A position the log no longer retains answers 409
// (same generation — the follower diverged) or 410 (older generation —
// history compacted away); both tell the replica to re-bootstrap.
func (s *Source) ServeWAL(w http.ResponseWriter, r *http.Request, drain <-chan struct{}) {
	gen, err := strconv.Atoi(r.URL.Query().Get("gen"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad gen parameter")
		return
	}
	after, err := strconv.ParseInt(r.URL.Query().Get("after"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad after parameter")
		return
	}
	eng := s.eng() // one engine for the whole stream: a mid-stream swap ends it cleanly
	rs := eng.ReplicationState()
	switch {
	case gen == rs.Generation:
		if after < rs.BaseSeq || after > rs.Seq {
			writeError(w, http.StatusConflict,
				fmt.Sprintf("sequence %d outside generation %d window [%d, %d]", after, gen, rs.BaseSeq, rs.Seq))
			return
		}
	default:
		if after < rs.SeedSeq || after > rs.Seq {
			writeError(w, http.StatusGone,
				fmt.Sprintf("generation %d history is gone; resume needs sequence in [%d, %d]", gen, rs.SeedSeq, rs.Seq))
			return
		}
		// The follower's position is at or past the seeded prefix: the
		// current generation's log replays identically from here, so
		// switch it over.
		gen = rs.Generation
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderGeneration, strconv.Itoa(rs.Generation))
	w.Header().Set(HeaderSeq, strconv.FormatInt(rs.Seq, 10))
	w.Header().Set(HeaderSeedSeq, strconv.FormatInt(rs.SeedSeq, 10))
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	poll := s.Poll
	if poll <= 0 {
		poll = DefaultPoll
	}
	ctx := r.Context()
	cur := after
	for {
		frames, upTo, err := eng.WALRange(gen, cur, 1<<22)
		if err != nil {
			return // generation switched or engine closed: end cleanly, the replica reconnects
		}
		if len(frames) > 0 {
			if _, err := w.Write(frames); err != nil {
				return
			}
			flusher.Flush()
			cur = upTo
			continue
		}
		wctx, cancel := contextWithDrain(ctx, drain, poll)
		err = eng.WaitWAL(wctx, gen, cur)
		cancel()
		if err != nil {
			return // idle window passed, client gone, draining, or closed
		}
	}
}

// contextWithDrain derives a context that ends after the poll timeout
// or when drain closes, whichever comes first.
func contextWithDrain(parent context.Context, drain <-chan struct{}, timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(parent, timeout)
	if drain == nil {
		return ctx, cancel
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-drain:
			cancel()
		case <-done:
		}
	}()
	return ctx, func() { close(done); cancel() }
}

// writeError emits the service's JSON error shape.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// statusError converts a non-2xx replication response into a typed
// error, draining the body for its message.
func statusError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var payload struct {
		Error string `json:"error"`
	}
	msg := string(body)
	if json.Unmarshal(body, &payload) == nil && payload.Error != "" {
		msg = payload.Error
	}
	if resp.StatusCode == http.StatusConflict || resp.StatusCode == http.StatusGone {
		return fmt.Errorf("%w: %s", ErrHistoryGone, msg)
	}
	return fmt.Errorf("replicate: %s answered %d: %s", resp.Request.URL.Path, resp.StatusCode, msg)
}
