package replicate

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// serveReplica exposes a replica's own replication surface the way
// internal/serve mounts it (NewSourceFunc, so the surface follows the
// replica's engine across re-bootstrap swaps) — the middle link of a
// chained topology.
func serveReplica(t testing.TB, rep *Replica) *httptest.Server {
	t.Helper()
	src := NewSourceFunc(rep.Engine)
	src.Poll = 200 * time.Millisecond
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathState, src.ServeState)
	mux.HandleFunc("GET "+PathFile, src.ServeFile)
	mux.HandleFunc("GET "+PathWAL, func(w http.ResponseWriter, r *http.Request) { src.ServeWAL(w, r, nil) })
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestChainedReplication pins the replica-of-replica contract: with
// primary → R1 → R2, mutations stream through both hops and all three
// stores answer bit-identically at equal sequence; when R1 dies, R2
// repoints at the primary and — because the primary compacted past
// R2's position while it was orphaned — re-bootstraps from a fresh
// snapshot rather than resuming.
func TestChainedReplication(t *testing.T) {
	p := newPrimary(t, 10)
	r1 := startReplica(t, p, "")
	r1srv := serveReplica(t, r1)
	r2, err := Start(r1srv.URL, filepath.Join(t.TempDir(), "r2"), fastOptions())
	if err != nil {
		t.Fatalf("Start second hop: %v", err)
	}
	t.Cleanup(func() { r2.Close() })

	// Mutations flow primary → R1 → R2.
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 6; i++ {
		if err := p.eng.Enroll(fmt.Sprintf("chain-%d", i), randVec(rng)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := p.eng.Delete("s00002"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	waitCaughtUp(t, r1, p)
	waitCaughtUp(t, r2, p)
	assertEquivalent(t, r1, p)
	assertEquivalent(t, r2, p)

	// Kill the middle link, then move the primary on AND compact, so
	// R2's resume position is gone from the primary's log: the repoint
	// must end in a 410-driven re-bootstrap, not a resume.
	r1srv.Close()
	if err := r1.Close(); err != nil {
		t.Fatalf("closing R1: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := p.eng.Enroll(fmt.Sprintf("post-r1-%d", i), randVec(rng)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := p.eng.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := r2.Repoint(p.srv.URL); err != nil {
		t.Fatalf("Repoint: %v", err)
	}
	waitCaughtUp(t, r2, p)
	assertEquivalent(t, r2, p)
	st := r2.Stats()
	if st.Bootstraps < 2 {
		t.Fatalf("expected a re-bootstrap after the repoint, stats: %+v", st)
	}
	if st.Primary != p.srv.URL {
		t.Fatalf("R2 primary = %q, want %q", st.Primary, p.srv.URL)
	}
}

// TestDetachHandsOverEngine pins the promotion-side contract of
// Detach: the tail stops, the engine stays open and writable with its
// sequence continuing from the replicated head, the upstream marker is
// gone (a restart opens the directory as a primary), and the handle
// refuses second detaches, repoints, and double closes.
func TestDetachHandsOverEngine(t *testing.T) {
	p := newPrimary(t, 5)
	dir := filepath.Join(t.TempDir(), "replica")
	rep, err := Start(p.srv.URL, dir, fastOptions())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitCaughtUp(t, rep, p)

	eng, err := rep.Detach()
	if err != nil {
		t.Fatalf("Detach: %v", err)
	}
	defer eng.Close()
	if _, err := os.Stat(filepath.Join(dir, upstreamFile)); !os.IsNotExist(err) {
		t.Fatalf("upstream marker survived the detach: %v", err)
	}

	// Seq handoff: the detached engine's first write continues the
	// replicated numbering.
	head := eng.Stats().Seq
	if head != p.eng.Stats().Seq {
		t.Fatalf("detached at seq %d, primary at %d", head, p.eng.Stats().Seq)
	}
	rng := rand.New(rand.NewSource(52))
	if err := eng.Enroll("first-own-write", randVec(rng)); err != nil {
		t.Fatalf("post-detach Enroll: %v", err)
	}
	if got := eng.Stats().Seq; got != head+1 {
		t.Fatalf("post-detach seq %d, want %d", got, head+1)
	}

	// One-way: no second detach, no repoint, and Close leaves the
	// engine with the caller.
	if _, err := rep.Detach(); err == nil {
		t.Fatal("second Detach succeeded")
	}
	if err := rep.Repoint(p.srv.URL); err == nil {
		t.Fatal("Repoint after Detach succeeded")
	}
	if err := rep.Close(); err != nil {
		t.Fatalf("Close after Detach: %v", err)
	}
	if err := eng.Enroll("after-replica-close", randVec(rng)); err != nil {
		t.Fatalf("engine died with the replica handle: %v", err)
	}

	// The detached directory restarts as a first-class primary: no
	// upstream marker, so a plain live.Open sees the full history.
	if err := eng.Close(); err != nil {
		t.Fatalf("closing detached engine: %v", err)
	}
	if _, err := readUpstream(dir); err == nil {
		t.Fatal("readUpstream succeeded on a detached directory")
	}
}

// newLongPollPrimary is newPrimary with a stream idle window long
// enough that a repoint waiting it out would blow the test deadline.
func newLongPollPrimary(t testing.TB, n int) *primary {
	t.Helper()
	p := newPrimary(t, n)
	p.srv.Close()
	src := NewSource(p.eng)
	src.Poll = 30 * time.Second
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathState, src.ServeState)
	mux.HandleFunc("GET "+PathFile, src.ServeFile)
	mux.HandleFunc("GET "+PathWAL, func(w http.ResponseWriter, r *http.Request) { src.ServeWAL(w, r, nil) })
	p.srv = httptest.NewServer(mux)
	t.Cleanup(p.srv.Close)
	return p
}

// TestRepointBreaksIdleStream pins repoint latency: a replica parked
// in a long-poll idle window reconnects against the new upstream
// immediately (the in-flight stream is cancelled), not after the poll
// window expires.
func TestRepointBreaksIdleStream(t *testing.T) {
	pA := newLongPollPrimary(t, 4)
	pB := newLongPollPrimary(t, 4) // identical seed → identical history, like a promoted sibling
	dir := filepath.Join(t.TempDir(), "replica")
	rep, err := Start(pA.srv.URL, dir, fastOptions())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { rep.Close() })
	waitCaughtUp(t, rep, pA)

	rng := rand.New(rand.NewSource(53))
	if err := pB.eng.Enroll("only-on-b", randVec(rng)); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	start := time.Now()
	if err := rep.Repoint(pB.srv.URL); err != nil {
		t.Fatalf("Repoint: %v", err)
	}
	waitCaughtUp(t, rep, pB)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("repoint took %v; the idle stream was not broken", elapsed)
	}
	if rep.Index("only-on-b") < 0 {
		t.Fatal("replica did not converge onto the new upstream")
	}
}
