package replicate

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"testing"
)

// fuzzFrame renders one valid CRC-framed record the way the live
// engine's log codec does: length prefix, payload (kind, idLen, id,
// vector float64s), trailing payload CRC.
func fuzzFrame(kind byte, id string, features int) []byte {
	payload := []byte{kind}
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(id)))
	payload = append(payload, id...)
	for i := 0; i < features; i++ {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(i)<<52)
	}
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

// fuzzFeatures fixes the stream geometry the fuzzer decodes under.
const fuzzFeatures = 4

// FuzzReadFrame throws adversarial bytes at the replication-stream
// frame decoder. The decoder must never panic, must bound allocation
// by the bytes actually present, and must reject-or-roundtrip: every
// frame it accepts is byte-identical to the wire bytes it consumed (so
// a replica's log is a verbatim copy of the primary's), every CRC or
// framing violation is an error, and it never resynchronizes past
// damage.
func FuzzReadFrame(f *testing.F) {
	enroll := fuzzFrame(1, "subject-a", fuzzFeatures)
	del := fuzzFrame(2, "subject-a", 0)
	f.Add(append(append([]byte(nil), enroll...), del...))
	f.Add(enroll[:len(enroll)-3]) // truncated mid-frame
	f.Add(del)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0x00}) // forged huge length
	mut := append([]byte(nil), enroll...)
	mut[7] ^= 0x10 // payload flip: the trailing CRC must catch it
	f.Add(mut)

	maxPayload := MaxPayload(fuzzFeatures)
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		consumed := 0
		for {
			frame, err := ReadFrame(br, maxPayload)
			if err != nil {
				if err == io.EOF && consumed != len(data) {
					t.Fatalf("clean EOF after %d of %d bytes", consumed, len(data))
				}
				return
			}
			if len(frame) < 8 || len(frame) > 4+maxPayload+4 {
				t.Fatalf("accepted frame of implausible size %d", len(frame))
			}
			if !bytes.Equal(frame, data[consumed:consumed+len(frame)]) {
				t.Fatalf("accepted frame differs from the wire bytes at offset %d", consumed)
			}
			payloadLen := binary.LittleEndian.Uint32(frame)
			payload := frame[4 : 4+payloadLen]
			if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(frame[4+payloadLen:]) {
				t.Fatal("accepted frame fails its own checksum")
			}
			consumed += len(frame)
		}
	})
}
