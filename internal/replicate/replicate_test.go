package replicate

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"brainprint/internal/gallery/live"
)

// testFeatures keeps the fixtures small; correctness does not depend
// on dimensionality.
const testFeatures = 16

// randVec yields a deterministic pseudo-random fingerprint.
func randVec(rng *rand.Rand) []float64 {
	v := make([]float64, testFeatures)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// primary bundles a live engine with an httptest server exposing its
// replication surface the way internal/serve mounts it.
type primary struct {
	eng *live.Engine
	srv *httptest.Server
}

// newPrimary creates a fresh primary with n enrolled subjects.
func newPrimary(t testing.TB, n int) *primary {
	t.Helper()
	eng, err := live.Create(filepath.Join(t.TempDir(), "primary"), testFeatures, nil, live.Options{NoSync: true})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		if err := eng.Enroll(fmt.Sprintf("s%05d", i), randVec(rng)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	src := NewSource(eng)
	src.Poll = 200 * time.Millisecond
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathState, src.ServeState)
	mux.HandleFunc("GET "+PathFile, src.ServeFile)
	mux.HandleFunc("GET "+PathWAL, func(w http.ResponseWriter, r *http.Request) { src.ServeWAL(w, r, nil) })
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &primary{eng: eng, srv: srv}
}

// fastOptions keeps test reconnect loops snappy.
func fastOptions() Options {
	return Options{Backoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, Poll: 200 * time.Millisecond}
}

// startReplica starts a replica of p in a fresh (or given) directory.
func startReplica(t testing.TB, p *primary, dir string) *Replica {
	t.Helper()
	if dir == "" {
		dir = filepath.Join(t.TempDir(), "replica")
	}
	rep, err := Start(p.srv.URL, dir, fastOptions())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { rep.Close() })
	return rep
}

// waitCaughtUp polls until the replica's head sequence reaches the
// primary's.
func waitCaughtUp(t testing.TB, rep *Replica, p *primary) {
	t.Helper()
	want := p.eng.Stats().Seq
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if rep.Stats().Seq >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("replica stuck at sequence %d, primary at %d (lastErr=%q)",
		rep.Stats().Seq, want, rep.Stats().LastError)
}

// assertEquivalent pins the acceptance contract: at the same sequence,
// replica enumeration and TopK answers are bit-identical to the
// primary's.
func assertEquivalent(t testing.TB, rep *Replica, p *primary) {
	t.Helper()
	pSt, rSt := p.eng.Stats(), rep.Stats()
	if pSt.Seq != rSt.Seq {
		t.Fatalf("sequence mismatch: primary %d, replica %d", pSt.Seq, rSt.Seq)
	}
	if !reflect.DeepEqual(p.eng.IDs(), rep.IDs()) {
		t.Fatalf("ID enumeration diverged: primary %d ids, replica %d ids", p.eng.Len(), rep.Len())
	}
	rng := rand.New(rand.NewSource(77))
	for q := 0; q < 5; q++ {
		probe := randVec(rng)
		want, err := p.eng.TopKCtx(context.Background(), probe, 5, 0)
		if err != nil {
			t.Fatalf("primary TopK: %v", err)
		}
		got, err := rep.TopKCtx(context.Background(), probe, 5, 0)
		if err != nil {
			t.Fatalf("replica TopK: %v", err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("TopK diverged on probe %d:\n  primary: %+v\n  replica: %+v", q, want, got)
		}
	}
}

func TestReadFrame(t *testing.T) {
	p := newPrimary(t, 3)
	frames, _, err := p.eng.WALRange(0, 0, 1<<20)
	if err != nil {
		t.Fatalf("WALRange: %v", err)
	}
	br := bufio.NewReader(bytes.NewReader(frames))
	var rebuilt []byte
	for i := 0; i < 3; i++ {
		frame, err := ReadFrame(br, MaxPayload(testFeatures))
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		rebuilt = append(rebuilt, frame...)
	}
	if _, err := ReadFrame(br, MaxPayload(testFeatures)); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
	if !bytes.Equal(rebuilt, frames) {
		t.Fatal("round-tripped frames differ from the wire bytes")
	}

	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frames[:10])), MaxPayload(testFeatures)); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: %v, want io.ErrUnexpectedEOF", err)
	}
	bad := append([]byte(nil), frames...)
	bad[9] ^= 0x01 // flip a payload byte: the trailing CRC must catch it
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(bad)), MaxPayload(testFeatures)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("corrupt frame: %v, want ErrFrameCorrupt", err)
	}
	huge := []byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(huge)), MaxPayload(testFeatures)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("oversized frame: %v, want ErrFrameCorrupt", err)
	}
}

func TestReplicaBootstrapAndTail(t *testing.T) {
	p := newPrimary(t, 10)
	rep := startReplica(t, p, "")
	waitCaughtUp(t, rep, p)
	assertEquivalent(t, rep, p)

	// Live mutations stream through: new enrolls and a delete.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5; i++ {
		if err := p.eng.Enroll(fmt.Sprintf("online-%d", i), randVec(rng)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := p.eng.Delete("s00003"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	waitCaughtUp(t, rep, p)
	assertEquivalent(t, rep, p)

	st := rep.Stats()
	if st.SeqLag != 0 || st.Primary != p.srv.URL || st.Bootstraps != 1 {
		t.Fatalf("stats after catch-up: %+v", st)
	}
}

func TestReplicaAcrossCompaction(t *testing.T) {
	p := newPrimary(t, 8)
	rep := startReplica(t, p, "")
	waitCaughtUp(t, rep, p)

	// A compaction switches the primary's generation mid-tail; the
	// caught-up replica rides the switch without re-bootstrapping.
	rng := rand.New(rand.NewSource(43))
	if err := p.eng.Delete("s00001"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// The replica must reach the pre-compaction head first: a replica
	// still below the seeded prefix's start when the switch happens is
	// SUPPOSED to re-bootstrap (covered by the history-gone test).
	waitCaughtUp(t, rep, p)
	if err := p.eng.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := p.eng.Enroll(fmt.Sprintf("post-compact-%d", i), randVec(rng)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	waitCaughtUp(t, rep, p)
	assertEquivalent(t, rep, p)
	st := rep.Stats()
	if st.Bootstraps != 1 {
		t.Fatalf("compaction forced a re-bootstrap: %+v", st)
	}
	if st.UpstreamGeneration != 1 {
		t.Fatalf("UpstreamGeneration = %d, want 1", st.UpstreamGeneration)
	}
}

func TestReplicaRebootstrapWhenHistoryGone(t *testing.T) {
	p := newPrimary(t, 6)
	dir := filepath.Join(t.TempDir(), "replica")
	rep, err := Start(p.srv.URL, dir, fastOptions())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitCaughtUp(t, rep, p)
	if err := rep.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// While the replica is down, the primary moves on AND compacts, so
	// the seeded prefix starts past the replica's head: resuming is
	// unsafe and the primary answers 410.
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 3; i++ {
		if err := p.eng.Enroll(fmt.Sprintf("while-down-%d", i), randVec(rng)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := p.eng.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}

	rep, err = Start(p.srv.URL, dir, fastOptions())
	if err != nil {
		t.Fatalf("reStart: %v", err)
	}
	defer rep.Close()
	waitCaughtUp(t, rep, p)
	assertEquivalent(t, rep, p)
	if st := rep.Stats(); st.Bootstraps < 1 {
		t.Fatalf("expected a re-bootstrap, stats: %+v", st)
	}
}

func TestReplicaTornTailRestart(t *testing.T) {
	p := newPrimary(t, 6)
	dir := filepath.Join(t.TempDir(), "replica")
	rep, err := Start(p.srv.URL, dir, fastOptions())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitCaughtUp(t, rep, p)
	gen := rep.Engine().Generation()
	if err := rep.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the replica's local log tail — the signature of a crash
	// mid-apply — and mutate the primary while it is down.
	walPath := filepath.Join(dir, fmt.Sprintf("live.g%04d.bpw", gen))
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("opening replica log: %v", err)
	}
	if _, err := f.Write([]byte{0x55, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatalf("tearing log: %v", err)
	}
	f.Close()
	rng := rand.New(rand.NewSource(45))
	if err := p.eng.Enroll("after-tear", randVec(rng)); err != nil {
		t.Fatalf("Enroll: %v", err)
	}

	rep, err = Start(p.srv.URL, dir, fastOptions())
	if err != nil {
		t.Fatalf("reStart after torn tail: %v", err)
	}
	defer rep.Close()
	if rb := rep.Engine().Stats().RecoveredTornBytes; rb == 0 {
		t.Fatal("expected torn-tail recovery on reopen")
	}
	waitCaughtUp(t, rep, p)
	assertEquivalent(t, rep, p)
}

// TestReplicaRacingQueries drives concurrent primary enrolls against
// concurrent replica identify queries mid-catch-up — the -race
// coverage the replication tier must survive — then pins bit-identical
// results once caught up.
func TestReplicaRacingQueries(t *testing.T) {
	p := newPrimary(t, 10)
	rep := startReplica(t, p, "")

	const writers = 2
	const perWriter = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perWriter; i++ {
				if err := p.eng.Enroll(fmt.Sprintf("race-w%d-%d", w, i), randVec(rng)); err != nil {
					t.Errorf("Enroll: %v", err)
					return
				}
			}
		}(w)
	}
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + q)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := rep.TopKCtx(context.Background(), randVec(rng), 3, 0); err != nil {
					t.Errorf("replica TopK during catch-up: %v", err)
					return
				}
			}
		}(q)
	}
	// Let writers finish, then let the replica catch up under query
	// load before stopping the readers.
	waitWriters := make(chan struct{})
	go func() {
		defer close(waitWriters)
		for {
			if p.eng.Len() >= 10+writers*perWriter-1 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	<-waitWriters
	waitCaughtUp(t, rep, p)
	close(stop)
	wg.Wait()
	waitCaughtUp(t, rep, p)
	assertEquivalent(t, rep, p)
}

// TestServeWALWindowErrors pins the HTTP status contract: in-window
// resumes stream, a diverged same-generation position answers 409, and
// compacted-away history answers 410.
func TestServeWALWindowErrors(t *testing.T) {
	p := newPrimary(t, 4)
	get := func(gen int, after int64) int {
		resp, err := http.Get(fmt.Sprintf("%s%s?gen=%d&after=%d", p.srv.URL, PathWAL, gen, after))
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := get(0, 99); code != http.StatusConflict {
		t.Fatalf("past-head resume: %d, want 409", code)
	}
	if err := p.eng.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	rng := rand.New(rand.NewSource(46))
	if err := p.eng.Enroll("post", randVec(rng)); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if code := get(0, 1); code != http.StatusGone {
		t.Fatalf("compacted-away resume: %d, want 410", code)
	}
	if code := get(0, 4); code != http.StatusOK {
		t.Fatalf("seed-boundary resume: %d, want 200", code)
	}
}
