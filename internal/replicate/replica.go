package replicate

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"brainprint/internal/defense"
	"brainprint/internal/gallery"
	"brainprint/internal/gallery/live"
	"brainprint/internal/linalg"
)

// Options tunes a replica at Start time.
type Options struct {
	// Client is the HTTP client used against the primary (a default
	// client when nil; the replica manages per-request contexts, so the
	// client should not carry its own global timeout).
	Client *http.Client
	// Backoff is the initial reconnect delay after a stream error
	// (default 250ms), doubling up to MaxBackoff (default 5s).
	Backoff time.Duration
	// MaxBackoff caps the reconnect delay.
	MaxBackoff time.Duration
	// Poll is the idle window the replica asks a stream to stay open
	// for; it bounds the wall-clock staleness estimate (DefaultPoll
	// when zero).
	Poll time.Duration
	// CompactAfter triggers local compaction of the replica's own
	// directory once its log holds this many records (0 = manual only).
	// Local compaction does not disturb the sequence alignment with the
	// primary.
	CompactAfter int
	// Logf receives replica lifecycle messages (nil = silent).
	Logf func(format string, args ...any)
}

// withDefaults resolves zero values.
func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Backoff <= 0 {
		o.Backoff = 250 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = DefaultPoll
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Stats is a point-in-time snapshot of a replica's replication health,
// surfaced by /healthz and /v1/metrics on a replica server.
type Stats struct {
	// Primary is the upstream base URL.
	Primary string
	// Connected reports whether a stream to the primary is currently
	// open.
	Connected bool
	// Seq is the replica's own head sequence — the last mutation it
	// has durably applied.
	Seq int64
	// PrimarySeq is the primary's head sequence as of the last contact
	// (0 before the first).
	PrimarySeq int64
	// SeqLag is max(PrimarySeq - Seq, 0): how many mutations behind
	// the replica's reads are.
	SeqLag int64
	// Staleness is the wall-clock time since the replica last heard
	// from the primary — an upper bound on how old PrimarySeq is.
	Staleness time.Duration
	// Generation is the replica's local on-disk generation.
	Generation int
	// UpstreamGeneration is the primary generation whose log the
	// replica is tailing.
	UpstreamGeneration int
	// Bootstraps counts full snapshot bootstraps (including the initial
	// one) over the replica's lifetime.
	Bootstraps int64
	// Reconnects counts stream reconnect attempts after errors.
	Reconnects int64
	// LastError is the most recent replication error ("" when healthy).
	LastError string
}

// upstreamFile records the primary generation the replica's local log
// is a byte-for-byte retelling of, so a restart resumes against the
// right history.
const upstreamFile = "UPSTREAM"

// Replica is a read-only follower of a remote primary: a local live
// engine kept in sync by tailing the primary's write-ahead-log stream.
// It implements gallery.Engine (plus the precision and ANN knobs), so
// it drops into an attacker session and the HTTP service exactly like
// a local store; writes are refused upstream of it (the serve layer
// answers 405, because a replica session carries no mutable gallery).
type Replica struct {
	dir  string
	opts Options

	mu           sync.RWMutex
	primary      string
	eng          *live.Engine
	upstreamGen  int
	lastErr      string
	detached     bool
	streamCancel context.CancelFunc // breaks the in-flight stream on Repoint

	connected   atomic.Bool
	primarySeq  atomic.Int64
	lastContact atomic.Int64 // unix microseconds
	bootstraps  atomic.Int64
	reconnects  atomic.Int64

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// Start opens (or bootstraps) a replica of the primary at base URL
// primary into local directory dir and begins tailing in the
// background. If dir already holds a live directory with an upstream
// marker, it reopens locally and resumes from its own head sequence;
// otherwise it bootstraps a full snapshot of the primary's current
// generation. Close stops the tail and releases the engine.
func Start(primary, dir string, opts Options) (*Replica, error) {
	if _, err := url.Parse(primary); err != nil || !strings.Contains(primary, "://") {
		return nil, fmt.Errorf("replicate: primary %q is not an absolute URL", primary)
	}
	r := &Replica{
		dir:  dir,
		opts: opts.withDefaults(),
		done: make(chan struct{}),
	}
	r.primary = strings.TrimRight(primary, "/")
	r.ctx, r.cancel = context.WithCancel(context.Background())
	if gen, err := readUpstream(dir); err == nil {
		eng, err := live.Open(dir, live.Options{CompactAfter: r.opts.CompactAfter})
		if err != nil {
			r.cancel()
			return nil, fmt.Errorf("replicate: reopening local replica state: %w", err)
		}
		if st := eng.Stats(); st.RecoveredTornBytes > 0 {
			r.opts.Logf("replica: recovered a torn log tail (%d bytes truncated); resuming from sequence %d", st.RecoveredTornBytes, st.Seq)
		}
		r.eng, r.upstreamGen = eng, gen
	} else {
		eng, gen, err := r.bootstrap(r.ctx)
		if err != nil {
			r.cancel()
			return nil, err
		}
		r.eng, r.upstreamGen = eng, gen
	}
	go r.loop()
	return r, nil
}

// Close stops the replication tail and closes the local engine.
// In-flight queries finish normally. After Detach the engine's
// ownership has moved to the caller, so Close stops nothing but the
// (already finished) tail and leaves the engine open.
func (r *Replica) Close() error {
	r.cancel()
	<-r.done
	r.mu.RLock()
	eng, detached := r.eng, r.detached
	r.mu.RUnlock()
	if detached {
		return nil
	}
	return eng.Close()
}

// Detach stops the replication tail cleanly and hands the local live
// engine to the caller — the promotion path. The engine keeps serving
// queries throughout (the tail stops, nothing is closed or swapped) and
// its mutation sequence continues from the replicated head, so the
// first post-promotion write gets the next sequence number the old
// primary would have assigned. The upstream marker is removed, making
// the directory a first-class primary: a restart opens it writable
// instead of resuming a tail. Detach is one-way; a second call (or a
// later Repoint) fails.
func (r *Replica) Detach() (*live.Engine, error) {
	r.cancel()
	<-r.done
	r.mu.Lock()
	if r.detached {
		r.mu.Unlock()
		return nil, fmt.Errorf("replicate: replica already detached")
	}
	r.detached = true
	eng := r.eng
	r.mu.Unlock()
	r.connected.Store(false)
	if err := os.Remove(filepath.Join(r.dir, upstreamFile)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("replicate: removing upstream marker: %w", err)
	}
	return eng, nil
}

// Repoint retargets the replica at a new primary (a post-failover
// topology change: the old primary died and a sibling was promoted).
// The in-flight stream is broken immediately and the tail reconnects
// against the new upstream; the sequence scheme decides whether it can
// resume from its own head or must re-bootstrap — a promoted sibling
// was at least as caught up as this replica, so resume is the common
// case, and a primary that compacted past this replica's position
// triggers the usual 410 → fresh-snapshot path.
func (r *Replica) Repoint(primary string) error {
	if _, err := url.Parse(primary); err != nil || !strings.Contains(primary, "://") {
		return fmt.Errorf("replicate: new primary %q is not an absolute URL", primary)
	}
	r.mu.Lock()
	if r.detached {
		r.mu.Unlock()
		return fmt.Errorf("replicate: replica already detached")
	}
	r.primary = strings.TrimRight(primary, "/")
	cancel := r.streamCancel
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	r.opts.Logf("replica: repointed at %s", primary)
	return nil
}

// primaryURL reads the current upstream base URL.
func (r *Replica) primaryURL() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.primary
}

// Stats reports the replica's current replication health.
func (r *Replica) Stats() Stats {
	r.mu.RLock()
	eng := r.eng
	upstream := r.upstreamGen
	lastErr := r.lastErr
	primary := r.primary
	r.mu.RUnlock()
	st := eng.Stats()
	out := Stats{
		Primary:            primary,
		Connected:          r.connected.Load(),
		Seq:                st.Seq,
		PrimarySeq:         r.primarySeq.Load(),
		Generation:         st.Generation,
		UpstreamGeneration: upstream,
		Bootstraps:         r.bootstraps.Load(),
		Reconnects:         r.reconnects.Load(),
		LastError:          lastErr,
	}
	if out.PrimarySeq > out.Seq {
		out.SeqLag = out.PrimarySeq - out.Seq
	}
	if lc := r.lastContact.Load(); lc > 0 {
		out.Staleness = time.Duration(time.Now().UnixMicro()-lc) * time.Microsecond
	}
	return out
}

// Engine returns the replica's current local engine — a snapshot: a
// concurrent re-bootstrap may swap it, so hold the result only within
// one logical operation.
func (r *Replica) Engine() *live.Engine {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.eng
}

// ---- background tail ----

// loop reconnects the stream with exponential backoff until Close,
// re-bootstrapping from a fresh snapshot when the primary no longer
// retains the needed history.
func (r *Replica) loop() {
	defer close(r.done)
	backoff := r.opts.Backoff
	for {
		if r.ctx.Err() != nil {
			return
		}
		err := r.tailOnce(r.ctx)
		switch {
		case err == nil:
			backoff = r.opts.Backoff // clean poll cycle: reconnect immediately
			continue
		case r.ctx.Err() != nil:
			return
		case errors.Is(err, ErrHistoryGone):
			r.setErr(err)
			r.connected.Store(false)
			r.opts.Logf("replica: %v; re-bootstrapping from a fresh snapshot", err)
			if rerr := r.rebootstrap(r.ctx); rerr != nil {
				r.setErr(rerr)
				r.opts.Logf("replica: re-bootstrap failed: %v", rerr)
			} else {
				backoff = r.opts.Backoff
				continue
			}
		default:
			r.setErr(err)
			r.connected.Store(false)
			r.reconnects.Add(1)
		}
		select {
		case <-r.ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > r.opts.MaxBackoff {
			backoff = r.opts.MaxBackoff
		}
	}
}

// tailOnce opens one stream and applies frames until it ends. A nil
// return is a clean end (idle poll window, primary generation switch,
// repoint, or shutdown): the caller reconnects immediately — against
// the new upstream, if the URL changed meanwhile.
func (r *Replica) tailOnce(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	r.mu.Lock()
	eng := r.eng
	upstream := r.upstreamGen
	primary := r.primary
	r.streamCancel = cancel
	r.mu.Unlock()
	seq := eng.Stats().Seq
	u := fmt.Sprintf("%s%s?gen=%d&after=%d", primary, PathWAL, upstream, seq)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		if ctx.Err() != nil && parent.Err() == nil {
			return nil // repointed mid-dial: reconnect against the new upstream
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	pgen, err := strconv.Atoi(resp.Header.Get(HeaderGeneration))
	if err != nil {
		return fmt.Errorf("%w: stream missing %s header", ErrBadState, HeaderGeneration)
	}
	if pseq, err := strconv.ParseInt(resp.Header.Get(HeaderSeq), 10, 64); err == nil {
		r.primarySeq.Store(pseq)
	}
	r.lastContact.Store(time.Now().UnixMicro())
	r.connected.Store(true)
	r.setErr(nil)
	if pgen != upstream {
		if err := r.setUpstream(pgen); err != nil {
			return err
		}
	}
	br := bufio.NewReader(resp.Body)
	maxPayload := MaxPayload(eng.Features())
	for {
		frame, err := ReadFrame(br, maxPayload)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if ctx.Err() != nil {
				if parent.Err() == nil {
					return nil // repointed mid-stream: reconnect cleanly
				}
				return ctx.Err()
			}
			return fmt.Errorf("replication stream: %w", err)
		}
		if err := eng.ApplyReplicated(frame); err != nil {
			// A frame that does not apply means this replica's history
			// has diverged from the primary's — only a fresh snapshot
			// reconverges.
			return fmt.Errorf("%w: applying frame: %v", ErrHistoryGone, err)
		}
		r.lastContact.Store(time.Now().UnixMicro())
		if s := eng.Stats().Seq; s > r.primarySeq.Load() {
			r.primarySeq.Store(s)
		}
	}
}

// setErr records the most recent replication error for Stats.
func (r *Replica) setErr(err error) {
	r.mu.Lock()
	if err == nil {
		r.lastErr = ""
	} else {
		r.lastErr = err.Error()
	}
	r.mu.Unlock()
}

// setUpstream persists and records the primary generation the stream
// switched to.
func (r *Replica) setUpstream(gen int) error {
	if err := writeUpstream(r.dir, gen); err != nil {
		return err
	}
	r.mu.Lock()
	r.upstreamGen = gen
	r.mu.Unlock()
	return nil
}

// ---- bootstrap ----

// bootstrap copies the primary's current generation byte-for-byte into
// the replica directory and opens it. Any previous local state is
// removed first; the CURRENT pointer is written last, so a crash
// mid-bootstrap leaves a directory the next Start simply re-bootstraps.
func (r *Replica) bootstrap(ctx context.Context) (*live.Engine, int, error) {
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return nil, 0, err
	}
	st, err := r.fetchState(ctx)
	if err != nil {
		return nil, 0, err
	}
	if st.WALVersion != live.WALVersion {
		return nil, 0, fmt.Errorf("%w: primary speaks write-ahead log version %d, this replica %d", ErrBadState, st.WALVersion, live.WALVersion)
	}
	if err := wipeLocal(r.dir); err != nil {
		return nil, 0, err
	}
	for _, f := range st.Files {
		if err := r.fetchFile(ctx, f.Name, f.Size); err != nil {
			return nil, 0, err
		}
	}
	if err := r.fetchFile(ctx, st.WAL, st.WALBytes); err != nil {
		return nil, 0, err
	}
	if err := writeUpstream(r.dir, st.Generation); err != nil {
		return nil, 0, err
	}
	if err := live.WriteCurrentFile(r.dir, st.Generation); err != nil {
		return nil, 0, err
	}
	eng, err := live.Open(r.dir, live.Options{CompactAfter: r.opts.CompactAfter})
	if err != nil {
		return nil, 0, fmt.Errorf("replicate: opening bootstrapped snapshot: %w", err)
	}
	if got := eng.Stats().Seq; got != st.Seq {
		eng.Close()
		return nil, 0, fmt.Errorf("%w: bootstrapped snapshot replays to sequence %d, state said %d", ErrBadState, got, st.Seq)
	}
	r.bootstraps.Add(1)
	r.primarySeq.Store(st.Seq)
	r.lastContact.Store(time.Now().UnixMicro())
	r.opts.Logf("replica: bootstrapped generation %d at sequence %d (%d files)", st.Generation, st.Seq, len(st.Files)+1)
	return eng, st.Generation, nil
}

// rebootstrap replaces the local state with a fresh snapshot while the
// superseded engine keeps serving queries: its records live in memory
// and its log handle survives the unlink, so reads never block on the
// download. The swap carries the scan precision and ANN fan-out over.
func (r *Replica) rebootstrap(ctx context.Context) error {
	r.mu.RLock()
	old := r.eng
	r.mu.RUnlock()
	prec := old.Precision()
	nprobe := old.ANNProbe()
	eng, gen, err := r.bootstrap(ctx)
	if err != nil {
		return err
	}
	if prec != gallery.ScanFloat64 {
		if serr := eng.SetPrecision(prec); serr != nil {
			r.opts.Logf("replica: re-applying scan precision after re-bootstrap: %v", serr)
		}
	}
	if nprobe > 0 {
		if serr := eng.SetANNProbe(nprobe); serr != nil {
			r.opts.Logf("replica: re-applying ANN fan-out after re-bootstrap: %v", serr)
		}
	}
	r.mu.Lock()
	r.eng, r.upstreamGen = eng, gen
	r.mu.Unlock()
	old.Close()
	return nil
}

// fetchState downloads and parses the primary's state document.
func (r *Replica) fetchState(ctx context.Context) (State, error) {
	var st State
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.primaryURL()+PathState, nil)
	if err != nil {
		return st, err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, statusError(resp)
	}
	if err := decodeJSON(resp.Body, &st); err != nil {
		return st, fmt.Errorf("%w: %v", ErrBadState, err)
	}
	if st.Features <= 0 || st.WAL == "" {
		return st, fmt.Errorf("%w: implausible state document %+v", ErrBadState, st)
	}
	return st, nil
}

// fetchFile downloads one generation file to the replica directory and
// fsyncs it, verifying the byte count.
func (r *Replica) fetchFile(ctx context.Context, name string, size int64) error {
	if name != filepath.Base(name) {
		return fmt.Errorf("%w: state names file %q outside the directory", ErrBadState, name)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.primaryURL()+PathFile+"?name="+url.QueryEscape(name), nil)
	if err != nil {
		return err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	f, err := os.OpenFile(filepath.Join(r.dir, name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	n, err := io.Copy(f, io.LimitReader(resp.Body, size+1))
	if err != nil {
		f.Close()
		return err
	}
	if n != size {
		f.Close()
		return fmt.Errorf("%w: file %s is %d bytes, state said %d", ErrBadState, name, n, size)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// wipeLocal removes any previous replica state (generation files, the
// CURRENT pointer, the upstream marker) ahead of a fresh bootstrap.
// Open handles on removed files keep working — POSIX unlink semantics —
// so a superseded engine serves on undisturbed.
func wipeLocal(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		name := ent.Name()
		if name == "CURRENT" || name == upstreamFile || strings.HasPrefix(name, "live.g") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeUpstream persists the primary generation marker.
func writeUpstream(dir string, gen int) error {
	tmp := filepath.Join(dir, upstreamFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "%d\n", gen); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, upstreamFile))
}

// readUpstream parses the primary generation marker.
func readUpstream(dir string) (int, error) {
	b, err := os.ReadFile(filepath.Join(dir, upstreamFile))
	if err != nil {
		return 0, err
	}
	gen, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || gen < 0 {
		return 0, fmt.Errorf("replicate: corrupt %s file: %q", upstreamFile, strings.TrimSpace(string(b)))
	}
	return gen, nil
}

// ---- gallery.Engine delegation ----

// Len returns the number of visible enrolled subjects.
func (r *Replica) Len() int { return r.Engine().Len() }

// Features returns the fingerprint dimensionality.
func (r *Replica) Features() int { return r.Engine().Features() }

// FeatureIndex returns the raw-space feature indices, or nil.
func (r *Replica) FeatureIndex() []int { return r.Engine().FeatureIndex() }

// Defense returns the anonymization pipeline the replicated base
// store was built under, or nil. Replicas copy the primary's
// generation files byte-for-byte, so the descriptor travels with the
// manifest and /healthz on a replica reports the same pipeline as the
// primary.
func (r *Replica) Defense() *defense.Descriptor { return r.Engine().Defense() }

// IDs returns the visible subject IDs in canonical order.
func (r *Replica) IDs() []string { return r.Engine().IDs() }

// ID returns the subject ID at canonical index i.
func (r *Replica) ID(i int) string { return r.Engine().ID(i) }

// Index returns the canonical index of a subject ID, or -1.
func (r *Replica) Index(id string) int { return r.Engine().Index(id) }

// TopKCtx ranks the k enrolled subjects most correlated with the
// probe, best first — bit-identical to the primary's answer at the
// same sequence number.
func (r *Replica) TopKCtx(ctx context.Context, probe []float64, k, parallelism int) ([]gallery.Candidate, error) {
	return r.Engine().TopKCtx(ctx, probe, k, parallelism)
}

// QueryAllCtx answers a batch of probes, one ranked top-k list per
// probe.
func (r *Replica) QueryAllCtx(ctx context.Context, probes *linalg.Matrix, k, parallelism int) ([][]gallery.Candidate, error) {
	return r.Engine().QueryAllCtx(ctx, probes, k, parallelism)
}

// DenseSimilarityCtx materializes the full subjects×probes similarity
// matrix.
func (r *Replica) DenseSimilarityCtx(ctx context.Context, probes *linalg.Matrix, parallelism int) (*linalg.Matrix, error) {
	return r.Engine().DenseSimilarityCtx(ctx, probes, parallelism)
}

// SetPrecision selects the local base scan precision (see the live
// engine; scores stay bit-identical).
func (r *Replica) SetPrecision(p gallery.ScanPrecision) error { return r.Engine().SetPrecision(p) }

// Precision reports the local base scan precision.
func (r *Replica) Precision() gallery.ScanPrecision { return r.Engine().Precision() }

// SetANNProbe selects the IVF cell fan-out of the local base scan
// (requires the primary's generation to carry an ANN sidecar, which
// bootstrap copies).
func (r *Replica) SetANNProbe(nprobe int) error { return r.Engine().SetANNProbe(nprobe) }

// ANNProbe reports the active cell fan-out (0 = exact).
func (r *Replica) ANNProbe() int { return r.Engine().ANNProbe() }

// HasANNIndex reports whether the local base carries an IVF sidecar.
func (r *Replica) HasANNIndex() bool { return r.Engine().HasANNIndex() }

var (
	_ gallery.Engine          = (*Replica)(nil)
	_ gallery.PrecisionSetter = (*Replica)(nil)
	_ gallery.ANNSetter       = (*Replica)(nil)
)

// decodeJSON decodes one JSON document.
func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}
