// Package stats provides the descriptive statistics and correlation
// measures used throughout the attack pipeline: means and variances,
// z-scoring, Pearson and Spearman correlation, regression error metrics
// and accuracy summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x (dividing by n), or 0
// for slices with fewer than one element.
func Variance(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(n)
}

// SampleVariance returns the unbiased sample variance (dividing by n−1),
// or 0 for slices with fewer than two elements.
func SampleVariance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// SampleStdDev returns the sample standard deviation of x.
func SampleStdDev(x []float64) float64 { return math.Sqrt(SampleVariance(x)) }

// MinMax returns the minimum and maximum of x.
// It panics on an empty slice.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// ZScore standardizes x in place to zero mean and unit population
// standard deviation. A constant series is centred but left unscaled,
// and false is returned to flag the degenerate case.
func ZScore(x []float64) bool {
	m := Mean(x)
	sd := StdDev(x)
	if sd == 0 {
		for i := range x {
			x[i] -= m
		}
		return false
	}
	inv := 1 / sd
	for i := range x {
		x[i] = (x[i] - m) * inv
	}
	return true
}

// ZScored returns a standardized copy of x, leaving x untouched.
func ZScored(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	ZScore(out)
	return out
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns 0 when either series is constant, and an error when the
// lengths differ or are zero.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: Pearson length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) == 0 {
		return 0, fmt.Errorf("stats: Pearson of empty series")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation between x and y,
// computed as the Pearson correlation of the (mid-)ranks.
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: Spearman length mismatch %d vs %d", len(x), len(y))
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns the 1-based ranks of x, assigning the average rank to
// ties (midranks).
func Ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Covariance returns the population covariance between x and y.
func Covariance(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: Covariance length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) == 0 {
		return 0, nil
	}
	mx, my := Mean(x), Mean(y)
	var s float64
	for i := range x {
		s += (x[i] - mx) * (y[i] - my)
	}
	return s / float64(len(x)), nil
}

// RMSE returns the root mean squared error between predictions and
// targets. It returns an error on length mismatch or empty input.
func RMSE(pred, target []float64) (float64, error) {
	if len(pred) != len(target) {
		return 0, fmt.Errorf("stats: RMSE length mismatch %d vs %d", len(pred), len(target))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("stats: RMSE of empty input")
	}
	var s float64
	for i := range pred {
		d := pred[i] - target[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred))), nil
}

// NRMSE returns the RMSE normalized by the range (max−min) of the
// targets, as the paper's Table 1 reports ("normalized root-mean-squared
// error", expressed as a fraction; multiply by 100 for percent).
// It returns an error if the target range is zero.
func NRMSE(pred, target []float64) (float64, error) {
	r, err := RMSE(pred, target)
	if err != nil {
		return 0, err
	}
	lo, hi := MinMax(target)
	if hi == lo {
		return 0, fmt.Errorf("stats: NRMSE undefined for constant targets")
	}
	return r / (hi - lo), nil
}

// Summary holds a mean ± standard-deviation pair, the format the paper
// uses for repeated-trial results.
type Summary struct {
	Mean, Std float64
	N         int
}

// Summarize computes the mean and sample standard deviation of the
// trials.
func Summarize(trials []float64) Summary {
	return Summary{Mean: Mean(trials), Std: SampleStdDev(trials), N: len(trials)}
}

// String renders the summary as "mean ± std" with two decimals, matching
// the paper's presentation.
func (s Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f", s.Mean, s.Std)
}

// FisherZ applies the Fisher z-transform atanh(r) to a correlation,
// clamping |r| slightly below 1 to keep the result finite.
func FisherZ(r float64) float64 {
	const clamp = 1 - 1e-12
	if r > clamp {
		r = clamp
	} else if r < -clamp {
		r = -clamp
	}
	return math.Atanh(r)
}

// FisherZInv inverts the Fisher z-transform.
func FisherZInv(z float64) float64 { return math.Tanh(z) }

// Argmax returns the index of the largest element of x.
// It panics on an empty slice.
func Argmax(x []float64) int {
	if len(x) == 0 {
		panic("stats: Argmax of empty slice")
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of x using linear
// interpolation between order statistics. It panics on an empty slice.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		panic("stats: Percentile of empty slice")
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
