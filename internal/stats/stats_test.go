package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Mean(x); got != 2.5 {
		t.Errorf("Mean = %v want 2.5", got)
	}
	if got := Variance(x); !almostEqual(got, 1.25, 1e-12) {
		t.Errorf("Variance = %v want 1.25", got)
	}
	if got := SampleVariance(x); !almostEqual(got, 5.0/3, 1e-12) {
		t.Errorf("SampleVariance = %v want 5/3", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || SampleVariance([]float64{1}) != 0 {
		t.Error("degenerate cases should return 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v,%v want -1,7", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(empty) should panic")
		}
	}()
	MinMax(nil)
}

func TestZScore(t *testing.T) {
	x := []float64{2, 4, 6, 8}
	if !ZScore(x) {
		t.Fatal("ZScore returned false for non-constant input")
	}
	if !almostEqual(Mean(x), 0, 1e-12) || !almostEqual(StdDev(x), 1, 1e-12) {
		t.Errorf("after ZScore: mean=%v sd=%v", Mean(x), StdDev(x))
	}
	c := []float64{5, 5, 5}
	if ZScore(c) {
		t.Error("ZScore of constant series should return false")
	}
	if c[0] != 0 {
		t.Error("constant series should be centred to 0")
	}
}

func TestZScoredDoesNotMutate(t *testing.T) {
	x := []float64{1, 2, 3}
	_ = ZScored(x)
	if x[0] != 1 {
		t.Error("ZScored mutated its input")
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	r, err := Pearson(x, y)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, %v want 1", r, err)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(x, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson = %v want -1", r)
	}
}

func TestPearsonConstantAndErrors(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Errorf("constant Pearson = %v,%v want 0,nil", r, err)
	}
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := Pearson(nil, nil); err == nil {
		t.Error("expected empty input error")
	}
}

func TestPearsonInvariantToAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = x[i] + 0.5*rng.NormFloat64()
	}
	r1, _ := Pearson(x, y)
	scaled := make([]float64, len(y))
	for i, v := range y {
		scaled[i] = 3*v + 7
	}
	r2, _ := Pearson(x, scaled)
	if !almostEqual(r1, r2, 1e-12) {
		t.Errorf("Pearson not affine invariant: %v vs %v", r1, r2)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ranks[%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125} // monotone but nonlinear
	r, err := Spearman(x, y)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("Spearman = %v,%v want 1", r, err)
	}
}

func TestCovariance(t *testing.T) {
	c, err := Covariance([]float64{1, 2, 3}, []float64{4, 6, 8})
	if err != nil || !almostEqual(c, 4.0/3, 1e-12) {
		t.Errorf("Covariance = %v,%v want 4/3", c, err)
	}
	if _, err := Covariance([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected mismatch error")
	}
}

func TestRMSEAndNRMSE(t *testing.T) {
	r, err := RMSE([]float64{1, 2}, []float64{1, 4})
	if err != nil || !almostEqual(r, math.Sqrt(2), 1e-12) {
		t.Errorf("RMSE = %v,%v", r, err)
	}
	n, err := NRMSE([]float64{1, 2}, []float64{1, 3})
	if err != nil || !almostEqual(n, math.Sqrt(0.5)/2, 1e-12) {
		t.Errorf("NRMSE = %v,%v", n, err)
	}
	if _, err := NRMSE([]float64{1, 1}, []float64{2, 2}); err == nil {
		t.Error("expected constant-target error")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("expected empty error")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{90, 92, 94})
	if !almostEqual(s.Mean, 92, 1e-12) || s.N != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestFisherZRoundTrip(t *testing.T) {
	for _, r := range []float64{-0.9, -0.5, 0, 0.3, 0.99} {
		if got := FisherZInv(FisherZ(r)); !almostEqual(got, r, 1e-9) {
			t.Errorf("round trip %v -> %v", r, got)
		}
	}
	if math.IsInf(FisherZ(1), 0) || math.IsInf(FisherZ(-1), 0) {
		t.Error("FisherZ should clamp at ±1")
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax([]float64{1, 5, 3}); got != 1 {
		t.Errorf("Argmax = %d want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Argmax(empty) should panic")
		}
	}()
	Argmax(nil)
}

func TestPercentile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := Percentile(x, 50); got != 3 {
		t.Errorf("P50 = %v want 3", got)
	}
	if got := Percentile(x, 0); got != 1 {
		t.Errorf("P0 = %v want 1", got)
	}
	if got := Percentile(x, 100); got != 5 {
		t.Errorf("P100 = %v want 5", got)
	}
	if got := Percentile(x, 25); got != 2 {
		t.Errorf("P25 = %v want 2", got)
	}
}

// Property: Pearson correlation is bounded in [−1, 1].
func TestQuickPearsonBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r, err := Pearson(x, y)
		return err == nil && r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Pearson is symmetric in its arguments.
func TestQuickPearsonSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		a, _ := Pearson(x, y)
		b, _ := Pearson(y, x)
		return almostEqual(a, b, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: ranks are a permutation of 1..n when there are no ties.
func TestQuickRanksPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() // ties essentially impossible
		}
		r := Ranks(x)
		var sum float64
		for _, v := range r {
			sum += v
		}
		want := float64(n*(n+1)) / 2
		return almostEqual(sum, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
