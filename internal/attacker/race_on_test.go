//go:build race

package attacker

// raceEnabled reports whether the race detector instruments this test
// binary; timing assertions widen under it (see cancelBudget).
const raceEnabled = true
