package attacker

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"brainprint/internal/core"
	"brainprint/internal/gallery"
	"brainprint/internal/linalg"
	"brainprint/internal/match"
	"brainprint/internal/synth"
)

// cancelBudget is the wall-clock bound on a cancelled run: the 1s
// acceptance criterion normally, widened under the race detector whose
// ~10× instrumentation slowdown (plus CI contention) makes sub-second
// wall-clock assertions flaky without changing what is being proven —
// that in-flight chunks drain promptly after cancellation.
func cancelBudget() time.Duration {
	if raceEnabled {
		return 5 * time.Second
	}
	return time.Second
}

// randGroup builds a deterministic features×subjects matrix.
func randGroup(features, subjects int, seed int64) *linalg.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := linalg.NewMatrix(features, subjects)
	raw := m.RawData()
	for i := range raw {
		raw[i] = rng.NormFloat64()
	}
	return m
}

// testSession enrolls the leverage fingerprints of a random known group
// and returns the session plus the known and probe groups (raw space).
func testSession(t *testing.T, topK int, opts ...Option) (*Attacker, *linalg.Matrix, *linalg.Matrix) {
	t.Helper()
	known := randGroup(400, 24, 1)
	// Correlated probes: known plus noise, so ranking is nontrivial.
	probes := randGroup(400, 24, 2)
	kraw := known.RawData()
	praw := probes.RawData()
	for i := range praw {
		praw[i] = kraw[i] + 0.5*praw[i]
	}
	cfg := core.DefaultAttackConfig()
	cfg.Features = 80
	fps, idx, err := core.Fingerprints(known, cfg)
	if err != nil {
		t.Fatalf("Fingerprints: %v", err)
	}
	g := gallery.WithFeatureIndex(idx)
	ids := make([]string, fps.Cols())
	for i := range ids {
		ids[i] = fmt.Sprintf("s%03d", i)
	}
	if err := g.EnrollMatrix(ids, fps); err != nil {
		t.Fatalf("EnrollMatrix: %v", err)
	}
	a, err := New(g, append([]Option{WithConfig(cfg), WithTopK(topK)}, opts...)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a, known, probes
}

// TestIdentifyBatchBitIdentical is the acceptance check of the session
// redesign: IdentifyBatch scores must equal Gallery.QueryAll and the
// corresponding entries of match.SimilarityMatrix bit for bit, at every
// parallelism setting.
func TestIdentifyBatchBitIdentical(t *testing.T) {
	a, known, probes := testSession(t, 3)
	cfg := a.Config()

	// Reference 1: the dense similarity matrix of the stateless attack
	// on the reduced feature space.
	res, err := core.Deanonymize(known, probes, cfg)
	if err != nil {
		t.Fatalf("Deanonymize: %v", err)
	}

	// Reference 2: the gallery query engine.
	wantRanked, err := a.Gallery().QueryAllCtx(context.Background(), probes, 3, 0)
	if err != nil {
		t.Fatalf("QueryAll: %v", err)
	}

	for _, parallelism := range []int{1, 0, 3} {
		s, err := New(a.Gallery(), WithConfig(cfg), WithTopK(3), WithParallelism(parallelism))
		if err != nil {
			t.Fatalf("New(parallelism=%d): %v", parallelism, err)
		}
		batch, err := s.IdentifyBatch(context.Background(), probes)
		if err != nil {
			t.Fatalf("IdentifyBatch(parallelism=%d): %v", parallelism, err)
		}
		if len(batch.Ranked) != len(wantRanked) {
			t.Fatalf("parallelism=%d: %d probes, want %d", parallelism, len(batch.Ranked), len(wantRanked))
		}
		for j, top := range batch.Ranked {
			for r, cand := range top {
				if want := wantRanked[j][r]; cand != want {
					t.Fatalf("parallelism=%d probe %d rank %d: %+v != QueryAll %+v", parallelism, j, r, cand, want)
				}
				if sim := res.Similarity.At(cand.Index, j); cand.Score != sim {
					t.Fatalf("parallelism=%d probe %d rank %d: score %v != SimilarityMatrix %v (not bit-identical)",
						parallelism, j, r, cand.Score, sim)
				}
			}
			if top[0].Index != res.Predictions[j] {
				t.Fatalf("parallelism=%d probe %d: argmax %d != dense attack prediction %d",
					parallelism, j, top[0].Index, res.Predictions[j])
			}
		}
	}
}

func TestIdentifySingleProbe(t *testing.T) {
	a, _, probes := testSession(t, 5)
	top, err := a.Identify(context.Background(), probes.Col(7))
	if err != nil {
		t.Fatalf("Identify: %v", err)
	}
	if len(top) != 5 {
		t.Fatalf("got %d candidates, want 5", len(top))
	}
	// Must agree with the batch engine for the same probe.
	batch, err := a.IdentifyBatch(context.Background(), probes)
	if err != nil {
		t.Fatalf("IdentifyBatch: %v", err)
	}
	for r := range top {
		if top[r] != batch.Ranked[7][r] {
			t.Fatalf("rank %d: single %+v != batch %+v", r, top[r], batch.Ranked[7][r])
		}
	}
}

func TestIdentifyStream(t *testing.T) {
	a, _, probes := testSession(t, 2, WithParallelism(3))
	_, n := probes.Dims()
	in := make(chan Probe)
	go func() {
		defer close(in)
		for j := 0; j < n; j++ {
			in <- Probe{ID: fmt.Sprintf("probe-%02d", j), Vector: probes.Col(j)}
		}
	}()
	got := map[string][]gallery.Candidate{}
	for r := range a.IdentifyStream(context.Background(), in) {
		if r.Err != nil {
			t.Fatalf("stream result %s: %v", r.Probe.ID, r.Err)
		}
		got[r.Probe.ID] = r.Candidates
	}
	if len(got) != n {
		t.Fatalf("stream returned %d results, want %d", len(got), n)
	}
	for j := 0; j < n; j++ {
		want, err := a.Identify(context.Background(), probes.Col(j))
		if err != nil {
			t.Fatalf("Identify: %v", err)
		}
		id := fmt.Sprintf("probe-%02d", j)
		for r := range want {
			if got[id][r] != want[r] {
				t.Fatalf("%s rank %d: stream %+v != Identify %+v", id, r, got[id][r], want[r])
			}
		}
	}
}

func TestIdentifyStreamCancel(t *testing.T) {
	a, _, probes := testSession(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan Probe) // never closed: only cancellation can end the stream
	out := a.IdentifyStream(ctx, in)
	in <- Probe{ID: "p0", Vector: probes.Col(0)}
	<-out
	cancel()
	start := time.Now()
	for range out { // must drain and close promptly, not deadlock
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("stream took %v to close after cancel", elapsed)
	}
}

func TestAssignment(t *testing.T) {
	a, _, probes := testSession(t, 1, WithAssignment(true), WithTopK(3))
	batch, err := a.IdentifyBatch(context.Background(), probes)
	if err != nil {
		t.Fatalf("IdentifyBatch: %v", err)
	}
	// The assignment path derives rankings from the dense matrix; they
	// must be identical to the query engine's.
	wantRanked, err := a.Gallery().QueryAllCtx(context.Background(), probes, 3, 0)
	if err != nil {
		t.Fatalf("QueryAll: %v", err)
	}
	for j := range wantRanked {
		for r := range wantRanked[j] {
			if batch.Ranked[j][r] != wantRanked[j][r] {
				t.Fatalf("probe %d rank %d: dense-derived %+v != QueryAll %+v",
					j, r, batch.Ranked[j][r], wantRanked[j][r])
			}
		}
	}
	_, n := probes.Dims()
	if len(batch.Assignment) != n {
		t.Fatalf("assignment length %d, want %d", len(batch.Assignment), n)
	}
	seen := make([]bool, n)
	for _, idx := range batch.Assignment {
		if idx < 0 || idx >= n || seen[idx] {
			t.Fatalf("assignment %v is not a permutation", batch.Assignment)
		}
		seen[idx] = true
	}
	// The bijection must reproduce the Hungarian run on the dense
	// similarity matrix.
	sim, err := a.Gallery().DenseSimilarityCtx(context.Background(), probes, 0)
	if err != nil {
		t.Fatalf("DenseSimilarity: %v", err)
	}
	want, err := match.AssignmentMatch(sim)
	if err != nil {
		t.Fatalf("AssignmentMatch: %v", err)
	}
	for j := range want {
		if batch.Assignment[j] != want[j] {
			t.Fatalf("assignment[%d] = %d, want %d", j, batch.Assignment[j], want[j])
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(nil, WithTopK(0)); err == nil {
		t.Error("WithTopK(0) accepted")
	}
	if _, err := New(nil, WithTimeout(-time.Second)); err == nil {
		t.Error("negative WithTimeout accepted")
	}
	a, err := New(nil, WithParallelism(-3))
	if err != nil {
		t.Fatalf("WithParallelism(-3): %v", err)
	}
	if a.Parallelism() != 0 {
		t.Errorf("negative parallelism not clamped: %d", a.Parallelism())
	}
}

func TestNoGallery(t *testing.T) {
	a, err := New(nil)
	if err != nil {
		t.Fatalf("New(nil): %v", err)
	}
	if _, err := a.Identify(context.Background(), []float64{1, 2}); !errors.Is(err, ErrNoGallery) {
		t.Errorf("Identify without gallery: %v", err)
	}
	if _, err := a.IdentifyBatch(context.Background(), linalg.NewMatrix(2, 2)); !errors.Is(err, ErrNoGallery) {
		t.Errorf("IdentifyBatch without gallery: %v", err)
	}
	in := make(chan Probe, 1)
	in <- Probe{ID: "p", Vector: []float64{1, 2}}
	close(in)
	r := <-a.IdentifyStream(context.Background(), in)
	if !errors.Is(r.Err, ErrNoGallery) {
		t.Errorf("stream without gallery: %v", r.Err)
	}
}

func TestSessionTimeout(t *testing.T) {
	a, _, probes := testSession(t, 1)
	s, err := New(a.Gallery(), WithConfig(a.Config()), WithTimeout(time.Nanosecond))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	time.Sleep(time.Millisecond) // let the 1ns budget expire deterministically
	if _, err := s.Identify(context.Background(), probes.Col(0)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Identify under expired session timeout: %v", err)
	}
}

// smallHCP generates a small HCP-like cohort for registry tests.
func smallHCP(t *testing.T) *synth.HCPCohort {
	t.Helper()
	p := synth.DefaultHCPParams()
	p.Subjects = 8
	p.Regions = 30
	p.RestFrames = 120
	p.TaskFrames = 90
	c, err := synth.GenerateHCP(p)
	if err != nil {
		t.Fatalf("GenerateHCP: %v", err)
	}
	return c
}

func smallADHD(t *testing.T) *synth.ADHDCohort {
	t.Helper()
	p := synth.DefaultADHDParams()
	p.Controls = 8
	p.Subtype1 = 5
	p.Subtype2 = 0
	p.Subtype3 = 4
	p.Regions = 36
	p.Frames = 120
	c, err := synth.GenerateADHD(p)
	if err != nil {
		t.Fatalf("GenerateADHD: %v", err)
	}
	return c
}

func TestRunExperimentRegistry(t *testing.T) {
	cfg := core.DefaultAttackConfig()
	cfg.Features = 60
	a, err := New(nil, WithConfig(cfg))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := a.RunExperiment(context.Background(), "fig1", Input{HCP: smallHCP(t)})
	if err != nil {
		t.Fatalf("RunExperiment(fig1): %v", err)
	}
	if res.Render() == "" {
		t.Error("empty rendering")
	}
	if _, err := a.RunExperiment(context.Background(), "fig99", Input{}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := a.RunExperiment(context.Background(), "fig1", Input{}); err == nil {
		t.Error("missing HCP cohort accepted")
	}
	if _, err := a.RunExperiment(context.Background(), "fig7", Input{}); err == nil {
		t.Error("missing ADHD cohort accepted")
	}
}

func TestRegistryShape(t *testing.T) {
	names := Names()
	want := []string{"fig1", "fig2", "fig5", "fig6", "table1", "fig7", "fig8", "fig9", "table2", "defense", "gallery-defense"}
	if len(names) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(names), len(want))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	for _, e := range Experiments() {
		if e.Synopsis == "" {
			t.Errorf("experiment %q has no synopsis", e.Name)
		}
		if !e.NeedsHCP && !e.NeedsADHD && e.Name != "gallery-defense" {
			// gallery-defense synthesizes its own cohort; every other
			// experiment must declare at least one input cohort.
			t.Errorf("experiment %q declares no cohorts", e.Name)
		}
		if _, ok := Find(e.Name); !ok {
			t.Errorf("Find(%q) failed", e.Name)
		}
	}
}

// TestRunExperimentPreCancelled: a cancelled context never starts work.
func TestRunExperimentPreCancelled(t *testing.T) {
	a, err := New(nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := a.RunExperiment(ctx, "table2", Input{HCP: smallHCP(t), ADHD: smallADHD(t), Trials: 50}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunExperiment: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-cancelled abort took %v", elapsed)
	}
}

// TestRunExperimentMidRunCancel is the acceptance criterion: cancelling
// mid-run aborts a long experiment in well under a second, where the
// full grid (3 noise levels × 400 trials) would take minutes.
func TestRunExperimentMidRunCancel(t *testing.T) {
	cfg := core.DefaultAttackConfig()
	cfg.Features = 60
	cfg.Parallelism = 2
	a, err := New(nil, WithConfig(cfg))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	in := Input{HCP: smallHCP(t), ADHD: smallADHD(t), Trials: 400, Seed: 3}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = a.RunExperiment(ctx, "table2", in)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
	}
	if budget := cancelBudget(); elapsed > budget {
		t.Fatalf("mid-run cancel took %v, want < %v", elapsed, budget)
	}
}

// TestDeanonymizeCancelPaperScale cancels the dense attack at the
// paper's dimensions (64620 features × 100 subjects) and requires the
// abort inside a second — the serial sweep alone costs ~650M multiplies.
func TestDeanonymizeCancelPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale matrices")
	}
	cfg := core.AttackConfig{Features: 0, Parallelism: 1} // full space, serial
	a, err := New(nil, WithConfig(cfg))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	known := randGroup(64620, 100, 11)
	anon := randGroup(64620, 100, 12)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = a.Deanonymize(ctx, known, anon)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if budget := cancelBudget(); elapsed > budget {
		t.Fatalf("paper-scale abort took %v, want < %v", elapsed, budget)
	}
}

// TestIdentifyBatchCancelled covers the gallery path under cancellation.
func TestIdentifyBatchCancelled(t *testing.T) {
	a, _, probes := testSession(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.IdentifyBatch(ctx, probes); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled IdentifyBatch: %v", err)
	}
	if _, err := a.Identify(ctx, probes.Col(0)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Identify: %v", err)
	}
}
