// Package attacker implements the stateful, context-aware session API
// of the reproduction. The paper's threat model (§2) is inherently a
// long-lived session: an adversary enrolls one de-anonymized dataset
// once and then re-identifies subjects in any number of anonymized
// releases. An Attacker owns that state — the enrolled fingerprint
// gallery, the attack configuration, and the execution knobs — and
// serves every probe, batch, stream, and whole-experiment request under
// a context.Context, so callers (the CLI, the HTTP service, tests) get
// cancellation, per-request deadlines, and shared worker-pool backing
// without re-plumbing configuration through free functions.
//
// Construction uses functional options:
//
//	a, err := attacker.New(g,
//		attacker.WithConfig(cfg),
//		attacker.WithParallelism(8),
//		attacker.WithTopK(5),
//		attacker.WithAssignment(true))
//
// All identification scores are bit-identical to the stateless
// pipeline (gallery.QueryAll / match.SimilarityMatrix) at any
// parallelism setting; the session adds lifecycle, not arithmetic.
package attacker

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"

	"brainprint/internal/core"
	"brainprint/internal/gallery"
	"brainprint/internal/linalg"
	"brainprint/internal/match"
	"brainprint/internal/parallel"
)

// ErrNoGallery is returned by identification methods of a session built
// without an enrolled gallery (experiment-only sessions pass nil).
var ErrNoGallery = errors.New("attacker: session has no enrolled gallery")

// Attacker is a long-lived identification session: an enrolled gallery
// engine plus the attack configuration, shared by every query it
// serves. The engine may be a single-file gallery or a sharded store
// (internal/gallery/shard) — the session is written against
// gallery.Engine and never cares which. The zero value is not usable;
// construct with New. An Attacker is safe for concurrent use once
// constructed — all state is read-only after New.
type Attacker struct {
	gallery    gallery.Engine
	mutable    gallery.Mutable // non-nil only when built WithMutableGallery
	cfg        core.AttackConfig
	topK       int
	assignment bool
	timeout    time.Duration
	prec       gallery.ScanPrecision
	precSet    bool
	nprobe     int
	nprobeSet  bool
}

// Option configures an Attacker during New. Options are applied in
// order, so later options override earlier ones (WithParallelism after
// WithConfig overrides the config's Parallelism field).
type Option func(*Attacker) error

// WithConfig sets the attack configuration (feature selection and the
// parallelism knob) used by experiments and, where applicable, queries.
func WithConfig(cfg core.AttackConfig) Option {
	return func(a *Attacker) error {
		a.cfg = cfg
		return nil
	}
}

// WithParallelism bounds the worker count of every sweep the session
// runs: 0 = all cores, 1 = serial, n = n workers. Results are identical
// at any setting.
func WithParallelism(n int) Option {
	return func(a *Attacker) error {
		if n < 0 {
			n = 0
		}
		a.cfg.Parallelism = n
		return nil
	}
}

// WithTopK sets how many ranked candidates each identification returns
// (default 1, the paper's argmax prediction).
func WithTopK(k int) Option {
	return func(a *Attacker) error {
		if k <= 0 {
			return fmt.Errorf("attacker: WithTopK(%d): k must be positive", k)
		}
		a.topK = k
		return nil
	}
}

// WithAssignment enables the optimal one-to-one assignment
// (Hungarian) on batch identifications: IdentifyBatch additionally
// returns a bijective probe→subject assignment, the strengthening of
// the paper's independent argmax that applies when both datasets cover
// the same population. Requires a square batch (as many probes as
// enrolled subjects).
func WithAssignment(on bool) Option {
	return func(a *Attacker) error {
		a.assignment = on
		return nil
	}
}

// WithMutableGallery enrolls a live, writable gallery engine
// (internal/gallery/live) as the session's gallery: every
// identification method queries it, and Mutable exposes its write
// surface so serving layers can accept online enrollment and deletion.
// The engine's own synchronization makes the session safe for
// concurrent use even while the gallery mutates underneath —
// identification sweeps snapshot the gallery for their duration, so
// each answer is consistent, and answers reflect every mutation
// committed before the sweep began. Overrides any engine passed to
// New.
func WithMutableGallery(m gallery.Mutable) Option {
	return func(a *Attacker) error {
		if isNilEngine(m) {
			return fmt.Errorf("attacker: WithMutableGallery(nil)")
		}
		a.gallery = m
		a.mutable = m
		return nil
	}
}

// WithTimeout sets a default per-call deadline applied to every
// Identify/IdentifyBatch/TaskPredict/RunExperiment invocation (0, the
// default, means none). An explicit earlier deadline on the caller's
// context still wins.
func WithTimeout(d time.Duration) Option {
	return func(a *Attacker) error {
		if d < 0 {
			return fmt.Errorf("attacker: WithTimeout(%v): negative timeout", d)
		}
		a.timeout = d
		return nil
	}
}

// WithScanPrecision selects the engine's candidate-scan precision
// (gallery.ScanFloat64, ScanFloat32, or ScanInt8). Reduced precisions
// only steer candidate SELECTION — every returned score is the exact
// float64 expression, bit-identical to the default scan (see DESIGN.md
// §8). The precision is applied once, after all options, to whichever
// engine the session ends up with; engines without the knob (the
// single-file gallery) accept only the default ScanFloat64.
func WithScanPrecision(p gallery.ScanPrecision) Option {
	return func(a *Attacker) error {
		switch p {
		case gallery.ScanFloat64, gallery.ScanFloat32, gallery.ScanInt8:
		default:
			return fmt.Errorf("attacker: WithScanPrecision(%d): unknown precision", uint8(p))
		}
		a.prec, a.precSet = p, true
		return nil
	}
}

// WithANN selects the engine's ANN cell fan-out: queries scan only the
// nprobe index cells nearest the probe instead of every record. 0 (the
// default) disables the index and scans exactly. The knob trades
// recall for speed, never score fidelity — every returned score is the
// exact float64 expression, bit-identical to the dense path, and
// nprobe at or above the index's cell count is bit-identical to the
// exact scan outright (see DESIGN.md §9). A positive nprobe requires
// an engine with a loaded IVF index (built by `gallery index` or
// live.Engine.BuildANN); the setting is applied once, after all
// options.
func WithANN(nprobe int) Option {
	return func(a *Attacker) error {
		if nprobe < 0 {
			return fmt.Errorf("attacker: WithANN(%d): nprobe must be non-negative", nprobe)
		}
		a.nprobe, a.nprobeSet = nprobe, true
		return nil
	}
}

// applyANN pushes a requested ANN fan-out to the session's engine
// after every option has applied.
func (a *Attacker) applyANN() error {
	if !a.nprobeSet {
		return nil
	}
	if a.gallery == nil {
		return fmt.Errorf("attacker: WithANN(%d): session has no gallery", a.nprobe)
	}
	as, ok := a.gallery.(gallery.ANNSetter)
	if !ok {
		if a.nprobe == 0 {
			return nil // every engine scans exactly by default
		}
		return fmt.Errorf("attacker: WithANN(%d): %T does not support ANN scans", a.nprobe, a.gallery)
	}
	return as.SetANNProbe(a.nprobe)
}

// applyPrecision pushes a requested scan precision to the session's
// engine after every option has applied.
func (a *Attacker) applyPrecision() error {
	if !a.precSet {
		return nil
	}
	if a.gallery == nil {
		return fmt.Errorf("attacker: WithScanPrecision(%v): session has no gallery", a.prec)
	}
	ps, ok := a.gallery.(gallery.PrecisionSetter)
	if !ok {
		if a.prec == gallery.ScanFloat64 {
			return nil // every engine scans exact by default
		}
		return fmt.Errorf("attacker: WithScanPrecision(%v): %T does not support scan precision selection", a.prec, a.gallery)
	}
	return ps.SetPrecision(a.prec)
}

// New builds a session over an enrolled gallery engine — a single-file
// *gallery.Gallery or a sharded *shard.Store. g may be nil for an
// experiment-only session (RunExperiment and TaskPredict work;
// identification methods return ErrNoGallery).
func New(g gallery.Engine, opts ...Option) (*Attacker, error) {
	if isNilEngine(g) {
		g = nil
	}
	a := &Attacker{gallery: g, cfg: core.DefaultAttackConfig(), topK: 1}
	for _, opt := range opts {
		if err := opt(a); err != nil {
			return nil, err
		}
	}
	if err := a.applyPrecision(); err != nil {
		return nil, err
	}
	if err := a.applyANN(); err != nil {
		return nil, err
	}
	return a, nil
}

// isNilEngine detects a typed-nil engine (a nil *gallery.Gallery passed
// through the interface parameter), which would otherwise dodge the
// ErrNoGallery guard and panic inside a query.
func isNilEngine(g gallery.Engine) bool {
	if g == nil {
		return true
	}
	v := reflect.ValueOf(g)
	return v.Kind() == reflect.Pointer && v.IsNil()
}

// Gallery returns the enrolled gallery engine (nil for experiment-only
// sessions).
func (a *Attacker) Gallery() gallery.Engine { return a.gallery }

// Mutable returns the session's writable gallery engine, or nil when
// the session was built over a read-only engine — the switch serving
// layers use to decide whether write endpoints exist.
func (a *Attacker) Mutable() gallery.Mutable { return a.mutable }

// Config returns the session's attack configuration.
func (a *Attacker) Config() core.AttackConfig { return a.cfg }

// TopK returns the per-identification candidate count.
func (a *Attacker) TopK() int { return a.topK }

// Parallelism returns the session's worker knob (0 = all cores).
func (a *Attacker) Parallelism() int { return a.cfg.Parallelism }

// deadline derives the working context: the session's default timeout
// when one is configured, the caller's context unchanged otherwise.
func (a *Attacker) deadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if a.timeout > 0 {
		return context.WithTimeout(ctx, a.timeout)
	}
	return ctx, func() {}
}

// Identify ranks the topK enrolled subjects most correlated with the
// probe, best first. The probe may be a gallery-space vector or a raw
// connectome vector when the gallery carries a feature index.
// Cancellation aborts the sweep between chunks and returns ctx.Err().
func (a *Attacker) Identify(ctx context.Context, probe []float64) ([]gallery.Candidate, error) {
	return a.IdentifyTopK(ctx, probe, a.topK)
}

// IdentifyTopK is Identify with an explicit per-call candidate count —
// the entry point serving layers use when a request overrides the
// session default.
func (a *Attacker) IdentifyTopK(ctx context.Context, probe []float64, k int) ([]gallery.Candidate, error) {
	if a.gallery == nil {
		return nil, ErrNoGallery
	}
	ctx, cancel := a.deadline(ctx)
	defer cancel()
	return a.gallery.TopKCtx(ctx, probe, k, a.cfg.Parallelism)
}

// BatchResult is the outcome of one batch identification.
type BatchResult struct {
	// Ranked holds, per probe column, the topK candidates best first.
	// Scores are bit-identical to Gallery.QueryAll and to the rows of
	// match.SimilarityMatrix at any parallelism setting.
	Ranked [][]gallery.Candidate
	// Assignment is the optimal one-to-one probe→subject matching
	// (Assignment[j] = enrolled index assigned to probe j); nil unless
	// the session was built WithAssignment(true).
	Assignment []int
}

// IdentifyBatch attacks a whole anonymized release at once: probes are
// the columns of a features×probes matrix. With WithAssignment(true)
// the result additionally carries the Hungarian bijection over the
// dense similarity matrix.
func (a *Attacker) IdentifyBatch(ctx context.Context, probes *linalg.Matrix) (*BatchResult, error) {
	return a.IdentifyBatchTopK(ctx, probes, a.topK, a.assignment)
}

// IdentifyBatchTopK is IdentifyBatch with an explicit per-call
// candidate count and assignment switch — the entry point serving
// layers use when a request overrides the session defaults. Scores are
// bit-identical to the session-default path at any parallelism.
//
// With assignment the gallery×probes correlations are computed exactly
// once: the dense matrix the Hungarian matching needs also yields the
// per-probe top-k (the scores are the same bits, per the gallery's
// equivalence contract), so the sweep is never run twice.
func (a *Attacker) IdentifyBatchTopK(ctx context.Context, probes *linalg.Matrix, k int, assignment bool) (*BatchResult, error) {
	if a.gallery == nil {
		return nil, ErrNoGallery
	}
	ctx, cancel := a.deadline(ctx)
	defer cancel()
	if !assignment {
		ranked, err := a.gallery.QueryAllCtx(ctx, probes, k, a.cfg.Parallelism)
		if err != nil {
			return nil, err
		}
		return &BatchResult{Ranked: ranked}, nil
	}
	if k <= 0 {
		return nil, fmt.Errorf("attacker: k=%d must be positive", k)
	}
	sim, err := a.gallery.DenseSimilarityCtx(ctx, probes, a.cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	res := &BatchResult{Ranked: a.rankedFromDense(sim, k)}
	if res.Assignment, err = match.AssignmentMatch(sim); err != nil {
		return nil, err
	}
	return res, nil
}

// rankedFromDense extracts the per-probe top-k from a gallery×probes
// similarity matrix with the query engine's exact ranking order (score
// descending, ties toward the lower canonical index).
func (a *Attacker) rankedFromDense(sim *linalg.Matrix, k int) [][]gallery.Candidate {
	n, m := sim.Dims()
	if k > n {
		k = n
	}
	outranks := func(x, y gallery.Candidate) bool {
		return x.Score > y.Score || (x.Score == y.Score && x.Index < y.Index)
	}
	out := make([][]gallery.Candidate, m)
	for j := 0; j < m; j++ {
		top := make([]gallery.Candidate, 0, k)
		for i := 0; i < n; i++ {
			top = gallery.RankInsert(top, gallery.Candidate{Index: i, ID: a.gallery.ID(i), Score: sim.At(i, j)}, k, outranks)
		}
		out[j] = top
	}
	return out
}

// Probe is one streamed identification request.
type Probe struct {
	// ID is an opaque caller label echoed back on the result.
	ID string
	// Vector is the probe fingerprint (gallery-space or raw).
	Vector []float64
}

// StreamResult is one streamed identification outcome.
type StreamResult struct {
	// Probe echoes the request (results arrive in completion order, not
	// submission order).
	Probe Probe
	// Candidates are the topK matches, best first; nil when Err is set.
	Candidates []gallery.Candidate
	// Err reports a per-probe failure (dimension mismatch, …) or the
	// context error that stopped the stream.
	Err error
}

// IdentifyStream attacks an unbounded probe stream: it consumes probes
// until the channel closes or ctx is cancelled, fanning work out over
// Parallelism workers, and sends one StreamResult per probe on the
// returned channel, which is closed when the stream drains. Results
// arrive in completion order; use Probe.ID to correlate. A cancelled
// context stops the workers promptly — probes already in flight finish,
// unread probes are dropped.
func (a *Attacker) IdentifyStream(ctx context.Context, probes <-chan Probe) <-chan StreamResult {
	workers := parallel.Workers(a.cfg.Parallelism)
	out := make(chan StreamResult, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case p, ok := <-probes:
					if !ok {
						return
					}
					var r StreamResult
					r.Probe = p
					if a.gallery == nil {
						r.Err = ErrNoGallery
					} else {
						// The outer fan-out owns the cores; each probe
						// sweeps serially, like Gallery.QueryAll.
						r.Candidates, r.Err = a.gallery.TopKCtx(ctx, p.Vector, a.topK, 1)
					}
					select {
					case out <- r:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// TaskPredict runs the §3.3.2 task-inference attack under the session's
// deadline: scans (rows of points) are embedded with t-SNE and
// anonymous scans take the label of their nearest known neighbour.
// Cancellation aborts between gradient iterations.
func (a *Attacker) TaskPredict(ctx context.Context, points *linalg.Matrix, labels []int, known []bool, cfg core.TaskPredictConfig) (*core.TaskPredictResult, error) {
	ctx, cancel := a.deadline(ctx)
	defer cancel()
	return core.TaskPredictCtx(ctx, points, labels, known, cfg)
}

// Deanonymize runs the §3.1 dense attack between two group matrices
// with the session's configuration — the stateless core attack, kept on
// the session so callers hold one object.
func (a *Attacker) Deanonymize(ctx context.Context, knownGroup, anonGroup *linalg.Matrix) (*core.AttackResult, error) {
	ctx, cancel := a.deadline(ctx)
	defer cancel()
	return core.DeanonymizeCtx(ctx, knownGroup, anonGroup, a.cfg)
}
