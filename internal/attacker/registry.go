package attacker

import (
	"context"
	"fmt"
	"strings"

	"brainprint/internal/core"
	"brainprint/internal/experiments"
	"brainprint/internal/synth"
	"brainprint/internal/tsne"
)

// Result is what every experiment returns: a structured result that can
// render the paper's artifact as text.
type Result interface {
	// Render prints the paper's artifact (ASCII heatmap, aligned
	// table, …) as text.
	Render() string
}

// Input carries the datasets and sweep parameters of one experiment
// run. Zero values mean "the defaults the CLI has always used"; the
// attack configuration itself (feature budget, selection method,
// parallelism) comes from the session, not the input.
type Input struct {
	// HCP is the HCP-like cohort (required when the experiment's spec
	// says NeedsHCP).
	HCP *synth.HCPCohort
	// ADHD is the ADHD-200-like cohort (required when NeedsADHD).
	ADHD *synth.ADHDCohort
	// Seed drives every randomized sweep of the experiment.
	Seed int64
	// Trials is the repeat count of resampled experiments (default 5).
	Trials int
	// KnownFraction is the labelled fraction for task clustering
	// (default 0.5, the paper's 50 known subjects).
	KnownFraction float64
	// TrainFraction is the train split of the transfer experiment
	// (default 0.7).
	TrainFraction float64
	// NoiseLevels are the Table 2 noise-variance fractions (default
	// 0.1, 0.2, 0.3, the paper's grid).
	NoiseLevels []float64
	// Sigmas are the defense sweep noise levels (default 0, 0.2, 0.4,
	// 0.8).
	Sigmas []float64
	// DefenseTopFeatures is the targeted-noise feature budget (default
	// twice the session's feature budget).
	DefenseTopFeatures int
	// TSNE overrides the t-SNE configuration of the clustering attack
	// (default perplexity 20, 400 iterations, seeded from Seed).
	TSNE *tsne.Config
	// Performance overrides the Table 1 regression configuration
	// (default: the session's feature budget, 4×Trials resampling
	// splits — the CLI's historical stabilizing multiplier — and Seed).
	Performance *core.PerformanceConfig
	// DefenseSubjects is the gallery-defense sweep cohort size
	// (default 1000).
	DefenseSubjects int
	// DefenseFeatures is the gallery-defense sweep fingerprint
	// dimensionality (default 96).
	DefenseFeatures int
	// DefenseClusters is the gallery-defense sweep task-label count
	// (default 8).
	DefenseClusters int
	// DefenseTopK is the gallery-defense sweep ranked-list depth
	// (default 5).
	DefenseTopK int
	// DefenseKSameKs is the gallery-defense k-same strength grid
	// (default 2, 5, 10).
	DefenseKSameKs []int
	// DefenseEpsilons is the gallery-defense DP-noise ε grid (default
	// 20, 8, 2).
	DefenseEpsilons []float64
}

// withDefaults resolves the zero values against the session config.
func (in Input) withDefaults(cfg core.AttackConfig) Input {
	if in.Trials <= 0 {
		in.Trials = 5
	}
	if in.KnownFraction <= 0 || in.KnownFraction >= 1 {
		in.KnownFraction = 0.5
	}
	if in.TrainFraction <= 0 || in.TrainFraction >= 1 {
		in.TrainFraction = 0.7
	}
	if len(in.NoiseLevels) == 0 {
		in.NoiseLevels = []float64{0.1, 0.2, 0.3}
	}
	if len(in.Sigmas) == 0 {
		in.Sigmas = []float64{0, 0.2, 0.4, 0.8}
	}
	if in.DefenseTopFeatures <= 0 {
		in.DefenseTopFeatures = 2 * cfg.Features
	}
	if in.TSNE == nil {
		in.TSNE = &tsne.Config{Perplexity: 20, Iterations: 400, Seed: in.Seed}
	}
	if in.Performance == nil {
		p := core.DefaultPerformanceConfig()
		p.Features = cfg.Features
		p.Trials = 4 * in.Trials
		p.Seed = in.Seed
		in.Performance = &p
	}
	return in
}

// Experiment is one registry entry: the single source of truth for the
// experiment's CLI name, its one-line synopsis, which cohorts it needs,
// and how to run it. The CLI derives its usage text and dispatch from
// this registry, so the two can never drift.
type Experiment struct {
	// Name is the CLI identifier (fig1, table2, defense, …).
	Name string
	// Synopsis is a one-line description for usage text.
	Synopsis string
	// NeedsHCP declares that Run requires an HCP-like cohort, letting
	// callers generate expensive cohorts lazily.
	NeedsHCP bool
	// NeedsADHD declares that Run requires an ADHD-like cohort.
	NeedsADHD bool

	run func(ctx context.Context, a *Attacker, in Input) (Result, error)
}

// Run executes the experiment after validating its inputs.
func (e Experiment) Run(ctx context.Context, a *Attacker, in Input) (Result, error) {
	if e.NeedsHCP && in.HCP == nil {
		return nil, fmt.Errorf("attacker: experiment %q needs an HCP cohort", e.Name)
	}
	if e.NeedsADHD && in.ADHD == nil {
		return nil, fmt.Errorf("attacker: experiment %q needs an ADHD cohort", e.Name)
	}
	return e.run(ctx, a, in.withDefaults(a.cfg))
}

// registry lists every experiment in the canonical "all" execution
// order.
var registry = []Experiment{
	{
		Name: "fig1", Synopsis: "resting-state pairwise similarity (Figure 1)", NeedsHCP: true,
		run: func(ctx context.Context, a *Attacker, in Input) (Result, error) {
			return experiments.Figure1(ctx, in.HCP, a.cfg)
		},
	},
	{
		Name: "fig2", Synopsis: "language-task pairwise similarity (Figure 2)", NeedsHCP: true,
		run: func(ctx context.Context, a *Attacker, in Input) (Result, error) {
			return experiments.Figure2(ctx, in.HCP, a.cfg)
		},
	},
	{
		Name: "fig5", Synopsis: "cross-task identification accuracy matrix (Figure 5)", NeedsHCP: true,
		run: func(ctx context.Context, a *Attacker, in Input) (Result, error) {
			return experiments.Figure5(ctx, in.HCP, a.cfg)
		},
	},
	{
		Name: "fig6", Synopsis: "t-SNE task clustering and prediction (Figure 6)", NeedsHCP: true,
		run: func(ctx context.Context, a *Attacker, in Input) (Result, error) {
			return experiments.Figure6(ctx, in.HCP, in.KnownFraction, *in.TSNE, in.Seed)
		},
	},
	{
		Name: "table1", Synopsis: "task-performance prediction error (Table 1)", NeedsHCP: true,
		run: func(ctx context.Context, a *Attacker, in Input) (Result, error) {
			return experiments.Table1(ctx, in.HCP, *in.Performance)
		},
	},
	{
		Name: "fig7", Synopsis: "ADHD subtype-1 inter-session similarity (Figure 7)", NeedsADHD: true,
		run: func(ctx context.Context, a *Attacker, in Input) (Result, error) {
			return experiments.Figure7(ctx, in.ADHD, a.cfg)
		},
	},
	{
		Name: "fig8", Synopsis: "ADHD subtype-3 inter-session similarity (Figure 8)", NeedsADHD: true,
		run: func(ctx context.Context, a *Attacker, in Input) (Result, error) {
			return experiments.Figure8(ctx, in.ADHD, a.cfg)
		},
	},
	{
		Name: "fig9", Synopsis: "full ADHD cohort with leverage transfer (Figure 9)", NeedsADHD: true,
		run: func(ctx context.Context, a *Attacker, in Input) (Result, error) {
			return experiments.Figure9(ctx, in.ADHD, a.cfg, in.Trials, in.TrainFraction, in.Seed)
		},
	},
	{
		Name: "table2", Synopsis: "multi-site noise robustness sweep (Table 2)", NeedsHCP: true, NeedsADHD: true,
		run: func(ctx context.Context, a *Attacker, in Input) (Result, error) {
			return experiments.Table2(ctx, in.HCP, in.ADHD, in.NoiseLevels, in.Trials, a.cfg, in.Seed)
		},
	},
	{
		Name: "defense", Synopsis: "targeted vs uniform release-noise defense (§4)", NeedsHCP: true,
		run: func(ctx context.Context, a *Attacker, in Input) (Result, error) {
			return experiments.DefenseSweep(ctx, in.HCP, in.Sigmas, in.DefenseTopFeatures, a.cfg, in.Seed)
		},
	},
	{
		Name: "gallery-defense", Synopsis: "gallery anonymization attack-vs-utility sweep (k-same, DP noise)",
		run: func(ctx context.Context, a *Attacker, in Input) (Result, error) {
			return experiments.GalleryDefenseSweep(ctx, experiments.GalleryDefenseConfig{
				Subjects:    in.DefenseSubjects,
				Features:    in.DefenseFeatures,
				Clusters:    in.DefenseClusters,
				TopK:        in.DefenseTopK,
				KSameKs:     in.DefenseKSameKs,
				Epsilons:    in.DefenseEpsilons,
				Parallelism: a.cfg.Parallelism,
				Seed:        in.Seed,
			})
		},
	},
}

// Experiments returns every registered experiment in canonical order.
// The returned slice is a copy.
func Experiments() []Experiment {
	return append([]Experiment(nil), registry...)
}

// Names returns the experiment names in canonical order.
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	return names
}

// Find returns the experiment registered under name.
func Find(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunExperiment runs one registered experiment by name under the
// session's configuration and deadline. Unknown names list the valid
// ones; a cancelled context aborts the sweep between grid cells and
// surfaces ctx.Err().
func (a *Attacker) RunExperiment(ctx context.Context, name string, in Input) (Result, error) {
	e, ok := Find(name)
	if !ok {
		return nil, fmt.Errorf("attacker: unknown experiment %q (want one of %s)", name, strings.Join(Names(), ", "))
	}
	ctx, cancel := a.deadline(ctx)
	defer cancel()
	return e.Run(ctx, a, in)
}
