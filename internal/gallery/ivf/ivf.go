// Package ivf is the inverted-file (IVF) coarse index behind the
// sharded gallery's approximate scan: k-means centroids trained over
// the z-scored fingerprints partition the records into cells, each
// shard keeps one posting list of local record indices per cell, and a
// query scans only the nprobe cells whose centroids score best against
// the probe — sub-linear candidate selection at population scale,
// where every exact engine is a full linear sweep.
//
// Geometry. Every stored fingerprint is z-scored, so all records lie
// on the radius-√F sphere (Σx² = F exactly). On that sphere the
// Euclidean k-means assignment argmin‖v−c‖² is equivalent to
// argmax(v·c − ‖c‖²/2): the ‖v‖² term is constant across cells. Cell
// assignment and cell probing therefore both rank by the same
// dot-product expression the scan kernels compute, and the cells an
// index probes are exactly the cells whose members score highest on
// average — consistent with the engine's correlation ranking.
//
// Determinism. Training is bit-reproducible at any parallelism:
// initialization draws from a splitmix64-derived seed
// (parallel.DeriveSeed), Lloyd iterations accumulate per-cell sums via
// parallel.ReduceCtx with a fixed grain (the fold order is chunk
// order, independent of the worker count), and assignment ties break
// toward the lower cell id. Two builds from the same records and seed
// produce identical centroids and identical posting lists.
//
// Exactness. The index only restricts WHICH records are scored; it
// never changes HOW they are scored. The shard store's IVF scan paths
// reuse the blocked kernels and the exact-float64 rescore discipline,
// so every returned score is bit-identical to the dense path — the
// approximation is confined to the candidate set, and the recall gate
// in CI measures exactly that (see DESIGN.md §9).
package ivf

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"brainprint/internal/gallery"
	"brainprint/internal/parallel"
)

// DefaultNProbe is the cell fan-out the CLI/serve -ann flag and the
// attacker session's WithANN(0) resolve to: wide enough that the CI
// recall gate holds recall@10 ≥ 0.99 on the clustered 10k cohort,
// narrow enough to keep the 1M scan ≥5× faster than exact.
const DefaultNProbe = 16

// Training geometry bounds. Cells are clamped so centroid training
// and the full assignment pass stay a small fraction of an exact scan
// even at 1M records; the sample cap bounds Lloyd's per-iteration cost
// independently of the gallery size.
const (
	minCells        = 4
	maxCellsDefault = 512
	samplePerCell   = 48
	maxLloydIters   = 12
	trainGrain      = 256  // samples per ReduceCtx chunk (fixed ⇒ deterministic)
	assignGrain     = 1024 // records per assignment chunk
)

// DefaultCells returns the trained cell count for n records when the
// caller does not choose one: ≈√n, clamped to [4, 512] (and to n).
func DefaultCells(n int) int {
	c := int(math.Ceil(math.Sqrt(float64(n))))
	c = max(c, minCells)
	c = min(c, maxCellsDefault)
	return min(c, n)
}

// Config tunes Build.
type Config struct {
	// Cells is the trained centroid count (0 = DefaultCells over the
	// total record count). At most one cell per record.
	Cells int
	// Seed is the deterministic training seed; builds with equal seeds
	// over equal records are bit-identical.
	Seed int64
	// Parallelism bounds the training workers (0 = all cores,
	// 1 = serial). The result is identical at any setting.
	Parallelism int
}

// Index is a trained IVF coarse index over one sharded gallery: the
// centroids, their cached half squared norms, and one posting list per
// (shard, cell) holding ascending local record indices. An Index is
// immutable after Build/Decode and safe for concurrent probing.
type Index struct {
	features  int
	cells     int
	seed      int64
	centroids []float64 // cells × features, row-major
	halfNorm  []float64 // ‖c‖²/2 per cell, derived
	counts    []int     // records per shard, as trained
	postings  [][][]uint32
	bk        *gallery.Blocked // centroid scan layout, derived
}

// Features returns the fingerprint dimensionality the index was
// trained over.
func (x *Index) Features() int { return x.features }

// Cells returns the trained centroid count.
func (x *Index) Cells() int { return x.cells }

// Seed returns the deterministic training seed, persisted so a
// rebuild (e.g. at live-engine compaction) can reuse it.
func (x *Index) Seed() int64 { return x.seed }

// Shards returns the shard count the index partitions.
func (x *Index) Shards() int { return len(x.counts) }

// ShardCount returns the record count of shard si as trained — the
// staleness check an opener compares against the store it loaded.
func (x *Index) ShardCount(si int) int { return x.counts[si] }

// Postings returns shard si's ascending local record indices assigned
// to cell c. The caller must not mutate the result.
func (x *Index) Postings(si, c int) []uint32 { return x.postings[si][c] }

// Centroid returns cell c's centroid, aliased — the caller must not
// mutate it.
func (x *Index) Centroid(c int) []float64 {
	return x.centroids[c*x.features : (c+1)*x.features]
}

// Build trains an index over the records of a sharded gallery: counts
// holds each shard's record count and fp returns the stored z-scored
// fingerprint at (shard, local index). Training samples min(total,
// cells·48) records, runs Lloyd iterations to convergence (at most
// 12), then assigns every record to its nearest cell in one full pass.
// The result depends only on the records, cfg.Cells, and cfg.Seed —
// never on cfg.Parallelism.
func Build(ctx context.Context, cfg Config, features int, counts []int, fp func(si, li int) []float64) (*Index, error) {
	if features <= 0 {
		return nil, fmt.Errorf("ivf: features %d must be positive", features)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("ivf: no shards")
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("ivf: negative shard record count %d", c)
		}
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("ivf: no records to index")
	}
	cells := cfg.Cells
	if cells == 0 {
		cells = DefaultCells(total)
	}
	if cells < 1 || cells > maxCells {
		return nil, fmt.Errorf("ivf: cell count %d out of range [1, %d]", cells, maxCells)
	}
	if cells > total {
		return nil, fmt.Errorf("ivf: cell count %d exceeds record count %d", cells, total)
	}

	samples := sampleRecords(cfg.Seed, features, counts, cells, fp)
	centroids, err := lloyd(ctx, cfg, features, cells, samples)
	if err != nil {
		return nil, err
	}
	x := &Index{
		features:  features,
		cells:     cells,
		seed:      cfg.Seed,
		centroids: centroids,
		counts:    append([]int(nil), counts...),
	}
	x.derive()
	if err := x.assignAll(ctx, cfg.Parallelism, fp); err != nil {
		return nil, err
	}
	return x, nil
}

// derive rebuilds the cached centroid scan layout and half squared
// norms from the centroid matrix (after Build or Decode).
func (x *Index) derive() {
	x.bk = gallery.NewBlocked(x.cells, x.features, x.Centroid)
	x.halfNorm = make([]float64, x.cells)
	for c := 0; c < x.cells; c++ {
		var n2 float64
		for _, v := range x.Centroid(c) {
			n2 += v * v
		}
		x.halfNorm[c] = n2 / 2
	}
}

// sampleRecords draws the deterministic training sample: all records
// when the gallery is small, otherwise cells·48 global indices chosen
// by a seeded permutation, materialized as one flat matrix.
func sampleRecords(seed int64, features int, counts []int, cells int, fp func(si, li int) []float64) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	cap_ := min(total, cells*samplePerCell)
	pick := make([]int, cap_)
	if cap_ == total {
		for i := range pick {
			pick[i] = i
		}
	} else {
		rng := rand.New(rand.NewSource(parallel.DeriveSeed(seed, 0x1BF5)))
		copy(pick, rng.Perm(total)[:cap_])
		sort.Ints(pick)
	}
	out := make([]float64, cap_*features)
	gi, si, li := 0, 0, 0
	for i, p := range pick {
		for p >= gi+counts[si]-li {
			gi += counts[si] - li
			si, li = si+1, 0
		}
		li += p - gi
		gi = p
		copy(out[i*features:(i+1)*features], fp(si, li))
	}
	return out
}

// lloyd runs deterministic k-means over the sample: seeded-permutation
// initialization, then at most maxLloydIters assignment/update rounds,
// stopping early once no sample changes cell. Assignment parallelizes
// over samples with a fixed grain; per-cell sums fold in chunk order,
// so centroids are bit-identical at any worker count.
func lloyd(ctx context.Context, cfg Config, features, cells int, samples []float64) ([]float64, error) {
	n := len(samples) / features
	sample := func(i int) []float64 { return samples[i*features : (i+1)*features] }

	rng := rand.New(rand.NewSource(parallel.DeriveSeed(cfg.Seed, 0x1BF6)))
	centroids := make([]float64, cells*features)
	for c, p := range rng.Perm(n)[:cells] {
		copy(centroids[c*features:(c+1)*features], sample(p))
	}

	type partial struct {
		sum   []float64
		count []int64
		moved int
	}
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < maxLloydIters; iter++ {
		bk := gallery.NewBlocked(cells, features, func(c int) []float64 {
			return centroids[c*features : (c+1)*features]
		})
		half := make([]float64, cells)
		for c := 0; c < cells; c++ {
			var n2 float64
			for _, v := range centroids[c*features : (c+1)*features] {
				n2 += v * v
			}
			half[c] = n2 / 2
		}
		acc, err := parallel.ReduceCtx(ctx, cfg.Parallelism, n, trainGrain, partial{},
			func(lo, hi int) partial {
				p := partial{sum: make([]float64, cells*features), count: make([]int64, cells)}
				scores := make([]float64, lanesUp(cells))
				for i := lo; i < hi; i++ {
					v := sample(i)
					c := int32(nearestCell(bk, half, v, scores))
					if assign[i] != c {
						p.moved++
					}
					assign[i] = c
					s := p.sum[int(c)*features : (int(c)+1)*features]
					for j, x := range v {
						s[j] += x
					}
					p.count[c]++
				}
				return p
			},
			func(acc, p partial) partial {
				if acc.sum == nil {
					return p
				}
				for i, v := range p.sum {
					acc.sum[i] += v
				}
				for i, v := range p.count {
					acc.count[i] += v
				}
				acc.moved += p.moved
				return acc
			},
		)
		if err != nil {
			return nil, err
		}
		for c := 0; c < cells; c++ {
			if acc.count[c] == 0 {
				continue // empty cell keeps its centroid
			}
			inv := 1 / float64(acc.count[c])
			dst := centroids[c*features : (c+1)*features]
			src := acc.sum[c*features : (c+1)*features]
			for j := range dst {
				dst[j] = src[j] * inv
			}
		}
		if acc.moved == 0 {
			break
		}
	}
	return centroids, nil
}

// assignAll runs the full assignment pass: every record of every shard
// scores against all centroids through the blocked kernel and joins
// its nearest cell's posting list (ascending local order by
// construction).
func (x *Index) assignAll(ctx context.Context, parallelism int, fp func(si, li int) []float64) error {
	x.postings = make([][][]uint32, len(x.counts))
	for si, count := range x.counts {
		cellOf := make([]int32, count)
		err := parallel.ForCtx(ctx, parallelism, count, assignGrain, func(lo, hi int) error {
			scores := make([]float64, lanesUp(x.cells))
			for li := lo; li < hi; li++ {
				cellOf[li] = int32(nearestCell(x.bk, x.halfNorm, fp(si, li), scores))
			}
			return nil
		})
		if err != nil {
			return err
		}
		lists := make([][]uint32, x.cells)
		sizes := make([]int, x.cells)
		for _, c := range cellOf {
			sizes[c]++
		}
		for c := range lists {
			lists[c] = make([]uint32, 0, sizes[c])
		}
		for li, c := range cellOf {
			lists[c] = append(lists[c], uint32(li))
		}
		x.postings[si] = lists
	}
	return nil
}

// nearestCell returns the cell whose centroid maximizes
// v·c − ‖c‖²/2, ties toward the lower cell id. scores is caller
// scratch of at least lanesUp(cells) float64s.
func nearestCell(bk *gallery.Blocked, halfNorm []float64, v []float64, scores []float64) int {
	d := scores[:lanesUp(len(halfNorm))]
	clear(d)
	bk.DotsF64(0, len(halfNorm), v, d)
	best, bestScore := 0, d[0]-halfNorm[0]
	for c := 1; c < len(halfNorm); c++ {
		if s := d[c] - halfNorm[c]; s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// RankCells returns the ids of the nprobe cells whose centroids score
// best against the z-scored gallery-space probe, best first, ties
// toward the lower cell id. nprobe larger than the cell count is
// clamped; nprobe ≥ Cells() therefore probes every cell, and — because
// the posting lists partition each shard — the candidate set equals
// the full record set, making the IVF scan bit-identical to exact.
func (x *Index) RankCells(zp []float64, nprobe int) []int {
	nprobe = min(nprobe, x.cells)
	d := make([]float64, lanesUp(x.cells))
	x.bk.DotsF64(0, x.cells, zp, d)
	for c := 0; c < x.cells; c++ {
		d[c] -= x.halfNorm[c]
	}
	order := make([]int, x.cells)
	for c := range order {
		order[c] = c
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		return d[a] > d[b] || (d[a] == d[b] && a < b)
	})
	return order[:nprobe]
}

// validate checks the structural invariants a decoded index must hold:
// per shard, the posting lists form an exact partition of the local
// index space — every local index appears in exactly one cell, each
// list strictly ascending.
func (x *Index) validate() error {
	for si, lists := range x.postings {
		count := x.counts[si]
		if len(lists) != x.cells {
			return fmt.Errorf("%w: shard %d has %d posting lists, index has %d cells", ErrCorrupt, si, len(lists), x.cells)
		}
		seen := make([]bool, count)
		n := 0
		for c, list := range lists {
			prev := -1
			for _, li := range list {
				if int64(li) >= int64(count) {
					return fmt.Errorf("%w: shard %d cell %d posts record %d beyond count %d", ErrCorrupt, si, c, li, count)
				}
				if int(li) <= prev {
					return fmt.Errorf("%w: shard %d cell %d posting list not strictly ascending", ErrCorrupt, si, c)
				}
				if seen[li] {
					return fmt.Errorf("%w: shard %d record %d posted twice", ErrCorrupt, si, li)
				}
				seen[li] = true
				prev = int(li)
				n++
			}
		}
		if n != count {
			return fmt.Errorf("%w: shard %d posts %d records, expects %d", ErrCorrupt, si, n, count)
		}
	}
	return nil
}

// lanesUp rounds a record count up to whole scan-lane blocks.
func lanesUp(n int) int {
	return (n + gallery.ScanLanes - 1) / gallery.ScanLanes * gallery.ScanLanes
}
