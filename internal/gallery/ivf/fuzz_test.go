package ivf

import (
	"bytes"
	"context"
	"testing"
)

// fuzzSeedSidecar renders a valid encoded sidecar to seed the corpus.
func fuzzSeedSidecar(tb testing.TB, cells int, counts []int) []byte {
	tb.Helper()
	const features = 6
	x, err := Build(context.Background(), Config{Cells: cells, Seed: 41},
		features, counts, testShards(43, features, counts))
	if err != nil {
		tb.Fatalf("seed sidecar: %v", err)
	}
	return x.Encode()
}

// FuzzDecodeIVF throws adversarial bytes at the sidecar decoder: no
// panics, allocation bounded by the bytes actually present (the forged
// shard-count guard), and any successfully decoded index must satisfy
// the partition invariant and re-encode to the identical byte stream.
func FuzzDecodeIVF(f *testing.F) {
	plain := fuzzSeedSidecar(f, 3, []int{15, 9})
	f.Add(plain)
	f.Add(fuzzSeedSidecar(f, 1, []int{4}))
	f.Add(plain[:20])                // torn header
	f.Add(plain[:len(plain)-5])      // torn shard section
	f.Add([]byte("BPIVFIX\x00\x01")) // magic then garbage
	f.Add([]byte{})
	mut := append([]byte(nil), plain...)
	mut[9] ^= 0x01 // version flip (caught by the header CRC)
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if x.Features() <= 0 || x.Cells() <= 0 || x.Shards() <= 0 {
			t.Fatalf("decoded inconsistent index: features=%d cells=%d shards=%d",
				x.Features(), x.Cells(), x.Shards())
		}
		if err := x.validate(); err != nil {
			t.Fatalf("decoded index fails its own partition invariant: %v", err)
		}
		if !bytes.Equal(x.Encode(), data) {
			t.Fatal("decoded index does not re-encode to the identical stream")
		}
	})
}
