package ivf

import (
	"context"
	"math/rand"
	"testing"

	"brainprint/internal/linalg"
)

// testShards builds deterministic per-shard record sets; the returned
// closure is the fingerprint provider Build expects.
func testShards(seed int64, features int, counts []int) func(si, li int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	recs := make([][][]float64, len(counts))
	for si, n := range counts {
		recs[si] = make([][]float64, n)
		for li := range recs[si] {
			v := make([]float64, features)
			for f := range v {
				v[f] = rng.NormFloat64()
			}
			recs[si][li] = v
		}
	}
	return func(si, li int) []float64 { return recs[si][li] }
}

func buildIndex(t testing.TB, cfg Config, features int, counts []int, dataSeed int64) *Index {
	t.Helper()
	x, err := Build(context.Background(), cfg, features, counts, testShards(dataSeed, features, counts))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return x
}

func TestDefaultCellsBounds(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1},    // clamp-to-n beats the floor
		{3, 3},    // ditto
		{4, 4},    // floor
		{16, 4},   // √16 = floor
		{100, 10}, // √n regime
		{101, 11}, // ceil
		{10_000, 100},
		{262_144, 512},   // √n hits the cap exactly
		{1_000_000, 512}, // cap
	} {
		if got := DefaultCells(tc.n); got != tc.want {
			t.Errorf("DefaultCells(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	ctx := context.Background()
	fp := testShards(1, 8, []int{10})
	if _, err := Build(ctx, Config{}, 0, []int{10}, fp); err == nil {
		t.Error("Build(features=0) succeeded")
	}
	if _, err := Build(ctx, Config{}, 8, nil, fp); err == nil {
		t.Error("Build(no shards) succeeded")
	}
	if _, err := Build(ctx, Config{}, 8, []int{0, 0}, func(si, li int) []float64 { return nil }); err == nil {
		t.Error("Build(no records) succeeded")
	}
	if _, err := Build(ctx, Config{}, 8, []int{10, -1}, fp); err == nil {
		t.Error("Build(negative count) succeeded")
	}
	if _, err := Build(ctx, Config{Cells: 11}, 8, []int{10}, fp); err == nil {
		t.Error("Build(cells > records) succeeded")
	}
	if _, err := Build(ctx, Config{Cells: maxCells + 1}, 8, []int{10}, fp); err == nil {
		t.Error("Build(cells > maxCells) succeeded")
	}
}

// TestBuildDeterministicAcrossParallelism pins the core training
// contract: the trained index depends only on the records, the cell
// count, and the seed — never on the worker count.
func TestBuildDeterministicAcrossParallelism(t *testing.T) {
	const features = 24
	counts := []int{40, 25, 35}
	ref := buildIndex(t, Config{Cells: 8, Seed: 7, Parallelism: 1}, features, counts, 11)
	for _, par := range []int{0, 3} {
		x := buildIndex(t, Config{Cells: 8, Seed: 7, Parallelism: par}, features, counts, 11)
		for c := 0; c < ref.Cells(); c++ {
			want, got := ref.Centroid(c), x.Centroid(c)
			for f := range want {
				if got[f] != want[f] {
					t.Fatalf("par=%d cell %d feature %d: centroid %v != %v (not bit-identical)",
						par, c, f, got[f], want[f])
				}
			}
		}
		for si := range counts {
			for c := 0; c < ref.Cells(); c++ {
				want, got := ref.Postings(si, c), x.Postings(si, c)
				if len(got) != len(want) {
					t.Fatalf("par=%d shard %d cell %d: %d postings != %d", par, si, c, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("par=%d shard %d cell %d entry %d: %d != %d", par, si, c, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestBuildPartitionsEveryRecord asserts the partition invariant from
// the outside: per shard, every local index appears in exactly one
// posting list and lists are strictly ascending.
func TestBuildPartitionsEveryRecord(t *testing.T) {
	counts := []int{57, 1, 42}
	x := buildIndex(t, Config{Cells: 6, Seed: 3}, 16, counts, 13)
	if x.Shards() != len(counts) {
		t.Fatalf("Shards() = %d, want %d", x.Shards(), len(counts))
	}
	for si, count := range counts {
		if x.ShardCount(si) != count {
			t.Fatalf("ShardCount(%d) = %d, want %d", si, x.ShardCount(si), count)
		}
		seen := make([]bool, count)
		for c := 0; c < x.Cells(); c++ {
			prev := -1
			for _, li := range x.Postings(si, c) {
				if int(li) >= count {
					t.Fatalf("shard %d cell %d posts %d beyond count %d", si, c, li, count)
				}
				if int(li) <= prev {
					t.Fatalf("shard %d cell %d posting list not strictly ascending", si, c)
				}
				if seen[li] {
					t.Fatalf("shard %d record %d posted twice", si, li)
				}
				seen[li] = true
				prev = int(li)
			}
		}
		for li, ok := range seen {
			if !ok {
				t.Fatalf("shard %d record %d never posted", si, li)
			}
		}
	}
}

// TestRankCellsOrderAndClamp checks the probe-side ranking: scores are
// non-increasing under the v·c − ‖c‖²/2 measure, ties break toward the
// lower cell id, a small nprobe is a prefix of the full ranking, and an
// oversized nprobe clamps to the cell count.
func TestRankCellsOrderAndClamp(t *testing.T) {
	const features = 12
	counts := []int{80}
	x := buildIndex(t, Config{Cells: 9, Seed: 5}, features, counts, 17)
	probe := make([]float64, features)
	rng := rand.New(rand.NewSource(19))
	for f := range probe {
		probe[f] = rng.NormFloat64()
	}
	score := func(c int) float64 {
		cent := x.Centroid(c)
		return linalg.Dot(probe, cent) - 0.5*linalg.Dot(cent, cent)
	}
	full := x.RankCells(probe, x.Cells()+100)
	if len(full) != x.Cells() {
		t.Fatalf("oversized nprobe returned %d cells, want %d", len(full), x.Cells())
	}
	seen := map[int]bool{}
	for i, c := range full {
		if c < 0 || c >= x.Cells() || seen[c] {
			t.Fatalf("rank %d: invalid or repeated cell %d", i, c)
		}
		seen[c] = true
		if i > 0 {
			prev := full[i-1]
			sp, sc := score(prev), score(c)
			if sc > sp || (sc == sp && c < prev) {
				t.Fatalf("ranking violated at %d: cell %d (%.6f) after cell %d (%.6f)", i, c, sc, prev, sp)
			}
		}
	}
	short := x.RankCells(probe, 3)
	if len(short) != 3 {
		t.Fatalf("RankCells(3) returned %d cells", len(short))
	}
	for i := range short {
		if short[i] != full[i] {
			t.Fatalf("RankCells(3)[%d] = %d, not a prefix of the full ranking (%d)", i, short[i], full[i])
		}
	}
}

// TestBuildSeedSensitivity: different seeds train different centroids,
// so the persisted seed genuinely pins the index identity.
func TestBuildSeedSensitivity(t *testing.T) {
	counts := []int{120}
	a := buildIndex(t, Config{Cells: 8, Seed: 1}, 16, counts, 23)
	b := buildIndex(t, Config{Cells: 8, Seed: 2}, 16, counts, 23)
	for c := 0; c < a.Cells(); c++ {
		ca, cb := a.Centroid(c), b.Centroid(c)
		for f := range ca {
			if ca[f] != cb[f] {
				return // differs somewhere — good
			}
		}
	}
	t.Fatal("seeds 1 and 2 trained bit-identical centroids")
}

// TestDefaultCellsUsedWhenUnset: Cells=0 resolves through DefaultCells
// over the total record count across shards.
func TestDefaultCellsUsedWhenUnset(t *testing.T) {
	counts := []int{60, 40} // total 100 → 10 cells
	x := buildIndex(t, Config{Seed: 9}, 8, counts, 29)
	if want := DefaultCells(100); x.Cells() != want {
		t.Fatalf("Cells() = %d, want DefaultCells(100) = %d", x.Cells(), want)
	}
	if x.Seed() != 9 {
		t.Fatalf("Seed() = %d, want 9", x.Seed())
	}
	if x.Features() != 8 {
		t.Fatalf("Features() = %d, want 8", x.Features())
	}
}

// TestBuildCancellation: a cancelled context aborts training.
func TestBuildCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	counts := []int{500}
	_, err := Build(ctx, Config{Cells: 16, Seed: 1}, 32, counts, testShards(31, 32, counts))
	if err == nil {
		t.Fatal("Build with a cancelled context succeeded")
	}
}

func TestSidecarPathSuffix(t *testing.T) {
	for _, db := range []string{"g.bpm", "/tmp/x/hcp.bpg"} {
		if got := SidecarPath(db); got != db+".ivf" {
			t.Errorf("SidecarPath(%q) = %q", db, got)
		}
	}
}
