package ivf

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"brainprint/internal/gallery"
	"brainprint/internal/linalg"
)

// The sidecar codec. An index persists beside its gallery database as
// "<db>.ivf" with the same discipline as the gallery, manifest, and
// WAL codecs: a fixed magic, an explicit version, little-endian
// integers, and CRC-32 (IEEE) checksums — one over the header, one
// over the centroid matrix, one per shard's posting section — so a
// torn or corrupted sidecar is detected before a single cell is
// probed. Layout:
//
//	magic "BPIVFIX\x00"                               8 bytes
//	version, features, cells, shards     uint32 each 16 bytes
//	seed                                       uint64  8 bytes
//	header CRC                                 uint32  4 bytes
//	centroids  cells×features float64, then a section CRC
//	per shard: count uint32, then per cell
//	           (len uint32 + len×uint32 local indices),
//	           then a section CRC
//
// Decoding validates more than checksums: each shard's posting lists
// must form an exact partition of its local index space (every record
// in exactly one cell, lists strictly ascending) — the structural
// invariant the scan paths rely on, and the property FuzzDecodeIVF
// hammers. All reads go through gallery.ReadN, so a forged length
// field cannot drive a huge allocation.

const (
	ivfMagic = "BPIVFIX\x00"

	// SidecarVersion is the IVF sidecar format version this build
	// reads and writes.
	SidecarVersion = 1

	// maxCells bounds the plausible centroid count in a sidecar
	// header; anything larger is corruption, not configuration.
	maxCells = 1 << 16

	// maxSidecarShards mirrors the shard manifest's shard bound.
	maxSidecarShards = 1 << 16

	// maxSidecarFeatures mirrors the gallery codec's dimensionality
	// bound.
	maxSidecarFeatures = 1 << 26

	headerLen = 8 + 4*4 + 8 // magic + version/features/cells/shards + seed
)

// Typed sidecar errors, matched with errors.Is. Truncation and
// checksum failures reuse the gallery sentinels so callers handle all
// codecs uniformly.
var (
	// ErrMagic means the file does not start with the IVF sidecar
	// magic.
	ErrMagic = errors.New("ivf: bad magic (not an index sidecar)")
	// ErrVersion means the sidecar's format version is not supported
	// by this build.
	ErrVersion = errors.New("ivf: unsupported sidecar version")
	// ErrCorrupt means the sidecar decoded but violates a structural
	// invariant (implausible geometry, posting lists that do not
	// partition a shard).
	ErrCorrupt = errors.New("ivf: corrupt index sidecar")
)

// SidecarPath returns the sidecar filename for a gallery database
// path — "<db>.ivf" beside the gallery file, shard manifest, or live
// generation manifest it indexes.
func SidecarPath(dbPath string) string { return dbPath + ".ivf" }

// Encode renders the index in sidecar format.
func (x *Index) Encode() []byte {
	buf := make([]byte, 0, headerLen+4+len(x.centroids)*8+4)
	buf = append(buf, ivfMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, SidecarVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(x.features))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(x.cells))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x.counts)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(x.seed))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	clo := len(buf)
	buf = linalg.AppendFloat64s(buf, x.centroids)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[clo:]))

	for si, lists := range x.postings {
		slo := len(buf)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x.counts[si]))
		for _, list := range lists {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(list)))
			for _, li := range list {
				buf = binary.LittleEndian.AppendUint32(buf, li)
			}
		}
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[slo:]))
	}
	return buf
}

// Decode parses and fully validates a sidecar stream: header and
// section CRCs, geometry bounds, the per-shard partition invariant,
// and a trailing-byte check. On success the index is ready to probe.
func Decode(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	head := make([]byte, headerLen+4)
	if err := readFull(br, head, "sidecar header"); err != nil {
		return nil, err
	}
	if string(head[:8]) != ivfMagic {
		return nil, ErrMagic
	}
	if got := binary.LittleEndian.Uint32(head[headerLen:]); got != crc32.ChecksumIEEE(head[:headerLen]) {
		return nil, fmt.Errorf("%w: sidecar header CRC mismatch", gallery.ErrChecksum)
	}
	version := binary.LittleEndian.Uint32(head[8:])
	if version != SidecarVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, version, SidecarVersion)
	}
	features := int(binary.LittleEndian.Uint32(head[12:]))
	cells := int(binary.LittleEndian.Uint32(head[16:]))
	shards := int(binary.LittleEndian.Uint32(head[20:]))
	seed := int64(binary.LittleEndian.Uint64(head[24:]))
	if features < 1 || features > maxSidecarFeatures {
		return nil, fmt.Errorf("%w: implausible feature count %d", ErrCorrupt, features)
	}
	if cells < 1 || cells > maxCells {
		return nil, fmt.Errorf("%w: implausible cell count %d", ErrCorrupt, cells)
	}
	if shards < 1 || shards > maxSidecarShards {
		return nil, fmt.Errorf("%w: implausible shard count %d", ErrCorrupt, shards)
	}

	x := &Index{features: features, cells: cells, seed: seed}
	cbytes, err := gallery.ReadN(br, cells*features*8+4, "sidecar centroids")
	if err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(cbytes[len(cbytes)-4:]); got != crc32.ChecksumIEEE(cbytes[:len(cbytes)-4]) {
		return nil, fmt.Errorf("%w: sidecar centroid CRC mismatch", gallery.ErrChecksum)
	}
	x.centroids = make([]float64, cells*features)
	if _, err := linalg.DecodeFloat64s(cbytes[:len(cbytes)-4], x.centroids); err != nil {
		return nil, fmt.Errorf("ivf: decoding centroids: %w", err)
	}

	x.counts = make([]int, shards)
	x.postings = make([][][]uint32, shards)
	lenBuf := make([]byte, 4)
	for si := 0; si < shards; si++ {
		crc := crc32.NewIEEE()
		tee := io.TeeReader(br, crc)
		if err := readFull(tee, lenBuf, "sidecar shard section"); err != nil {
			return nil, err
		}
		count := int(binary.LittleEndian.Uint32(lenBuf))
		x.counts[si] = count
		lists := make([][]uint32, cells)
		posted := 0
		for c := 0; c < cells; c++ {
			if err := readFull(tee, lenBuf, "sidecar posting list"); err != nil {
				return nil, err
			}
			n := int(binary.LittleEndian.Uint32(lenBuf))
			if n > count {
				return nil, fmt.Errorf("%w: shard %d cell %d posts %d records, shard holds %d", ErrCorrupt, si, c, n, count)
			}
			body, err := gallery.ReadN(tee, n*4, "sidecar posting list")
			if err != nil {
				return nil, err
			}
			list := make([]uint32, n)
			for i := range list {
				list[i] = binary.LittleEndian.Uint32(body[i*4:])
			}
			lists[c] = list
			posted += n
		}
		// The partition check proper runs in validate; checking the
		// total here first keeps validate's seen-bitmap allocation
		// proportional to bytes actually present in the stream, so a
		// forged count cannot drive a huge allocation.
		if posted != count {
			return nil, fmt.Errorf("%w: shard %d posts %d records, header declares %d", ErrCorrupt, si, posted, count)
		}
		sum := crc.Sum32()
		if err := readFull(br, lenBuf, "sidecar shard CRC"); err != nil {
			return nil, err
		}
		if got := binary.LittleEndian.Uint32(lenBuf); got != sum {
			return nil, fmt.Errorf("%w: sidecar shard %d CRC mismatch", gallery.ErrChecksum, si)
		}
		x.postings[si] = lists
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing bytes after the last shard section", ErrCorrupt)
	}
	if err := x.validate(); err != nil {
		return nil, err
	}
	x.derive()
	return x, nil
}

// WriteFile atomically persists the index sidecar: write to a
// temporary file in the target directory, fsync, then rename over the
// final path.
func (x *Index) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(x.Encode()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile loads and validates an index sidecar.
func ReadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// readFull fills buf, mapping EOF and short reads to the gallery's
// typed truncation error with context.
func readFull(r io.Reader, buf []byte, what string) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: in %s", gallery.ErrTruncated, what)
		}
		return fmt.Errorf("ivf: reading %s: %w", what, err)
	}
	return nil
}
