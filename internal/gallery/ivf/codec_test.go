package ivf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"path/filepath"
	"testing"

	"brainprint/internal/gallery"
)

// codecIndex trains a small index with uneven shards for the sidecar
// round-trip and corruption tests.
func codecIndex(t testing.TB) *Index {
	t.Helper()
	counts := []int{33, 7, 20}
	return buildIndex(t, Config{Cells: 5, Seed: 41}, 10, counts, 43)
}

// sameIndex compares everything the codec persists (the derived scan
// layout is rebuilt on decode and pinned indirectly via RankCells).
func sameIndex(t *testing.T, got, want *Index) {
	t.Helper()
	if got.Features() != want.Features() || got.Cells() != want.Cells() ||
		got.Seed() != want.Seed() || got.Shards() != want.Shards() {
		t.Fatalf("geometry: got (%d,%d,%d,%d), want (%d,%d,%d,%d)",
			got.Features(), got.Cells(), got.Seed(), got.Shards(),
			want.Features(), want.Cells(), want.Seed(), want.Shards())
	}
	for c := 0; c < want.Cells(); c++ {
		gc, wc := got.Centroid(c), want.Centroid(c)
		for f := range wc {
			if gc[f] != wc[f] {
				t.Fatalf("cell %d feature %d: centroid %v != %v", c, f, gc[f], wc[f])
			}
		}
	}
	for si := 0; si < want.Shards(); si++ {
		if got.ShardCount(si) != want.ShardCount(si) {
			t.Fatalf("shard %d count %d != %d", si, got.ShardCount(si), want.ShardCount(si))
		}
		for c := 0; c < want.Cells(); c++ {
			gl, wl := got.Postings(si, c), want.Postings(si, c)
			if len(gl) != len(wl) {
				t.Fatalf("shard %d cell %d: %d postings != %d", si, c, len(gl), len(wl))
			}
			for i := range wl {
				if gl[i] != wl[i] {
					t.Fatalf("shard %d cell %d entry %d: %d != %d", si, c, i, gl[i], wl[i])
				}
			}
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	x := codecIndex(t)
	got, err := Decode(bytes.NewReader(x.Encode()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	sameIndex(t, got, x)
	// The decoded index must be immediately probeable: same cell
	// ranking as the source for an arbitrary probe.
	probe := make([]float64, x.Features())
	for f := range probe {
		probe[f] = float64(f%3) - 1
	}
	a, b := x.RankCells(probe, x.Cells()), got.RankCells(probe, x.Cells())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decoded index ranks cells differently at %d: %d != %d", i, b[i], a[i])
		}
	}
}

func TestWriteReadFileRoundTrip(t *testing.T) {
	x := codecIndex(t)
	path := SidecarPath(filepath.Join(t.TempDir(), "g.bpm"))
	if err := x.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	sameIndex(t, got, x)
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	buf := codecIndex(t).Encode()
	buf[0] ^= 0xFF
	if _, err := Decode(bytes.NewReader(buf)); !errors.Is(err, ErrMagic) {
		t.Fatalf("Decode(bad magic) = %v, want ErrMagic", err)
	}
}

func TestDecodeRejectsHeaderCorruption(t *testing.T) {
	// Any header field flip must fail the header CRC before the fields
	// are believed.
	for _, off := range []int{8, 12, 16, 20, 24} {
		buf := codecIndex(t).Encode()
		buf[off] ^= 0x01
		if _, err := Decode(bytes.NewReader(buf)); !errors.Is(err, gallery.ErrChecksum) {
			t.Fatalf("Decode(header flip at %d) = %v, want ErrChecksum", off, err)
		}
	}
}

// patchHeader rewrites a little-endian u32 header field and recomputes
// the header CRC, so corruption tests can exercise the checks BEHIND
// the checksum.
func patchHeader(buf []byte, off int, v uint32) {
	binary.LittleEndian.PutUint32(buf[off:], v)
	binary.LittleEndian.PutUint32(buf[headerLen:], crc32.ChecksumIEEE(buf[:headerLen]))
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	buf := codecIndex(t).Encode()
	patchHeader(buf, 8, SidecarVersion+1)
	if _, err := Decode(bytes.NewReader(buf)); !errors.Is(err, ErrVersion) {
		t.Fatalf("Decode(future version) = %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsImplausibleGeometry(t *testing.T) {
	for _, tc := range []struct {
		name string
		off  int
		v    uint32
	}{
		{"zero features", 12, 0},
		{"huge features", 12, uint32(maxSidecarFeatures + 1)},
		{"zero cells", 16, 0},
		{"huge cells", 16, uint32(maxCells + 1)},
		{"zero shards", 20, 0},
		{"huge shards", 20, uint32(maxSidecarShards + 1)},
	} {
		buf := codecIndex(t).Encode()
		patchHeader(buf, tc.off, tc.v)
		if _, err := Decode(bytes.NewReader(buf)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Decode(%s) = %v, want ErrCorrupt", tc.name, err)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	buf := codecIndex(t).Encode()
	for _, n := range []int{0, 7, headerLen, headerLen + 4, headerLen + 20, len(buf) - 1} {
		if _, err := Decode(bytes.NewReader(buf[:n])); !errors.Is(err, gallery.ErrTruncated) {
			t.Fatalf("Decode(first %d bytes) = %v, want ErrTruncated", n, err)
		}
	}
}

func TestDecodeRejectsSectionCorruption(t *testing.T) {
	x := codecIndex(t)
	buf := x.Encode()
	centroidAt := headerLen + 4 + 8 // first centroid's second byte-ish
	flip := append([]byte(nil), buf...)
	flip[centroidAt] ^= 0x10
	if _, err := Decode(bytes.NewReader(flip)); !errors.Is(err, gallery.ErrChecksum) {
		t.Fatalf("Decode(centroid flip) = %v, want ErrChecksum", err)
	}
	// A flip of a posting entry fails that shard's section CRC (list
	// lengths and the record count stay intact, so the structural
	// guards stay quiet and the checksum must be what catches it).
	shardAt := -1
	off := headerLen + 4 + x.Cells()*x.Features()*8 + 4 + 4
	for c := 0; c < x.Cells(); c++ {
		n := len(x.Postings(0, c))
		if n > 0 {
			shardAt = off + 4 // low byte of the first entry
			break
		}
		off += 4 + n*4
	}
	if shardAt < 0 {
		t.Fatal("no non-empty posting list in shard 0")
	}
	flip = append([]byte(nil), buf...)
	flip[shardAt] ^= 0x10
	if _, err := Decode(bytes.NewReader(flip)); !errors.Is(err, gallery.ErrChecksum) {
		t.Fatalf("Decode(shard flip) = %v, want ErrChecksum", err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	buf := append(codecIndex(t).Encode(), 0x00)
	if _, err := Decode(bytes.NewReader(buf)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode(trailing byte) = %v, want ErrCorrupt", err)
	}
}

// TestDecodeRejectsForgedShardCount targets the allocation guard: a
// shard header declaring more records than its posting lists actually
// hold (with a recomputed section CRC, so the checksum cannot save us)
// must fail loudly BEFORE validate sizes its seen bitmap off the forged
// count.
func TestDecodeRejectsForgedShardCount(t *testing.T) {
	x := codecIndex(t)
	buf := x.Encode()
	slo := headerLen + 4 + x.Cells()*x.Features()*8 + 4
	// Shard section: count u32, cells × (len u32 + len·u32), CRC u32.
	slen := 4
	for c := 0; c < x.Cells(); c++ {
		slen += 4 + len(x.Postings(0, c))*4
	}
	binary.LittleEndian.PutUint32(buf[slo:], uint32(x.ShardCount(0))+1_000_000)
	binary.LittleEndian.PutUint32(buf[slo+slen:], crc32.ChecksumIEEE(buf[slo:slo+slen]))
	_, err := Decode(bytes.NewReader(buf))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode(forged shard count) = %v, want ErrCorrupt", err)
	}
}

func TestWriteFileIsAtomic(t *testing.T) {
	// Writing over an existing sidecar must never leave a torn file:
	// the temp-write + rename pattern means the destination is either
	// the old content or the new, so a decode always succeeds.
	x := codecIndex(t)
	path := filepath.Join(t.TempDir(), "g.bpm.ivf")
	if err := x.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	y := buildIndex(t, Config{Cells: 3, Seed: 99}, 10, []int{12}, 47)
	if err := y.WriteFile(path); err != nil {
		t.Fatalf("WriteFile (overwrite): %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	sameIndex(t, got, y)
}
