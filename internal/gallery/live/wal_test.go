package live

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"brainprint/internal/gallery"
)

// buildLiveDir creates a live directory with n enrolled subjects and
// returns its path plus the log path (engine closed).
func buildLiveDir(t *testing.T, features, n int) (string, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "live")
	e, err := Create(dir, features, nil, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	group := randomGroup(11, features, n)
	for j, id := range subjectIDs(n) {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir, filepath.Join(dir, genName(0, "bpw"))
}

func TestTornTailTruncatedAndRecovered(t *testing.T) {
	const features, n = 8, 5
	dir, walPath := buildLiveDir(t, features, n)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Cut the file at every offset inside the LAST record: each cut
	// simulates a crash mid-append and must recover n-1 subjects with
	// the torn bytes truncated away.
	recLen := 4 + (3 + len("s00000") + 8*features) + 4
	lastStart := len(full) - recLen
	for _, cut := range []int{lastStart + 1, lastStart + 3, lastStart + recLen/2, len(full) - 1} {
		if err := os.WriteFile(walPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut@%d: Open: %v", cut, err)
		}
		st := e.Stats()
		if e.Len() != n-1 || st.RecoveredTornBytes != int64(cut-lastStart) {
			t.Fatalf("cut@%d: len=%d torn=%d (want %d, %d)", cut, e.Len(), st.RecoveredTornBytes, n-1, cut-lastStart)
		}
		e.Close()
		// The torn bytes are physically gone: a second open is clean.
		e2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut@%d: second Open: %v", cut, err)
		}
		if st := e2.Stats(); st.RecoveredTornBytes != 0 || e2.Len() != n-1 {
			t.Fatalf("cut@%d: second open not clean: len=%d %+v", cut, e2.Len(), st)
		}
		e2.Close()
		// Restore for the next cut.
		if err := os.WriteFile(walPath, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCorruptTailRecordRecovered(t *testing.T) {
	// A COMPLETE final record whose payload was scrambled (a lost page
	// inside the last fsync window) is recoverable exactly like an
	// incomplete one.
	const features, n = 8, 5
	dir, walPath := buildLiveDir(t, features, n)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	full[len(full)-10] ^= 0xFF // inside the last record's vector bytes
	if err := os.WriteFile(walPath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open with corrupt tail record: %v", err)
	}
	defer e.Close()
	if e.Len() != n-1 || e.Stats().RecoveredTornBytes == 0 {
		t.Fatalf("len=%d stats=%+v", e.Len(), e.Stats())
	}
}

func TestInteriorCorruptionIsHardError(t *testing.T) {
	// Corruption with committed records AFTER it cannot be healed by
	// truncation — dropping the later records could resurrect deleted
	// subjects — so Open must refuse with the typed error.
	const features, n = 8, 5
	dir, walPath := buildLiveDir(t, features, n)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	recLen := 4 + (3 + len("s00000") + 8*features) + 4
	headerLen := len(full) - n*recLen
	full[headerLen+recLen+8] ^= 0xFF // inside record 1 of 5
	if err := os.WriteFile(walPath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("Open with interior corruption: got %v, want ErrWALCorrupt", err)
	}
}

func TestWALHeaderErrors(t *testing.T) {
	const features, n = 8, 2
	dir, walPath := buildLiveDir(t, features, n)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrWALMagic},
		{"bad version", func(b []byte) []byte { b[8] = 99; return b }, ErrWALVersion},
		{"header checksum", func(b []byte) []byte { b[13] ^= 0xFF; return b }, gallery.ErrChecksum},
		{"truncated header", func(b []byte) []byte { return b[:10] }, gallery.ErrTruncated},
	}
	for _, tc := range cases {
		buf := append([]byte(nil), full...)
		if err := os.WriteFile(walPath, tc.mutate(buf), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{NoSync: true}); !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestWALGeometryMismatchRejected(t *testing.T) {
	// A log whose header disagrees with the base store's dimensionality
	// must not replay: pair a compacted base with a foreign log.
	const features = 8
	dir := filepath.Join(t.TempDir(), "live")
	e, err := Create(dir, features, nil, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	group := randomGroup(13, features, 3)
	for j, id := range subjectIDs(3) {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	e.Close()

	// Overwrite generation 1's log with one declaring other dims.
	w, _, err := createWAL(filepath.Join(dir, genName(1, "bpw")), walHeader{features: features + 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	w.close()
	if _, err := Open(dir, Options{NoSync: true}); !errors.Is(err, gallery.ErrDimMismatch) {
		t.Fatalf("geometry mismatch: got %v, want ErrDimMismatch", err)
	}
}

func TestCrashedCompactionOrphansSwept(t *testing.T) {
	// Files from a compaction that died before its generation switch
	// must not confuse recovery and are removed at the next Open.
	const features = 8
	dir, _ := buildLiveDir(t, features, 4)
	orphan := filepath.Join(dir, genName(1, "bpm"))
	if err := os.WriteFile(orphan, []byte("half-written manifest"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open with orphans: %v", err)
	}
	defer e.Close()
	if e.Len() != 4 || e.Generation() != 0 {
		t.Fatalf("recovered wrong state: len=%d gen=%d", e.Len(), e.Generation())
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned next-generation manifest not swept: %v", err)
	}
}

// TestWALWriterPoisonsAfterFailedRollback pins the partial-append
// containment rule: when an append fails AND the rollback truncate
// cannot restore the committed end, the writer must refuse every later
// commit — appending after an unrolled partial frame would turn a
// recoverable torn tail into unrecoverable interior corruption.
func TestWALWriterPoisonsAfterFailedRollback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.bpw")
	w, _, err := createWAL(path, walHeader{features: 2}, false)
	if err != nil {
		t.Fatalf("createWAL: %v", err)
	}
	// Close the handle out from under the writer: the next append's
	// write fails, and so does the rollback truncate.
	w.f.Close()
	frame := encodeWALRecord(walKindEnroll, "x", []float64{1, 2})
	if err := w.append(frame); err == nil {
		t.Fatal("append on a closed file should fail")
	}
	if w.broken == nil {
		t.Fatal("writer not poisoned after failed rollback")
	}
	if err := w.append(frame); err == nil || !errors.Is(err, w.broken) {
		t.Fatalf("poisoned writer did not refuse the next commit with its poison error: %v", err)
	}
}
