package live

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"brainprint/internal/gallery"
	"brainprint/internal/linalg"
)

// The write-ahead log file format, version 1. All integers are
// little-endian, all checksums CRC-32 (IEEE). One WAL segment belongs
// to one generation of the live directory: it records every mutation
// committed since that generation's base store was written, and replays
// on Open to rebuild the in-memory overlay.
//
//	header:
//	  magic        [8]byte  "BPWAL\x00\x00\x00"
//	  version      uint32   1
//	  features     uint32   fingerprint dimensionality (> 0)
//	  indexLen     uint32   feature-index length (0 = none, else == features)
//	  featureIndex [indexLen]uint32
//	  headerCRC    uint32   over every preceding header byte
//	record (repeated until EOF):
//	  payloadLen   uint32   length of the payload below
//	  payload:
//	    kind       uint8    1 = enroll, 2 = delete
//	    idLen      uint16
//	    id         [idLen]byte
//	    vec        [features]float64   z-scored; enroll records only
//	  payloadCRC   uint32   over the payload bytes
//
// Records are length-prefixed and individually checksummed, so the
// reader can always tell a torn tail (the file ends before the framed
// record does — the signature of a crash mid-append) from interior
// corruption (a record fails its CRC but bytes follow it). Torn tails
// are recovered by truncating to the last committed record and
// continuing; interior corruption is a hard typed error, because
// silently resynchronizing past it could resurrect deleted subjects.
const (
	walMagic = "BPWAL\x00\x00\x00"

	// WALVersion is the write-ahead log format version this package
	// reads and writes.
	WALVersion = 1

	walKindEnroll = 1
	walKindDelete = 2
)

// Typed write-ahead-log and live-directory errors, matched with
// errors.Is. Truncation and checksum failures reuse the gallery
// package's sentinels where the meaning coincides.
var (
	// ErrWALMagic means the file does not start with the WAL magic.
	ErrWALMagic = errors.New("live: bad magic (not a write-ahead log)")
	// ErrWALVersion means the log uses an unsupported format version.
	ErrWALVersion = errors.New("live: unsupported write-ahead log version")
	// ErrWALCorrupt means a log record in the interior of the file
	// failed validation (checksum, framing, or replay consistency) —
	// unlike a torn tail, this is not recoverable by truncation.
	ErrWALCorrupt = errors.New("live: write-ahead log corrupt")
	// ErrWALMissing means the generation's log segment named by CURRENT
	// does not exist.
	ErrWALMissing = errors.New("live: write-ahead log missing")
	// ErrNotLive means the directory is not a live gallery (no CURRENT
	// file).
	ErrNotLive = errors.New("live: not a live gallery directory (no CURRENT file)")
	// ErrClosed means the engine has been closed.
	ErrClosed = errors.New("live: engine is closed")
)

// walRecord is one decoded mutation.
type walRecord struct {
	kind byte
	id   string
	vec  []float64 // z-scored, gallery-space; enroll records only
}

// walHeader carries the geometry a WAL segment was written under.
type walHeader struct {
	features     int
	featureIndex []int
}

// encodeWALHeader renders the checksummed segment header.
func encodeWALHeader(h walHeader) []byte {
	buf := make([]byte, 0, len(walMagic)+12+4*len(h.featureIndex)+4)
	buf = append(buf, walMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, WALVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.features))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.featureIndex)))
	for _, idx := range h.featureIndex {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(idx))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeWALHeader parses and verifies the segment header. Header
// problems are always hard errors: a segment whose header cannot be
// trusted has no replayable records at all.
func decodeWALHeader(br *bufio.Reader) (walHeader, int64, error) {
	var h walHeader
	fixed := make([]byte, len(walMagic)+12)
	if err := readFull(br, fixed, "write-ahead log header"); err != nil {
		return h, 0, err
	}
	if string(fixed[:8]) != walMagic {
		return h, 0, ErrWALMagic
	}
	version := binary.LittleEndian.Uint32(fixed[8:])
	if version != WALVersion {
		return h, 0, fmt.Errorf("%w %d (supported: %d)", ErrWALVersion, version, WALVersion)
	}
	features := binary.LittleEndian.Uint32(fixed[12:])
	indexLen := binary.LittleEndian.Uint32(fixed[16:])
	if features == 0 || features > 1<<26 {
		return h, 0, fmt.Errorf("%w: implausible feature count %d in write-ahead log header", gallery.ErrDimMismatch, features)
	}
	if indexLen != 0 && indexLen != features {
		return h, 0, fmt.Errorf("%w: feature index length %d != %d features", gallery.ErrDimMismatch, indexLen, features)
	}
	rest, err := readN(br, int(4*indexLen+4), "write-ahead log header feature index")
	if err != nil {
		return h, 0, err
	}
	stored := binary.LittleEndian.Uint32(rest[4*indexLen:])
	crc := crc32.NewIEEE()
	crc.Write(fixed)
	crc.Write(rest[:4*indexLen])
	if crc.Sum32() != stored {
		return h, 0, fmt.Errorf("%w in write-ahead log header", gallery.ErrChecksum)
	}
	h.features = int(features)
	if indexLen > 0 {
		h.featureIndex = make([]int, indexLen)
		for k := range h.featureIndex {
			h.featureIndex[k] = int(binary.LittleEndian.Uint32(rest[4*k:]))
		}
	}
	return h, int64(len(fixed) + len(rest)), nil
}

// encodeWALRecord frames one mutation: length prefix, payload, CRC.
// Enroll records carry the already-normalized vector so replay restores
// the exact stored bits without renormalization.
func encodeWALRecord(kind byte, id string, vec []float64) []byte {
	payload := make([]byte, 0, 3+len(id)+8*len(vec))
	payload = append(payload, kind)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(id)))
	payload = append(payload, id...)
	payload = linalg.AppendFloat64s(payload, vec)
	buf := make([]byte, 0, 8+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

// replayTail is the outcome of replaying a segment's record section.
type replayTail struct {
	// hdrEnd is the offset just past the segment header — where the
	// record section starts.
	hdrEnd int64
	// goodEnd is the offset just past the last committed record.
	goodEnd int64
	// tornBytes is how many trailing bytes after goodEnd belong to a
	// torn (incomplete or tail-corrupt) record; 0 for a clean segment.
	tornBytes int64
	// records is how many committed records were replayed.
	records int
	// ends[i] is the offset just past committed record i — the frame
	// boundaries replication streams committed byte ranges by.
	ends []int64
}

// replayWAL decodes the record section after the header, calling apply
// for every committed record. size is the total segment length; knowing
// it lets the reader classify a record that runs past the end of the
// file as a torn tail without allocating the claimed length, and
// distinguish tail corruption (recoverable) from interior corruption
// (hard ErrWALCorrupt).
func replayWAL(br *bufio.Reader, h walHeader, start, size int64, apply func(walRecord) error) (replayTail, error) {
	tail := replayTail{hdrEnd: start, goodEnd: start}
	lenBuf := make([]byte, 4)
	for {
		remaining := size - tail.goodEnd
		if remaining == 0 {
			return tail, nil // clean end at a record boundary
		}
		if remaining < 4 {
			tail.tornBytes = remaining
			return tail, nil // torn: not even a whole length prefix
		}
		if err := readFull(br, lenBuf, "write-ahead log record length"); err != nil {
			return tail, err
		}
		payloadLen := int64(binary.LittleEndian.Uint32(lenBuf))
		if 4+payloadLen+4 > remaining {
			// The framed record runs past the end of the file — the
			// signature of a crash mid-append. Everything from here is
			// the torn tail.
			tail.tornBytes = remaining
			return tail, nil
		}
		body, err := readN(br, int(payloadLen)+4, "write-ahead log record")
		if err != nil {
			return tail, err
		}
		payload := body[:payloadLen]
		atEOF := 4+payloadLen+4 == remaining
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(body[payloadLen:]) {
			if atEOF {
				// A corrupt final record: a partially persisted append
				// (e.g. a page lost inside the last fsync window).
				// Recoverable exactly like an incomplete one.
				tail.tornBytes = remaining
				return tail, nil
			}
			return tail, fmt.Errorf("%w: record %d failed checksum with %d committed bytes after it",
				ErrWALCorrupt, tail.records, remaining-(4+payloadLen+4))
		}
		rec, err := decodeWALPayload(payload, h)
		if err != nil {
			// CRC-valid but malformed payload: writer-side corruption,
			// never recoverable by truncation.
			return tail, fmt.Errorf("%w: record %d: %v", ErrWALCorrupt, tail.records, err)
		}
		if err := apply(rec); err != nil {
			return tail, fmt.Errorf("%w: replaying record %d: %v", ErrWALCorrupt, tail.records, err)
		}
		tail.goodEnd += 4 + payloadLen + 4
		tail.records++
		tail.ends = append(tail.ends, tail.goodEnd)
	}
}

// decodeWALPayload parses one CRC-verified payload against the segment
// geometry.
func decodeWALPayload(payload []byte, h walHeader) (walRecord, error) {
	var rec walRecord
	if len(payload) < 3 {
		return rec, fmt.Errorf("payload of %d bytes is shorter than the fixed fields", len(payload))
	}
	rec.kind = payload[0]
	idLen := int(binary.LittleEndian.Uint16(payload[1:]))
	switch rec.kind {
	case walKindEnroll:
		if len(payload) != 3+idLen+8*h.features {
			return rec, fmt.Errorf("enroll payload is %d bytes, want %d", len(payload), 3+idLen+8*h.features)
		}
		rec.id = string(payload[3 : 3+idLen])
		rec.vec = make([]float64, h.features)
		if _, err := linalg.DecodeFloat64s(payload[3+idLen:], rec.vec); err != nil {
			return rec, err
		}
	case walKindDelete:
		if len(payload) != 3+idLen {
			return rec, fmt.Errorf("delete payload is %d bytes, want %d", len(payload), 3+idLen)
		}
		rec.id = string(payload[3:])
	default:
		return rec, fmt.Errorf("unknown record kind %d", rec.kind)
	}
	if rec.id == "" || idLen > gallery.MaxIDLen {
		return rec, fmt.Errorf("invalid subject id length %d", idLen)
	}
	return rec, nil
}

// walWriter appends committed records to an open segment. It tracks
// the committed end offset so a failed append can be rolled back: a
// partial frame left in place would make the NEXT successful append
// land after garbage, turning a recoverable torn tail into
// unrecoverable interior corruption at replay. If the rollback itself
// fails, the writer is poisoned and refuses further commits.
type walWriter struct {
	f      *os.File
	sync   bool
	off    int64 // end of the last durable record (or the header)
	broken error // non-nil once a failed append could not be rolled back
}

// createWAL writes a fresh segment (header only) at path and returns an
// appender positioned at its end. The header is synced before the
// function returns so a generation switch never points at a headerless
// segment.
func createWAL(path string, h walHeader, syncOnCommit bool) (*walWriter, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, 0, err
	}
	hdr := encodeWALHeader(h)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, 0, err
	}
	return &walWriter{f: f, sync: syncOnCommit, off: int64(len(hdr))}, int64(len(hdr)), nil
}

// openWAL opens an existing segment for replay and appending: the
// header is verified against the expected geometry, every committed
// record is applied, and a torn tail is truncated away so the appender
// resumes exactly at the last committed record.
func openWAL(path string, want walHeader, syncOnCommit bool, apply func(walRecord) error) (*walWriter, replayTail, error) {
	var tail replayTail
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, tail, fmt.Errorf("%w: %s", ErrWALMissing, path)
		}
		return nil, tail, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, tail, err
	}
	br := bufio.NewReader(f)
	h, hdrLen, err := decodeWALHeader(br)
	if err != nil {
		f.Close()
		return nil, tail, fmt.Errorf("%s: %w", path, err)
	}
	if h.features != want.features || !equalIndex(h.featureIndex, want.featureIndex) {
		f.Close()
		return nil, tail, fmt.Errorf("%w: write-ahead log geometry (%d features) disagrees with the base store (%d)",
			gallery.ErrDimMismatch, h.features, want.features)
	}
	tail, err = replayWAL(br, h, hdrLen, st.Size(), apply)
	if err != nil {
		f.Close()
		return nil, tail, fmt.Errorf("%s: %w", path, err)
	}
	if tail.tornBytes > 0 {
		if err := f.Truncate(tail.goodEnd); err != nil {
			f.Close()
			return nil, tail, fmt.Errorf("live: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, tail, err
		}
	}
	if _, err := f.Seek(tail.goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, tail, err
	}
	return &walWriter{f: f, sync: syncOnCommit, off: tail.goodEnd}, tail, nil
}

// append commits one framed record: the bytes are written and, unless
// the engine was opened with NoSync, fsynced before the mutation
// becomes visible to queries. On a write failure the partial frame is
// truncated away so the segment still ends at a committed record; if
// even that fails, the writer poisons itself and every later commit is
// refused — appending after an unrolled partial frame would corrupt
// the segment's interior, which replay treats as unrecoverable.
func (w *walWriter) append(frame []byte) error {
	if w.broken != nil {
		return fmt.Errorf("live: write-ahead log writer is failed: %w", w.broken)
	}
	if _, err := w.f.Write(frame); err != nil {
		if terr := w.f.Truncate(w.off); terr != nil {
			w.broken = fmt.Errorf("append failed (%v) and rollback failed: %w", err, terr)
		} else if _, serr := w.f.Seek(w.off, io.SeekStart); serr != nil {
			w.broken = fmt.Errorf("append failed (%v) and reseek failed: %w", err, serr)
		}
		return err
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			// After a failed fsync the kernel may have dropped the
			// dirty pages: whether the frame survives a crash is
			// unknowable from here (the fsyncgate problem). The engine
			// will not apply the mutation, but the frame may still
			// replay after a restart — so refuse all further commits
			// rather than let disk and memory diverge.
			w.broken = fmt.Errorf("fsync failed, segment state unknown: %w", err)
			return err
		}
	}
	w.off += int64(len(frame))
	return nil
}

// close releases the segment file handle.
func (w *walWriter) close() error { return w.f.Close() }

// equalIndex reports whether two feature indices are identical.
func equalIndex(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// readFull fills buf from r, mapping EOF and short reads to the typed
// truncation error with context.
func readFull(r io.Reader, buf []byte, what string) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: in %s", gallery.ErrTruncated, what)
		}
		return fmt.Errorf("live: reading %s: %w", what, err)
	}
	return nil
}

// readN is gallery.ReadN — the shared bounded-allocation reader, so a
// forged length prefix cannot drive a huge up-front allocation.
func readN(r io.Reader, n int, what string) ([]byte, error) {
	return gallery.ReadN(r, n, what)
}
