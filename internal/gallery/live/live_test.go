package live

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"brainprint/internal/gallery"
	"brainprint/internal/gallery/shard"
	"brainprint/internal/linalg"
)

// randomGroup builds a deterministic features×subjects matrix.
func randomGroup(seed int64, features, subjects int) *linalg.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := linalg.NewMatrix(features, subjects)
	data := m.RawData()
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return m
}

// subjectIDs yields zero-padded IDs whose lexicographic order matches
// enrollment order.
func subjectIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%05d", i)
	}
	return ids
}

// createEngine creates a fresh live directory under t.TempDir with
// fsync disabled (the tests hammer the log; durability is covered by
// the dedicated WAL tests).
func createEngine(t testing.TB, features int, opts Options) *Engine {
	t.Helper()
	opts.NoSync = true
	e, err := Create(filepath.Join(t.TempDir(), "live"), features, nil, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestEnrollDeleteLifecycle(t *testing.T) {
	const features = 16
	e := createEngine(t, features, Options{})
	group := randomGroup(1, features, 6)
	ids := subjectIDs(6)
	for j, id := range ids {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll(%q): %v", id, err)
		}
	}
	if e.Len() != 6 {
		t.Fatalf("Len = %d, want 6", e.Len())
	}
	if err := e.Enroll(ids[2], group.Col(2)); !errors.Is(err, gallery.ErrDuplicateID) {
		t.Fatalf("duplicate enroll: got %v, want ErrDuplicateID", err)
	}
	if err := e.Delete("nope"); !errors.Is(err, gallery.ErrUnknownID) {
		t.Fatalf("unknown delete: got %v, want ErrUnknownID", err)
	}
	if err := e.Delete(ids[3]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if e.Len() != 5 || e.Index(ids[3]) != -1 {
		t.Fatalf("after delete: Len=%d Index=%d", e.Len(), e.Index(ids[3]))
	}
	// A deleted ID is free for re-enrollment.
	if err := e.Enroll(ids[3], group.Col(3)); err != nil {
		t.Fatalf("re-enroll after delete: %v", err)
	}
	if e.Len() != 6 || e.Index(ids[3]) < 0 {
		t.Fatalf("after re-enroll: Len=%d Index=%d", e.Len(), e.Index(ids[3]))
	}
	// Enumeration invariants: ID(Index(id)) == id for every listed id.
	for _, id := range e.IDs() {
		if got := e.ID(e.Index(id)); got != id {
			t.Fatalf("ID(Index(%q)) = %q", id, got)
		}
	}
}

func TestMutationsSurviveReopen(t *testing.T) {
	const features = 12
	dir := filepath.Join(t.TempDir(), "live")
	e, err := Create(dir, features, nil, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	group := randomGroup(2, features, 5)
	ids := subjectIDs(5)
	for j, id := range ids {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := e.Delete(ids[1]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	want := snapshotRanked(t, e)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Operations after Close fail typed.
	if err := e.Enroll("late", group.Col(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("enroll after close: got %v, want ErrClosed", err)
	}

	re, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer re.Close()
	if re.Len() != 4 {
		t.Fatalf("reopened Len = %d, want 4", re.Len())
	}
	if st := re.Stats(); st.RecoveredTornBytes != 0 || st.WALRecords != 6 {
		t.Fatalf("clean reopen stats: %+v", st)
	}
	assertSameRanked(t, want, snapshotRanked(t, re))
}

// snapshotRanked captures a deterministic full ranking of a fixed probe
// so states can be compared across reopen/compaction.
func snapshotRanked(t testing.TB, e *Engine) []gallery.Candidate {
	t.Helper()
	probe := randomGroup(99, e.Features(), 1).Col(0)
	top, err := e.TopKP(probe, e.Len(), 1)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	return top
}

func assertSameRanked(t testing.TB, want, got []gallery.Candidate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("ranking lengths differ: %d vs %d", len(want), len(got))
	}
	for r := range want {
		if want[r].ID != got[r].ID || want[r].Score != got[r].Score {
			t.Fatalf("rank %d: (%q, %v) != (%q, %v)", r, got[r].ID, got[r].Score, want[r].ID, want[r].Score)
		}
	}
}

func TestCompactionFoldsOverlay(t *testing.T) {
	const features = 10
	dir := filepath.Join(t.TempDir(), "live")
	e, err := Create(dir, features, nil, Options{NoSync: true, Shards: 3})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	group := randomGroup(3, features, 20)
	ids := subjectIDs(20)
	for j, id := range ids {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	for _, id := range []string{ids[0], ids[7], ids[19]} {
		if err := e.Delete(id); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	want := snapshotRanked(t, e)

	if err := e.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := e.Stats()
	if st.Generation != 1 || st.BaseRecords != 17 || st.MemRecords != 0 || st.Tombstones != 0 || st.WALRecords != 0 {
		t.Fatalf("post-compaction stats: %+v", st)
	}
	assertSameRanked(t, want, snapshotRanked(t, e))

	// Post-compaction mutations land in the fresh log and survive a
	// reopen of the new generation.
	extra := randomGroup(4, features, 1)
	if err := e.Enroll("zz-new", extra.Col(0)); err != nil {
		t.Fatalf("post-compaction Enroll: %v", err)
	}
	want = snapshotRanked(t, e)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open after compaction: %v", err)
	}
	defer re.Close()
	if re.Generation() != 1 || re.Len() != 18 {
		t.Fatalf("reopened: gen=%d len=%d", re.Generation(), re.Len())
	}
	assertSameRanked(t, want, snapshotRanked(t, re))

	// The superseded generation's files are gone.
	if _, err := os.Stat(filepath.Join(dir, genName(0, "bpw"))); !os.IsNotExist(err) {
		t.Fatalf("generation 0 log still present: %v", err)
	}
}

func TestCompactEverythingDeleted(t *testing.T) {
	const features = 8
	dir := filepath.Join(t.TempDir(), "live")
	e, err := Create(dir, features, nil, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	group := randomGroup(5, features, 3)
	for j, id := range subjectIDs(3) {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	for _, id := range subjectIDs(3) {
		if err := e.Delete(id); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact to empty: %v", err)
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d, want 0", e.Len())
	}
	if _, err := e.TopK(group.Col(0), 1); err == nil {
		t.Fatal("TopK on empty engine should error")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open baseless generation: %v", err)
	}
	defer re.Close()
	if re.Len() != 0 || re.Generation() != 2 {
		t.Fatalf("reopened empty: len=%d gen=%d", re.Len(), re.Generation())
	}
	// And the empty engine accepts fresh enrollments again.
	if err := re.Enroll("fresh", group.Col(1)); err != nil {
		t.Fatalf("enroll into emptied engine: %v", err)
	}
}

func TestAutoCompaction(t *testing.T) {
	const features = 8
	e := createEngine(t, features, Options{CompactAfter: 10})
	group := randomGroup(6, features, 25)
	for j, id := range subjectIDs(25) {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	// Background compactions race the enroll loop; quiesce and check
	// that at least one fired and the engine is intact.
	e.wg.Wait()
	st := e.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no background compaction fired: %+v", st)
	}
	if e.Len() != 25 {
		t.Fatalf("Len = %d, want 25", e.Len())
	}
}

func TestCreateFromStore(t *testing.T) {
	const features, subjects = 14, 30
	g := gallery.New(features)
	if err := g.EnrollMatrix(subjectIDs(subjects), randomGroup(7, features, subjects)); err != nil {
		t.Fatalf("EnrollMatrix: %v", err)
	}
	src, err := shard.FromGallery(g, 4, false)
	if err != nil {
		t.Fatalf("FromGallery: %v", err)
	}
	probe := randomGroup(98, features, 1).Col(0)
	want, err := src.TopKP(probe, subjects, 1)
	if err != nil {
		t.Fatalf("source TopK: %v", err)
	}

	dir := filepath.Join(t.TempDir(), "live")
	e, err := CreateFromStore(dir, src, Options{NoSync: true})
	if err != nil {
		t.Fatalf("CreateFromStore: %v", err)
	}
	defer e.Close()
	if e.Len() != subjects || e.Stats().BaseRecords != subjects {
		t.Fatalf("seeded engine: len=%d stats=%+v", e.Len(), e.Stats())
	}
	got, err := e.TopKP(probe, subjects, 1)
	if err != nil {
		t.Fatalf("live TopK: %v", err)
	}
	assertSameRanked(t, want, got)

	// Creating on top of an existing live directory is refused.
	if _, err := CreateFromStore(dir, src, Options{NoSync: true}); err == nil {
		t.Fatal("CreateFromStore over an existing live directory should fail")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{}); !errors.Is(err, ErrNotLive) {
		t.Fatalf("Open on a bare directory: got %v, want ErrNotLive", err)
	}

	dir := filepath.Join(t.TempDir(), "live")
	e, err := Create(dir, 6, nil, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	e.Close()
	if err := os.Remove(filepath.Join(dir, genName(0, "bpw"))); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrWALMissing) {
		t.Fatalf("Open without a log: got %v, want ErrWALMissing", err)
	}
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "x"), 0, nil, Options{}); err == nil {
		t.Fatal("Create with zero features should fail")
	}
	if _, err := Create(filepath.Join(t.TempDir(), "x"), 4, []int{1, 2}, Options{}); !errors.Is(err, gallery.ErrDimMismatch) {
		t.Fatal("Create with mismatched index length should fail with ErrDimMismatch")
	}
}

func TestFeatureIndexRoundTrip(t *testing.T) {
	// A live engine over a feature index accepts raw-space enrollment
	// and probes, and the geometry survives reopen and compaction.
	index := []int{9, 3, 17, 5}
	dir := filepath.Join(t.TempDir(), "live")
	e, err := Create(dir, len(index), index, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	raw := randomGroup(8, 24, 3) // 24 raw features, projected to 4
	for j, id := range subjectIDs(3) {
		if err := e.Enroll(id, raw.Col(j)); err != nil {
			t.Fatalf("raw-space Enroll: %v", err)
		}
	}
	top, err := e.TopKP(raw.Col(1), 1, 1)
	if err != nil {
		t.Fatalf("raw-space TopK: %v", err)
	}
	if top[0].ID != "s00001" {
		t.Fatalf("self-probe top-1 = %q", top[0].ID)
	}
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	e.Close()
	re, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer re.Close()
	if got := re.FeatureIndex(); len(got) != len(index) {
		t.Fatalf("feature index lost across compaction+reopen: %v", got)
	}
	top, err = re.TopKP(raw.Col(1), 1, 1)
	if err != nil {
		t.Fatalf("reopened raw-space TopK: %v", err)
	}
	if top[0].ID != "s00001" {
		t.Fatalf("reopened self-probe top-1 = %q", top[0].ID)
	}
}

// TestAbortFreezeWindowMutations pins the failed-compaction unwind
// against mutations that landed during the compaction window: records
// deleted during the window must NOT resurrect (and a delete +
// re-enroll must not panic the unwind), and the pruned tombstone set
// must leave the engine able to compact and reopen cleanly afterwards.
// The freeze is simulated white-box (the mirror of Compact's phase 1)
// because a mid-phase-2 failure cannot be scheduled deterministically
// from outside.
func TestAbortFreezeWindowMutations(t *testing.T) {
	const features = 8
	dir := filepath.Join(t.TempDir(), "live")
	e, err := Create(dir, features, nil, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	group := randomGroup(61, features, 8)
	for j, id := range []string{"a", "b", "c"} {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := e.Compact(); err != nil { // a, b, c into the base
		t.Fatalf("Compact: %v", err)
	}
	if err := e.Enroll("d", group.Col(3)); err != nil { // overlay record
		t.Fatalf("Enroll d: %v", err)
	}
	if err := e.Delete("a"); err != nil { // pre-freeze base tombstone
		t.Fatalf("Delete a: %v", err)
	}

	// Simulate Compact's phase 1 freeze.
	e.mu.Lock()
	e.frozen = e.mem
	e.mem = gallery.New(features)
	e.deadBase, e.dead = e.dead, map[string]bool{}
	e.rebuild()
	e.mu.Unlock()

	// Window mutations: delete+re-enroll a frozen record, delete a base
	// record, enroll a fresh one.
	if err := e.Delete("d"); err != nil {
		t.Fatalf("window Delete d: %v", err)
	}
	if err := e.Enroll("d", group.Col(4)); err != nil {
		t.Fatalf("window re-Enroll d: %v", err)
	}
	if err := e.Delete("b"); err != nil {
		t.Fatalf("window Delete b: %v", err)
	}
	if err := e.Enroll("x", group.Col(5)); err != nil {
		t.Fatalf("window Enroll x: %v", err)
	}

	e.abortFreeze()

	want := map[string]bool{"c": true, "d": true, "x": true}
	if e.Len() != len(want) {
		t.Fatalf("after abort: Len=%d IDs=%v, want %v", e.Len(), e.IDs(), want)
	}
	for id := range want {
		if e.Index(id) < 0 {
			t.Fatalf("after abort: %q missing (IDs=%v)", id, e.IDs())
		}
	}
	for _, gone := range []string{"a", "b"} {
		if e.Index(gone) >= 0 {
			t.Fatalf("after abort: deleted %q resurrected", gone)
		}
	}
	// The re-enrolled d must carry the window's bits, not the frozen ones.
	top, err := e.TopKP(group.Col(4), 1, 1)
	if err != nil || top[0].ID != "d" {
		t.Fatalf("re-enrolled d lost its window bits: %v %v", top, err)
	}

	// The engine must remain fully operational: compact and reopen.
	wantRanked := snapshotRanked(t, e)
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact after abort: %v", err)
	}
	assertSameRanked(t, wantRanked, snapshotRanked(t, e))
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open after abort+compact: %v", err)
	}
	defer re.Close()
	assertSameRanked(t, wantRanked, snapshotRanked(t, re))
}

// TestReopenInheritsShardCount pins that Open without an explicit
// shard option keeps the persisted base layout instead of silently
// folding a multi-shard base into one shard at the next compaction.
func TestReopenInheritsShardCount(t *testing.T) {
	const features = 8
	dir := filepath.Join(t.TempDir(), "live")
	e, err := Create(dir, features, nil, Options{NoSync: true, Shards: 4})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	group := randomGroup(62, features, 6)
	for j, id := range subjectIDs(6) {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	e.Close()

	re, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer re.Close()
	if err := re.Compact(); err != nil {
		t.Fatalf("Compact after reopen: %v", err)
	}
	e2, err := shard.Open(filepath.Join(dir, genName(re.Generation(), "bpm")))
	if err != nil {
		t.Fatalf("opening compacted base: %v", err)
	}
	if e2.Shards() != 4 {
		t.Fatalf("reopened compaction wrote %d shards, want 4", e2.Shards())
	}
}
