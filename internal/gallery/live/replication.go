package live

// The engine's replication surface. A primary ships its history to
// read replicas as the raw CRC-framed write-ahead-log records it
// already commits locally (wal.go) — no second codec, no translation —
// addressed by a monotonic mutation sequence number:
//
//	seq(record) = baseSeq(generation) + position in the generation's log
//
// baseSeq is persisted per generation in a tiny sidecar file
// ("live.gNNNN.seq", text: "<baseSeq> <seedSeq>") written before the
// generation becomes CURRENT. A compaction seeds the new generation's
// log with a collapsed, reordered retelling of everything not yet in
// the base (sorted tombstones, then memtable enrolls), so the switch
// sets baseSeq' = seq_at_swap - seededRecords and seedSeq' =
// seq_at_swap: sequence numbers keep counting across generations, but
// the seeded prefix is NOT the byte-for-byte history the old
// generation's log told. A replica may therefore resume a tail across
// a generation switch only from seedSeq or later; anything earlier
// must re-bootstrap from a snapshot (ErrSeqOutOfRange tells it so).
// Within one generation any position in [baseSeq, seq] is resumable.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"brainprint/internal/gallery"
)

// ErrSeqOutOfRange means a replication read asked for a sequence
// position the current generation's log does not retain — the follower
// is too far behind (or ahead) to resume streaming and must
// re-bootstrap from a fresh snapshot.
var ErrSeqOutOfRange = errors.New("live: requested sequence is outside the retained write-ahead log window")

// ReplicationState is a point-in-time snapshot of the engine's
// replication coordinates, the contract a follower bootstraps and
// resumes against.
type ReplicationState struct {
	// Generation is the current on-disk generation number.
	Generation int
	// BaseSeq is the sequence number the generation's log starts after.
	BaseSeq int64
	// SeedSeq is the sequence the generation's seeded prefix replays up
	// to — the earliest position a follower of an older generation may
	// resume from.
	SeedSeq int64
	// Seq is the sequence number of the last committed mutation.
	Seq int64
	// WALName is the generation's log segment file name.
	WALName string
	// WALBytes is the committed length of the log segment, header
	// included — the byte range a bootstrap must copy.
	WALBytes int64
	// Features is the fingerprint dimensionality, which bounds the
	// size of any legal replicated frame.
	Features int
}

// ReplicationState reports the engine's current replication
// coordinates.
func (e *Engine) ReplicationState() ReplicationState {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return ReplicationState{
		Generation: e.gen,
		BaseSeq:    e.baseSeq,
		SeedSeq:    e.seedSeq,
		Seq:        e.baseSeq + int64(e.walRecords),
		WALName:    genName(e.gen, "bpw"),
		WALBytes:   e.walBytes,
		Features:   e.features,
	}
}

// bump wakes every WaitWAL waiter by closing and replacing the
// broadcast channel. Called with the write lock held.
func (e *Engine) bump() {
	close(e.walCh)
	e.walCh = make(chan struct{})
}

// GenerationFile names one immutable file of the current generation a
// follower copies during bootstrap.
type GenerationFile struct {
	// Name is the file's name within the live directory.
	Name string
	// Size is the file's length in bytes.
	Size int64
}

// GenerationFiles lists the current generation's immutable files — the
// base manifest, shard files, ANN sidecar, and sequence sidecar when
// present — excluding the write-ahead log, whose committed prefix is
// reported by ReplicationState and served by OpenGenerationFile.
func (e *Engine) GenerationFiles() ([]GenerationFile, error) {
	e.mu.RLock()
	gen := e.gen
	e.mu.RUnlock()
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return nil, err
	}
	prefix := fmt.Sprintf("live.g%04d.", gen)
	walName := genName(gen, "bpw")
	var out []GenerationFile
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, prefix) || name == walName {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			return nil, err
		}
		out = append(out, GenerationFile{Name: name, Size: info.Size()})
	}
	return out, nil
}

// OpenGenerationFile opens one of the current generation's files by
// name for a bootstrap copy, returning the reader and the byte length
// to copy. Names outside the current generation's prefix (or with path
// separators) are refused; the write-ahead log is limited to its
// committed prefix so a torn or in-flight tail never ships.
func (e *Engine) OpenGenerationFile(name string) (io.ReadCloser, int64, error) {
	e.mu.RLock()
	gen := e.gen
	committed := e.walBytes
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, 0, ErrClosed
	}
	prefix := fmt.Sprintf("live.g%04d.", gen)
	if name != filepath.Base(name) || !strings.HasPrefix(name, prefix) {
		return nil, 0, fmt.Errorf("live: %q is not a file of generation %d", name, gen)
	}
	f, err := os.Open(filepath.Join(e.dir, name))
	if err != nil {
		return nil, 0, err
	}
	size := committed
	if name != genName(gen, "bpw") {
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, 0, err
		}
		size = info.Size()
		return f, size, nil
	}
	return struct {
		io.Reader
		io.Closer
	}{io.LimitReader(f, size), f}, size, nil
}

// WALRange reads a batch of committed frames from the generation gen
// log, starting after sequence afterSeq, bounded to roughly maxBytes
// (at least one frame). It returns the verbatim frame bytes and the
// sequence of the last frame included. An empty batch with upTo ==
// afterSeq means the follower is caught up. ErrSeqOutOfRange means gen
// is no longer current or afterSeq is outside [BaseSeq, Seq] — the
// follower must re-negotiate (resume at SeedSeq or re-bootstrap).
func (e *Engine) WALRange(gen int, afterSeq int64, maxBytes int) ([]byte, int64, error) {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, 0, ErrClosed
	}
	if gen != e.gen {
		e.mu.RUnlock()
		return nil, 0, fmt.Errorf("%w: generation %d superseded by %d", ErrSeqOutOfRange, gen, e.gen)
	}
	seq := e.baseSeq + int64(e.walRecords)
	if afterSeq < e.baseSeq || afterSeq > seq {
		e.mu.RUnlock()
		return nil, 0, fmt.Errorf("%w: after=%d, window [%d, %d]", ErrSeqOutOfRange, afterSeq, e.baseSeq, seq)
	}
	idx := int(afterSeq - e.baseSeq)
	if idx == len(e.walOff) {
		e.mu.RUnlock()
		return nil, afterSeq, nil
	}
	startOff := e.walStart
	if idx > 0 {
		startOff = e.walOff[idx-1]
	}
	end := idx
	for end < len(e.walOff) {
		if end > idx && e.walOff[end]-startOff > int64(maxBytes) {
			break
		}
		end++
	}
	endOff := e.walOff[end-1]
	upTo := e.baseSeq + int64(end)
	path := filepath.Join(e.dir, genName(e.gen, "bpw"))
	e.mu.RUnlock()

	// Committed byte ranges are immutable (appends only ever extend the
	// file, rollbacks only truncate uncommitted bytes), so the read can
	// run unlocked on a fresh handle; an unlinked-but-open segment after
	// a concurrent generation switch still reads fine.
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	buf := make([]byte, endOff-startOff)
	if _, err := f.ReadAt(buf, startOff); err != nil {
		return nil, 0, fmt.Errorf("live: reading write-ahead log range: %w", err)
	}
	return buf, upTo, nil
}

// WaitWAL blocks until the engine commits a mutation past afterSeq,
// switches away from generation gen, or closes (ErrClosed); ctx
// cancellation returns ctx.Err(). A nil return means the follower
// should retry WALRange, which will either yield frames or report the
// generation switch.
func (e *Engine) WaitWAL(ctx context.Context, gen int, afterSeq int64) error {
	for {
		e.mu.RLock()
		if e.closed {
			e.mu.RUnlock()
			return ErrClosed
		}
		if e.gen != gen || e.baseSeq+int64(e.walRecords) > afterSeq {
			e.mu.RUnlock()
			return nil
		}
		ch := e.walCh
		e.mu.RUnlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// ApplyReplicated verifies and commits one replicated frame — the
// verbatim bytes a primary's WALRange produced — through the same
// fsync-before-visibility path as a local mutation, so a follower's
// log is byte-identical to the primary's history and its query results
// are bit-identical at the same sequence number. Framing or checksum
// damage fails with ErrWALCorrupt; a duplicate enroll or unknown
// delete fails with the gallery sentinels, the signature of a follower
// whose history has diverged.
func (e *Engine) ApplyReplicated(frame []byte) error {
	if len(frame) < 8 {
		return fmt.Errorf("%w: replicated frame of %d bytes", ErrWALCorrupt, len(frame))
	}
	payloadLen := int64(binary.LittleEndian.Uint32(frame))
	if payloadLen+8 != int64(len(frame)) {
		return fmt.Errorf("%w: replicated frame claims %d payload bytes in a %d-byte frame", ErrWALCorrupt, payloadLen, len(frame))
	}
	payload := frame[4 : 4+payloadLen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(frame[4+payloadLen:]) {
		return fmt.Errorf("%w: replicated frame failed checksum", ErrWALCorrupt)
	}
	rec, err := decodeWALPayload(payload, walHeader{features: e.features, featureIndex: e.fidx})
	if err != nil {
		return fmt.Errorf("%w: replicated frame: %v", ErrWALCorrupt, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	switch rec.kind {
	case walKindEnroll:
		if _, dup := e.byID[rec.id]; dup {
			return fmt.Errorf("%w: %q", gallery.ErrDuplicateID, rec.id)
		}
		if err := e.commit(frame); err != nil {
			return err
		}
		if err := e.applyEnroll(rec.id, rec.vec); err != nil {
			return err
		}
	default:
		if _, ok := e.byID[rec.id]; !ok {
			return fmt.Errorf("%w: %q", gallery.ErrUnknownID, rec.id)
		}
		if err := e.commit(frame); err != nil {
			return err
		}
		if err := e.applyDelete(rec.id); err != nil {
			return err
		}
	}
	e.maybeKickCompaction()
	return nil
}

// WriteCurrentFile atomically points a live directory at a generation
// — exported for replica bootstrap, which assembles a directory from
// copied generation files and must flip it live only once every file
// is durable.
func WriteCurrentFile(dir string, gen int) error {
	return writeCurrent(dir, gen)
}

// seqName renders a generation's sequence-sidecar file name.
func seqName(gen int) string { return genName(gen, "seq") }

// writeSeqFile persists a generation's sequence coordinates
// ("<baseSeq> <seedSeq>", text) and syncs them, before the generation
// becomes CURRENT.
func writeSeqFile(dir string, gen int, baseSeq, seedSeq int64) error {
	path := filepath.Join(dir, seqName(gen))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "%d %d\n", baseSeq, seedSeq); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readSeqFile parses a generation's sequence coordinates. A missing or
// malformed sidecar — a directory written before sequence numbering
// existed — degrades to (0, 0): the local log still replays correctly,
// only the cross-restart sequence origin is forgotten.
func readSeqFile(dir string, gen int) (baseSeq, seedSeq int64) {
	b, err := os.ReadFile(filepath.Join(dir, seqName(gen)))
	if err != nil {
		return 0, 0
	}
	if _, err := fmt.Sscanf(string(b), "%d %d", &baseSeq, &seedSeq); err != nil || baseSeq < 0 || seedSeq < baseSeq {
		return 0, 0
	}
	return baseSeq, seedSeq
}
