// Package live is the writable gallery engine: a crash-safe,
// concurrently mutable store that keeps the immutable sharded engine's
// query contract while accepting online enrollment and deletion. The
// source paper's linkage setting — like every population-scale
// record-linkage attack — has an auxiliary database that grows over
// time: the adversary (or the data steward auditing re-identification
// risk) keeps acquiring identified records and must fold them in
// without rebuilding or restarting the service. This package makes the
// gallery a live store:
//
//   - Mutations commit to a CRC-framed write-ahead log (wal.go) with an
//     fsync before they become visible to queries, then apply to an
//     in-memory memtable overlay.
//   - Queries sweep the immutable base store and the overlay in one
//     pass under the same (score descending, subject ID ascending)
//     strict total order as the sharded engine, with bit-identical
//     scores: a live gallery answers exactly like a cold gallery
//     offline-enrolled with the same records.
//   - Snapshot compaction (compact.go) folds the log into fresh shard
//     files under a generation switch (an atomic CURRENT rename), off
//     the query path: only the memtable freeze and the final swap take
//     the engine lock.
//   - Open replays the log, truncating a torn tail (a crash mid-append)
//     and failing hard on interior corruption — see wal.go for the
//     recovery rule and DESIGN.md §7 for why the distinction matters.
//
// The on-disk layout of a live directory is
//
//	CURRENT                  the current generation number, text
//	live.g0000.bpw           generation 0 write-ahead log
//	live.g0001.bpm           generation 1 base manifest (after compaction)
//	live.g0001.s000.bpg ...  generation 1 shard files
//	live.g0001.bpw           generation 1 write-ahead log
//
// where every generation's manifest + shards + log are written and
// synced in full before CURRENT is atomically renamed to point at them,
// so a crash at any instant leaves a consistent generation to recover.
package live

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"brainprint/internal/defense"
	"brainprint/internal/gallery"
	"brainprint/internal/gallery/shard"
)

// source identifies which store a live enumeration entry lives in.
type source uint8

const (
	srcBase   source = iota // immutable base store (current generation)
	srcFrozen               // memtable frozen by an in-flight compaction
	srcMem                  // active memtable
)

// loc maps one live enumeration index to its backing record.
type loc struct {
	src source
	idx int // base: global store index; frozen/mem: gallery enrollment index
}

// Options tunes a live engine at Create/Open time.
type Options struct {
	// Shards is the shard count compaction writes the base store with
	// (default 1; CreateFromStore inherits the source store's count).
	Shards int
	// CompactAfter triggers a background compaction once the
	// write-ahead log holds at least this many records (0, the default,
	// means compaction is manual-only via Compact).
	CompactAfter int
	// NoSync disables the per-commit fsync — throughput for crash
	// safety, the classic trade. Only for bulk loads and tests; the
	// default (false) syncs every commit.
	NoSync bool
	// Defense is the anonymization pipeline every base build passes its
	// snapshot through (defense.Apply): the seed snapshot of
	// CreateFromStore and every compaction's fold. The descriptor is
	// persisted in each base's manifest, and Open inherits it from the
	// loaded base when this field is nil — so a defended live gallery
	// (and any replica bootstrapped from its generation files) keeps
	// re-applying its pipeline across reopens without the caller
	// re-passing it. On an empty-created directory the descriptor
	// becomes durable at the first compaction; until then it lives only
	// in this option. See DESIGN.md §12 for the composition rule.
	Defense *defense.Descriptor
}

// withDefaults resolves zero values.
func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	return o
}

// Engine is a live, mutable gallery over a directory: an immutable
// sharded base store plus a write-ahead-logged memtable overlay. It
// implements gallery.Mutable (and therefore gallery.Engine), so it
// drops in wherever a read-only gallery serves today. All methods are
// safe for concurrent use: queries share a read lock and run in
// parallel, mutations serialize, and compaction runs in the background
// touching the lock only to freeze the memtable and swap generations.
type Engine struct {
	dir  string
	opts Options

	// features/fidx are the immutable geometry, fixed at construction —
	// readable without the lock (the memtable pointer itself is not:
	// deletes and compactions replace it under the write lock).
	features int
	fidx     []int

	mu     sync.RWMutex
	closed bool
	gen    int
	base   *shard.Store     // nil before the first compaction of an empty-created directory
	frozen *gallery.Gallery // memtable frozen by the in-flight compaction, nil otherwise
	mem    *gallery.Gallery // active memtable; never nil, carries the geometry
	// dead holds tombstones not yet folded into a base: a query skips
	// these base/frozen records, and the swap replays them into the
	// fresh log. deadBase holds tombstones already folded into the
	// in-flight compaction's snapshot — still needed to filter the OLD
	// base until the swap, then dropped.
	dead     map[string]bool
	deadBase map[string]bool

	// The live enumeration: ids/locs/byID cover exactly the visible
	// records, in base, frozen, mem order. Maintained incrementally on
	// enroll, rebuilt on delete and swap. baseSkip is the dead-mask the
	// masked base scan consumes (nil when every base record is visible);
	// baseVisible counts base survivors — the live index where the
	// overlay's records start.
	ids         []string
	locs        []loc
	byID        map[string]int
	baseSkip    []bool
	baseVisible int

	// prec is the scan precision applied to the base store — carried
	// across compactions so a generation swap re-applies it to the
	// fresh base. The overlay always scans exact (see query.go).
	prec gallery.ScanPrecision

	// nprobe is the ANN cell fan-out applied to the base store (0 =
	// exact scan), carried across compactions like prec: each fresh
	// base is re-indexed when its predecessor carried an index, and
	// the fan-out is re-applied at the swap (see ann.go).
	nprobe int

	wal        *walWriter
	walRecords int
	walBytes   int64
	tornBytes  int64

	// Replication bookkeeping (see replication.go). baseSeq is the
	// global mutation sequence number the current generation's log
	// starts after; seedSeq is the sequence the seeded prefix written at
	// the last compaction replays up to (the earliest safe cross-
	// generation resume point); walStart is the offset just past the log
	// header; walOff[i] is the offset just past committed record i; and
	// walCh is closed-and-replaced on every commit, generation switch,
	// and Close, waking WaitWAL waiters.
	baseSeq  int64
	seedSeq  int64
	walStart int64
	walOff   []int64
	walCh    chan struct{}

	compactMu     sync.Mutex  // serializes compactions
	compactKick   atomic.Bool // a background compaction is scheduled or running
	compactingNow atomic.Bool // a compaction is running right now
	wg            sync.WaitGroup

	compactions atomic.Int64
	lastCompact atomic.Int64 // microseconds
}

var _ gallery.Mutable = (*Engine)(nil)

// currentFile is the name of the generation pointer file.
const currentFile = "CURRENT"

// genName renders a generation-scoped filename: live.g0004.bpw,
// live.g0004.bpm, and (via the shard package's manifest-derived naming)
// live.g0004.s000.bpg.
func genName(gen int, ext string) string {
	return fmt.Sprintf("live.g%04d.%s", gen, ext)
}

// Create initializes an empty live gallery directory for fingerprints
// with the given geometry (featureIndex nil for gallery-space
// enrollment) and returns the open engine. The directory is created if
// missing and must not already hold a live gallery.
func Create(dir string, features int, featureIndex []int, opts Options) (*Engine, error) {
	if features <= 0 {
		return nil, fmt.Errorf("live: non-positive feature count %d", features)
	}
	if featureIndex != nil && len(featureIndex) != features {
		return nil, fmt.Errorf("%w: feature index length %d != %d features", gallery.ErrDimMismatch, len(featureIndex), features)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, currentFile)); err == nil {
		return nil, fmt.Errorf("live: %s already holds a live gallery", dir)
	}
	e := newEngine(dir, features, featureIndex, opts)
	w, n, err := createWAL(filepath.Join(dir, genName(0, "bpw")), walHeader{features: features, featureIndex: e.featureIndexCopy()}, !e.opts.NoSync)
	if err != nil {
		return nil, err
	}
	e.wal, e.walBytes, e.walStart = w, n, n
	if err := writeSeqFile(dir, 0, 0, 0); err != nil {
		w.close()
		return nil, err
	}
	if err := writeCurrent(dir, 0); err != nil {
		w.close()
		return nil, err
	}
	e.rebuild()
	return e, nil
}

// CreateFromStore initializes a live gallery directory seeded with the
// records of an existing read-only store — the migration path from an
// offline-enrolled gallery or sharded store to a writable one. The
// seed records become generation 0's base (written as shard files plus
// a manifest, verbatim record moves preserving every bit) and the log
// starts empty. A partially loaded store is refused: migrating a
// degraded store would silently drop its faulted shards' records.
func CreateFromStore(dir string, src *shard.Store, opts Options) (*Engine, error) {
	if src.LoadedShards() != src.Shards() {
		return nil, fmt.Errorf("live: refusing to seed from a degraded store (%d of %d shards loaded)", src.LoadedShards(), src.Shards())
	}
	if opts.Shards <= 0 {
		opts.Shards = src.Shards()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, currentFile)); err == nil {
		return nil, fmt.Errorf("live: %s already holds a live gallery", dir)
	}
	e := newEngine(dir, src.Features(), src.FeatureIndex(), opts)
	snap, err := snapshotGallery(src.Features(), src.FeatureIndex(), func(yield func(string, []float64) error) error {
		for gi, id := range src.IDs() {
			if err := yield(id, src.Fingerprint(gi)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// A defended source's pipeline carries over unless the caller gave
	// one; either way the seed snapshot passes through it, exactly like
	// a compaction's fold would.
	if e.opts.Defense == nil {
		e.opts.Defense = src.Defense()
	}
	if snap, err = defense.Apply(snap, e.opts.Defense, 0); err != nil {
		return nil, err
	}
	base, err := shard.FromGallery(snap, e.opts.Shards, false)
	if err != nil {
		return nil, err
	}
	base.SetDefense(e.opts.Defense)
	if err := base.WriteFiles(filepath.Join(dir, genName(0, "bpm"))); err != nil {
		return nil, err
	}
	e.base = base
	w, n, err := createWAL(filepath.Join(dir, genName(0, "bpw")), walHeader{features: e.mem.Features(), featureIndex: e.featureIndexCopy()}, !e.opts.NoSync)
	if err != nil {
		return nil, err
	}
	e.wal, e.walBytes, e.walStart = w, n, n
	if err := writeSeqFile(dir, 0, 0, 0); err != nil {
		w.close()
		return nil, err
	}
	if err := writeCurrent(dir, 0); err != nil {
		w.close()
		return nil, err
	}
	e.rebuild()
	return e, nil
}

// Open recovers a live gallery directory: CURRENT names the generation,
// its manifest (when present) loads as the immutable base, and its
// write-ahead log replays into the memtable overlay — truncating a torn
// tail from a crash mid-append (Stats reports the recovered byte count)
// and failing hard with ErrWALCorrupt on interior corruption. Orphaned
// files from a compaction that crashed before its generation switch are
// swept away.
func Open(dir string, opts Options) (*Engine, error) {
	gen, err := readCurrent(dir)
	if err != nil {
		return nil, err
	}
	var base *shard.Store
	manifestPath := filepath.Join(dir, genName(gen, "bpm"))
	if _, err := os.Stat(manifestPath); err == nil {
		base, err = shard.Open(manifestPath)
		if err != nil {
			// A live base must be fully healthy: compacting a degraded
			// base would fold the faulted shards' records out of
			// existence. Serving degraded read-only data is the
			// immutable store's job.
			return nil, fmt.Errorf("live: generation %d base: %w", gen, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	features, featureIndex := 0, []int(nil)
	if base != nil {
		features, featureIndex = base.Features(), base.FeatureIndex()
		if opts.Shards <= 0 {
			// Inherit the persisted layout: without this, reopening a
			// 4-shard live gallery and compacting would silently fold
			// the base into a single shard.
			opts.Shards = base.Shards()
		}
		if opts.Defense == nil {
			// Inherit the persisted anonymization pipeline: without
			// this, reopening a defended live gallery (or a replica's
			// bootstrapped copy of one) and compacting would silently
			// stop defending the fold.
			opts.Defense = base.Defense()
		}
	}
	var e *Engine
	apply := func(rec walRecord) error {
		switch rec.kind {
		case walKindEnroll:
			return e.applyEnroll(rec.id, rec.vec)
		default:
			return e.applyDelete(rec.id)
		}
	}
	walPath := filepath.Join(dir, genName(gen, "bpw"))
	if base == nil {
		// An empty-created directory: the log header is the only place
		// the geometry lives, so peek it before building the engine.
		h, err := peekWALHeader(walPath)
		if err != nil {
			return nil, err
		}
		features, featureIndex = h.features, h.featureIndex
	}
	e = newEngine(dir, features, featureIndex, opts)
	e.gen = gen
	e.base = base
	e.rebuild() // enumerate the base before replay: deletes resolve against it
	w, tail, err := openWAL(walPath, walHeader{features: features, featureIndex: e.featureIndexCopy()}, !e.opts.NoSync, apply)
	if err != nil {
		return nil, err
	}
	e.wal = w
	e.walRecords = tail.records
	e.walBytes = tail.goodEnd
	e.walStart = tail.hdrEnd
	e.walOff = tail.ends
	e.tornBytes = tail.tornBytes
	e.baseSeq, e.seedSeq = readSeqFile(dir, gen)
	e.sweepOrphans()
	return e, nil
}

// peekWALHeader reads just the geometry header of a segment.
func peekWALHeader(path string) (walHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return walHeader{}, fmt.Errorf("%w: %s", ErrWALMissing, path)
		}
		return walHeader{}, err
	}
	defer f.Close()
	h, _, err := decodeWALHeader(bufio.NewReader(f))
	if err != nil {
		return walHeader{}, fmt.Errorf("%s: %w", path, err)
	}
	return h, nil
}

// newEngine assembles the in-memory shell shared by Create and Open.
func newEngine(dir string, features int, featureIndex []int, opts Options) *Engine {
	var mem *gallery.Gallery
	if featureIndex != nil {
		mem = gallery.WithFeatureIndex(featureIndex)
	} else {
		mem = gallery.New(features)
	}
	return &Engine{
		dir:      dir,
		opts:     opts.withDefaults(),
		features: features,
		fidx:     mem.FeatureIndex(),
		mem:      mem,
		dead:     map[string]bool{},
		deadBase: map[string]bool{},
		walCh:    make(chan struct{}),
	}
}

// featureIndexCopy returns the geometry's feature index (nil when the
// engine stores gallery-space fingerprints).
func (e *Engine) featureIndexCopy() []int { return e.fidx }

// Dir returns the live gallery's directory.
func (e *Engine) Dir() string { return e.dir }

// Close waits for any in-flight background compaction and releases the
// write-ahead log. Further mutations and compactions fail with
// ErrClosed; in-flight queries finish normally.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.bump() // wake WaitWAL waiters so replication streams end promptly
	e.mu.Unlock()
	e.wg.Wait()
	return e.wal.close()
}

// ---- mutations ----

// Enroll adds one subject online: the fingerprint is normalized exactly
// like offline enrollment (projection through the feature index when
// raw-space, then z-scoring), committed to the write-ahead log with an
// fsync, and only then made visible to queries. Duplicate IDs fail with
// gallery.ErrDuplicateID; a deleted ID may be re-enrolled.
func (e *Engine) Enroll(id string, fingerprint []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if _, dup := e.byID[id]; dup {
		return fmt.Errorf("%w: %q", gallery.ErrDuplicateID, id)
	}
	if id == "" || len(id) > gallery.MaxIDLen {
		return fmt.Errorf("live: subject id is %d bytes (want 1..%d)", len(id), gallery.MaxIDLen)
	}
	z, err := e.mem.Normalize(fingerprint)
	if err != nil {
		return err
	}
	if err := e.commit(encodeWALRecord(walKindEnroll, id, z)); err != nil {
		return err
	}
	if err := e.applyEnroll(id, z); err != nil {
		return err
	}
	e.maybeKickCompaction()
	return nil
}

// Delete removes one enrolled subject: the tombstone is committed to
// the write-ahead log with an fsync, then the record disappears from
// queries — physically from the memtable, logically (until the next
// compaction) from the immutable base. Unknown IDs fail with
// gallery.ErrUnknownID.
func (e *Engine) Delete(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if _, ok := e.byID[id]; !ok {
		return fmt.Errorf("%w: %q", gallery.ErrUnknownID, id)
	}
	if err := e.commit(encodeWALRecord(walKindDelete, id, nil)); err != nil {
		return err
	}
	if err := e.applyDelete(id); err != nil {
		return err
	}
	e.maybeKickCompaction()
	return nil
}

// commit appends one framed record to the log, updating the counters,
// the replication offset table, and waking stream waiters. Called with
// the write lock held.
func (e *Engine) commit(frame []byte) error {
	if err := e.wal.append(frame); err != nil {
		return fmt.Errorf("live: committing to write-ahead log: %w", err)
	}
	e.walRecords++
	e.walBytes += int64(len(frame))
	e.walOff = append(e.walOff, e.walBytes)
	e.bump()
	return nil
}

// applyEnroll makes a committed (or replayed) enrollment visible:
// the normalized vector lands in the memtable and the enumeration
// grows by one. Called with the write lock held (or during Open,
// before the engine is shared).
func (e *Engine) applyEnroll(id string, z []float64) error {
	if _, dup := e.byID[id]; dup {
		return fmt.Errorf("%w: %q", gallery.ErrDuplicateID, id)
	}
	if err := e.mem.EnrollNormalized(id, z); err != nil {
		return err
	}
	e.ids = append(e.ids, id)
	e.locs = append(e.locs, loc{src: srcMem, idx: e.mem.Len() - 1})
	e.byID[id] = len(e.ids) - 1
	return nil
}

// applyDelete makes a committed (or replayed) deletion visible. A
// memtable record is physically rebuilt away; a base or frozen record
// is tombstoned until the next compaction folds it out. Called with the
// write lock held (or during Open).
func (e *Engine) applyDelete(id string) error {
	li, ok := e.byID[id]
	if !ok {
		return fmt.Errorf("%w: %q", gallery.ErrUnknownID, id)
	}
	if e.locs[li].src == srcMem {
		e.mem = rebuildWithout(e.mem, id)
	} else {
		e.dead[id] = true
	}
	e.rebuild()
	return nil
}

// rebuildWithout copies a memtable minus one subject, preserving
// enrollment order and every stored bit.
func rebuildWithout(g *gallery.Gallery, drop string) *gallery.Gallery {
	var out *gallery.Gallery
	if idx := g.FeatureIndex(); idx != nil {
		out = gallery.WithFeatureIndex(idx)
	} else {
		out = gallery.New(g.Features())
	}
	for i, id := range g.IDs() {
		if id == drop {
			continue
		}
		// Enrolling a copy of already-normalized bits cannot fail: the
		// source gallery enforced uniqueness and dimensions.
		if err := out.EnrollNormalized(id, g.Fingerprint(i)); err != nil {
			panic(fmt.Sprintf("live: rebuilding memtable: %v", err))
		}
	}
	return out
}

// rebuild recomputes the live enumeration from the current sources:
// base survivors in global order, then frozen survivors, then the
// memtable. Called with the write lock held.
func (e *Engine) rebuild() {
	n := e.mem.Len()
	if e.base != nil {
		n += e.base.Len()
	}
	if e.frozen != nil {
		n += e.frozen.Len()
	}
	e.ids = make([]string, 0, n)
	e.locs = make([]loc, 0, n)
	e.byID = make(map[string]int, n)
	add := func(id string, l loc) {
		e.byID[id] = len(e.ids)
		e.ids = append(e.ids, id)
		e.locs = append(e.locs, l)
	}
	e.baseSkip, e.baseVisible = nil, 0
	if e.base != nil {
		for gi, id := range e.base.IDs() {
			if e.dead[id] || e.deadBase[id] {
				if e.baseSkip == nil {
					e.baseSkip = make([]bool, e.base.Len())
				}
				e.baseSkip[gi] = true
				continue
			}
			add(id, loc{src: srcBase, idx: gi})
		}
		e.baseVisible = len(e.ids)
	}
	if e.frozen != nil {
		for i, id := range e.frozen.IDs() {
			if e.dead[id] {
				continue
			}
			add(id, loc{src: srcFrozen, idx: i})
		}
	}
	for i, id := range e.mem.IDs() {
		add(id, loc{src: srcMem, idx: i})
	}
}

// fingerprint returns the stored vector behind live enumeration index
// i. Called with (at least) the read lock held.
func (e *Engine) fingerprint(i int) []float64 {
	l := e.locs[i]
	switch l.src {
	case srcBase:
		return e.base.Fingerprint(l.idx)
	case srcFrozen:
		return e.frozen.Fingerprint(l.idx)
	default:
		return e.mem.Fingerprint(l.idx)
	}
}

// ---- Engine surface: enumeration ----

// Len returns the number of visible enrolled subjects.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.ids)
}

// Features returns the fingerprint dimensionality.
func (e *Engine) Features() int { return e.features }

// FeatureIndex returns the raw-space feature indices the engine was
// built over, or nil. The caller must not mutate the result.
func (e *Engine) FeatureIndex() []int { return e.fidx }

// IDs returns the visible subject IDs in canonical (base, then
// overlay) order. Unlike the immutable engines it returns a copy: the
// live enumeration changes under mutation, and handing out the
// internal slice would race with it.
func (e *Engine) IDs() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, len(e.ids))
	copy(out, e.ids)
	return out
}

// ID returns the subject ID at canonical index i, as of the call; a
// concurrent mutation may renumber indices, so pair ID with Index
// inside one logical operation only.
func (e *Engine) ID(i int) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ids[i]
}

// Index returns the canonical index of a subject ID, or -1.
func (e *Engine) Index(id string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if li, ok := e.byID[id]; ok {
		return li
	}
	return -1
}

// ---- scan precision ----

// SetPrecision selects the precision of the base store's candidate
// scan (gallery.ScanFloat64 or gallery.ScanFloat32; see the shard
// package for the float32 selection + exact rescore contract — scores
// stay bit-identical either way). The overlay always scans exact. The
// setting survives compactions: each fresh base is built at the
// engine's precision. ScanInt8 is rejected: live bases carry no
// quantized sidecar.
func (e *Engine) SetPrecision(p gallery.ScanPrecision) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if p == gallery.ScanInt8 {
		return fmt.Errorf("live: %v scans need a quantized sidecar, which live bases do not carry", p)
	}
	if e.base != nil {
		if err := e.base.SetPrecision(p); err != nil {
			return err
		}
	}
	e.prec = p
	return nil
}

// Precision reports the engine's base-scan precision.
func (e *Engine) Precision() gallery.ScanPrecision {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.prec
}

var _ gallery.PrecisionSetter = (*Engine)(nil)

// Defense returns the anonymization pipeline every base build passes
// its snapshot through, nil for an undefended engine. The caller must
// not mutate the result.
func (e *Engine) Defense() *defense.Descriptor { return e.opts.Defense }

// ---- stats ----

// Generation returns the current on-disk generation number.
func (e *Engine) Generation() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.gen
}

// Stats returns the engine's current mutation and compaction counters.
func (e *Engine) Stats() gallery.MutableStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := gallery.MutableStats{
		Generation:          e.gen,
		Seq:                 e.baseSeq + int64(e.walRecords),
		BaseSeq:             e.baseSeq,
		MemRecords:          e.mem.Len(),
		Tombstones:          len(e.dead) + len(e.deadBase),
		WALRecords:          e.walRecords,
		WALBytes:            e.walBytes,
		Compactions:         e.compactions.Load(),
		Compacting:          e.compactingNow.Load(),
		LastCompactDuration: time.Duration(e.lastCompact.Load()) * time.Microsecond,
		RecoveredTornBytes:  e.tornBytes,
	}
	if e.base != nil {
		st.BaseRecords = e.base.Len()
	}
	if e.frozen != nil {
		st.MemRecords += e.frozen.Len()
	}
	return st
}

// ---- CURRENT handling ----

// writeCurrent atomically points the directory at a generation: the
// pointer is written to a temporary file, synced, and renamed over
// CURRENT, so a crash leaves either the old or the new generation —
// never a half-written pointer.
func writeCurrent(dir string, gen int) error {
	tmp := filepath.Join(dir, currentFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "%d\n", gen); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, currentFile)); err != nil {
		return err
	}
	return syncDir(dir)
}

// readCurrent parses the generation pointer.
func readCurrent(dir string) (int, error) {
	b, err := os.ReadFile(filepath.Join(dir, currentFile))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s", ErrNotLive, dir)
		}
		return 0, err
	}
	gen, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || gen < 0 {
		return 0, fmt.Errorf("live: corrupt CURRENT file in %s: %q", dir, strings.TrimSpace(string(b)))
	}
	return gen, nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// sweepOrphans removes generation files other than the current
// generation's — leftovers of a compaction that crashed before (its
// files are unreferenced) or completed (its predecessors are folded)
// a generation switch. Best-effort.
func (e *Engine) sweepOrphans() {
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return
	}
	keep := map[string]bool{
		currentFile:           true,
		genName(e.gen, "bpw"): true,
		genName(e.gen, "bpm"): true,
	}
	prefix := fmt.Sprintf("live.g%04d.", e.gen)
	for _, ent := range entries {
		name := ent.Name()
		if keep[name] || strings.HasPrefix(name, prefix) || !strings.HasPrefix(name, "live.g") {
			continue
		}
		_ = os.Remove(filepath.Join(e.dir, name))
	}
}

// sortedKeys returns a map's keys in ascending order, for deterministic
// tombstone replay into a fresh log segment.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
