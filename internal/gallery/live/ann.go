package live

import (
	"context"
	"fmt"
	"path/filepath"

	"brainprint/internal/gallery"
	"brainprint/internal/gallery/ivf"
	"brainprint/internal/gallery/shard"
)

// The live engine's ANN surface. The coarse index belongs to the
// immutable base store — the overwhelming share of a compacted
// engine's records — and the overlay (frozen + active memtable, which
// compaction keeps small) is always swept exactly, so enabling the
// index never costs overlay recall. Open picks up the current
// generation's sidecar automatically (shard.Open loads it beside the
// manifest); BuildANN trains one online without blocking queries; and
// compaction rebuilds the index for each fresh generation whenever the
// superseded base carried one, reusing its training seed, so the knob
// survives generation switches the same way scan precision does.

var _ gallery.ANNSetter = (*Engine)(nil)

// HasANNIndex reports whether the current base store carries an IVF
// coarse index (gallery.ANNSetter).
func (e *Engine) HasANNIndex() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.base != nil && e.base.HasANNIndex()
}

// ANNProbe reports the active cell fan-out (0 = exact scan).
func (e *Engine) ANNProbe() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.nprobe
}

// SetANNProbe selects how many index cells the base scan probes
// (gallery.ANNSetter): 0 returns to the exact sweep; a positive nprobe
// requires the base to carry an index (shard.ErrNoANNIndex otherwise).
// The setting survives compactions — each fresh base is re-indexed and
// the fan-out re-applied at the generation swap.
func (e *Engine) SetANNProbe(nprobe int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if nprobe < 0 {
		return fmt.Errorf("live: nprobe %d must be non-negative", nprobe)
	}
	if nprobe > 0 && (e.base == nil || !e.base.HasANNIndex()) {
		return shard.ErrNoANNIndex
	}
	if e.base != nil {
		if err := e.base.SetANNProbe(nprobe); err != nil {
			return err
		}
	}
	e.nprobe = nprobe
	return nil
}

// BuildANN trains an IVF coarse index over the current base store and
// persists it as the generation manifest's sidecar, without blocking
// queries: the base and generation are snapshotted under the lock,
// training runs off-lock (it only reads the immutable base), and the
// index attaches in a short write-locked window — refused if a
// compaction swapped generations mid-build, since the index would
// describe a base that no longer serves. cells 0 picks the default
// cell count for the base's size. An engine without a base (never
// compacted, or everything deleted) has nothing to index.
func (e *Engine) BuildANN(ctx context.Context, cells int, seed int64, parallelism int) error {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	base, gen := e.base, e.gen
	e.mu.RUnlock()
	if base == nil {
		return fmt.Errorf("live: no base store to index (compact first)")
	}
	x, err := base.TrainANN(ctx, cells, seed, parallelism)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if e.gen != gen || e.base != base {
		return fmt.Errorf("live: gallery compacted during the index build (generation %d -> %d); retry", gen, e.gen)
	}
	if err := base.AttachANN(x); err != nil {
		return err
	}
	return x.WriteFile(ivf.SidecarPath(filepath.Join(e.dir, genName(gen, "bpm"))))
}
