package live

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"brainprint/internal/defense"
	"brainprint/internal/gallery"
	"brainprint/internal/gallery/shard"
)

// defenseTestDescriptor is the pipeline the equivalence tests apply —
// microaggregation plus seeded noise, covering both the idempotent and
// the RNG-driven transform families.
func defenseTestDescriptor() *defense.Descriptor {
	return &defense.Descriptor{Steps: []defense.Step{
		{Kind: defense.KindKSame, K: 3},
		{Kind: defense.KindNoise, Mechanism: defense.Gaussian, Epsilon: 8, Seed: 7},
	}}
}

// TestDefendedCompactionMatchesEnrollTimeTransform is the
// enroll-vs-compact equivalence gate: folding a write-ahead log through
// a defended live engine must produce byte-identical base files to
// defending the same records offline (enroll-time) and sharding them
// directly — at parallelism 1 and at full parallelism. The WAL keeps
// raw records; the defense applies at the snapshot fold, so the two
// paths meet at the same bits.
func TestDefendedCompactionMatchesEnrollTimeTransform(t *testing.T) {
	const features, subjects, shards = 24, 57, 2
	d := defenseTestDescriptor()
	group := randomGroup(11, features, subjects)
	ids := subjectIDs(subjects)
	deleted := map[string]bool{ids[5]: true, ids[40]: true}

	// Path A: live engine with the defense option, WAL enrollment (plus
	// two deletions), one compaction.
	liveDir := filepath.Join(t.TempDir(), "live")
	e, err := Create(liveDir, features, nil, Options{NoSync: true, Shards: shards, Defense: d})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer e.Close()
	for j, id := range ids {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll(%q): %v", id, err)
		}
	}
	for id := range deleted {
		if err := e.Delete(id); err != nil {
			t.Fatalf("Delete(%q): %v", id, err)
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	liveManifest := readFileT(t, filepath.Join(liveDir, genName(1, "bpm")))
	liveShards := make([][]byte, shards)
	for s := range liveShards {
		liveShards[s] = readFileT(t, filepath.Join(liveDir, fmt.Sprintf("live.g0001.s%03d.bpg", s)))
	}

	// Path B: the same surviving records normalized identically, the
	// pipeline applied at enroll time, sharded and written directly.
	for _, parallelism := range []int{1, 0} {
		offline := gallery.New(features)
		for j, id := range ids {
			if deleted[id] {
				continue
			}
			if err := offline.Enroll(id, group.Col(j)); err != nil {
				t.Fatalf("offline Enroll(%q): %v", id, err)
			}
		}
		defended, err := defense.Apply(offline, d, parallelism)
		if err != nil {
			t.Fatalf("Apply(parallelism=%d): %v", parallelism, err)
		}
		store, err := shard.FromGallery(defended, shards, false)
		if err != nil {
			t.Fatalf("FromGallery: %v", err)
		}
		store.SetDefense(d)
		offDir := t.TempDir()
		if err := store.WriteFiles(filepath.Join(offDir, genName(1, "bpm"))); err != nil {
			t.Fatalf("WriteFiles: %v", err)
		}
		if got := readFileT(t, filepath.Join(offDir, genName(1, "bpm"))); !bytes.Equal(got, liveManifest) {
			t.Errorf("parallelism=%d: manifest bytes differ from the compacted live base", parallelism)
		}
		for s := range liveShards {
			got := readFileT(t, filepath.Join(offDir, fmt.Sprintf("live.g0001.s%03d.bpg", s)))
			if !bytes.Equal(got, liveShards[s]) {
				t.Errorf("parallelism=%d: shard %d bytes differ from the compacted live base", parallelism, s)
			}
		}
	}
}

// TestDefenseDescriptorSurvivesReopenAndCompaction checks the
// persistence loop: the descriptor rides the manifest, a reopen
// without the option inherits it, and the next compaction stays
// defended.
func TestDefenseDescriptorSurvivesReopenAndCompaction(t *testing.T) {
	const features, subjects = 12, 20
	d := defenseTestDescriptor()
	dir := filepath.Join(t.TempDir(), "live")
	e, err := Create(dir, features, nil, Options{NoSync: true, Defense: d})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	group := randomGroup(12, features, subjects)
	for j, id := range subjectIDs(subjects) {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen with a zero Options: the manifest's descriptor is
	// inherited.
	e2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer e2.Close()
	got := e2.Defense()
	if got == nil || got.String() != d.String() {
		t.Fatalf("reopened Defense() = %v, want %v", got, d)
	}
	// Another enrollment and compaction keeps the manifest defended.
	extra := randomGroup(13, features, 1)
	if err := e2.Enroll("late-arrival", extra.Col(0)); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if err := e2.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	m, err := shard.Open(filepath.Join(dir, genName(2, "bpm")))
	if err != nil {
		t.Fatalf("open generation-2 manifest: %v", err)
	}
	if m.Defense() == nil || m.Defense().String() != d.String() {
		t.Fatalf("generation-2 manifest Defense() = %v, want %v", m.Defense(), d)
	}
}

// readFileT reads a file or fails the test.
func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return b
}

// BenchmarkKSameCompact measures a defended compaction: folding a
// 2000-record overlay through a ksame(k=5) pipeline into a fresh
// 4-shard base (transform plus file writes).
func BenchmarkKSameCompact(b *testing.B) {
	const features, subjects = 256, 2000
	d := &defense.Descriptor{Steps: []defense.Step{{Kind: defense.KindKSame, K: 5}}}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := Create(filepath.Join(b.TempDir(), "live"), features, nil,
			Options{NoSync: true, Shards: 4, Defense: d})
		if err != nil {
			b.Fatalf("Create: %v", err)
		}
		group := randomGroup(54, features, subjects)
		for j := 0; j < subjects; j++ {
			if err := e.Enroll(fmt.Sprintf("s-%06d", j), group.Col(j)); err != nil {
				b.Fatalf("Enroll: %v", err)
			}
		}
		b.StartTimer()
		if err := e.Compact(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		e.Close()
		b.StartTimer()
	}
}
