package live

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"brainprint/internal/defense"
	"brainprint/internal/gallery"
	"brainprint/internal/gallery/shard"
)

// Snapshot compaction. A compaction folds everything the engine holds —
// base survivors plus the memtable, minus tombstones — into a fresh
// sharded base store for generation g+1, then switches CURRENT to it.
// The expensive parts (copying records into the snapshot is a straight
// memcpy; writing and checksumming the shard files dominates) run off
// the engine lock; the lock is held only to freeze the memtable at the
// start and to swap generations at the end, so queries and mutations
// keep flowing throughout.
//
// Correctness across the concurrent window: at freeze time the active
// memtable becomes the frozen memtable (still queryable, now immutable)
// and tombstones accrued so far move to deadBase (already folded into
// the snapshot, still filtering the OLD base until the swap). Mutations
// during the compaction land in a fresh memtable and the current dead
// set, and keep appending to the OLD generation's log — so a crash at
// any point before the switch recovers the old generation with nothing
// lost. At swap time the new generation's log is seeded with exactly
// the post-freeze state (tombstone deletes in sorted order, then
// memtable enrolls in enrollment order), synced, and only then does
// CURRENT flip.

// maybeKickCompaction schedules a background compaction when the log
// has grown past the configured threshold. Called with the write lock
// held.
func (e *Engine) maybeKickCompaction() {
	if e.opts.CompactAfter <= 0 || e.walRecords < e.opts.CompactAfter || e.closed {
		return
	}
	if !e.compactKick.CompareAndSwap(false, true) {
		return // one already scheduled or running
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer e.compactKick.Store(false)
		// A mutation racing Close can win the kick; Compact re-checks
		// closed under the lock and refuses, so the error is dropped
		// deliberately here — there is no caller to report it to.
		_ = e.Compact()
	}()
}

// Compact folds the write-ahead log and memtable overlay into a fresh
// immutable base store under a generation switch, then removes the
// previous generation's files. Concurrent queries and mutations
// proceed throughout; concurrent Compact calls serialize. Compacting an
// empty engine (everything deleted) leaves a baseless generation.
func (e *Engine) Compact() error {
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	e.compactingNow.Store(true)
	defer e.compactingNow.Store(false)

	start := time.Now()

	// Phase 1 (write lock): freeze the memtable and fold a snapshot.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if e.frozen != nil {
		e.mu.Unlock()
		return fmt.Errorf("live: internal error: frozen memtable outside a compaction")
	}
	newGen := e.gen + 1
	// Capture the ANN state under the lock: a base that carries an
	// index gets its successor re-indexed with the same training seed,
	// so the knob survives the generation switch.
	var annSeed int64
	annRebuild := false
	if e.base != nil && e.base.ANNIndex() != nil {
		annRebuild, annSeed = true, e.base.ANNIndex().Seed()
	}
	snap, err := snapshotGallery(e.mem.Features(), e.featureIndexCopy(), func(yield func(string, []float64) error) error {
		for i, id := range e.ids {
			if err := yield(id, e.fingerprint(i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		e.mu.Unlock()
		return err
	}
	e.frozen = e.mem
	if idx := e.featureIndexCopy(); idx != nil {
		e.mem = gallery.WithFeatureIndex(idx)
	} else {
		e.mem = gallery.New(e.frozen.Features())
	}
	e.deadBase, e.dead = e.dead, map[string]bool{}
	e.rebuild()
	e.mu.Unlock()

	// Phase 2 (no lock): build and persist the new generation's base.
	// A defended engine folds the snapshot through its anonymization
	// pipeline first and stamps the descriptor into the fresh manifest,
	// so the defense survives the generation switch (and any replica
	// bootstrapped from these files). See DESIGN.md §12 for what
	// re-application means for each transform kind.
	var newBase *shard.Store
	if snap.Len() > 0 {
		if snap, err = defense.Apply(snap, e.opts.Defense, 0); err != nil {
			e.abortFreeze()
			return err
		}
		newBase, err = shard.FromGallery(snap, e.opts.Shards, false)
		if err != nil {
			e.abortFreeze()
			return err
		}
		newBase.SetDefense(e.opts.Defense)
		if err := newBase.WriteFiles(filepath.Join(e.dir, genName(newGen, "bpm"))); err != nil {
			e.abortFreeze()
			return err
		}
		if annRebuild {
			if err := newBase.BuildANN(context.Background(), 0, annSeed, 0); err != nil {
				e.abortFreeze()
				return err
			}
			if err := newBase.SaveANN(filepath.Join(e.dir, genName(newGen, "bpm"))); err != nil {
				e.abortFreeze()
				return err
			}
		}
	}

	// Phase 3 (write lock): seed the new log with the post-freeze
	// mutations, flip CURRENT, and swap the in-memory state.
	e.mu.Lock()
	if e.closed {
		// Close won the race during the unlocked build: the old log is
		// already released, so unwind in memory and leave generation
		// newGen's files as orphans for the next Open to sweep.
		e.mu.Unlock()
		e.abortFreeze()
		return ErrClosed
	}
	seeded, err := e.seedWAL(newGen)
	if err != nil {
		e.mu.Unlock()
		e.abortFreeze()
		return err
	}
	// The seeded log is a reordered, collapsed retelling of history (see
	// replication.go): the new generation starts after sequence
	// oldSeq - records and its seeded prefix replays up to oldSeq, so
	// sequence numbers carry across the switch unchanged.
	oldSeq := e.baseSeq + int64(e.walRecords)
	newBaseSeq := oldSeq - int64(seeded.records)
	if err := writeSeqFile(e.dir, newGen, newBaseSeq, oldSeq); err != nil {
		seeded.w.close()
		e.mu.Unlock()
		e.abortFreeze()
		return err
	}
	if err := writeCurrent(e.dir, newGen); err != nil {
		seeded.w.close()
		e.mu.Unlock()
		e.abortFreeze()
		return err
	}
	oldGen := e.gen
	oldWAL := e.wal
	e.gen = newGen
	e.base = newBase
	if newBase != nil && e.prec != gallery.ScanFloat64 {
		// Re-apply the engine's scan precision to the fresh base; only
		// float32 can be set on a live engine, and it cannot fail here.
		if err := newBase.SetPrecision(e.prec); err != nil {
			panic(fmt.Sprintf("live: re-applying scan precision after compaction: %v", err))
		}
	}
	if e.nprobe > 0 {
		if newBase != nil {
			// An active fan-out implies the old base carried an index,
			// so the fresh base was re-indexed above; re-applying
			// cannot fail.
			if err := newBase.SetANNProbe(e.nprobe); err != nil {
				panic(fmt.Sprintf("live: re-applying ANN fan-out after compaction: %v", err))
			}
		} else {
			// Everything was deleted: a baseless generation has no
			// index, so the knob resets to exact.
			e.nprobe = 0
		}
	}
	e.frozen = nil
	e.deadBase = map[string]bool{}
	e.wal = seeded.w
	e.walRecords = seeded.records
	e.walBytes = seeded.bytes
	e.walStart = seeded.start
	e.walOff = seeded.ends
	e.baseSeq = newBaseSeq
	e.seedSeq = oldSeq
	e.bump() // generation switched: wake stream waiters pinned to oldGen
	e.rebuild()
	e.mu.Unlock()

	oldWAL.close()
	removeGeneration(e.dir, oldGen)
	e.compactions.Add(1)
	e.lastCompact.Store(time.Since(start).Microseconds())
	return nil
}

// abortFreeze unwinds a failed compaction, restoring exactly the state
// a crash-and-replay of the old generation's log would produce: frozen
// records not deleted during the window fold back in front of the
// active memtable (a frozen record deleted — and possibly re-enrolled —
// during the window must NOT resurrect), the already-folded tombstones
// rejoin the live set, and the tombstone set is pruned back to its
// invariant (only IDs present in the base — entries for dropped frozen
// records would otherwise poison the next compaction's seeded log with
// deletes of never-enrolled subjects).
func (e *Engine) abortFreeze() {
	e.mu.Lock()
	defer e.mu.Unlock()
	var merged *gallery.Gallery
	if e.fidx != nil {
		merged = gallery.WithFeatureIndex(e.fidx)
	} else {
		merged = gallery.New(e.features)
	}
	for i, id := range e.frozen.IDs() {
		if e.dead[id] {
			continue
		}
		if err := merged.EnrollNormalized(id, e.frozen.Fingerprint(i)); err != nil {
			panic(fmt.Sprintf("live: unwinding failed compaction: %v", err))
		}
	}
	for i, id := range e.mem.IDs() {
		if err := merged.EnrollNormalized(id, e.mem.Fingerprint(i)); err != nil {
			panic(fmt.Sprintf("live: unwinding failed compaction: %v", err))
		}
	}
	e.mem = merged
	e.frozen = nil
	for id := range e.deadBase {
		e.dead[id] = true
	}
	e.deadBase = map[string]bool{}
	if e.base != nil {
		for id := range e.dead {
			if e.base.Index(id) < 0 {
				delete(e.dead, id)
			}
		}
	} else {
		e.dead = map[string]bool{}
	}
	e.rebuild()
}

// seededWAL is the outcome of seeding a fresh generation's log segment.
type seededWAL struct {
	w       *walWriter
	start   int64   // offset just past the segment header
	bytes   int64   // total committed segment length
	records int     // seeded record count
	ends    []int64 // offset just past each seeded record
}

// seedWAL writes generation gen's log segment containing the current
// post-freeze overlay — tombstone deletes in sorted order, then
// memtable enrolls in enrollment order — and syncs it, so the segment
// replays to exactly the state the swap leaves in memory. The writer's
// rollback offset is advanced past the seeded batch: truncating to the
// header on a later failed append would otherwise cut the seed away.
// Called with the write lock held.
func (e *Engine) seedWAL(gen int) (seededWAL, error) {
	w, n, err := createWAL(filepath.Join(e.dir, genName(gen, "bpw")),
		walHeader{features: e.mem.Features(), featureIndex: e.featureIndexCopy()}, !e.opts.NoSync)
	if err != nil {
		return seededWAL{}, err
	}
	out := seededWAL{w: w, start: n}
	var batch []byte
	add := func(frame []byte) {
		batch = append(batch, frame...)
		out.records++
		out.ends = append(out.ends, n+int64(len(batch)))
	}
	for _, id := range sortedKeys(e.dead) {
		add(encodeWALRecord(walKindDelete, id, nil))
	}
	for i, id := range e.mem.IDs() {
		add(encodeWALRecord(walKindEnroll, id, e.mem.Fingerprint(i)))
	}
	if len(batch) > 0 {
		if _, err := w.f.Write(batch); err != nil {
			w.close()
			return seededWAL{}, err
		}
	}
	if err := w.f.Sync(); err != nil {
		w.close()
		return seededWAL{}, err
	}
	w.off = n + int64(len(batch))
	out.bytes = w.off
	return out, nil
}

// removeGeneration deletes a superseded generation's manifest, shard
// files, and log. Best-effort: a leftover is swept at the next Open.
func removeGeneration(dir string, gen int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	prefix := fmt.Sprintf("live.g%04d.", gen)
	for _, ent := range entries {
		if len(ent.Name()) >= len(prefix) && ent.Name()[:len(prefix)] == prefix {
			_ = os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
}

// snapshotGallery copies an iteration of (id, normalized vector) pairs
// into a fresh gallery — the verbatim record move (EnrollNormalized, no
// renormalization) that keeps every stored bit across compactions and
// migrations.
func snapshotGallery(features int, featureIndex []int, iterate func(yield func(string, []float64) error) error) (*gallery.Gallery, error) {
	var snap *gallery.Gallery
	if featureIndex != nil {
		snap = gallery.WithFeatureIndex(featureIndex)
	} else {
		snap = gallery.New(features)
	}
	err := iterate(func(id string, vec []float64) error {
		return snap.EnrollNormalized(id, vec)
	})
	if err != nil {
		return nil, err
	}
	return snap, nil
}
