package live

import (
	"bufio"
	"bytes"
	"testing"
)

// fuzzSeedWAL renders a valid log segment (header plus records) to seed
// the corpus.
func fuzzSeedWAL(features int, index []int) []byte {
	h := walHeader{features: features, featureIndex: index}
	buf := encodeWALHeader(h)
	vec := make([]float64, features)
	for i := range vec {
		vec[i] = float64(i) - 1.5
	}
	buf = append(buf, encodeWALRecord(walKindEnroll, "subject-a", vec)...)
	buf = append(buf, encodeWALRecord(walKindEnroll, "subject-b", vec)...)
	buf = append(buf, encodeWALRecord(walKindDelete, "subject-a", nil)...)
	return buf
}

// FuzzDecodeWALRecord throws adversarial bytes at the write-ahead log
// decoder — header plus record replay. The decoder must never panic,
// must bound allocation by the bytes actually present (a forged length
// prefix classifies as a torn tail before anything is allocated), and
// the replay outcome must be self-consistent: committed records plus
// torn bytes always account for exactly the whole input.
func FuzzDecodeWALRecord(f *testing.F) {
	valid := fuzzSeedWAL(5, nil)
	f.Add(valid)
	f.Add(fuzzSeedWAL(3, []int{8, 0, 2}))
	f.Add(valid[:len(valid)-6]) // torn tail mid-record
	f.Add(valid[:11])           // torn header
	f.Add([]byte("BPWAL\x00\x00\x00garbage"))
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[len(mut)-2] ^= 0xFF // tail record CRC flip
	f.Add(mut)
	mut2 := append([]byte(nil), valid...)
	mut2[len(encodeWALHeader(walHeader{features: 5}))+6] ^= 0xFF // interior flip
	f.Add(mut2)

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		h, hdrLen, err := decodeWALHeader(br)
		if err != nil {
			return
		}
		applied := 0
		tail, err := replayWAL(br, h, hdrLen, int64(len(data)), func(rec walRecord) error {
			applied++
			if rec.id == "" {
				t.Fatal("replayed record with empty id")
			}
			if rec.kind == walKindEnroll && len(rec.vec) != h.features {
				t.Fatalf("enroll record with %d features, header says %d", len(rec.vec), h.features)
			}
			return nil
		})
		if err != nil {
			return
		}
		if applied != tail.records {
			t.Fatalf("applied %d records, tail reports %d", applied, tail.records)
		}
		if tail.goodEnd+tail.tornBytes != int64(len(data)) {
			t.Fatalf("goodEnd %d + torn %d != size %d", tail.goodEnd, tail.tornBytes, len(data))
		}
	})
}
