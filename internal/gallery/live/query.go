package live

import (
	"context"
	"fmt"

	"brainprint/internal/gallery"
	"brainprint/internal/linalg"
	"brainprint/internal/match"
	"brainprint/internal/parallel"
)

// The merged query sweep. A live engine's visible records live in up to
// three places — the immutable base store, a memtable frozen by an
// in-flight compaction, and the active memtable — but queries see one
// flat enumeration. The base (usually the overwhelming share of the
// records) is scanned through the sharded store's blocked kernels via
// TopKZMasked/QueryAllZMasked, masking tombstoned records with the
// dead-mask rebuild() maintains; the overlay is swept with the scalar
// exact expression; and the two rankings merge by tournament under the
// same (score descending, subject ID ascending) strict total order the
// sharded engine uses. Every record is scored with the identical
// linalg.Dot(fp, zp)/features expression whichever source holds it, so
// determinism holds by the same argument (DESIGN.md §6–8): the total
// order makes the merged top-k unique regardless of chunking,
// parallelism, or how many records have been compacted — which is what
// pins a live gallery's answers bit-identical to a cold
// offline-enrolled gallery of the same records.
//
// Every query holds the engine's read lock for its duration: queries
// run concurrently with each other, while mutations and the compaction
// swap wait for in-flight sweeps to drain. Under the write lock an
// enroll is cheap (one log fsync plus a memtable append), but a delete
// is O(overlay): a memtable delete physically rebuilds the memtable
// and any delete rebuilds the flat enumeration. Compaction is what
// bounds that cost — it empties the overlay and folds the tombstones,
// so delete-heavy workloads should compact (or set Options.
// CompactAfter) rather than accumulate an unbounded overlay.

// better reports whether a outranks b: higher score first, ties broken
// by the lexicographically smaller subject ID — the sharded store's
// layout-invariant total order.
func better(a, b gallery.Candidate) bool {
	return a.Score > b.Score || (a.Score == b.Score && a.ID < b.ID)
}

// TopK ranks the k enrolled subjects most correlated with the probe,
// best first, using the default worker count.
func (e *Engine) TopK(probe []float64, k int) ([]gallery.Candidate, error) {
	return e.TopKP(probe, k, 0)
}

// TopKP is TopK with an explicit parallelism knob (0 = all cores,
// 1 = serial, n = n workers). Results are identical at any setting.
func (e *Engine) TopKP(probe []float64, k, parallelism int) ([]gallery.Candidate, error) {
	return e.TopKCtx(context.Background(), probe, k, parallelism)
}

// TopKCtx is TopKP under a context: the sweep aborts between chunks
// once ctx is cancelled and returns ctx.Err(). The probe may be a
// gallery-space vector or a raw vector when the engine carries a
// feature index; k larger than the engine is clamped.
func (e *Engine) TopKCtx(ctx context.Context, probe []float64, k, parallelism int) ([]gallery.Candidate, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	k, err := e.clampK(k)
	if err != nil {
		return nil, err
	}
	zp, err := e.mem.Normalize(probe)
	if err != nil {
		return nil, err
	}
	return e.topK(ctx, zp, k, parallelism)
}

// QueryAll answers a batch of probes — the columns of a features×probes
// matrix — returning one ranked top-k list per probe.
func (e *Engine) QueryAll(probes *linalg.Matrix, k int) ([][]gallery.Candidate, error) {
	return e.QueryAllP(probes, k, 0)
}

// QueryAllP is QueryAll with an explicit parallelism knob. Probes
// normalize through the same match.ZScoreColumns path every other
// engine uses, so batch scores stay bit-identical.
func (e *Engine) QueryAllP(probes *linalg.Matrix, k, parallelism int) ([][]gallery.Candidate, error) {
	return e.QueryAllCtx(context.Background(), probes, k, parallelism)
}

// QueryAllCtx is QueryAllP under a context: the batch aborts between
// probes once ctx is cancelled. Rankings are identical at any setting.
func (e *Engine) QueryAllCtx(ctx context.Context, probes *linalg.Matrix, k, parallelism int) ([][]gallery.Candidate, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	k, err := e.clampK(k)
	if err != nil {
		return nil, err
	}
	zcols, err := e.prepProbes(probes, parallelism)
	if err != nil {
		return nil, err
	}
	var baseLists [][]gallery.Candidate
	if e.base != nil && e.baseVisible > 0 {
		baseLists, err = e.base.QueryAllZMasked(ctx, zcols, min(k, e.baseVisible), parallelism, e.baseSkip)
		if err != nil {
			return nil, err
		}
	}
	out := make([][]gallery.Candidate, len(zcols))
	err = parallel.ForCtx(ctx, parallelism, len(zcols), 1, func(lo, hi int) error {
		for j := lo; j < hi; j++ {
			overlay := e.overlayTopK(zcols[j], k)
			if baseLists == nil {
				out[j] = overlay
				continue
			}
			bl := baseLists[j]
			for i := range bl {
				bl[i].Index = e.byID[bl[i].ID]
			}
			out[j] = gallery.RankMergeLists([][]gallery.Candidate{bl, overlay}, k, better)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DenseSimilarity materializes the full engine×probes similarity
// matrix, rows in live enumeration order — the exact fallback the
// Hungarian assignment path consumes.
func (e *Engine) DenseSimilarity(probes *linalg.Matrix, parallelism int) (*linalg.Matrix, error) {
	return e.DenseSimilarityCtx(context.Background(), probes, parallelism)
}

// DenseSimilarityCtx is DenseSimilarity under a context: the row sweep
// aborts between chunks once ctx is cancelled.
func (e *Engine) DenseSimilarityCtx(ctx context.Context, probes *linalg.Matrix, parallelism int) (*linalg.Matrix, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := len(e.ids)
	if n == 0 {
		return nil, fmt.Errorf("live: empty gallery")
	}
	zcols, err := e.prepProbes(probes, parallelism)
	if err != nil {
		return nil, err
	}
	m := len(zcols)
	features := e.mem.Features()
	out := linalg.NewMatrix(n, m)
	inv := 1 / float64(features)
	err = parallel.ForCtx(ctx, parallelism, n, 1+4096/(features*m+1), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			fp := e.fingerprint(i)
			orow := out.RowView(i)
			for j, zc := range zcols {
				orow[j] = linalg.Dot(fp, zc) * inv
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// topK is the merged sweep with a z-scored, gallery-space probe: the
// masked base scan (blocked kernels, at the engine's precision) plus
// the scalar overlay sweep, tournament-merged. Base candidates come
// back carrying base-store indices; they are remapped to live
// enumeration indices before the merge. Called with the read lock held.
func (e *Engine) topK(ctx context.Context, zp []float64, k, parallelism int) ([]gallery.Candidate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	overlay := e.overlayTopK(zp, k)
	if e.base == nil || e.baseVisible == 0 {
		return overlay, nil
	}
	base, err := e.base.TopKZMasked(ctx, zp, min(k, e.baseVisible), parallelism, e.baseSkip)
	if err != nil {
		return nil, err
	}
	for i := range base {
		base[i].Index = e.byID[base[i].ID]
	}
	return gallery.RankMergeLists([][]gallery.Candidate{base, overlay}, k, better), nil
}

// overlayTopK ranks the overlay — the frozen memtable's survivors and
// the active memtable — against a z-scored probe with the scalar exact
// expression, each candidate carrying its live enumeration index. The
// overlay is bounded by compaction, so the scalar sweep stays cheap.
// Called with the read lock held.
func (e *Engine) overlayTopK(zp []float64, k int) []gallery.Candidate {
	inv := 1 / float64(e.features)
	r := gallery.NewRanker(k, better)
	li := e.baseVisible
	if e.frozen != nil {
		for i, n := 0, e.frozen.Len(); i < n; i++ {
			id := e.frozen.ID(i)
			if e.dead[id] {
				continue
			}
			r.Offer(gallery.Candidate{Index: li, ID: id, Score: linalg.Dot(e.frozen.Fingerprint(i), zp) * inv})
			li++
		}
	}
	for i, n := 0, e.mem.Len(); i < n; i++ {
		r.Offer(gallery.Candidate{Index: li, ID: e.mem.ID(i), Score: linalg.Dot(e.mem.Fingerprint(i), zp) * inv})
		li++
	}
	return r.Ranked()
}

// clampK validates the engine and k, clamping k to the visible record
// count. Called with the read lock held.
func (e *Engine) clampK(k int) (int, error) {
	if len(e.ids) == 0 {
		return 0, fmt.Errorf("live: empty gallery")
	}
	if k <= 0 {
		return 0, fmt.Errorf("live: k=%d must be positive", k)
	}
	return min(k, len(e.ids)), nil
}

// prepProbes converts a features×probes matrix into z-scored
// gallery-space probe vectors — the same normalization pipeline every
// other engine uses. Called with the read lock held.
func (e *Engine) prepProbes(probes *linalg.Matrix, parallelism int) ([][]float64, error) {
	features := e.mem.Features()
	f, m := probes.Dims()
	if m == 0 {
		return nil, fmt.Errorf("live: no probe columns")
	}
	gal := probes
	if f != features {
		index := e.mem.FeatureIndex()
		if index == nil {
			return nil, fmt.Errorf("%w: probes have %d features, gallery has %d", gallery.ErrDimMismatch, f, features)
		}
		for _, idx := range index {
			if idx < 0 || idx >= f {
				return nil, fmt.Errorf("%w: feature index %d outside raw probes with %d features", gallery.ErrDimMismatch, idx, f)
			}
		}
		gal = probes.SelectRows(index)
	}
	z := match.ZScoreColumns(gal, parallelism)
	cols := make([][]float64, m)
	parallel.ForWith(parallelism, m, 1+1024/features, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			cols[j] = z.Col(j)
		}
	})
	return cols, nil
}
