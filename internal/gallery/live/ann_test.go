package live

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"brainprint/internal/gallery"
	"brainprint/internal/gallery/ivf"
	"brainprint/internal/gallery/shard"
)

// TestLiveANNLifecycle walks the index through the whole live-engine
// story: build over the base, query bit-identically at full coverage,
// stay exact for overlay enrollments, survive a compaction (rebuilt
// over the folded base, same seed, nprobe preserved), and reload from
// the sidecar on reopen.
func TestLiveANNLifecycle(t *testing.T) {
	const features, subjects, k, cells = 40, 400, 7, 8
	g := gallery.New(features)
	if err := g.EnrollMatrix(subjectIDs(subjects), randomGroup(201, features, subjects)); err != nil {
		t.Fatalf("EnrollMatrix: %v", err)
	}
	src, err := shard.FromGallery(g, 4, false)
	if err != nil {
		t.Fatalf("FromGallery: %v", err)
	}
	dir := filepath.Join(t.TempDir(), "live")
	e, err := CreateFromStore(dir, src, Options{NoSync: true})
	if err != nil {
		t.Fatalf("CreateFromStore: %v", err)
	}
	defer e.Close()
	ctx := context.Background()

	// Knob validation before any index exists.
	if e.HasANNIndex() {
		t.Fatal("fresh engine reports an ANN index")
	}
	if err := e.SetANNProbe(-1); err == nil {
		t.Fatal("SetANNProbe(-1) succeeded")
	}
	if err := e.SetANNProbe(4); !errors.Is(err, shard.ErrNoANNIndex) {
		t.Fatalf("SetANNProbe before BuildANN = %v, want ErrNoANNIndex", err)
	}
	if err := e.SetANNProbe(0); err != nil {
		t.Fatalf("SetANNProbe(0): %v", err)
	}

	if err := e.BuildANN(ctx, cells, 7, 0); err != nil {
		t.Fatalf("BuildANN: %v", err)
	}
	if !e.HasANNIndex() {
		t.Fatal("HasANNIndex false after BuildANN")
	}
	side := filepath.Join(dir, "live.g0000.bpm.ivf")
	if _, err := os.Stat(side); err != nil {
		t.Fatalf("generation-0 sidecar not written: %v", err)
	}

	// Full coverage ⇒ bit-identical to the exact sweep.
	probes := randomGroup(202, features, 6)
	assertSame := func(stage string) {
		t.Helper()
		if err := e.SetANNProbe(0); err != nil {
			t.Fatalf("%s: SetANNProbe(0): %v", stage, err)
		}
		want, err := e.QueryAllP(probes, k, 0)
		if err != nil {
			t.Fatalf("%s: exact QueryAll: %v", stage, err)
		}
		// Oversized fan-out clamps to the cell count, so this is full
		// coverage whatever geometry the current index has (the
		// compaction rebuild re-derives its own default cell count).
		if err := e.SetANNProbe(4096); err != nil {
			t.Fatalf("%s: SetANNProbe(4096): %v", stage, err)
		}
		got, err := e.QueryAllP(probes, k, 0)
		if err != nil {
			t.Fatalf("%s: IVF QueryAll: %v", stage, err)
		}
		for j := range want {
			for r := range want[j] {
				if got[j][r].ID != want[j][r].ID || got[j][r].Score != want[j][r].Score {
					t.Fatalf("%s probe %d rank %d: IVF (%s, %v) != exact (%s, %v)",
						stage, j, r, got[j][r].ID, got[j][r].Score, want[j][r].ID, want[j][r].Score)
				}
			}
		}
	}
	assertSame("generation 0")

	// Overlay enrollments are scanned exactly regardless of nprobe: a
	// brand-new subject must be its own top-1 even though the base
	// index has never seen it.
	extra := randomGroup(203, features, 3)
	for j := 0; j < 3; j++ {
		if err := e.Enroll(subjectIDs(subjects + 3)[subjects+j], extra.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := e.SetANNProbe(2); err != nil { // deliberately narrow
		t.Fatalf("SetANNProbe(2): %v", err)
	}
	top, err := e.TopKP(extra.Col(1), 1, 0)
	if err != nil {
		t.Fatalf("overlay TopK: %v", err)
	}
	if wantID := subjectIDs(subjects + 3)[subjects+1]; top[0].ID != wantID {
		t.Fatalf("overlay subject not found through the ANN path: top-1 %s, want %s", top[0].ID, wantID)
	}
	assertSame("generation 0 + overlay")

	// Compaction folds the overlay and rebuilds the index over the new
	// base with the SAME seed; the engine's nprobe survives the swap.
	if err := e.SetANNProbe(cells); err != nil {
		t.Fatalf("SetANNProbe: %v", err)
	}
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if gen := e.Stats().Generation; gen != 1 {
		t.Fatalf("generation %d after compact, want 1", gen)
	}
	if !e.HasANNIndex() {
		t.Fatal("index lost across compaction")
	}
	if e.ANNProbe() != cells {
		t.Fatalf("nprobe %d after compact, want %d (carried like precision)", e.ANNProbe(), cells)
	}
	newSide := filepath.Join(dir, "live.g0001.bpm.ivf")
	x, err := ivf.ReadFile(newSide)
	if err != nil {
		t.Fatalf("generation-1 sidecar: %v", err)
	}
	if x.Seed() != 7 {
		t.Fatalf("rebuilt index seed %d, want the original 7", x.Seed())
	}
	if _, err := os.Stat(side); !os.IsNotExist(err) {
		t.Fatalf("generation-0 sidecar not removed with its generation: %v", err)
	}
	assertSame("generation 1")

	// Reopen: the base store auto-loads the generation sidecar; the
	// nprobe knob (session state, like precision) resets to exact.
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer re.Close()
	if !re.HasANNIndex() {
		t.Fatal("reopened engine did not load the ANN sidecar")
	}
	if re.ANNProbe() != 0 {
		t.Fatalf("reopened engine nprobe %d, want 0", re.ANNProbe())
	}
	e = re
	assertSame("reopened")
}

// TestLiveBuildANNRequiresBase: an engine created empty (no base
// generation) cannot train until a compaction materializes one.
func TestLiveBuildANNRequiresBase(t *testing.T) {
	const features = 16
	e := createEngine(t, features, Options{})
	group := randomGroup(211, features, 30)
	for j, id := range subjectIDs(30) {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := e.BuildANN(context.Background(), 4, 1, 0); err == nil {
		t.Fatal("BuildANN with no base store succeeded")
	}
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := e.BuildANN(context.Background(), 4, 1, 0); err != nil {
		t.Fatalf("BuildANN after compact: %v", err)
	}
	if !e.HasANNIndex() {
		t.Fatal("HasANNIndex false after BuildANN")
	}
}
