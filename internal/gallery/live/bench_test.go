package live

import (
	"fmt"
	"path/filepath"
	"testing"

	"brainprint/internal/gallery"
	"brainprint/internal/gallery/shard"
)

// benchEngine builds a live engine with `base` records compacted into
// the immutable base and `overlay` records in the memtable.
func benchEngine(b *testing.B, features, base, overlay int) *Engine {
	b.Helper()
	e, err := Create(filepath.Join(b.TempDir(), "live"), features, nil, Options{NoSync: true, Shards: 4})
	if err != nil {
		b.Fatalf("Create: %v", err)
	}
	b.Cleanup(func() { e.Close() })
	group := randomGroup(51, features, base+overlay)
	for j := 0; j < base; j++ {
		if err := e.Enroll(fmt.Sprintf("base-%06d", j), group.Col(j)); err != nil {
			b.Fatalf("Enroll: %v", err)
		}
	}
	if base > 0 {
		if err := e.Compact(); err != nil {
			b.Fatalf("Compact: %v", err)
		}
	}
	for j := 0; j < overlay; j++ {
		if err := e.Enroll(fmt.Sprintf("over-%06d", j), group.Col(base+j)); err != nil {
			b.Fatalf("Enroll: %v", err)
		}
	}
	return e
}

// BenchmarkLiveTopK compares the live engine's merged sweep against the
// read-only sharded store on the same cohort: the price of mutability
// on the query path (one RLock plus the enumeration indirection).
func BenchmarkLiveTopK(b *testing.B) {
	const features, subjects, k = 512, 2000, 5
	probe := randomGroup(52, features, 1).Col(0)

	b.Run("store", func(b *testing.B) {
		g := gallery.New(features)
		group := randomGroup(51, features, subjects)
		for j := 0; j < subjects; j++ {
			if err := g.Enroll(fmt.Sprintf("base-%06d", j), group.Col(j)); err != nil {
				b.Fatalf("Enroll: %v", err)
			}
		}
		s, err := shard.FromGallery(g, 4, false)
		if err != nil {
			b.Fatalf("FromGallery: %v", err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.TopKP(probe, k, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("live-compacted", func(b *testing.B) {
		e := benchEngine(b, features, subjects, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.TopKP(probe, k, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("live-overlay", func(b *testing.B) {
		e := benchEngine(b, features, subjects-200, 200)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.TopKP(probe, k, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLiveEnroll measures online enrollment throughput into the
// write-ahead-logged memtable (fsync disabled, so this is the codec +
// memtable cost; with fsync the device dominates).
func BenchmarkLiveEnroll(b *testing.B) {
	const features = 512
	e := benchEngine(b, features, 0, 0)
	vecs := randomGroup(53, features, 1)
	col := vecs.Col(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Enroll(fmt.Sprintf("s-%09d", i), col); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveCompact measures folding a 2000-record overlay into a
// fresh 4-shard base (file writes included).
func BenchmarkLiveCompact(b *testing.B) {
	const features, subjects = 256, 2000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := benchEngine(b, features, 0, subjects)
		b.StartTimer()
		if err := e.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}
