package live

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"brainprint/internal/gallery"
)

// TestSeqMonotonicAcrossCompactionAndReopen pins the sequence-number
// contract: every committed mutation advances Seq by one, a compaction
// renumbers the generation's window (BaseSeq) but never Seq itself,
// and both survive a close/reopen via the sequence sidecar.
func TestSeqMonotonicAcrossCompactionAndReopen(t *testing.T) {
	const features = 12
	dir := filepath.Join(t.TempDir(), "live")
	e, err := Create(dir, features, nil, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	group := randomGroup(3, features, 10)
	ids := subjectIDs(10)
	for j := 0; j < 8; j++ {
		if err := e.Enroll(ids[j], group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := e.Delete(ids[1]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	st := e.Stats()
	if st.Seq != 9 || st.BaseSeq != 0 {
		t.Fatalf("pre-compaction: Seq=%d BaseSeq=%d, want 9, 0", st.Seq, st.BaseSeq)
	}
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st = e.Stats()
	if st.Seq != 9 {
		t.Fatalf("compaction changed Seq: %d, want 9", st.Seq)
	}
	if st.BaseSeq != 9 || st.WALRecords != 0 {
		t.Fatalf("post-compaction: BaseSeq=%d WALRecords=%d, want 9, 0", st.BaseSeq, st.WALRecords)
	}
	rs := e.ReplicationState()
	if rs.SeedSeq != 9 || rs.BaseSeq != 9 || rs.Seq != 9 {
		t.Fatalf("ReplicationState after compaction: %+v", rs)
	}
	// Two more mutations, then reopen: the sidecar must restore the
	// origin so Seq continues from 11, not from the local record count.
	if err := e.Enroll(ids[8], group.Col(8)); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if err := e.Enroll(ids[9], group.Col(9)); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	e, err = Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer e.Close()
	st = e.Stats()
	if st.Seq != 11 || st.BaseSeq != 9 {
		t.Fatalf("after reopen: Seq=%d BaseSeq=%d, want 11, 9", st.Seq, st.BaseSeq)
	}
}

// TestSeqLegacyDirectory pins the degradation rule for directories
// written before sequence numbering: a missing sidecar reads as origin
// zero and the engine still opens and counts from its local records.
func TestSeqLegacyDirectory(t *testing.T) {
	const features = 8
	dir := filepath.Join(t.TempDir(), "live")
	e, err := Create(dir, features, nil, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	group := randomGroup(4, features, 3)
	for j, id := range subjectIDs(3) {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := os.Remove(filepath.Join(dir, seqName(0))); err != nil {
		t.Fatalf("removing sidecar: %v", err)
	}
	e, err = Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open without sidecar: %v", err)
	}
	defer e.Close()
	if st := e.Stats(); st.Seq != 3 || st.BaseSeq != 0 {
		t.Fatalf("legacy open: Seq=%d BaseSeq=%d, want 3, 0", st.Seq, st.BaseSeq)
	}
}

// TestWALRangeStreamsVerbatimFrames pins that WALRange hands out the
// exact committed frame bytes, in batches bounded by maxBytes, and
// that replaying them through ApplyReplicated reproduces the primary's
// results bit-identically.
func TestWALRangeStreamsVerbatimFrames(t *testing.T) {
	const features = 16
	primary := createEngine(t, features, Options{})
	group := randomGroup(5, features, 12)
	ids := subjectIDs(12)
	for j, id := range ids {
		if err := primary.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if err := primary.Delete(ids[4]); err != nil {
		t.Fatalf("Delete: %v", err)
	}

	replica := createEngine(t, features, Options{})
	rs := primary.ReplicationState()
	var cur int64
	for cur < rs.Seq {
		frames, upTo, err := primary.WALRange(rs.Generation, cur, 512)
		if err != nil {
			t.Fatalf("WALRange(after=%d): %v", cur, err)
		}
		if upTo == cur {
			t.Fatalf("WALRange made no progress at %d", cur)
		}
		// Split the batch back into frames and apply each.
		for len(frames) > 0 {
			payloadLen := int(uint32(frames[0]) | uint32(frames[1])<<8 | uint32(frames[2])<<16 | uint32(frames[3])<<24)
			frame := frames[:4+payloadLen+4]
			if err := replica.ApplyReplicated(frame); err != nil {
				t.Fatalf("ApplyReplicated: %v", err)
			}
			frames = frames[len(frame):]
		}
		cur = upTo
	}
	if got := replica.Stats().Seq; got != rs.Seq {
		t.Fatalf("replica Seq = %d, want %d", got, rs.Seq)
	}
	probe := randomGroup(99, features, 1).Col(0)
	want, err := primary.TopKCtx(context.Background(), probe, 5, 0)
	if err != nil {
		t.Fatalf("primary TopK: %v", err)
	}
	got, err := replica.TopKCtx(context.Background(), probe, 5, 0)
	if err != nil {
		t.Fatalf("replica TopK: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("replica TopK diverged:\n  primary: %+v\n  replica: %+v", want, got)
	}
	// Caught up: an empty batch, same position.
	frames, upTo, err := primary.WALRange(rs.Generation, rs.Seq, 512)
	if err != nil || len(frames) != 0 || upTo != rs.Seq {
		t.Fatalf("caught-up WALRange = (%d bytes, %d, %v), want (0, %d, nil)", len(frames), upTo, err, rs.Seq)
	}
}

// TestWALRangeWindow pins the typed out-of-window errors: a stale
// generation, a position before the window, and a position past the
// head all refuse with ErrSeqOutOfRange.
func TestWALRangeWindow(t *testing.T) {
	const features = 8
	e := createEngine(t, features, Options{})
	group := randomGroup(6, features, 4)
	for j, id := range subjectIDs(4) {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if _, _, err := e.WALRange(0, 99, 1<<20); !errors.Is(err, ErrSeqOutOfRange) {
		t.Fatalf("past-head WALRange: %v, want ErrSeqOutOfRange", err)
	}
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if _, _, err := e.WALRange(0, 2, 1<<20); !errors.Is(err, ErrSeqOutOfRange) {
		t.Fatalf("stale-generation WALRange: %v, want ErrSeqOutOfRange", err)
	}
	if _, _, err := e.WALRange(1, 2, 1<<20); !errors.Is(err, ErrSeqOutOfRange) {
		t.Fatalf("pre-window WALRange: %v, want ErrSeqOutOfRange", err)
	}
}

// TestWaitWALWakesOnCommitAndSwitch pins the waiter contract: a commit
// past the waited position wakes the waiter, a generation switch wakes
// it too, and cancellation returns the context error.
func TestWaitWALWakesOnCommitAndSwitch(t *testing.T) {
	const features = 8
	e := createEngine(t, features, Options{})
	group := randomGroup(7, features, 4)
	ids := subjectIDs(4)
	if err := e.Enroll(ids[0], group.Col(0)); err != nil {
		t.Fatalf("Enroll: %v", err)
	}

	done := make(chan error, 1)
	go func() { done <- e.WaitWAL(context.Background(), 0, 1) }()
	time.Sleep(10 * time.Millisecond)
	if err := e.Enroll(ids[1], group.Col(1)); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitWAL after commit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitWAL did not wake on commit")
	}

	go func() { done <- e.WaitWAL(context.Background(), 0, 2) }()
	time.Sleep(10 * time.Millisecond)
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitWAL after switch: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitWAL did not wake on generation switch")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.WaitWAL(ctx, 1, e.Stats().Seq); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled WaitWAL: %v, want DeadlineExceeded", err)
	}
}

// TestApplyReplicatedRejects pins the corruption and divergence
// errors: damaged framing or checksums are ErrWALCorrupt, duplicate
// enrolls and unknown deletes surface the gallery sentinels.
func TestApplyReplicatedRejects(t *testing.T) {
	const features = 8
	e := createEngine(t, features, Options{})
	group := randomGroup(8, features, 2)
	if err := e.Enroll("subject-a", group.Col(0)); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	frames, _, err := e.WALRange(0, 0, 1<<20)
	if err != nil {
		t.Fatalf("WALRange: %v", err)
	}

	other := createEngine(t, features, Options{})
	if err := other.ApplyReplicated(frames[:5]); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("truncated frame: %v, want ErrWALCorrupt", err)
	}
	bad := append([]byte(nil), frames...)
	bad[len(bad)-1] ^= 0x40
	if err := other.ApplyReplicated(bad); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("flipped checksum: %v, want ErrWALCorrupt", err)
	}
	if err := other.ApplyReplicated(frames); err != nil {
		t.Fatalf("good frame: %v", err)
	}
	if err := other.ApplyReplicated(frames); !errors.Is(err, gallery.ErrDuplicateID) {
		t.Fatalf("replayed duplicate: %v, want ErrDuplicateID", err)
	}
	del := encodeWALRecord(walKindDelete, "never-enrolled", nil)
	if err := other.ApplyReplicated(del); !errors.Is(err, gallery.ErrUnknownID) {
		t.Fatalf("unknown delete: %v, want ErrUnknownID", err)
	}
}

// TestOpenGenerationFileBounds pins the bootstrap file server: names
// outside the generation are refused, and the write-ahead log reader
// is limited to the committed prefix.
func TestOpenGenerationFileBounds(t *testing.T) {
	const features = 8
	e := createEngine(t, features, Options{})
	group := randomGroup(9, features, 3)
	for j, id := range subjectIDs(3) {
		if err := e.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if _, _, err := e.OpenGenerationFile("../CURRENT"); err == nil {
		t.Fatal("path traversal accepted")
	}
	if _, _, err := e.OpenGenerationFile("live.g0099.bpw"); err == nil {
		t.Fatal("foreign generation accepted")
	}
	rs := e.ReplicationState()
	rc, size, err := e.OpenGenerationFile(rs.WALName)
	if err != nil {
		t.Fatalf("OpenGenerationFile(%s): %v", rs.WALName, err)
	}
	defer rc.Close()
	if size != rs.WALBytes {
		t.Fatalf("log size = %d, want committed %d", size, rs.WALBytes)
	}
	files, err := e.GenerationFiles()
	if err != nil {
		t.Fatalf("GenerationFiles: %v", err)
	}
	sawSeq := false
	for _, f := range files {
		if f.Name == seqName(0) {
			sawSeq = true
		}
		if f.Name == rs.WALName {
			t.Fatal("GenerationFiles listed the write-ahead log")
		}
	}
	if !sawSeq {
		t.Fatalf("GenerationFiles missing sequence sidecar: %+v", files)
	}
}
