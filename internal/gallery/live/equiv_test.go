package live

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"brainprint/internal/gallery"
	"brainprint/internal/gallery/shard"
	"brainprint/internal/linalg"
)

// TestLiveEquivalentToColdAfterMixedOpsAndCompaction is the tentpole
// acceptance property: a live gallery that reached its record set
// through >100 interleaved online enrolls and deletes — spanning a
// compaction, so records are spread across the immutable base and the
// memtable overlay — answers TopK/QueryAll/DenseSimilarity with
// bit-identical scores and the identical (score desc, ID asc) ranking
// as a cold store offline-enrolled with the same final records, at
// serial AND all-cores parallelism.
func TestLiveEquivalentToColdAfterMixedOpsAndCompaction(t *testing.T) {
	const features, cohort, k = 19, 90, 7
	group := randomGroup(31, features, cohort)
	ids := subjectIDs(cohort)

	e, err := Create(filepath.Join(t.TempDir(), "live"), features, nil, Options{NoSync: true, Shards: 3})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer e.Close()

	// Scripted mixed workload, ≥100 mutations: enroll the first 60,
	// delete every 4th of them, compact mid-stream, enroll the rest,
	// re-enroll 5 of the deleted, delete a few post-compaction records.
	ops := 0
	enrolled := map[string]bool{}
	enroll := func(j int) {
		if err := e.Enroll(ids[j], group.Col(j)); err != nil {
			t.Fatalf("op %d: Enroll(%q): %v", ops, ids[j], err)
		}
		enrolled[ids[j]] = true
		ops++
	}
	del := func(j int) {
		if err := e.Delete(ids[j]); err != nil {
			t.Fatalf("op %d: Delete(%q): %v", ops, ids[j], err)
		}
		delete(enrolled, ids[j])
		ops++
	}
	for j := 0; j < 60; j++ {
		enroll(j)
	}
	for j := 0; j < 60; j += 4 {
		del(j)
	}
	if err := e.Compact(); err != nil {
		t.Fatalf("mid-stream Compact: %v", err)
	}
	for j := 60; j < cohort; j++ {
		enroll(j)
	}
	for j := 0; j < 20; j += 4 {
		enroll(j) // re-enroll deleted subjects
	}
	for _, j := range []int{61, 77} {
		del(j)
	}
	if ops < 100 {
		t.Fatalf("workload ran only %d mutations, want >= 100", ops)
	}

	// The cold reference: offline-enroll exactly the surviving records
	// (same raw vectors, same enrollment code path) into a sharded
	// store — the engine a restart-per-update deployment would serve.
	cold := gallery.New(features)
	for j, id := range ids {
		if !enrolled[id] {
			continue
		}
		if err := cold.Enroll(id, group.Col(j)); err != nil {
			t.Fatalf("cold Enroll: %v", err)
		}
	}
	coldStore, err := shard.FromGallery(cold, 3, false)
	if err != nil {
		t.Fatalf("cold FromGallery: %v", err)
	}
	if e.Len() != coldStore.Len() {
		t.Fatalf("record sets diverged: live %d vs cold %d", e.Len(), coldStore.Len())
	}

	probes := noisyProbes(group, 32)
	assertEnginesAgree(t, "pre-compaction-overlay", coldStore, e, probes, k)

	// Fold everything and compare again: now every record is in the
	// base and the overlay is empty.
	if err := e.Compact(); err != nil {
		t.Fatalf("final Compact: %v", err)
	}
	assertEnginesAgree(t, "post-compaction", coldStore, e, probes, k)
}

// noisyProbes derives probe columns from the known group: noisy
// variants of known subjects, so rankings are non-trivial.
func noisyProbes(known *linalg.Matrix, seed int64) *linalg.Matrix {
	f, n := known.Dims()
	anon := randomGroup(seed, f, n)
	for j := 0; j < n; j++ {
		kc, ac := known.Col(j), anon.Col(j)
		for i := range ac {
			ac[i] = kc[i] + 0.3*ac[i]
		}
		anon.SetCol(j, ac)
	}
	return anon
}

// assertEnginesAgree checks TopK, QueryAll, and DenseSimilarity between
// the cold store and the live engine at parallelism 1 and 0, requiring
// identical IDs and bit-identical scores at every rank.
func assertEnginesAgree(t *testing.T, phase string, cold *shard.Store, e *Engine, probes *linalg.Matrix, k int) {
	t.Helper()
	for _, par := range []int{1, 0} {
		name := fmt.Sprintf("%s par=%d", phase, par)
		wantRanked, err := cold.QueryAllP(probes, k, par)
		if err != nil {
			t.Fatalf("%s: cold QueryAll: %v", name, err)
		}
		gotRanked, err := e.QueryAllP(probes, k, par)
		if err != nil {
			t.Fatalf("%s: live QueryAll: %v", name, err)
		}
		for j := range wantRanked {
			if len(gotRanked[j]) != len(wantRanked[j]) {
				t.Fatalf("%s probe %d: %d candidates, want %d", name, j, len(gotRanked[j]), len(wantRanked[j]))
			}
			for r := range wantRanked[j] {
				got, want := gotRanked[j][r], wantRanked[j][r]
				if got.ID != want.ID {
					t.Fatalf("%s probe %d rank %d: subject %q != %q", name, j, r, got.ID, want.ID)
				}
				if got.Score != want.Score {
					t.Fatalf("%s probe %d rank %d: score %v != %v (not bit-identical)", name, j, r, got.Score, want.Score)
				}
				if e.ID(got.Index) != got.ID {
					t.Fatalf("%s probe %d rank %d: live Index %d resolves to %q, not %q",
						name, j, r, got.Index, e.ID(got.Index), got.ID)
				}
			}
		}
		// Single-probe path agrees with the batch path.
		topCold, err := cold.TopKP(probes.Col(0), k, par)
		if err != nil {
			t.Fatalf("%s: cold TopK: %v", name, err)
		}
		topLive, err := e.TopKP(probes.Col(0), k, par)
		if err != nil {
			t.Fatalf("%s: live TopK: %v", name, err)
		}
		for r := range topCold {
			if topCold[r].ID != topLive[r].ID || topCold[r].Score != topLive[r].Score {
				t.Fatalf("%s rank %d: TopK diverged: (%q,%v) vs (%q,%v)",
					name, r, topLive[r].ID, topLive[r].Score, topCold[r].ID, topCold[r].Score)
			}
		}
		// Dense rows match per subject ID (row order differs between
		// enumerations; scores must be the same bits).
		wantDense, err := cold.DenseSimilarityCtx(t.Context(), probes, par)
		if err != nil {
			t.Fatalf("%s: cold Dense: %v", name, err)
		}
		gotDense, err := e.DenseSimilarityCtx(t.Context(), probes, par)
		if err != nil {
			t.Fatalf("%s: live Dense: %v", name, err)
		}
		_, m := wantDense.Dims()
		for gi, id := range cold.IDs() {
			li := e.Index(id)
			if li < 0 {
				t.Fatalf("%s: %q missing from live engine", name, id)
			}
			for j := 0; j < m; j++ {
				if wantDense.At(gi, j) != gotDense.At(li, j) {
					t.Fatalf("%s: dense(%q, %d) diverged: %v != %v",
						name, id, j, gotDense.At(li, j), wantDense.At(gi, j))
				}
			}
		}
	}
}

// TestEnrollsRacingQueries drives concurrent mutators and queriers
// through one engine; under -race (the CI default) this pins the
// locking discipline, and the final state must contain every enrolled
// subject exactly once with queries never observing an inconsistency.
func TestEnrollsRacingQueries(t *testing.T) {
	const features, writers, perWriter = 12, 4, 30
	e := createEngine(t, features, Options{CompactAfter: 25, Shards: 2})
	// Seed a few records so queries always have something to rank.
	seed := randomGroup(41, features, 3)
	for j, id := range []string{"seed-a", "seed-b", "seed-c"} {
		if err := e.Enroll(id, seed.Col(j)); err != nil {
			t.Fatalf("seed Enroll: %v", err)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			vec := make([]float64, features)
			for i := 0; i < perWriter; i++ {
				for f := range vec {
					vec[f] = rng.NormFloat64()
				}
				id := fmt.Sprintf("w%d-%04d", w, i)
				if err := e.Enroll(id, vec); err != nil {
					errc <- fmt.Errorf("Enroll(%q): %w", id, err)
					return
				}
				if i%7 == 3 {
					if err := e.Delete(id); err != nil {
						errc <- fmt.Errorf("Delete(%q): %w", id, err)
						return
					}
				}
			}
		}(w)
	}
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			probe := randomGroup(int64(200+q), features, 1).Col(0)
			for i := 0; i < 50; i++ {
				top, err := e.TopKP(probe, 5, 0)
				if err != nil {
					errc <- fmt.Errorf("query %d: %w", i, err)
					return
				}
				for r := 1; r < len(top); r++ {
					if better(top[r], top[r-1]) {
						errc <- fmt.Errorf("query %d: ranking out of order at %d", i, r)
						return
					}
				}
			}
		}(q)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	e.wg.Wait() // drain any background compaction before the final audit

	wantLen := 3 + writers*perWriter - writers*len([]int{3, 10, 17, 24})
	if e.Len() != wantLen {
		t.Fatalf("final Len = %d, want %d", e.Len(), wantLen)
	}
	for _, id := range e.IDs() {
		if e.ID(e.Index(id)) != id {
			t.Fatalf("enumeration inconsistent for %q", id)
		}
	}
}
