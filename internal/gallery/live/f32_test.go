package live

import (
	"path/filepath"
	"testing"

	"brainprint/internal/gallery"
	"brainprint/internal/gallery/shard"
)

// TestLiveFloat32PrecisionSurvivesCompaction pins the live engine's
// precision knob: a float32 base scan answers bit-identically to the
// exact cold reference (the rescore restores exact scores), the
// setting persists across a compaction's generation swap, and int8 is
// rejected (live bases carry no quantized sidecar).
func TestLiveFloat32PrecisionSurvivesCompaction(t *testing.T) {
	const features, cohort, k = 19, 80, 7
	group := randomGroup(71, features, cohort)
	ids := subjectIDs(cohort)

	e, err := Create(filepath.Join(t.TempDir(), "live"), features, nil, Options{NoSync: true, Shards: 3})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer e.Close()
	for j := 0; j < 60; j++ {
		if err := e.Enroll(ids[j], group.Col(j)); err != nil {
			t.Fatalf("Enroll(%q): %v", ids[j], err)
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Base tombstones plus overlay records: the masked float32 scan and
	// the exact overlay sweep both participate in the merge.
	for j := 0; j < 60; j += 7 {
		if err := e.Delete(ids[j]); err != nil {
			t.Fatalf("Delete(%q): %v", ids[j], err)
		}
	}
	for j := 60; j < cohort; j++ {
		if err := e.Enroll(ids[j], group.Col(j)); err != nil {
			t.Fatalf("Enroll(%q): %v", ids[j], err)
		}
	}

	if err := e.SetPrecision(gallery.ScanInt8); err == nil {
		t.Fatal("SetPrecision(int8) on a live engine succeeded")
	}
	if err := e.SetPrecision(gallery.ScanFloat32); err != nil {
		t.Fatalf("SetPrecision(float32): %v", err)
	}
	if got := e.Precision(); got != gallery.ScanFloat32 {
		t.Fatalf("Precision() = %v, want float32", got)
	}

	cold := gallery.New(features)
	live := map[string]bool{}
	for _, id := range e.IDs() {
		live[id] = true
	}
	for j, id := range ids {
		if live[id] {
			if err := cold.Enroll(id, group.Col(j)); err != nil {
				t.Fatalf("cold Enroll: %v", err)
			}
		}
	}
	coldStore, err := shard.FromGallery(cold, 3, false)
	if err != nil {
		t.Fatalf("cold FromGallery: %v", err)
	}
	probes := noisyProbes(group, 72)
	assertEnginesAgree(t, "float32-overlay", coldStore, e, probes, k)

	// The generation swap must re-apply the precision to the fresh base.
	if err := e.Compact(); err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	if got := e.Precision(); got != gallery.ScanFloat32 {
		t.Fatalf("Precision() = %v after compaction, want float32", got)
	}
	assertEnginesAgree(t, "float32-compacted", coldStore, e, probes, k)
}
