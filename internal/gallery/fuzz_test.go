package gallery

import (
	"bytes"
	"testing"
)

// fuzzSeedGallery renders a small valid gallery file to seed the
// corpus: the fuzzer mutates outward from well-formed inputs, which
// reaches far deeper into the decoder than random bytes would.
func fuzzSeedGallery(tb testing.TB, features int, index []int, subjects int) []byte {
	tb.Helper()
	var g *Gallery
	if index != nil {
		g = WithFeatureIndex(index)
	} else {
		g = New(features)
	}
	vec := make([]float64, features)
	for s := 0; s < subjects; s++ {
		for i := range vec {
			vec[i] = float64(i*subjects+s) - float64(features)/2
		}
		if err := g.Enroll(string(rune('a'+s))+"-subject", vec); err != nil {
			tb.Fatalf("seed enroll: %v", err)
		}
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		tb.Fatalf("seed save: %v", err)
	}
	return buf.Bytes()
}

// FuzzDecodeGallery throws adversarial bytes at the gallery file
// decoder. The decoder must never panic, never over-allocate beyond the
// data actually present (readN bounds growth), and on success must
// return a self-consistent gallery; round-tripping a successfully
// decoded input must also succeed.
func FuzzDecodeGallery(f *testing.F) {
	valid := fuzzSeedGallery(f, 6, nil, 3)
	f.Add(valid)
	f.Add(fuzzSeedGallery(f, 4, []int{7, 1, 3, 5}, 2))
	f.Add(valid[:len(valid)-5])      // torn record
	f.Add(valid[:20])                // torn header
	f.Add([]byte("BPGALRY\x00junk")) // corrupt after magic
	f.Add([]byte{})                  // empty
	mut := append([]byte(nil), valid...)
	mut[len(mut)-3] ^= 0x55 // record CRC flip
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g.Len() < 0 || g.Features() <= 0 {
			t.Fatalf("decoded inconsistent gallery: len=%d features=%d", g.Len(), g.Features())
		}
		for i, id := range g.IDs() {
			if g.Index(id) != i {
				t.Fatalf("index map inconsistent at %d (%q)", i, id)
			}
			if len(g.Fingerprint(i)) != g.Features() {
				t.Fatalf("record %d has %d features, want %d", i, len(g.Fingerprint(i)), g.Features())
			}
		}
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			t.Fatalf("re-encoding a decoded gallery failed: %v", err)
		}
	})
}
